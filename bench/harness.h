// Shared reporting helpers for the figure-reproduction benches.
//
// Every bench prints (a) a human-readable table of the same series the
// paper's figure plots, and (b) machine-readable "# csv," rows. Scales
// default to laptop-friendly sizes and grow to paper scale through WN_*
// environment variables (see README).

#ifndef WASTENOT_BENCH_HARNESS_H_
#define WASTENOT_BENCH_HARNESS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/ar_engine.h"
#include "device/cost_model.h"
#include "util/env.h"
#include "util/timer.h"

namespace wastenot::bench {

/// Default row counts (paper scale in comments).
inline uint64_t MicroRows() {
  return static_cast<uint64_t>(
      EnvInt64("WN_SCALE_MICRO", 10'000'000));  // paper: 100M
}
inline uint64_t SpatialRows() {
  return static_cast<uint64_t>(
      EnvInt64("WN_SCALE_SPATIAL", 20'000'000));  // paper: ~250M
}
inline double TpchSf() {
  return EnvDouble("WN_SCALE_TPCH", 1.0);  // paper: SF-10
}
inline double BenchSeconds() {
  return EnvDouble("WN_BENCH_SECONDS", 1.0);
}

/// Machine-readable benchmark record (one per series point), accumulated by
/// PrintSeries/PrintBars and flushed as a JSON array at exit when the bench
/// was started with `--json <path>`. This is the format the perf trajectory
/// is tracked in: CI runs every bench at smoke scale and uploads the
/// resulting BENCH_*.json artifacts.
struct JsonRecord {
  std::string series;
  double x = 0;
  double value = 0;
  std::string unit;
  uint32_t shards = 1;  ///< device shards the point was measured over
};

/// --json state: destination path (empty = disabled), bench name (derived
/// from the binary name), accumulated records.
struct JsonSink {
  std::string path;
  std::string bench;
  std::vector<JsonRecord> records;
};
inline JsonSink& Json() {
  static JsonSink sink;
  return sink;
}

inline void JsonAppend(const std::string& series, double x, double value,
                       const char* unit, uint32_t shards = 1) {
  if (Json().path.empty()) return;
  Json().records.push_back(JsonRecord{series, x, value, unit, shards});
}

/// Minimal JSON string escaping (series labels are plain ASCII, but keep
/// quotes/backslashes from corrupting the output).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline void WriteJsonAtExit() {
  const JsonSink& sink = Json();
  if (sink.path.empty()) return;
  FILE* f = std::fopen(sink.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --json path %s\n", sink.path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < sink.records.size(); ++i) {
    const JsonRecord& r = sink.records[i];
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"series\": \"%s\", \"x\": %.9g, "
                 "\"value\": %.9g, \"unit\": \"%s\", \"shards\": %u}%s\n",
                 JsonEscape(sink.bench).c_str(), JsonEscape(r.series).c_str(),
                 r.x, r.value, JsonEscape(r.unit).c_str(), r.shards,
                 i + 1 < sink.records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

/// Parses `--rows N` (overriding every WN_SCALE_* knob so CI smoke runs
/// don't pay full benchmark cost; TPC-H scale factor is derived from the
/// requested lineitem row count, SF 1 ~ 6M rows) and `--json <path>`
/// (write the bench's series as JSON records at exit).
inline void ParseArgs(int argc, char** argv) {
  {
    // Bench name for JSON records: the binary's basename, minus the
    // build-system "bench_" prefix.
    std::string name = argv[0];
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    if (name.rfind("bench_", 0) == 0) name = name.substr(6);
    Json().bench = name;
  }
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    bool is_json = false;
    if (std::strcmp(argv[i], "--rows") == 0) {
      if (i + 1 < argc) value = argv[++i];
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      value = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      is_json = true;
      if (i + 1 < argc) value = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      is_json = true;
      value = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "unknown argument %s (supported: --rows N, --json PATH)\n",
                   argv[i]);
      std::exit(2);
    }
    if (is_json) {
      if (value == nullptr || *value == '\0') {
        std::fprintf(stderr, "--json expects a path\n");
        std::exit(2);
      }
      Json().path = value;
      std::atexit(WriteJsonAtExit);
      continue;
    }
    char* end = nullptr;
    const long long rows = value != nullptr ? std::strtoll(value, &end, 10) : 0;
    if (value == nullptr || end == value || *end != '\0' || rows <= 0) {
      std::fprintf(stderr, "--rows expects a positive integer, got %s\n",
                   value != nullptr ? value : "(nothing)");
      std::exit(2);
    }
    const std::string rows_str = std::to_string(rows);
    setenv("WN_SCALE_MICRO", rows_str.c_str(), 1);
    setenv("WN_SCALE_SPATIAL", rows_str.c_str(), 1);
    const double sf = static_cast<double>(rows) / 6'000'000.0;
    char sf_str[32];
    std::snprintf(sf_str, sizeof(sf_str), "%.9g", sf);
    setenv("WN_SCALE_TPCH", sf_str, 1);
    setenv("WN_SCALE_TPCH_FIG11", sf_str, 1);
  }
}

/// Prints the figure header with provenance.
inline void Header(const std::string& figure, const std::string& caption,
                   const std::string& scale_note) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  std::printf("(%s)\n", scale_note.c_str());
  std::printf("==========================================================\n");
}

/// One row of a time-series table (times in milliseconds).
struct SeriesRow {
  double x = 0;
  std::vector<double> values;
};

/// Prints an aligned series table plus csv lines.
inline void PrintSeries(const std::string& x_label,
                        const std::vector<std::string>& series_labels,
                        const std::vector<SeriesRow>& rows,
                        const char* unit = "ms") {
  std::printf("%-16s", x_label.c_str());
  for (const auto& label : series_labels) {
    std::printf("%18s", (label + " (" + unit + ")").c_str());
  }
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-16.4g", row.x);
    for (double v : row.values) std::printf("%18.3f", v);
    std::printf("\n");
  }
  // csv block
  std::printf("# csv,%s", x_label.c_str());
  for (const auto& label : series_labels) std::printf(",%s", label.c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("# csv,%.6g", row.x);
    for (double v : row.values) std::printf(",%.6f", v);
    std::printf("\n");
  }
  // json records (flushed at exit when --json was given)
  for (const auto& row : rows) {
    for (size_t s = 0; s < series_labels.size() && s < row.values.size();
         ++s) {
      JsonAppend(series_labels[s], row.x, row.values[s], unit);
    }
  }
}

/// Prints a Fig 9/10-style bar group with device breakdowns (seconds).
inline void PrintBars(
    const std::vector<std::pair<std::string, core::ExecutionBreakdown>>&
        bars) {
  std::printf("%-28s %12s %12s %12s %12s\n", "configuration", "total (s)",
              "GPU (s)", "CPU (s)", "PCI (s)");
  double bar_index = 0;
  for (const auto& [name, b] : bars) {
    std::printf("%-28s %12.4f %12.4f %12.4f %12.4f\n", name.c_str(),
                b.total(), b.device_seconds, b.host_seconds, b.bus_seconds);
    std::printf("# csv,%s,%.6f,%.6f,%.6f,%.6f\n", name.c_str(), b.total(),
                b.device_seconds, b.host_seconds, b.bus_seconds);
    JsonAppend(name + "/total", bar_index, b.total(), "s");
    JsonAppend(name + "/gpu", bar_index, b.device_seconds, "s");
    JsonAppend(name + "/cpu", bar_index, b.host_seconds, "s");
    JsonAppend(name + "/pci", bar_index, b.bus_seconds, "s");
    bar_index += 1;
  }
}

/// The 'Stream (Hypothetical)' baseline of §VI-A: the minimal work of a
/// streaming GPU system — pushing the input columns through PCI-E.
inline core::ExecutionBreakdown StreamHypothetical(uint64_t input_bytes) {
  core::ExecutionBreakdown b;
  b.bus_seconds =
      device::TransferSeconds(device::DeviceSpec::Gtx680(), input_bytes);
  return b;
}

/// Times a callable, returning seconds (median of `reps` runs).
template <typename F>
double TimeSeconds(F&& fn, int reps = 3) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    times.push_back(t.Seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace wastenot::bench

#endif  // WASTENOT_BENCH_HARNESS_H_
