// Fig 9 + Table I: the spatial range query benchmark.
// Bars: A&R (GPU/CPU/PCI breakdown), MonetDB (CPU), Stream (hypothetical
// PCI-E push of lon+lat). Also reports the byte-prefix compression volume
// (paper §VI-C2: 25% reduction) and verifies both engines agree.

#include <memory>
#include <thread>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "workloads/spatial.h"

namespace wastenot {
namespace {

int Run() {
  const uint64_t n = bench::SpatialRows();
  bench::Header("Fig 9", "Performance of the spatial range queries (Table I)",
                "fixes=" + std::to_string(n) +
                    " (paper: ~250M); WN_SCALE_SPATIAL overrides");

  cs::Database db;
  db.AddTable(workloads::GenerateTrips(n, 1337));
  const uint64_t coord_bytes =
      db.table("trips").column("lon").byte_size() +
      db.table("trips").column("lat").byte_size();
  std::printf("coordinate volume: %.2f GB raw\n", coord_bytes / 1e9);

  // Byte-prefix compression volume report (paper: 25% reduction by
  // factoring out the highest of the 4 value bytes).
  {
    auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
    auto bwd_byte = bwd::BwdTable::Decompose(
        db.table("trips"),
        {{"lon", 32, bwd::Compression::kBytePrefix},
         {"lat", 32, bwd::Compression::kBytePrefix}},
        dev.get());
    if (bwd_byte.ok()) {
      const uint64_t compressed =
          bwd_byte->device_bytes() + bwd_byte->residual_bytes();
      std::printf(
          "byte-prefix compressed: %.2f GB (%.1f%% reduction; paper: 25%%)\n",
          compressed / 1e9,
          100.0 * (1.0 - static_cast<double>(compressed) /
                             static_cast<double>(coord_bytes)));
    }
  }

  // Table I decomposition: bwdecompose(lon,24), bwdecompose(lat,24).
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto fact = bwd::BwdTable::Decompose(
      db.table("trips"),
      {{"lon", 24, bwd::Compression::kBitPacked},
       {"lat", 24, bwd::Compression::kBitPacked}},
      dev.get());
  if (!fact.ok()) {
    std::fprintf(stderr, "decompose failed: %s\n",
                 fact.status().ToString().c_str());
    return 1;
  }
  std::printf("device-resident approximations: %.2f GB of %llu-byte arena\n\n",
              fact->device_bytes() / 1e9,
              static_cast<unsigned long long>(dev->arena().capacity()));

  const core::QuerySpec query = workloads::SpatialRangeQuery();

  // A&R (pre-heated: the paper reports the third run; the first pays JIT).
  (void)core::ExecuteAr(query, *fact, nullptr, dev.get());
  auto ar = core::ExecuteAr(query, *fact, nullptr, dev.get());
  if (!ar.ok()) {
    std::fprintf(stderr, "A&R failed: %s\n", ar.status().ToString().c_str());
    return 1;
  }

  // MonetDB with the paper's 'sequential_pipe' optimizer pipeline
  // (§VI-A: the CPU baseline is single-threaded), pre-heated (3rd run).
  core::ClassicOptions copts;
  copts.threads = 1;
  core::ExecutionBreakdown monetdb;
  StatusOr<core::QueryResult> classic = core::ExecuteClassic(query, db, copts);
  monetdb.host_seconds = bench::TimeSeconds(
      [&] { classic = core::ExecuteClassic(query, db, copts); });
  if (!classic.ok()) return 1;

  bench::PrintBars({
      {"A & R", ar->breakdown},
      {"MonetDB", monetdb},
      {"Stream (Hypothetical)", bench::StreamHypothetical(coord_bytes)},
  });

  std::printf("\nresult: count(lon) = %lld (engines agree: %s)\n",
              static_cast<long long>(classic->agg_values[0][0]),
              ar->result == *classic ? "yes" : "NO — BUG");
  std::printf("candidates=%llu refined=%llu, approximate count in %s\n",
              static_cast<unsigned long long>(ar->num_candidates),
              static_cast<unsigned long long>(ar->num_refined),
              ar->approx.agg_bounds.empty()
                  ? "[]"
                  : ar->approx.agg_bounds[0][0].ToString().c_str());
  return ar->result == *classic ? 0 : 1;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
