// Mutable-ingest bench (DESIGN.md §9): what crash-consistent ingest costs
// and what queries pay while it happens.
//
//   Series 1  append + group-commit throughput by flush batch size (one
//             WAL fsync per batch — the knee is the fsync amortization).
//   Series 2  served query latency (p50) across the table's life cycle:
//             phase 0 = everything in the delta (base empty, A&R serves
//             via the exact classic fallback), phase 1 = sampled while a
//             re-decomposition pass runs underneath the queries, phase 2
//             = quiesced (delta absorbed, A&R runs a real Phase A).
//
// Scale: WN_SCALE_MICRO rows (default 200k here; --rows overrides).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/classic_engine.h"
#include "device/device.h"
#include "storage/mutable_table.h"
#include "util/env.h"
#include "util/timer.h"

namespace wastenot {
namespace {

namespace fs = std::filesystem;

int64_t Value(uint64_t row, uint64_t col) {
  uint64_t x = (row + 1) * 0x9E3779B97F4A7C15ull + col;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  return static_cast<int64_t>(x % 1000);
}

storage::MutableTableOptions Options(const fs::path& dir,
                                     device::Device* dev) {
  storage::MutableTableOptions opts;
  opts.dir = dir.string();
  opts.name = "fact";
  opts.columns = {"a", "g", "v"};
  opts.device = dev;
  opts.background = false;  // the bench drives drains explicitly
  return opts;
}

void IngestRows(storage::MutableTable* table, uint64_t rows,
                uint64_t batch) {
  for (uint64_t r = 0; r < rows; ++r) {
    const int64_t row[3] = {Value(r, 0), Value(r, 1) % 4, Value(r, 2)};
    (void)table->Append(row);
    if ((r + 1) % batch == 0 || r + 1 == rows) (void)table->Flush();
  }
}

core::QuerySpec Query() {
  core::QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Lt(500)}};
  q.group_by = {"g"};
  q.aggregates = {core::Aggregate::SumOf("v", "sum_v"),
                  core::Aggregate::CountStar("n")};
  return q;
}

/// One served query over the current view, the way the QueryServer routes
/// it: A&R when the view has a decomposed base, the exact classic
/// fallback otherwise; classic always unions the delta in.
double QueryOnceMs(storage::MutableTable* table, bool prefer_ar) {
  const storage::TableView view = table->View();
  WallTimer timer;
  if (prefer_ar && view.bwd != nullptr) {
    core::ArOptions opts;
    opts.delta = view.delta_or_null();
    auto r = core::ExecuteAr(Query(), *view.bwd, /*dim=*/nullptr,
                             view.bwd->device(), opts);
    if (!r.ok()) std::abort();
  } else {
    core::ClassicOptions opts;
    opts.delta = view.delta_or_null();
    auto r = core::ExecuteClassic(Query(), *view.db, opts);
    if (!r.ok()) std::abort();
  }
  return timer.Seconds() * 1e3;
}

double P50(std::vector<double> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Samples served latency until the time budget or `stop` says enough.
std::vector<double> Sample(storage::MutableTable* table, bool prefer_ar,
                           const std::atomic<bool>* stop) {
  std::vector<double> samples;
  WallTimer timer;
  while (samples.size() < 256) {
    samples.push_back(QueryOnceMs(table, prefer_ar));
    if (stop != nullptr && stop->load()) break;
    if (stop == nullptr && samples.size() >= 16 &&
        timer.Seconds() > bench::BenchSeconds()) {
      break;
    }
  }
  return samples;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  using namespace wastenot;
  bench::ParseArgs(argc, argv);
  const uint64_t rows =
      static_cast<uint64_t>(EnvInt64("WN_SCALE_MICRO", 200'000));
  bench::Header(
      "Mutable ingest",
      "WAL group-commit throughput and served latency across drains",
      "rows=" + std::to_string(rows) + " (WN_SCALE_MICRO / --rows)");

  const fs::path root =
      fs::temp_directory_path() /
      ("wn_bench_ingest_" + std::to_string(::getpid()));
  fs::remove_all(root);

  // --- Series 1: append + group-commit throughput by batch size. -------
  std::vector<bench::SeriesRow> throughput;
  for (uint64_t batch : {64u, 256u, 1024u, 4096u}) {
    const fs::path dir = root / ("tp_" + std::to_string(batch));
    fs::create_directories(dir);
    auto table = storage::MutableTable::Open(Options(dir, nullptr));
    if (!table.ok()) return 1;
    WallTimer timer;
    IngestRows(table->get(), rows, batch);
    const double seconds = timer.Seconds();
    table->reset();
    fs::remove_all(dir);
    throughput.push_back(
        {static_cast<double>(batch),
         {static_cast<double>(rows) / seconds / 1e3}});
  }
  std::printf("\nDurable append throughput (one fsync per batch):\n");
  bench::PrintSeries("batch rows", {"append_flush"}, throughput, "Krows/s");

  // --- Series 2: served p50 across the life cycle. ---------------------
  device::DeviceSpec spec;
  spec.memory_capacity = 1ull << 30;
  auto dev = std::make_unique<device::Device>(spec, 2);
  const fs::path dir = root / "latency";
  fs::create_directories(dir);
  auto table = storage::MutableTable::Open(Options(dir, dev.get()));
  if (!table.ok()) return 1;
  IngestRows(table->get(), rows, 4096);

  // Phase 0: the whole table is delta.
  const double classic_delta = P50(Sample(table->get(), false, nullptr));
  const double ar_delta = P50(Sample(table->get(), true, nullptr));

  // Phase 1: queries racing one full re-decomposition pass.
  std::atomic<bool> drain_done{false};
  std::vector<double> classic_during, ar_during;
  std::thread drain([&] {
    (void)(*table)->Drain();
    drain_done.store(true);
  });
  classic_during = Sample(table->get(), false, &drain_done);
  ar_during = Sample(table->get(), true, &drain_done);
  drain.join();
  (void)(*table)->Drain();  // absorb anything the race left behind

  // Phase 2: quiesced — empty delta, A&R runs a real Phase A.
  const double classic_quiesced = P50(Sample(table->get(), false, nullptr));
  const double ar_quiesced = P50(Sample(table->get(), true, nullptr));

  std::printf(
      "\nServed p50 by phase (0 = delta only, 1 = during re-decomposition, "
      "2 = quiesced):\n");
  bench::PrintSeries(
      "phase", {"served_classic_p50", "served_ar_p50"},
      {{0, {classic_delta, ar_delta}},
       {1, {P50(classic_during), P50(ar_during)}},
       {2, {classic_quiesced, ar_quiesced}}},
      "ms");

  table->reset();
  fs::remove_all(root);
  return 0;
}
