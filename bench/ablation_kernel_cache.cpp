// Ablation (§V-C): just-in-time kernel compilation. The first execution of
// each distinct (operator, type, decomposition, compression) signature
// pays a JIT compile; repeats hit the kernel cache. Mirrors the paper's
// "code is generated and compiled just-in-time" implementation note.

#include <memory>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "core/ar_engine.h"
#include "workloads/tpch.h"

namespace wastenot {
namespace {

int Run() {
  bench::Header("Ablation", "JIT kernel cache: cold vs warm",
                "TPC-H Q6 repeated on one device");

  cs::Database db;
  workloads::GenerateTpch(std::min(bench::TpchSf(), 0.25), 9, &db);
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto fact = bwd::BwdTable::Decompose(db.table("lineitem"),
                                       workloads::TpchAllResident(),
                                       dev.get());
  auto dim = bwd::BwdTable::Decompose(db.table("part"),
                                      workloads::TpchPartResident(),
                                      dev.get());
  if (!fact.ok() || !dim.ok()) return 1;

  std::printf("%-8s %14s %14s %16s %12s\n", "run", "device (ms)", "bus (ms)",
              "kernels compiled", "cache hits");
  for (int run = 1; run <= 4; ++run) {
    auto ar = core::ExecuteAr(workloads::TpchQ6(), *fact, &*dim, dev.get());
    if (!ar.ok()) return 1;
    std::printf("%-8d %14.3f %14.3f %16llu %12llu\n", run,
                ar->breakdown.device_seconds * 1e3,
                ar->breakdown.bus_seconds * 1e3,
                static_cast<unsigned long long>(
                    dev->kernel_cache().compiled_count()),
                static_cast<unsigned long long>(
                    dev->kernel_cache().hit_count()));
    std::printf("# csv,run%d,%.6f,%llu,%llu\n", run,
                ar->breakdown.device_seconds,
                static_cast<unsigned long long>(
                    dev->kernel_cache().compiled_count()),
                static_cast<unsigned long long>(
                    dev->kernel_cache().hit_count()));
  }
  std::printf("\none generated kernel source, for inspection:\n");
  device::KernelSignature sig;
  sig.op = "uselect_approximate";
  sig.value_bits = 12;
  sig.packed_bits = 12;
  sig.extra = "range/full";
  std::printf("%s\n", device::GenerateKernelSource(sig).c_str());
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
