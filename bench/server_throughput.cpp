// QueryServer throughput: concurrent query serving on ONE shared simulated
// device (DESIGN.md §3.3). Sweeps the session-worker count with matching
// closed-loop client streams over a selectivity-varied TPC-H Q6 workload
// and reports wall queries/s plus p50/p99 latency — then a mixed-engine
// run (A&R + classic + streaming round-robin) to exercise all three
// dispatch paths behind one admission queue.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "server/query_server.h"
#include "workloads/tpch.h"

namespace wastenot {
namespace {

core::QuerySpec StreamQuery(uint64_t i) {
  return workloads::TpchQ6YearVariant(i);
}

/// Runs `streams` closed-loop clients against `server` for `seconds`.
/// Returns wall queries/s over the measurement window.
double DriveStreams(server::QueryServer* server, unsigned streams,
                    double seconds, bool mixed_engines) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  // Timer starts before the spawn loop so work done while later clients
  // are still being spawned is inside the measured window.
  WallTimer timer;
  for (unsigned s = 0; s < streams; ++s) {
    clients.emplace_back([&, s] {
      static constexpr server::EngineKind kMix[] = {
          server::EngineKind::kAr, server::EngineKind::kClassic,
          server::EngineKind::kStreaming};
      uint64_t i = s;
      while (!stop.load(std::memory_order_relaxed)) {
        server::QueryRequest req;
        req.query = StreamQuery(i);
        req.engine = mixed_engines ? kMix[i % 3] : server::EngineKind::kAr;
        ++i;
        auto future = server->Submit(std::move(req));
        const server::QueryResponse resp = future.get();
        if (!resp.status.ok()) {
          // A silent break would deflate the measured rate; make the
          // dead stream visible.
          std::fprintf(stderr, "client stream %u aborted: %s\n", s,
                       resp.status.ToString().c_str());
          break;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (timer.Seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double elapsed = timer.Seconds();
  const uint64_t done = completed.load(std::memory_order_relaxed);
  stop.store(true);
  for (auto& c : clients) c.join();
  return static_cast<double>(done) / elapsed;
}

int Run() {
  const double sf = EnvDouble("WN_SCALE_TPCH_FIG11", 0.25);
  const double secs = bench::BenchSeconds();
  bench::Header("Server throughput",
                "concurrent query serving on one shared device",
                "SF=" + std::to_string(sf) + ", " + std::to_string(secs) +
                    "s per point (WN_SCALE_TPCH_FIG11, WN_BENCH_SECONDS)");

  cs::Database db;
  workloads::GenerateTpch(sf, 77, &db);
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto fact = bwd::BwdTable::Decompose(db.table("lineitem"),
                                       workloads::TpchAllResident(),
                                       dev.get());
  auto dim = bwd::BwdTable::Decompose(db.table("part"),
                                      workloads::TpchPartResident(),
                                      dev.get());
  if (!fact.ok() || !dim.ok()) return 1;
  const server::QueryServer::Backend backend{&db, &*fact, &*dim, dev.get()};

  std::printf("%-24s %12s %12s %12s\n", "configuration", "queries/s",
              "p50 (ms)", "p99 (ms)");
  auto report = [](const std::string& name, double qps,
                   const server::ServerStats& stats) {
    std::printf("%-24s %12.1f %12.2f %12.2f\n", name.c_str(), qps,
                stats.p50_latency_seconds * 1e3,
                stats.p99_latency_seconds * 1e3);
    std::printf("# csv,%s,%.3f,%.4f,%.4f\n", name.c_str(), qps,
                stats.p50_latency_seconds * 1e3,
                stats.p99_latency_seconds * 1e3);
  };

  // A&R-only sweep: workers == client streams, all on one device.
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    server::ServerOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 4 * workers;
    server::QueryServer server(backend, opts);
    const double qps = DriveStreams(&server, workers, secs,
                                    /*mixed_engines=*/false);
    const server::ServerStats stats = server.stats();
    server.Shutdown();
    report("A&R x" + std::to_string(workers), qps, stats);
    bench::JsonAppend("ar_qps", workers, qps, "q/s");
    bench::JsonAppend("ar_p50", workers, stats.p50_latency_seconds * 1e3,
                      "ms");
    bench::JsonAppend("ar_p99", workers, stats.p99_latency_seconds * 1e3,
                      "ms");
  }

  // Mixed engines behind one queue: every dispatch path concurrently.
  {
    server::ServerOptions opts;
    opts.num_workers = 4;
    opts.queue_capacity = 16;
    server::QueryServer server(backend, opts);
    const double qps = DriveStreams(&server, 4, secs, /*mixed_engines=*/true);
    const server::ServerStats stats = server.stats();
    server.Shutdown();
    report("mixed x4", qps, stats);
    bench::JsonAppend("mixed_qps", 4, qps, "q/s");
    bench::JsonAppend("mixed_p99", 4, stats.p99_latency_seconds * 1e3, "ms");

    // Per-engine breakout of the mixed run (ServerStats::engines).
    static constexpr const char* kEngineNames[] = {"ar", "classic",
                                                   "streaming"};
    for (size_t e = 0; e < 3; ++e) {
      const server::EngineStats& es = stats.engines[e];
      std::printf("  mixed/%-10s submitted=%llu completed=%llu failed=%llu\n",
                  kEngineNames[e],
                  static_cast<unsigned long long>(es.submitted),
                  static_cast<unsigned long long>(es.completed),
                  static_cast<unsigned long long>(es.failed));
      std::printf("# csv,mixed_%s,%llu,%llu,%llu\n", kEngineNames[e],
                  static_cast<unsigned long long>(es.submitted),
                  static_cast<unsigned long long>(es.completed),
                  static_cast<unsigned long long>(es.failed));
      bench::JsonAppend(std::string("mixed_completed/") + kEngineNames[e], 4,
                        static_cast<double>(es.completed), "queries");
    }
  }
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
