// Fig 8f: grouping on device-resident data — time vs number of groups.
// The paper: "performance improves with the number of groups due to fewer
// write conflicts on the grouping table" — the atomic-serialization model
// of HashKernelSeconds reproduces exactly that shape, while MonetDB's
// serial hash grouping stays roughly flat.

#include <memory>
#include <numeric>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "columnstore/group.h"
#include "core/group.h"
#include "workloads/uniform.h"

namespace wastenot {
namespace {

int Run() {
  const uint64_t n = bench::MicroRows();
  bench::Header("Fig 8f", "Grouping on GPU-resident data",
                "rows=" + std::to_string(n) + " (paper: 100M)");

  const double stream_ms =
      bench::StreamHypothetical(n * sizeof(int32_t)).total() * 1e3;

  std::vector<bench::SeriesRow> rows;
  for (uint64_t groups : {10ull, 32ull, 100ull, 316ull, 1000ull, 3162ull,
                          10000ull}) {
    cs::Column base = workloads::UniformGroupKeys(n, groups, groups * 7 + 1);
    auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
    auto col = bwd::BwdColumn::Decompose(base, 32, dev.get());
    if (!col.ok()) return 1;

    const double monetdb_ms =
        bench::TimeSeconds([&] { cs::GroupBy(base); }, 1) * 1e3;

    core::Candidates all;
    all.ids.resize(n);
    std::iota(all.ids.begin(), all.ids.end(), 0);
    all.sorted = true;

    core::GroupApproximate(*col, nullptr, dev.get());  // JIT pre-heat
    const auto clock0 = dev->clock().snapshot();
    core::ApproxGrouping pre =
        core::GroupApproximate(*col, nullptr, dev.get());
    const double approx_ms =
        (dev->clock().snapshot().device - clock0.device) * 1e3;

    // Fully resident grouping key, no earlier operators: the pre-groups
    // are already exact (§IV-E: low-cardinality columns stay resident,
    // "which eliminates the necessity for a subgrouping"); only the group
    // ids cross the bus.
    (void)all;
    const double bus_ms =
        device::TransferSeconds(dev->spec(),
                                pre.group_ids.size() * sizeof(uint32_t)) *
        1e3;
    rows.push_back(bench::SeriesRow{
        static_cast<double>(groups),
        {monetdb_ms, approx_ms + bus_ms, approx_ms, stream_ms}});
  }
  bench::PrintSeries("groups",
                     {"MonetDB", "Approx+Refine", "Approximate", "Stream"},
                     rows);
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
