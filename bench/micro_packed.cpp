// micro_packed — packed-codec and selection-kernel microbenchmarks.
//
// Measures (single-threaded, pure kernel time, no device charging):
//   1. unpack throughput: scalar element-at-a-time PackedGet vs. the block
//      decoder under the scalar tier and under the best SIMD tier the CPU
//      supports (SetPackedCodecScalarOnly toggles the dispatch), widths
//      1..64;
//   2. selection-scan throughput: the pre-PR scalar select loop (decode +
//      per-element branch + push_back, replicated below) vs. the two-pass
//      count-then-fill block kernel, scalar tier and SIMD tier, widths
//      1..64 at 10 % selectivity;
//   3. the same selection pair across selectivities at representative
//      widths (9, 16, 22 bits);
//   4. the morsel-parallel block selection scan (the same two-pass kernel
//      fanned out over 64-aligned morsels via util::ParallelForBlocks) at
//      threads 1..8, width 16, 10 % selectivity.
//
// Run with --json BENCH_micro_packed.json to emit the perf-trajectory
// records; --rows N shrinks the input (CI smoke uses 2000).

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "bwd/packed_codec.h"
#include "bwd/packed_vector.h"
#include "core/select.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace wastenot {
namespace {

using core::RelaxedPred;

/// Uniform random digits packed at `width` bits (via the bulk encoder).
bwd::PackedVector MakePacked(uint32_t width, uint64_t n, uint64_t seed) {
  bwd::PackedVector pv(width, n);
  Xoshiro256 rng(seed);
  const uint64_t mask = bits::LowMask(width);
  std::vector<uint64_t> values(std::min<uint64_t>(n, 1 << 16));
  for (uint64_t base = 0; base < n; base += values.size()) {
    const uint64_t len = std::min<uint64_t>(values.size(), n - base);
    for (uint64_t i = 0; i < len; ++i) values[i] = rng.Next() & mask;
    bwd::PackRange(pv.mutable_words(), width, base, len, values.data());
  }
  return pv;
}

/// A digit-domain predicate selecting ~`selectivity` of uniform digits,
/// with the boundary digits uncertain (as a real relaxed range has).
RelaxedPred MakePred(uint32_t width, double selectivity) {
  RelaxedPred p;
  const uint64_t max_digit = bits::LowMask(width);
  const double hi = std::floor(std::ldexp(selectivity, static_cast<int>(width)));
  p.lo_digit = 0;
  p.hi_digit = std::min(max_digit, static_cast<uint64_t>(std::max(hi, 1.0)));
  if (p.hi_digit >= 2) {
    p.certain_lo = 1;
    p.certain_hi = p.hi_digit - 1;
  }  // else: empty certainty range (certain_lo=1 > certain_hi=0 default)
  return p;
}

/// Synthetic spec: digits are approximations with a 4-bit residual.
bwd::DecompositionSpec MakeSpec(uint32_t width) {
  bwd::DecompositionSpec spec;
  spec.type_bits = 64;
  spec.residual_bits = width <= 60 ? 4 : 0;
  spec.value_bits = width + spec.residual_bits;
  spec.prefix_base = 0;
  return spec;
}

/// Selection output shape shared by both kernels (the per-chunk shape of
/// core/select.cpp's ChunkOut).
struct SelOut {
  cs::OidVec ids;
  std::vector<int64_t> lower;
  std::vector<uint8_t> certain;
  uint64_t num_certain = 0;
  void Clear() {
    ids.clear();
    lower.clear();
    certain.clear();
    num_certain = 0;
  }
};

// ------------------------------------------------------------------------
// Scalar baselines: frozen replicas of the pre-block-decode hot loops.
// ------------------------------------------------------------------------

/// Unpack benches decode through a cache-resident window: writing a full
/// n-element output vector is DRAM-write-bound and hides the decoder cost
/// equally for both paths.
constexpr uint64_t kUnpackWindow = 4096;

void ScalarUnpack(const bwd::PackedView& view, uint64_t* out) {
  const uint64_t n = view.size();
  for (uint64_t base = 0; base < n; base += kUnpackWindow) {
    const uint64_t len = std::min(kUnpackWindow, n - base);
    for (uint64_t i = 0; i < len; ++i) out[i] = view.Get(base + i);
  }
}

void ScalarSelect(const bwd::PackedView& view,
                  const bwd::DecompositionSpec& spec, const RelaxedPred& pred,
                  SelOut* out) {
  for (uint64_t i = 0; i < view.size(); ++i) {
    const uint64_t digit = view.Get(i);
    if (pred.Matches(digit)) {
      out->ids.push_back(static_cast<cs::oid_t>(i));
      out->lower.push_back(spec.LowerBound(digit));
      const bool certain = pred.Certain(digit);
      out->certain.push_back(certain ? 1 : 0);
      out->num_certain += certain;
    }
  }
}

// ------------------------------------------------------------------------
// Block kernels (same algorithm as core/select.cpp's chunk kernel).
// ------------------------------------------------------------------------

void BlockUnpack(const bwd::PackedView& view, uint64_t* out) {
  const uint64_t n = view.size();
  for (uint64_t base = 0; base < n; base += kUnpackWindow) {
    bwd::UnpackRange(view, base, std::min(kUnpackWindow, n - base), out);
  }
}

/// BlockSelect over elements [begin, end) — `begin` must be a multiple of
/// 64. This is the per-morsel body of the parallel scan below; the
/// single-threaded bench calls it with the whole range.
void BlockSelectRange(const bwd::PackedView& view,
                      const bwd::DecompositionSpec& spec,
                      const RelaxedPred& pred, uint64_t begin, uint64_t end,
                      SelOut* out) {
  const uint64_t n = end - begin;
  const uint64_t num_blocks = bits::CeilDiv(n, bwd::kPackedBlockElems);
  const bool has_certain = pred.certain_lo <= pred.certain_hi;
  const uint64_t certain_span = pred.certain_hi - pred.certain_lo;
  std::vector<uint64_t> match(num_blocks);
  uint64_t digits[bwd::kPackedBlockElems];

  // Pass 1: count via fused per-block decode-and-compare masks.
  const uint64_t match_span = pred.hi_digit - pred.lo_digit;
  uint64_t total = 0;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    const uint64_t e0 = begin + b * bwd::kPackedBlockElems;
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(end - e0, bwd::kPackedBlockElems));
    const uint64_t block = e0 / bwd::kPackedBlockElems;
    const uint64_t m =
        lanes == bwd::kPackedBlockElems
            ? bwd::MatchBlock(view.words(), view.width(), block,
                              pred.lo_digit, match_span)
            : bwd::MatchBlockPartial(view.words(), view.width(), block, lanes,
                                     pred.lo_digit, match_span);
    match[b] = m;
    total += static_cast<uint64_t>(std::popcount(m));
  }

  // Pass 2: exact-size, fill matched blocks by mask expansion/compression
  // plus a dense loop over the survivors (certainty only evaluated for
  // matching lanes) — the same fill as core/select.cpp.
  out->ids.resize(total);
  out->lower.resize(total);
  out->certain.resize(total);
  uint64_t num_certain = 0;
  uint64_t pos = 0;
  uint64_t cdigits[bwd::kPackedBlockElems];
  for (uint64_t b = 0; b < num_blocks; ++b) {
    const uint64_t m = match[b];
    if (m == 0) continue;
    const uint64_t e0 = begin + b * bwd::kPackedBlockElems;
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(end - e0, bwd::kPackedBlockElems));
    bwd::UnpackRange(view, e0, lanes, digits);
    const uint32_t cnt =
        bwd::ExpandMask(m, static_cast<uint32_t>(e0), out->ids.data() + pos);
    bwd::CompressLanes(m, digits, cdigits);
    for (uint32_t k = 0; k < cnt; ++k) {
      const uint64_t digit = cdigits[k];
      const uint8_t cert = static_cast<uint8_t>(
          has_certain && digit - pred.certain_lo <= certain_span);
      out->lower[pos + k] = spec.LowerBound(digit);
      out->certain[pos + k] = cert;
      num_certain += cert;
    }
    pos += cnt;
  }
  out->num_certain = num_certain;
}

void BlockSelect(const bwd::PackedView& view,
                 const bwd::DecompositionSpec& spec, const RelaxedPred& pred,
                 SelOut* out) {
  BlockSelectRange(view, spec, pred, 0, view.size(), out);
}

/// Morsel-parallel block selection: the same two-pass kernel per morsel,
/// fragments concatenated in morsel order (bit-identical output order).
/// Returns the total match count.
uint64_t ParallelBlockSelect(const bwd::PackedView& view,
                             const bwd::DecompositionSpec& spec,
                             const RelaxedPred& pred, const MorselContext& ctx,
                             std::vector<SelOut>* fragments) {
  const uint64_t n = view.size();
  const uint64_t morsel = AlignMorsel(MorselElems(view.width()));
  fragments->assign(bits::CeilDiv(n, morsel), SelOut{});
  ParallelForBlocks(ctx, n, morsel, [&](uint64_t b, uint64_t e, unsigned) {
    BlockSelectRange(view, spec, pred, b, e, &(*fragments)[b / morsel]);
  });
  uint64_t total = 0;
  for (const SelOut& f : *fragments) total += f.ids.size();
  return total;
}

double MelemPerSec(uint64_t n, double seconds) {
  return seconds > 0 ? static_cast<double>(n) / seconds / 1e6 : 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  using namespace wastenot;
  bench::ParseArgs(argc, argv);
  const uint64_t n = bench::MicroRows() / 2;  // two packed copies live at once

  bench::Header("micro_packed",
                "block-decode packed codec vs scalar element-at-a-time",
                "rows=" + std::to_string(n) +
                    ", single-threaded kernel time, median of 3, isa=" +
                    bwd::PackedCodecIsa());

  // ---- 1) unpack throughput across widths --------------------------------
  // unpack_block runs the active (best SIMD) tier, unpack_block_scalar the
  // forced-scalar tier; unpack_simd_speedup is their ratio.
  {
    std::vector<bench::SeriesRow> rows, speedups;
    std::vector<uint64_t> out(kUnpackWindow);
    for (uint32_t width = 1; width <= 64; ++width) {
      const bwd::PackedVector pv = MakePacked(width, n, width * 31 + 7);
      const bwd::PackedView view = pv.view();
      const double scalar =
          bench::TimeSeconds([&] { ScalarUnpack(view, out.data()); });
      bwd::SetPackedCodecScalarOnly(true);
      const double block_scalar =
          bench::TimeSeconds([&] { BlockUnpack(view, out.data()); });
      bwd::SetPackedCodecScalarOnly(false);
      const double block =
          bench::TimeSeconds([&] { BlockUnpack(view, out.data()); });
      rows.push_back({static_cast<double>(width),
                      {MelemPerSec(n, scalar), MelemPerSec(n, block_scalar),
                       MelemPerSec(n, block)}});
      speedups.push_back({static_cast<double>(width),
                          {block > 0 ? scalar / block : 0,
                           block > 0 ? block_scalar / block : 0}});
    }
    std::printf("\n-- unpack throughput --\n");
    bench::PrintSeries("width_bits",
                       {"unpack_scalar", "unpack_block_scalar", "unpack_block"},
                       rows, "Melem/s");
    bench::PrintSeries("width_bits", {"unpack_speedup", "unpack_simd_speedup"},
                       speedups, "x");
  }

  // ---- 2) selection throughput across widths (10 % selectivity) ----------
  {
    std::vector<bench::SeriesRow> rows, speedups;
    SelOut out;
    for (uint32_t width = 1; width <= 64; ++width) {
      const bwd::PackedVector pv = MakePacked(width, n, width * 131 + 3);
      const bwd::PackedView view = pv.view();
      const bwd::DecompositionSpec spec = MakeSpec(width);
      const RelaxedPred pred = MakePred(width, 0.10);
      const double scalar = bench::TimeSeconds([&] {
        out.Clear();
        ScalarSelect(view, spec, pred, &out);
      });
      bwd::SetPackedCodecScalarOnly(true);
      const double block_scalar = bench::TimeSeconds([&] {
        out.Clear();
        BlockSelect(view, spec, pred, &out);
      });
      bwd::SetPackedCodecScalarOnly(false);
      const double block = bench::TimeSeconds([&] {
        out.Clear();
        BlockSelect(view, spec, pred, &out);
      });
      rows.push_back({static_cast<double>(width),
                      {MelemPerSec(n, scalar), MelemPerSec(n, block_scalar),
                       MelemPerSec(n, block)}});
      speedups.push_back({static_cast<double>(width),
                          {block > 0 ? scalar / block : 0,
                           block > 0 ? block_scalar / block : 0}});
    }
    std::printf("\n-- selection throughput (10%% selectivity) --\n");
    bench::PrintSeries(
        "width_bits", {"select_scalar", "select_block_scalar", "select_block"},
        rows, "Melem/s");
    bench::PrintSeries("width_bits", {"select_speedup", "select_simd_speedup"},
                       speedups, "x");
  }

  // ---- 3) selection throughput across selectivities ----------------------
  for (uint32_t width : {9u, 16u, 22u}) {
    std::vector<bench::SeriesRow> rows;
    SelOut out;
    const bwd::PackedVector pv = MakePacked(width, n, width * 977 + 11);
    const bwd::PackedView view = pv.view();
    const bwd::DecompositionSpec spec = MakeSpec(width);
    for (double sel : {0.001, 0.01, 0.1, 0.5, 0.9}) {
      const RelaxedPred pred = MakePred(width, sel);
      const double scalar = bench::TimeSeconds([&] {
        out.Clear();
        ScalarSelect(view, spec, pred, &out);
      });
      const double block = bench::TimeSeconds([&] {
        out.Clear();
        BlockSelect(view, spec, pred, &out);
      });
      rows.push_back({sel, {MelemPerSec(n, scalar), MelemPerSec(n, block)}});
    }
    std::printf("\n-- selection vs selectivity (width %u) --\n", width);
    const std::string w = std::to_string(width);
    bench::PrintSeries("selectivity",
                       {"select_scalar_w" + w, "select_block_w" + w}, rows,
                       "Melem/s");
  }

  // ---- 4) morsel-parallel selection scan, threads 1..8 -------------------
  {
    const uint32_t width = 16;
    const bwd::PackedVector pv = MakePacked(width, n, 4242);
    const bwd::PackedView view = pv.view();
    const bwd::DecompositionSpec spec = MakeSpec(width);
    const RelaxedPred pred = MakePred(width, 0.10);
    std::vector<bench::SeriesRow> rows, speedups;
    std::vector<SelOut> fragments;
    double t1_seconds = 0;
    for (unsigned t : {1u, 2u, 4u, 8u}) {
      const std::unique_ptr<ThreadPool> pool =
          t > 1 ? std::make_unique<ThreadPool>(t) : nullptr;
      MorselContext ctx;
      ctx.pool = pool.get();
      const double seconds = bench::TimeSeconds([&] {
        (void)ParallelBlockSelect(view, spec, pred, ctx, &fragments);
      });
      if (t == 1) t1_seconds = seconds;
      rows.push_back({static_cast<double>(t), {MelemPerSec(n, seconds)}});
      speedups.push_back({static_cast<double>(t),
                          {seconds > 0 ? t1_seconds / seconds : 0}});
    }
    std::printf("\n-- morsel-parallel selection scan (width 16, 10%%) --\n");
    bench::PrintSeries("threads", {"select_block_parallel_w16"}, rows,
                       "Melem/s");
    bench::PrintSeries("threads", {"select_block_parallel_w16_speedup"},
                       speedups, "x");
  }
  return 0;
}
