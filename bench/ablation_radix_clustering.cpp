// Ablation (§VI-C3): radix-clustered vs flat bitwise-distributed storage.
// The paper explains the gap between its generic MonetDB integration and
// the original hand-tuned BWD prototype by the prototype's clustered
// indices ("relying on clustered indices to improve compression as well
// as access locality"). This bench quantifies that gap on the selection
// microbenchmark: device footprint, approximate-selection cost, and
// total A&R time.

#include <memory>

#include "bench/harness.h"
#include "core/clustered_column.h"
#include "core/select.h"
#include "workloads/uniform.h"

namespace wastenot {
namespace {

int Run() {
  const uint64_t n = bench::MicroRows();
  bench::Header("Ablation", "Radix clustering (the §VI-C3 prototype layout)",
                "rows=" + std::to_string(n) + ", 8 residual bits");

  cs::Column base = workloads::UniqueShuffledInts(n, 42);
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto flat = bwd::BwdColumn::Decompose(base, 24, dev.get());
  auto clustered = core::ClusteredBwdColumn::Cluster(base, 24, dev.get());
  if (!flat.ok() || !clustered.ok()) {
    std::fprintf(stderr, "setup failed: %s / %s\n",
                 flat.status().ToString().c_str(),
                 clustered.status().ToString().c_str());
    return 1;
  }
  std::printf("device footprint: flat %.2f MB -> clustered %.4f MB "
              "(offsets for %llu clusters)\n\n",
              flat->device_bytes() / 1e6, clustered->device_bytes() / 1e6,
              static_cast<unsigned long long>(clustered->num_clusters()));

  std::printf("%-14s %18s %18s %18s %18s\n", "qualifying %", "flat A&R (ms)",
              "flat approx (ms)", "clustered A&R (ms)",
              "clustered appr (ms)");
  for (double pct : {0.1, 1.0, 10.0, 50.0, 100.0}) {
    const cs::RangePred pred = cs::RangePred::Lt(
        workloads::ThresholdForSelectivity(n, pct / 100.0));

    // Flat: packed scan + per-candidate refinement.
    core::SelectApproximate(*flat, pred, dev.get());  // JIT warm
    const auto c0 = dev->clock().snapshot();
    core::ApproxSelection fsel = core::SelectApproximate(*flat, pred,
                                                         dev.get());
    const double flat_approx_ms =
        (dev->clock().snapshot().device - c0.device) * 1e3;
    core::PredicateRefinement conj{&*flat, pred, &fsel.values};
    const double flat_refine_ms =
        bench::TimeSeconds(
            [&] { core::SelectRefine(fsel.cands, std::span(&conj, 1)); }) *
        1e3;

    // Clustered: binary search + boundary-cluster refinement.
    (void)clustered->SelectApproximate(pred, dev.get());  // JIT warm
    const auto c1 = dev->clock().snapshot();
    auto csel = clustered->SelectApproximate(pred, dev.get());
    const double clus_approx_ms =
        (dev->clock().snapshot().device - c1.device) * 1e3;
    const double clus_refine_ms =
        bench::TimeSeconds([&] { clustered->SelectRefine(csel, pred); }) *
        1e3;

    std::printf("%-14.3g %18.3f %18.3f %18.3f %18.5f\n", pct,
                flat_approx_ms + flat_refine_ms, flat_approx_ms,
                clus_approx_ms + clus_refine_ms, clus_approx_ms);
    std::printf("# csv,%.3g,%.5f,%.5f,%.5f,%.6f\n", pct,
                flat_approx_ms + flat_refine_ms, flat_approx_ms,
                clus_approx_ms + clus_refine_ms, clus_approx_ms);
  }
  std::printf(
      "\n(clustered refinement touches boundary clusters only; its total is "
      "dominated by materializing result ids — the order-of-magnitude "
      "approximate-phase gap §VI-C3 describes)\n");
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
