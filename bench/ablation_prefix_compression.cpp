// Ablation (§II-A, §VI-C2): prefix-compression strategies.
// Compares device bytes, simulated scan time and hypothetical stream time
// for kNone / kBytePrefix / kBitPacked on the paper's two key columns
// (spatial lon, TPC-H l_shipdate). Bit packing is what lets the hot set
// fit the 2 GB card at all.

#include <memory>

#include "bench/harness.h"
#include "bwd/bwd_column.h"
#include "workloads/spatial.h"
#include "workloads/tpch.h"

namespace wastenot {
namespace {

void Report(const char* label, const cs::Column& col,
            bwd::Compression compression) {
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto bwd_col = bwd::BwdColumn::Decompose(col, 32, dev.get(), compression);
  if (!bwd_col.ok()) {
    // kNone cannot represent negative domains; report and continue.
    std::printf("%-24s %-12s %s\n", label,
                bwd::CompressionToString(compression),
                bwd_col.status().ToString().c_str());
    return;
  }
  const uint64_t bytes = bwd_col->device_bytes();
  const double scan_ms =
      device::KernelSeconds(dev->spec(), bytes, 0, col.size()) * 1e3;
  const double stream_ms =
      device::TransferSeconds(dev->spec(), bytes) * 1e3;
  std::printf("%-24s %-12s %10.1f MB %8u bit %12.2f ms %12.2f ms\n", label,
              bwd::CompressionToString(compression), bytes / 1e6,
              bwd_col->spec().approximation_bits(), scan_ms, stream_ms);
  std::printf("# csv,%s,%s,%llu,%u,%.4f,%.4f\n", label,
              bwd::CompressionToString(compression),
              static_cast<unsigned long long>(bytes),
              bwd_col->spec().approximation_bits(), scan_ms, stream_ms);
}

int Run() {
  bench::Header("Ablation", "Prefix compression strategies",
                "device bytes / packed width / simulated scan / transfer");
  std::printf("%-24s %-12s %13s %12s %15s %15s\n", "column", "strategy",
              "device bytes", "width", "scan", "transfer");

  {
    cs::Table trips =
        workloads::GenerateTrips(bench::SpatialRows() / 4, 5);
    for (auto c : {bwd::Compression::kNone, bwd::Compression::kBytePrefix,
                   bwd::Compression::kBitPacked}) {
      Report("spatial lon", trips.column("lon"), c);
    }
    for (auto c : {bwd::Compression::kNone, bwd::Compression::kBytePrefix,
                   bwd::Compression::kBitPacked}) {
      Report("spatial lat", trips.column("lat"), c);
    }
  }
  {
    cs::Database db;
    workloads::GenerateTpch(bench::TpchSf() / 4, 6, &db);
    for (auto c : {bwd::Compression::kNone, bwd::Compression::kBytePrefix,
                   bwd::Compression::kBitPacked}) {
      Report("l_shipdate", db.table("lineitem").column("l_shipdate"), c);
    }
    for (auto c : {bwd::Compression::kNone, bwd::Compression::kBytePrefix,
                   bwd::Compression::kBitPacked}) {
      Report("l_quantity", db.table("lineitem").column("l_quantity"), c);
    }
  }
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
