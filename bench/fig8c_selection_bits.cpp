// Fig 8c: selection — time vs number of device-resident bits, at three
// selectivities (5%, .05%, .01%). Fewer resident bits mean a coarser
// approximation, more false positives, and a costlier refinement; the more
// selective the query, the fewer bits suffice for near-optimal time.

#include <memory>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "core/select.h"
#include "util/bits.h"
#include "workloads/uniform.h"

namespace wastenot {
namespace {

int Run() {
  const uint64_t n = bench::MicroRows();
  bench::Header("Fig 8c", "Selection, varying number of GPU-resident bits",
                "rows=" + std::to_string(n) +
                    "; series pairs: Approx+Refine and Approximate at "
                    "5%, .05%, .01% selectivity");

  cs::Column base = workloads::UniqueShuffledInts(n, 42);
  const uint32_t value_bits =
      bits::BitWidth(static_cast<uint64_t>(base.max_value()));
  const double stream_ms =
      bench::StreamHypothetical(base.byte_size()).total() * 1e3;
  const double selectivities[] = {0.05, 0.0005, 0.0001};

  std::vector<bench::SeriesRow> rows;
  for (uint32_t gpu_bits = 10; gpu_bits <= value_bits + 2; gpu_bits += 2) {
    // Request counts from the top of the 32-bit type: residual bits =
    // value_bits - gpu-resident value bits.
    const uint32_t residual =
        gpu_bits >= value_bits ? 0 : value_bits - gpu_bits;
    auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
    auto col = bwd::BwdColumn::Decompose(base, 32 - residual, dev.get());
    if (!col.ok()) continue;

    bench::SeriesRow row;
    row.x = std::min(gpu_bits, value_bits);
    for (double sel : selectivities) {
      const cs::RangePred pred = cs::RangePred::Lt(
          workloads::ThresholdForSelectivity(n, sel));
      core::SelectApproximate(*col, pred, dev.get());  // JIT pre-heat
      const auto clock0 = dev->clock().snapshot();
      core::ApproxSelection s = core::SelectApproximate(*col, pred, dev.get());
      const double approx_ms =
          (dev->clock().snapshot().device - clock0.device) * 1e3;
      core::PredicateRefinement conj{&*col, pred, &s.values};
      const double refine_ms =
          bench::TimeSeconds(
              [&] { core::SelectRefine(s.cands, std::span(&conj, 1)); }) *
          1e3;
      row.values.push_back(approx_ms + refine_ms);
      row.values.push_back(approx_ms);
    }
    row.values.push_back(stream_ms);
    rows.push_back(row);
  }
  bench::PrintSeries("GPU bits",
                     {"A+R (5%)", "Approx (5%)", "A+R (.05%)", "Approx (.05%)",
                      "A+R (.01%)", "Approx (.01%)", "Stream"},
                     rows);
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
