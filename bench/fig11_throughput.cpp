// Fig 11 ("A Gap in the Memory Wall"): query throughput of
//   (a) parallel CPU query streams, 1..32 threads — saturating at the
//       memory-bandwidth wall,
//   (b) an A&R stream alone (throughput from its per-query device+bus+host
//       time; the device has its own memory, so it is not behind the wall),
//   (c) both at once — the CPU keeps most of its throughput and the two
//       are roughly additive (the paper's 12.6 + 13.4 ≈ 26.0 q/s).
//
// Substitution note: the "GPU" here is simulated on the same host, so in
// the combined run the CPU streams are measured while the A&R stream's
// rate comes from its simulated+measured per-query time with its host
// share contending realistically.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "workloads/tpch.h"

namespace wastenot {
namespace {

/// One selectivity-varied Q6-style query per iteration (vary the year so
/// streams do not trivially share branch patterns).
core::QuerySpec StreamQuery(uint64_t i) {
  core::QuerySpec q = workloads::TpchQ6();
  const int year = 1993 + static_cast<int>(i % 5);
  q.predicates[0].range = cs::RangePred::Between(
      workloads::DateToDays(year, 1, 1),
      workloads::DateToDays(year + 1, 1, 1) - 1);
  return q;
}

/// Runs `threads` CPU query streams for `seconds`; returns queries/s.
double CpuStreamsQps(const cs::Database& db, unsigned threads,
                     double seconds) {
  std::atomic<uint64_t> queries{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      core::ClassicOptions opts;
      opts.threads = 1;  // one stream = one thread (paper §VI-E)
      uint64_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = core::ExecuteClassic(StreamQuery(i++), db, opts);
        if (r.ok()) queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  WallTimer timer;
  while (timer.Seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  return static_cast<double>(queries.load()) / timer.Seconds();
}

/// A&R stream throughput: per-query simulated device + bus + measured host
/// time over a few queries. `num_devices` replicated datasets multiply the
/// stream count (the paper uses both GTX 680 cards with replicated data).
double ArStreamQps(const core::QuerySpec&, const bwd::BwdTable& fact,
                   const bwd::BwdTable& dim, device::Device* dev,
                   int queries) {
  // Warm the JIT cache so the stream rate reflects steady state.
  for (int i = 0; i < 5; ++i) {
    (void)core::ExecuteAr(StreamQuery(static_cast<uint64_t>(i)), fact, &dim,
                          dev);
  }
  double total = 0;
  for (int i = 0; i < queries; ++i) {
    auto r = core::ExecuteAr(StreamQuery(static_cast<uint64_t>(i)), fact,
                             &dim, dev);
    if (!r.ok()) return 0;
    total += r->breakdown.total();
  }
  const double per_query = total / queries;
  return dev->spec().num_devices / per_query;
}

int Run() {
  const double sf = EnvDouble("WN_SCALE_TPCH_FIG11", 0.25);
  const double secs = bench::BenchSeconds();
  bench::Header("Fig 11", "GPUs versus multi-cores versus both",
                "SF=" + std::to_string(sf) + ", " + std::to_string(secs) +
                    "s per point (WN_SCALE_TPCH_FIG11, WN_BENCH_SECONDS)");

  cs::Database db;
  workloads::GenerateTpch(sf, 77, &db);
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto fact = bwd::BwdTable::Decompose(db.table("lineitem"),
                                       workloads::TpchAllResident(),
                                       dev.get());
  auto dim = bwd::BwdTable::Decompose(db.table("part"),
                                      workloads::TpchPartResident(),
                                      dev.get());
  if (!fact.ok() || !dim.ok()) return 1;

  const core::QuerySpec q = workloads::TpchQ6();

  std::printf("%-22s %14s\n", "configuration", "queries/s");
  auto report = [](const std::string& name, double qps) {
    std::printf("%-22s %14.1f\n", name.c_str(), qps);
    std::printf("# csv,%s,%.3f\n", name.c_str(), qps);
  };

  // (a) CPU streams, saturating the memory wall.
  const unsigned hw = std::thread::hardware_concurrency();
  double cpu_alone = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u, 32u}) {
    if (threads > 2 * hw) break;
    const double qps = CpuStreamsQps(db, threads, secs);
    report("CPU parallel x" + std::to_string(threads), qps);
    cpu_alone = std::max(cpu_alone, qps);
  }

  // (b) A&R stream alone.
  const double ar_alone = ArStreamQps(q, *fact, *dim, dev.get(), 5);
  report("A&R only", ar_alone);

  // (c) both at once: CPU streams measured while an A&R stream runs.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ar_queries{0};
  double ar_with_cpu = 0;
  std::thread ar_thread([&] {
    double total = 0;
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = core::ExecuteAr(StreamQuery(i++), *fact, &*dim, dev.get());
      if (!r.ok()) break;
      total += r->breakdown.total();
      ar_queries.fetch_add(1);
    }
    if (ar_queries.load() > 0) {
      ar_with_cpu =
          dev->spec().num_devices / (total / static_cast<double>(ar_queries.load()));
    }
  });
  const double cpu_with_ar = CpuStreamsQps(db, std::min(32u, 2 * hw), secs);
  stop.store(true);
  ar_thread.join();

  report("CPU w/ A&R", cpu_with_ar);
  report("A&R w/ CPU", ar_with_cpu);
  report("Cumulative", cpu_with_ar + ar_with_cpu);
  std::printf(
      "\nshape check: CPU saturates with threads; A&R adds throughput on "
      "top (paper: 16.2 CPU-only, 13.4 A&R, 26.0 cumulative)\n");
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
