// Fig 11 ("A Gap in the Memory Wall"): query throughput of
//   (a) parallel CPU query streams, 1..32 threads — saturating at the
//       memory-bandwidth wall,
//   (b) an A&R stream alone — per-query simulated device+bus+measured host
//       time (the device has its own memory, so it is not behind the wall),
//   (c) both at once — genuinely concurrent A&R streams served by a
//       QueryServer on one shared device while the CPU streams run; the
//       CPU keeps most of its throughput and the two are roughly additive
//       (the paper's 12.6 + 13.4 ≈ 26.0 q/s).
//
// Substitution note: the "GPU" here is simulated on the same host, so in
// the combined run the CPU streams are measured while the A&R streams'
// host shares contend realistically; each A&R query's breakdown is
// per-query-attributed (SimClock::QueryScope), so the simulated stream
// rate stays correct under interleaving.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "server/query_server.h"
#include "workloads/tpch.h"

namespace wastenot {
namespace {

/// One selectivity-varied Q6-style query per iteration (vary the year so
/// streams do not trivially share branch patterns).
core::QuerySpec StreamQuery(uint64_t i) {
  return workloads::TpchQ6YearVariant(i);
}

/// Runs `threads` CPU query streams for `seconds`; returns queries/s.
/// Both the completed count and the elapsed time are snapshotted at the
/// moment the measurement window closes — queries that finish during
/// worker shutdown do not inflate the rate, and join time is not in the
/// denominator.
double CpuStreamsQps(const cs::Database& db, unsigned threads,
                     double seconds) {
  std::atomic<uint64_t> queries{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  // Timer starts before the spawn loop so work done while later streams
  // are still being spawned is inside the measured window.
  WallTimer timer;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      core::ClassicOptions opts;
      opts.threads = 1;  // one stream = one thread (paper §VI-E)
      uint64_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = core::ExecuteClassic(StreamQuery(i++), db, opts);
        if (r.ok()) queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (timer.Seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const double elapsed = timer.Seconds();
  const uint64_t completed = queries.load(std::memory_order_relaxed);
  stop.store(true);
  for (auto& w : workers) w.join();
  return static_cast<double>(completed) / elapsed;
}

/// A&R stream throughput: per-query simulated device + bus + measured host
/// time over a few queries. `num_devices` replicated datasets multiply the
/// stream count (the paper uses both GTX 680 cards with replicated data).
double ArStreamQps(const bwd::BwdTable& fact, const bwd::BwdTable& dim,
                   device::Device* dev, int queries) {
  // One stream = one thread (paper §VI-E) — the same serial-Phase-R mode
  // the server's streams run in the combined configuration, so (b) and
  // (c) measure identical per-query execution.
  core::ArOptions opts;
  opts.num_threads = 1;
  // Warm the JIT cache so the stream rate reflects steady state.
  for (int i = 0; i < 5; ++i) {
    (void)core::ExecuteAr(StreamQuery(static_cast<uint64_t>(i)), fact, &dim,
                          dev, opts);
  }
  double total = 0;
  for (int i = 0; i < queries; ++i) {
    auto r = core::ExecuteAr(StreamQuery(static_cast<uint64_t>(i)), fact,
                             &dim, dev, opts);
    if (!r.ok()) return 0;
    total += r->breakdown.total();
  }
  const double per_query = total / queries;
  return dev->spec().num_devices / per_query;
}

/// The A&R side of the combined configuration: `streams` feeder threads
/// submit queries to `server` (all workers share one device) until `stop`;
/// per-query simulated+measured time accumulates from the per-query-
/// attributed breakdowns.
struct ArStreamDrivers {
  std::vector<std::thread> feeders;
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> total_nanos{0};  ///< Σ breakdown.total() (ns)

  void Start(server::QueryServer* server, unsigned streams,
             std::atomic<bool>* stop) {
    for (unsigned s = 0; s < streams; ++s) {
      feeders.emplace_back([this, server, stop, s] {
        uint64_t i = s;
        while (!stop->load(std::memory_order_relaxed)) {
          server::QueryRequest req;
          req.query = StreamQuery(i++);
          req.engine = server::EngineKind::kAr;
          auto future = server->Submit(std::move(req));
          server::QueryResponse resp = future.get();
          if (!resp.status.ok()) {
            // A silent break would deflate the measured rate; make the
            // dead stream visible.
            std::fprintf(stderr, "A&R stream %u aborted: %s\n", s,
                         resp.status.ToString().c_str());
            break;
          }
          completed.fetch_add(1, std::memory_order_relaxed);
          total_nanos.fetch_add(
              static_cast<uint64_t>(resp.breakdown.total() * 1e9),
              std::memory_order_relaxed);
        }
      });
    }
  }
  void Join() {
    for (auto& f : feeders) f.join();
  }
};

int Run() {
  const double sf = EnvDouble("WN_SCALE_TPCH_FIG11", 0.25);
  const double secs = bench::BenchSeconds();
  bench::Header("Fig 11", "GPUs versus multi-cores versus both",
                "SF=" + std::to_string(sf) + ", " + std::to_string(secs) +
                    "s per point (WN_SCALE_TPCH_FIG11, WN_BENCH_SECONDS)");

  cs::Database db;
  workloads::GenerateTpch(sf, 77, &db);
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto fact = bwd::BwdTable::Decompose(db.table("lineitem"),
                                       workloads::TpchAllResident(),
                                       dev.get());
  auto dim = bwd::BwdTable::Decompose(db.table("part"),
                                      workloads::TpchPartResident(),
                                      dev.get());
  if (!fact.ok() || !dim.ok()) return 1;

  std::printf("%-22s %14s\n", "configuration", "queries/s");
  auto report = [](const std::string& name, double qps) {
    std::printf("%-22s %14.1f\n", name.c_str(), qps);
    std::printf("# csv,%s,%.3f\n", name.c_str(), qps);
  };

  // (a) CPU streams, saturating the memory wall.
  const unsigned hw = std::thread::hardware_concurrency();
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u, 32u}) {
    if (threads > 2 * hw) break;
    const double qps = CpuStreamsQps(db, threads, secs);
    report("CPU parallel x" + std::to_string(threads), qps);
    bench::JsonAppend("cpu_parallel", threads, qps, "q/s");
  }

  // (b) A&R stream alone (serial, per-query simulated+measured time).
  const double ar_alone = ArStreamQps(*fact, *dim, dev.get(), 5);
  report("A&R only", ar_alone);
  bench::JsonAppend("ar_only", 0, ar_alone, "q/s");

  // (c) both at once: one shared device serves `num_devices` genuinely
  // concurrent A&R streams through the QueryServer while the CPU streams
  // are measured next to them. The per-query-attributed breakdowns give
  // the simulated stream rate; the completed count gives the wall rate.
  const unsigned ar_streams = dev->spec().num_devices;
  {
    server::ServerOptions sopts;
    sopts.num_workers = ar_streams;
    sopts.queue_capacity = 4 * ar_streams;
    server::QueryServer server(
        {&db, &*fact, &*dim, dev.get()}, sopts);

    std::atomic<bool> stop{false};
    ArStreamDrivers ar;
    WallTimer window;  // before the spawn, same discipline as CpuStreamsQps
    ar.Start(&server, ar_streams, &stop);

    const double cpu_with_ar = CpuStreamsQps(db, std::min(32u, 2 * hw), secs);
    // Wall-rate snapshot at window close (count and elapsed together, the
    // same discipline as CpuStreamsQps).
    const double elapsed = window.Seconds();
    const uint64_t ar_completed_window = ar.completed.load();
    stop.store(true);
    ar.Join();
    server.Shutdown();

    // Mean attributed per-query time from a post-join snapshot: the
    // feeders have quiesced, so completed and total_nanos describe the
    // same query set (loading them mid-run would tear — a query could be
    // counted in one but not the other).
    const uint64_t ar_completed = ar.completed.load();
    const uint64_t ar_total_nanos = ar.total_nanos.load();
    // Simulated stream rate: streams / mean attributed per-query time
    // (the paper's metric — each replicated device sustains one stream).
    const double ar_with_cpu =
        ar_completed > 0 ? static_cast<double>(ar_streams) /
                               (static_cast<double>(ar_total_nanos) * 1e-9 /
                                static_cast<double>(ar_completed))
                         : 0;
    // Wall rate actually served by the shared (simulated-on-host) device.
    const double ar_wall_qps =
        elapsed > 0 ? static_cast<double>(ar_completed_window) / elapsed : 0;

    report("CPU w/ A&R", cpu_with_ar);
    report("A&R w/ CPU", ar_with_cpu);
    report("A&R w/ CPU (wall)", ar_wall_qps);
    report("Cumulative", cpu_with_ar + ar_with_cpu);
    bench::JsonAppend("cpu_with_ar", 0, cpu_with_ar, "q/s");
    bench::JsonAppend("ar_with_cpu", 0, ar_with_cpu, "q/s");
    bench::JsonAppend("ar_with_cpu_wall", 0, ar_wall_qps, "q/s");
    bench::JsonAppend("cumulative", 0, cpu_with_ar + ar_with_cpu, "q/s");
    const server::ServerStats stats = server.stats();
    std::printf("# server: completed=%llu p50=%.1fms p99=%.1fms\n",
                static_cast<unsigned long long>(stats.completed),
                stats.p50_latency_seconds * 1e3,
                stats.p99_latency_seconds * 1e3);
  }
  std::printf(
      "\nshape check: CPU saturates with threads; A&R adds throughput on "
      "top (paper: 16.2 CPU-only, 13.4 A&R, 26.0 cumulative)\n");
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
