// Multi-device sharded execution: Phase-A scaling and data-local pruning.
//
// Sweeps the shard count 1..8 over two query shapes — the Fig 8b selection
// microbenchmark (unique shuffled ints, 20% qualifying) and the Fig 11
// TPC-H Q6 shape — executing each through ExecuteArSharded on a DeviceGroup
// of that many simulated devices. The approximate phase is embarrassingly
// parallel across shards, so its simulated time (max over the parallel
// devices) should scale near-linearly: phaseA(1)/phaseA(S) ~ S. The bench
// prints that scaling series plus the merged end-to-end wall time, and a
// data-local pruning demonstration: partitioning the micro table *on the
// predicate column* lets a selective query prune to a handful of shards.
//
// JSON records carry the shard count in their "shards" field so the perf
// trajectory can separate single-device and sharded points.

#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bwd/partition.h"
#include "columnstore/table.h"
#include "core/sharded_engine.h"
#include "device/device_group.h"
#include "workloads/tpch.h"
#include "workloads/uniform.h"

namespace wastenot {
namespace {

/// The Fig 8b shape as a QuerySpec: count + sum over a 20%-selective range
/// predicate on unique shuffled ints.
core::QuerySpec MicroSelection(uint64_t n) {
  core::QuerySpec q;
  q.table = "micro";
  q.name = "fig8b selection";
  q.predicates.push_back(core::Predicate{
      "v", cs::RangePred::Lt(workloads::ThresholdForSelectivity(n, 0.20))});
  q.aggregates.push_back(core::Aggregate::CountStar("qualifying"));
  q.aggregates.push_back(core::Aggregate::SumOf("v", "sum_v"));
  return q;
}

struct ShardPoint {
  uint32_t shards = 0;
  double approx_ms = 0;  ///< simulated Phase A+bus, max over parallel devices
  double wall_ms = 0;    ///< measured end-to-end fan-out time
};

/// Runs `query` sharded S ways (radix on `key`, so every shard holds ~1/S
/// of the rows regardless of the predicate) and returns the steady-state
/// timing point (one warm-up run absorbs per-device JIT compilation).
StatusOr<ShardPoint> MeasureSharded(const core::QuerySpec& query,
                                    const cs::Table& base,
                                    const std::vector<bwd::DecomposeRequest>& reqs,
                                    const std::string& key, uint32_t shards) {
  device::DeviceGroupOptions gopts;
  gopts.num_devices = shards;
  device::DeviceGroup group(gopts);

  bwd::PartitionSpec pspec;
  pspec.kind = bwd::PartitionKind::kRadix;
  pspec.key_column = key;
  pspec.num_shards = shards;
  WN_ASSIGN_OR_RETURN(bwd::ShardedBwdTable fact,
                      bwd::DecomposeSharded(base, reqs, pspec, &group));

  core::ShardedArOptions opts;
  opts.ar.num_threads = 0;  // fan shards out over the shared default pool
  WN_RETURN_IF_ERROR(
      core::ExecuteArSharded(query, fact, nullptr, &group, opts).status());

  ShardPoint point;
  point.shards = shards;
  WallTimer timer;
  WN_ASSIGN_OR_RETURN(
      core::ShardedArExecution exec,
      core::ExecuteArSharded(query, fact, nullptr, &group, opts));
  point.wall_ms = timer.Seconds() * 1e3;
  point.approx_ms =
      (exec.merged.breakdown.device_seconds + exec.merged.breakdown.bus_seconds) *
      1e3;
  return point;
}

void PrintScaling(const std::string& label,
                  const std::vector<ShardPoint>& points) {
  std::printf("\n%s\n", label.c_str());
  std::printf("%-10s %16s %16s %12s\n", "shards", "phase A+bus (ms)",
              "wall (ms)", "scaling");
  const double base = points.empty() ? 0 : points.front().approx_ms;
  for (const ShardPoint& p : points) {
    const double scaling = p.approx_ms > 0 ? base / p.approx_ms : 0;
    std::printf("%-10u %16.3f %16.3f %11.2fx\n", p.shards, p.approx_ms,
                p.wall_ms, scaling);
    std::printf("# csv,%s,%u,%.6f,%.6f,%.3f\n", label.c_str(), p.shards,
                p.approx_ms, p.wall_ms, scaling);
    bench::JsonAppend(label + "/approx", p.shards, p.approx_ms, "ms",
                      p.shards);
    bench::JsonAppend(label + "/wall", p.shards, p.wall_ms, "ms", p.shards);
    bench::JsonAppend(label + "/scaling", p.shards, scaling, "x", p.shards);
  }
}

int Run() {
  const uint64_t n = bench::MicroRows();
  const double sf = EnvDouble("WN_SCALE_TPCH_FIG11", 0.25);
  bench::Header("Multi-device", "Sharded A&R: Phase-A scaling 1..8 devices",
                "rows=" + std::to_string(n) + ", TPC-H SF=" +
                    std::to_string(sf) +
                    " (WN_SCALE_MICRO, WN_SCALE_TPCH_FIG11)");

  const std::vector<uint32_t> shard_counts = {1, 2, 3, 4, 6, 8};

  // Fig 8b shape: selection + aggregation over unique shuffled ints,
  // radix-sharded on the value column so shards stay balanced.
  cs::Table micro("micro");
  if (!micro.AddColumn("v", workloads::UniqueShuffledInts(n, 42)).ok()) {
    return 1;
  }
  const core::QuerySpec selection = MicroSelection(n);
  const std::vector<bwd::DecomposeRequest> micro_reqs = {
      bwd::DecomposeRequest{"v", 24}};
  std::vector<ShardPoint> micro_points;
  for (uint32_t shards : shard_counts) {
    auto point = MeasureSharded(selection, micro, micro_reqs, "v", shards);
    if (!point.ok()) {
      std::fprintf(stderr, "micro %u shards: %s\n", shards,
                   point.status().ToString().c_str());
      return 1;
    }
    micro_points.push_back(*point);
  }
  PrintScaling("fig8b_selection", micro_points);

  // Fig 11 / Q6 shape on TPC-H lineitem, radix-sharded on the part key
  // (uniform, and no Q6 predicate touches it, so all shards stay live and
  // balanced).
  cs::Database db;
  workloads::GenerateTpch(sf, 77, &db);
  const core::QuerySpec q6 = workloads::TpchQ6();
  std::vector<ShardPoint> q6_points;
  for (uint32_t shards : shard_counts) {
    auto point = MeasureSharded(q6, db.table("lineitem"),
                                workloads::TpchAllResident(), "l_partkey",
                                shards);
    if (!point.ok()) {
      std::fprintf(stderr, "q6 %u shards: %s\n", shards,
                   point.status().ToString().c_str());
      return 1;
    }
    q6_points.push_back(*point);
  }
  PrintScaling("tpch_q6", q6_points);

  // Data-local pruning: partition the micro table *on the predicate
  // column* with range shards — a 20%-selective prefix predicate then
  // provably touches only the low stripes, and the server-facing
  // TargetShards rule prunes the rest before any work is dispatched.
  {
    const uint32_t shards = 8;
    device::DeviceGroupOptions gopts;
    gopts.num_devices = shards;
    device::DeviceGroup group(gopts);
    bwd::PartitionSpec pspec;
    pspec.kind = bwd::PartitionKind::kRange;
    pspec.key_column = "v";
    pspec.num_shards = shards;
    auto fact = bwd::DecomposeSharded(micro, micro_reqs, pspec, &group);
    if (!fact.ok()) return 1;
    core::ShardedArOptions opts;
    opts.ar.num_threads = 0;
    auto run = [&](bool prune) -> double {
      opts.data_local_pruning = prune;
      (void)core::ExecuteArSharded(selection, *fact, nullptr, &group, opts);
      auto exec = core::ExecuteArSharded(selection, *fact, nullptr, &group,
                                         opts);
      if (!exec.ok()) return -1;
      std::printf("pruning %-3s: %zu of %u shards executed, "
                  "phase A+bus %.3f ms\n",
                  prune ? "on" : "off", exec->executed_shards.size(), shards,
                  (exec->merged.breakdown.device_seconds +
                   exec->merged.breakdown.bus_seconds) *
                      1e3);
      bench::JsonAppend(prune ? "pruning_on/executed_shards"
                              : "pruning_off/executed_shards",
                        shards, static_cast<double>(exec->executed_shards.size()),
                        "shards", shards);
      return static_cast<double>(exec->executed_shards.size());
    };
    std::printf("\ndata-local pruning (range shards on predicate column):\n");
    if (run(false) < 0 || run(true) < 0) return 1;
  }

  // Acceptance shape check: the approximate phase runs on S independent
  // simulated devices, so its attributed time (max over shards) should
  // shrink near-linearly with S.
  if (micro_points.size() >= 4 && micro_points[3].approx_ms > 0) {
    const double scaling_at_4 =
        micro_points[0].approx_ms / micro_points[3].approx_ms;
    std::printf("\nshape check: Phase-A scaling at 4 shards = %.2fx "
                "(target >= 3x)\n",
                scaling_at_4);
  }
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
