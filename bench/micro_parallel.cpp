// micro_parallel — morsel-parallel Phase-R (refinement) scaling.
//
// Measures the host refinement operators across thread counts 1..8 on one
// dataset shape: uniform rows, a 10 % selectivity range predicate, half
// the value bits device-resident (so refinement has real residual work):
//   1. fused selection refinement (SelectRefine, Algorithm 2);
//   2. grouping refinement (GroupRefine: translucent join + subgroup);
//   3. grouped sum refinement (GroupedSumRefine);
//   4. end-to-end ExecuteAr: host wall seconds and host CPU seconds
//      (their ratio is the measured Phase-R parallel speedup).
//
// Each series reports throughput (Melem/s over the candidate count) per
// thread count plus the speedup relative to num_threads=1. Run with
// --json BENCH_micro_parallel.json for the perf-trajectory records;
// --rows N sets the row count (the headline number uses 8M rows; CI smoke
// uses 2000).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "core/aggregate.h"
#include "core/ar_engine.h"
#include "core/group.h"
#include "core/select.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace wastenot {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

/// One pool per measured thread count, built once (spawn cost excluded
/// from the timed region, as a long-running server would amortize it).
struct Pools {
  std::vector<std::unique_ptr<ThreadPool>> pools;
  Pools() {
    for (unsigned t : kThreadCounts) {
      pools.push_back(t > 1 ? std::make_unique<ThreadPool>(t) : nullptr);
    }
  }
  MorselContext Ctx(size_t idx) const {
    MorselContext ctx;
    ctx.pool = pools[idx].get();
    return ctx;
  }
};

double MelemPerSec(uint64_t n, double seconds) {
  return seconds > 0 ? static_cast<double>(n) / seconds / 1e6 : 0;
}

/// Prints + records one scaling series (throughput and speedup vs t=1).
void Report(const char* name, uint64_t elems,
            const std::vector<double>& seconds) {
  std::vector<bench::SeriesRow> tput, speedup;
  for (size_t i = 0; i < seconds.size(); ++i) {
    tput.push_back({static_cast<double>(kThreadCounts[i]),
                    {MelemPerSec(elems, seconds[i])}});
    speedup.push_back({static_cast<double>(kThreadCounts[i]),
                       {seconds[i] > 0 ? seconds[0] / seconds[i] : 0}});
  }
  std::printf("\n-- %s --\n", name);
  bench::PrintSeries("threads", {std::string(name)}, tput, "Melem/s");
  bench::PrintSeries("threads", {std::string(name) + "_speedup"}, speedup,
                     "x");
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  using namespace wastenot;
  bench::ParseArgs(argc, argv);
  const uint64_t n = bench::MicroRows();
  const Pools pools;

  bench::Header("micro_parallel",
                "morsel-parallel Phase-R refinement scaling, threads 1..8",
                "rows=" + std::to_string(n) +
                    ", 10% selectivity, half the bits resident, median of 3");

  // ---- dataset: 24-bit values, 12 device bits (12 residual bits) ---------
  Xoshiro256 rng(42);
  std::vector<int64_t> values(n), groups(n);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = static_cast<int64_t>(rng.Next() & ((1u << 24) - 1));
    groups[i] = static_cast<int64_t>(rng.Next() & 4095);
  }
  cs::Table table("fact");
  {
    cs::Column vcol = cs::Column::FromI64(values);
    vcol.ComputeStats();
    (void)table.AddColumn("v", std::move(vcol));
    cs::Column gcol = cs::Column::FromI64(groups);
    gcol.ComputeStats();
    (void)table.AddColumn("g", std::move(gcol));
  }
  device::Device dev(device::DeviceSpec::Gtx680());
  auto fact = bwd::BwdTable::Decompose(
      table,
      {{"v", 12, bwd::Compression::kBitPacked},
       {"g", 6, bwd::Compression::kBitPacked}},
      &dev);
  if (!fact.ok()) {
    std::fprintf(stderr, "decompose failed: %s\n",
                 fact.status().ToString().c_str());
    return 1;
  }
  const bwd::BwdColumn& vcol = fact->column("v");
  const bwd::BwdColumn& gcol = fact->column("g");

  // ---- candidates: 10 % selectivity approximate selection ----------------
  const cs::RangePred pred{0, (1 << 24) / 10};
  core::ApproxSelection sel = core::SelectApproximate(vcol, pred, &dev);
  const uint64_t num_cands = sel.cands.size();
  std::printf("candidates: %llu (%.2f%% of %llu rows)\n",
              static_cast<unsigned long long>(num_cands),
              100.0 * static_cast<double>(num_cands) /
                  static_cast<double>(std::max<uint64_t>(n, 1)),
              static_cast<unsigned long long>(n));

  core::PredicateRefinement conj;
  conj.column = &vcol;
  conj.pred = pred;
  conj.approx = &sel.values;

  // ---- 1) fused selection refinement (Algorithm 2) -----------------------
  {
    std::vector<double> seconds;
    for (size_t i = 0; i < std::size(kThreadCounts); ++i) {
      const MorselContext ctx = pools.Ctx(i);
      seconds.push_back(bench::TimeSeconds([&] {
        core::RefinedSelection r = core::SelectRefine(
            sel.cands, std::span(&conj, 1), /*keep_values=*/false, ctx);
        if (r.ids.size() > num_cands) std::abort();  // keep it live
      }));
    }
    Report("select_refine", num_cands, seconds);
  }

  // ---- 2) grouping refinement (translucent join + subgroup) --------------
  const core::RefinedSelection refined =
      core::SelectRefine(sel.cands, std::span(&conj, 1));
  const core::ApproxGrouping pre =
      core::GroupApproximate(gcol, &sel.cands, &dev);
  {
    const bwd::BwdColumn* cols[] = {&gcol};
    std::vector<double> seconds;
    for (size_t i = 0; i < std::size(kThreadCounts); ++i) {
      const MorselContext ctx = pools.Ctx(i);
      seconds.push_back(bench::TimeSeconds([&] {
        auto g = core::GroupRefine(cols, pre, sel.cands, refined.ids, ctx);
        if (!g.ok()) std::abort();
      }));
    }
    Report("group_refine", refined.ids.size(), seconds);
  }

  // ---- 3) grouped sum refinement -----------------------------------------
  {
    const uint64_t nref = refined.ids.size();
    std::vector<int64_t> exact(nref);
    std::vector<uint32_t> gids(nref);
    for (uint64_t i = 0; i < nref; ++i) {
      exact[i] = values[refined.ids[i]];
      gids[i] = static_cast<uint32_t>(groups[refined.ids[i]]);
    }
    std::vector<double> seconds;
    for (size_t i = 0; i < std::size(kThreadCounts); ++i) {
      const MorselContext ctx = pools.Ctx(i);
      seconds.push_back(bench::TimeSeconds([&] {
        std::vector<int64_t> sums =
            core::GroupedSumRefine(exact, gids, 4096, ctx);
        if (sums.size() != 4096) std::abort();
      }));
    }
    Report("grouped_sum_refine", nref, seconds);
  }

  // ---- 4) end-to-end A&R: host wall vs host CPU seconds ------------------
  {
    core::QuerySpec q;
    q.table = "fact";
    q.predicates = {{"v", pred}};
    q.group_by = {"g"};
    q.aggregates = {core::Aggregate::CountStar("cnt"),
                    core::Aggregate::SumOf("v", "sum_v")};
    std::vector<bench::SeriesRow> wall_rows, cpu_rows, speedup_rows;
    double wall_t1 = 0;
    for (unsigned t : kThreadCounts) {
      core::ArOptions opts;
      opts.num_threads = t;
      // Median-of-3 on the host wall time (the breakdown pair travels
      // together so cpu stays consistent with the reported wall).
      std::vector<std::pair<double, double>> reps;
      for (int r = 0; r < 3; ++r) {
        auto exec = core::ExecuteAr(q, *fact, nullptr, &dev, opts);
        if (!exec.ok()) std::abort();
        reps.emplace_back(exec->breakdown.host_seconds,
                          exec->breakdown.host_cpu_seconds);
      }
      std::sort(reps.begin(), reps.end());
      const double wall = reps[1].first;
      const double cpu = reps[1].second;
      if (t == 1) wall_t1 = wall;
      wall_rows.push_back({static_cast<double>(t), {wall * 1e3}});
      cpu_rows.push_back({static_cast<double>(t), {cpu * 1e3}});
      speedup_rows.push_back(
          {static_cast<double>(t), {wall > 0 ? wall_t1 / wall : 0}});
    }
    std::printf("\n-- end-to-end ExecuteAr host time --\n");
    bench::PrintSeries("threads", {"ar_host_wall"}, wall_rows, "ms");
    bench::PrintSeries("threads", {"ar_host_cpu"}, cpu_rows, "ms");
    bench::PrintSeries("threads", {"ar_host_speedup"}, speedup_rows, "x");
  }
  return 0;
}
