// Fig 10 (a, b, c): TPC-H Q1, Q6, Q14 under four configurations —
//   A & R                  (all touched columns fully device-resident)
//   A & R Space Constraint (l_shipdate decomposed 24-bit GPU / 8-bit CPU)
//   MonetDB                (CPU bulk engine)
//   Stream (Hypothetical)  (PCI-E push of the query's input columns)
// Each bar carries its GPU/CPU/PCI breakdown; results are verified
// against the classic engine.

#include <memory>
#include <thread>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "workloads/tpch.h"

namespace wastenot {
namespace {

uint64_t QueryInputBytes(const core::QuerySpec& q, const cs::Database& db) {
  const cs::Table& fact = db.table(q.table);
  uint64_t bytes = 0;
  std::vector<std::string> cols;
  for (const auto& p : q.predicates) cols.push_back(p.column);
  for (const auto& g : q.group_by) cols.push_back(g);
  for (const auto& a : q.aggregates) {
    for (const auto& t : a.terms) {
      if (!t.from_dimension) cols.push_back(t.column);
    }
  }
  if (q.join.has_value()) cols.push_back(q.join->fk_column);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  for (const auto& c : cols) bytes += fact.column(c).byte_size();
  return bytes;
}

int RunQuery(const char* figure, core::QuerySpec query,
             const cs::Database& db, const bwd::BwdTable& fact_all,
             const bwd::BwdTable& fact_constrained, const bwd::BwdTable& dim,
             device::Device* dev) {
  bench::Header(figure, query.name,
                "SF=" + std::to_string(bench::TpchSf()) +
                    " (paper: SF-10); WN_SCALE_TPCH overrides");
  if (query.join.has_value()) {
    Status st = workloads::ResolvePromoFilter(db, &query);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Pre-heat the JIT cache: the paper reports post-compile (3rd) runs.
  (void)core::ExecuteAr(query, fact_all, &dim, dev);
  (void)core::ExecuteAr(query, fact_constrained, &dim, dev);
  auto ar_all = core::ExecuteAr(query, fact_all, &dim, dev);
  auto ar_constrained = core::ExecuteAr(query, fact_constrained, &dim, dev);
  if (!ar_all.ok() || !ar_constrained.ok()) {
    std::fprintf(stderr, "A&R failed: %s / %s\n",
                 ar_all.status().ToString().c_str(),
                 ar_constrained.status().ToString().c_str());
    return 1;
  }

  // The paper's CPU baseline runs MonetDB's 'sequential_pipe' (§VI-A):
  // single-threaded bulk operators, pre-heated (third run reported).
  core::ClassicOptions copts;
  copts.threads = 1;
  StatusOr<core::QueryResult> classic = core::ExecuteClassic(query, db, copts);
  core::ExecutionBreakdown monetdb;
  monetdb.host_seconds = bench::TimeSeconds(
      [&] { classic = core::ExecuteClassic(query, db, copts); });
  if (!classic.ok()) return 1;

  bench::PrintBars({
      {"A & R", ar_all->breakdown},
      {"A & R Space Constraint", ar_constrained->breakdown},
      {"MonetDB", monetdb},
      {"Stream (Hypothetical)",
       bench::StreamHypothetical(QueryInputBytes(query, db))},
  });

  const bool ok = ar_all->result == *classic &&
                  ar_constrained->result == *classic;
  std::printf("\nrows selected: %llu; engines agree: %s\n",
              static_cast<unsigned long long>(classic->selected_rows),
              ok ? "yes" : "NO — BUG");
  std::printf("%s\n", classic->ToString(query.aggregates).c_str());
  return ok ? 0 : 1;
}

int Run() {
  const double sf = bench::TpchSf();
  cs::Database db;
  workloads::GenerateTpch(sf, 4242, &db);

  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto fact_all = bwd::BwdTable::Decompose(
      db.table("lineitem"), workloads::TpchAllResident(), dev.get());
  auto fact_constrained = bwd::BwdTable::Decompose(
      db.table("lineitem"), workloads::TpchSpaceConstrained(), dev.get());
  auto dim = bwd::BwdTable::Decompose(db.table("part"),
                                      workloads::TpchPartResident(),
                                      dev.get());
  if (!fact_all.ok() || !fact_constrained.ok() || !dim.ok()) {
    std::fprintf(stderr, "decompose failed\n");
    return 1;
  }
  std::printf("lineitem device footprint: %.1f MB (all resident), "
              "%.1f MB (space constrained)\n\n",
              fact_all->device_bytes() / 1e6,
              fact_constrained->device_bytes() / 1e6);

  int rc = 0;
  rc |= RunQuery("Fig 10a", workloads::TpchQ1(), db, *fact_all,
                 *fact_constrained, *dim, dev.get());
  rc |= RunQuery("Fig 10b", workloads::TpchQ6(), db, *fact_all,
                 *fact_constrained, *dim, dev.get());
  rc |= RunQuery("Fig 10c", workloads::TpchQ14(), db, *fact_all,
                 *fact_constrained, *dim, dev.get());

  // Q14 headline number.
  {
    core::QuerySpec q14 = workloads::TpchQ14();
    (void)workloads::ResolvePromoFilter(db, &q14);
    auto result = core::ExecuteClassic(q14, db);
    if (result.ok()) {
      std::printf("promo_revenue = %.4f %%\n",
                  workloads::PromoRevenuePercent(result->agg_values[0][0],
                                                 result->agg_values[0][1]));
    }
  }
  return rc;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
