// Fig 10 (a, b, c): TPC-H Q1, Q6, Q14 under four configurations —
//   A & R                  (all touched columns fully device-resident)
//   A & R Space Constraint (l_shipdate decomposed 24-bit GPU / 8-bit CPU)
//   MonetDB                (CPU bulk engine)
//   Stream (Hypothetical)  (PCI-E push of the query's input columns)
// Each bar carries its GPU/CPU/PCI breakdown; results are verified
// against the classic engine.

#include <memory>
#include <thread>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "core/plan_exec.h"
#include "device/residency_cache.h"
#include "server/scheduler.h"
#include "workloads/tpch.h"

namespace wastenot {
namespace {

uint64_t QueryInputBytes(const core::QuerySpec& q, const cs::Database& db) {
  const cs::Table& fact = db.table(q.table);
  uint64_t bytes = 0;
  std::vector<std::string> cols;
  for (const auto& p : q.predicates) cols.push_back(p.column);
  for (const auto& g : q.group_by) cols.push_back(g);
  for (const auto& a : q.aggregates) {
    for (const auto& t : a.terms) {
      if (!t.from_dimension) cols.push_back(t.column);
    }
  }
  if (q.join.has_value()) cols.push_back(q.join->fk_column);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  for (const auto& c : cols) bytes += fact.column(c).byte_size();
  return bytes;
}

int RunQuery(const char* figure, core::QuerySpec query,
             const cs::Database& db, const bwd::BwdTable& fact_all,
             const bwd::BwdTable& fact_constrained, const bwd::BwdTable& dim,
             device::Device* dev) {
  bench::Header(figure, query.name,
                "SF=" + std::to_string(bench::TpchSf()) +
                    " (paper: SF-10); WN_SCALE_TPCH overrides");
  if (query.join.has_value()) {
    Status st = workloads::ResolvePromoFilter(db, &query);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Pre-heat the JIT cache: the paper reports post-compile (3rd) runs.
  (void)core::ExecuteAr(query, fact_all, &dim, dev);
  (void)core::ExecuteAr(query, fact_constrained, &dim, dev);
  auto ar_all = core::ExecuteAr(query, fact_all, &dim, dev);
  auto ar_constrained = core::ExecuteAr(query, fact_constrained, &dim, dev);
  if (!ar_all.ok() || !ar_constrained.ok()) {
    std::fprintf(stderr, "A&R failed: %s / %s\n",
                 ar_all.status().ToString().c_str(),
                 ar_constrained.status().ToString().c_str());
    return 1;
  }

  // The paper's CPU baseline runs MonetDB's 'sequential_pipe' (§VI-A):
  // single-threaded bulk operators, pre-heated (third run reported).
  core::ClassicOptions copts;
  copts.threads = 1;
  StatusOr<core::QueryResult> classic = core::ExecuteClassic(query, db, copts);
  core::ExecutionBreakdown monetdb;
  monetdb.host_seconds = bench::TimeSeconds(
      [&] { classic = core::ExecuteClassic(query, db, copts); });
  if (!classic.ok()) return 1;

  bench::PrintBars({
      {"A & R", ar_all->breakdown},
      {"A & R Space Constraint", ar_constrained->breakdown},
      {"MonetDB", monetdb},
      {"Stream (Hypothetical)",
       bench::StreamHypothetical(QueryInputBytes(query, db))},
  });

  const bool ok = ar_all->result == *classic &&
                  ar_constrained->result == *classic;
  std::printf("\nrows selected: %llu; engines agree: %s\n",
              static_cast<unsigned long long>(classic->selected_rows),
              ok ? "yes" : "NO — BUG");
  std::printf("%s\n", classic->ToString(query.aggregates).c_str());
  return ok ? 0 : 1;
}

/// The multi-join extension: Q3/Q10 as physical plans through every
/// engine's general executor. Each bar series is prefixed with the query
/// name, so --json carries one series per query x engine.
int RunMultiJoinPlan(const core::PhysicalPlan& plan, const cs::Database& db,
                     const bwd::BwdTable& fact, const core::BwdTableMap& dims,
                     device::Device* dev) {
  bench::Header("Fig 10 (multi-join)", plan.name,
                "lineitem x orders x customer physical plan, all engines");

  // MonetDB baseline: single-threaded exact evaluation, pre-heated.
  auto classic = core::ExecutePlanClassic(plan, db);
  core::ExecutionBreakdown monetdb;
  monetdb.host_seconds = bench::TimeSeconds(
      [&] { classic = core::ExecutePlanClassic(plan, db); });
  if (!classic.ok()) {
    std::fprintf(stderr, "classic failed: %s\n",
                 classic.status().ToString().c_str());
    return 1;
  }

  (void)core::ExecutePlanAr(plan, fact, dims, dev);  // pre-heat
  auto ar = core::ExecutePlanAr(plan, fact, dims, dev);
  if (!ar.ok()) {
    std::fprintf(stderr, "A&R failed: %s\n", ar.status().ToString().c_str());
    return 1;
  }

  device::ResidencyCache cache(dev);
  (void)core::ExecutePlanStreaming(plan, db, dev, &cache);  // warm hot set
  auto streaming = core::ExecutePlanStreaming(plan, db, dev, &cache);
  if (!streaming.ok()) {
    std::fprintf(stderr, "streaming failed: %s\n",
                 streaming.status().ToString().c_str());
    return 1;
  }

  bench::PrintBars({
      {plan.name + " / A & R", ar->breakdown},
      {plan.name + " / MonetDB", monetdb},
      {plan.name + " / Streaming", streaming->breakdown},
  });

  const bool ok =
      ar->result == *classic && streaming->result == *classic;
  std::printf("\nrows selected: %llu; groups: %llu; engines agree: %s\n",
              static_cast<unsigned long long>(classic->selected_rows),
              static_cast<unsigned long long>(classic->num_groups()),
              ok ? "yes" : "NO — BUG");
  return ok ? 0 : 1;
}

/// The same plans through the serving stack: the AdaptiveScheduler prices
/// each plan with core::EstimatePlanCost, picks an engine, and serves it
/// progressively (approximate first, refined exact second).
int RunPlanServing(const std::vector<core::PhysicalPlan>& plans,
                   const cs::Database& db, const bwd::BwdTable& fact,
                   const core::BwdTableMap& dims, device::Device* dev) {
  bench::Header("Fig 10 (serving)", "Q3/Q10 via AdaptiveScheduler",
                "plan requests priced per-plan, served progressively");
  server::QueryServer::Backend backend;
  backend.db = &db;
  backend.fact = &fact;
  backend.device = dev;
  backend.dim_tables = &dims;
  server::SchedulerOptions opts;
  opts.server.num_workers = 2;
  server::AdaptiveScheduler scheduler(backend, opts);

  int rc = 0;
  for (const auto& plan : plans) {
    auto reference = core::ExecutePlanClassic(plan, db);
    if (!reference.ok()) {
      std::fprintf(stderr, "classic failed: %s\n",
                   reference.status().ToString().c_str());
      rc = 1;
      continue;
    }
    const server::SchedulerDecision d = scheduler.Decide(plan);
    const double seconds = bench::TimeSeconds([&] {
      server::ProgressiveFutures futures = scheduler.Submit("bench", plan);
      (void)futures.approximate.get();
      server::QueryResponse refined = futures.refined.get();
      if (!refined.status.ok() || !(refined.result == *reference)) rc = 1;
    });
    const char* engine = d.engine == server::EngineKind::kAr ? "A&R"
                         : d.engine == server::EngineKind::kClassic
                             ? "classic"
                             : "streaming";
    std::printf("%-12s engine=%-9s (est A&R %.4fs, classic %.4fs, "
                "streaming %.4fs; rule: %s)  served in %.4fs\n",
                plan.name.c_str(), engine, d.est_ar_seconds,
                d.est_classic_seconds, d.est_streaming_seconds, d.reason,
                seconds);
    bench::JsonAppend(plan.name + " / served", 0, seconds * 1e3, "ms");
  }
  std::printf("serving results %s\n", rc == 0 ? "verified" : "MISMATCH");
  scheduler.Shutdown();
  return rc;
}

int Run() {
  const double sf = bench::TpchSf();
  cs::Database db;
  workloads::GenerateTpch(sf, 4242, &db);

  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto fact_all = bwd::BwdTable::Decompose(
      db.table("lineitem"), workloads::TpchAllResident(), dev.get());
  auto fact_constrained = bwd::BwdTable::Decompose(
      db.table("lineitem"), workloads::TpchSpaceConstrained(), dev.get());
  auto dim = bwd::BwdTable::Decompose(db.table("part"),
                                      workloads::TpchPartResident(),
                                      dev.get());
  if (!fact_all.ok() || !fact_constrained.ok() || !dim.ok()) {
    std::fprintf(stderr, "decompose failed\n");
    return 1;
  }
  std::printf("lineitem device footprint: %.1f MB (all resident), "
              "%.1f MB (space constrained)\n\n",
              fact_all->device_bytes() / 1e6,
              fact_constrained->device_bytes() / 1e6);

  int rc = 0;
  rc |= RunQuery("Fig 10a", workloads::TpchQ1(), db, *fact_all,
                 *fact_constrained, *dim, dev.get());
  rc |= RunQuery("Fig 10b", workloads::TpchQ6(), db, *fact_all,
                 *fact_constrained, *dim, dev.get());
  rc |= RunQuery("Fig 10c", workloads::TpchQ14(), db, *fact_all,
                 *fact_constrained, *dim, dev.get());

  // Q14 headline number.
  {
    core::QuerySpec q14 = workloads::TpchQ14();
    (void)workloads::ResolvePromoFilter(db, &q14);
    auto result = core::ExecuteClassic(q14, db);
    if (result.ok()) {
      std::printf("promo_revenue = %.4f %%\n",
                  workloads::PromoRevenuePercent(result->agg_values[0][0],
                                                 result->agg_values[0][1]));
    }
  }

  // Multi-join plans (Q3, Q10): lineitem gains the resident l_orderkey FK,
  // orders and customer are decomposed fully resident.
  std::vector<bwd::DecomposeRequest> mj_reqs = workloads::TpchAllResident();
  for (const auto& r : workloads::TpchMultiJoinResident()) {
    mj_reqs.push_back(r);
  }
  auto fact_mj = bwd::BwdTable::Decompose(db.table("lineitem"), mj_reqs,
                                          dev.get());
  auto orders = bwd::BwdTable::Decompose(
      db.table("orders"), workloads::TpchOrdersResident(), dev.get());
  auto customer = bwd::BwdTable::Decompose(
      db.table("customer"), workloads::TpchCustomerResident(), dev.get());
  if (!fact_mj.ok() || !orders.ok() || !customer.ok()) {
    std::fprintf(stderr, "multi-join decompose failed\n");
    return 1;
  }
  const core::BwdTableMap dims = {{"orders", &*orders},
                                  {"customer", &*customer}};
  rc |= RunMultiJoinPlan(workloads::TpchQ3(), db, *fact_mj, dims, dev.get());
  rc |= RunMultiJoinPlan(workloads::TpchQ10(), db, *fact_mj, dims, dev.get());
  rc |= RunPlanServing({workloads::TpchQ3(), workloads::TpchQ10()}, db,
                       *fact_mj, dims, dev.get());
  return rc;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
