// Fig 8b: selection on distributed data (8 bits CPU-resident) — time vs
// qualifying tuples. The refinement now joins every candidate with the
// host residual and re-evaluates the precise predicate, so high
// selectivities make refinement dominate (the paper's crossover vs
// MonetDB at ~60% qualifying tuples).

#include <memory>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "columnstore/select.h"
#include "core/select.h"
#include "workloads/uniform.h"

namespace wastenot {
namespace {

int Run() {
  const uint64_t n = bench::MicroRows();
  bench::Header("Fig 8b", "Selection on distributed data (8 bit on CPU)",
                "rows=" + std::to_string(n) +
                    " unique shuffled ints (paper: 100M)");

  cs::Column base = workloads::UniqueShuffledInts(n, 42);
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto col = bwd::BwdColumn::Decompose(base, 24, dev.get());  // 8 residual
  if (!col.ok()) {
    std::fprintf(stderr, "decompose failed: %s\n",
                 col.status().ToString().c_str());
    return 1;
  }
  std::printf("device: %u-bit approximation, host residual: %u bits\n\n",
              col->spec().approximation_bits(), col->spec().residual_bits);

  const double stream_ms =
      bench::StreamHypothetical(base.byte_size()).total() * 1e3;

  std::vector<bench::SeriesRow> rows;
  for (double pct : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
    const cs::RangePred pred = cs::RangePred::Lt(
        workloads::ThresholdForSelectivity(n, pct / 100.0));

    const double monetdb_ms =
        bench::TimeSeconds([&] { cs::Select(base, pred); }) * 1e3;

    // Pre-heat the JIT cache (paper reports post-compile runs).
    core::SelectApproximate(*col, pred, dev.get());
    core::ApproxSelection sel;
    const auto clock0 = dev->clock().snapshot();
    sel = core::SelectApproximate(*col, pred, dev.get());
    const auto clock1 = dev->clock().snapshot();
    // Candidates and their approximations cross the bus for refinement.
    dev->ChargeTransfer(sel.cands.size() * (sizeof(cs::oid_t) + 3));
    const auto clock2 = dev->clock().snapshot();
    const double approx_ms = (clock1.device - clock0.device) * 1e3;
    const double bus_ms = (clock2.bus - clock1.bus) * 1e3;

    core::PredicateRefinement conj{&*col, pred, &sel.values};
    const double refine_ms =
        bench::TimeSeconds(
            [&] { core::SelectRefine(sel.cands, std::span(&conj, 1)); }) *
        1e3;

    rows.push_back(bench::SeriesRow{
        pct,
        {monetdb_ms, approx_ms + bus_ms + refine_ms, approx_ms, stream_ms}});
  }
  bench::PrintSeries("qualifying %",
                     {"MonetDB", "Approx+Refine", "Approximate", "Stream"},
                     rows);
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
