// Ablation (§III-A): the rule-based optimizer that pushes the most
// selective approximate selection down. With a highly selective predicate
// ordered *after* an unselective one, pushdown shrinks the candidate list
// the chained selections and refinement must touch.

#include <memory>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "workloads/uniform.h"

namespace wastenot {
namespace {

int Run() {
  const uint64_t n = bench::MicroRows() / 2;
  bench::Header("Ablation", "Approximate-selection pushdown (rule-based "
                            "optimizer on/off)",
                "rows=" + std::to_string(n) +
                    "; predicates given unselective-first");

  cs::Database db;
  cs::Table t("r");
  (void)t.AddColumn("broad", workloads::UniqueShuffledInts(n, 1));
  (void)t.AddColumn("narrow", workloads::UniqueShuffledInts(n, 2));
  (void)t.AddColumn("v", workloads::UniqueShuffledInts(n, 3));
  db.AddTable(std::move(t));

  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto fact = bwd::BwdTable::Decompose(
      db.table("r"),
      {{"broad", 24, bwd::Compression::kBitPacked},
       {"narrow", 24, bwd::Compression::kBitPacked},
       {"v", 24, bwd::Compression::kBitPacked}},
      dev.get());
  if (!fact.ok()) return 1;

  core::QuerySpec q;
  q.table = "r";
  // Written unselective-first: 90% then 0.1%.
  q.predicates = {
      {"broad", cs::RangePred::Lt(
                    workloads::ThresholdForSelectivity(n, 0.9))},
      {"narrow", cs::RangePred::Lt(
                     workloads::ThresholdForSelectivity(n, 0.001))},
  };
  q.aggregates = {core::Aggregate::SumOf("v", "sum_v")};

  for (bool pushdown : {false, true}) {
    core::ArOptions opts;
    opts.pushdown = pushdown;
    (void)core::ExecuteAr(q, *fact, nullptr, dev.get(), opts);  // JIT warm
    WallTimer timer;
    auto ar = core::ExecuteAr(q, *fact, nullptr, dev.get(), opts);
    const double wall_ms = timer.Millis();
    if (!ar.ok()) return 1;
    std::printf(
        "pushdown=%-5s  candidates=%9llu  refined=%9llu  "
        "sim total=%8.3f ms  wall=%8.1f ms\n",
        pushdown ? "on" : "off",
        static_cast<unsigned long long>(ar->num_candidates),
        static_cast<unsigned long long>(ar->num_refined),
        ar->breakdown.total() * 1e3, wall_ms);
    std::printf("# csv,pushdown_%s,%llu,%llu,%.6f\n", pushdown ? "on" : "off",
                static_cast<unsigned long long>(ar->num_candidates),
                static_cast<unsigned long long>(ar->num_refined),
                ar->breakdown.total());
  }
  std::printf("\n(the optimizer evaluates the 0.1%% predicate first, so the "
              "90%% predicate only probes its ~0.1%% candidate list)\n");
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
