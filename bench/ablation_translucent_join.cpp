// Ablation (§IV-A): the translucent join versus the generic alternatives
// it replaces — a hash join (build id->position, probe) and a sort-merge
// join — on exactly the inputs it is specialized for: a permuted candidate
// list A and a same-permutation subset B.
//
// google-benchmark binary; the translucent join should win by avoiding
// both the hash build and the sorts, at O(|A|+|B|) accesses.

#include <algorithm>
#include <unordered_map>

#include <benchmark/benchmark.h>

#include "core/translucent_join.h"
#include "util/random.h"

namespace wastenot {
namespace {

struct Inputs {
  cs::OidVec a;
  cs::OidVec b;
};

Inputs MakeInputs(uint64_t n, double subset_ratio, uint64_t seed) {
  Inputs in;
  in.a.resize(n);
  for (uint64_t i = 0; i < n; ++i) in.a[i] = static_cast<cs::oid_t>(i);
  Shuffle(in.a, seed);
  Xoshiro256 rng(seed + 1);
  for (cs::oid_t id : in.a) {
    if (rng.NextDouble() < subset_ratio) in.b.push_back(id);
  }
  return in;
}

void BM_TranslucentJoin(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<uint64_t>(state.range(0)),
                         state.range(1) / 100.0, 7);
  for (auto _ : state) {
    auto positions = core::TranslucentJoinPositions(in.a, in.b);
    benchmark::DoNotOptimize(positions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.a.size()));
}

void BM_HashJoinEquivalent(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<uint64_t>(state.range(0)),
                         state.range(1) / 100.0, 7);
  for (auto _ : state) {
    // What a generic engine does without the permutation guarantee:
    // build id -> position, probe per B element.
    std::unordered_map<cs::oid_t, cs::oid_t> table;
    table.reserve(in.a.size() * 2);
    for (uint64_t i = 0; i < in.a.size(); ++i) {
      table.emplace(in.a[i], static_cast<cs::oid_t>(i));
    }
    cs::OidVec positions;
    positions.reserve(in.b.size());
    for (cs::oid_t id : in.b) positions.push_back(table.find(id)->second);
    benchmark::DoNotOptimize(positions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.a.size()));
}

void BM_SortMergeEquivalent(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<uint64_t>(state.range(0)),
                         state.range(1) / 100.0, 7);
  for (auto _ : state) {
    // Sort (id, pos) pairs of both sides, merge, then restore B order.
    std::vector<std::pair<cs::oid_t, cs::oid_t>> sa(in.a.size()),
        sb(in.b.size());
    for (uint64_t i = 0; i < in.a.size(); ++i) {
      sa[i] = {in.a[i], static_cast<cs::oid_t>(i)};
    }
    for (uint64_t i = 0; i < in.b.size(); ++i) {
      sb[i] = {in.b[i], static_cast<cs::oid_t>(i)};
    }
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    cs::OidVec positions(in.b.size());
    uint64_t ia = 0;
    for (const auto& [id, bpos] : sb) {
      while (sa[ia].first != id) ++ia;
      positions[bpos] = sa[ia].second;
    }
    benchmark::DoNotOptimize(positions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.a.size()));
}

BENCHMARK(BM_TranslucentJoin)
    ->Args({1 << 20, 10})
    ->Args({1 << 20, 50})
    ->Args({1 << 22, 10})
    ->Args({1 << 22, 50});
BENCHMARK(BM_HashJoinEquivalent)
    ->Args({1 << 20, 10})
    ->Args({1 << 20, 50})
    ->Args({1 << 22, 10})
    ->Args({1 << 22, 50});
BENCHMARK(BM_SortMergeEquivalent)
    ->Args({1 << 20, 10})
    ->Args({1 << 20, 50})
    ->Args({1 << 22, 10})
    ->Args({1 << 22, 50});

}  // namespace
}  // namespace wastenot

BENCHMARK_MAIN();
