// Adaptive serving: the AdaptiveScheduler against every fixed-engine
// baseline on a mixed workload (DESIGN.md §7). Half the stream is the
// selective Q6 family (A&R's regime), half is the unselective Q1 scan
// (classic/streaming's regime) — no single fixed engine fits both, so the
// policy's per-query choice is the thing being measured. A second section
// measures progressive serving: p50 time-to-first-answer (the Phase-A
// approximate result) against the p50 of the exact answer it refines into.

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "server/scheduler.h"
#include "workloads/tpch.h"

namespace wastenot {
namespace {

/// Alternates the selective Q6 year-variants with the Q1 full scan.
core::QuerySpec MixedQuery(uint64_t i) {
  return (i % 2 == 0) ? workloads::TpchQ6YearVariant(i / 2)
                      : workloads::TpchQ1();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Submits `count` mixed queries through a fixed-engine server, closed-loop
/// with the admission queue as the in-flight bound. Returns wall seconds.
double RunFixed(const server::QueryServer::Backend& backend,
                server::EngineKind engine, uint64_t count) {
  server::ServerOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 16;
  server::QueryServer srv(backend, opts);
  WallTimer timer;
  std::vector<std::future<server::QueryResponse>> futures;
  futures.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    server::QueryRequest req;
    req.query = MixedQuery(i);
    req.engine = engine;
    futures.push_back(srv.Submit(std::move(req)));
  }
  for (auto& f : futures) {
    const server::QueryResponse r = f.get();
    if (!r.status.ok()) {
      std::fprintf(stderr, "fixed run failed: %s\n",
                   r.status.ToString().c_str());
      std::exit(1);
    }
  }
  const double elapsed = timer.Seconds();
  srv.Shutdown();
  return elapsed;
}

/// The same batch through the adaptive scheduler. Returns wall seconds and
/// reports the decision mix it made.
double RunAdaptive(const server::QueryServer::Backend& backend,
                   uint64_t count) {
  server::SchedulerOptions opts;
  opts.server.num_workers = 4;
  opts.server.queue_capacity = 16;
  // One tenant submits the whole batch: give it headroom so the
  // tenant-share degrade rule (a fairness mechanism) stays out of this
  // engine-policy measurement.
  opts.capacity = 4 * count;
  server::AdaptiveScheduler scheduler(backend, opts);
  WallTimer timer;
  std::vector<server::ProgressiveFutures> futures;
  futures.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    futures.push_back(scheduler.Submit("bench", MixedQuery(i)));
  }
  for (auto& f : futures) {
    const server::QueryResponse r = f.refined.get();
    if (!r.status.ok()) {
      std::fprintf(stderr, "adaptive run failed: %s\n",
                   r.status.ToString().c_str());
      std::exit(1);
    }
    f.approximate.get();
  }
  const double elapsed = timer.Seconds();
  const server::SchedulerStats stats = scheduler.stats();
  scheduler.Shutdown();
  std::printf("  adaptive decision mix: ar=%llu classic=%llu streaming=%llu "
              "(degraded=%llu)\n",
              static_cast<unsigned long long>(stats.dispatched[0]),
              static_cast<unsigned long long>(stats.dispatched[1]),
              static_cast<unsigned long long>(stats.dispatched[2]),
              static_cast<unsigned long long>(stats.degraded));
  for (size_t e = 0; e < 3; ++e) {
    static constexpr const char* kNames[] = {"ar", "classic", "streaming"};
    bench::JsonAppend(std::string("adaptive_mix/") + kNames[e], 0,
                      static_cast<double>(stats.dispatched[e]), "queries");
  }
  return elapsed;
}

int Run() {
  const double sf =
      EnvDouble("WN_SCALE_TPCH_ADAPTIVE", EnvDouble("WN_SCALE_TPCH_FIG11", 0.25));
  const uint64_t count =
      static_cast<uint64_t>(EnvInt64("WN_ADAPTIVE_QUERIES", 64));
  bench::Header("Adaptive serving",
                "engine policy vs fixed baselines on a mixed workload",
                "SF=" + std::to_string(sf) + ", " + std::to_string(count) +
                    " queries (WN_SCALE_TPCH_ADAPTIVE, WN_ADAPTIVE_QUERIES)");

  cs::Database db;
  workloads::GenerateTpch(sf, 77, &db);
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto fact = bwd::BwdTable::Decompose(db.table("lineitem"),
                                       workloads::TpchAllResident(),
                                       dev.get());
  auto dim = bwd::BwdTable::Decompose(db.table("part"),
                                      workloads::TpchPartResident(),
                                      dev.get());
  if (!fact.ok() || !dim.ok()) return 1;
  const server::QueryServer::Backend backend{&db, &*fact, &*dim, dev.get()};

  // --- adaptive vs fixed ---------------------------------------------------
  std::printf("%-18s %14s %14s\n", "configuration", "batch (s)", "queries/s");
  auto report = [count](const char* name, double seconds) {
    std::printf("%-18s %14.3f %14.1f\n", name, seconds,
                static_cast<double>(count) / seconds);
    std::printf("# csv,%s,%.4f,%.1f\n", name, seconds,
                static_cast<double>(count) / seconds);
    bench::JsonAppend(name, 0, static_cast<double>(count) / seconds, "q/s");
  };
  report("fixed_ar", RunFixed(backend, server::EngineKind::kAr, count));
  report("fixed_classic",
         RunFixed(backend, server::EngineKind::kClassic, count));
  report("fixed_streaming",
         RunFixed(backend, server::EngineKind::kStreaming, count));
  report("adaptive", RunAdaptive(backend, count));

  // --- progressive: time-to-first-answer -----------------------------------
  // Progressive serving pays off where Phase R dominates: the unselective
  // Q1 scan through the A&R engine refines ~98 % of the table on the host
  // after the approximate answer lands at the Phase-A boundary. The fully
  // resident decomposition above has nothing to refine, so this section
  // re-decomposes lineitem with six residual bits per column. Sequential
  // submissions (one in flight) so latency is execution, not queue wait.
  {
    std::vector<bwd::DecomposeRequest> residual = workloads::TpchAllResident();
    for (auto& r : residual) r.device_bits = 26;
    auto res_fact =
        bwd::BwdTable::Decompose(db.table("lineitem"), residual, dev.get());
    if (!res_fact.ok()) return 1;
    const server::QueryServer::Backend res_backend{&db, &*res_fact, &*dim,
                                                   dev.get()};
    server::ServerOptions opts;
    opts.num_workers = 1;
    opts.queue_capacity = 1;
    server::QueryServer srv(res_backend, opts);
    const uint64_t n = std::max<uint64_t>(count / 4, 8);
    std::vector<double> first_ms;
    std::vector<double> exact_ms;
    for (uint64_t i = 0; i < n; ++i) {
      server::QueryRequest req;
      req.query = workloads::TpchQ1();
      req.engine = server::EngineKind::kAr;
      server::ProgressiveFutures f = srv.SubmitProgressive(std::move(req));
      const server::QueryResponse exact = f.refined.get();
      const server::ApproximateResponse approx = f.approximate.get();
      if (!exact.status.ok() || !approx.status.ok()) {
        std::fprintf(stderr, "progressive run failed\n");
        std::exit(1);
      }
      first_ms.push_back(approx.latency_seconds * 1e3);
      exact_ms.push_back(exact.latency_seconds * 1e3);
    }
    srv.Shutdown();
    const double p50_first = Percentile(first_ms, 0.5);
    const double p50_exact = Percentile(exact_ms, 0.5);
    std::printf("progressive p50 time-to-first-answer %10.3f ms\n",
                p50_first);
    std::printf("progressive p50 exact answer         %10.3f ms  (ratio %.2f)\n",
                p50_exact, p50_first / p50_exact);
    std::printf("# csv,progressive_ttfa_p50,%.4f\n", p50_first);
    std::printf("# csv,progressive_exact_p50,%.4f\n", p50_exact);
    bench::JsonAppend("progressive_ttfa_p50", 0, p50_first, "ms");
    bench::JsonAppend("progressive_exact_p50", 0, p50_exact, "ms");
  }
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
