// Fig 8e: projection / indexed join on distributed data (8 bit CPU) —
// the refinement reconstructs exact projected values by joining the
// device-side gather output with the host residual.

#include <memory>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "columnstore/fetch.h"
#include "columnstore/select.h"
#include "core/project.h"
#include "core/select.h"
#include "workloads/uniform.h"

namespace wastenot {
namespace {

int Run() {
  const uint64_t n = bench::MicroRows();
  bench::Header("Fig 8e", "Projection/Join on distributed data (8 bit CPU)",
                "rows=" + std::to_string(n) + " (paper: 100M)");

  cs::Column sel_base = workloads::UniqueShuffledInts(n, 42);
  cs::Column proj_base = workloads::UniqueShuffledInts(n, 43);
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto sel_col = bwd::BwdColumn::Decompose(sel_base, 32, dev.get());
  auto proj_col = bwd::BwdColumn::Decompose(proj_base, 24, dev.get());
  if (!sel_col.ok() || !proj_col.ok()) {
    std::fprintf(stderr, "decompose failed\n");
    return 1;
  }

  const double stream_ms =
      bench::StreamHypothetical(proj_base.byte_size()).total() * 1e3;

  std::vector<bench::SeriesRow> rows;
  for (double pct : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
    const cs::RangePred pred = cs::RangePred::Lt(
        workloads::ThresholdForSelectivity(n, pct / 100.0));

    const cs::OidVec oids = cs::Select(sel_base, pred);
    const double monetdb_ms =
        bench::TimeSeconds([&] { cs::Fetch(proj_base, oids); }) * 1e3;

    core::ApproxSelection s =
        core::SelectApproximate(*sel_col, pred, dev.get());
    core::ProjectApproximate(*proj_col, s.cands, dev.get());  // JIT pre-heat
    const auto clock0 = dev->clock().snapshot();
    core::ApproxValues proj =
        core::ProjectApproximate(*proj_col, s.cands, dev.get());
    const auto clock1 = dev->clock().snapshot();
    // The approximation output crosses the bus for refinement.
    dev->ChargeTransfer(s.cands.size() *
                        (sizeof(cs::oid_t) +
                         (proj_col->spec().approximation_bits() + 7) / 8));
    const auto clock2 = dev->clock().snapshot();
    const double approx_ms = (clock1.device - clock0.device) * 1e3;
    const double bus_ms = (clock2.bus - clock1.bus) * 1e3;
    const double refine_ms =
        bench::TimeSeconds([&] {
          core::ProjectRefine(*proj_col, s.cands.ids, &proj);
        }) *
        1e3;

    rows.push_back(bench::SeriesRow{
        pct,
        {monetdb_ms, approx_ms + bus_ms + refine_ms, approx_ms, stream_ms}});
  }
  bench::PrintSeries("qualifying %",
                     {"MonetDB", "Approx+Refine", "Approximate", "Stream"},
                     rows);
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
