// Fig 8a: selection on device-resident data — time vs qualifying tuples.
// Series: MonetDB (CPU bulk select), Approximate+Refine, Approximate only,
// Stream Input (hypothetical PCI-E push of the raw column).
//
// Paper setup: 100 M unique shuffled ints, value range 0..100 M, the whole
// (bit-packed) column resident on the GPU.

#include <memory>

#include "bench/harness.h"
#include "bwd/bwd_table.h"
#include "columnstore/select.h"
#include "core/select.h"
#include "workloads/uniform.h"

namespace wastenot {
namespace {

int Run() {
  const uint64_t n = bench::MicroRows();
  bench::Header("Fig 8a", "Selection on GPU-resident data",
                "rows=" + std::to_string(n) +
                    " unique shuffled ints (paper: 100M); WN_SCALE_MICRO "
                    "overrides");

  cs::Column base = workloads::UniqueShuffledInts(n, 42);
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto col = bwd::BwdColumn::Decompose(base, 32, dev.get());
  if (!col.ok()) {
    std::fprintf(stderr, "decompose failed: %s\n",
                 col.status().ToString().c_str());
    return 1;
  }
  std::printf("device bytes: %.1f MB (packed %u-bit)\n\n",
              col->device_bytes() / 1e6, col->spec().approximation_bits());

  const double stream_ms =
      bench::StreamHypothetical(base.byte_size()).total() * 1e3;

  std::vector<bench::SeriesRow> rows;
  for (double pct : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
    const cs::RangePred pred = cs::RangePred::Lt(
        workloads::ThresholdForSelectivity(n, pct / 100.0));

    const double monetdb_ms =
        bench::TimeSeconds([&] { cs::Select(base, pred); }) * 1e3;

    // Approximate phase (simulated device time) + refinement (measured).
    // Pre-heat: the paper reports post-JIT runs (§VI-A, third run).
    core::SelectApproximate(*col, pred, dev.get());
    core::ApproxSelection sel;
    const auto clock0 = dev->clock().snapshot();
    sel = core::SelectApproximate(*col, pred, dev.get());
    const double approx_ms =
        (dev->clock().snapshot().device - clock0.device) * 1e3;

    // Fully resident: the relaxed predicate equals the precise one, so the
    // candidate set is exact and refinement is skipped (§IV-C analogue for
    // selections; the engine's skip-exact-refinement path). Only the
    // result ids cross the bus.
    const double bus_ms =
        device::TransferSeconds(dev->spec(),
                                sel.cands.size() * sizeof(cs::oid_t)) *
        1e3;
    rows.push_back(bench::SeriesRow{
        pct, {monetdb_ms, approx_ms + bus_ms, approx_ms, stream_ms}});
  }
  bench::PrintSeries("qualifying %",
                     {"MonetDB", "Approx+Refine", "Approximate", "Stream"},
                     rows);
  return 0;
}

}  // namespace
}  // namespace wastenot

int main(int argc, char** argv) {
  wastenot::bench::ParseArgs(argc, argv);
  return wastenot::Run();
}
