#include "device/kernel_cache.h"

#include <gtest/gtest.h>

namespace wastenot::device {
namespace {

KernelSignature Sig(const std::string& op, uint32_t packed = 20) {
  KernelSignature sig;
  sig.op = op;
  sig.value_bits = 27;
  sig.packed_bits = packed;
  sig.prefix_base = 0;
  sig.extra = "range/full";
  return sig;
}

TEST(KernelCacheTest, CompilesOncePerSignature) {
  KernelCache cache;
  EXPECT_DOUBLE_EQ(cache.EnsureCompiled(Sig("uselect"), 0.04), 0.04);
  EXPECT_DOUBLE_EQ(cache.EnsureCompiled(Sig("uselect"), 0.04), 0.0);
  EXPECT_EQ(cache.compiled_count(), 1u);
  EXPECT_EQ(cache.hit_count(), 1u);
}

TEST(KernelCacheTest, DistinctSignaturesCompileSeparately) {
  KernelCache cache;
  cache.EnsureCompiled(Sig("uselect", 20), 0.04);
  cache.EnsureCompiled(Sig("uselect", 24), 0.04);  // different decomposition
  cache.EnsureCompiled(Sig("group", 20), 0.04);
  EXPECT_EQ(cache.compiled_count(), 3u);
}

TEST(KernelCacheTest, SourceRetained) {
  KernelCache cache;
  cache.EnsureCompiled(Sig("uselect"), 0.04);
  const std::string src = cache.SourceOf(Sig("uselect"));
  EXPECT_NE(src.find("__kernel void uselect"), std::string::npos);
  EXPECT_EQ(cache.SourceOf(Sig("never_compiled")), "");
}

TEST(KernelCacheTest, GeneratedSourceReflectsParameters) {
  KernelSignature sig = Sig("uselect", 13);
  sig.prefix_base = 4096;
  const std::string src = GenerateKernelSource(sig);
  // The decomposition (packed width) and compression (base) specialize the
  // code, as §V-C describes.
  EXPECT_NE(src.find("* 13UL"), std::string::npos);
  EXPECT_NE(src.find("4096"), std::string::npos);
  EXPECT_NE(src.find(std::to_string((1ull << 13) - 1)), std::string::npos);
}

TEST(KernelCacheTest, CacheKeyIncludesAllParameters) {
  KernelSignature a = Sig("op", 10);
  KernelSignature b = Sig("op", 10);
  b.prefix_base = 1;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  b = Sig("op", 10);
  b.extra = "other";
  EXPECT_NE(a.CacheKey(), b.CacheKey());
}

}  // namespace
}  // namespace wastenot::device
