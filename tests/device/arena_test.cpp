#include "device/device_arena.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wastenot::device {
namespace {

TEST(ArenaTest, AllocateWithinCapacity) {
  DeviceArena arena(1024);
  auto buf = arena.Allocate(512);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(buf->size(), 512u);
  EXPECT_EQ(arena.used(), 512u);
  EXPECT_EQ(arena.available(), 512u);
}

TEST(ArenaTest, RejectsOverCapacity) {
  DeviceArena arena(1024);
  auto a = arena.Allocate(800);
  ASSERT_TRUE(a.ok());
  auto b = arena.Allocate(300);
  EXPECT_FALSE(b.ok());
  EXPECT_TRUE(b.status().IsDeviceOutOfMemory());
  EXPECT_EQ(arena.used(), 800u);  // failed reservation rolled back
}

TEST(ArenaTest, ReleaseOnDestruction) {
  DeviceArena arena(1024);
  {
    auto buf = arena.Allocate(1000);
    ASSERT_TRUE(buf.ok());
    EXPECT_EQ(arena.used(), 1000u);
  }
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_TRUE(arena.Allocate(1024).ok());
}

TEST(ArenaTest, MoveTransfersOwnership) {
  DeviceArena arena(1024);
  auto a = arena.Allocate(256);
  ASSERT_TRUE(a.ok());
  DeviceBuffer b = std::move(a).value();
  EXPECT_EQ(arena.used(), 256u);
  DeviceBuffer c = std::move(b);
  EXPECT_EQ(arena.used(), 256u);
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(c.valid());
}

TEST(ArenaTest, ZeroInitialized) {
  DeviceArena arena(64);
  auto buf = arena.Allocate(64);
  ASSERT_TRUE(buf.ok());
  for (uint64_t i = 0; i < 64; ++i) EXPECT_EQ(buf->data()[i], 0);
}

TEST(ArenaTest, ConcurrentAllocationNeverOversubscribes) {
  DeviceArena arena(1 << 20);
  std::mutex mu;
  std::vector<DeviceBuffer> held;  // keeps every grant alive until the end
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 64; ++i) {
        auto buf = arena.Allocate(4096);
        if (buf.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          held.push_back(std::move(buf).value());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Held grants can never exceed the capacity, and the arena's accounting
  // matches what is actually held.
  EXPECT_LE(held.size() * 4096, 1u << 20);
  EXPECT_EQ(arena.used(), held.size() * 4096);
  held.clear();
  EXPECT_EQ(arena.used(), 0u);
}

TEST(ArenaTest, ZeroByteAllocation) {
  DeviceArena arena(16);
  auto buf = arena.Allocate(0);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(buf->size(), 0u);
}

}  // namespace
}  // namespace wastenot::device
