#include "device/device.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace wastenot::device {
namespace {

DeviceSpec SmallSpec() {
  DeviceSpec spec;
  spec.memory_capacity = 1 << 20;
  return spec;
}

TEST(DeviceTest, UploadDownloadRoundTrip) {
  Device dev(SmallSpec(), 2);
  std::vector<int32_t> host(100);
  std::iota(host.begin(), host.end(), 0);
  auto buf = dev.Upload(host.data(), host.size() * 4);
  ASSERT_TRUE(buf.ok());
  std::vector<int32_t> back(100);
  dev.Download(*buf, back.data(), back.size() * 4);
  EXPECT_EQ(host, back);
  EXPECT_GT(dev.clock().bus_seconds(), 0.0);
}

TEST(DeviceTest, UploadChargesPciTime) {
  Device dev(SmallSpec(), 2);
  std::vector<uint8_t> data(1 << 16);
  const double before = dev.clock().bus_seconds();
  ASSERT_TRUE(dev.Upload(data.data(), data.size()).ok());
  const double delta = dev.clock().bus_seconds() - before;
  EXPECT_NEAR(delta,
              TransferSeconds(dev.spec(), data.size()), 1e-9);
}

TEST(DeviceTest, LaunchExecutesGridAndCharges) {
  Device dev(SmallSpec(), 4);
  std::vector<std::atomic<uint8_t>> touched(10000);
  KernelSignature sig;
  sig.op = "touch";
  dev.Launch(sig, {.elements = 10000, .bytes_read = 10000 * 4},
             [&](uint64_t b, uint64_t e) {
               for (uint64_t i = b; i < e; ++i) touched[i].fetch_add(1);
             });
  for (auto& t : touched) ASSERT_EQ(t.load(), 1);
  // JIT compile + kernel time charged to the device clock.
  EXPECT_GE(dev.clock().device_seconds(), dev.spec().jit_compile_seconds);
}

TEST(DeviceTest, SecondLaunchSkipsCompile) {
  Device dev(SmallSpec(), 2);
  KernelSignature sig;
  sig.op = "noop";
  const LaunchCost cost{.elements = 1, .bytes_read = 64};
  dev.Launch(sig, cost, [](uint64_t, uint64_t) {});
  const double after_first = dev.clock().device_seconds();
  dev.Launch(sig, cost, [](uint64_t, uint64_t) {});
  const double second_delta = dev.clock().device_seconds() - after_first;
  EXPECT_LT(second_delta, dev.spec().jit_compile_seconds / 2);
  EXPECT_EQ(dev.kernel_cache().compiled_count(), 1u);
}

TEST(DeviceTest, ChargeTransferAccumulates) {
  Device dev(SmallSpec(), 1);
  dev.ChargeTransfer(1 << 20);
  dev.ChargeTransfer(1 << 20);
  EXPECT_NEAR(dev.clock().bus_seconds(),
              2 * TransferSeconds(dev.spec(), 1 << 20), 1e-9);
}

TEST(DeviceTest, UploadFailsWhenArenaFull) {
  Device dev(SmallSpec(), 1);
  std::vector<uint8_t> big((1 << 20) + 1);
  auto buf = dev.Upload(big.data(), big.size());
  EXPECT_FALSE(buf.ok());
  EXPECT_TRUE(buf.status().IsDeviceOutOfMemory());
}

TEST(SimClockTest, PhasesIndependent) {
  SimClock clock;
  clock.Add(Phase::kDeviceCompute, 1.0);
  clock.Add(Phase::kBusTransfer, 2.0);
  clock.Add(Phase::kHostCompute, 3.0);
  EXPECT_DOUBLE_EQ(clock.device_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(clock.bus_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(clock.host_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(clock.total_seconds(), 6.0);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.total_seconds(), 0.0);
}

}  // namespace
}  // namespace wastenot::device
