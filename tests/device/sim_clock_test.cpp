#include "device/sim_clock.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wastenot::device {
namespace {

TEST(SimClockTest, AccumulatesPerPhase) {
  SimClock clock;
  clock.Add(Phase::kDeviceCompute, 1.0);
  clock.Add(Phase::kBusTransfer, 0.5);
  clock.Add(Phase::kDeviceCompute, 0.25);
  EXPECT_DOUBLE_EQ(clock.device_seconds(), 1.25);
  EXPECT_DOUBLE_EQ(clock.bus_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(clock.host_seconds(), 0.0);
  clock.Reset();
  EXPECT_EQ(clock.Nanos(Phase::kDeviceCompute), 0u);
}

TEST(SimClockQueryScopeTest, CapturesOnlyChargesInsideScope) {
  SimClock clock;
  clock.Add(Phase::kDeviceCompute, 1.0);  // before: not attributed
  {
    SimClock::QueryScope scope(&clock);
    clock.Add(Phase::kDeviceCompute, 0.25);
    clock.Add(Phase::kBusTransfer, 0.125);
    EXPECT_DOUBLE_EQ(scope.device_seconds(), 0.25);
    EXPECT_DOUBLE_EQ(scope.bus_seconds(), 0.125);
  }
  clock.Add(Phase::kDeviceCompute, 1.0);  // after: not attributed
  // The global clock saw everything regardless.
  EXPECT_DOUBLE_EQ(clock.device_seconds(), 2.25);
  EXPECT_DOUBLE_EQ(clock.bus_seconds(), 0.125);
}

TEST(SimClockQueryScopeTest, NestedScopesBothCapture) {
  SimClock clock;
  SimClock::QueryScope outer(&clock);
  clock.Add(Phase::kDeviceCompute, 1.0);
  {
    SimClock::QueryScope inner(&clock);
    clock.Add(Phase::kDeviceCompute, 0.5);
    EXPECT_DOUBLE_EQ(inner.device_seconds(), 0.5);
  }
  EXPECT_DOUBLE_EQ(outer.device_seconds(), 1.5);
}

TEST(SimClockQueryScopeTest, ScopeOnOtherClockDoesNotCapture) {
  SimClock a, b;
  SimClock::QueryScope scope_b(&b);
  SimClock::QueryScope scope_a(&a);
  a.Add(Phase::kDeviceCompute, 1.0);
  EXPECT_DOUBLE_EQ(scope_a.device_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(scope_b.device_seconds(), 0.0);
  b.Add(Phase::kBusTransfer, 0.5);
  EXPECT_DOUBLE_EQ(scope_b.bus_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(scope_a.bus_seconds(), 0.0);
}

TEST(SimClockQueryScopeTest, OtherThreadsChargesAreNotAttributed) {
  SimClock clock;
  SimClock::QueryScope scope(&clock);
  clock.Add(Phase::kDeviceCompute, 1.0);
  std::thread other([&] { clock.Add(Phase::kDeviceCompute, 4.0); });
  other.join();
  EXPECT_DOUBLE_EQ(scope.device_seconds(), 1.0)
      << "a scope is a per-thread channel";
  EXPECT_DOUBLE_EQ(clock.device_seconds(), 5.0);
}

// The invariant the concurrent serving layer relies on: with one scope per
// query (each on its own thread), the per-query nanosecond attributions
// sum *exactly* to the global clock delta — no charge is lost or double
// counted under interleaving.
TEST(SimClockQueryScopeTest, ConcurrentScopesPartitionTheGlobalDelta) {
  SimClock clock;
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 1000;
  std::vector<uint64_t> device_nanos(kThreads), bus_nanos(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SimClock::QueryScope scope(&clock);
      for (int i = 0; i < kChargesPerThread; ++i) {
        clock.Add(Phase::kDeviceCompute, 1e-6 * (t + 1));
        clock.Add(Phase::kBusTransfer, 3e-7 * (i % 5));
      }
      device_nanos[t] = scope.Nanos(Phase::kDeviceCompute);
      bus_nanos[t] = scope.Nanos(Phase::kBusTransfer);
    });
  }
  for (auto& th : threads) th.join();
  uint64_t device_sum = 0, bus_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    device_sum += device_nanos[t];
    bus_sum += bus_nanos[t];
  }
  EXPECT_EQ(device_sum, clock.Nanos(Phase::kDeviceCompute));
  EXPECT_EQ(bus_sum, clock.Nanos(Phase::kBusTransfer));
}

}  // namespace
}  // namespace wastenot::device
