// DeviceGroup: member independence (clocks, arenas, caches), per-link bus
// budgets (dedicated vs shared-switch), and the aggregate clock view.

#include "device/device_group.h"

#include <gtest/gtest.h>

namespace wastenot::device {
namespace {

DeviceGroupOptions SmallGroup(uint32_t n, bool shared_switch = false) {
  DeviceGroupOptions o;
  o.num_devices = n;
  o.base.memory_capacity = 16 << 20;
  o.shared_switch = shared_switch;
  o.worker_threads = 1;
  return o;
}

TEST(DeviceGroupTest, ClampsZeroDevicesToOne) {
  DeviceGroup group(SmallGroup(0));
  EXPECT_EQ(group.size(), 1u);
}

TEST(DeviceGroupTest, DedicatedLinksReplicateBaseBudget) {
  DeviceGroupOptions o = SmallGroup(3, /*shared_switch=*/false);
  DeviceGroup group(o);
  ASSERT_EQ(group.size(), 3u);
  for (uint32_t i = 0; i < group.size(); ++i) {
    EXPECT_DOUBLE_EQ(group.link(i).bandwidth, o.base.pcie_bandwidth);
    EXPECT_DOUBLE_EQ(group.link(i).latency, o.base.pcie_latency);
    EXPECT_DOUBLE_EQ(group.device(i).spec().pcie_bandwidth,
                     o.base.pcie_bandwidth);
  }
}

TEST(DeviceGroupTest, SharedSwitchSplitsBandwidthAndAddsAHop) {
  DeviceGroupOptions o = SmallGroup(4, /*shared_switch=*/true);
  DeviceGroup group(o);
  for (uint32_t i = 0; i < group.size(); ++i) {
    EXPECT_DOUBLE_EQ(group.link(i).bandwidth, o.base.pcie_bandwidth / 4);
    EXPECT_DOUBLE_EQ(group.link(i).latency, o.base.pcie_latency * 2);
    // The stamped member spec is what transfer charges actually read.
    EXPECT_DOUBLE_EQ(group.device(i).spec().pcie_bandwidth,
                     o.base.pcie_bandwidth / 4);
    EXPECT_DOUBLE_EQ(group.device(i).spec().pcie_latency,
                     o.base.pcie_latency * 2);
  }
}

TEST(DeviceGroupTest, SharedSwitchChargesSlowerTransfers) {
  DeviceGroup dedicated(SmallGroup(2, false));
  DeviceGroup shared(SmallGroup(2, true));
  const uint64_t bytes = 1 << 20;
  dedicated.device(0).ChargeTransfer(bytes);
  shared.device(0).ChargeTransfer(bytes);
  EXPECT_GT(shared.device(0).clock().snapshot().bus,
            dedicated.device(0).clock().snapshot().bus);
  // Consistent with the link-level formula, up to the clock's integer
  // nanosecond accounting quantum.
  EXPECT_NEAR(shared.device(0).clock().snapshot().bus,
              LinkTransferSeconds(shared.link(0), bytes), 1e-9);
}

TEST(DeviceGroupTest, MemberClocksAreIndependent) {
  DeviceGroup group(SmallGroup(3));
  group.device(1).ChargeTransfer(1 << 20);
  EXPECT_EQ(group.device(0).clock().snapshot().bus, 0.0);
  EXPECT_GT(group.device(1).clock().snapshot().bus, 0.0);
  EXPECT_EQ(group.device(2).clock().snapshot().bus, 0.0);

  const auto agg = group.AggregateClocks();
  EXPECT_DOUBLE_EQ(agg.max_bus_seconds, group.device(1).clock().snapshot().bus);
  EXPECT_DOUBLE_EQ(agg.sum_bus_seconds, agg.max_bus_seconds);

  group.ResetClocks();
  EXPECT_EQ(group.device(1).clock().snapshot().bus, 0.0);
  EXPECT_EQ(group.AggregateClocks().sum_bus_seconds, 0.0);
}

TEST(DeviceGroupTest, AggregateSumsAcrossMembers) {
  DeviceGroup group(SmallGroup(2));
  group.device(0).ChargeTransfer(1 << 20);
  group.device(1).ChargeTransfer(1 << 20);
  const auto agg = group.AggregateClocks();
  EXPECT_DOUBLE_EQ(agg.sum_bus_seconds, 2 * agg.max_bus_seconds);
}

TEST(DeviceGroupTest, PerMemberResidencyCaches) {
  DeviceGroup group(SmallGroup(2));
  // Distinct cache objects bound to distinct devices.
  EXPECT_NE(&group.cache(0), &group.cache(1));
}

TEST(CostModelLinkTest, LinkTransferSecondsMatchesFormula) {
  LinkSpec link{2.0e9, 1e-5};
  EXPECT_DOUBLE_EQ(LinkTransferSeconds(link, 0), 0.0);
  EXPECT_DOUBLE_EQ(LinkTransferSeconds(link, 2'000'000'000ull), 1e-5 + 1.0);
}

TEST(CostModelLinkTest, MemberLinkPolicies) {
  DeviceSpec base;
  base.pcie_bandwidth = 4e9;
  base.pcie_latency = 2e-5;
  const LinkSpec dedicated = MemberLink(base, 4, false);
  EXPECT_DOUBLE_EQ(dedicated.bandwidth, 4e9);
  EXPECT_DOUBLE_EQ(dedicated.latency, 2e-5);
  const LinkSpec shared = MemberLink(base, 4, true);
  EXPECT_DOUBLE_EQ(shared.bandwidth, 1e9);
  EXPECT_DOUBLE_EQ(shared.latency, 4e-5);
  // A single member behind a "switch" still gets the whole budget.
  const LinkSpec solo = MemberLink(base, 1, true);
  EXPECT_DOUBLE_EQ(solo.bandwidth, 4e9);
}

}  // namespace
}  // namespace wastenot::device
