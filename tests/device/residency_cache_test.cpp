#include "device/residency_cache.h"

#include <vector>

#include <gtest/gtest.h>

namespace wastenot::device {
namespace {

Device MakeDevice(uint64_t capacity) {
  DeviceSpec spec;
  spec.memory_capacity = capacity;
  return Device(spec, 1);
}

TEST(ResidencyCacheTest, HitAfterMiss) {
  Device dev = MakeDevice(1 << 20);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(1024, 7);
  auto first = cache.Pin("a", data.data(), data.size());
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->hit);
  EXPECT_EQ(first->bytes_transferred, 1024u);
  auto second = cache.Pin("a", data.data(), data.size());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->hit);
  EXPECT_EQ(second->bytes_transferred, 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResidencyCacheTest, EvictsLeastRecentlyUsed) {
  Device dev = MakeDevice(3000);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(1024);
  ASSERT_TRUE(cache.Pin("a", data.data(), 1024).ok());
  ASSERT_TRUE(cache.Pin("b", data.data(), 1024).ok());
  ASSERT_TRUE(cache.Pin("a", data.data(), 1024).ok());  // a is now MRU
  ASSERT_TRUE(cache.Pin("c", data.data(), 1024).ok());  // evicts b
  EXPECT_EQ(cache.evictions(), 1u);
  auto again_a = cache.Pin("a", data.data(), 1024);
  ASSERT_TRUE(again_a.ok());
  EXPECT_TRUE(again_a->hit);
  auto again_b = cache.Pin("b", data.data(), 1024);
  ASSERT_TRUE(again_b.ok());
  EXPECT_FALSE(again_b->hit) << "b was the LRU victim";
}

// The Fig 9 worst case: the working set exceeds device memory, so under
// LRU every pass over the inputs re-transfers everything — "multiple runs
// of the same query cannot benefit from previously loaded data because it
// has just been evicted" (paper §VI-C3).
TEST(ResidencyCacheTest, WorkingSetLargerThanMemoryThrashes) {
  Device dev = MakeDevice(4096);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(2048);
  for (int pass = 0; pass < 3; ++pass) {
    for (const char* key : {"lon", "lat", "time"}) {  // 3 x 2 KB > 4 KB
      auto access = cache.Pin(key, data.data(), data.size());
      ASSERT_TRUE(access.ok());
      EXPECT_FALSE(access->hit) << "pass " << pass << " key " << key;
    }
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 9u);
}

TEST(ResidencyCacheTest, RejectsBufferLargerThanDevice) {
  Device dev = MakeDevice(1024);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(2048);
  auto access = cache.Pin("big", data.data(), data.size());
  EXPECT_FALSE(access.ok());
  EXPECT_TRUE(access.status().IsDeviceOutOfMemory());
}

TEST(ResidencyCacheTest, ClearReleasesEverything) {
  Device dev = MakeDevice(4096);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(1024);
  ASSERT_TRUE(cache.Pin("a", data.data(), 1024).ok());
  EXPECT_GT(dev.arena().used(), 0u);
  cache.Clear();
  EXPECT_EQ(dev.arena().used(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

TEST(ResidencyCacheTest, RespectsForeignAllocations) {
  Device dev = MakeDevice(2048);
  auto pinned = dev.Allocate(1536);  // non-cache allocation
  ASSERT_TRUE(pinned.ok());
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(1024);
  auto access = cache.Pin("a", data.data(), data.size());
  EXPECT_FALSE(access.ok()) << "cannot evict what it does not own";
}

}  // namespace
}  // namespace wastenot::device
