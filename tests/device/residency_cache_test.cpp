#include "device/residency_cache.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wastenot::device {
namespace {

Device MakeDevice(uint64_t capacity) {
  DeviceSpec spec;
  spec.memory_capacity = capacity;
  return Device(spec, 1);
}

TEST(ResidencyCacheTest, HitAfterMiss) {
  Device dev = MakeDevice(1 << 20);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(1024, 7);
  auto first = cache.Pin("a", data.data(), data.size());
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->hit);
  EXPECT_EQ(first->bytes_transferred, 1024u);
  auto second = cache.Pin("a", data.data(), data.size());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->hit);
  EXPECT_EQ(second->bytes_transferred, 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResidencyCacheTest, EvictsLeastRecentlyUsed) {
  Device dev = MakeDevice(3000);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(1024);
  ASSERT_TRUE(cache.Pin("a", data.data(), 1024).ok());
  ASSERT_TRUE(cache.Pin("b", data.data(), 1024).ok());
  ASSERT_TRUE(cache.Pin("a", data.data(), 1024).ok());  // a is now MRU
  ASSERT_TRUE(cache.Pin("c", data.data(), 1024).ok());  // evicts b
  EXPECT_EQ(cache.evictions(), 1u);
  auto again_a = cache.Pin("a", data.data(), 1024);
  ASSERT_TRUE(again_a.ok());
  EXPECT_TRUE(again_a->hit);
  auto again_b = cache.Pin("b", data.data(), 1024);
  ASSERT_TRUE(again_b.ok());
  EXPECT_FALSE(again_b->hit) << "b was the LRU victim";
}

// The Fig 9 worst case: the working set exceeds device memory, so under
// LRU every pass over the inputs re-transfers everything — "multiple runs
// of the same query cannot benefit from previously loaded data because it
// has just been evicted" (paper §VI-C3).
TEST(ResidencyCacheTest, WorkingSetLargerThanMemoryThrashes) {
  Device dev = MakeDevice(4096);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(2048);
  for (int pass = 0; pass < 3; ++pass) {
    for (const char* key : {"lon", "lat", "time"}) {  // 3 x 2 KB > 4 KB
      auto access = cache.Pin(key, data.data(), data.size());
      ASSERT_TRUE(access.ok());
      EXPECT_FALSE(access->hit) << "pass " << pass << " key " << key;
    }
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 9u);
}

TEST(ResidencyCacheTest, RejectsBufferLargerThanDevice) {
  Device dev = MakeDevice(1024);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(2048);
  auto access = cache.Pin("big", data.data(), data.size());
  EXPECT_FALSE(access.ok());
  EXPECT_TRUE(access.status().IsDeviceOutOfMemory());
}

TEST(ResidencyCacheTest, ClearReleasesEverything) {
  Device dev = MakeDevice(4096);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(1024);
  ASSERT_TRUE(cache.Pin("a", data.data(), 1024).ok());
  EXPECT_GT(dev.arena().used(), 0u);
  cache.Clear();
  EXPECT_EQ(dev.arena().used(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

// Regression: a key match used to be treated as a hit regardless of size,
// so re-pinning a key whose host data grew returned the stale, undersized
// device buffer. A size mismatch must invalidate and re-upload.
TEST(ResidencyCacheTest, RepinAfterSizeChangeInvalidatesAndReuploads) {
  Device dev = MakeDevice(1 << 20);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> small(1024, 7);
  auto first = cache.Pin("a", small.data(), small.size());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->buffer->size(), 1024u);
  first->buffer.reset();  // release so the stale reservation can free

  std::vector<uint8_t> grown(2048, 9);
  auto second = cache.Pin("a", grown.data(), grown.size());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->hit) << "stale entry must not be served";
  EXPECT_EQ(second->bytes_transferred, 2048u);
  ASSERT_EQ(second->buffer->size(), 2048u);
  EXPECT_EQ(std::memcmp(second->buffer->data(), grown.data(), grown.size()),
            0);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.resident_bytes(), 2048u)
      << "bookkeeping must drop the stale entry's bytes";
  EXPECT_EQ(dev.arena().used(), 2048u);

  auto third = cache.Pin("a", grown.data(), grown.size());
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->hit);
}

// Shrinking is a size mismatch too (re-encoded host data).
TEST(ResidencyCacheTest, RepinAfterShrinkInvalidates) {
  Device dev = MakeDevice(1 << 20);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(2048, 1);
  ASSERT_TRUE(cache.Pin("a", data.data(), 2048).ok());
  auto shrunk = cache.Pin("a", data.data(), 512);
  ASSERT_TRUE(shrunk.ok());
  EXPECT_FALSE(shrunk->hit);
  EXPECT_EQ(shrunk->buffer->size(), 512u);
  EXPECT_EQ(cache.resident_bytes(), 512u);
}

// An evicted buffer still held by a reader stays alive (and keeps its
// arena reservation) until the holder releases it.
TEST(ResidencyCacheTest, EvictedBufferSurvivesWhileHeld) {
  // Capacity fits a + filler, and pinning b must evict both: a (held by a
  // reader, so its reservation cannot free) and the filler (unheld, whose
  // release is what actually makes room for b).
  Device dev = MakeDevice(4608);
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(2048, 5);
  auto held = cache.Pin("a", data.data(), data.size());
  ASSERT_TRUE(held.ok());
  std::shared_ptr<const DeviceBuffer> buffer = std::move(held->buffer);
  std::vector<uint8_t> filler(1024, 3);
  ASSERT_TRUE(cache.Pin("filler", filler.data(), filler.size()).ok());

  std::vector<uint8_t> other(2048, 6);
  ASSERT_TRUE(cache.Pin("b", other.data(), other.size()).ok());
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(std::memcmp(buffer->data(), data.data(), data.size()), 0)
      << "held buffer must outlive its eviction";
  EXPECT_EQ(dev.arena().used(), 4096u)
      << "held 2048 (evicted, not yet freed) + resident b 2048";
  EXPECT_EQ(cache.resident_bytes(), 2048u) << "only b is cache-owned";
  buffer.reset();
  EXPECT_EQ(dev.arena().used(), 2048u);
}

// Concurrency: many streams pinning a shared key set that fits on the
// device must upload each key exactly once — every other access is a hit,
// and the counters add up. A double-upload (two threads racing the same
// miss) would show as misses > kKeys.
TEST(ResidencyCacheTest, ParallelPinStormUploadsEachKeyOnce) {
  Device dev = MakeDevice(1 << 20);
  ResidencyCache cache(&dev);
  constexpr int kThreads = 8;
  constexpr int kKeys = 16;
  constexpr int kPinsPerThread = 200;
  std::vector<std::vector<uint8_t>> host(kKeys);
  for (int k = 0; k < kKeys; ++k) host[k].assign(1024, static_cast<uint8_t>(k));

  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPinsPerThread; ++i) {
        const int k = (t + i) % kKeys;
        auto access = cache.Pin("key" + std::to_string(k), host[k].data(),
                                host[k].size());
        if (!access.ok() ||
            std::memcmp(access->buffer->data(), host[k].data(), 1024) != 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(cache.misses(), static_cast<uint64_t>(kKeys))
      << "each key uploaded exactly once";
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * kPinsPerThread);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.resident_bytes(), static_cast<uint64_t>(kKeys) * 1024);
  EXPECT_EQ(dev.arena().used(), static_cast<uint64_t>(kKeys) * 1024);
}

// Concurrency under pressure: the working set exceeds device memory, so
// streams force each other's evictions. Every pin must still succeed with
// correct bytes, and the counters must balance.
TEST(ResidencyCacheTest, ParallelPinStormWithEvictions) {
  Device dev = MakeDevice(4 * 1024 + 512);  // fits 4 of 8 keys
  ResidencyCache cache(&dev);
  constexpr int kThreads = 4;
  constexpr int kKeys = 8;
  constexpr int kPinsPerThread = 100;
  std::vector<std::vector<uint8_t>> host(kKeys);
  for (int k = 0; k < kKeys; ++k) host[k].assign(1024, static_cast<uint8_t>(k));

  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPinsPerThread; ++i) {
        const int k = (3 * t + i) % kKeys;
        auto access = cache.Pin("key" + std::to_string(k), host[k].data(),
                                host[k].size());
        // Releasing access->buffer at scope exit frees the reservation, so
        // a racing evictor can always make room eventually; OOM would mean
        // accounting leaked.
        if (!access.ok() ||
            std::memcmp(access->buffer->data(), host[k].data(), 1024) != 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * kPinsPerThread);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.resident_bytes(), dev.arena().capacity());
  EXPECT_LE(dev.arena().used(), dev.arena().capacity());
}

TEST(ResidencyCacheTest, RespectsForeignAllocations) {
  Device dev = MakeDevice(2048);
  auto pinned = dev.Allocate(1536);  // non-cache allocation
  ASSERT_TRUE(pinned.ok());
  ResidencyCache cache(&dev);
  std::vector<uint8_t> data(1024);
  auto access = cache.Pin("a", data.data(), data.size());
  EXPECT_FALSE(access.ok()) << "cannot evict what it does not own";
}

}  // namespace
}  // namespace wastenot::device
