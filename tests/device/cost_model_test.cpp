#include "device/cost_model.h"

#include <gtest/gtest.h>

namespace wastenot::device {
namespace {

TEST(CostModelTest, KernelTimeGrowsWithBytes) {
  const DeviceSpec spec;
  const double t1 = KernelSeconds(spec, 1 << 20, 0, 0);
  const double t2 = KernelSeconds(spec, 1 << 24, 0, 0);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t1, spec.launch_overhead);
}

TEST(CostModelTest, LaunchOverheadFloorsTinyKernels) {
  const DeviceSpec spec;
  EXPECT_GE(KernelSeconds(spec, 0, 0, 0), spec.launch_overhead);
}

TEST(CostModelTest, ComputeBoundKernels) {
  DeviceSpec spec;
  // Enormous op count with tiny data: compute time dominates.
  const double t =
      KernelSeconds(spec, 64, 0, static_cast<uint64_t>(1e12));
  EXPECT_GT(t, 0.5);  // ~1e12 ops / 1.5e12 ops/s
}

TEST(CostModelTest, HashConflictsDecreaseWithMoreGroups) {
  const DeviceSpec spec;
  const uint64_t bytes = 100 << 20;
  const double t10 = HashKernelSeconds(spec, bytes, bytes, 0, 10);
  const double t100 = HashKernelSeconds(spec, bytes, bytes, 0, 100);
  const double t100000 = HashKernelSeconds(spec, bytes, bytes, 0, 100000);
  EXPECT_GT(t10, t100);
  EXPECT_GT(t100, t100000);
  // Conflict-free limit approaches the streaming cost.
  const double stream = KernelSeconds(spec, bytes, bytes, 0);
  EXPECT_NEAR(t100000, stream, stream * 0.01);
}

TEST(CostModelTest, FullySerializedWarpIsWarpTimesSlower) {
  DeviceSpec spec;
  spec.launch_overhead = 0;
  const uint64_t bytes = 1 << 20;
  const double stream = KernelSeconds(spec, bytes, 0, 0);
  const double serialized = HashKernelSeconds(spec, bytes, 0, 0, 1);
  EXPECT_NEAR(serialized / stream, spec.warp_width, 0.01);
}

TEST(CostModelTest, TransferMatchesPaperBandwidth) {
  const DeviceSpec spec;
  // Paper §VI-A: 3.95 GB/s measured; 1.8 GB of spatial data ~ 0.45 s
  // (the Fig 9 'Stream (Hypothetical)' bar).
  const double t = TransferSeconds(spec, static_cast<uint64_t>(1.8e9));
  EXPECT_NEAR(t, 0.456, 0.01);
}

TEST(CostModelTest, ZeroTransferIsFree) {
  const DeviceSpec spec;
  EXPECT_EQ(TransferSeconds(spec, 0), 0.0);
}

TEST(CostModelTest, Gtx680DefaultsMatchPaperHardware) {
  const DeviceSpec spec = DeviceSpec::Gtx680();
  EXPECT_EQ(spec.memory_capacity, 2ull << 30);  // 2 GB cards
  EXPECT_DOUBLE_EQ(spec.pcie_bandwidth, 3.95e9);
  EXPECT_EQ(spec.num_devices, 2u);  // two cards in the paper's server
}

// --- serving estimates -----------------------------------------------------

namespace {
ServingWorkload ServeScan(double selectivity) {
  ServingWorkload w;
  w.rows = 100'000'000;
  w.value_bits = 32;
  w.device_bits = 16;
  w.selectivity = selectivity;
  return w;
}
}  // namespace

TEST(ServingEstimateTest, SelectiveScansFavorAr) {
  const DeviceSpec spec = DeviceSpec::Gtx680();
  const ServingEstimate e = EstimateServingCost(spec, ServeScan(0.01));
  // 1 % selectivity: the candidate set (selected rows + boundary band) is
  // tiny, so Phase A at 16 bits beats both the 32-bit streaming scan and
  // the host scan.
  EXPECT_LT(e.ar_seconds, e.streaming_seconds);
  EXPECT_LT(e.streaming_seconds, e.classic_seconds);
  EXPECT_GT(e.expected_candidates, ServeScan(0.01).rows / 100);
}

TEST(ServingEstimateTest, PhaseRCostGrowsWithSelectivity) {
  const DeviceSpec spec = DeviceSpec::Gtx680();
  const ServingEstimate lo = EstimateServingCost(spec, ServeScan(0.01));
  const ServingEstimate hi = EstimateServingCost(spec, ServeScan(0.5));
  EXPECT_GT(hi.ar_seconds, lo.ar_seconds);
  EXPECT_GT(hi.expected_candidates, lo.expected_candidates);
  // Classic ignores selectivity: the host scans every row either way.
  EXPECT_DOUBLE_EQ(hi.classic_seconds, lo.classic_seconds);
}

TEST(ServingEstimateTest, ColdCacheChargesStreamingTheBus) {
  const DeviceSpec spec = DeviceSpec::Gtx680();
  ServingWorkload warm = ServeScan(0.5);
  warm.cache_hit_rate = 1.0;
  ServingWorkload cold = warm;
  cold.cache_hit_rate = 0.0;
  const ServingEstimate w = EstimateServingCost(spec, warm);
  const ServingEstimate c = EstimateServingCost(spec, cold);
  // A fully resident streaming scan pays no transfer; a fully cold one
  // re-ships every input byte over PCIe.
  EXPECT_GT(c.streaming_seconds, w.streaming_seconds);
  const uint64_t input_bytes =
      warm.rows * ((warm.value_bits + 7) / 8) *
      (warm.num_predicates + warm.num_aggregates);
  EXPECT_GE(c.streaming_seconds - w.streaming_seconds,
            0.9 * TransferSeconds(spec, input_bytes));
}

TEST(ServingEstimateTest, WiderApproximationShrinksTheCandidateBand) {
  const DeviceSpec spec = DeviceSpec::Gtx680();
  ServingWorkload narrow = ServeScan(0.01);
  narrow.device_bits = 4;
  ServingWorkload wide = ServeScan(0.01);
  wide.device_bits = 24;
  const ServingEstimate n = EstimateServingCost(spec, narrow);
  const ServingEstimate w = EstimateServingCost(spec, wide);
  // Fig 8c's lever: each extra approximation bit halves the boundary
  // digit's false-positive band.
  EXPECT_GT(n.expected_candidates, w.expected_candidates);
}

TEST(ServingEstimateTest, ChooseDeviceBitsIsTheArgmin) {
  const DeviceSpec spec = DeviceSpec::Gtx680();
  const ServingWorkload w = ServeScan(0.01);
  const uint32_t best = ChooseDeviceBits(spec, w);
  ASSERT_GE(best, 1u);
  ASSERT_LE(best, w.value_bits);
  ServingWorkload probe = w;
  probe.device_bits = best;
  const double best_seconds = EstimateServingCost(spec, probe).ar_seconds;
  for (uint32_t bits = 1; bits <= w.value_bits; ++bits) {
    probe.device_bits = bits;
    const double t = EstimateServingCost(spec, probe).ar_seconds;
    EXPECT_GE(t, best_seconds) << "bits=" << bits;
    if (bits < best) {
      // Ties break to the narrower width: everything below the argmin
      // must be strictly worse.
      EXPECT_GT(t, best_seconds) << "bits=" << bits;
    }
  }
}

TEST(ServingEstimateTest, ChooseDeviceBitsPinnedForPaperScan) {
  // The pinned width for the paper-scale regime the scheduler tests also
  // use: 100 M rows, 32-bit domain, 1 % selectivity on a GTX 680.
  EXPECT_EQ(ChooseDeviceBits(DeviceSpec::Gtx680(), ServeScan(0.01)), 12u);
}

}  // namespace
}  // namespace wastenot::device
