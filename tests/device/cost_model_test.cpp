#include "device/cost_model.h"

#include <gtest/gtest.h>

namespace wastenot::device {
namespace {

TEST(CostModelTest, KernelTimeGrowsWithBytes) {
  const DeviceSpec spec;
  const double t1 = KernelSeconds(spec, 1 << 20, 0, 0);
  const double t2 = KernelSeconds(spec, 1 << 24, 0, 0);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t1, spec.launch_overhead);
}

TEST(CostModelTest, LaunchOverheadFloorsTinyKernels) {
  const DeviceSpec spec;
  EXPECT_GE(KernelSeconds(spec, 0, 0, 0), spec.launch_overhead);
}

TEST(CostModelTest, ComputeBoundKernels) {
  DeviceSpec spec;
  // Enormous op count with tiny data: compute time dominates.
  const double t =
      KernelSeconds(spec, 64, 0, static_cast<uint64_t>(1e12));
  EXPECT_GT(t, 0.5);  // ~1e12 ops / 1.5e12 ops/s
}

TEST(CostModelTest, HashConflictsDecreaseWithMoreGroups) {
  const DeviceSpec spec;
  const uint64_t bytes = 100 << 20;
  const double t10 = HashKernelSeconds(spec, bytes, bytes, 0, 10);
  const double t100 = HashKernelSeconds(spec, bytes, bytes, 0, 100);
  const double t100000 = HashKernelSeconds(spec, bytes, bytes, 0, 100000);
  EXPECT_GT(t10, t100);
  EXPECT_GT(t100, t100000);
  // Conflict-free limit approaches the streaming cost.
  const double stream = KernelSeconds(spec, bytes, bytes, 0);
  EXPECT_NEAR(t100000, stream, stream * 0.01);
}

TEST(CostModelTest, FullySerializedWarpIsWarpTimesSlower) {
  DeviceSpec spec;
  spec.launch_overhead = 0;
  const uint64_t bytes = 1 << 20;
  const double stream = KernelSeconds(spec, bytes, 0, 0);
  const double serialized = HashKernelSeconds(spec, bytes, 0, 0, 1);
  EXPECT_NEAR(serialized / stream, spec.warp_width, 0.01);
}

TEST(CostModelTest, TransferMatchesPaperBandwidth) {
  const DeviceSpec spec;
  // Paper §VI-A: 3.95 GB/s measured; 1.8 GB of spatial data ~ 0.45 s
  // (the Fig 9 'Stream (Hypothetical)' bar).
  const double t = TransferSeconds(spec, static_cast<uint64_t>(1.8e9));
  EXPECT_NEAR(t, 0.456, 0.01);
}

TEST(CostModelTest, ZeroTransferIsFree) {
  const DeviceSpec spec;
  EXPECT_EQ(TransferSeconds(spec, 0), 0.0);
}

TEST(CostModelTest, Gtx680DefaultsMatchPaperHardware) {
  const DeviceSpec spec = DeviceSpec::Gtx680();
  EXPECT_EQ(spec.memory_capacity, 2ull << 30);  // 2 GB cards
  EXPECT_DOUBLE_EQ(spec.pcie_bandwidth, 3.95e9);
  EXPECT_EQ(spec.num_devices, 2u);  // two cards in the paper's server
}

}  // namespace
}  // namespace wastenot::device
