// Directed sharded-execution tests: merge discipline (grouped unions,
// empty shards, ungrouped extrema), data-local pruning, PartitionKeyRange,
// dimension replicas for shard-local joins, and the sharded streaming path.
// The broad bit-identity sweep lives in tests/integration.

#include "core/sharded_engine.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/classic_engine.h"
#include "util/random.h"

namespace wastenot::core {
namespace {

struct Fixture {
  cs::Database db;
  std::unique_ptr<device::DeviceGroup> group;
  std::unique_ptr<bwd::ShardedBwdTable> fact;

  Fixture(uint64_t n, uint32_t shards, bwd::PartitionKind kind,
          uint32_t device_bits = 16) {
    Xoshiro256 rng(99);
    cs::Table t("f");
    std::vector<int32_t> k(n), g(n), v(n);
    for (uint64_t i = 0; i < n; ++i) {
      k[i] = static_cast<int32_t>(rng.Below(1000));
      g[i] = static_cast<int32_t>(rng.Below(7));
      v[i] = static_cast<int32_t>(rng.Below(500));
    }
    auto add = [&t](const char* name, std::vector<int32_t>& vals) {
      cs::Column col = cs::Column::FromI32(vals);
      col.ComputeStats();
      (void)t.AddColumn(name, std::move(col));
    };
    add("k", k);
    add("g", g);
    add("v", v);
    db.AddTable(std::move(t));

    device::DeviceGroupOptions gopts;
    gopts.num_devices = shards;
    gopts.base.memory_capacity = 64 << 20;
    gopts.worker_threads = 1;
    group = std::make_unique<device::DeviceGroup>(gopts);

    fact = std::make_unique<bwd::ShardedBwdTable>(
        std::move(bwd::DecomposeSharded(
                      db.table("f"),
                      {{"k", device_bits, bwd::Compression::kBitPacked},
                       {"g", device_bits, bwd::Compression::kBitPacked},
                       {"v", device_bits, bwd::Compression::kBitPacked}},
                      bwd::PartitionSpec{kind, "k", shards}, group.get()))
            .value());
  }
};

TEST(PartitionKeyRangeTest, IntersectsKeyPredicates) {
  QuerySpec q;
  q.predicates.push_back({"k", cs::RangePred{10, 80}});
  q.predicates.push_back({"v", cs::RangePred{0, 5}});  // other column
  q.predicates.push_back({"k", cs::RangePred::Ge(30)});
  const cs::RangePred r = PartitionKeyRange(q, "k");
  EXPECT_EQ(r.lo, 30);
  EXPECT_EQ(r.hi, 80);
  // No predicate on the key: full domain.
  const cs::RangePred all = PartitionKeyRange(q, "zz");
  EXPECT_EQ(all.lo, cs::RangePred::All().lo);
  EXPECT_EQ(all.hi, cs::RangePred::All().hi);
}

TEST(ShardedArTest, GroupedUnionAcrossShards) {
  Fixture f(4000, 3, bwd::PartitionKind::kRange);
  QuerySpec q;
  q.table = "f";
  q.predicates.push_back({"v", cs::RangePred::Lt(250)});
  q.group_by = {"g"};
  q.aggregates = {Aggregate::CountStar("n"), Aggregate::SumOf("v", "sum_v")};

  auto classic = ExecuteClassic(q, f.db);
  ASSERT_TRUE(classic.ok());
  auto sharded = ExecuteArSharded(q, *f.fact, nullptr, f.group.get());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->merged.result, *classic);
  // No predicate touches the partition key: every shard executes.
  EXPECT_EQ(sharded->executed_shards.size(), 3u);
}

TEST(ShardedArTest, UngroupedExtremumWithEmptyShards) {
  Fixture f(3000, 4, bwd::PartitionKind::kRange);
  // Keys 0..999 range-sharded 4 ways; predicate selects only the first
  // stripe, so three shard runs see zero rows. Their placeholder extremum
  // (0) must not leak into the merged min/max.
  QuerySpec q;
  q.table = "f";
  q.predicates.push_back({"k", cs::RangePred::Lt(200)});
  Aggregate mn, mx;
  mn.func = AggFunc::kMin;
  mn.terms = {Term::Col("v")};
  mn.label = "min_v";
  mx.func = AggFunc::kMax;
  mx.terms = {Term::Col("v")};
  mx.label = "max_v";
  q.aggregates = {Aggregate::CountStar("n"), mn, mx};

  auto classic = ExecuteClassic(q, f.db);
  ASSERT_TRUE(classic.ok());

  ShardedArOptions no_prune;
  no_prune.data_local_pruning = false;  // force the empty shard runs
  auto sharded =
      ExecuteArSharded(q, *f.fact, nullptr, f.group.get(), no_prune);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->merged.result, *classic);
  EXPECT_EQ(sharded->executed_shards.size(), 4u);
}

TEST(ShardedArTest, DataLocalPruningExecutesSubset) {
  Fixture f(3000, 4, bwd::PartitionKind::kRange);
  QuerySpec q;
  q.table = "f";
  q.predicates.push_back({"k", cs::RangePred::Lt(200)});
  q.aggregates = {Aggregate::CountStar("n"), Aggregate::SumOf("v", "sum_v")};

  auto classic = ExecuteClassic(q, f.db);
  ASSERT_TRUE(classic.ok());
  auto pruned = ExecuteArSharded(q, *f.fact, nullptr, f.group.get());
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->merged.result, *classic);
  EXPECT_LT(pruned->executed_shards.size(), 4u);

  // A contradictory key predicate still yields the single-device zero
  // skeleton (one group, zero count) via the stand-in shard.
  QuerySpec none = q;
  none.predicates.push_back({"k", cs::RangePred{500, 100}});
  auto zero = ExecuteArSharded(none, *f.fact, nullptr, f.group.get());
  ASSERT_TRUE(zero.ok());
  auto zero_classic = ExecuteClassic(none, f.db);
  ASSERT_TRUE(zero_classic.ok());
  EXPECT_EQ(zero->merged.result, *zero_classic);
  EXPECT_EQ(zero->executed_shards.size(), 1u);
}

TEST(ShardedArTest, JoinUsesPerDeviceDimReplicas) {
  // Join keys must be fully device-resident (device_bits counts from the
  // top of the physical int32, so anything < 32 leaves the narrow "g"
  // column entirely residual).
  Fixture f(2500, 3, bwd::PartitionKind::kRadix, /*device_bits=*/32);
  // Dimension table: 16 rows keyed by fact "g" (g in 0..6, fk_base 0).
  cs::Table dim("d");
  std::vector<int32_t> w(16);
  for (int i = 0; i < 16; ++i) w[i] = 3 * i + 1;
  cs::Column wc = cs::Column::FromI32(w);
  wc.ComputeStats();
  (void)dim.AddColumn("w", std::move(wc));
  f.db.AddTable(dim.Clone());

  auto replicas = bwd::ReplicatePerDevice(
      dim, {{"w", 32, bwd::Compression::kBitPacked}}, f.group.get());
  ASSERT_TRUE(replicas.ok()) << replicas.status().ToString();
  ASSERT_EQ(replicas->size(), f.group->size());

  QuerySpec q;
  q.table = "f";
  q.predicates.push_back({"v", cs::RangePred::Lt(300)});
  q.join = JoinSpec{"g", "d", /*fk_base=*/0};
  Aggregate s;
  s.func = AggFunc::kSum;
  Term dim_term = Term::Col("w");
  dim_term.from_dimension = true;
  s.terms = {Term::Col("v"), dim_term};
  s.label = "vw";
  q.aggregates = {Aggregate::CountStar("n"), s};

  auto classic = ExecuteClassic(q, f.db);
  ASSERT_TRUE(classic.ok()) << classic.status().ToString();
  auto sharded =
      ExecuteArSharded(q, *f.fact, &*replicas, f.group.get());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->merged.result, *classic);

  // Missing replicas on a join query is an argument error, not a crash.
  auto missing = ExecuteArSharded(q, *f.fact, nullptr, f.group.get());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedArTest, BreakdownAggregatesAcrossShards) {
  Fixture f(3000, 3, bwd::PartitionKind::kRadix);
  QuerySpec q;
  q.table = "f";
  q.predicates.push_back({"v", cs::RangePred::Lt(400)});
  q.aggregates = {Aggregate::CountStar("n")};
  auto sharded = ExecuteArSharded(q, *f.fact, nullptr, f.group.get());
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->shard_breakdowns.size(),
            sharded->executed_shards.size());
  double max_dev = 0;
  for (const ExecutionBreakdown& b : sharded->shard_breakdowns) {
    max_dev = std::max(max_dev, b.device_seconds);
  }
  EXPECT_DOUBLE_EQ(sharded->merged.breakdown.device_seconds, max_dev);
  EXPECT_GT(sharded->merged.breakdown.device_seconds, 0.0);
  EXPECT_NE(sharded->merged.plan_text.find("sharded A&R"), std::string::npos);
}

TEST(ShardedStreamingTest, MatchesClassicAndPrunes) {
  Fixture f(3000, 4, bwd::PartitionKind::kRange);
  const std::vector<cs::Database> shard_dbs =
      bwd::BuildShardDatabases(f.fact->partition, {});
  ASSERT_EQ(shard_dbs.size(), 4u);

  QuerySpec q;
  q.table = "f";
  q.predicates.push_back({"k", cs::RangePred::Lt(200)});
  q.group_by = {"g"};
  q.aggregates = {Aggregate::CountStar("n"), Aggregate::SumOf("v", "sum_v")};

  auto classic = ExecuteClassic(q, f.db);
  ASSERT_TRUE(classic.ok());

  auto all = ExecuteStreamingSharded(q, shard_dbs, f.group.get());
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->merged.result, *classic);
  EXPECT_EQ(all->executed_shards.size(), 4u);
  EXPECT_GT(all->merged.bytes_transferred, 0u);

  auto pruned = ExecuteStreamingSharded(q, shard_dbs, f.group.get(),
                                        &f.fact->partition);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->merged.result, *classic);
  EXPECT_LT(pruned->executed_shards.size(), 4u);

  // Parallel fan-out: same bits.
  auto fanned = ExecuteStreamingSharded(q, shard_dbs, f.group.get(),
                                        &f.fact->partition,
                                        /*fan_out_threads=*/0);
  ASSERT_TRUE(fanned.ok());
  EXPECT_EQ(fanned->merged.result, *classic);
}

TEST(ShardedArTest, RejectsMissingGroup) {
  Fixture f(1200, 2, bwd::PartitionKind::kRange);
  QuerySpec q;
  q.table = "f";
  q.aggregates = {Aggregate::CountStar("n")};
  auto exec = ExecuteArSharded(q, *f.fact, nullptr, nullptr);
  EXPECT_EQ(exec.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wastenot::core
