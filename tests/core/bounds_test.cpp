#include "core/bounds.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::core {
namespace {

TEST(BoundsTest, ExactAndContains) {
  ValueBounds b = ValueBounds::Exact(7);
  EXPECT_TRUE(b.IsExact());
  EXPECT_TRUE(b.Contains(7));
  EXPECT_FALSE(b.Contains(8));
  EXPECT_EQ(b.Estimate(), 7);
}

TEST(BoundsTest, FromApproximation) {
  ValueBounds b = ValueBounds::FromApproximation(100, 255);
  EXPECT_EQ(b.lo, 100);
  EXPECT_EQ(b.hi, 355);
  EXPECT_TRUE(b.Contains(200));
  EXPECT_FALSE(b.IsExact());
}

TEST(BoundsTest, AddSub) {
  ValueBounds a{1, 3}, b{10, 20};
  EXPECT_EQ((a + b).lo, 11);
  EXPECT_EQ((a + b).hi, 23);
  EXPECT_EQ((a - b).lo, 1 - 20);
  EXPECT_EQ((a - b).hi, 3 - 10);
}

TEST(BoundsTest, MulCoversSignCombinations) {
  ValueBounds a{-2, 3}, b{-5, 4};
  ValueBounds p = a * b;
  EXPECT_EQ(p.lo, -15);  // 3 * -5
  EXPECT_EQ(p.hi, 12);   // 3 * 4 or -2 * -5 = 10 < 12
}

TEST(BoundsTest, ScaleAndNegate) {
  ValueBounds a{2, 5};
  EXPECT_EQ(a.Scale(3).lo, 6);
  EXPECT_EQ(a.Scale(-1).lo, -5);
  EXPECT_EQ(a.Scale(-1).hi, -2);
  EXPECT_EQ(a.Negate().lo, -5);
  EXPECT_EQ(a.Shift(10).hi, 15);
}

TEST(BoundsTest, DivideRoundsOutward) {
  ValueBounds a{-7, 7};
  ValueBounds q = a.DivideBy(2);
  EXPECT_LE(q.lo, -4);  // floor(-3.5)
  EXPECT_GE(q.hi, 4);   // ceil(3.5)
  EXPECT_TRUE(q.Contains(-3));
  EXPECT_TRUE(q.Contains(3));
}

TEST(BoundsTest, SqrtSound) {
  ValueBounds a{10, 26};
  ValueBounds r = a.Sqrt();
  EXPECT_LE(r.lo * r.lo, 10);
  EXPECT_GE(r.hi * r.hi, 26);
}

TEST(BoundsTest, Overlaps) {
  ValueBounds a{5, 10};
  EXPECT_TRUE(a.Overlaps(10, 20));
  EXPECT_TRUE(a.Overlaps(0, 5));
  EXPECT_FALSE(a.Overlaps(11, 20));
  EXPECT_FALSE(a.Overlaps(-5, 4));
}

/// Property: for random interval pairs and random contained points, every
/// arithmetic result interval contains the exact result — the soundness
/// guarantee approximation operators rely on (paper §III).
TEST(BoundsTest, PropertySoundnessUnderRandomChains) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    auto make = [&](int64_t range) {
      const int64_t lo =
          static_cast<int64_t>(rng.Below(2 * range)) - range;
      const int64_t width = static_cast<int64_t>(rng.Below(100));
      ValueBounds b{lo, lo + width};
      const int64_t exact =
          lo + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(width + 1)));
      return std::make_pair(b, exact);
    };
    auto [a, xa] = make(1000);
    auto [b, xb] = make(1000);

    EXPECT_TRUE((a + b).Contains(xa + xb));
    EXPECT_TRUE((a - b).Contains(xa - xb));
    EXPECT_TRUE((a * b).Contains(xa * xb));
    EXPECT_TRUE(a.Scale(7).Contains(xa * 7));
    EXPECT_TRUE(a.Scale(-7).Contains(xa * -7));
    EXPECT_TRUE(a.Shift(-13).Contains(xa - 13));
    EXPECT_TRUE(a.DivideBy(3).Contains(xa / 3));
    EXPECT_TRUE(a.DivideBy(-3).Contains(xa / -3));
    EXPECT_TRUE(a.Sqrt().Contains(ISqrt(xa)));
    // Chained: (a*b + a).Scale(2)
    EXPECT_TRUE(((a * b) + a).Scale(2).Contains((xa * xb + xa) * 2));
  }
}

TEST(BoundsTest, FloorCeilDivHelpers) {
  EXPECT_EQ(FloorDiv(7, 2), 3);
  EXPECT_EQ(FloorDiv(-7, 2), -4);
  EXPECT_EQ(CeilDivSigned(7, 2), 4);
  EXPECT_EQ(CeilDivSigned(-7, 2), -3);
  EXPECT_EQ(FloorDiv(6, 3), 2);
  EXPECT_EQ(CeilDivSigned(6, 3), 2);
}

TEST(BoundsTest, ISqrtExactness) {
  for (int64_t v = 0; v < 1000; ++v) {
    const int64_t r = ISqrt(v);
    EXPECT_LE(r * r, v);
    EXPECT_GT((r + 1) * (r + 1), v);
  }
}

}  // namespace
}  // namespace wastenot::core
