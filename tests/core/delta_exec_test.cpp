// Delta-overlay identity: executing base + DeltaBatch through any engine
// is bit-identical to executing a table that already absorbed the delta
// rows (the exactness contract of DESIGN.md §9.2), and the approximate
// answer stays sound for the merged exact result. Also pins the delta
// validation surface: missing delta columns, out-of-range FK values,
// self-join guards, and the sharded rejection.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bwd/partition.h"
#include "core/plan_exec.h"
#include "core/sharded_engine.h"
#include "storage/delta_store.h"
#include "util/random.h"

namespace wastenot::core {
namespace {

void AddI32(cs::Table* t, const char* name, std::vector<int32_t>& vals) {
  cs::Column col = cs::Column::FromI32(vals);
  col.ComputeStats();
  (void)t->AddColumn(name, std::move(col));
}

constexpr uint64_t kDimRows = 32;

/// Full fact table vs (base prefix + delta tail of the same rows): both
/// databases share the dimension contents, and the delta tail lives in a
/// DeltaStore snapshot.
struct DeltaFixture {
  cs::Database full_db;
  cs::Database base_db;
  std::unique_ptr<device::Device> dev;
  std::unique_ptr<bwd::BwdTable> base_fact;
  std::unique_ptr<bwd::BwdTable> dim;
  storage::DeltaStore store{{"a", "g", "v", "fk"}};
  std::shared_ptr<const storage::DeltaBatch> batch;
  uint64_t n = 0;
  uint64_t n_base = 0;

  explicit DeltaFixture(uint64_t seed) {
    Xoshiro256 rng(seed * 9176 + 3);
    n = 300 + rng.Below(900);
    n_base = n / 2 + rng.Below(n / 3);
    std::vector<int32_t> a(n), g(n), v(n), fk(n);
    for (uint64_t i = 0; i < n; ++i) {
      a[i] = static_cast<int32_t>(rng.Below(1 << 12));
      g[i] = static_cast<int32_t>(rng.Below(9));
      v[i] = static_cast<int32_t>(rng.Below(1000));
      fk[i] = static_cast<int32_t>(1 + rng.Below(kDimRows));
    }
    auto build_fact = [&](uint64_t rows) {
      cs::Table t("fact");
      std::vector<int32_t> ca(a.begin(), a.begin() + rows);
      std::vector<int32_t> cg(g.begin(), g.begin() + rows);
      std::vector<int32_t> cv(v.begin(), v.begin() + rows);
      std::vector<int32_t> cfk(fk.begin(), fk.begin() + rows);
      AddI32(&t, "a", ca);
      AddI32(&t, "g", cg);
      AddI32(&t, "v", cv);
      AddI32(&t, "fk", cfk);
      return t;
    };
    full_db.AddTable(build_fact(n));
    base_db.AddTable(build_fact(n_base));
    {
      std::vector<int32_t> t(kDimRows), w(kDimRows);
      for (uint64_t i = 0; i < kDimRows; ++i) {
        t[i] = static_cast<int32_t>(rng.Below(16));
        w[i] = static_cast<int32_t>(rng.Below(30));
      }
      cs::Table dim_full("dim"), dim_base("dim");
      AddI32(&dim_full, "t", t);
      AddI32(&dim_full, "w", w);
      AddI32(&dim_base, "t", t);
      AddI32(&dim_base, "w", w);
      full_db.AddTable(std::move(dim_full));
      base_db.AddTable(std::move(dim_base));
    }

    for (uint64_t i = n_base; i < n; ++i) {
      EXPECT_TRUE(
          store.Append(std::vector<int64_t>{a[i], g[i], v[i], fk[i]}).ok());
    }
    batch = store.Snapshot(0);

    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    const uint32_t bits = static_cast<uint32_t>(5 + rng.Below(24));
    base_fact = std::make_unique<bwd::BwdTable>(std::move(
        bwd::BwdTable::Decompose(base_db.table("fact"),
                                 {{"a", bits, bwd::Compression::kBitPacked},
                                  {"g", bits, bwd::Compression::kBitPacked},
                                  {"v", bits, bwd::Compression::kBitPacked},
                                  {"fk", 32, bwd::Compression::kBitPacked}},
                                 dev.get())
            .value()));
    dim = std::make_unique<bwd::BwdTable>(std::move(
        bwd::BwdTable::Decompose(base_db.table("dim"),
                                 {{"t", 32, bwd::Compression::kBitPacked},
                                  {"w", 32, bwd::Compression::kBitPacked}},
                                 dev.get())
            .value()));
  }
};

/// Seed-varied single-join spec: count/sum/avg (the shapes every path
/// supports, including the general executors).
QuerySpec RandomDeltaSpec(uint64_t seed) {
  Xoshiro256 rng(seed * 4211 + 29);
  QuerySpec q;
  q.table = "fact";
  const int64_t lo = static_cast<int64_t>(rng.Below(1 << 11));
  const int64_t hi = lo + static_cast<int64_t>(rng.Below(1 << 11)) + 1;
  q.predicates.push_back({"a", cs::RangePred{lo, hi}});
  const bool join = rng.Below(2) == 0;
  if (join) q.join = JoinSpec{"fk", "dim", 1};
  if (rng.Below(2) == 0) q.group_by = {"g"};
  q.aggregates = {Aggregate::CountStar("n"), Aggregate::SumOf("v", "sum_v")};
  if (rng.Below(2) == 0) {
    Aggregate avg;
    avg.func = AggFunc::kAvg;
    avg.terms = {Term::Col("v")};
    avg.label = "avg_v";
    q.aggregates.push_back(std::move(avg));
  }
  if (join && rng.Below(2) == 0) {
    Aggregate gated;
    gated.func = AggFunc::kSum;
    Term dim_term = Term::Col("w");
    dim_term.from_dimension = true;
    gated.terms = {Term::Col("v"), dim_term};
    gated.filter = CaseFilter{"t", cs::RangePred::Lt(8)};
    gated.label = "gated";
    q.aggregates.push_back(std::move(gated));
  }
  return q;
}

/// The strict-bounds contract against the *merged* exact result: every
/// exact group is covered by exactly one approx group and every aggregate
/// value lies inside its interval.
void CheckApproxCoversExact(const ApproximateAnswer& approx,
                            const QueryResult& exact,
                            const std::vector<Aggregate>& aggs,
                            const std::string& tag) {
  EXPECT_LE(approx.row_count.lo, static_cast<int64_t>(exact.selected_rows))
      << tag;
  EXPECT_GE(approx.row_count.hi, static_cast<int64_t>(exact.selected_rows))
      << tag;
  for (uint64_t ge = 0; ge < exact.num_groups(); ++ge) {
    if (exact.group_counts[ge] == 0) continue;
    int64_t match = -1;
    for (uint64_t ga = 0; ga < approx.num_groups(); ++ga) {
      bool contains = true;
      for (uint64_t k = 0; k < exact.group_keys[ge].size(); ++k) {
        contains &= approx.key_bounds[ga][k].Contains(exact.group_keys[ge][k]);
      }
      if (!contains) continue;
      EXPECT_EQ(match, -1) << tag << ": group " << ge << " covered twice";
      match = static_cast<int64_t>(ga);
    }
    ASSERT_NE(match, -1) << tag << ": exact group " << ge << " not covered";
    // A digit group can hold several exact groups, so per-agg containment
    // is only checked when the mapping is one-to-one (exact point keys).
    bool point_keys = true;
    for (uint64_t k = 0; k < exact.group_keys[ge].size(); ++k) {
      point_keys &=
          approx.key_bounds[static_cast<size_t>(match)][k].IsExact();
    }
    if (!point_keys && !exact.group_keys[ge].empty()) continue;
    for (uint64_t i = 0; i < aggs.size(); ++i) {
      const ValueBounds& b = approx.agg_bounds[static_cast<size_t>(match)][i];
      const int64_t value = exact.agg_values[ge][i];
      const int64_t count = exact.group_counts[ge];
      const std::string where = tag + ": group " + std::to_string(ge) +
                                " agg " + std::to_string(i) + " " +
                                b.ToString();
      switch (aggs[i].func) {
        case AggFunc::kCount:
        case AggFunc::kSum:
          EXPECT_TRUE(b.Contains(value)) << where << " misses " << value;
          break;
        case AggFunc::kAvg:
          EXPECT_TRUE(b.Contains(FloorDiv(value, count))) << where;
          EXPECT_TRUE(b.Contains(CeilDivSigned(value, count))) << where;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          EXPECT_TRUE(b.Contains(value)) << where << " misses " << value;
          break;
      }
    }
  }
}

class DeltaIdentityFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaIdentityFuzz, BasePlusDeltaMatchesAbsorbedTable) {
  const uint64_t seed = GetParam();
  DeltaFixture f(seed);
  const QuerySpec q = RandomDeltaSpec(seed);

  auto reference = detail::ExecuteClassicLegacy(q, f.full_db, {});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Classic.
  ClassicOptions copts;
  copts.delta = f.batch.get();
  auto classic = ExecuteClassic(q, f.base_db, copts);
  ASSERT_TRUE(classic.ok()) << classic.status().ToString();
  EXPECT_EQ(*classic, *reference) << "classic seed " << seed;
  EXPECT_EQ(classic->selected_rows, reference->selected_rows);

  // A&R: exact identity plus approximate soundness for the merged result.
  ArOptions aopts;
  aopts.delta = f.batch.get();
  auto ar = ExecuteAr(q, *f.base_fact, f.dim.get(), f.dev.get(), aopts);
  ASSERT_TRUE(ar.ok()) << ar.status().ToString();
  EXPECT_EQ(ar->result, *reference) << "ar seed " << seed;
  CheckApproxCoversExact(ar->approx, *reference, q.aggregates,
                         "ar seed " + std::to_string(seed));

  // Streaming.
  device::ResidencyCache cache(f.dev.get());
  auto streaming =
      ExecuteStreaming(q, f.base_db, f.dev.get(), &cache, f.batch.get());
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  EXPECT_EQ(streaming->result, *reference) << "streaming seed " << seed;

  // Force the general executors onto the same shape (ProjectNode defeats
  // PlanToSpec): the delta path must hold there too.
  PhysicalPlan general = LowerToPlan(q);
  general.ops.push_back(ProjectNode{});
  auto general_classic = ExecutePlanClassic(general, f.base_db, copts);
  ASSERT_TRUE(general_classic.ok()) << general_classic.status().ToString();
  EXPECT_EQ(*general_classic, *reference) << "general classic seed " << seed;
  const BwdTableMap dims = {{"dim", f.dim.get()}};
  auto general_ar =
      ExecutePlanAr(general, *f.base_fact, dims, f.dev.get(), aopts);
  ASSERT_TRUE(general_ar.ok()) << general_ar.status().ToString();
  EXPECT_EQ(general_ar->result, *reference) << "general ar seed " << seed;
  CheckApproxCoversExact(general_ar->approx, *reference, q.aggregates,
                         "general ar seed " + std::to_string(seed));
  device::ResidencyCache gcache(f.dev.get());
  auto general_str = ExecutePlanStreaming(general, f.base_db, f.dev.get(),
                                          &gcache, f.batch.get());
  ASSERT_TRUE(general_str.ok()) << general_str.status().ToString();
  EXPECT_EQ(general_str->result, *reference) << "general streaming " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaIdentityFuzz,
                         ::testing::Range<uint64_t>(0, 8));

TEST(DeltaExecTest, MinMaxAggregatesMergeThroughExtrema) {
  // Legacy single-join path (the one that supports min/max): delta rows
  // both extend existing groups' extrema and create a brand-new group.
  for (const uint64_t seed : {3u, 11u}) {
    DeltaFixture f(seed);
    QuerySpec q;
    q.table = "fact";
    q.predicates.push_back({"a", cs::RangePred{0, 1 << 11}});
    q.group_by = {"g"};
    Aggregate mn, mx;
    mn.func = AggFunc::kMin;
    mn.terms = {Term::Col("v")};
    mn.label = "min_v";
    mx.func = AggFunc::kMax;
    mx.terms = {Term::Col("v")};
    mx.label = "max_v";
    q.aggregates = {mn, mx, Aggregate::CountStar("n")};

    auto reference = detail::ExecuteClassicLegacy(q, f.full_db, {});
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ClassicOptions copts;
    copts.delta = f.batch.get();
    auto classic = ExecuteClassic(q, f.base_db, copts);
    ASSERT_TRUE(classic.ok()) << classic.status().ToString();
    EXPECT_EQ(*classic, *reference) << "seed " << seed;

    // The A&R engine supports min/max ungrouped with a bare column term.
    QuerySpec uq = q;
    uq.group_by.clear();
    uq.aggregates = {mn, mx};
    auto ureference = detail::ExecuteClassicLegacy(uq, f.full_db, {});
    ASSERT_TRUE(ureference.ok()) << ureference.status().ToString();
    ArOptions aopts;
    aopts.delta = f.batch.get();
    auto ar = ExecuteAr(uq, *f.base_fact, nullptr, f.dev.get(), aopts);
    ASSERT_TRUE(ar.ok()) << ar.status().ToString();
    EXPECT_EQ(ar->result, *ureference) << "seed " << seed;
    CheckApproxCoversExact(ar->approx, *ureference, uq.aggregates,
                           "minmax seed " + std::to_string(seed));
  }
}

TEST(DeltaExecTest, EmptyDeltaChangesNothing) {
  DeltaFixture f(5);
  storage::DeltaStore empty({"a", "g", "v", "fk"});
  const auto empty_batch = empty.Snapshot(0);
  const QuerySpec q = RandomDeltaSpec(5);

  auto plain = ExecuteClassic(q, f.base_db, {});
  ASSERT_TRUE(plain.ok());
  ClassicOptions copts;
  copts.delta = empty_batch.get();
  auto with_empty = ExecuteClassic(q, f.base_db, copts);
  ASSERT_TRUE(with_empty.ok());
  EXPECT_EQ(*with_empty, *plain);

  ArOptions aopts;
  aopts.delta = empty_batch.get();
  auto ar_plain = ExecuteAr(q, *f.base_fact, f.dim.get(), f.dev.get(), {});
  auto ar_empty = ExecuteAr(q, *f.base_fact, f.dim.get(), f.dev.get(), aopts);
  ASSERT_TRUE(ar_plain.ok() && ar_empty.ok());
  EXPECT_EQ(ar_empty->result, ar_plain->result);
  EXPECT_EQ(ar_empty->num_candidates, ar_plain->num_candidates);
}

TEST(DeltaExecTest, ProgressiveHookSeesTheMergedAnswer) {
  DeltaFixture f(7);
  const QuerySpec q = RandomDeltaSpec(7);
  ArOptions aopts;
  aopts.delta = f.batch.get();
  ApproximateAnswer at_boundary;
  int calls = 0;
  aopts.on_approximate = [&](const ApproximateAnswer& a) {
    at_boundary = a;
    ++calls;
  };
  auto ar = ExecuteAr(q, *f.base_fact, f.dim.get(), f.dev.get(), aopts);
  ASSERT_TRUE(ar.ok()) << ar.status().ToString();
  ASSERT_EQ(calls, 1);
  // The hook's answer is the same merged answer the execution returns, and
  // it already covers the merged exact result — a progressive consumer
  // never sees bounds that the delta rows later escape.
  EXPECT_EQ(at_boundary.num_groups(), ar->approx.num_groups());
  EXPECT_EQ(at_boundary.row_count.lo, ar->approx.row_count.lo);
  EXPECT_EQ(at_boundary.row_count.hi, ar->approx.row_count.hi);
  CheckApproxCoversExact(at_boundary, ar->result, q.aggregates, "hook");
}

TEST(DeltaExecTest, MissingDeltaColumnIsInvalidArgument) {
  DeltaFixture f(2);
  storage::DeltaStore narrow({"a", "g"});  // no "v", no "fk"
  ASSERT_TRUE(narrow.Append(std::vector<int64_t>{1, 2}).ok());
  const auto batch = narrow.Snapshot(0);
  QuerySpec q;
  q.table = "fact";
  q.predicates.push_back({"a", cs::RangePred{0, 1 << 12}});
  q.aggregates = {Aggregate::SumOf("v", "sum_v")};
  ClassicOptions copts;
  copts.delta = batch.get();
  auto result = ExecuteClassic(q, f.base_db, copts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaExecTest, OutOfRangeDeltaFkIsInvalidArgument) {
  DeltaFixture f(2);
  storage::DeltaStore store({"a", "g", "v", "fk"});
  ASSERT_TRUE(store.Append(
      std::vector<int64_t>{1, 2, 3,
                           static_cast<int64_t>(kDimRows) + 7}).ok());
  const auto batch = store.Snapshot(0);
  QuerySpec q;
  q.table = "fact";
  q.predicates.push_back({"a", cs::RangePred{0, 1 << 12}});
  q.join = JoinSpec{"fk", "dim", 1};
  q.aggregates = {Aggregate::CountStar("n")};
  ClassicOptions copts;
  copts.delta = batch.get();
  auto classic = ExecuteClassic(q, f.base_db, copts);
  ASSERT_FALSE(classic.ok());
  EXPECT_EQ(classic.status().code(), StatusCode::kInvalidArgument);
  ArOptions aopts;
  aopts.delta = batch.get();
  auto ar = ExecuteAr(q, *f.base_fact, f.dim.get(), f.dev.get(), aopts);
  ASSERT_FALSE(ar.ok());
  EXPECT_EQ(ar.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaExecTest, SelfJoinWithDeltaIsUnsupported) {
  DeltaFixture f(2);
  // Theta right side = the scanned table itself: the delta rows would have
  // to appear on the right side too, which the overlay cannot express.
  PhysicalPlan plan;
  plan.scan = ScanNode{"fact"};
  plan.ops.push_back(ThetaJoinNode{0, "v", "fact", "v", ThetaOp::kLess, 0});
  plan.group_agg.aggregates = {
      PlanAggregate{AggFunc::kCount, 1, {}, std::nullopt, "n", 1.0}};
  ClassicOptions copts;
  copts.delta = f.batch.get();
  auto result = ExecutePlanClassic(plan, f.base_db, copts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(DeltaExecTest, ShardedExecutionRejectsDelta) {
  DeltaFixture f(2);
  device::DeviceGroupOptions gopts;
  device::DeviceGroup group(gopts);
  ShardedArOptions sopts;
  sopts.ar.delta = f.batch.get();
  bwd::ShardedBwdTable sharded;
  QuerySpec q;
  q.table = "fact";
  q.aggregates = {Aggregate::CountStar("n")};
  auto result = ExecuteArSharded(q, sharded, nullptr, &group, sopts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  auto plan_result = ExecutePlanArSharded(LowerToPlan(q), sharded, nullptr,
                                          &group, sopts);
  ASSERT_FALSE(plan_result.ok());
  EXPECT_EQ(plan_result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wastenot::core
