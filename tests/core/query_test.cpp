#include "core/query.h"

#include <gtest/gtest.h>

namespace wastenot::core {
namespace {

TEST(RangePredTest, Factories) {
  EXPECT_TRUE(cs::RangePred::Eq(5).Contains(5));
  EXPECT_FALSE(cs::RangePred::Eq(5).Contains(6));
  EXPECT_TRUE(cs::RangePred::Lt(5).Contains(4));
  EXPECT_FALSE(cs::RangePred::Lt(5).Contains(5));
  EXPECT_TRUE(cs::RangePred::Le(5).Contains(5));
  EXPECT_TRUE(cs::RangePred::Gt(5).Contains(6));
  EXPECT_FALSE(cs::RangePred::Gt(5).Contains(5));
  EXPECT_TRUE(cs::RangePred::Ge(5).Contains(5));
  EXPECT_TRUE(cs::RangePred::Between(3, 7).Contains(3));
  EXPECT_TRUE(cs::RangePred::Between(3, 7).Contains(7));
  EXPECT_FALSE(cs::RangePred::Between(3, 7).Contains(8));
  EXPECT_TRUE(cs::RangePred::All().Contains(
      std::numeric_limits<int64_t>::min()));
  EXPECT_TRUE((cs::RangePred{7, 3}).Empty());
  EXPECT_FALSE(cs::RangePred::Eq(0).Empty());
}

TEST(TermTest, Builders) {
  Term c = Term::Col("x");
  EXPECT_EQ(c.column, "x");
  EXPECT_EQ(c.offset, 0);
  EXPECT_EQ(c.sign, +1);
  Term om = Term::OneMinus("d", 100);
  EXPECT_EQ(om.offset, 100);
  EXPECT_EQ(om.sign, -1);
  Term op = Term::OnePlus("t", 100);
  EXPECT_EQ(op.sign, +1);
}

QueryResult MakeResult() {
  QueryResult r;
  r.key_names = {"g"};
  r.agg_labels = {"s"};
  r.group_keys = {{3}, {1}, {2}};
  r.agg_values = {{30}, {10}, {20}};
  r.group_counts = {3, 1, 2};
  r.selected_rows = 6;
  return r;
}

TEST(QueryResultTest, SortByKeysIsCanonical) {
  QueryResult r = MakeResult();
  r.SortByKeys();
  EXPECT_EQ(r.group_keys, (std::vector<std::vector<int64_t>>{{1}, {2}, {3}}));
  EXPECT_EQ(r.agg_values, (std::vector<std::vector<int64_t>>{{10}, {20}, {30}}));
  EXPECT_EQ(r.group_counts, (std::vector<int64_t>{1, 2, 3}));
}

TEST(QueryResultTest, EqualityAfterCanonicalization) {
  QueryResult a = MakeResult();
  QueryResult b = MakeResult();
  std::swap(b.group_keys[0], b.group_keys[2]);
  std::swap(b.agg_values[0], b.agg_values[2]);
  std::swap(b.group_counts[0], b.group_counts[2]);
  EXPECT_FALSE(a == b);
  a.SortByKeys();
  b.SortByKeys();
  EXPECT_TRUE(a == b);
}

TEST(QueryResultTest, ToStringAppliesScalesAndAverages) {
  QueryResult r;
  r.key_names = {};
  r.agg_labels = {"avg_x", "sum_cents"};
  r.group_keys = {{}};
  r.agg_values = {{100, 250}};
  r.group_counts = {4};
  Aggregate avg;
  avg.func = AggFunc::kAvg;
  avg.label = "avg_x";
  Aggregate sum;
  sum.func = AggFunc::kSum;
  sum.label = "sum_cents";
  sum.display_scale = 100.0;
  const std::string text = r.ToString({avg, sum});
  EXPECT_NE(text.find("25"), std::string::npos);   // 100 / 4
  EXPECT_NE(text.find("2.5"), std::string::npos);  // 250 / 100
}

TEST(ApproximateAnswerTest, ExactDetection) {
  ApproximateAnswer a;
  a.row_count = ValueBounds::Exact(5);
  a.key_bounds = {{ValueBounds::Exact(1)}};
  a.agg_bounds = {{ValueBounds::Exact(10)}};
  EXPECT_TRUE(a.exact());
  a.agg_bounds[0][0] = ValueBounds{9, 11};
  EXPECT_FALSE(a.exact());
}

TEST(ApproximateAnswerTest, ToStringShowsBounds) {
  ApproximateAnswer a;
  a.row_count = ValueBounds{90, 110};
  a.key_bounds = {{ValueBounds{0, 3}}};
  a.agg_bounds = {{ValueBounds{100, 200}}};
  Aggregate s;
  s.label = "sum";
  const std::string text = a.ToString({"g"}, {s});
  EXPECT_NE(text.find("[90, 110]"), std::string::npos);
  EXPECT_NE(text.find("[100, 200]"), std::string::npos);
  EXPECT_NE(text.find("g=[0, 3]"), std::string::npos);
}

TEST(AggregateTest, BuildersProduceLabels) {
  Aggregate c = Aggregate::CountStar("n");
  EXPECT_EQ(c.func, AggFunc::kCount);
  EXPECT_TRUE(c.terms.empty());
  Aggregate s = Aggregate::SumOf("price", "sum_price", 100.0);
  EXPECT_EQ(s.func, AggFunc::kSum);
  ASSERT_EQ(s.terms.size(), 1u);
  EXPECT_EQ(s.terms[0].column, "price");
  EXPECT_DOUBLE_EQ(s.display_scale, 100.0);
}

}  // namespace
}  // namespace wastenot::core
