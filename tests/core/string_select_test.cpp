#include "core/string_select.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::core {
namespace {

TEST(StringPrefixCodeTest, OrderPreserving) {
  // Codes compare like the (padded) strings themselves.
  EXPECT_LT(StringPrefixCode("ABC", 4), StringPrefixCode("ABD", 4));
  EXPECT_LT(StringPrefixCode("AB", 4), StringPrefixCode("ABA", 4));
  EXPECT_LT(StringPrefixCode("", 4), StringPrefixCode("A", 4));
  // Only the first k bytes matter.
  EXPECT_EQ(StringPrefixCode("ABCDE", 4), StringPrefixCode("ABCDZ", 4));
}

TEST(StringPrefixCodeTest, HighBytesHandled) {
  const std::string high = "\xFF\xFE";
  EXPECT_GT(StringPrefixCode(high, 4), StringPrefixCode("zzzz", 4));
}

TEST(StringPrefixRangeTest, ShortPatternIsTight) {
  const cs::RangePred r = StringPrefixRange("AB", 4);
  EXPECT_LE(r.lo, StringPrefixCode("AB", 4));
  EXPECT_GE(r.hi, StringPrefixCode("ABzz", 4));
  EXPECT_LT(r.hi, StringPrefixCode("AC", 4));
  // A non-matching string is outside.
  EXPECT_FALSE(r.Contains(StringPrefixCode("AA", 4)));
}

TEST(StringPrefixRangeTest, LongPatternClipsToK) {
  // Pattern longer than the code: range covers the k-byte prefix.
  const cs::RangePred r = StringPrefixRange("ABCDEFG", 4);
  EXPECT_TRUE(r.Contains(StringPrefixCode("ABCDEFG", 4)));
  EXPECT_TRUE(r.Contains(StringPrefixCode("ABCDZZZ", 4)))
      << "k-prefix sharers are (false-positive) candidates";
}

struct StringFixture {
  std::vector<std::string> strings;
  std::unique_ptr<device::Device> dev;
  bwd::BwdColumn codes;

  StringFixture(uint64_t n, uint32_t device_bits, uint64_t seed) {
    Xoshiro256 rng(seed);
    const char* stems[] = {"PROMO", "STANDARD", "ECONOMY", "PRO", "PR",
                           "SMALL", "PROMOTION"};
    for (uint64_t i = 0; i < n; ++i) {
      std::string s = stems[rng.Below(7)];
      const uint64_t tail = rng.Below(4);
      for (uint64_t t = 0; t < tail; ++t) {
        s += static_cast<char>('A' + rng.Below(26));
      }
      strings.push_back(std::move(s));
    }
    device::DeviceSpec spec;
    spec.memory_capacity = 64 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    cs::Column col = BuildPrefixCodeColumn(strings, 4);
    codes = std::move(bwd::BwdColumn::Decompose(col, device_bits, dev.get()))
                .value();
  }

  cs::OidVec Oracle(std::string_view prefix) const {
    cs::OidVec out;
    for (uint64_t i = 0; i < strings.size(); ++i) {
      const std::string& s = strings[i];
      if (s.size() >= prefix.size() &&
          std::equal(prefix.begin(), prefix.end(), s.begin())) {
        out.push_back(static_cast<cs::oid_t>(i));
      }
    }
    return out;
  }
};

class StringSelectSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(StringSelectSweep, RefinedLikeMatchesOracle) {
  StringFixture f(5000, 64, 42);
  const std::string prefix = GetParam();
  StringApproxSelection approx =
      StringPrefixSelectApproximate(f.codes, prefix, 4, f.dev.get());
  // Superset invariant.
  const cs::OidVec oracle = f.Oracle(prefix);
  std::set<cs::oid_t> cand_set(approx.inner.cands.ids.begin(),
                               approx.inner.cands.ids.end());
  for (cs::oid_t id : oracle) {
    ASSERT_TRUE(cand_set.count(id)) << "missing match for '" << prefix << "'";
  }
  // Refinement equals LIKE 'prefix%'.
  const cs::OidVec refined =
      StringPrefixSelectRefine(approx, f.strings, prefix);
  EXPECT_EQ(refined, oracle) << prefix;
}

INSTANTIATE_TEST_SUITE_P(Patterns, StringSelectSweep,
                         ::testing::Values("PROMO", "PR", "P", "PROMOTION",
                                           "STANDARD", "ZZZ", "", "SMALLA"));

TEST(StringSelectTest, ShortPatternOnResidentCodesIsExact) {
  StringFixture f(2000, 64, 7);
  StringApproxSelection approx =
      StringPrefixSelectApproximate(f.codes, "PRO", 4, f.dev.get());
  EXPECT_TRUE(approx.exact)
      << "pattern within the coded prefix on a residual-free code column "
         "needs no host string comparison";
  EXPECT_EQ(StringPrefixSelectRefine(approx, f.strings, "PRO"),
            f.Oracle("PRO"));
}

TEST(StringSelectTest, LongPatternNeedsRefinement) {
  StringFixture f(2000, 64, 8);
  StringApproxSelection approx =
      StringPrefixSelectApproximate(f.codes, "PROMOTION", 4, f.dev.get());
  EXPECT_FALSE(approx.exact);
  // Candidates include PROMO* false positives; refinement removes them.
  EXPECT_GE(approx.inner.cands.size(),
            StringPrefixSelectRefine(approx, f.strings, "PROMOTION").size());
}

TEST(StringSelectTest, DecomposedCodesStillRefineExactly) {
  // The prefix-code column itself carries residual bits: candidate ranges
  // widen but refinement remains exact.
  StringFixture f(3000, 64 - 24, 9);  // 24 residual bits on int64 codes
  for (const char* prefix : {"PROMO", "PR", "STANDARD"}) {
    StringApproxSelection approx =
        StringPrefixSelectApproximate(f.codes, prefix, 4, f.dev.get());
    EXPECT_FALSE(approx.exact);
    EXPECT_EQ(StringPrefixSelectRefine(approx, f.strings, prefix),
              f.Oracle(prefix))
        << prefix;
  }
}

}  // namespace
}  // namespace wastenot::core
