// Concurrent query serving on one shared device (DESIGN.md §3.3): N
// threads execute A&R (and streaming) queries against a single
// device::Device at once. Results must be bit-identical to serial
// execution, and the per-query ExecutionBreakdowns — attributed through
// SimClock::QueryScope — must sum exactly to the global clock delta.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "core/streaming_engine.h"
#include "util/random.h"

namespace wastenot::core {
namespace {

/// A random star-schema database plus its decomposed mirror (a slim
/// variant of ar_engine_test's fixture: distributed columns so both
/// phases — and the bus boundary — carry real work).
struct SharedDeviceFixture {
  cs::Database db;
  std::unique_ptr<device::Device> dev;
  std::unique_ptr<bwd::BwdTable> fact;
  std::unique_ptr<bwd::BwdTable> dim;

  explicit SharedDeviceFixture(uint64_t n, uint64_t seed = 7) {
    Xoshiro256 rng(seed);
    const uint64_t dim_rows = 64;
    {
      cs::Table fact_t("fact");
      std::vector<int32_t> a(n), g(n), v(n), fk(n);
      for (uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(rng.Below(1 << 14));
        g[i] = static_cast<int32_t>(rng.Below(7));
        v[i] = static_cast<int32_t>(rng.Below(1000));
        fk[i] = static_cast<int32_t>(1 + rng.Below(dim_rows));
      }
      auto add = [&fact_t](const char* name, std::vector<int32_t>& vals) {
        cs::Column col = cs::Column::FromI32(vals);
        col.ComputeStats();
        (void)fact_t.AddColumn(name, std::move(col));
      };
      add("a", a);
      add("g", g);
      add("v", v);
      add("fk", fk);
      db.AddTable(std::move(fact_t));
    }
    {
      cs::Table dim_t("dim");
      std::vector<int32_t> w(dim_rows);
      for (uint64_t i = 0; i < dim_rows; ++i) {
        w[i] = static_cast<int32_t>(rng.Below(30));
      }
      cs::Column col = cs::Column::FromI32(w);
      col.ComputeStats();
      (void)dim_t.AddColumn("w", std::move(col));
      db.AddTable(std::move(dim_t));
    }
    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    // a distributed (8 of 14 bits resident) => selection refinement runs;
    // v distributed => destructive-distributivity recomputation runs.
    fact = std::make_unique<bwd::BwdTable>(
        std::move(bwd::BwdTable::Decompose(
                      db.table("fact"),
                      {{"a", 8, bwd::Compression::kBitPacked},
                       {"g", 3, bwd::Compression::kBitPacked},
                       {"v", 6, bwd::Compression::kBitPacked},
                       {"fk", 32, bwd::Compression::kBitPacked}},
                      dev.get()))
            .value());
    dim = std::make_unique<bwd::BwdTable>(
        std::move(bwd::BwdTable::Decompose(
                      db.table("dim"),
                      {{"w", 32, bwd::Compression::kBitPacked}},
                      dev.get()))
            .value());
  }

  /// One of a few query shapes, varied per stream so concurrent streams
  /// do not trivially share plans.
  QuerySpec Query(uint64_t variant) const {
    QuerySpec q;
    q.table = "fact";
    q.predicates = {
        {"a", cs::RangePred::Between(
                  static_cast<int64_t>(500 + 37 * (variant % 11)),
                  static_cast<int64_t>(9000 + 101 * (variant % 7)))}};
    q.group_by = {"g"};
    q.aggregates = {Aggregate::SumOf("v", "sum_v"),
                    Aggregate::CountStar("n")};
    q.name = "variant" + std::to_string(variant);
    return q;
  }
};

// The acceptance pin: 8 concurrent A&R streams on one shared Device
// return bit-identical results to serial execution, with per-query
// breakdowns summing to the global SimClock delta.
TEST(ConcurrentArTest, EightStreamsMatchSerialAndPartitionTheClock) {
  SharedDeviceFixture f(20000);
  constexpr unsigned kStreams = 8;
  constexpr unsigned kQueriesPerStream = 3;

  // Serial reference pass, on its own device so the shared device's clock
  // is untouched (results are device-independent).
  SharedDeviceFixture ref(20000);
  std::vector<std::vector<QueryResult>> expected(kStreams);
  for (unsigned s = 0; s < kStreams; ++s) {
    for (unsigned i = 0; i < kQueriesPerStream; ++i) {
      auto r = ExecuteAr(ref.Query(s * kQueriesPerStream + i), *ref.fact,
                         ref.dim.get(), ref.dev.get());
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected[s].push_back(r->result);
    }
  }

  const uint64_t device0 = f.dev->clock().Nanos(device::Phase::kDeviceCompute);
  const uint64_t bus0 = f.dev->clock().Nanos(device::Phase::kBusTransfer);

  std::vector<double> attributed(kStreams, 0);  // device+bus seconds
  std::atomic<int> mismatches{0};
  std::vector<std::thread> streams;
  for (unsigned s = 0; s < kStreams; ++s) {
    streams.emplace_back([&, s] {
      ArOptions opts;
      opts.num_threads = 1;  // one stream = one thread (paper §VI-E)
      double total = 0;
      for (unsigned i = 0; i < kQueriesPerStream; ++i) {
        auto r = ExecuteAr(f.Query(s * kQueriesPerStream + i), *f.fact,
                           f.dim.get(), f.dev.get(), opts);
        if (!r.ok() || !(r->result == expected[s][i])) {
          mismatches.fetch_add(1);
          continue;
        }
        total += r->breakdown.device_seconds + r->breakdown.bus_seconds;
      }
      attributed[s] = total;
    });
  }
  for (auto& t : streams) t.join();
  ASSERT_EQ(mismatches.load(), 0)
      << "concurrent A&R results must be bit-identical to serial";

  const uint64_t device_delta =
      f.dev->clock().Nanos(device::Phase::kDeviceCompute) - device0;
  const uint64_t bus_delta =
      f.dev->clock().Nanos(device::Phase::kBusTransfer) - bus0;
  double attributed_sum = 0;
  for (double a : attributed) attributed_sum += a;
  const double global_delta =
      static_cast<double>(device_delta + bus_delta) * 1e-9;
  // Nanosecond-integer bookkeeping on both sides; only double summation
  // rounding separates them.
  EXPECT_NEAR(attributed_sum, global_delta, 1e-9)
      << "per-query breakdowns must partition the global clock delta";
  EXPECT_GT(global_delta, 0.0);
}

// Interleaved breakdowns stay per-query: a stream of heavyweight queries
// next to a lightweight stream must not inflate the light stream's
// attributed time beyond what it gets when running alone.
TEST(ConcurrentArTest, AttributionIsIndependentOfInterference) {
  SharedDeviceFixture f(20000);
  // Warm the JIT cache so compile costs don't skew either run.
  (void)ExecuteAr(f.Query(0), *f.fact, f.dim.get(), f.dev.get());
  (void)ExecuteAr(f.Query(1), *f.fact, f.dim.get(), f.dev.get());

  auto alone = ExecuteAr(f.Query(0), *f.fact, f.dim.get(), f.dev.get());
  ASSERT_TRUE(alone.ok());
  const double alone_sim =
      alone->breakdown.device_seconds + alone->breakdown.bus_seconds;

  std::atomic<bool> stop{false};
  std::thread noise([&] {
    uint64_t i = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)ExecuteAr(f.Query(i++), *f.fact, f.dim.get(), f.dev.get());
    }
  });
  double contended_sim = 0;
  for (int i = 0; i < 5; ++i) {
    auto r = ExecuteAr(f.Query(0), *f.fact, f.dim.get(), f.dev.get());
    ASSERT_TRUE(r.ok());
    contended_sim = std::max(
        contended_sim, r->breakdown.device_seconds + r->breakdown.bus_seconds);
  }
  stop.store(true);
  noise.join();

  // Simulated charges are deterministic per query; under snapshot-delta
  // attribution the noise stream's kernels would leak in and blow this up
  // by orders of magnitude.
  EXPECT_NEAR(contended_sim, alone_sim, alone_sim * 0.01 + 1e-12);
}

// Mixed engines on one device: concurrent streaming executions (shared
// ResidencyCache) next to A&R streams, all results exact.
TEST(ConcurrentArTest, StreamingAndArShareOneDevice) {
  SharedDeviceFixture f(20000);
  device::ResidencyCache cache(f.dev.get());
  auto classic = ExecuteClassic(f.Query(3), f.db);
  ASSERT_TRUE(classic.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 3; ++i) {
        if (t % 2 == 0) {
          auto r = ExecuteAr(f.Query(3), *f.fact, f.dim.get(), f.dev.get());
          if (!r.ok() || !(r->result == *classic)) failures.fetch_add(1);
        } else {
          auto r = ExecuteStreaming(f.Query(3), f.db, f.dev.get(), &cache);
          if (!r.ok() || !(r->result == *classic)) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace wastenot::core
