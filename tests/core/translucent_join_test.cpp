#include "core/translucent_join.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::core {
namespace {

TEST(TranslucentJoinTest, PaperFig5Example) {
  // A (approximation output, shuffled): ids {0,80,16,48,32} with some
  // extras; B (refined subset in the same permutation).
  const cs::OidVec a = {13, 0, 11, 9, 3, 1, 5, 7};
  const cs::OidVec b = {9, 3, 1, 5, 7};
  auto positions = TranslucentJoinPositions(a, b);
  ASSERT_TRUE(positions.ok());
  EXPECT_EQ(*positions, (cs::OidVec{3, 4, 5, 6, 7}));
}

TEST(TranslucentJoinTest, EmptySubset) {
  const cs::OidVec a = {5, 2, 9};
  auto positions = TranslucentJoinPositions(a, {});
  ASSERT_TRUE(positions.ok());
  EXPECT_TRUE(positions->empty());
}

TEST(TranslucentJoinTest, IdenticalLists) {
  const cs::OidVec a = {7, 3, 1};
  auto positions = TranslucentJoinPositions(a, a);
  ASSERT_TRUE(positions.ok());
  EXPECT_EQ(*positions, (cs::OidVec{0, 1, 2}));
}

TEST(TranslucentJoinTest, ViolatedSubsetContractFails) {
  const cs::OidVec a = {1, 2, 3};
  const cs::OidVec b = {2, 9};  // 9 not in a
  auto positions = TranslucentJoinPositions(a, b);
  EXPECT_FALSE(positions.ok());
  EXPECT_TRUE(positions.status().IsPreconditionFailed());
}

TEST(TranslucentJoinTest, ViolatedPermutationContractFails) {
  const cs::OidVec a = {1, 2, 3};
  const cs::OidVec b = {3, 1};  // subset but order flipped
  auto positions = TranslucentJoinPositions(a, b);
  EXPECT_FALSE(positions.ok()) << "order violation must be detected";
}

TEST(TranslucentJoinTest, SortedAndDenseDetection) {
  EXPECT_TRUE(SortedAndDense(cs::OidVec{}));
  EXPECT_TRUE(SortedAndDense(cs::OidVec{5}));
  EXPECT_TRUE(SortedAndDense(cs::OidVec{5, 6, 7}));
  EXPECT_FALSE(SortedAndDense(cs::OidVec{5, 7}));
  EXPECT_FALSE(SortedAndDense(cs::OidVec{7, 6}));
}

TEST(TranslucentJoinTest, InvisibleFastPath) {
  const cs::OidVec a = {100, 101, 102, 103, 104};
  const cs::OidVec b = {101, 104};
  auto positions = TranslucentJoinPositionsAuto(a, b);
  ASSERT_TRUE(positions.ok());
  EXPECT_EQ(*positions, (cs::OidVec{1, 4}));
}

TEST(TranslucentJoinTest, InvisibleFastPathRejectsOutOfRange) {
  const cs::OidVec a = {100, 101, 102};
  auto low = TranslucentJoinPositionsAuto(a, cs::OidVec{99});
  EXPECT_FALSE(low.ok());
  auto high = TranslucentJoinPositionsAuto(a, cs::OidVec{103});
  EXPECT_FALSE(high.ok());
}

/// Property (paper §IV-A): for any permuted superset A and any
/// same-permutation subset B, the join recovers exactly B's positions.
class TranslucentJoinProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TranslucentJoinProperty, RecoversSubsetPositions) {
  const uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const uint64_t n = 200 + rng.Below(2000);
  // A: a random permutation of unique ids.
  std::vector<cs::oid_t> a(n);
  for (uint64_t i = 0; i < n; ++i) a[i] = static_cast<cs::oid_t>(i * 3 + 1);
  Shuffle(a, seed * 31 + 7);
  // B: every element kept with probability ~1/3, preserving A's order.
  cs::OidVec b;
  cs::OidVec expect_positions;
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Below(3) == 0) {
      b.push_back(a[i]);
      expect_positions.push_back(static_cast<cs::oid_t>(i));
    }
  }
  auto positions = TranslucentJoinPositions(a, b);
  ASSERT_TRUE(positions.ok());
  EXPECT_EQ(*positions, expect_positions);

  // The Auto variant must agree (A here is generally not dense).
  auto auto_positions = TranslucentJoinPositionsAuto(a, b);
  ASSERT_TRUE(auto_positions.ok());
  EXPECT_EQ(*auto_positions, expect_positions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslucentJoinProperty,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace wastenot::core
