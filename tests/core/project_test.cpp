#include "core/project.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/select.h"
#include "util/random.h"

namespace wastenot::core {
namespace {

struct TwoColumns {
  std::unique_ptr<device::Device> dev;
  cs::Column sel_base, proj_base;
  bwd::BwdColumn sel_col, proj_col;

  TwoColumns(uint64_t n, uint32_t sel_bits, uint32_t proj_bits,
             uint64_t seed) {
    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    Xoshiro256 rng(seed);
    std::vector<int32_t> a(n), b(n);
    for (uint64_t i = 0; i < n; ++i) {
      a[i] = static_cast<int32_t>(rng.Below(1 << 16));
      b[i] = static_cast<int32_t>(rng.Below(1 << 20));
    }
    sel_base = cs::Column::FromI32(a);
    sel_base.ComputeStats();
    proj_base = cs::Column::FromI32(b);
    proj_base.ComputeStats();
    sel_col =
        std::move(bwd::BwdColumn::Decompose(sel_base, sel_bits, dev.get()))
            .value();
    proj_col =
        std::move(bwd::BwdColumn::Decompose(proj_base, proj_bits, dev.get()))
            .value();
  }
};

TEST(ProjectTest, ApproximateBracketsAndRefineMatches) {
  TwoColumns f(8000, 24, 24, 1);
  ApproxSelection sel =
      SelectApproximate(f.sel_col, cs::RangePred::Le(10000), f.dev.get());
  ApproxValues proj = ProjectApproximate(f.proj_col, sel.cands, f.dev.get());
  ASSERT_EQ(proj.size(), sel.cands.size());
  for (uint64_t i = 0; i < proj.size(); ++i) {
    const int64_t truth = f.proj_base.Get(sel.cands.ids[i]);
    ASSERT_LE(proj.lower[i], truth);
    ASSERT_GE(proj.lower[i] + static_cast<int64_t>(proj.error), truth);
  }
  // Refinement yields exact values (invisible join with the residual).
  std::vector<int64_t> exact =
      ProjectRefine(f.proj_col, sel.cands.ids, &proj);
  for (uint64_t i = 0; i < exact.size(); ++i) {
    ASSERT_EQ(exact[i], f.proj_base.Get(sel.cands.ids[i]));
  }
}

TEST(ProjectTest, FullyResidentProjectionIsExactWithoutRefinement) {
  TwoColumns f(4000, 24, 32, 2);
  ApproxSelection sel =
      SelectApproximate(f.sel_col, cs::RangePred::Le(500), f.dev.get());
  ApproxValues proj = ProjectApproximate(f.proj_col, sel.cands, f.dev.get());
  EXPECT_TRUE(proj.exact()) << "paper §IV-C: no refinement when all bits "
                               "of the projected attribute are resident";
  for (uint64_t i = 0; i < proj.size(); ++i) {
    ASSERT_EQ(proj.lower[i], f.proj_base.Get(sel.cands.ids[i]));
  }
}

TEST(ProjectTest, RefineWithoutDownloadedApprox) {
  TwoColumns f(4000, 26, 22, 3);
  ApproxSelection sel =
      SelectApproximate(f.sel_col, cs::RangePred::Ge(60000), f.dev.get());
  std::vector<int64_t> exact = ProjectRefine(f.proj_col, sel.cands.ids);
  for (uint64_t i = 0; i < exact.size(); ++i) {
    ASSERT_EQ(exact[i], f.proj_base.Get(sel.cands.ids[i]));
  }
}

struct FkFixture {
  std::unique_ptr<device::Device> dev;
  cs::Column fk_base, attr_base;
  bwd::BwdColumn fk_col, attr_col;

  FkFixture(uint64_t fact_rows, uint64_t dim_rows, uint32_t attr_bits,
            uint64_t seed) {
    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    Xoshiro256 rng(seed);
    std::vector<int32_t> fk(fact_rows), attr(dim_rows);
    for (auto& v : fk) v = static_cast<int32_t>(rng.Below(dim_rows));
    for (auto& v : attr) v = static_cast<int32_t>(rng.Below(1 << 18));
    fk_base = cs::Column::FromI32(fk);
    fk_base.ComputeStats();
    attr_base = cs::Column::FromI32(attr);
    attr_base.ComputeStats();
    fk_col =
        std::move(bwd::BwdColumn::Decompose(fk_base, 32, dev.get())).value();
    attr_col =
        std::move(bwd::BwdColumn::Decompose(attr_base, attr_bits, dev.get()))
            .value();
  }
};

TEST(FkJoinTest, GathersThroughFk) {
  FkFixture f(5000, 200, 24, 4);
  Candidates cands;
  for (cs::oid_t i = 0; i < 5000; i += 3) cands.ids.push_back(i);
  auto approx = FkJoinApproximate(f.fk_col, f.attr_col, cands, f.dev.get());
  ASSERT_TRUE(approx.ok());
  for (uint64_t i = 0; i < cands.size(); ++i) {
    const int64_t truth = f.attr_base.Get(f.fk_base.Get(cands.ids[i]));
    ASSERT_LE(approx->lower[i], truth);
    ASSERT_GE(approx->lower[i] + static_cast<int64_t>(approx->error), truth);
  }
  auto exact = FkJoinRefine(f.fk_col, f.attr_col, cands.ids);
  ASSERT_TRUE(exact.ok());
  for (uint64_t i = 0; i < cands.size(); ++i) {
    ASSERT_EQ((*exact)[i], f.attr_base.Get(f.fk_base.Get(cands.ids[i])));
  }
}

TEST(FkJoinTest, RejectsDecomposedFk) {
  FkFixture f(100, 50, 24, 5);
  // Re-decompose the fk with residual bits: must be rejected.
  auto bad_fk = bwd::BwdColumn::Decompose(f.fk_base, 2, f.dev.get());
  ASSERT_TRUE(bad_fk.ok());
  Candidates cands;
  cands.ids = {0, 1};
  auto approx =
      FkJoinApproximate(*bad_fk, f.attr_col, cands, f.dev.get());
  EXPECT_FALSE(approx.ok());
  EXPECT_TRUE(approx.status().IsUnsupported());
}

}  // namespace
}  // namespace wastenot::core
