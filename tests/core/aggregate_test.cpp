#include "core/aggregate.h"

#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "core/select.h"
#include "util/random.h"

namespace wastenot::core {
namespace {

struct AggFixture {
  std::unique_ptr<device::Device> dev;
  cs::Column base;
  bwd::BwdColumn col;

  AggFixture(std::vector<int32_t> values, uint32_t device_bits) {
    device::DeviceSpec spec;
    spec.memory_capacity = 64 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    base = cs::Column::FromI32(values);
    base.ComputeStats();
    col = std::move(bwd::BwdColumn::Decompose(base, device_bits, dev.get()))
              .value();
  }
};

TEST(CountApproximateTest, Bounds) {
  Candidates cands;
  cands.ids = {1, 2, 3, 4, 5};
  ValueBounds b = CountApproximate(cands, 3);
  EXPECT_EQ(b.lo, 3);
  EXPECT_EQ(b.hi, 5);
}

TEST(SumApproximateTest, IntervalSumContainsExact) {
  AggFixture f({100, 200, 300, 400}, 32 - 4);
  BoundedValues values;
  for (uint64_t i = 0; i < 4; ++i) {
    values.lo.push_back(f.col.ApproxLowerBound(i));
    values.hi.push_back(f.col.ApproxUpperBound(i));
  }
  ValueBounds sum = SumApproximate(values, f.dev.get());
  EXPECT_LE(sum.lo, 1000);
  EXPECT_GE(sum.hi, 1000);
  EXPECT_EQ(SumRefine({100, 200, 300, 400}), 1000);
}

TEST(GroupedSumApproximateTest, PerGroupBounds) {
  AggFixture f({10, 20, 30, 40}, 32);
  BoundedValues values;
  values.lo = {10, 20, 30, 40};
  values.hi = {10, 20, 30, 40};
  const std::vector<uint32_t> groups = {0, 1, 0, 1};
  auto bounds = GroupedSumApproximate(values, groups, 2, f.dev.get());
  EXPECT_EQ(bounds[0].lo, 40);
  EXPECT_EQ(bounds[0].hi, 40);
  EXPECT_EQ(bounds[1].lo, 60);
  EXPECT_EQ(GroupedSumRefine({10, 20, 30, 40}, groups, 2),
            (std::vector<int64_t>{40, 60}));
}

// ---------- Fig 6: the false-minimum hazard -------------------------------

// Reconstruction of the paper's Figure 6 scenario: a selection on x keeps a
// *false positive* whose y-approximation is the smallest. A naive "take
// the minimal approximate y" would return the false minimum; the candidate
// set must still contain the true minimum after refinement.
TEST(MinApproximateTest, Fig6FalseMinimumSurvives) {
  // Rows: (x, y). Selection: x > 6. Approximation granularity 4 (2 bits).
  //   row 0: x=7,  y=9   -> true qualifying row
  //   row 1: x=5,  y=1   -> FALSE POSITIVE under appr (x>=4), minimal y!
  //   row 2: x=9,  y=6   -> true minimum of y among qualifying rows
  std::vector<int32_t> x = {7, 5, 9};
  std::vector<int32_t> y = {9, 1, 6};
  AggFixture fx(x, 32 - 2);
  AggFixture fy(y, 32 - 2);

  const cs::RangePred pred = cs::RangePred::Gt(6);
  ApproxSelection sel = SelectApproximate(fx.col, pred, fx.dev.get());
  // All three rows are candidates (row 1 is the false positive).
  ASSERT_EQ(sel.cands.size(), 3u);
  EXPECT_EQ(sel.num_certain, 1u);  // only x=9 is certain at granularity 4

  ExtremumCandidates approx =
      MinApproximate(fy.col, sel.cands, sel.certain, fy.dev.get());
  // The true minimum (row 2, y=6) must be in the candidate set even though
  // the false positive row 1 has the smaller approximate y.
  bool has_true_min = false;
  for (cs::oid_t id : approx.survivors.ids) has_true_min |= (id == 2);
  EXPECT_TRUE(has_true_min)
      << "error-bound propagation must keep the true minimum (Fig 6)";

  // Refinement: drop false positives, take the exact min.
  PredicateRefinement conj{&fx.col, pred, &sel.values};
  RefinedSelection refined = SelectRefine(sel.cands, std::span(&conj, 1));
  auto min = MinRefine(fy.col, approx, refined.ids);
  ASSERT_TRUE(min.ok());
  ASSERT_TRUE(min->has_value());
  EXPECT_EQ(**min, 6);
}

/// Property: for random data, decompositions and predicates, the refined
/// min/max equals the oracle.
class ExtremumProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtremumProperty, RefinedExtremaMatchOracle) {
  const uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const uint64_t n = 500 + rng.Below(3000);
  std::vector<int32_t> x(n), y(n);
  for (auto& v : x) v = static_cast<int32_t>(rng.Below(1 << 12));
  for (auto& v : y) v = static_cast<int32_t>(rng.Below(1 << 14));
  const uint32_t bits_x = 32 - 2 - static_cast<uint32_t>(rng.Below(8));
  const uint32_t bits_y = 32 - 2 - static_cast<uint32_t>(rng.Below(8));
  AggFixture fx(x, bits_x);
  AggFixture fy(y, bits_y);

  const int64_t lo = static_cast<int64_t>(rng.Below(1 << 12));
  const int64_t hi = lo + static_cast<int64_t>(rng.Below(1 << 11));
  const cs::RangePred pred{lo, hi};

  ApproxSelection sel = SelectApproximate(fx.col, pred, fx.dev.get());
  PredicateRefinement conj{&fx.col, pred, &sel.values};
  RefinedSelection refined = SelectRefine(sel.cands, std::span(&conj, 1));

  // Oracle.
  std::optional<int64_t> expect_min, expect_max;
  for (uint64_t i = 0; i < n; ++i) {
    if (pred.Contains(x[i])) {
      if (!expect_min || y[i] < *expect_min) expect_min = y[i];
      if (!expect_max || y[i] > *expect_max) expect_max = y[i];
    }
  }

  ExtremumCandidates mn =
      MinApproximate(fy.col, sel.cands, sel.certain, fy.dev.get());
  auto got_min = MinRefine(fy.col, mn, refined.ids);
  ASSERT_TRUE(got_min.ok());
  EXPECT_EQ(*got_min, expect_min) << "seed=" << seed;
  if (expect_min.has_value()) {
    EXPECT_TRUE(mn.bounds.Contains(*expect_min))
        << "approximate bounds must bracket the true minimum";
  }

  ExtremumCandidates mx =
      MaxApproximate(fy.col, sel.cands, sel.certain, fy.dev.get());
  auto got_max = MaxRefine(fy.col, mx, refined.ids);
  ASSERT_TRUE(got_max.ok());
  EXPECT_EQ(*got_max, expect_max) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtremumProperty,
                         ::testing::Range<uint64_t>(1, 16));

TEST(MinApproximateTest, EmptyCandidates) {
  AggFixture f({1, 2, 3}, 30);
  Candidates empty;
  ExtremumCandidates approx =
      MinApproximate(f.col, empty, {}, f.dev.get());
  EXPECT_TRUE(approx.survivors.empty());
  auto refined = MinRefine(f.col, approx, {});
  ASSERT_TRUE(refined.ok());
  EXPECT_FALSE(refined->has_value());
}

TEST(AvgBoundsTest, SoundCombination) {
  // sum in [100, 200], count in [5, 10]: avg must lie in [10, 40].
  ValueBounds avg = AvgBounds({100, 200}, {5, 10});
  EXPECT_LE(avg.lo, 10);
  EXPECT_GE(avg.hi, 40);
  // Degenerate zero counts.
  EXPECT_EQ(AvgBounds({5, 5}, {0, 0}).hi, 0);
}

}  // namespace
}  // namespace wastenot::core
