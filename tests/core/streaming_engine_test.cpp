#include "core/streaming_engine.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/classic_engine.h"
#include "workloads/uniform.h"

namespace wastenot::core {
namespace {

struct StreamingFixture {
  cs::Database db;
  std::unique_ptr<device::Device> dev;
  std::unique_ptr<device::ResidencyCache> cache;

  explicit StreamingFixture(uint64_t n, uint64_t device_capacity) {
    cs::Table t("r");
    (void)t.AddColumn("a", workloads::UniqueShuffledInts(n, 1));
    (void)t.AddColumn("v", workloads::UniqueShuffledInts(n, 2));
    db.AddTable(std::move(t));
    device::DeviceSpec spec;
    spec.memory_capacity = device_capacity;
    dev = std::make_unique<device::Device>(spec, 2);
    cache = std::make_unique<device::ResidencyCache>(dev.get());
  }

  QuerySpec Query(int64_t threshold) const {
    QuerySpec q;
    q.table = "r";
    q.predicates = {{"a", cs::RangePred::Lt(threshold)}};
    q.aggregates = {Aggregate::SumOf("v", "s"), Aggregate::CountStar("n")};
    return q;
  }
};

TEST(StreamingEngineTest, ResultsMatchClassic) {
  StreamingFixture f(50000, 64 << 20);
  auto classic = ExecuteClassic(f.Query(10000), f.db);
  auto streaming =
      ExecuteStreaming(f.Query(10000), f.db, f.dev.get(), f.cache.get());
  ASSERT_TRUE(classic.ok());
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  EXPECT_EQ(streaming->result, *classic);
}

TEST(StreamingEngineTest, HotSetFitsCacheWarmsUp) {
  StreamingFixture f(50000, 64 << 20);  // plenty of device memory
  auto first = ExecuteStreaming(f.Query(5000), f.db, f.dev.get(),
                                f.cache.get());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->cache_misses, 2u);  // columns a and v uploaded
  EXPECT_GT(first->bytes_transferred, 0u);

  auto second = ExecuteStreaming(f.Query(7000), f.db, f.dev.get(),
                                 f.cache.get());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache_hits, 2u);
  EXPECT_EQ(second->bytes_transferred, 0u)
      << "resident hot set needs no re-transfer";
  EXPECT_LT(second->breakdown.bus_seconds, first->breakdown.bus_seconds);
}

TEST(StreamingEngineTest, OversizedHotSetThrashes) {
  // Device fits one column but not both: LRU evicts whichever the next
  // query needs — the Fig 9 worst case, every run re-transfers.
  StreamingFixture f(50000, 260 * 1024);  // columns are 200 KB each
  for (int run = 0; run < 3; ++run) {
    auto exec = ExecuteStreaming(f.Query(1000), f.db, f.dev.get(),
                                 f.cache.get());
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_EQ(exec->cache_hits, 0u) << "run " << run;
    EXPECT_EQ(exec->bytes_transferred, 2u * 50000 * 4) << "run " << run;
  }
}

TEST(StreamingEngineTest, ColumnLargerThanDeviceFails) {
  StreamingFixture f(50000, 100 * 1024);  // 200 KB column, 100 KB device
  auto exec = ExecuteStreaming(f.Query(1000), f.db, f.dev.get(),
                               f.cache.get());
  EXPECT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsDeviceOutOfMemory());
}

TEST(StreamingEngineTest, ChargesDeviceAndBusPhases) {
  StreamingFixture f(50000, 64 << 20);
  auto exec = ExecuteStreaming(f.Query(20000), f.db, f.dev.get(),
                               f.cache.get());
  ASSERT_TRUE(exec.ok());
  EXPECT_GT(exec->breakdown.device_seconds, 0.0);
  EXPECT_GT(exec->breakdown.bus_seconds, 0.0);
}

TEST(StreamingEngineTest, MissingTableSurfacesError) {
  StreamingFixture f(100, 1 << 20);
  QuerySpec q;
  q.table = "nope";
  auto exec = ExecuteStreaming(q, f.db, f.dev.get(), f.cache.get());
  EXPECT_EQ(exec.status().code(), StatusCode::kNotFound);
}

// Regression: the fact table was validated but the join's dimension table
// was dereferenced unchecked, so a query naming a missing dimension hit
// the database.h assert instead of returning NotFound.
TEST(StreamingEngineTest, MissingDimensionTableSurfacesError) {
  StreamingFixture f(100, 1 << 20);
  QuerySpec q = f.Query(50);
  q.join = JoinSpec{"a", "no_such_dim", 0};
  auto exec = ExecuteStreaming(q, f.db, f.dev.get(), f.cache.get());
  EXPECT_EQ(exec.status().code(), StatusCode::kNotFound);
  EXPECT_NE(exec.status().message().find("no_such_dim"), std::string::npos);
}

}  // namespace
}  // namespace wastenot::core
