#include "core/arithmetic.h"

#include <memory>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::core {
namespace {

std::unique_ptr<device::Device> MakeDevice() {
  device::DeviceSpec spec;
  spec.memory_capacity = 16 << 20;
  return std::make_unique<device::Device>(spec, 2);
}

/// Builds aligned (bounds, exact) pairs with random interval widths.
struct BoundedFixture {
  BoundedValues bounds;
  std::vector<int64_t> exact;

  BoundedFixture(uint64_t n, int64_t range, uint64_t max_width,
                 uint64_t seed) {
    Xoshiro256 rng(seed);
    for (uint64_t i = 0; i < n; ++i) {
      const int64_t lo =
          static_cast<int64_t>(rng.Below(2 * range)) - range;
      const int64_t width = static_cast<int64_t>(rng.Below(max_width + 1));
      bounds.lo.push_back(lo);
      bounds.hi.push_back(lo + width);
      exact.push_back(lo + static_cast<int64_t>(
                               rng.Below(static_cast<uint64_t>(width + 1))));
    }
  }
};

TEST(ArithmeticTest, AddSubSound) {
  auto dev = MakeDevice();
  BoundedFixture a(1000, 500, 32, 1), b(1000, 500, 32, 2);
  BoundedValues sum = AddApproximate(a.bounds, b.bounds, dev.get());
  BoundedValues diff = SubApproximate(a.bounds, b.bounds, dev.get());
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(sum.At(i).Contains(a.exact[i] + b.exact[i])) << i;
    ASSERT_TRUE(diff.At(i).Contains(a.exact[i] - b.exact[i])) << i;
  }
}

TEST(ArithmeticTest, MulSoundAcrossSigns) {
  auto dev = MakeDevice();
  BoundedFixture a(2000, 300, 16, 3), b(2000, 300, 16, 4);
  BoundedValues prod = MulApproximate(a.bounds, b.bounds, dev.get());
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(prod.At(i).Contains(a.exact[i] * b.exact[i])) << i;
  }
  EXPECT_EQ(MulExact(a.exact, b.exact)[7], a.exact[7] * b.exact[7]);
}

// Destructive distributivity (§IV-G): with non-trivial residuals on both
// operands, the product interval is *strictly wider* than zero even though
// each operand interval has modest width — the exact product cannot be
// recovered from approximations alone.
TEST(ArithmeticTest, DestructiveDistributivityWidensProducts) {
  auto dev = MakeDevice();
  BoundedValues a{{100}, {115}};  // a in [100, 115] (residual error 15)
  BoundedValues b{{200}, {215}};
  BoundedValues prod = MulApproximate(a, b, dev.get());
  EXPECT_EQ(prod.lo[0], 100 * 200);
  EXPECT_EQ(prod.hi[0], 115 * 215);
  // Both (105 * 210) and (110 * 205) are consistent with the inputs but
  // differ: no refinement can pick one from the product bounds alone.
  EXPECT_TRUE(prod.At(0).Contains(105 * 210));
  EXPECT_TRUE(prod.At(0).Contains(110 * 205));
  EXPECT_NE(105 * 210, 110 * 205);
}

TEST(ArithmeticTest, AffineForms) {
  auto dev = MakeDevice();
  BoundedFixture a(500, 100, 8, 5);
  BoundedValues one_minus = AffineApproximate(a.bounds, 100, -1, dev.get());
  BoundedValues one_plus = AffineApproximate(a.bounds, 100, +1, dev.get());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(one_minus.At(i).Contains(100 - a.exact[i]));
    ASSERT_TRUE(one_plus.At(i).Contains(100 + a.exact[i]));
  }
  EXPECT_EQ(AffineExact({3, 4}, 100, -1), (std::vector<int64_t>{97, 96}));
  EXPECT_EQ(AffineExact({3, 4}, 100, +1), (std::vector<int64_t>{103, 104}));
}

TEST(ArithmeticTest, DivConstSound) {
  auto dev = MakeDevice();
  BoundedFixture a(500, 1000, 64, 6);
  BoundedValues q = DivConstApproximate(a.bounds, 7, dev.get());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(q.At(i).Contains(a.exact[i] / 7)) << i;
  }
}

TEST(ArithmeticTest, SqrtSound) {
  auto dev = MakeDevice();
  BoundedFixture a(500, 100000, 256, 7);
  BoundedValues r = SqrtApproximate(a.bounds, dev.get());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(r.At(i).Contains(ISqrt(std::max<int64_t>(a.exact[i], 0))));
  }
}

TEST(ArithmeticTest, IndicatorGatesValues) {
  auto dev = MakeDevice();
  BoundedValues vals{{10, 20, 30}, {10, 20, 30}};
  BoundedValues ind{{1, 0, 0}, {1, 1, 0}};  // certain, ambiguous, certain-no
  BoundedValues gated = MulIndicatorApproximate(vals, ind, dev.get());
  EXPECT_EQ(gated.At(0).lo, 10);
  EXPECT_EQ(gated.At(0).hi, 10);
  EXPECT_EQ(gated.At(1).lo, 0);
  EXPECT_EQ(gated.At(1).hi, 20);
  EXPECT_EQ(gated.At(2).lo, 0);
  EXPECT_EQ(gated.At(2).hi, 0);
}

TEST(ArithmeticTest, KernelsChargeDeviceTime) {
  auto dev = MakeDevice();
  BoundedFixture a(10000, 100, 8, 8);
  const double before = dev->clock().device_seconds();
  AddApproximate(a.bounds, a.bounds, dev.get());
  EXPECT_GT(dev->clock().device_seconds(), before);
}

}  // namespace
}  // namespace wastenot::core
