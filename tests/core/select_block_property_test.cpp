// Property tests pinning the block-decoded selection kernels to a scalar
// reference: across random decompositions, data distributions and
// predicates, the two-pass count-then-fill kernels must be *bit-identical*
// to the straightforward element-at-a-time implementation — same candidate
// ids in the same order, same lower bounds, same certainty flags, same
// num_certain, same kept_positions.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/select.h"
#include "util/random.h"

namespace wastenot::core {
namespace {

/// Scalar reference for SelectApproximate (the pre-block-decode loop).
ApproxSelection ReferenceSelect(const bwd::BwdColumn& column,
                                const cs::RangePred& pred) {
  const bwd::DecompositionSpec& spec = column.spec();
  const RelaxedPred relaxed = RelaxPredicate(spec, pred);
  ApproxSelection out;
  out.values.error = spec.error();
  if (relaxed.none) return out;
  const bwd::PackedView view = column.approximation();
  for (uint64_t i = 0; i < view.size(); ++i) {
    const uint64_t digit = view.Get(i);
    if (relaxed.Matches(digit)) {
      out.cands.ids.push_back(static_cast<cs::oid_t>(i));
      out.values.lower.push_back(spec.LowerBound(digit));
      const bool certain = relaxed.Certain(digit);
      out.certain.push_back(certain ? 1 : 0);
      out.num_certain += certain;
    }
  }
  out.cands.sorted = true;
  return out;
}

/// Scalar reference for SelectApproximateOn.
ApproxSelection ReferenceSelectOn(const bwd::BwdColumn& column,
                                  const cs::RangePred& pred,
                                  const Candidates& in) {
  const bwd::DecompositionSpec& spec = column.spec();
  const RelaxedPred relaxed = RelaxPredicate(spec, pred);
  ApproxSelection out;
  out.values.error = spec.error();
  if (relaxed.none) return out;
  const bwd::PackedView view = column.approximation();
  for (uint64_t i = 0; i < in.size(); ++i) {
    const cs::oid_t id = in.ids[i];
    const uint64_t digit = view.Get(id);
    if (relaxed.Matches(digit)) {
      out.cands.ids.push_back(id);
      out.kept_positions.push_back(static_cast<cs::oid_t>(i));
      out.values.lower.push_back(spec.LowerBound(digit));
      const bool certain = relaxed.Certain(digit);
      out.certain.push_back(certain ? 1 : 0);
      out.num_certain += certain;
    }
  }
  out.cands.sorted = in.sorted;
  return out;
}

/// Scalar reference for SelectRefine (the pre-block fused loop, with its
/// early conjunct exit).
RefinedSelection ReferenceRefine(const Candidates& cands,
                                 std::span<const PredicateRefinement> conjuncts,
                                 bool keep_values) {
  RefinedSelection out;
  if (keep_values) out.exact_values.resize(conjuncts.size());
  std::vector<int64_t> row_values(conjuncts.size());
  for (uint64_t i = 0; i < cands.size(); ++i) {
    const cs::oid_t id = cands.ids[i];
    bool pass = true;
    for (uint64_t c = 0; c < conjuncts.size(); ++c) {
      const PredicateRefinement& conj = conjuncts[c];
      const int64_t lower = conj.approx != nullptr
                                ? conj.approx->lower[i]
                                : conj.column->ApproxLowerBound(id);
      const int64_t exact =
          lower + static_cast<int64_t>(conj.column->residual().Get(id));
      row_values[c] = exact;
      if (!conj.pred.Contains(exact)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      out.ids.push_back(id);
      out.positions.push_back(static_cast<cs::oid_t>(i));
      if (keep_values) {
        for (uint64_t c = 0; c < conjuncts.size(); ++c) {
          out.exact_values[c].push_back(row_values[c]);
        }
      }
    }
  }
  return out;
}

void ExpectIdentical(const ApproxSelection& got, const ApproxSelection& want) {
  ASSERT_EQ(got.cands.ids, want.cands.ids);
  ASSERT_EQ(got.values.lower, want.values.lower);
  ASSERT_EQ(got.values.error, want.values.error);
  ASSERT_EQ(got.certain, want.certain);
  ASSERT_EQ(got.num_certain, want.num_certain);
  ASSERT_EQ(got.kept_positions, want.kept_positions);
  ASSERT_EQ(got.cands.sorted, want.cands.sorted);
}

struct RandomColumn {
  std::unique_ptr<device::Device> dev;
  bwd::BwdColumn col;
  int64_t lo, hi;

  RandomColumn(uint64_t n, int64_t lo_in, int64_t hi_in, uint32_t device_bits,
               uint64_t seed)
      : lo(lo_in), hi(hi_in) {
    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    Xoshiro256 rng(seed);
    std::vector<int64_t> v(n);
    for (auto& x : v) {
      x = lo + static_cast<int64_t>(
                   rng.Below(static_cast<uint64_t>(hi - lo + 1)));
    }
    cs::Column base = cs::Column::FromI64(v);
    base.ComputeStats();
    auto decomposed = bwd::BwdColumn::Decompose(base, device_bits, dev.get());
    EXPECT_TRUE(decomposed.ok()) << decomposed.status().ToString();
    col = std::move(decomposed).value();
  }
};

TEST(SelectBlockPropertyTest, FullScanBitIdenticalToScalarReference) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    // Random domain (negatives included), random size (tails of every
    // remainder mod 64), random split.
    const int64_t lo =
        static_cast<int64_t>(rng.Below(2000)) - 1000;
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(1u << 18));
    const uint64_t n = 1 + rng.Below(3000);
    const uint32_t device_bits = 1 + static_cast<uint32_t>(rng.Below(40));
    RandomColumn rc(n, lo, hi, device_bits, trial * 7 + 1);
    if (::testing::Test::HasFatalFailure()) return;

    for (int p = 0; p < 8; ++p) {
      // Random predicates, biased to overlap the domain; includes empty
      // and out-of-domain ranges.
      const int64_t a = lo - 50 + static_cast<int64_t>(
                                      rng.Below(static_cast<uint64_t>(
                                          hi - lo + 100)));
      const int64_t b = a + static_cast<int64_t>(rng.Below(1u << 16)) - 100;
      const cs::RangePred pred{a, b};
      ApproxSelection got = SelectApproximate(rc.col, pred, rc.dev.get());
      ApproxSelection want = ReferenceSelect(rc.col, pred);
      ExpectIdentical(got, want);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(SelectBlockPropertyTest, CandidateScanBitIdenticalToScalarReference) {
  Xoshiro256 rng(1234);
  for (int trial = 0; trial < 25; ++trial) {
    const int64_t lo = -500;
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.Below(1u << 16));
    const uint64_t n = 100 + rng.Below(2500);
    const uint32_t device_bits = 1 + static_cast<uint32_t>(rng.Below(40));
    RandomColumn rc(n, lo, hi, device_bits, trial * 13 + 3);
    if (::testing::Test::HasFatalFailure()) return;

    // Random candidate list: arbitrary permutation-ish subset with
    // duplicates allowed (the gather contract).
    Candidates in;
    const uint64_t m = rng.Below(2 * n);
    for (uint64_t i = 0; i < m; ++i) {
      in.ids.push_back(static_cast<cs::oid_t>(rng.Below(n)));
    }
    in.sorted = false;

    for (int p = 0; p < 6; ++p) {
      const int64_t a = lo + static_cast<int64_t>(
                                 rng.Below(static_cast<uint64_t>(hi - lo)));
      const int64_t b = a + static_cast<int64_t>(rng.Below(1u << 14));
      const cs::RangePred pred{a, b};
      ApproxSelection got =
          SelectApproximateOn(rc.col, pred, in, rc.dev.get());
      ApproxSelection want = ReferenceSelectOn(rc.col, pred, in);
      ExpectIdentical(got, want);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(SelectBlockPropertyTest, RefineBitIdenticalToScalarReference) {
  Xoshiro256 rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t n = 200 + rng.Below(2000);
    const uint32_t bits_a = 4 + static_cast<uint32_t>(rng.Below(28));
    const uint32_t bits_b = 4 + static_cast<uint32_t>(rng.Below(28));
    RandomColumn a(n, -1000, 250000, bits_a, trial * 3 + 11);
    RandomColumn b(n, 0, 1u << 20, bits_b, trial * 5 + 7);
    if (::testing::Test::HasFatalFailure()) return;

    // Candidates straight from an approximate selection on column a, with
    // its aligned approximations feeding the first conjunct.
    const cs::RangePred pred_a{-200, 120000};
    const cs::RangePred pred_b{1000, 900000};
    ApproxSelection sel = SelectApproximate(a.col, pred_a, a.dev.get());

    PredicateRefinement conjuncts[2];
    conjuncts[0].column = &a.col;
    conjuncts[0].pred = pred_a;
    conjuncts[0].approx = &sel.values;
    conjuncts[1].column = &b.col;
    conjuncts[1].pred = pred_b;
    conjuncts[1].approx = nullptr;  // falls back to ApproxLowerBound-by-id

    const bool keep_values = trial % 2 == 0;
    RefinedSelection got = SelectRefine(sel.cands, conjuncts, keep_values);
    RefinedSelection want =
        ReferenceRefine(sel.cands, conjuncts, keep_values);
    ASSERT_EQ(got.ids, want.ids);
    ASSERT_EQ(got.positions, want.positions);
    ASSERT_EQ(got.exact_values, want.exact_values);
  }
}

}  // namespace
}  // namespace wastenot::core
