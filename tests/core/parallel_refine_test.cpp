// Property tests pinning the morsel-parallel Phase-R operators to the
// serial path: for every refinement operator, running on a multi-worker
// pool with morsel sizes small enough that inputs straddle many morsels
// must be *bit-identical* to the num_threads=1 result — same ids in the
// same order, same group ids in the same dense numbering, same sums —
// across widths, selectivities, and sizes (including n < one morsel and
// n not a multiple of 64).

#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/ar_engine.h"
#include "core/clustered_column.h"
#include "core/group.h"
#include "core/project.h"
#include "core/select.h"
#include "util/random.h"

namespace wastenot::core {
namespace {

/// Parallel context with a deliberately tiny morsel so even small test
/// inputs straddle many morsels (the interesting merge paths).
MorselContext SmallMorselCtx(ThreadPool* pool, uint64_t morsel = 64) {
  MorselContext ctx;
  ctx.pool = pool;
  ctx.morsel_elems = morsel;
  return ctx;
}

struct RandomColumn {
  std::unique_ptr<device::Device> dev;
  bwd::BwdColumn col;

  RandomColumn(uint64_t n, int64_t lo, int64_t hi, uint32_t device_bits,
               uint64_t seed) {
    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    Xoshiro256 rng(seed);
    std::vector<int64_t> v(n);
    for (auto& x : v) {
      x = lo + static_cast<int64_t>(
                   rng.Below(static_cast<uint64_t>(hi - lo + 1)));
    }
    cs::Column base = cs::Column::FromI64(v);
    base.ComputeStats();
    auto decomposed = bwd::BwdColumn::Decompose(base, device_bits, dev.get());
    EXPECT_TRUE(decomposed.ok()) << decomposed.status().ToString();
    col = std::move(decomposed).value();
  }
};

TEST(ParallelRefineTest, SelectRefineBitIdenticalAcrossPoolAndMorselSizes) {
  ThreadPool pool2(2), pool4(4);
  Xoshiro256 rng(99);
  // Sizes chosen to hit: below one block, exactly blocks, straddling
  // morsels, and a non-multiple-of-64 tail beyond several morsels.
  for (uint64_t n : {1ull, 37ull, 64ull, 65ull, 640ull, 1000ull, 5003ull}) {
    const uint32_t bits_a = 4 + static_cast<uint32_t>(rng.Below(24));
    const uint32_t bits_b = 4 + static_cast<uint32_t>(rng.Below(24));
    RandomColumn a(n, -500, 200000, bits_a, n * 31 + 7);
    RandomColumn b(n, 0, 1 << 19, bits_b, n * 57 + 11);
    if (::testing::Test::HasFatalFailure()) return;

    for (double sel : {0.01, 0.1, 0.9}) {
      const cs::RangePred pred_a{
          -500, -500 + static_cast<int64_t>(200500 * sel)};
      const cs::RangePred pred_b{100, 1 << 18};
      ApproxSelection s = SelectApproximate(a.col, pred_a, a.dev.get());

      PredicateRefinement conjuncts[2];
      conjuncts[0].column = &a.col;
      conjuncts[0].pred = pred_a;
      conjuncts[0].approx = &s.values;
      conjuncts[1].column = &b.col;
      conjuncts[1].pred = pred_b;
      conjuncts[1].approx = nullptr;

      const RefinedSelection serial =
          SelectRefine(s.cands, conjuncts, /*keep_values=*/true);
      for (ThreadPool* pool : {&pool2, &pool4}) {
        for (uint64_t morsel : {64ull, 192ull}) {
          const RefinedSelection par =
              SelectRefine(s.cands, conjuncts, /*keep_values=*/true,
                           SmallMorselCtx(pool, morsel));
          ASSERT_EQ(par.ids, serial.ids);
          ASSERT_EQ(par.positions, serial.positions);
          ASSERT_EQ(par.exact_values, serial.exact_values);
        }
      }
    }
  }
}

TEST(ParallelRefineTest, GroupRefineBitIdenticalWithAndWithoutResiduals) {
  ThreadPool pool(4);
  Xoshiro256 rng(4242);
  for (uint64_t n : {50ull, 64ull, 129ull, 2000ull, 4095ull}) {
    // g1 decomposed with a residual (subgrouping path); g2 fully resident
    // on a second trial flavor (exact pre-group compaction path).
    for (uint32_t g1_bits : {3u, 32u}) {
      RandomColumn g1(n, 0, 4000, g1_bits, n * 3 + g1_bits);
      RandomColumn filt(n, 0, 100000, 8, n * 5 + 1);
      if (::testing::Test::HasFatalFailure()) return;

      const cs::RangePred pred{1000, 60000};
      ApproxSelection s = SelectApproximate(filt.col, pred, filt.dev.get());
      PredicateRefinement conj;
      conj.column = &filt.col;
      conj.pred = pred;
      conj.approx = &s.values;
      const RefinedSelection refined =
          SelectRefine(s.cands, std::span(&conj, 1));

      const ApproxGrouping pre =
          GroupApproximate(g1.col, &s.cands, g1.dev.get());
      const bwd::BwdColumn* cols[] = {&g1.col};

      auto serial = GroupRefine(cols, pre, s.cands, refined.ids);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      for (uint64_t morsel : {64ull, 256ull}) {
        auto par = GroupRefine(cols, pre, s.cands, refined.ids,
                               SmallMorselCtx(&pool, morsel));
        ASSERT_TRUE(par.ok()) << par.status().ToString();
        ASSERT_EQ(par->group_ids, serial->group_ids)
            << "n=" << n << " g1_bits=" << g1_bits << " morsel=" << morsel;
        ASSERT_EQ(par->num_groups, serial->num_groups);
        ASSERT_EQ(par->first_ids, serial->first_ids);
      }
    }
  }
}

TEST(ParallelRefineTest, SumAndGroupedSumRefineMatchSerial) {
  ThreadPool pool(4);
  Xoshiro256 rng(7);
  for (uint64_t n : {0ull, 1ull, 63ull, 64ull, 1000ull, 9999ull}) {
    const uint64_t num_groups = 1 + rng.Below(17);
    std::vector<int64_t> values(n);
    std::vector<uint32_t> gids(n);
    for (uint64_t i = 0; i < n; ++i) {
      values[i] = static_cast<int64_t>(rng.Below(1 << 20)) - (1 << 19);
      gids[i] = static_cast<uint32_t>(rng.Below(num_groups));
    }
    const int64_t serial_sum = SumRefine(values);
    const std::vector<int64_t> serial_grouped =
        GroupedSumRefine(values, gids, num_groups);
    for (uint64_t morsel : {64ull, 320ull}) {
      const MorselContext ctx = SmallMorselCtx(&pool, morsel);
      EXPECT_EQ(SumRefine(values, ctx), serial_sum);
      EXPECT_EQ(GroupedSumRefine(values, gids, num_groups, ctx),
                serial_grouped);
    }
  }
}

TEST(ParallelRefineTest, ProjectAndFkJoinRefineMatchSerial) {
  ThreadPool pool(3);
  Xoshiro256 rng(31);
  for (uint64_t n : {30ull, 64ull, 777ull, 4096ull}) {
    RandomColumn val(n, -10000, 90000, 9, n + 1);
    if (::testing::Test::HasFatalFailure()) return;

    // Candidate ids: random subset with duplicates, arbitrary order.
    cs::OidVec ids;
    const uint64_t m = 1 + rng.Below(2 * n);
    for (uint64_t i = 0; i < m; ++i) {
      ids.push_back(static_cast<cs::oid_t>(rng.Below(n)));
    }

    const std::vector<int64_t> serial = ProjectRefine(val.col, ids);
    for (uint64_t morsel : {64ull, 128ull}) {
      EXPECT_EQ(ProjectRefine(val.col, ids, nullptr,
                              SmallMorselCtx(&pool, morsel)),
                serial);
    }

    // With aligned approximations (the shipped phase-A output).
    Candidates cands;
    cands.ids = ids;
    ApproxValues approx = ProjectApproximate(val.col, cands, val.dev.get());
    const std::vector<int64_t> serial_aligned =
        ProjectRefine(val.col, ids, &approx);
    EXPECT_EQ(serial_aligned, serial);  // both reconstruct exactly
    EXPECT_EQ(ProjectRefine(val.col, ids, &approx, SmallMorselCtx(&pool)),
              serial_aligned);
  }

  // FK join: fk fully resident into a small dimension attribute.
  const uint64_t dim_rows = 100, fact_rows = 3000;
  RandomColumn attr(dim_rows, 0, 5000, 6, 12);
  std::unique_ptr<device::Device>& dev = attr.dev;
  std::vector<int64_t> fk_vals(fact_rows);
  for (uint64_t i = 0; i < fact_rows; ++i) {
    fk_vals[i] = static_cast<int64_t>(rng.Below(dim_rows));
  }
  cs::Column fk_base = cs::Column::FromI64(fk_vals);
  fk_base.ComputeStats();
  auto fk = bwd::BwdColumn::Decompose(fk_base, 64, dev.get());
  ASSERT_TRUE(fk.ok()) << fk.status().ToString();
  cs::OidVec fact_ids;
  for (uint64_t i = 0; i < fact_rows; i += 2) {
    fact_ids.push_back(static_cast<cs::oid_t>(i));
  }
  auto serial = FkJoinRefine(*fk, attr.col, fact_ids);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto par = FkJoinRefine(*fk, attr.col, fact_ids, SmallMorselCtx(&pool));
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(*par, *serial);
}

TEST(ParallelRefineTest, ExtremumRefineMatchesSerial) {
  ThreadPool pool(4);
  for (uint64_t n : {10ull, 65ull, 3000ull}) {
    RandomColumn val(n, -5000, 5000, 7, n * 13 + 5);
    if (::testing::Test::HasFatalFailure()) return;

    Candidates cands;
    cands.ids.resize(n);
    for (uint64_t i = 0; i < n; ++i) cands.ids[i] = static_cast<cs::oid_t>(i);
    const ExtremumCandidates mins =
        MinApproximate(val.col, cands, {}, val.dev.get());
    const ExtremumCandidates maxs =
        MaxApproximate(val.col, cands, {}, val.dev.get());
    cs::OidVec refined;
    for (uint64_t i = 0; i < n; i += 3) {
      refined.push_back(static_cast<cs::oid_t>(i));
    }
    auto min_serial = MinRefine(val.col, mins, refined);
    auto max_serial = MaxRefine(val.col, maxs, refined);
    ASSERT_TRUE(min_serial.ok() && max_serial.ok());
    auto min_par = MinRefine(val.col, mins, refined, SmallMorselCtx(&pool));
    auto max_par = MaxRefine(val.col, maxs, refined, SmallMorselCtx(&pool));
    ASSERT_TRUE(min_par.ok() && max_par.ok());
    EXPECT_EQ(*min_par, *min_serial);
    EXPECT_EQ(*max_par, *max_serial);
  }
}

TEST(ParallelRefineTest, ClusteredSelectRefineMatchesSerial) {
  ThreadPool pool(4);
  Xoshiro256 rng(555);
  for (uint64_t n : {80ull, 1000ull, 10000ull}) {
    std::vector<int64_t> v(n);
    for (auto& x : v) x = static_cast<int64_t>(rng.Below(1 << 16));
    cs::Column base = cs::Column::FromI64(v);
    base.ComputeStats();
    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    device::Device dev(spec, 2);
    auto clustered = ClusteredBwdColumn::Cluster(base, 8, &dev);
    ASSERT_TRUE(clustered.ok()) << clustered.status().ToString();

    for (int p = 0; p < 6; ++p) {
      const int64_t lo = static_cast<int64_t>(rng.Below(1 << 16));
      const int64_t hi = lo + static_cast<int64_t>(rng.Below(1 << 14));
      const cs::RangePred pred{lo, hi};
      const auto sel = clustered->SelectApproximate(pred, &dev);
      const cs::OidVec serial = clustered->SelectRefine(sel, pred);
      for (uint64_t morsel : {64ull, 256ull}) {
        EXPECT_EQ(clustered->SelectRefine(sel, pred,
                                          SmallMorselCtx(&pool, morsel)),
                  serial)
            << "n=" << n << " pred=[" << lo << "," << hi << "]";
      }
    }
  }
}

/// Whole-engine determinism: the same query on the same data must produce
/// identical results, bounds, and counts for num_threads = 1 (the serial
/// ablation baseline) and a multi-worker pool.
TEST(ParallelRefineTest, ExecuteArIdenticalAcrossNumThreads) {
  const uint64_t n = 40000;
  Xoshiro256 rng(2024);
  cs::Table fact_t("fact");
  std::vector<int32_t> a(n), g(n), v(n);
  for (uint64_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng.Below(1 << 14));
    g[i] = static_cast<int32_t>(rng.Below(9));
    v[i] = static_cast<int32_t>(rng.Below(1000));
  }
  auto add = [&fact_t](const char* name, std::vector<int32_t>& vals) {
    cs::Column col = cs::Column::FromI32(vals);
    col.ComputeStats();
    (void)fact_t.AddColumn(name, std::move(col));
  };
  add("a", a);
  add("g", g);
  add("v", v);

  device::DeviceSpec spec;
  spec.memory_capacity = 256 << 20;

  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", {1000, 9000}}};
  q.group_by = {"g"};
  q.aggregates = {Aggregate::CountStar("cnt"), Aggregate::SumOf("v", "sum_v")};

  // Two decomposition flavors so both aggregate refinement paths run: with
  // residuals on g/v the engine recomputes products host-side (destructive
  // distributivity); with g/v fully resident it takes the delta path
  // (subtracting false positives from fused candidate sums).
  struct Flavor {
    uint32_t g_bits, v_bits;
  };
  for (const Flavor f : {Flavor{2, 6}, Flavor{32, 32}}) {
    std::optional<ArExecution> baseline;
    for (unsigned num_threads : {1u, 3u, 5u}) {
      // Fresh device per run: the simulated clock is stateful.
      device::Device dev(spec, 2);
      auto fact = bwd::BwdTable::Decompose(
          fact_t,
          {{"a", 8, bwd::Compression::kBitPacked},
           {"g", f.g_bits, bwd::Compression::kBitPacked},
           {"v", f.v_bits, bwd::Compression::kBitPacked}},
          &dev);
      ASSERT_TRUE(fact.ok()) << fact.status().ToString();
      ArOptions opts;
      opts.num_threads = num_threads;
      // Tiny morsels: the engine's own inline Phase-R loops (count
      // partials, delta walk, destructive recompute) must straddle many
      // morsels so their parallel merges actually execute.
      opts.morsel_elems = 256;
      auto exec = ExecuteAr(q, *fact, nullptr, &dev, opts);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      EXPECT_GE(exec->breakdown.host_cpu_seconds, 0.0);
      if (!baseline.has_value()) {
        baseline = std::move(*exec);
        continue;
      }
      EXPECT_EQ(exec->result, baseline->result) << "threads=" << num_threads;
      EXPECT_EQ(exec->num_candidates, baseline->num_candidates);
      EXPECT_EQ(exec->num_refined, baseline->num_refined);
      EXPECT_EQ(exec->approx.row_count.lo, baseline->approx.row_count.lo);
      EXPECT_EQ(exec->approx.row_count.hi, baseline->approx.row_count.hi);
    }
  }
}

}  // namespace
}  // namespace wastenot::core
