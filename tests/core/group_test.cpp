#include "core/group.h"

#include <map>
#include <numeric>
#include <memory>

#include <gtest/gtest.h>

#include "core/select.h"
#include "util/random.h"

namespace wastenot::core {
namespace {

struct GroupFixture {
  std::unique_ptr<device::Device> dev;
  cs::Column base;
  bwd::BwdColumn col;

  GroupFixture(uint64_t n, uint64_t domain, uint32_t device_bits,
               uint64_t seed) {
    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    Xoshiro256 rng(seed);
    std::vector<int32_t> v(n);
    for (auto& x : v) x = static_cast<int32_t>(rng.Below(domain));
    base = cs::Column::FromI32(v);
    base.ComputeStats();
    col = std::move(bwd::BwdColumn::Decompose(base, device_bits, dev.get()))
              .value();
  }
};

/// Oracle partition check: same exact value <=> same refined group.
void CheckExactPartition(const std::vector<uint32_t>& group_ids,
                         const std::vector<int64_t>& keys,
                         uint64_t num_groups) {
  ASSERT_EQ(group_ids.size(), keys.size());
  std::map<int64_t, uint32_t> v2g;
  std::map<uint32_t, int64_t> g2v;
  for (uint64_t i = 0; i < keys.size(); ++i) {
    auto [it, _] = v2g.emplace(keys[i], group_ids[i]);
    ASSERT_EQ(it->second, group_ids[i]) << "row " << i;
    auto [it2, _2] = g2v.emplace(group_ids[i], keys[i]);
    ASSERT_EQ(it2->second, keys[i]) << "row " << i;
  }
  EXPECT_EQ(v2g.size(), num_groups);
}

TEST(GroupApproximateTest, FullyResidentGroupsAreExact) {
  GroupFixture f(5000, 37, 32, 1);
  ApproxGrouping pre = GroupApproximate(f.col, nullptr, f.dev.get());
  EXPECT_EQ(pre.num_groups, 37u);
  std::vector<int64_t> keys(f.base.size());
  for (uint64_t i = 0; i < keys.size(); ++i) keys[i] = f.base.Get(i);
  CheckExactPartition(pre.group_ids, keys, pre.num_groups);
}

TEST(GroupApproximateTest, PreGroupsMergeResidualNeighbors) {
  // With residual bits, values sharing major bits land in one pre-group:
  // the pre-group count is the number of distinct approximation digits.
  GroupFixture f(5000, 1 << 10, 32 - 4, 2);  // 4 residual bits
  ApproxGrouping pre = GroupApproximate(f.col, nullptr, f.dev.get());
  EXPECT_LE(pre.num_groups, (1u << 10) >> 4);
  // Rows in one pre-group share the approximation digit.
  const auto view = f.col.approximation();
  std::map<uint32_t, uint64_t> group_digit;
  for (uint64_t i = 0; i < pre.group_ids.size(); ++i) {
    auto [it, _] = group_digit.emplace(pre.group_ids[i], view.Get(i));
    ASSERT_EQ(it->second, view.Get(i));
  }
}

TEST(GroupRefineTest, ResidualSubgroupingRecoversExactGroups) {
  GroupFixture f(8000, 1 << 9, 32 - 5, 3);  // 5 residual bits
  Candidates all;
  all.ids.resize(f.base.size());
  std::iota(all.ids.begin(), all.ids.end(), 0);
  all.sorted = true;

  ApproxGrouping pre = GroupApproximate(f.col, &all, f.dev.get());
  const bwd::BwdColumn* cols[] = {&f.col};
  auto refined = GroupRefine(cols, pre, all, all.ids);
  ASSERT_TRUE(refined.ok());

  std::vector<int64_t> keys(f.base.size());
  for (uint64_t i = 0; i < keys.size(); ++i) keys[i] = f.base.Get(i);
  CheckExactPartition(refined->group_ids, keys, refined->num_groups);
  // Representatives reconstruct to group keys.
  for (uint64_t g = 0; g < refined->num_groups; ++g) {
    const cs::oid_t id = refined->first_ids[g];
    EXPECT_EQ(f.col.Reconstruct(id), f.base.Get(id));
  }
}

TEST(GroupRefineTest, DropsFalsePositives) {
  GroupFixture f(6000, 1 << 12, 32 - 6, 4);
  const cs::RangePred pred = cs::RangePred::Le(1000);
  ApproxSelection sel = SelectApproximate(f.col, pred, f.dev.get());
  ApproxGrouping pre = GroupApproximate(f.col, &sel.cands, f.dev.get());

  PredicateRefinement conj{&f.col, pred, &sel.values};
  RefinedSelection rsel = SelectRefine(sel.cands, std::span(&conj, 1));

  const bwd::BwdColumn* cols[] = {&f.col};
  auto refined = GroupRefine(cols, pre, sel.cands, rsel.ids);
  ASSERT_TRUE(refined.ok());
  ASSERT_EQ(refined->group_ids.size(), rsel.ids.size());

  std::vector<int64_t> keys(rsel.ids.size());
  for (uint64_t i = 0; i < keys.size(); ++i) {
    keys[i] = f.base.Get(rsel.ids[i]);
  }
  CheckExactPartition(refined->group_ids, keys, refined->num_groups);
}

TEST(GroupApproximateSubTest, MultiColumnGrouping) {
  GroupFixture a(4000, 3, 32, 5);
  GroupFixture b(4000, 2, 32, 6);
  Candidates all;
  all.ids.resize(4000);
  std::iota(all.ids.begin(), all.ids.end(), 0);

  ApproxGrouping g1 = GroupApproximate(a.col, &all, a.dev.get());
  ApproxGrouping g2 = GroupApproximateSub(b.col, &all, g1, a.dev.get());
  EXPECT_LE(g2.num_groups, 6u);
  EXPECT_GE(g2.num_groups, g1.num_groups);

  // Pair partition check.
  std::map<std::pair<int64_t, int64_t>, uint32_t> p2g;
  std::map<uint32_t, std::pair<int64_t, int64_t>> g2p;
  for (uint64_t i = 0; i < 4000; ++i) {
    const auto key = std::make_pair(a.base.Get(i), b.base.Get(i));
    auto [it, _] = p2g.emplace(key, g2.group_ids[i]);
    ASSERT_EQ(it->second, g2.group_ids[i]);
    auto [it2, _2] = g2p.emplace(g2.group_ids[i], key);
    ASSERT_EQ(it2->second, key);
  }
}

TEST(GroupRefineTest, TranslucentContractViolationSurfaces) {
  GroupFixture f(100, 8, 32, 7);
  Candidates cands;
  cands.ids = {5, 10, 20};
  ApproxGrouping pre = GroupApproximate(f.col, &cands, f.dev.get());
  const bwd::BwdColumn* cols[] = {&f.col};
  // 99 is not among the candidates: precondition violation.
  auto refined = GroupRefine(cols, pre, cands, {5, 99});
  EXPECT_FALSE(refined.ok());
  EXPECT_TRUE(refined.status().IsPreconditionFailed());
}

}  // namespace
}  // namespace wastenot::core
