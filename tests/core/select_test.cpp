#include "core/select.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::core {
namespace {

struct Fixture {
  std::unique_ptr<device::Device> dev;
  cs::Column base;
  bwd::BwdColumn col;

  Fixture(uint64_t n, int64_t lo, int64_t hi, uint32_t device_bits,
          uint64_t seed) {
    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    Xoshiro256 rng(seed);
    std::vector<int32_t> v(n);
    for (auto& x : v) {
      x = static_cast<int32_t>(
          lo + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(hi - lo + 1))));
    }
    base = cs::Column::FromI32(v);
    base.ComputeStats();
    auto decomposed = bwd::BwdColumn::Decompose(base, device_bits, dev.get());
    EXPECT_TRUE(decomposed.ok());
    col = std::move(decomposed).value();
  }

  cs::OidVec Oracle(const cs::RangePred& pred) const {
    cs::OidVec out;
    for (uint64_t i = 0; i < base.size(); ++i) {
      if (pred.Contains(base.Get(i))) out.push_back(static_cast<cs::oid_t>(i));
    }
    return out;
  }
};

TEST(RelaxPredicateTest, ExactWhenFullyResident) {
  Fixture f(100, 0, 1000, 32, 1);
  const cs::RangePred pred = cs::RangePred::Between(100, 200);
  RelaxedPred relaxed = RelaxPredicate(f.col.spec(), pred);
  // With no residual bits, relaxed == exact and everything is certain.
  EXPECT_EQ(relaxed.certain_lo, relaxed.lo_digit);
  EXPECT_EQ(relaxed.certain_hi, relaxed.hi_digit);
}

TEST(RelaxPredicateTest, NonePredicates) {
  Fixture f(10, 0, 100, 24, 2);
  EXPECT_TRUE(RelaxPredicate(f.col.spec(), cs::RangePred{50, 20}).none);
  EXPECT_TRUE(RelaxPredicate(f.col.spec(), cs::RangePred{2000, 3000}).none);
  EXPECT_TRUE(RelaxPredicate(f.col.spec(), cs::RangePred{-100, -50}).none);
}

TEST(RelaxPredicateTest, PaperRelaxationSemantics) {
  // §IV-B: '> x' relaxes to appr(v) >= appr(x); '<= x' to
  // appr(v) <= appr(x)  (digit comparisons in our packed domain).
  // Relaxation is a property of the decomposition spec alone.
  const auto spec = bwd::DecompositionSpec::Plan(
      0, (1 << 12) - 1, 32, 32 - 4, bwd::Compression::kBitPacked);
  ASSERT_EQ(spec.residual_bits, 4u);
  const int64_t x = 100;
  RelaxedPred gt = RelaxPredicate(spec, cs::RangePred::Gt(x));
  EXPECT_EQ(gt.lo_digit, spec.ApproxDigit(x));  // appr(x)-1 exclusive
  RelaxedPred le = RelaxPredicate(spec, cs::RangePred::Le(x));
  EXPECT_EQ(le.hi_digit, spec.ApproxDigit(x));
  RelaxedPred eq = RelaxPredicate(spec, cs::RangePred::Eq(x));
  EXPECT_EQ(eq.lo_digit, spec.ApproxDigit(x));
  EXPECT_EQ(eq.hi_digit, spec.ApproxDigit(x));
}

struct SelectCase {
  uint32_t device_bits;
  int64_t pred_lo;
  int64_t pred_hi;
};

class SelectSweep : public ::testing::TestWithParam<SelectCase> {};

TEST_P(SelectSweep, SupersetAndRefineExact) {
  const SelectCase& c = GetParam();
  Fixture f(20000, 0, (1 << 16) - 1, c.device_bits, c.device_bits * 131 + 7);
  const cs::RangePred pred{c.pred_lo, c.pred_hi};

  ApproxSelection approx = SelectApproximate(f.col, pred, f.dev.get());
  const cs::OidVec oracle = f.Oracle(pred);

  // Invariant 1: superset.
  std::set<cs::oid_t> cand_set(approx.cands.ids.begin(),
                               approx.cands.ids.end());
  for (cs::oid_t id : oracle) {
    ASSERT_TRUE(cand_set.count(id)) << "missing exact-result id " << id;
  }
  // Certain candidates must truly match.
  for (uint64_t i = 0; i < approx.cands.size(); ++i) {
    if (approx.certain[i]) {
      ASSERT_TRUE(pred.Contains(f.base.Get(approx.cands.ids[i])));
    }
  }
  // Approximate values bracket the truth.
  for (uint64_t i = 0; i < approx.cands.size(); ++i) {
    const int64_t truth = f.base.Get(approx.cands.ids[i]);
    ASSERT_LE(approx.values.lower[i], truth);
    ASSERT_GE(approx.values.lower[i] + static_cast<int64_t>(approx.values.error),
              truth);
  }

  // Invariant 2: refinement is exact.
  PredicateRefinement conj{&f.col, pred, &approx.values};
  RefinedSelection refined =
      SelectRefine(approx.cands, std::span(&conj, 1), /*keep_values=*/true);
  EXPECT_EQ(refined.ids, oracle);
  for (uint64_t i = 0; i < refined.ids.size(); ++i) {
    ASSERT_EQ(refined.exact_values[0][i], f.base.Get(refined.ids[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndSelectivities, SelectSweep,
    ::testing::Values(SelectCase{32, 0, 600},           // resident, selective
                      SelectCase{32, 0, 60000},         // resident, broad
                      SelectCase{24, 0, 600},           // 8 residual bits
                      SelectCase{24, 30000, 31000},     //
                      SelectCase{20, 0, 65535},         // everything
                      SelectCase{16, 12345, 12345},     // point query
                      SelectCase{12, 0, 100},           // 20 residual bits
                      SelectCase{24, 65530, 70000},     // touches domain top
                      SelectCase{24, -100, 5}));        // touches domain bottom

TEST(SelectApproximateTest, FullScanOutputSorted) {
  Fixture f(5000, 0, 1000, 24, 11);
  ApproxSelection s =
      SelectApproximate(f.col, cs::RangePred::Le(500), f.dev.get());
  EXPECT_TRUE(s.cands.sorted);
  EXPECT_TRUE(std::is_sorted(s.cands.ids.begin(), s.cands.ids.end()));
}

TEST(SelectApproximateTest, EmptyPredicate) {
  Fixture f(100, 0, 50, 24, 12);
  ApproxSelection s =
      SelectApproximate(f.col, cs::RangePred{10, 5}, f.dev.get());
  EXPECT_TRUE(s.cands.empty());
}

TEST(SelectApproximateOnTest, ChainEqualsConjunction) {
  Fixture f(10000, 0, 10000, 24, 13);
  Fixture g(10000, 0, 10000, 26, 14);
  const cs::RangePred pa = cs::RangePred::Le(3000);
  const cs::RangePred pb = cs::RangePred::Ge(7000);

  ApproxSelection sa = SelectApproximate(f.col, pa, f.dev.get());
  ApproxSelection sb =
      SelectApproximateOn(g.col, pb, sa.cands, g.dev.get());

  // kept_positions points into sa's candidate list.
  ASSERT_EQ(sb.kept_positions.size(), sb.cands.size());
  for (uint64_t i = 0; i < sb.cands.size(); ++i) {
    ASSERT_EQ(sa.cands.ids[sb.kept_positions[i]], sb.cands.ids[i]);
  }

  // Refining both conjuncts yields the exact conjunction.
  std::vector<int64_t> a_lower_compacted(sb.cands.size());
  for (uint64_t i = 0; i < sb.cands.size(); ++i) {
    a_lower_compacted[i] = sa.values.lower[sb.kept_positions[i]];
  }
  ApproxValues a_vals{std::move(a_lower_compacted), sa.values.error};
  PredicateRefinement conjs[2] = {{&f.col, pa, &a_vals},
                                  {&g.col, pb, &sb.values}};
  RefinedSelection refined = SelectRefine(sb.cands, conjs);

  cs::OidVec oracle;
  for (uint64_t i = 0; i < f.base.size(); ++i) {
    if (pa.Contains(f.base.Get(i)) && pb.Contains(g.base.Get(i))) {
      oracle.push_back(static_cast<cs::oid_t>(i));
    }
  }
  EXPECT_EQ(refined.ids, oracle);
}

TEST(SelectRefineTest, NullApproxFallsBackToColumnRead) {
  Fixture f(3000, 0, 4000, 22, 15);
  const cs::RangePred pred = cs::RangePred::Between(100, 900);
  ApproxSelection s = SelectApproximate(f.col, pred, f.dev.get());
  PredicateRefinement conj{&f.col, pred, nullptr};  // no downloaded values
  RefinedSelection refined = SelectRefine(s.cands, std::span(&conj, 1));
  EXPECT_EQ(refined.ids, f.Oracle(pred));
}

TEST(SelectRefineTest, PositionsIndexCandidates) {
  Fixture f(2000, 0, 500, 26, 16);
  const cs::RangePred pred = cs::RangePred::Le(100);
  ApproxSelection s = SelectApproximate(f.col, pred, f.dev.get());
  PredicateRefinement conj{&f.col, pred, &s.values};
  RefinedSelection refined = SelectRefine(s.cands, std::span(&conj, 1));
  for (uint64_t i = 0; i < refined.ids.size(); ++i) {
    ASSERT_EQ(s.cands.ids[refined.positions[i]], refined.ids[i]);
  }
}

}  // namespace
}  // namespace wastenot::core
