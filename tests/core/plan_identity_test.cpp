// Plan-layer identity and composability tests.
//
// PlanIdentityFuzz pins the tentpole contract: executing LowerToPlan(spec)
// through the plan executors is bit-identical to the legacy single-join
// engine bodies, across random widths, placements and engines — and the
// general (non-legacy) executors agree on the same shapes when forced.
// PlanIdentityShardedFuzz extends the identity over shard counts {1, 4}.
// PlanIdentityComposability checks join-order invariance of multi-join and
// theta plans (the translucent candidate discipline composes), and
// PlanIdentityValidation pins the Status-propagation contract: malformed
// specs/plans surface InvalidArgument instead of asserting inside engines.

#include "core/plan_exec.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bwd/partition.h"
#include "core/sharded_engine.h"
#include "util/random.h"

namespace wastenot::core {
namespace {

void AddI32(cs::Table* t, const char* name, std::vector<int32_t>& vals) {
  cs::Column col = cs::Column::FromI32(vals);
  col.ComputeStats();
  (void)t->AddColumn(name, std::move(col));
}

/// A random star schema (fact + one dimension) with seed-varied widths:
/// the same random shapes the legacy engines were pinned on, now executed
/// through the plan layer.
struct FuzzFixture {
  cs::Database db;
  std::unique_ptr<device::Device> dev;
  std::unique_ptr<bwd::BwdTable> fact;
  std::unique_ptr<bwd::BwdTable> dim;
  std::vector<bwd::DecomposeRequest> fact_reqs;
  uint64_t n;

  explicit FuzzFixture(uint64_t seed) {
    Xoshiro256 rng(seed * 7919 + 17);
    n = 400 + rng.Below(1600);
    const uint64_t dim_rows = 48;
    {
      cs::Table fact_t("fact");
      std::vector<int32_t> a(n), b(n), g(n), v(n), fk(n);
      for (uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(rng.Below(1 << 14));
        b[i] = static_cast<int32_t>(rng.Below(1 << 12));
        g[i] = static_cast<int32_t>(rng.Below(7));
        v[i] = static_cast<int32_t>(rng.Below(1000));
        fk[i] = static_cast<int32_t>(1 + rng.Below(dim_rows));
      }
      AddI32(&fact_t, "a", a);
      AddI32(&fact_t, "b", b);
      AddI32(&fact_t, "g", g);
      AddI32(&fact_t, "v", v);
      AddI32(&fact_t, "fk", fk);
      db.AddTable(std::move(fact_t));
    }
    {
      cs::Table dim_t("dim");
      std::vector<int32_t> t(dim_rows), w(dim_rows);
      for (uint64_t i = 0; i < dim_rows; ++i) {
        t[i] = static_cast<int32_t>(rng.Below(16));
        w[i] = static_cast<int32_t>(rng.Below(30));
      }
      AddI32(&dim_t, "t", t);
      AddI32(&dim_t, "w", w);
      db.AddTable(std::move(dim_t));
    }

    // Seed-varied widths and placements: anything from heavily approximate
    // (few device bits, large residuals) to fully resident.
    auto bits = [&rng] {
      return static_cast<uint32_t>(4 + rng.Below(29));  // 4..32
    };
    fact_reqs = {{"a", bits(), bwd::Compression::kBitPacked},
                 {"b", bits(), bwd::Compression::kBitPacked},
                 {"g", bits(), bwd::Compression::kBitPacked},
                 {"v", bits(), bwd::Compression::kBitPacked},
                 {"fk", 32, bwd::Compression::kBitPacked}};

    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    fact = std::make_unique<bwd::BwdTable>(std::move(
        bwd::BwdTable::Decompose(db.table("fact"), fact_reqs, dev.get())
            .value()));
    dim = std::make_unique<bwd::BwdTable>(
        std::move(bwd::BwdTable::Decompose(
                      db.table("dim"),
                      {{"t", 32, bwd::Compression::kBitPacked},
                       {"w", 32, bwd::Compression::kBitPacked}},
                      dev.get()))
            .value());
  }
};

/// A seed-derived single-join QuerySpec covering predicates, joins, dim
/// terms, case filters, grouping and count/sum/avg aggregates.
QuerySpec RandomSpec(uint64_t seed) {
  Xoshiro256 rng(seed * 6271 + 5);
  QuerySpec q;
  q.table = "fact";
  const uint64_t num_preds = 1 + rng.Below(2);
  for (uint64_t p = 0; p < num_preds; ++p) {
    const bool on_a = rng.Below(2) == 0;
    const int64_t domain = on_a ? (1 << 14) : (1 << 12);
    const int64_t lo = static_cast<int64_t>(rng.Below(domain / 2));
    const int64_t hi = lo + static_cast<int64_t>(rng.Below(domain / 2)) + 1;
    q.predicates.push_back({on_a ? "a" : "b", cs::RangePred{lo, hi}});
  }
  const bool join = rng.Below(2) == 0;
  if (join) q.join = JoinSpec{"fk", "dim", 1};
  if (rng.Below(2) == 0) q.group_by = {"g"};
  q.aggregates = {Aggregate::CountStar("n"), Aggregate::SumOf("v", "sum_v")};
  if (rng.Below(2) == 0) {
    Aggregate avg;
    avg.func = AggFunc::kAvg;
    avg.terms = {Term::Col("v")};
    avg.label = "avg_v";
    q.aggregates.push_back(std::move(avg));
  }
  if (join && rng.Below(2) == 0) {
    // Dimension-gated product term (the Q14 shape).
    Aggregate gated;
    gated.func = AggFunc::kSum;
    Term dim_term = Term::Col("w");
    dim_term.from_dimension = true;
    gated.terms = {Term::Col("v"), dim_term};
    gated.filter = CaseFilter{"t", cs::RangePred::Lt(8)};
    gated.label = "gated";
    q.aggregates.push_back(std::move(gated));
  }
  return q;
}

class PlanIdentityFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanIdentityFuzz, LoweredPlansAreBitIdenticalToLegacy) {
  const uint64_t seed = GetParam();
  FuzzFixture f(seed);
  const QuerySpec q = RandomSpec(seed);
  const PhysicalPlan plan = LowerToPlan(q);
  const BwdTableMap dims = {{"dim", f.dim.get()}};

  // Classic: the plan path must reproduce the legacy body exactly.
  auto legacy_classic = detail::ExecuteClassicLegacy(q, f.db, {});
  ASSERT_TRUE(legacy_classic.ok()) << legacy_classic.status().ToString();
  auto plan_classic = ExecutePlanClassic(plan, f.db);
  ASSERT_TRUE(plan_classic.ok()) << plan_classic.status().ToString();
  EXPECT_EQ(*plan_classic, *legacy_classic);

  // A&R: result, candidate count and refinement count all match.
  auto legacy_ar = detail::ExecuteArLegacy(q, *f.fact, f.dim.get(),
                                           f.dev.get(), {});
  ASSERT_TRUE(legacy_ar.ok()) << legacy_ar.status().ToString();
  auto plan_ar = ExecutePlanAr(plan, *f.fact, dims, f.dev.get());
  ASSERT_TRUE(plan_ar.ok()) << plan_ar.status().ToString();
  EXPECT_EQ(plan_ar->result, legacy_ar->result);
  EXPECT_EQ(plan_ar->num_candidates, legacy_ar->num_candidates);
  EXPECT_EQ(plan_ar->num_refined, legacy_ar->num_refined);
  EXPECT_EQ(plan_ar->result, *legacy_classic);

  // Streaming: fresh caches on both sides, identical results and bytes.
  device::ResidencyCache legacy_cache(f.dev.get());
  device::ResidencyCache plan_cache(f.dev.get());
  auto legacy_str =
      detail::ExecuteStreamingLegacy(q, f.db, f.dev.get(), &legacy_cache);
  ASSERT_TRUE(legacy_str.ok()) << legacy_str.status().ToString();
  auto plan_str = ExecutePlanStreaming(plan, f.db, f.dev.get(), &plan_cache);
  ASSERT_TRUE(plan_str.ok()) << plan_str.status().ToString();
  EXPECT_EQ(plan_str->result, legacy_str->result);
  EXPECT_EQ(plan_str->bytes_transferred, legacy_str->bytes_transferred);

  // Force the *general* executors onto the same shape (a ProjectNode makes
  // PlanToSpec refuse, so no legacy dispatch) — results must still agree.
  // The general A&R path does not support min/max, which RandomSpec never
  // emits.
  PhysicalPlan general = plan;
  general.ops.push_back(ProjectNode{});
  auto general_classic = ExecutePlanClassic(general, f.db);
  ASSERT_TRUE(general_classic.ok()) << general_classic.status().ToString();
  EXPECT_EQ(*general_classic, *legacy_classic);
  auto general_ar = ExecutePlanAr(general, *f.fact, dims, f.dev.get());
  ASSERT_TRUE(general_ar.ok()) << general_ar.status().ToString();
  EXPECT_EQ(general_ar->result, *legacy_classic);
  device::ResidencyCache general_cache(f.dev.get());
  auto general_str =
      ExecutePlanStreaming(general, f.db, f.dev.get(), &general_cache);
  ASSERT_TRUE(general_str.ok()) << general_str.status().ToString();
  EXPECT_EQ(general_str->result, legacy_str->result);
}

TEST_P(PlanIdentityFuzz, ShardedExecutionMatchesAcrossShardCounts) {
  const uint64_t seed = GetParam();
  FuzzFixture f(seed);
  // Fact-only spec (dimension replication is exercised elsewhere): the
  // sharded paths must agree with single-device classic for 1 and 4 shards.
  QuerySpec q = RandomSpec(seed);
  q.join.reset();
  q.aggregates = {Aggregate::CountStar("n"), Aggregate::SumOf("v", "sum_v")};
  auto classic = ExecuteClassic(q, f.db);
  ASSERT_TRUE(classic.ok()) << classic.status().ToString();

  for (uint32_t shards : {1u, 4u}) {
    device::DeviceGroupOptions gopts;
    gopts.num_devices = shards;
    gopts.base.memory_capacity = 64 << 20;
    gopts.worker_threads = 1;
    device::DeviceGroup group(gopts);
    auto sharded_fact = bwd::DecomposeSharded(
        f.db.table("fact"), f.fact_reqs,
        bwd::PartitionSpec{bwd::PartitionKind::kRange, "a", shards}, &group);
    ASSERT_TRUE(sharded_fact.ok()) << sharded_fact.status().ToString();

    auto spec_exec = ExecuteArSharded(q, *sharded_fact, nullptr, &group);
    ASSERT_TRUE(spec_exec.ok()) << spec_exec.status().ToString();
    EXPECT_EQ(spec_exec->merged.result, *classic) << shards << " shard(s)";

    auto plan_exec =
        ExecutePlanArSharded(LowerToPlan(q), *sharded_fact, nullptr, &group);
    ASSERT_TRUE(plan_exec.ok()) << plan_exec.status().ToString();
    EXPECT_EQ(plan_exec->merged.result, spec_exec->merged.result);

    const std::vector<cs::Database> shard_dbs =
        bwd::BuildShardDatabases(sharded_fact->partition, {});
    auto streaming = ExecutePlanStreamingSharded(
        LowerToPlan(q), shard_dbs, &group, &sharded_fact->partition);
    ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
    EXPECT_EQ(streaming->merged.result, *classic) << shards << " shard(s)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanIdentityFuzz,
                         ::testing::Range<uint64_t>(1, 17));

/// Two dimensions and a theta right side: the multi-join general path.
struct MultiJoinFixture {
  cs::Database db;
  std::unique_ptr<device::Device> dev;
  std::unique_ptr<bwd::BwdTable> fact;
  std::unique_ptr<bwd::BwdTable> dim1;
  std::unique_ptr<bwd::BwdTable> dim2;
  BwdTableMap dims;

  MultiJoinFixture() {
    Xoshiro256 rng(4242);
    const uint64_t n = 2000, d1 = 50, d2 = 20;
    {
      cs::Table t("fact");
      std::vector<int32_t> x(n), g(n), fk1(n), fk2(n);
      for (uint64_t i = 0; i < n; ++i) {
        x[i] = static_cast<int32_t>(rng.Below(1000));
        g[i] = static_cast<int32_t>(rng.Below(7));
        fk1[i] = static_cast<int32_t>(1 + rng.Below(d1));  // fk_base 1
        fk2[i] = static_cast<int32_t>(rng.Below(d2));      // fk_base 0
      }
      AddI32(&t, "x", x);
      AddI32(&t, "g", g);
      AddI32(&t, "fk1", fk1);
      AddI32(&t, "fk2", fk2);
      db.AddTable(std::move(t));
    }
    {
      cs::Table t("dim1");
      std::vector<int32_t> c1(d1);
      for (uint64_t i = 0; i < d1; ++i) {
        c1[i] = static_cast<int32_t>(rng.Below(50));
      }
      AddI32(&t, "c1", c1);
      db.AddTable(std::move(t));
    }
    {
      cs::Table t("dim2");
      std::vector<int32_t> c2(d2);
      for (uint64_t i = 0; i < d2; ++i) {
        c2[i] = static_cast<int32_t>(rng.Below(20));
      }
      AddI32(&t, "c2", c2);
      db.AddTable(std::move(t));
    }
    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    auto decompose = [this](const char* table,
                            std::vector<bwd::DecomposeRequest> reqs) {
      return std::make_unique<bwd::BwdTable>(std::move(
          bwd::BwdTable::Decompose(db.table(table), std::move(reqs),
                                   dev.get())
              .value()));
    };
    // x deliberately half-resident: the multi-join Phase A stays
    // approximate while the join keys stay exact.
    fact = decompose("fact", {{"x", 16, bwd::Compression::kBitPacked},
                              {"g", 32, bwd::Compression::kBitPacked},
                              {"fk1", 32, bwd::Compression::kBitPacked},
                              {"fk2", 32, bwd::Compression::kBitPacked}});
    dim1 = decompose("dim1", {{"c1", 32, bwd::Compression::kBitPacked}});
    dim2 = decompose("dim2", {{"c2", 32, bwd::Compression::kBitPacked}});
    dims = {{"dim1", dim1.get()}, {"dim2", dim2.get()}};
  }
};

/// Shared terminal shape for the order-invariance plans: group by g,
/// sum(x), count(*), sum(c1·c2) with hops as given.
GroupAggNode MakeGroupAgg(uint32_t c1_hop, uint32_t c2_hop) {
  GroupAggNode ga;
  ga.group_by = {ColumnRef{"g", 0}};
  PlanAggregate sum_x;
  sum_x.func = AggFunc::kSum;
  sum_x.terms = {PlanTerm{ColumnRef{"x", 0}, 0, +1}};
  sum_x.label = "sum_x";
  PlanAggregate cnt;
  cnt.func = AggFunc::kCount;
  cnt.label = "n";
  PlanAggregate prod;
  prod.func = AggFunc::kSum;
  prod.terms = {PlanTerm{ColumnRef{"c1", c1_hop}, 0, +1},
                PlanTerm{ColumnRef{"c2", c2_hop}, 0, +1}};
  prod.label = "sum_c1c2";
  ga.aggregates = {std::move(sum_x), std::move(cnt), std::move(prod)};
  return ga;
}

TEST(PlanIdentityComposability, FkJoinOrderInvariance) {
  MultiJoinFixture f;
  // Order A: dim1 is hop 1, dim2 hop 2. Order B: swapped. Filters and
  // group/aggregate refs are renumbered accordingly — the *relation* is
  // the same, so the final sorted results must match exactly.
  PhysicalPlan a;
  a.scan = {"fact"};
  a.ops = {FilterNode{0, "x", cs::RangePred::Lt(600)},
           FkJoinNode{0, "fk1", "dim1", 1},
           FilterNode{1, "c1", cs::RangePred::Lt(40)},
           FkJoinNode{0, "fk2", "dim2", 0},
           FilterNode{2, "c2", cs::RangePred::Ge(3)}};
  a.group_agg = MakeGroupAgg(/*c1_hop=*/1, /*c2_hop=*/2);

  PhysicalPlan b;
  b.scan = {"fact"};
  b.ops = {FkJoinNode{0, "fk2", "dim2", 0},
           FilterNode{1, "c2", cs::RangePred::Ge(3)},
           FkJoinNode{0, "fk1", "dim1", 1},
           FilterNode{2, "c1", cs::RangePred::Lt(40)},
           FilterNode{0, "x", cs::RangePred::Lt(600)}};
  b.group_agg = MakeGroupAgg(/*c1_hop=*/2, /*c2_hop=*/1);

  auto classic_a = ExecutePlanClassic(a, f.db);
  ASSERT_TRUE(classic_a.ok()) << classic_a.status().ToString();
  auto classic_b = ExecutePlanClassic(b, f.db);
  ASSERT_TRUE(classic_b.ok()) << classic_b.status().ToString();
  EXPECT_EQ(*classic_a, *classic_b);
  ASSERT_GT(classic_a->num_groups(), 0u);

  // The A&R general path refines to the same relation from either order
  // (the translucent candidate discipline composes across joins).
  for (const PhysicalPlan* plan : {&a, &b}) {
    auto ar = ExecutePlanAr(*plan, *f.fact, f.dims, f.dev.get());
    ASSERT_TRUE(ar.ok()) << ar.status().ToString();
    EXPECT_EQ(ar->result, *classic_a);
    EXPECT_GE(ar->num_candidates, ar->result.selected_rows);
  }
  device::ResidencyCache cache(f.dev.get());
  auto streaming = ExecutePlanStreaming(a, f.db, f.dev.get(), &cache);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  EXPECT_EQ(streaming->result, *classic_a);
}

TEST(PlanIdentityComposability, ThetaJoinCommutesWithFiltersAndJoins) {
  MultiJoinFixture f;
  // EXISTS(x < some dim1.c1) is a pure row filter: it commutes with hop-0
  // filters and with the fk join to dim2 (which introduces hop 1 in every
  // ordering here, so no renumbering).
  const ThetaJoinNode theta{0, "x", "dim1", "c1", ThetaOp::kLess, 0};
  const FilterNode fx{0, "x", cs::RangePred::Ge(10)};
  const FkJoinNode j2{0, "fk2", "dim2", 0};
  const FilterNode fc2{1, "c2", cs::RangePred::Lt(15)};

  std::vector<std::vector<PlanOp>> orderings = {
      {fx, theta, j2, fc2},
      {theta, fx, j2, fc2},
      {j2, fc2, fx, theta},
  };
  GroupAggNode ga = MakeGroupAgg(0, 1);
  ga.aggregates.pop_back();  // drop sum_c1c2: dim1 is never a hop here

  std::optional<QueryResult> expected;
  for (auto& ops : orderings) {
    PhysicalPlan plan;
    plan.scan = {"fact"};
    plan.ops = std::move(ops);
    plan.group_agg = ga;
    auto classic = ExecutePlanClassic(plan, f.db);
    ASSERT_TRUE(classic.ok()) << classic.status().ToString();
    if (!expected) {
      expected = *classic;
      ASSERT_GT(expected->num_groups(), 0u);
      ASSERT_GT(expected->selected_rows, 0u);
    } else {
      EXPECT_EQ(*classic, *expected);
    }
    auto ar = ExecutePlanAr(plan, *f.fact, f.dims, f.dev.get());
    ASSERT_TRUE(ar.ok()) << ar.status().ToString();
    EXPECT_EQ(ar->result, *expected);
  }
}

TEST(PlanIdentityValidation, SpecUnknownColumnIsInvalidArgument) {
  MultiJoinFixture f;
  QuerySpec q;
  q.table = "fact";
  q.predicates.push_back({"nope", cs::RangePred::All()});
  q.aggregates = {Aggregate::CountStar("n")};
  const Status status = ValidateQuerySpec(q, f.db);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("nope"), std::string::npos);

  QuerySpec bad_table = q;
  bad_table.table = "ghost";
  bad_table.predicates.clear();
  EXPECT_EQ(ValidateQuerySpec(bad_table, f.db).code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanIdentityValidation, PlanUnknownHopIsInvalidArgument) {
  MultiJoinFixture f;
  PhysicalPlan plan;
  plan.scan = {"fact"};
  plan.ops = {FkJoinNode{0, "fk1", "dim1", 1}};
  plan.group_agg.group_by = {ColumnRef{"c1", 3}};  // only hops 0..1 exist
  PlanAggregate cnt;
  cnt.func = AggFunc::kCount;
  cnt.label = "n";
  plan.group_agg.aggregates = {cnt};
  const Status status = ValidatePlan(plan, f.db);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("has not joined"), std::string::npos);
}

TEST(PlanIdentityValidation, GeneralPathPropagatesUnknownColumn) {
  MultiJoinFixture f;
  // Two joins force the general executor; the bad hop-2 filter column must
  // surface as InvalidArgument from validation, not an assert inside it.
  PhysicalPlan plan;
  plan.scan = {"fact"};
  plan.ops = {FkJoinNode{0, "fk1", "dim1", 1},
              FkJoinNode{0, "fk2", "dim2", 0},
              FilterNode{2, "missing", cs::RangePred::All()}};
  plan.group_agg = MakeGroupAgg(1, 2);
  auto classic = ExecutePlanClassic(plan, f.db);
  EXPECT_EQ(classic.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(classic.status().ToString().find("missing"), std::string::npos);
  device::ResidencyCache cache(f.dev.get());
  auto streaming = ExecutePlanStreaming(plan, f.db, f.dev.get(), &cache);
  EXPECT_EQ(streaming.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanIdentityValidation, ArGeneralRequiresDecomposedSideTables) {
  MultiJoinFixture f;
  PhysicalPlan plan;
  plan.scan = {"fact"};
  plan.ops = {FkJoinNode{0, "fk1", "dim1", 1},
              FkJoinNode{0, "fk2", "dim2", 0}};
  plan.group_agg = MakeGroupAgg(1, 2);
  // No decomposed dim2 in the map: fails up front, names the table.
  const BwdTableMap partial = {{"dim1", f.dim1.get()}};
  auto exec = ExecutePlanAr(plan, *f.fact, partial, f.dev.get());
  EXPECT_EQ(exec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(exec.status().ToString().find("dim2"), std::string::npos);
}

TEST(PlanIdentityValidation, ArGeneralMinMaxUnsupported) {
  MultiJoinFixture f;
  PhysicalPlan plan;
  plan.scan = {"fact"};
  plan.ops = {FkJoinNode{0, "fk1", "dim1", 1},
              FkJoinNode{0, "fk2", "dim2", 0}};
  plan.group_agg = MakeGroupAgg(1, 2);
  PlanAggregate mn;
  mn.func = AggFunc::kMin;
  mn.terms = {PlanTerm{ColumnRef{"x", 0}, 0, +1}};
  mn.label = "min_x";
  plan.group_agg.aggregates.push_back(std::move(mn));
  auto exec = ExecutePlanAr(plan, *f.fact, f.dims, f.dev.get());
  EXPECT_EQ(exec.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace wastenot::core
