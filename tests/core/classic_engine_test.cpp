#include "core/classic_engine.h"

#include <gtest/gtest.h>

namespace wastenot::core {
namespace {

cs::Database SmallDb() {
  cs::Database db;
  cs::Table fact("fact");
  // rows:        0   1   2   3   4   5
  auto add = [&fact](const char* name, std::vector<int32_t> v) {
    cs::Column col = cs::Column::FromI32(v);
    col.ComputeStats();
    (void)fact.AddColumn(name, std::move(col));
  };
  add("a", {5, 1, 8, 3, 9, 2});
  add("g", {0, 1, 0, 1, 0, 1});
  add("v", {10, 20, 30, 40, 50, 60});
  add("fk", {1, 2, 1, 3, 2, 1});
  db.AddTable(std::move(fact));

  cs::Table dim("dim");
  auto addd = [&dim](const char* name, std::vector<int32_t> v) {
    cs::Column col = cs::Column::FromI32(v);
    col.ComputeStats();
    (void)dim.AddColumn(name, std::move(col));
  };
  addd("t", {7, 8, 9});   // dim oid 0,1,2 <-> fk 1,2,3
  addd("w", {2, 3, 4});
  db.AddTable(std::move(dim));
  return db;
}

TEST(ClassicEngineTest, GlobalCount) {
  cs::Database db = SmallDb();
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Ge(5)}};
  q.aggregates = {Aggregate::CountStar("n")};
  auto result = ExecuteClassic(q, db);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_groups(), 1u);
  EXPECT_EQ(result->agg_values[0][0], 3);  // a in {5,8,9}
  EXPECT_EQ(result->selected_rows, 3u);
}

TEST(ClassicEngineTest, GroupedSumAndCount) {
  cs::Database db = SmallDb();
  QuerySpec q;
  q.table = "fact";
  q.group_by = {"g"};
  q.aggregates = {Aggregate::SumOf("v", "sum_v"),
                  Aggregate::CountStar("n")};
  auto result = ExecuteClassic(q, db);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_groups(), 2u);
  // Canonical order: g=0 then g=1.
  EXPECT_EQ(result->group_keys[0], (std::vector<int64_t>{0}));
  EXPECT_EQ(result->agg_values[0][0], 10 + 30 + 50);
  EXPECT_EQ(result->agg_values[0][1], 3);
  EXPECT_EQ(result->agg_values[1][0], 20 + 40 + 60);
}

TEST(ClassicEngineTest, ProductAggregate) {
  cs::Database db = SmallDb();
  QuerySpec q;
  q.table = "fact";
  Aggregate prod;
  prod.func = AggFunc::kSum;
  prod.terms = {Term::Col("v"), Term::OneMinus("g", 1)};  // v * (1 - g)
  prod.label = "s";
  q.aggregates = {prod};
  auto result = ExecuteClassic(q, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->agg_values[0][0], 10 + 30 + 50);  // g=1 rows vanish
}

TEST(ClassicEngineTest, MinMax) {
  cs::Database db = SmallDb();
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Le(5)}};
  Aggregate mn, mx;
  mn.func = AggFunc::kMin;
  mn.terms = {Term::Col("v")};
  mn.label = "min_v";
  mx.func = AggFunc::kMax;
  mx.terms = {Term::Col("v")};
  mx.label = "max_v";
  q.aggregates = {mn, mx};
  auto result = ExecuteClassic(q, db);
  ASSERT_TRUE(result.ok());
  // Rows with a<=5: {0,1,3,5} -> v in {10,20,40,60}.
  EXPECT_EQ(result->agg_values[0][0], 10);
  EXPECT_EQ(result->agg_values[0][1], 60);
}

TEST(ClassicEngineTest, JoinWithFilterAggregate) {
  cs::Database db = SmallDb();
  QuerySpec q;
  q.table = "fact";
  q.join = JoinSpec{"fk", "dim", /*fk_base=*/1};
  Aggregate filtered;
  filtered.func = AggFunc::kSum;
  filtered.terms = {Term::Col("v")};
  filtered.filter = CaseFilter{"t", cs::RangePred::Eq(7)};  // dim rows fk=1
  filtered.label = "s";
  q.aggregates = {filtered, Aggregate::SumOf("v", "total")};
  auto result = ExecuteClassic(q, db);
  ASSERT_TRUE(result.ok());
  // fk=1 rows: {0, 2, 5} -> v {10, 30, 60}.
  EXPECT_EQ(result->agg_values[0][0], 100);
  EXPECT_EQ(result->agg_values[0][1], 210);
}

TEST(ClassicEngineTest, DimensionTerm) {
  cs::Database db = SmallDb();
  QuerySpec q;
  q.table = "fact";
  q.join = JoinSpec{"fk", "dim", 1};
  Aggregate s;
  s.func = AggFunc::kSum;
  Term dim_term = Term::Col("w");
  dim_term.from_dimension = true;
  s.terms = {Term::Col("v"), dim_term};
  s.label = "vw";
  q.aggregates = {s};
  auto result = ExecuteClassic(q, db);
  ASSERT_TRUE(result.ok());
  // v*w by row: 10*2 + 20*3 + 30*2 + 40*4 + 50*3 + 60*2 = 570.
  EXPECT_EQ(result->agg_values[0][0], 570);
}

TEST(ClassicEngineTest, AvgKeepsSumAndCount) {
  cs::Database db = SmallDb();
  QuerySpec q;
  q.table = "fact";
  Aggregate avg;
  avg.func = AggFunc::kAvg;
  avg.terms = {Term::Col("v")};
  avg.label = "avg_v";
  q.aggregates = {avg};
  auto result = ExecuteClassic(q, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->agg_values[0][0], 210);  // the sum; count divides
  EXPECT_EQ(result->group_counts[0], 6);
}

TEST(ClassicEngineTest, MissingTableFails) {
  cs::Database db = SmallDb();
  QuerySpec q;
  q.table = "nope";
  EXPECT_EQ(ExecuteClassic(q, db).status().code(), StatusCode::kNotFound);
}

TEST(ClassicEngineTest, EmptyResultGroupedQuery) {
  cs::Database db = SmallDb();
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Ge(1000)}};
  q.group_by = {"g"};
  q.aggregates = {Aggregate::CountStar("n")};
  auto result = ExecuteClassic(q, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 0u);
}

}  // namespace
}  // namespace wastenot::core
