#include "core/clustered_column.h"

#include <algorithm>
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::core {
namespace {

struct ClusteredFixture {
  std::unique_ptr<device::Device> dev;
  cs::Column base;
  ClusteredBwdColumn col;

  ClusteredFixture(uint64_t n, int64_t lo, int64_t hi, uint32_t device_bits,
                   uint64_t seed) {
    device::DeviceSpec spec;
    spec.memory_capacity = 64 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    Xoshiro256 rng(seed);
    std::vector<int32_t> v(n);
    for (auto& x : v) {
      x = static_cast<int32_t>(
          lo + static_cast<int64_t>(
                   rng.Below(static_cast<uint64_t>(hi - lo + 1))));
    }
    base = cs::Column::FromI32(v);
    base.ComputeStats();
    col = std::move(ClusteredBwdColumn::Cluster(base, device_bits, dev.get()))
              .value();
  }

  cs::OidVec Oracle(const cs::RangePred& pred) const {
    cs::OidVec out;
    for (uint64_t i = 0; i < base.size(); ++i) {
      if (pred.Contains(base.Get(i))) out.push_back(static_cast<cs::oid_t>(i));
    }
    return out;
  }
};

TEST(ClusteredColumnTest, ClusteringPreservesTheMultiset) {
  ClusteredFixture f(5000, -100, 5000, 32 - 6, 1);
  std::multiset<int64_t> original, clustered;
  for (uint64_t i = 0; i < f.base.size(); ++i) {
    original.insert(f.base.Get(i));
    clustered.insert(f.col.ReconstructAt(i));
  }
  EXPECT_EQ(original, clustered);
  // The row map reconstructs original positions exactly.
  for (uint64_t pos = 0; pos < f.col.size(); ++pos) {
    ASSERT_EQ(f.col.ReconstructAt(pos), f.base.Get(f.col.RowAt(pos)));
  }
}

TEST(ClusteredColumnTest, OffsetsTableIsTheWholeDeviceFootprint) {
  ClusteredFixture f(100000, 0, (1 << 16) - 1, 32 - 8, 2);
  // 8 residual bits on 16-bit values -> 256 clusters: the device holds
  // (256+1) uint64 offsets instead of 100k packed digits.
  EXPECT_EQ(f.col.num_clusters(), 256u);
  EXPECT_LE(f.col.device_bytes(), (256 + 1) * sizeof(uint64_t) + 64);
  // Versus the unclustered approximation: 100k * 8 bits = 100 KB.
  auto unclustered =
      bwd::BwdColumn::Decompose(f.base, 32 - 8, f.dev.get());
  ASSERT_TRUE(unclustered.ok());
  EXPECT_GT(unclustered->device_bytes(), 40 * f.col.device_bytes());
}

struct ClusteredCase {
  uint32_t device_bits;
  int64_t lo, hi;
};

class ClusteredSelectSweep : public ::testing::TestWithParam<ClusteredCase> {};

TEST_P(ClusteredSelectSweep, RefinedSelectionMatchesOracle) {
  const ClusteredCase& c = GetParam();
  ClusteredFixture f(20000, 0, (1 << 14) - 1, c.device_bits,
                     c.device_bits * 31 + 1);
  const cs::RangePred pred{c.lo, c.hi};
  auto sel = f.col.SelectApproximate(pred, f.dev.get());
  cs::OidVec refined = f.col.SelectRefine(sel, pred);
  cs::OidVec oracle = f.Oracle(pred);
  std::sort(refined.begin(), refined.end());
  EXPECT_EQ(refined, oracle);
  EXPECT_GE(sel.size(), oracle.size()) << "candidates form a superset";
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndRanges, ClusteredSelectSweep,
    ::testing::Values(ClusteredCase{32 - 4, 100, 900},
                      ClusteredCase{32 - 8, 100, 900},
                      ClusteredCase{32 - 8, 0, (1 << 14) - 1},
                      ClusteredCase{32 - 10, 8000, 8100},
                      ClusteredCase{32 - 10, 5, 5},
                      ClusteredCase{32 - 6, -50, 3},
                      ClusteredCase{32 - 6, 20000, 30000}));

TEST(ClusteredColumnTest, BoundaryOnlyRefinement) {
  // At 8 residual bits, at most 2 * 256-ish rows of residual work per
  // query, regardless of how many rows qualify.
  ClusteredFixture f(50000, 0, (1 << 12) - 1, 32 - 8, 3);
  const cs::RangePred pred = cs::RangePred::Between(100, 3000);
  auto sel = f.col.SelectApproximate(pred, f.dev.get());
  const uint64_t uncertain = sel.size() - sel.num_certain();
  // Two boundary clusters, each ~ n / #digits rows.
  const uint64_t cluster_rows = 50000 / f.col.num_clusters();
  EXPECT_LE(uncertain, 4 * cluster_rows + 64);
  EXPECT_GT(sel.num_certain(), 0u);
}

TEST(ClusteredColumnTest, EmptyAndFullPredicates) {
  ClusteredFixture f(1000, 0, 999, 32 - 5, 4);
  auto none = f.col.SelectApproximate(cs::RangePred{10, 5}, f.dev.get());
  EXPECT_EQ(none.size(), 0u);
  EXPECT_TRUE(f.col.SelectRefine(none, cs::RangePred{10, 5}).empty());

  auto all = f.col.SelectApproximate(cs::RangePred::All(), f.dev.get());
  EXPECT_EQ(all.size(), 1000u);
  EXPECT_EQ(f.col.SelectRefine(all, cs::RangePred::All()).size(), 1000u);
}

TEST(ClusteredColumnTest, RejectsUnboundedDigitDomains) {
  // 28+ approximation bits would need a gigantic offsets table.
  device::DeviceSpec spec;
  spec.memory_capacity = 64 << 20;
  device::Device dev(spec, 1);
  cs::Column wide = cs::Column::FromI32({0, 1 << 30});
  wide.ComputeStats();
  auto col = ClusteredBwdColumn::Cluster(wide, 32, &dev);
  EXPECT_FALSE(col.ok());
  EXPECT_TRUE(col.status().IsUnsupported());
}

TEST(ClusteredColumnTest, SelectionChargesLogarithmicDeviceWork) {
  // Enough rows that the packed scan clearly exceeds the fixed launch
  // overhead (the clustered binary search stays at the launch floor).
  ClusteredFixture f(2'000'000, 0, (1 << 12) - 1, 32 - 8, 5);
  auto unclustered = bwd::BwdColumn::Decompose(f.base, 32 - 8, f.dev.get());
  ASSERT_TRUE(unclustered.ok());
  const cs::RangePred pred = cs::RangePred::Between(500, 600);

  // JIT warm-up for both kernels, then compare marginal charges.
  (void)f.col.SelectApproximate(pred, f.dev.get());
  (void)SelectApproximate(*unclustered, pred, f.dev.get());

  const double d0 = f.dev->clock().device_seconds();
  (void)f.col.SelectApproximate(pred, f.dev.get());
  const double clustered_cost = f.dev->clock().device_seconds() - d0;
  (void)SelectApproximate(*unclustered, pred, f.dev.get());
  const double scan_cost =
      f.dev->clock().device_seconds() - d0 - clustered_cost;
  EXPECT_LT(clustered_cost * 3, scan_cost)
      << "binary search must be far cheaper than the packed scan";
}

}  // namespace
}  // namespace wastenot::core
