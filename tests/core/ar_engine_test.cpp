#include "core/ar_engine.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/classic_engine.h"
#include "util/random.h"

namespace wastenot::core {
namespace {

/// A random star-schema database plus its decomposed mirror.
struct EngineFixture {
  cs::Database db;
  std::unique_ptr<device::Device> dev;
  std::unique_ptr<bwd::BwdTable> fact;
  std::unique_ptr<bwd::BwdTable> dim;

  EngineFixture(uint64_t n, uint64_t seed, uint32_t a_bits, uint32_t b_bits,
                uint32_t g_bits, uint32_t v_bits) {
    Xoshiro256 rng(seed);
    const uint64_t dim_rows = 64;
    {
      cs::Table fact_t("fact");
      std::vector<int32_t> a(n), b(n), g(n), v(n), fk(n);
      for (uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(rng.Below(1 << 14));
        b[i] = static_cast<int32_t>(rng.Below(1 << 12));
        g[i] = static_cast<int32_t>(rng.Below(7));
        v[i] = static_cast<int32_t>(rng.Below(1000));
        fk[i] = static_cast<int32_t>(1 + rng.Below(dim_rows));
      }
      auto add = [&fact_t](const char* name, std::vector<int32_t>& vals) {
        cs::Column col = cs::Column::FromI32(vals);
        col.ComputeStats();
        (void)fact_t.AddColumn(name, std::move(col));
      };
      add("a", a);
      add("b", b);
      add("g", g);
      add("v", v);
      add("fk", fk);
      db.AddTable(std::move(fact_t));
    }
    {
      cs::Table dim_t("dim");
      std::vector<int32_t> t(dim_rows), w(dim_rows);
      for (uint64_t i = 0; i < dim_rows; ++i) {
        t[i] = static_cast<int32_t>(rng.Below(16));
        w[i] = static_cast<int32_t>(rng.Below(30));
      }
      auto add = [&dim_t](const char* name, std::vector<int32_t>& vals) {
        cs::Column col = cs::Column::FromI32(vals);
        col.ComputeStats();
        (void)dim_t.AddColumn(name, std::move(col));
      };
      add("t", t);
      add("w", w);
      db.AddTable(std::move(dim_t));
    }

    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    fact = std::make_unique<bwd::BwdTable>(
        std::move(bwd::BwdTable::Decompose(
                      db.table("fact"),
                      {{"a", a_bits, bwd::Compression::kBitPacked},
                       {"b", b_bits, bwd::Compression::kBitPacked},
                       {"g", g_bits, bwd::Compression::kBitPacked},
                       {"v", v_bits, bwd::Compression::kBitPacked},
                       {"fk", 32, bwd::Compression::kBitPacked}},
                      dev.get()))
            .value());
    dim = std::make_unique<bwd::BwdTable>(
        std::move(bwd::BwdTable::Decompose(
                      db.table("dim"),
                      {{"t", 32, bwd::Compression::kBitPacked},
                       {"w", 32, bwd::Compression::kBitPacked}},
                      dev.get()))
            .value());
  }

  void ExpectEnginesAgree(const QuerySpec& q, const ArOptions& opts = {}) {
    auto classic = ExecuteClassic(q, db);
    ASSERT_TRUE(classic.ok()) << classic.status().ToString();
    auto ar = ExecuteAr(q, *fact, dim.get(), dev.get(), opts);
    ASSERT_TRUE(ar.ok()) << ar.status().ToString();
    EXPECT_EQ(ar->result, *classic) << "A&R result differs from classic";
    // The approximate answer must bracket the exact one.
    CheckApproxBrackets(*classic, ar->approx, q);
  }

  static void CheckApproxBrackets(const QueryResult& exact,
                                  const ApproximateAnswer& approx,
                                  const QuerySpec& q) {
    EXPECT_GE(approx.row_count.hi,
              static_cast<int64_t>(exact.selected_rows));
    EXPECT_LE(approx.row_count.lo,
              static_cast<int64_t>(exact.selected_rows));
    // Every exact group's keys lie within some pre-group's key bounds
    // (pre-groups may merge residual-neighboring exact groups, so counts
    // need not match).
    for (uint64_t ge = 0; ge < exact.num_groups(); ++ge) {
      bool found = false;
      for (uint64_t ga = 0; ga < approx.num_groups() && !found; ++ga) {
        bool keys_match = true;
        for (uint64_t k = 0; k < exact.group_keys[ge].size(); ++k) {
          keys_match &=
              approx.key_bounds[ga][k].Contains(exact.group_keys[ge][k]);
        }
        found = keys_match;
      }
      EXPECT_TRUE(found) << "exact group " << ge
                         << " not covered by any approximate group";
    }
    // With a 1:1 group correspondence, non-avg aggregate bounds must
    // contain the exact values (digit intervals are disjoint, so the
    // matching pre-group is unique).
    if (approx.num_groups() != exact.num_groups()) return;
    for (uint64_t ge = 0; ge < exact.num_groups(); ++ge) {
      for (uint64_t ga = 0; ga < approx.num_groups(); ++ga) {
        bool keys_match = true;
        for (uint64_t k = 0; k < exact.group_keys[ge].size(); ++k) {
          keys_match &=
              approx.key_bounds[ga][k].Contains(exact.group_keys[ge][k]);
        }
        if (!keys_match) continue;
        for (uint64_t a = 0; a < q.aggregates.size(); ++a) {
          if (q.aggregates[a].func == AggFunc::kAvg) continue;
          EXPECT_TRUE(
              approx.agg_bounds[ga][a].Contains(exact.agg_values[ge][a]))
              << "group " << ge << " agg " << a << ": exact "
              << exact.agg_values[ge][a] << " not in "
              << approx.agg_bounds[ga][a].ToString();
        }
      }
    }
  }
};

struct BitsCase {
  uint32_t a_bits, b_bits, g_bits, v_bits;
};

class ArEngineSweep : public ::testing::TestWithParam<BitsCase> {};

TEST_P(ArEngineSweep, SelectSumCount) {
  const BitsCase& c = GetParam();
  EngineFixture f(20000, c.a_bits * 1000 + c.v_bits, c.a_bits, c.b_bits,
                  c.g_bits, c.v_bits);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Le(4000)},
                  {"b", cs::RangePred::Ge(1024)}};
  q.aggregates = {Aggregate::SumOf("v", "sum_v"),
                  Aggregate::CountStar("n")};
  f.ExpectEnginesAgree(q);
}

TEST_P(ArEngineSweep, GroupedProductAggregate) {
  const BitsCase& c = GetParam();
  EngineFixture f(15000, c.a_bits * 77 + 5, c.a_bits, c.b_bits, c.g_bits,
                  c.v_bits);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Between(1000, 9000)}};
  q.group_by = {"g"};
  Aggregate prod;
  prod.func = AggFunc::kSum;
  prod.terms = {Term::Col("v"), Term::OneMinus("b", 5000)};
  prod.label = "s";
  q.aggregates = {prod, Aggregate::CountStar("n")};
  f.ExpectEnginesAgree(q);
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, ArEngineSweep,
    ::testing::Values(BitsCase{32, 32, 32, 32},    // all resident (fast path)
                      BitsCase{24, 32, 32, 32},    // selection refinement
                      BitsCase{24, 26, 32, 32},    // two refined conjuncts
                      BitsCase{24, 26, 30, 32},    // + group residual
                      BitsCase{24, 26, 30, 26},    // + value residual
                      BitsCase{20, 22, 31, 24}));  // aggressive residuals

TEST(ArEngineTest, JoinFilterAggregate) {
  EngineFixture f(10000, 42, 26, 32, 32, 28);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Le(5000)}};
  q.join = JoinSpec{"fk", "dim", 1};
  Aggregate promo;
  promo.func = AggFunc::kSum;
  promo.terms = {Term::Col("v")};
  promo.filter = CaseFilter{"t", cs::RangePred::Between(4, 9)};
  promo.label = "filtered";
  q.aggregates = {promo, Aggregate::SumOf("v", "total")};
  f.ExpectEnginesAgree(q);
}

TEST(ArEngineTest, MinMaxAggregates) {
  EngineFixture f(8000, 43, 24, 32, 32, 24);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Between(2000, 2600)}};
  Aggregate mn, mx;
  mn.func = AggFunc::kMin;
  mn.terms = {Term::Col("v")};
  mn.label = "min_v";
  mx.func = AggFunc::kMax;
  mx.terms = {Term::Col("v")};
  mx.label = "max_v";
  QuerySpec q2 = q;
  q.aggregates = {mn};
  q2.aggregates = {mx};
  f.ExpectEnginesAgree(q);
  f.ExpectEnginesAgree(q2);
}

TEST(ArEngineTest, PushdownOffStillCorrect) {
  EngineFixture f(12000, 44, 24, 26, 32, 32);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::All()},  // non-selective first
                  {"b", cs::RangePred::Le(64)}};
  q.aggregates = {Aggregate::CountStar("n")};
  ArOptions opts;
  opts.pushdown = false;
  f.ExpectEnginesAgree(q, opts);
  opts.pushdown = true;
  f.ExpectEnginesAgree(q, opts);
}

TEST(ArEngineTest, SkipExactRefinementOffStillCorrect) {
  EngineFixture f(9000, 45, 32, 32, 32, 32);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Le(2000)}};
  q.group_by = {"g"};
  q.aggregates = {Aggregate::SumOf("v", "s"), Aggregate::CountStar("n")};
  ArOptions opts;
  opts.skip_exact_refinement = false;
  f.ExpectEnginesAgree(q, opts);
}

TEST(ArEngineTest, AllResidentApproxAnswerIsExact) {
  EngineFixture f(5000, 46, 32, 32, 32, 32);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Le(3000)}};
  q.aggregates = {Aggregate::SumOf("v", "s")};
  auto ar = ExecuteAr(q, *f.fact, f.dim.get(), f.dev.get());
  ASSERT_TRUE(ar.ok());
  EXPECT_TRUE(ar->approx.exact())
      << "with every bit resident the approximation is the exact answer";
  EXPECT_EQ(ar->num_candidates, ar->num_refined);
}

TEST(ArEngineTest, DecomposedApproxAnswerHasWidth) {
  EngineFixture f(5000, 47, 22, 32, 32, 22);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Le(3000)}};
  q.aggregates = {Aggregate::SumOf("v", "s")};
  auto ar = ExecuteAr(q, *f.fact, f.dim.get(), f.dev.get());
  ASSERT_TRUE(ar.ok());
  EXPECT_FALSE(ar->approx.exact());
  EXPECT_GE(ar->num_candidates, ar->num_refined);
}

TEST(ArEngineTest, BreakdownPhasesPopulated) {
  EngineFixture f(20000, 48, 24, 32, 32, 24);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Le(4000)}};
  q.aggregates = {Aggregate::SumOf("v", "s")};
  auto ar = ExecuteAr(q, *f.fact, f.dim.get(), f.dev.get());
  ASSERT_TRUE(ar.ok());
  EXPECT_GT(ar->breakdown.device_seconds, 0.0);
  EXPECT_GT(ar->breakdown.bus_seconds, 0.0);
  EXPECT_GT(ar->breakdown.host_seconds, 0.0);
}

TEST(ArEngineTest, PlanTextShowsOperatorPairs) {
  EngineFixture f(2000, 49, 24, 32, 30, 32);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Le(1000)}};
  q.group_by = {"g"};
  q.aggregates = {Aggregate::SumOf("v", "s")};
  auto ar = ExecuteAr(q, *f.fact, f.dim.get(), f.dev.get());
  ASSERT_TRUE(ar.ok());
  EXPECT_NE(ar->plan_text.find("uselectapproximate"), std::string::npos);
  EXPECT_NE(ar->plan_text.find("uselectrefine"), std::string::npos);
  EXPECT_NE(ar->plan_text.find("groupapproximate"), std::string::npos);
  EXPECT_NE(ar->plan_text.find("approximate subplan"), std::string::npos);
}

TEST(ArEngineTest, ErrorsOnMissingColumns) {
  EngineFixture f(100, 50, 32, 32, 32, 32);
  QuerySpec q;
  q.table = "fact";
  q.predicates = {{"nope", cs::RangePred::All()}};
  auto ar = ExecuteAr(q, *f.fact, f.dim.get(), f.dev.get());
  EXPECT_EQ(ar.status().code(), StatusCode::kNotFound);
}

TEST(ArEngineTest, NoPredicatesAggregatesWholeTable) {
  EngineFixture f(3000, 51, 32, 32, 32, 30);
  QuerySpec q;
  q.table = "fact";
  q.group_by = {"g"};
  q.aggregates = {Aggregate::SumOf("v", "s"), Aggregate::CountStar("n")};
  f.ExpectEnginesAgree(q);
}

}  // namespace
}  // namespace wastenot::core
