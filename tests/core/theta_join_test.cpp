#include "core/theta_join.h"

#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::core {
namespace {

struct ThetaFixture {
  std::unique_ptr<device::Device> dev;
  cs::Column left_base, right_base;
  bwd::BwdColumn left, right;

  ThetaFixture(uint64_t nl, uint64_t nr, uint32_t bits_l, uint32_t bits_r,
               uint64_t seed) {
    device::DeviceSpec spec;
    spec.memory_capacity = 64 << 20;
    dev = std::make_unique<device::Device>(spec, 4);
    Xoshiro256 rng(seed);
    std::vector<int32_t> l(nl), r(nr);
    for (auto& v : l) v = static_cast<int32_t>(rng.Below(1 << 10));
    for (auto& v : r) v = static_cast<int32_t>(rng.Below(1 << 10));
    left_base = cs::Column::FromI32(l);
    left_base.ComputeStats();
    right_base = cs::Column::FromI32(r);
    right_base.ComputeStats();
    left = std::move(bwd::BwdColumn::Decompose(left_base, bits_l, dev.get()))
               .value();
    right =
        std::move(bwd::BwdColumn::Decompose(right_base, bits_r, dev.get()))
            .value();
  }
};

using Pair = std::pair<cs::oid_t, cs::oid_t>;

std::set<Pair> ToSet(const JoinedPairs& pairs) {
  std::set<Pair> out;
  for (uint64_t i = 0; i < pairs.size(); ++i) {
    out.emplace(pairs.left_ids[i], pairs.right_ids[i]);
  }
  return out;
}

struct ThetaCase {
  ThetaOp op;
  int64_t band;
  uint32_t bits_l;
  uint32_t bits_r;
};

class ThetaSweep : public ::testing::TestWithParam<ThetaCase> {};

TEST_P(ThetaSweep, SupersetAndRefineExact) {
  const ThetaCase& c = GetParam();
  ThetaFixture f(300, 200, c.bits_l, c.bits_r, c.bits_l * 100 + c.bits_r);

  PairCandidates cands =
      ThetaJoinApproximate(f.left, f.right, c.op, c.band, f.dev.get());
  JoinedPairs exact = ThetaJoinExact(f.left_base, f.right_base, c.op, c.band);

  // Superset invariant: every exact pair is among the candidates.
  std::set<Pair> cand_set;
  for (uint64_t i = 0; i < cands.size(); ++i) {
    cand_set.emplace(cands.left_ids[i], cands.right_ids[i]);
  }
  for (uint64_t i = 0; i < exact.size(); ++i) {
    ASSERT_TRUE(cand_set.count({exact.left_ids[i], exact.right_ids[i]}))
        << "missing exact pair";
  }

  // Refinement equals the oracle.
  JoinedPairs refined =
      ThetaJoinRefine(f.left, f.right, c.op, c.band, cands);
  EXPECT_EQ(ToSet(refined), ToSet(exact));
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndBits, ThetaSweep,
    ::testing::Values(ThetaCase{ThetaOp::kLess, 0, 32, 32},
                      ThetaCase{ThetaOp::kLess, 0, 26, 26},
                      ThetaCase{ThetaOp::kLessEqual, 0, 26, 28},
                      ThetaCase{ThetaOp::kBandWithin, 16, 26, 26},
                      ThetaCase{ThetaOp::kBandWithin, 0, 28, 28},
                      ThetaCase{ThetaOp::kBandWithin, 100, 24, 24}));

TEST(ThetaJoinTest, CertainPairsAreExactMatches) {
  ThetaFixture f(100, 100, 26, 26, 9);
  PairCandidates cands = ThetaJoinApproximate(f.left, f.right, ThetaOp::kLess,
                                              0, f.dev.get());
  for (uint64_t i = 0; i < cands.size(); ++i) {
    if (cands.certain[i]) {
      ASSERT_LT(f.left_base.Get(cands.left_ids[i]),
                f.right_base.Get(cands.right_ids[i]));
    }
  }
  EXPECT_EQ(static_cast<uint64_t>(
                std::count(cands.certain.begin(), cands.certain.end(), 1)),
            cands.num_certain);
}

TEST(ThetaJoinTest, EmptyInputs) {
  ThetaFixture f(0, 50, 32, 32, 10);
  PairCandidates cands = ThetaJoinApproximate(f.left, f.right, ThetaOp::kLess,
                                              0, f.dev.get());
  EXPECT_EQ(cands.size(), 0u);
}

TEST(ThetaJoinTest, FullyResidentHasNoFalsePositives) {
  ThetaFixture f(150, 150, 32, 32, 11);
  PairCandidates cands = ThetaJoinApproximate(
      f.left, f.right, ThetaOp::kBandWithin, 5, f.dev.get());
  JoinedPairs exact =
      ThetaJoinExact(f.left_base, f.right_base, ThetaOp::kBandWithin, 5);
  EXPECT_EQ(cands.size(), exact.size());
  EXPECT_EQ(cands.num_certain, cands.size());
}

}  // namespace
}  // namespace wastenot::core
