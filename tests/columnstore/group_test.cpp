#include "columnstore/group.h"

#include <map>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::cs {
namespace {

/// Checks a grouping is consistent with the oracle partition: two rows are
/// in the same group iff their key values are equal.
void CheckPartition(const GroupResult& g, const std::vector<int64_t>& keys) {
  ASSERT_EQ(g.group_ids.size(), keys.size());
  std::map<int64_t, uint32_t> value_to_group;
  std::map<uint32_t, int64_t> group_to_value;
  for (uint64_t i = 0; i < keys.size(); ++i) {
    auto [it, fresh] = value_to_group.emplace(keys[i], g.group_ids[i]);
    EXPECT_EQ(it->second, g.group_ids[i]) << "row " << i;
    auto [it2, fresh2] = group_to_value.emplace(g.group_ids[i], keys[i]);
    EXPECT_EQ(it2->second, keys[i]) << "row " << i;
  }
  EXPECT_EQ(value_to_group.size(), g.num_groups);
}

TEST(GroupTest, BasicGroups) {
  Column col = Column::FromI32({3, 1, 3, 2, 1});
  GroupResult g = GroupBy(col);
  EXPECT_EQ(g.num_groups, 3u);
  CheckPartition(g, {3, 1, 3, 2, 1});
  // First-occurrence order: 3 -> 0, 1 -> 1, 2 -> 2.
  EXPECT_EQ(g.group_ids, (std::vector<uint32_t>{0, 1, 0, 2, 1}));
  EXPECT_EQ(g.representatives, (std::vector<int64_t>{3, 1, 2}));
  EXPECT_EQ(g.first_row, (OidVec{0, 1, 3}));
}

TEST(GroupTest, GroupOnCandidates) {
  Column col = Column::FromI32({9, 8, 9, 7, 8, 9});
  GroupResult g = GroupBy(col, {0, 2, 3, 5});
  EXPECT_EQ(g.num_groups, 2u);  // values 9 and 7
  CheckPartition(g, {9, 9, 7, 9});
  EXPECT_EQ(g.first_row, (OidVec{0, 2}));  // positions within the subset
}

TEST(GroupTest, SubGroupSplitsGroups) {
  Column a = Column::FromI32({1, 1, 2, 2});
  GroupResult g1 = GroupBy(a);
  GroupResult g2 = SubGroup(g1, {10, 20, 10, 10});
  // Pairs: (1,10) (1,20) (2,10) (2,10) -> 3 groups.
  EXPECT_EQ(g2.num_groups, 3u);
  EXPECT_EQ(g2.group_ids[2], g2.group_ids[3]);
  EXPECT_NE(g2.group_ids[0], g2.group_ids[1]);
  EXPECT_NE(g2.group_ids[0], g2.group_ids[2]);
}

TEST(GroupTest, RandomizedPartitionProperty) {
  Xoshiro256 rng(5);
  std::vector<int32_t> v(5000);
  for (auto& x : v) x = static_cast<int32_t>(rng.Below(37));
  Column col = Column::FromI32(v);
  GroupResult g = GroupBy(col);
  std::vector<int64_t> keys(v.begin(), v.end());
  CheckPartition(g, keys);
  EXPECT_EQ(g.num_groups, 37u);
}

TEST(GroupTest, EmptyInput) {
  Column col(ValueType::kInt32, 0);
  GroupResult g = GroupBy(col);
  EXPECT_EQ(g.num_groups, 0u);
  EXPECT_TRUE(g.group_ids.empty());
}

TEST(GroupTest, SingleGroup) {
  Column col = Column::FromI32({4, 4, 4});
  GroupResult g = GroupBy(col);
  EXPECT_EQ(g.num_groups, 1u);
}

}  // namespace
}  // namespace wastenot::cs
