#include "columnstore/dictionary.h"

#include <gtest/gtest.h>

namespace wastenot::cs {
namespace {

TEST(DictionaryTest, BuildSortsAndDedups) {
  Dictionary d = Dictionary::Build({"b", "a", "b", "c"});
  EXPECT_EQ(d.size(), 3);
  EXPECT_EQ(d.CodeOf("a"), 0);
  EXPECT_EQ(d.CodeOf("b"), 1);
  EXPECT_EQ(d.CodeOf("c"), 2);
  EXPECT_EQ(d.CodeOf("zz"), -1);
  EXPECT_EQ(d.Decode(1), "b");
}

TEST(DictionaryTest, CodesPreserveOrder) {
  Dictionary d = Dictionary::Build({"PROMO POLISHED TIN", "ECONOMY BRUSHED",
                                    "STANDARD PLATED", "PROMO ANODIZED"});
  // Lexicographic order <=> code order.
  EXPECT_LT(d.CodeOf("ECONOMY BRUSHED"), d.CodeOf("PROMO ANODIZED"));
  EXPECT_LT(d.CodeOf("PROMO ANODIZED"), d.CodeOf("PROMO POLISHED TIN"));
  EXPECT_LT(d.CodeOf("PROMO POLISHED TIN"), d.CodeOf("STANDARD PLATED"));
}

TEST(DictionaryTest, PrefixRange) {
  Dictionary d = Dictionary::Build(
      {"ECONOMY X", "PROMO A", "PROMO B", "PROMO Z", "STANDARD Y"});
  RangePred r = d.PrefixRange("PROMO");
  EXPECT_EQ(r.lo, 1);
  EXPECT_EQ(r.hi, 3);
  // Every string in range has the prefix; none outside does.
  for (int32_t c = 0; c < d.size(); ++c) {
    const bool in_range = c >= r.lo && c <= r.hi;
    EXPECT_EQ(d.Decode(c).rfind("PROMO", 0) == 0, in_range) << c;
  }
}

TEST(DictionaryTest, PrefixRangeNoMatches) {
  Dictionary d = Dictionary::Build({"AAA", "BBB"});
  RangePred r = d.PrefixRange("ZZZ");
  EXPECT_TRUE(r.Empty());
}

TEST(DictionaryTest, PrefixRangeEverything) {
  Dictionary d = Dictionary::Build({"AB", "AC"});
  RangePred r = d.PrefixRange("A");
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 1);
}

TEST(DictionaryTest, EmptyPrefixSelectsAll) {
  Dictionary d = Dictionary::Build({"x", "y"});
  RangePred r = d.PrefixRange("");
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 1);
}

}  // namespace
}  // namespace wastenot::cs
