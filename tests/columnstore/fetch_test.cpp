#include "columnstore/fetch.h"

#include <gtest/gtest.h>

namespace wastenot::cs {
namespace {

TEST(FetchTest, GathersInOrder) {
  Column col = Column::FromI32({10, 20, 30, 40});
  Column out = Fetch(col, {3, 0, 2});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.Get(0), 40);
  EXPECT_EQ(out.Get(1), 10);
  EXPECT_EQ(out.Get(2), 30);
}

TEST(FetchTest, EmptyOids) {
  Column col = Column::FromI32({1});
  EXPECT_EQ(Fetch(col, {}).size(), 0u);
}

TEST(FetchTest, Int64Column) {
  Column col = Column::FromI64({1ll << 40, -5});
  Column out = Fetch(col, {1, 0, 0});
  EXPECT_EQ(out.Get(0), -5);
  EXPECT_EQ(out.Get(1), 1ll << 40);
  EXPECT_EQ(out.Get(2), 1ll << 40);
}

TEST(FetchTest, FetchToBuffer) {
  Column col = Column::FromI32({7, 8, 9});
  std::vector<int64_t> buf(3);
  FetchTo(col, {2, 1, 0}, buf.data());
  EXPECT_EQ(buf, (std::vector<int64_t>{9, 8, 7}));
}

TEST(FetchTest, DuplicateOidsAllowed) {
  Column col = Column::FromI32({5, 6});
  Column out = Fetch(col, {1, 1, 1});
  EXPECT_EQ(out.Get(0), 6);
  EXPECT_EQ(out.Get(2), 6);
}

}  // namespace
}  // namespace wastenot::cs
