#include "columnstore/table.h"

#include <gtest/gtest.h>

#include "columnstore/database.h"

namespace wastenot::cs {
namespace {

TEST(TableTest, AddAndAccess) {
  Table t("r");
  EXPECT_TRUE(t.AddColumn("a", Column::FromI32({1, 2})).ok());
  EXPECT_TRUE(t.AddColumn("b", Column::FromI32({3, 4})).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.HasColumn("c"));
  EXPECT_EQ(t.column("b").Get(1), 4);
  EXPECT_EQ(t.column_names(), (std::vector<std::string>{"a", "b"}));
}

TEST(TableTest, RejectsMismatchedLength) {
  Table t("r");
  ASSERT_TRUE(t.AddColumn("a", Column::FromI32({1, 2})).ok());
  Status st = t.AddColumn("b", Column::FromI32({1}));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, RejectsDuplicateColumn) {
  Table t("r");
  ASSERT_TRUE(t.AddColumn("a", Column::FromI32({1})).ok());
  EXPECT_EQ(t.AddColumn("a", Column::FromI32({2})).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, DictionaryAttachment) {
  Table t("r");
  ASSERT_TRUE(t.AddColumn("s", Column::FromI32({0, 1})).ok());
  EXPECT_EQ(t.dictionary("s"), nullptr);
  t.AttachDictionary("s", Dictionary::Build({"x", "y"}));
  ASSERT_NE(t.dictionary("s"), nullptr);
  EXPECT_EQ(t.dictionary("s")->Decode(0), "x");
}

TEST(TableTest, ByteSize) {
  Table t("r");
  ASSERT_TRUE(t.AddColumn("a", Column::FromI32({1, 2, 3})).ok());
  EXPECT_EQ(t.byte_size(), 12u);
}

TEST(DatabaseTest, AddAndLookup) {
  Database db;
  Table t("r");
  ASSERT_TRUE(t.AddColumn("a", Column::FromI32({1})).ok());
  auto added = db.AddTable(std::move(t));
  ASSERT_TRUE(added.ok());
  EXPECT_EQ((*added)->name(), "r");
  EXPECT_TRUE(db.HasTable("r"));
  EXPECT_FALSE(db.HasTable("s"));
  EXPECT_EQ(db.table("r").num_rows(), 1u);
  EXPECT_EQ(db.byte_size(), 4u);
}

TEST(DatabaseTest, DuplicateTableIsAlreadyExists) {
  Database db;
  Table t("r");
  ASSERT_TRUE(t.AddColumn("a", Column::FromI32({1})).ok());
  ASSERT_TRUE(db.AddTable(std::move(t)).ok());

  Table dup("r");
  ASSERT_TRUE(dup.AddColumn("b", Column::FromI32({2, 3})).ok());
  EXPECT_EQ(db.AddTable(std::move(dup)).status().code(),
            StatusCode::kAlreadyExists);
  // The incumbent is untouched.
  EXPECT_EQ(db.table("r").num_rows(), 1u);
  EXPECT_TRUE(db.table("r").HasColumn("a"));
}

TEST(DatabaseTest, FindTableIsNullableAndMutable) {
  Database db;
  Table t("r");
  ASSERT_TRUE(t.AddColumn("a", Column::FromI32({1, 2})).ok());
  ASSERT_TRUE(db.AddTable(std::move(t)).ok());

  EXPECT_EQ(db.FindTable("missing"), nullptr);
  const Database& cdb = db;
  EXPECT_EQ(cdb.FindTable("missing"), nullptr);
  ASSERT_NE(cdb.FindTable("r"), nullptr);
  EXPECT_EQ(cdb.FindTable("r")->num_rows(), 2u);

  Table* mutable_r = db.FindTable("r");
  ASSERT_NE(mutable_r, nullptr);
  mutable_r->mutable_column("a")->Set(0, 9);
  EXPECT_EQ(cdb.FindTable("r")->column("a").Get(0), 9);
}

TEST(DatabaseTest, TableNamesAreSorted) {
  Database db;
  for (const char* name : {"zeta", "alpha", "mid"}) {
    Table t(name);
    ASSERT_TRUE(t.AddColumn("a", Column::FromI32({1})).ok());
    ASSERT_TRUE(db.AddTable(std::move(t)).ok());
  }
  EXPECT_EQ(db.table_names(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

}  // namespace
}  // namespace wastenot::cs
