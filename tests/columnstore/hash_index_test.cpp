#include "columnstore/hash_index.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::cs {
namespace {

TEST(HashIndexTest, LookupUnique) {
  Column col = Column::FromI32({10, 20, 30});
  HashIndex idx = HashIndex::Build(col);
  EXPECT_EQ(idx.LookupFirst(20), 1u);
  EXPECT_EQ(idx.LookupFirst(99), kInvalidOid);
}

TEST(HashIndexTest, LookupDuplicates) {
  Column col = Column::FromI32({5, 7, 5, 5, 7});
  HashIndex idx = HashIndex::Build(col);
  OidVec out;
  EXPECT_EQ(idx.Lookup(5, &out), 3u);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (OidVec{0, 2, 3}));
}

TEST(HashIndexTest, EmptyColumn) {
  Column col(ValueType::kInt32, 0);
  HashIndex idx = HashIndex::Build(col);
  EXPECT_EQ(idx.LookupFirst(1), kInvalidOid);
}

TEST(HashIndexTest, NegativeKeys) {
  Column col = Column::FromI32({-1, -100, 0});
  HashIndex idx = HashIndex::Build(col);
  EXPECT_EQ(idx.LookupFirst(-100), 1u);
}

TEST(HashJoinTest, MatchesNestedLoopOracle) {
  Xoshiro256 rng(3);
  std::vector<int32_t> build(500), probe(800);
  for (auto& v : build) v = static_cast<int32_t>(rng.Below(200));
  for (auto& v : probe) v = static_cast<int32_t>(rng.Below(200));
  Column bcol = Column::FromI32(build);
  Column pcol = Column::FromI32(probe);

  HashIndex idx = HashIndex::Build(bcol);
  JoinResult join = HashJoin(idx, pcol);

  // Oracle pairs.
  std::vector<std::pair<oid_t, oid_t>> expect;
  for (uint64_t p = 0; p < probe.size(); ++p) {
    for (uint64_t b = 0; b < build.size(); ++b) {
      if (probe[p] == build[b]) expect.emplace_back(p, b);
    }
  }
  std::vector<std::pair<oid_t, oid_t>> got;
  for (uint64_t i = 0; i < join.probe_oids.size(); ++i) {
    got.emplace_back(join.probe_oids[i], join.build_oids[i]);
  }
  std::sort(expect.begin(), expect.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

TEST(HashIndexTest, ByteSizeAccounted) {
  Column col = Column::FromI32({1, 2, 3, 4});
  HashIndex idx = HashIndex::Build(col);
  EXPECT_GT(idx.byte_size(), 0u);
  EXPECT_EQ(idx.size(), 4u);
}

}  // namespace
}  // namespace wastenot::cs
