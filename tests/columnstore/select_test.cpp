#include "columnstore/select.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::cs {
namespace {

/// Scalar oracle.
OidVec OracleSelect(const Column& col, const RangePred& pred) {
  OidVec out;
  for (uint64_t i = 0; i < col.size(); ++i) {
    if (pred.Contains(col.Get(i))) out.push_back(static_cast<oid_t>(i));
  }
  return out;
}

Column RandomColumn(uint64_t n, int64_t range, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<int32_t> v(n);
  for (auto& x : v) x = static_cast<int32_t>(rng.Below(range));
  return Column::FromI32(v);
}

TEST(SelectTest, BasicRange) {
  Column col = Column::FromI32({5, 1, 9, 3, 7});
  OidVec got = Select(col, RangePred::Between(3, 7));
  EXPECT_EQ(got, (OidVec{0, 3, 4}));
}

TEST(SelectTest, EmptyPredicate) {
  Column col = Column::FromI32({1, 2, 3});
  EXPECT_TRUE(Select(col, RangePred{5, 2}).empty());
}

TEST(SelectTest, OpenEndedPredicates) {
  Column col = Column::FromI32({5, 1, 9});
  EXPECT_EQ(Select(col, RangePred::Ge(5)), (OidVec{0, 2}));
  EXPECT_EQ(Select(col, RangePred::Lt(5)), (OidVec{1}));
  EXPECT_EQ(Select(col, RangePred::Eq(9)), (OidVec{2}));
  EXPECT_EQ(Select(col, RangePred::All()).size(), 3u);
}

TEST(SelectTest, CandidatesChainEqualsConjunction) {
  Column a = RandomColumn(5000, 100, 1);
  Column b = RandomColumn(5000, 100, 2);
  OidVec first = Select(a, RangePred::Le(30));
  OidVec chained = SelectCandidates(b, RangePred::Ge(70), first);
  // Oracle: both predicates.
  OidVec expect;
  for (uint64_t i = 0; i < a.size(); ++i) {
    if (a.Get(i) <= 30 && b.Get(i) >= 70) expect.push_back(i);
  }
  EXPECT_EQ(chained, expect);
}

TEST(SelectTest, CountMatchesMaterialize) {
  Column col = RandomColumn(10000, 1000, 3);
  const RangePred pred = RangePred::Between(100, 250);
  EXPECT_EQ(CountSelect(col, pred), Select(col, pred).size());
}

class SelectParallelTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SelectParallelTest, MatchesSerial) {
  Column col = RandomColumn(200000, 5000, GetParam());
  const RangePred pred = RangePred::Between(1000, 2000);
  OidVec serial = Select(col, pred);
  OidVec parallel = SelectParallel(col, pred, GetParam());
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, OracleSelect(col, pred));
}

INSTANTIATE_TEST_SUITE_P(Threads, SelectParallelTest,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u));

class SelectPredicateSweep
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(SelectPredicateSweep, MatchesOracle) {
  Column col = RandomColumn(20000, 1 << 14, 77);
  const RangePred pred{GetParam().first, GetParam().second};
  EXPECT_EQ(Select(col, pred), OracleSelect(col, pred));
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, SelectPredicateSweep,
    ::testing::Values(std::pair<int64_t, int64_t>{0, 0},
                      std::pair<int64_t, int64_t>{0, 100},
                      std::pair<int64_t, int64_t>{16000, 17000},
                      std::pair<int64_t, int64_t>{-50, 20},
                      std::pair<int64_t, int64_t>{8000, 8000},
                      std::pair<int64_t, int64_t>{
                          std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::max()}));

}  // namespace
}  // namespace wastenot::cs
