#include "columnstore/aggregate.h"

#include <gtest/gtest.h>

namespace wastenot::cs {
namespace {

TEST(AggregateTest, GlobalSumMinMax) {
  Column col = Column::FromI32({3, -1, 7, 0});
  EXPECT_EQ(Sum(col), 9);
  EXPECT_EQ(Min(col), -1);
  EXPECT_EQ(Max(col), 7);
}

TEST(AggregateTest, SubsetSumMinMax) {
  Column col = Column::FromI32({3, -1, 7, 0});
  const OidVec rows = {0, 2};
  EXPECT_EQ(Sum(col, rows), 10);
  EXPECT_EQ(Min(col, rows), 3);
  EXPECT_EQ(Max(col, rows), 7);
}

TEST(AggregateTest, Int64Values) {
  Column col = Column::FromI64({1ll << 40, 1ll << 40});
  EXPECT_EQ(Sum(col), 1ll << 41);
}

TEST(AggregateTest, GroupedSum) {
  const std::vector<int64_t> values = {1, 2, 3, 4};
  const std::vector<uint32_t> groups = {0, 1, 0, 1};
  EXPECT_EQ(GroupedSum(values, groups, 2), (std::vector<int64_t>{4, 6}));
}

TEST(AggregateTest, GroupedMinMax) {
  const std::vector<int64_t> values = {5, -2, 9, 1};
  const std::vector<uint32_t> groups = {0, 0, 1, 1};
  EXPECT_EQ(GroupedMin(values, groups, 2), (std::vector<int64_t>{-2, 1}));
  EXPECT_EQ(GroupedMax(values, groups, 2), (std::vector<int64_t>{5, 9}));
}

TEST(AggregateTest, GroupedCount) {
  const std::vector<uint32_t> groups = {2, 0, 2, 2};
  EXPECT_EQ(GroupedCount(groups, 3), (std::vector<int64_t>{1, 0, 3}));
}

TEST(AggregateTest, EmptyInputs) {
  Column col(ValueType::kInt32, 0);
  EXPECT_EQ(Sum(col), 0);
  EXPECT_EQ(GroupedSum({}, {}, 2), (std::vector<int64_t>{0, 0}));
}

}  // namespace
}  // namespace wastenot::cs
