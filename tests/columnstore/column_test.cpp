#include "columnstore/column.h"

#include <gtest/gtest.h>

namespace wastenot::cs {
namespace {

TEST(ColumnTest, FromI32RoundTrip) {
  Column col = Column::FromI32({3, 1, 4, 1, 5});
  EXPECT_EQ(col.size(), 5u);
  EXPECT_EQ(col.type(), ValueType::kInt32);
  EXPECT_EQ(col.byte_size(), 20u);
  EXPECT_EQ(col.Get(0), 3);
  EXPECT_EQ(col.Get(4), 5);
}

TEST(ColumnTest, FromI64RoundTrip) {
  Column col = Column::FromI64({-10, 1ll << 40});
  EXPECT_EQ(col.type(), ValueType::kInt64);
  EXPECT_EQ(col.Get(0), -10);
  EXPECT_EQ(col.Get(1), 1ll << 40);
}

TEST(ColumnTest, SetGet) {
  Column col(ValueType::kInt32, 3);
  col.Set(0, 7);
  col.Set(2, -9);
  EXPECT_EQ(col.Get(0), 7);
  EXPECT_EQ(col.Get(1), 0);  // zero-initialized
  EXPECT_EQ(col.Get(2), -9);
}

TEST(ColumnTest, Stats) {
  Column col = Column::FromI32({5, -2, 9, 0});
  EXPECT_FALSE(col.has_stats());
  col.ComputeStats();
  EXPECT_TRUE(col.has_stats());
  EXPECT_EQ(col.min_value(), -2);
  EXPECT_EQ(col.max_value(), 9);
  EXPECT_FALSE(col.sorted());
}

TEST(ColumnTest, StatsSorted) {
  Column col = Column::FromI32({1, 2, 2, 7});
  col.ComputeStats();
  EXPECT_TRUE(col.sorted());
}

TEST(ColumnTest, StatsEmpty) {
  Column col(ValueType::kInt64, 0);
  col.ComputeStats();
  EXPECT_TRUE(col.has_stats());
  EXPECT_TRUE(col.empty());
}

TEST(ColumnTest, SpansMatchTypes) {
  Column c32 = Column::FromI32({1, 2});
  EXPECT_EQ(c32.I32().size(), 2u);
  Column c64 = Column::FromI64({1, 2, 3});
  EXPECT_EQ(c64.I64().size(), 3u);
}

}  // namespace
}  // namespace wastenot::cs
