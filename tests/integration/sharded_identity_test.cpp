// Sharded-vs-single-device bit identity: for fuzzed schemas, placements
// and query shapes, ExecuteArSharded's merged result must equal both the
// classic engine's and single-device ExecuteAr's output exactly — for
// every shard count, partition kind, pruning setting and fan-out width
// (the ISSUE's acceptance property for multi-device execution).

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "bwd/partition.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "core/sharded_engine.h"
#include "device/device_group.h"
#include "util/random.h"

namespace wastenot {
namespace {

using core::Aggregate;
using core::AggFunc;
using core::QuerySpec;
using core::Term;

enum class Placement { kResident, kDistributed };

const char* PlacementName(Placement p) {
  return p == Placement::kResident ? "Resident" : "Distributed";
}

struct ShardedCase {
  cs::Database db;
  std::unique_ptr<device::DeviceGroup> group;
  std::unique_ptr<bwd::ShardedBwdTable> fact;
  std::unique_ptr<bwd::BwdTable> whole;  ///< single-device reference
  QuerySpec query;
};

/// Random fact table, decomposition, partitioning and query — the same
/// shape family as engine_fuzz_test, plus a random partition spec.
ShardedCase MakeCase(uint64_t seed, Placement placement, uint32_t shards) {
  Xoshiro256 rng(seed);
  ShardedCase c;

  const uint64_t n = 1000 + rng.Below(8000);
  const int64_t domain_a = 1 << (6 + rng.Below(12));
  const int64_t domain_g = 2 + rng.Below(40);
  const int64_t domain_v = 1 << (4 + rng.Below(10));
  const int64_t base_shift = static_cast<int64_t>(rng.Below(3)) * -500;

  cs::Table t("f");
  std::vector<int32_t> a(n), g(n), v(n);
  for (uint64_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng.Below(domain_a) + base_shift);
    g[i] = static_cast<int32_t>(rng.Below(domain_g));
    v[i] = static_cast<int32_t>(rng.Below(domain_v));
  }
  auto add = [&t](const char* name, std::vector<int32_t>& vals) {
    cs::Column col = cs::Column::FromI32(vals);
    col.ComputeStats();
    (void)t.AddColumn(name, std::move(col));
  };
  add("a", a);
  add("g", g);
  add("v", v);
  c.db.AddTable(std::move(t));

  device::DeviceGroupOptions gopts;
  gopts.num_devices = shards;
  gopts.base.memory_capacity = 256 << 20;
  gopts.worker_threads = 1;
  c.group = std::make_unique<device::DeviceGroup>(gopts);

  auto bits = [&rng, placement]() -> uint32_t {
    if (placement == Placement::kResident) return 32;
    return 8 + static_cast<uint32_t>(rng.Below(17));
  };
  const std::vector<bwd::DecomposeRequest> reqs = {
      {"a", bits(), bwd::Compression::kBitPacked},
      {"g", bits(), bwd::Compression::kBitPacked},
      {"v", bits(), bwd::Compression::kBitPacked}};

  bwd::PartitionSpec pspec;
  pspec.kind = rng.Below(2) == 0 ? bwd::PartitionKind::kRange
                                 : bwd::PartitionKind::kRadix;
  // Partition on the selection column half the time (exercises data-local
  // pruning), otherwise on the value column (all shards stay live).
  pspec.key_column = rng.Below(2) == 0 ? "a" : "v";
  pspec.num_shards = shards;
  c.fact = std::make_unique<bwd::ShardedBwdTable>(
      std::move(bwd::DecomposeSharded(c.db.table("f"), reqs, pspec,
                                      c.group.get()))
          .value());
  c.whole = std::make_unique<bwd::BwdTable>(
      std::move(bwd::BwdTable::Decompose(c.db.table("f"), reqs,
                                         &c.group->device(0)))
          .value());

  c.query.table = "f";
  const int64_t lo = static_cast<int64_t>(rng.Below(domain_a)) + base_shift;
  const int64_t width = static_cast<int64_t>(rng.Below(domain_a));
  c.query.predicates.push_back({"a", cs::RangePred{lo, lo + width}});
  if (rng.Below(2) == 0) c.query.group_by = {"g"};
  c.query.aggregates.push_back(Aggregate::CountStar("n"));
  if (rng.Below(2) == 0) {
    c.query.aggregates.push_back(Aggregate::SumOf("v", "sum_v"));
  }
  if (rng.Below(2) == 0) {
    Aggregate prod;
    prod.func = AggFunc::kSum;
    prod.terms = {Term::Col("v"),
                  Term::OneMinus("g", static_cast<int64_t>(domain_g))};
    prod.label = "sum_prod";
    c.query.aggregates.push_back(prod);
  }
  if (c.query.group_by.empty() && rng.Below(3) == 0) {
    Aggregate mn;
    mn.func = rng.Below(2) == 0 ? AggFunc::kMin : AggFunc::kMax;
    mn.terms = {Term::Col("v")};
    mn.label = "extremum";
    c.query.aggregates.push_back(mn);
  }
  return c;
}

class ShardedIdentity
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, Placement, uint32_t>> {};

TEST_P(ShardedIdentity, MergedResultIsBitIdentical) {
  const auto [seed, placement, shards] = GetParam();
  ShardedCase c = MakeCase(seed * 7919 + 13, placement, shards);
  const std::string tag = "seed " + std::to_string(seed) + " " +
                          PlacementName(placement) + " shards " +
                          std::to_string(shards);

  auto classic = core::ExecuteClassic(c.query, c.db);
  ASSERT_TRUE(classic.ok()) << classic.status().ToString();
  auto single =
      core::ExecuteAr(c.query, *c.whole, nullptr, &c.group->device(0));
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  auto sharded = core::ExecuteArSharded(c.query, *c.fact, nullptr,
                                        c.group.get());
  ASSERT_TRUE(sharded.ok()) << tag << ": " << sharded.status().ToString();

  EXPECT_EQ(sharded->merged.result, single->result) << tag;
  EXPECT_EQ(sharded->merged.result, *classic) << tag;
  EXPECT_EQ(sharded->executed_shards.size(),
            sharded->shard_breakdowns.size());
  EXPECT_LE(sharded->executed_shards.size(), shards);

  // Merged approximate bounds stay sound.
  EXPECT_LE(sharded->merged.approx.row_count.lo,
            static_cast<int64_t>(classic->selected_rows));
  EXPECT_GE(sharded->merged.approx.row_count.hi,
            static_cast<int64_t>(classic->selected_rows));

  // Pruning off and parallel fan-out: same bits.
  core::ShardedArOptions no_prune;
  no_prune.data_local_pruning = false;
  auto all_shards = core::ExecuteArSharded(c.query, *c.fact, nullptr,
                                           c.group.get(), no_prune);
  ASSERT_TRUE(all_shards.ok()) << tag;
  EXPECT_EQ(all_shards->merged.result, *classic) << tag;
  EXPECT_EQ(all_shards->executed_shards.size(), shards) << tag;

  core::ShardedArOptions parallel;
  parallel.ar.num_threads = 0;  // shared default pool fan-out
  auto fanned = core::ExecuteArSharded(c.query, *c.fact, nullptr,
                                       c.group.get(), parallel);
  ASSERT_TRUE(fanned.ok()) << tag;
  EXPECT_EQ(fanned->merged.result, *classic) << tag;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ShardedIdentity,
    ::testing::Combine(::testing::Range<uint64_t>(1, 17),
                       ::testing::Values(Placement::kResident,
                                         Placement::kDistributed),
                       ::testing::Values(1u, 2u, 3u, 8u)),
    [](const ::testing::TestParamInfo<
        std::tuple<uint64_t, Placement, uint32_t>>& info) {
      return PlacementName(std::get<1>(info.param)) + std::string("Seed") +
             std::to_string(std::get<0>(info.param)) + "Shards" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace wastenot
