// Progressive-serving soundness: for fuzzed schemas, queries, engines and
// shard counts, every progressive submission's approximate answer must
// *contain* the refined exact answer (strict error bounds, paper §III
// advantage 4), and the refined answer must be bit-identical to a
// non-progressive run of the same query — the progressive path changes
// when answers arrive, never what they are.
//
// Containment is checked per pre-group: digit intervals of distinct
// pre-groups are disjoint, so every exact group's key tuple lies in
// exactly one pre-group's key bounds; exact groups mapped to the same
// pre-group accumulate (sums and counts add, extrema combine), and the
// pre-group's interval must contain the accumulated value. Pre-groups no
// exact group maps to carry only refinement-rejected candidates, so their
// additive intervals must contain 0.

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "bwd/partition.h"
#include "core/bounds.h"
#include "core/classic_engine.h"
#include "core/sharded_engine.h"
#include "device/device_group.h"
#include "server/query_server.h"
#include "util/random.h"

namespace wastenot::server {
namespace {

using core::Aggregate;
using core::AggFunc;
using core::ApproximateAnswer;
using core::QueryResult;
using core::QuerySpec;
using core::Term;
using core::ValueBounds;

const char* EngineName(EngineKind e) {
  switch (e) {
    case EngineKind::kAr: return "Ar";
    case EngineKind::kClassic: return "Classic";
    case EngineKind::kStreaming: return "Streaming";
  }
  return "?";
}

struct ProgressiveCase {
  cs::Database db;
  std::unique_ptr<device::DeviceGroup> group;
  std::unique_ptr<bwd::ShardedBwdTable> fact;
  std::vector<cs::Database> shard_dbs;
  QuerySpec query;

  QueryServer::Backend backend() {
    QueryServer::Backend b;
    b.db = &db;
    b.sharded_fact = &*fact;
    b.shard_dbs = &shard_dbs;
    b.group = group.get();
    return b;
  }
};

/// Random fact table, decomposition, partitioning and query — the
/// engine-fuzz shape family (including avg, the aggregate whose interval
/// comes from the sum/count quotient bounds).
ProgressiveCase MakeCase(uint64_t seed, uint32_t shards) {
  Xoshiro256 rng(seed);
  ProgressiveCase c;

  const uint64_t n = 600 + rng.Below(4000);
  const int64_t domain_a = 1 << (6 + rng.Below(10));
  const int64_t domain_g = 2 + rng.Below(24);
  const int64_t domain_v = 1 << (4 + rng.Below(9));
  const int64_t base_shift = static_cast<int64_t>(rng.Below(3)) * -500;

  cs::Table t("f");
  std::vector<int32_t> a(n), g(n), v(n);
  for (uint64_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng.Below(domain_a) + base_shift);
    g[i] = static_cast<int32_t>(rng.Below(domain_g));
    v[i] = static_cast<int32_t>(rng.Below(domain_v));
  }
  auto add = [&t](const char* name, std::vector<int32_t>& vals) {
    cs::Column col = cs::Column::FromI32(vals);
    col.ComputeStats();
    (void)t.AddColumn(name, std::move(col));
  };
  add("a", a);
  add("g", g);
  add("v", v);
  c.db.AddTable(std::move(t));

  device::DeviceGroupOptions gopts;
  gopts.num_devices = shards;
  gopts.base.memory_capacity = 256 << 20;
  gopts.worker_threads = 1;
  c.group = std::make_unique<device::DeviceGroup>(gopts);

  // Mostly distributed placements (residuals exist, so the approximate
  // answer has real width); occasionally fully resident (point bounds).
  auto bits = [&rng]() -> uint32_t {
    if (rng.Below(5) == 0) return 32;
    return 6 + static_cast<uint32_t>(rng.Below(16));
  };
  const std::vector<bwd::DecomposeRequest> reqs = {
      {"a", bits(), bwd::Compression::kBitPacked},
      {"g", bits(), bwd::Compression::kBitPacked},
      {"v", bits(), bwd::Compression::kBitPacked}};

  bwd::PartitionSpec pspec;
  pspec.kind = rng.Below(2) == 0 ? bwd::PartitionKind::kRange
                                 : bwd::PartitionKind::kRadix;
  pspec.key_column = rng.Below(2) == 0 ? "a" : "v";
  pspec.num_shards = shards;
  c.fact = std::make_unique<bwd::ShardedBwdTable>(
      std::move(bwd::DecomposeSharded(c.db.table("f"), reqs, pspec,
                                      c.group.get()))
          .value());
  c.shard_dbs = bwd::BuildShardDatabases(c.fact->partition, {});

  c.query.table = "f";
  const int64_t lo = static_cast<int64_t>(rng.Below(domain_a)) + base_shift;
  const int64_t width = static_cast<int64_t>(rng.Below(domain_a));
  c.query.predicates.push_back({"a", cs::RangePred{lo, lo + width}});
  if (rng.Below(2) == 0) c.query.group_by = {"g"};
  c.query.aggregates.push_back(Aggregate::CountStar("n"));
  if (rng.Below(2) == 0) {
    c.query.aggregates.push_back(Aggregate::SumOf("v", "sum_v"));
  }
  if (rng.Below(2) == 0) {
    Aggregate avg;
    avg.func = AggFunc::kAvg;
    avg.terms = {Term::Col("v")};
    avg.label = "avg_v";
    c.query.aggregates.push_back(avg);
  }
  if (c.query.group_by.empty() && rng.Below(3) == 0) {
    Aggregate mn;
    mn.func = rng.Below(2) == 0 ? AggFunc::kMin : AggFunc::kMax;
    mn.terms = {Term::Col("v")};
    mn.label = "extremum";
    c.query.aggregates.push_back(mn);
  }
  return c;
}

/// Accumulated exact values of the exact groups mapped to one pre-group.
struct PreGroupAcc {
  bool any = false;
  int64_t count = 0;                ///< Σ group_counts
  std::vector<int64_t> sums;        ///< per agg: Σ agg_values (count/sum/avg)
  std::vector<int64_t> mins;        ///< per agg: min over groups
  std::vector<int64_t> maxs;        ///< per agg: max over groups
};

/// The strict-bounds contract: `approx` contains `exact`, per pre-group.
void CheckSoundness(const ApproximateAnswer& approx, const QueryResult& exact,
                    const QuerySpec& query, const std::string& tag) {
  EXPECT_LE(approx.row_count.lo, static_cast<int64_t>(exact.selected_rows))
      << tag;
  EXPECT_GE(approx.row_count.hi, static_cast<int64_t>(exact.selected_rows))
      << tag;

  const size_t num_aggs = query.aggregates.size();
  std::vector<PreGroupAcc> acc(approx.num_groups());
  for (PreGroupAcc& a : acc) {
    a.sums.assign(num_aggs, 0);
    a.mins.assign(num_aggs, 0);
    a.maxs.assign(num_aggs, 0);
  }

  // Map every exact group to the unique pre-group containing its keys
  // (digit intervals of distinct pre-groups are disjoint).
  for (uint64_t ge = 0; ge < exact.num_groups(); ++ge) {
    int64_t match = -1;
    for (uint64_t ga = 0; ga < approx.num_groups(); ++ga) {
      bool contains = true;
      for (uint64_t k = 0; k < exact.group_keys[ge].size(); ++k) {
        contains &= approx.key_bounds[ga][k].Contains(exact.group_keys[ge][k]);
      }
      if (!contains) continue;
      EXPECT_EQ(match, -1)
          << tag << ": exact group " << ge
          << " contained by two pre-groups (digit intervals must be disjoint)";
      match = static_cast<int64_t>(ga);
    }
    ASSERT_NE(match, -1)
        << tag << ": exact group " << ge << " not covered by any pre-group";
    PreGroupAcc& a = acc[static_cast<size_t>(match)];
    for (size_t i = 0; i < num_aggs; ++i) {
      const int64_t value = exact.agg_values[ge][i];
      switch (query.aggregates[i].func) {
        case AggFunc::kCount:
        case AggFunc::kSum:
        case AggFunc::kAvg:  // exact avg values store the group *sum*
          a.sums[i] += value;
          break;
        case AggFunc::kMin:
          a.mins[i] = a.any ? std::min(a.mins[i], value) : value;
          break;
        case AggFunc::kMax:
          a.maxs[i] = a.any ? std::max(a.maxs[i], value) : value;
          break;
      }
    }
    a.count += ge < exact.group_counts.size() ? exact.group_counts[ge] : 0;
    a.any = true;
  }

  for (uint64_t ga = 0; ga < approx.num_groups(); ++ga) {
    const PreGroupAcc& a = acc[ga];
    for (size_t i = 0; i < num_aggs; ++i) {
      const ValueBounds& bounds = approx.agg_bounds[ga][i];
      const std::string where =
          tag + ": pre-group " + std::to_string(ga) + " agg " +
          std::to_string(i) + " interval [" + std::to_string(bounds.lo) +
          ", " + std::to_string(bounds.hi) + "]";
      switch (query.aggregates[i].func) {
        case AggFunc::kCount:
        case AggFunc::kSum:
          // Additive: the interval contains the accumulated exact value —
          // 0 for pre-groups holding only refinement-rejected candidates.
          EXPECT_TRUE(bounds.Contains(a.sums[i]))
              << where << " misses " << a.sums[i];
          break;
        case AggFunc::kAvg:
          // The avg interval bounds the quotient; exact integer rendering
          // divides Σsum by Σcount, so both rounding directions must fit.
          if (a.any && a.count > 0) {
            EXPECT_TRUE(bounds.Contains(core::FloorDiv(a.sums[i], a.count)))
                << where << " misses floor(" << a.sums[i] << "/" << a.count
                << ")";
            EXPECT_TRUE(
                bounds.Contains(core::CeilDivSigned(a.sums[i], a.count)))
                << where << " misses ceil(" << a.sums[i] << "/" << a.count
                << ")";
          }
          break;
        case AggFunc::kMin:
          if (a.any) {
            EXPECT_TRUE(bounds.Contains(a.mins[i]))
                << where << " misses min " << a.mins[i];
          }
          break;
        case AggFunc::kMax:
          if (a.any) {
            EXPECT_TRUE(bounds.Contains(a.maxs[i]))
                << where << " misses max " << a.maxs[i];
          }
          break;
      }
    }
  }
}

class ProgressiveSoundness
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, EngineKind, uint32_t>> {};

TEST_P(ProgressiveSoundness, ApproximateContainsRefined) {
  const auto [seed, engine, shards] = GetParam();
  ProgressiveCase c = MakeCase(seed * 6151 + 29, shards);
  const std::string tag = "seed " + std::to_string(seed) + " " +
                          EngineName(engine) + " shards " +
                          std::to_string(shards);

  auto classic = core::ExecuteClassic(c.query, c.db);
  ASSERT_TRUE(classic.ok()) << tag << ": " << classic.status().ToString();

  ServerOptions opts;
  opts.num_workers = 2;
  QueryServer server(c.backend(), opts);

  QueryRequest request;
  request.query = c.query;
  request.engine = engine;
  ProgressiveFutures progressive = server.SubmitProgressive(request);
  QueryResponse refined = progressive.refined.get();
  ASSERT_TRUE(refined.status.ok()) << tag << ": "
                                   << refined.status.ToString();

  // The approximate future resolves no later than the refined one.
  ASSERT_EQ(progressive.approximate.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << tag << ": approximate future unresolved after refined resolved";
  ApproximateResponse approx = progressive.approximate.get();
  ASSERT_TRUE(approx.status.ok()) << tag << ": " << approx.status.ToString();
  EXPECT_EQ(approx.id, refined.id) << tag;
  EXPECT_LE(approx.latency_seconds, refined.latency_seconds) << tag;
  // Only the A&R engine has a Phase A; the others fall back to the exact
  // answer as point intervals.
  EXPECT_EQ(approx.exact_fallback, engine != EngineKind::kAr) << tag;

  // Soundness: the approximate intervals contain the refined answer.
  CheckSoundness(approx.approx, refined.result, c.query, tag);

  // Identity: the refined answer is bit-identical to a non-progressive
  // run of the same request, and to the classic reference.
  QueryResponse plain = server.Submit(request).get();
  ASSERT_TRUE(plain.status.ok()) << tag;
  EXPECT_EQ(refined.result, plain.result) << tag;
  EXPECT_EQ(refined.result, *classic) << tag;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProgressiveSoundness,
    ::testing::Combine(::testing::Range<uint64_t>(1, 17),
                       ::testing::Values(EngineKind::kAr, EngineKind::kClassic,
                                         EngineKind::kStreaming),
                       ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<
        std::tuple<uint64_t, EngineKind, uint32_t>>& info) {
      return EngineName(std::get<1>(info.param)) + std::string("Seed") +
             std::to_string(std::get<0>(info.param)) + "Shards" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace wastenot::server
