// End-to-end integration: generate the paper's workloads, decompose them
// onto a simulated device, execute with both engines, and require exact
// agreement — for every query and every decomposition configuration the
// evaluation section uses.

#include <memory>

#include <gtest/gtest.h>

#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "workloads/spatial.h"
#include "workloads/tpch.h"
#include "workloads/uniform.h"

namespace wastenot {
namespace {

std::unique_ptr<device::Device> MakeDevice(uint64_t capacity = 512 << 20) {
  device::DeviceSpec spec = device::DeviceSpec::Gtx680();
  spec.memory_capacity = capacity;
  return std::make_unique<device::Device>(spec, 4);
}

class TpchEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new cs::Database();
    workloads::GenerateTpch(0.02, 7, db_);
    dev_ = MakeDevice().release();
    fact_all_ = new bwd::BwdTable(
        std::move(bwd::BwdTable::Decompose(db_->table("lineitem"),
                                           workloads::TpchAllResident(), dev_))
            .value());
    fact_constrained_ = new bwd::BwdTable(
        std::move(bwd::BwdTable::Decompose(db_->table("lineitem"),
                                           workloads::TpchSpaceConstrained(),
                                           dev_))
            .value());
    dim_ = new bwd::BwdTable(
        std::move(bwd::BwdTable::Decompose(db_->table("part"),
                                           workloads::TpchPartResident(),
                                           dev_))
            .value());
  }
  static void TearDownTestSuite() {
    delete fact_all_;
    delete fact_constrained_;
    delete dim_;
    delete dev_;
    delete db_;
  }

  void RunBothEngines(core::QuerySpec q, const bwd::BwdTable& fact) {
    if (q.join.has_value()) {
      ASSERT_TRUE(workloads::ResolvePromoFilter(*db_, &q).ok());
    }
    auto classic = core::ExecuteClassic(q, *db_);
    ASSERT_TRUE(classic.ok()) << classic.status().ToString();
    auto ar = core::ExecuteAr(q, fact, dim_, dev_);
    ASSERT_TRUE(ar.ok()) << ar.status().ToString();
    EXPECT_EQ(ar->result, *classic) << q.name;
    EXPECT_EQ(ar->result.selected_rows, classic->selected_rows);
  }

  static cs::Database* db_;
  static device::Device* dev_;
  static bwd::BwdTable* fact_all_;
  static bwd::BwdTable* fact_constrained_;
  static bwd::BwdTable* dim_;
};

cs::Database* TpchEndToEnd::db_ = nullptr;
device::Device* TpchEndToEnd::dev_ = nullptr;
bwd::BwdTable* TpchEndToEnd::fact_all_ = nullptr;
bwd::BwdTable* TpchEndToEnd::fact_constrained_ = nullptr;
bwd::BwdTable* TpchEndToEnd::dim_ = nullptr;

TEST_F(TpchEndToEnd, Q1AllResident) {
  RunBothEngines(workloads::TpchQ1(), *fact_all_);
}
TEST_F(TpchEndToEnd, Q1SpaceConstrained) {
  RunBothEngines(workloads::TpchQ1(), *fact_constrained_);
}
TEST_F(TpchEndToEnd, Q6AllResident) {
  RunBothEngines(workloads::TpchQ6(), *fact_all_);
}
TEST_F(TpchEndToEnd, Q6SpaceConstrained) {
  RunBothEngines(workloads::TpchQ6(), *fact_constrained_);
}
TEST_F(TpchEndToEnd, Q14AllResident) {
  RunBothEngines(workloads::TpchQ14(), *fact_all_);
}
TEST_F(TpchEndToEnd, Q14SpaceConstrained) {
  RunBothEngines(workloads::TpchQ14(), *fact_constrained_);
}

TEST_F(TpchEndToEnd, Q6ApproximateAnswerExactWhenResident) {
  auto ar = core::ExecuteAr(workloads::TpchQ6(), *fact_all_, dim_, dev_);
  ASSERT_TRUE(ar.ok());
  // Everything Q6 touches is fully resident: the phase-A answer is exact
  // (the paper's all-GPU case).
  EXPECT_TRUE(ar->approx.exact());
}

TEST_F(TpchEndToEnd, Q6SpaceConstrainedRefinesFalsePositives) {
  auto ar =
      core::ExecuteAr(workloads::TpchQ6(), *fact_constrained_, dim_, dev_);
  ASSERT_TRUE(ar.ok());
  EXPECT_GT(ar->num_candidates, ar->num_refined)
      << "the 4-bit shipdate approximation must admit false positives";
  EXPECT_FALSE(ar->approx.exact());
  // The shipped bounds still bracket the exact revenue.
  auto classic = core::ExecuteClassic(workloads::TpchQ6(), *db_);
  ASSERT_TRUE(classic.ok());
  EXPECT_TRUE(
      ar->approx.agg_bounds[0][0].Contains(classic->agg_values[0][0]));
}

TEST(SpatialEndToEnd, TableIQueryBothEngines) {
  cs::Database db;
  db.AddTable(workloads::GenerateTrips(300000, 11));
  auto dev = MakeDevice();
  auto fact = bwd::BwdTable::Decompose(
      db.table("trips"),
      {{"lon", 24, bwd::Compression::kBitPacked},
       {"lat", 24, bwd::Compression::kBitPacked}},
      dev.get());
  ASSERT_TRUE(fact.ok()) << fact.status().ToString();

  const core::QuerySpec q = workloads::SpatialRangeQuery();
  auto classic = core::ExecuteClassic(q, db);
  ASSERT_TRUE(classic.ok());
  auto ar = core::ExecuteAr(q, *fact, nullptr, dev.get());
  ASSERT_TRUE(ar.ok()) << ar.status().ToString();
  EXPECT_EQ(ar->result, *classic);
  EXPECT_GT(classic->agg_values[0][0], 0);
  // The count bounds of the approximate answer bracket the exact count.
  EXPECT_LE(ar->approx.agg_bounds[0][0].lo, classic->agg_values[0][0]);
  EXPECT_GE(ar->approx.agg_bounds[0][0].hi, classic->agg_values[0][0]);
}

TEST(SpatialEndToEnd, DecompositionRespectsDeviceCapacity) {
  // A device too small for full-resolution coordinates still fits the
  // 24-bit-requested (16-bit packed) approximations — the capacity-driven
  // trade-off at the heart of the storage model.
  cs::Database db;
  db.AddTable(workloads::GenerateTrips(400000, 12));
  auto small = MakeDevice(1 << 20);  // 1 MiB device
  auto full = bwd::BwdTable::Decompose(
      db.table("trips"),
      {{"lon", 32, bwd::Compression::kBitPacked},
       {"lat", 32, bwd::Compression::kBitPacked}},
      small.get());
  EXPECT_FALSE(full.ok());
  auto coarse = bwd::BwdTable::Decompose(
      db.table("trips"),
      {{"lon", 32 - 15, bwd::Compression::kBitPacked},
       {"lat", 32 - 15, bwd::Compression::kBitPacked}},
      small.get());
  ASSERT_TRUE(coarse.ok()) << coarse.status().ToString();

  // Queries still refine to exact answers from the coarse approximations.
  auto classic = core::ExecuteClassic(workloads::SpatialRangeQuery(), db);
  auto ar = core::ExecuteAr(workloads::SpatialRangeQuery(), *coarse, nullptr,
                            small.get());
  ASSERT_TRUE(classic.ok());
  ASSERT_TRUE(ar.ok()) << ar.status().ToString();
  EXPECT_EQ(ar->result, *classic);
}

TEST(MicrobenchEndToEnd, SelectionPipelineAtPaperShape) {
  // The Fig 8 pipeline at reduced scale: unique shuffled ints, 24-bit
  // device residency, selectivity sweep.
  cs::Database db;
  cs::Table t("u");
  ASSERT_TRUE(
      t.AddColumn("x", workloads::UniqueShuffledInts(200000, 3)).ok());
  db.AddTable(std::move(t));
  auto dev = MakeDevice();
  auto fact = bwd::BwdTable::Decompose(
      db.table("u"), {{"x", 24, bwd::Compression::kBitPacked}}, dev.get());
  ASSERT_TRUE(fact.ok());
  for (double sel : {0.001, 0.01, 0.1, 0.6}) {
    core::QuerySpec q;
    q.table = "u";
    q.predicates = {
        {"x", cs::RangePred::Lt(workloads::ThresholdForSelectivity(200000,
                                                                   sel))}};
    q.aggregates = {core::Aggregate::CountStar("n")};
    auto classic = core::ExecuteClassic(q, db);
    auto ar = core::ExecuteAr(q, *fact, nullptr, dev.get());
    ASSERT_TRUE(classic.ok());
    ASSERT_TRUE(ar.ok());
    EXPECT_EQ(ar->result, *classic) << "selectivity " << sel;
    EXPECT_EQ(static_cast<double>(classic->agg_values[0][0]),
              200000 * sel);
  }
}

}  // namespace
}  // namespace wastenot
