// Randomized cross-engine equivalence: generate random schemas,
// decompositions and QuerySpecs; require ExecuteAr == ExecuteClassic and
// sound approximate bounds on every draw. This is the repository's
// broadest property test — any unsoundness in relaxation, refinement,
// alignment or bound propagation shows up here first.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "util/random.h"

namespace wastenot {
namespace {

using core::Aggregate;
using core::AggFunc;
using core::QuerySpec;
using core::Term;

/// Where the decomposed bits live. `kResident` keeps every bit of every
/// column on the device (refinement never needs the residual); with
/// `kDistributed` only the major bits are device-side, so every query
/// exercises the host residual join in refinement.
enum class Placement { kResident, kDistributed };

const char* PlacementName(Placement p) {
  return p == Placement::kResident ? "Resident" : "Distributed";
}

struct FuzzCase {
  cs::Database db;
  std::unique_ptr<device::Device> dev;
  std::unique_ptr<bwd::BwdTable> fact;
  QuerySpec query;
};

/// Builds a random fact table, decomposition and query from `seed`.
FuzzCase MakeCase(uint64_t seed, Placement placement) {
  Xoshiro256 rng(seed);
  FuzzCase c;

  const uint64_t n = 2000 + rng.Below(20000);
  const int64_t domain_a = 1 << (6 + rng.Below(14));   // selection column
  const int64_t domain_g = 2 + rng.Below(40);          // group column
  const int64_t domain_v = 1 << (4 + rng.Below(12));   // value column
  const int64_t base_shift =
      static_cast<int64_t>(rng.Below(3)) * -500;       // maybe negative

  cs::Table t("f");
  std::vector<int32_t> a(n), b(n), g(n), v(n);
  for (uint64_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng.Below(domain_a) + base_shift);
    b[i] = static_cast<int32_t>(rng.Below(domain_a));
    g[i] = static_cast<int32_t>(rng.Below(domain_g));
    v[i] = static_cast<int32_t>(rng.Below(domain_v));
  }
  auto add = [&t](const char* name, std::vector<int32_t>& vals) {
    cs::Column col = cs::Column::FromI32(vals);
    col.ComputeStats();
    (void)t.AddColumn(name, std::move(col));
  };
  add("a", a);
  add("b", b);
  add("g", g);
  add("v", v);
  c.db.AddTable(std::move(t));

  device::DeviceSpec spec;
  spec.memory_capacity = 256 << 20;
  c.dev = std::make_unique<device::Device>(spec, 2);

  auto bits = [&rng, placement]() -> uint32_t {
    if (placement == Placement::kResident) return 32;  // no residuals
    return 8 + static_cast<uint32_t>(rng.Below(17));   // 8..24 device bits
  };
  c.fact = std::make_unique<bwd::BwdTable>(
      std::move(bwd::BwdTable::Decompose(
                    c.db.table("f"),
                    {{"a", bits(), bwd::Compression::kBitPacked},
                     {"b", bits(), bwd::Compression::kBitPacked},
                     {"g", bits(), bwd::Compression::kBitPacked},
                     {"v", bits(), bwd::Compression::kBitPacked}},
                    c.dev.get()))
          .value());

  // Random query: 1-2 predicates, optional grouping, 1-3 aggregates.
  c.query.table = "f";
  const int64_t lo = static_cast<int64_t>(rng.Below(domain_a)) + base_shift;
  const int64_t width = static_cast<int64_t>(rng.Below(domain_a));
  c.query.predicates.push_back({"a", cs::RangePred{lo, lo + width}});
  if (rng.Below(2) == 0) {
    c.query.predicates.push_back(
        {"b", cs::RangePred::Lt(static_cast<int64_t>(rng.Below(domain_a)))});
  }
  if (rng.Below(2) == 0) c.query.group_by = {"g"};

  c.query.aggregates.push_back(Aggregate::CountStar("n"));
  if (rng.Below(2) == 0) {
    c.query.aggregates.push_back(Aggregate::SumOf("v", "sum_v"));
  }
  if (rng.Below(2) == 0) {
    Aggregate prod;
    prod.func = AggFunc::kSum;
    prod.terms = {Term::Col("v"),
                  Term::OneMinus("g", static_cast<int64_t>(domain_g))};
    prod.label = "sum_prod";
    c.query.aggregates.push_back(prod);
  }
  if (c.query.group_by.empty() && rng.Below(3) == 0) {
    Aggregate mn;
    mn.func = rng.Below(2) == 0 ? AggFunc::kMin : AggFunc::kMax;
    mn.terms = {Term::Col("v")};
    mn.label = "extremum";
    c.query.aggregates.push_back(mn);
  }
  return c;
}

class EngineFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, Placement>> {};

TEST_P(EngineFuzz, EnginesAgreeAndBoundsAreSound) {
  const auto [seed, placement] = GetParam();
  FuzzCase c = MakeCase(seed * 7919 + 13, placement);

  auto classic = core::ExecuteClassic(c.query, c.db);
  ASSERT_TRUE(classic.ok()) << classic.status().ToString();
  auto ar = core::ExecuteAr(c.query, *c.fact, nullptr, c.dev.get());
  ASSERT_TRUE(ar.ok()) << ar.status().ToString();

  EXPECT_EQ(ar->result, *classic)
      << "seed " << seed << " placement " << PlacementName(placement);

  // Placement sanity: resident decompositions keep nothing host-side;
  // distributed ones always leave residual bits behind, so refinement has
  // to join against the host.
  if (placement == Placement::kResident) {
    EXPECT_EQ(c.fact->residual_bytes(), 0u);
  } else {
    EXPECT_GT(c.fact->residual_bytes(), 0u);
  }

  // Bounds soundness: the exact row count is inside the phase-A interval.
  EXPECT_LE(ar->approx.row_count.lo,
            static_cast<int64_t>(classic->selected_rows));
  EXPECT_GE(ar->approx.row_count.hi,
            static_cast<int64_t>(classic->selected_rows));
  EXPECT_GE(ar->num_candidates, ar->num_refined);

  // Ungrouped queries: every aggregate's exact value is inside its bounds
  // (min/max and avg included — their reported intervals are global).
  if (c.query.group_by.empty() && classic->num_groups() == 1 &&
      ar->approx.num_groups() == 1) {
    for (uint64_t agg = 0; agg < c.query.aggregates.size(); ++agg) {
      if (c.query.aggregates[agg].func == AggFunc::kAvg) continue;
      if ((c.query.aggregates[agg].func == AggFunc::kMin ||
           c.query.aggregates[agg].func == AggFunc::kMax) &&
          classic->selected_rows == 0) {
        continue;  // extremum of an empty set is reported as 0
      }
      EXPECT_TRUE(ar->approx.agg_bounds[0][agg].Contains(
          classic->agg_values[0][agg]))
          << "seed " << seed << " placement " << PlacementName(placement)
          << " agg " << agg << ": "
          << classic->agg_values[0][agg] << " not in "
          << ar->approx.agg_bounds[0][agg].ToString();
    }
  }

  // Both optimizer settings agree.
  core::ArOptions no_push;
  no_push.pushdown = false;
  auto ar2 = core::ExecuteAr(c.query, *c.fact, nullptr, c.dev.get(), no_push);
  ASSERT_TRUE(ar2.ok());
  EXPECT_EQ(ar2->result, *classic);

  core::ArOptions no_skip;
  no_skip.skip_exact_refinement = false;
  auto ar3 = core::ExecuteAr(c.query, *c.fact, nullptr, c.dev.get(), no_skip);
  ASSERT_TRUE(ar3.ok());
  EXPECT_EQ(ar3->result, *classic);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EngineFuzz,
    ::testing::Combine(::testing::Range<uint64_t>(1, 17),
                       ::testing::Values(Placement::kResident,
                                         Placement::kDistributed)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, Placement>>& info) {
      return PlacementName(std::get<1>(info.param)) + std::string("Seed") +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace wastenot
