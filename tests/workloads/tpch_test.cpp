#include "workloads/tpch.h"

#include <set>

#include <gtest/gtest.h>

#include "core/classic_engine.h"
#include "util/bits.h"

namespace wastenot::workloads {
namespace {

TEST(TpchQueryTest, Q6YearVariantRotatesShipdateYear) {
  const core::QuerySpec base = TpchQ6();
  for (uint64_t v = 0; v < 7; ++v) {
    const core::QuerySpec q = TpchQ6YearVariant(v);
    const int year = 1993 + static_cast<int>(v % 5);
    EXPECT_EQ(q.predicates[0].range.lo, DateToDays(year, 1, 1)) << v;
    EXPECT_EQ(q.predicates[0].range.hi, DateToDays(year + 1, 1, 1) - 1) << v;
    // Only the shipdate range rotates; the rest of Q6 is untouched.
    ASSERT_EQ(q.predicates.size(), base.predicates.size());
    for (uint64_t p = 1; p < base.predicates.size(); ++p) {
      EXPECT_EQ(q.predicates[p].column, base.predicates[p].column);
    }
    EXPECT_EQ(q.aggregates.size(), base.aggregates.size());
  }
}

TEST(TpchDateTest, EpochAndKnownDates) {
  EXPECT_EQ(DateToDays(1992, 1, 1), 0);
  EXPECT_EQ(DateToDays(1992, 1, 2), 1);
  EXPECT_EQ(DateToDays(1992, 2, 1), 31);
  EXPECT_EQ(DateToDays(1993, 1, 1), 366);  // 1992 is a leap year
  EXPECT_EQ(DateToDays(1998, 12, 1), 2526);
  EXPECT_EQ(DateToDays(1995, 6, 17), 1263);
}

class TpchDataTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new cs::Database();
    num_parts_ = GenerateTpch(0.01, 42, db_);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static cs::Database* db_;
  static uint64_t num_parts_;
};

cs::Database* TpchDataTest::db_ = nullptr;
uint64_t TpchDataTest::num_parts_ = 0;

TEST_F(TpchDataTest, TablesAndColumns) {
  ASSERT_TRUE(db_->HasTable("lineitem"));
  ASSERT_TRUE(db_->HasTable("part"));
  const cs::Table& l = db_->table("lineitem");
  for (const char* col :
       {"l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_tax",
        "l_shipdate", "l_returnflag", "l_linestatus"}) {
    EXPECT_TRUE(l.HasColumn(col)) << col;
  }
  EXPECT_EQ(l.num_rows(), 60000u);
  EXPECT_EQ(db_->table("part").num_rows(), num_parts_);
}

TEST_F(TpchDataTest, DistributionsMatchPaperBitWidths) {
  const cs::Table& l = db_->table("lineitem");
  // Paper §VI-D1: l_quantity 50 values / 6 bits, l_discount 10..11 values /
  // 4 bits, l_shipdate 2526 values / 12 bits.
  EXPECT_EQ(l.column("l_quantity").min_value(), 1);
  EXPECT_EQ(l.column("l_quantity").max_value(), 50);
  EXPECT_EQ(l.column("l_discount").min_value(), 0);
  EXPECT_EQ(l.column("l_discount").max_value(), 10);
  EXPECT_EQ(l.column("l_tax").max_value(), 8);
  const int64_t ship_span = l.column("l_shipdate").max_value() -
                            l.column("l_shipdate").min_value();
  EXPECT_LE(bits::BitWidth(static_cast<uint64_t>(ship_span)), 12u);
  EXPECT_GE(ship_span, 2000);  // nearly the full 2526-day range
}

TEST_F(TpchDataTest, ReturnFlagLineStatusSemantics) {
  const cs::Table& l = db_->table("lineitem");
  const cs::Column& ship = l.column("l_shipdate");
  const cs::Column& status = l.column("l_linestatus");
  const cs::Column& flag = l.column("l_returnflag");
  const int64_t cutoff = DateToDays(1995, 6, 17);
  std::set<int64_t> flags;
  for (uint64_t i = 0; i < l.num_rows(); ++i) {
    ASSERT_EQ(status.Get(i), ship.Get(i) > cutoff ? 1 : 0) << i;
    flags.insert(flag.Get(i));
    // N (=1) rows are received after the cutoff, so shipped no earlier
    // than 30 days before it.
    if (flag.Get(i) == 1) {
      ASSERT_GT(ship.Get(i), cutoff - 31);
    }
  }
  EXPECT_EQ(flags.size(), 3u);  // A, N, R all occur
}

TEST_F(TpchDataTest, ExtendedPriceFormula) {
  const cs::Table& l = db_->table("lineitem");
  const cs::Column& qty = l.column("l_quantity");
  const cs::Column& price = l.column("l_extendedprice");
  const cs::Column& pk = l.column("l_partkey");
  for (uint64_t i = 0; i < 1000; ++i) {
    const int64_t k = pk.Get(i);
    const int64_t retail = 90000 + (k / 10) % 20001 + 100 * (k % 1000);
    ASSERT_EQ(price.Get(i), qty.Get(i) * retail) << i;
  }
}

TEST_F(TpchDataTest, PartTypeDictionary) {
  const cs::Table& p = db_->table("part");
  const cs::Dictionary* dict = p.dictionary("p_type");
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ(dict->size(), 150);  // 6 x 5 x 5 syllable combinations
  const cs::RangePred promo = dict->PrefixRange("PROMO");
  EXPECT_FALSE(promo.Empty());
  EXPECT_EQ(promo.hi - promo.lo + 1, 25);  // 5 x 5 PROMO types
}

TEST_F(TpchDataTest, Q1ClassicSanity) {
  auto result = core::ExecuteClassic(TpchQ1(), *db_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Q1 selects ~98% of lineitem and groups into the A/N/R x O/F
  // combinations that occur (4 in TPC-H: AF, NF, NO, RF).
  EXPECT_GE(result->num_groups(), 4u);
  EXPECT_LE(result->num_groups(), 6u);
  EXPECT_GT(result->selected_rows, db_->table("lineitem").num_rows() * 95 / 100);
  // sum_qty is positive everywhere; avg in [1, 50].
  for (uint64_t g = 0; g < result->num_groups(); ++g) {
    EXPECT_GT(result->agg_values[g][0], 0);
    const int64_t avg_qty = result->agg_values[g][4] / result->group_counts[g];
    EXPECT_GE(avg_qty, 1);
    EXPECT_LE(avg_qty, 50);
  }
}

TEST_F(TpchDataTest, Q6ClassicSelectivity) {
  auto result = core::ExecuteClassic(TpchQ6(), *db_);
  ASSERT_TRUE(result.ok());
  // Spec selectivity ~2%: 1 of 7 years x 3/11 discounts x 23/50 quantities.
  const double sel = static_cast<double>(result->selected_rows) /
                     static_cast<double>(db_->table("lineitem").num_rows());
  EXPECT_GT(sel, 0.005);
  EXPECT_LT(sel, 0.04);
  EXPECT_GT(result->agg_values[0][0], 0);
}

TEST_F(TpchDataTest, Q14PromoShare) {
  core::QuerySpec q14 = TpchQ14();
  ASSERT_TRUE(ResolvePromoFilter(*db_, &q14).ok());
  auto result = core::ExecuteClassic(q14, *db_);
  ASSERT_TRUE(result.ok());
  const int64_t promo = result->agg_values[0][0];
  const int64_t total = result->agg_values[0][1];
  ASSERT_GT(total, 0);
  const double pct = PromoRevenuePercent(promo, total);
  // PROMO is 25 of 150 types (~16.7%).
  EXPECT_GT(pct, 10.0);
  EXPECT_LT(pct, 25.0);
}

TEST(TpchScaleTest, FractionalScaleFactors) {
  cs::Database db;
  GenerateTpch(0.001, 1, &db);
  EXPECT_EQ(db.table("lineitem").num_rows(), 6000u);
  EXPECT_EQ(db.table("part").num_rows(), 200u);
}

TEST(TpchConfigTest, SpaceConstrainedDecomposesShipdate) {
  auto all = TpchAllResident();
  auto constrained = TpchSpaceConstrained();
  ASSERT_EQ(all.size(), constrained.size());
  for (uint64_t i = 0; i < all.size(); ++i) {
    if (all[i].column == "l_shipdate") {
      EXPECT_EQ(constrained[i].device_bits, 24u);
    } else {
      EXPECT_EQ(constrained[i].device_bits, all[i].device_bits);
    }
  }
}

}  // namespace
}  // namespace wastenot::workloads
