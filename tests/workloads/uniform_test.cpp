#include "workloads/uniform.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace wastenot::workloads {
namespace {

TEST(UniformTest, UniqueShuffledCoversRange) {
  cs::Column col = UniqueShuffledInts(10000, 1);
  std::set<int64_t> seen;
  for (uint64_t i = 0; i < col.size(); ++i) seen.insert(col.Get(i));
  EXPECT_EQ(seen.size(), 10000u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9999);
  EXPECT_TRUE(col.has_stats());
  EXPECT_EQ(col.max_value(), 9999);
  EXPECT_FALSE(col.sorted()) << "must be shuffled";
}

TEST(UniformTest, DeterministicPerSeed) {
  cs::Column a = UniqueShuffledInts(1000, 7);
  cs::Column b = UniqueShuffledInts(1000, 7);
  cs::Column c = UniqueShuffledInts(1000, 8);
  bool same_ab = true, same_ac = true;
  for (uint64_t i = 0; i < 1000; ++i) {
    same_ab &= a.Get(i) == b.Get(i);
    same_ac &= a.Get(i) == c.Get(i);
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(UniformTest, ThresholdSelectivity) {
  cs::Column col = UniqueShuffledInts(100000, 2);
  const int64_t t = ThresholdForSelectivity(100000, 0.1);
  uint64_t hits = 0;
  for (uint64_t i = 0; i < col.size(); ++i) hits += col.Get(i) < t;
  // Values are a permutation of 0..n-1, so selectivity is exact.
  EXPECT_EQ(hits, 10000u);
}

TEST(UniformTest, GroupKeysCardinality) {
  cs::Column col = UniformGroupKeys(50000, 100, 3);
  std::set<int64_t> seen;
  for (uint64_t i = 0; i < col.size(); ++i) seen.insert(col.Get(i));
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_GE(col.min_value(), 0);
  EXPECT_LT(col.max_value(), 100);
}

}  // namespace
}  // namespace wastenot::workloads
