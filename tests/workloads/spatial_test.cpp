#include "workloads/spatial.h"

#include <gtest/gtest.h>

#include "core/classic_engine.h"

namespace wastenot::workloads {
namespace {

TEST(SpatialTest, SchemaMatchesTableI) {
  cs::Table trips = GenerateTrips(10000, 1);
  EXPECT_EQ(trips.name(), "trips");
  for (const char* col : {"tripid", "lon", "lat", "time"}) {
    EXPECT_TRUE(trips.HasColumn(col)) << col;
  }
  EXPECT_EQ(trips.num_rows(), 10000u);
}

TEST(SpatialTest, CoordinatesInPaperBoundingBox) {
  cs::Table trips = GenerateTrips(20000, 2);
  const cs::Column& lon = trips.column("lon");
  const cs::Column& lat = trips.column("lat");
  EXPECT_GE(lon.min_value(), kLonMin);
  EXPECT_LE(lon.max_value(), kLonMax);
  EXPECT_GE(lat.min_value(), kLatMin);
  EXPECT_LE(lat.max_value(), kLatMax);
}

TEST(SpatialTest, TripsAreCorrelatedWalks) {
  cs::Table trips = GenerateTrips(5000, 3);
  const cs::Column& tripid = trips.column("tripid");
  const cs::Column& lon = trips.column("lon");
  // Consecutive fixes of one trip stay close (a walk, not noise).
  uint64_t same_trip_pairs = 0, close_pairs = 0;
  for (uint64_t i = 1; i < trips.num_rows(); ++i) {
    if (tripid.Get(i) == tripid.Get(i - 1)) {
      ++same_trip_pairs;
      close_pairs += std::abs(lon.Get(i) - lon.Get(i - 1)) < 200;
    }
  }
  ASSERT_GT(same_trip_pairs, 0u);
  EXPECT_GT(close_pairs, same_trip_pairs * 9 / 10);
}

TEST(SpatialTest, TableIQueryHasMatchesAtTinySelectivity) {
  cs::Database db;
  db.AddTable(GenerateTrips(200000, 4));
  core::QuerySpec q = SpatialRangeQuery();
  auto result = core::ExecuteClassic(q, db);
  ASSERT_TRUE(result.ok());
  const int64_t count = result->agg_values[0][0];
  EXPECT_GT(count, 0) << "the hotspot guarantees matches";
  EXPECT_LT(count, static_cast<int64_t>(200000 / 50))
      << "the Table I box is city-scale selective";
}

TEST(SpatialTest, QueryUsesTableIBounds) {
  core::QuerySpec q = SpatialRangeQuery();
  ASSERT_EQ(q.predicates.size(), 2u);
  EXPECT_EQ(q.predicates[0].range.lo, 268288);
  EXPECT_EQ(q.predicates[0].range.hi, 270228);
  EXPECT_EQ(q.predicates[1].range.lo, 5042220);
  EXPECT_EQ(q.predicates[1].range.hi, 5044850);
}

TEST(SpatialTest, ParameterizedQueryBox) {
  core::QuerySpec q = SpatialRangeQueryAt(4.9, 52.37, 0.02, 0.02);
  EXPECT_EQ(q.predicates[0].range.lo, 489000);
  EXPECT_EQ(q.predicates[0].range.hi, 491000);
}

TEST(SpatialTest, TimeMonotoneWithinTrip) {
  cs::Table trips = GenerateTrips(3000, 5);
  const cs::Column& tripid = trips.column("tripid");
  const cs::Column& time = trips.column("time");
  for (uint64_t i = 1; i < trips.num_rows(); ++i) {
    if (tripid.Get(i) == tripid.Get(i - 1)) {
      ASSERT_GT(time.Get(i), time.Get(i - 1));
    }
  }
}

}  // namespace
}  // namespace wastenot::workloads
