// AdaptiveScheduler policy and fairness battery. The pure policy
// (ChooseEngine) is pinned against fixed synthetic signals — the decision
// for each regime (large scan / tiny table / hot cache / cold cache /
// contended device / full queue) is part of the serving contract, not an
// implementation detail. The class-level tests pin weighted fair queuing
// (no starvation under a flood), per-tenant backpressure (TrySubmit
// rejects at budget, Submit blocks without deadlocking) and shutdown
// hygiene (every progressive future pair resolves).

#include "server/scheduler.h"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::server {
namespace {

/// The paper-calibrated spec every policy pin prices against.
device::DeviceSpec Spec() { return device::DeviceSpec::Gtx680(); }

/// A large analytical scan (the paper's 100 M-row regime).
device::ServingWorkload BigScan(double selectivity) {
  device::ServingWorkload w;
  w.rows = 100'000'000;
  w.value_bits = 32;
  w.device_bits = 16;
  w.num_predicates = 1;
  w.num_aggregates = 1;
  w.selectivity = selectivity;
  return w;
}

// --- pinned policy decisions ----------------------------------------------

TEST(ChooseEngineTest, LargeSelectiveScanPicksArWithCostOptimalWidth) {
  const SchedulerDecision d = ChooseEngine(Spec(), BigScan(0.01), {});
  EXPECT_EQ(d.engine, EngineKind::kAr);
  EXPECT_FALSE(d.degraded);
  EXPECT_STREQ(d.reason, "ar cheapest");
  // The cost model's argmin width for this workload: wide enough to keep
  // the false-positive band (and with it Phase R) small, narrow enough
  // that the Phase-A scan stays cheap.
  EXPECT_EQ(d.device_bits, 12u);
  EXPECT_LT(d.est_ar_seconds, d.est_streaming_seconds);
  EXPECT_LT(d.est_streaming_seconds, d.est_classic_seconds);
}

TEST(ChooseEngineTest, TinyTablePicksClassic) {
  device::ServingWorkload w;
  w.rows = 10'000;
  w.selectivity = 0.01;
  const SchedulerDecision d = ChooseEngine(Spec(), w, {});
  // Launch overhead + bus latency alone exceed a 10 k-row host scan.
  EXPECT_EQ(d.engine, EngineKind::kClassic);
  EXPECT_STREQ(d.reason, "classic cheapest");
  EXPECT_FALSE(d.degraded);
}

TEST(ChooseEngineTest, UnselectiveScanPicksStreamingWhenCacheIsHot) {
  ServingSignals warm;
  warm.cache_hit_rate = 1.0;
  const SchedulerDecision d = ChooseEngine(Spec(), BigScan(0.5), warm);
  // Half the rows survive: Phase R dominates A&R, but the device's
  // bandwidth still beats the host when inputs are resident.
  EXPECT_EQ(d.engine, EngineKind::kStreaming);
  EXPECT_STREQ(d.reason, "streaming cheapest");
}

TEST(ChooseEngineTest, UnselectiveScanPicksClassicWhenCacheIsCold) {
  ServingSignals cold;
  cold.cache_hit_rate = 0.0;
  const SchedulerDecision d = ChooseEngine(Spec(), BigScan(0.5), cold);
  // Every input byte re-crosses the 3.95 GB/s bus: streaming loses to the
  // host scan, and A&R drowns in Phase R at 50 % selectivity.
  EXPECT_EQ(d.engine, EngineKind::kClassic);
  EXPECT_STREQ(d.reason, "classic cheapest");
}

TEST(ChooseEngineTest, ContentionFlipsDeviceEnginesToClassic) {
  const device::ServingWorkload w = BigScan(0.05);
  ServingSignals idle;
  idle.cache_hit_rate = 0.0;
  const SchedulerDecision before = ChooseEngine(Spec(), w, idle);
  EXPECT_EQ(before.engine, EngineKind::kAr);

  ServingSignals busy = idle;
  busy.device_contention = 1.0;
  const SchedulerDecision after = ChooseEngine(Spec(), w, busy);
  // The contention penalty inflates both device-bound estimates
  // (est_ar/streaming are reported post-penalty); classic is untouched.
  EXPECT_EQ(after.engine, EngineKind::kClassic);
  EXPECT_FALSE(after.degraded) << "classic won on price, not by rule";
  EXPECT_GT(after.est_ar_seconds, before.est_ar_seconds);
  EXPECT_GT(after.est_streaming_seconds, before.est_streaming_seconds);
  EXPECT_EQ(after.est_classic_seconds, before.est_classic_seconds);
}

TEST(ChooseEngineTest, QueuePressureDegradesToClassicWithinRatio) {
  ServingSignals full;
  full.queue_fill = 0.8;  // >= degrade_queue_fill (0.75)
  const SchedulerDecision d = ChooseEngine(Spec(), BigScan(0.05), full);
  // Streaming is cheapest, but classic is within degrade_ratio of it, so
  // the policy sheds device work to drain the queue on host time.
  EXPECT_EQ(d.engine, EngineKind::kClassic);
  EXPECT_TRUE(d.degraded);
  EXPECT_STREQ(d.reason, "queue pressure: degraded to classic");
}

TEST(ChooseEngineTest, QueuePressureKeepsArWhenClassicIsFarOff) {
  ServingSignals full;
  full.queue_fill = 1.0;
  const SchedulerDecision d = ChooseEngine(Spec(), BigScan(0.01), full);
  // classic is ~6x the A&R estimate here — outside degrade_ratio, so
  // degrading would slow the drain, not speed it.
  EXPECT_EQ(d.engine, EngineKind::kAr);
  EXPECT_FALSE(d.degraded);
}

TEST(ChooseEngineTest, DecisionsAreDeterministic) {
  ServingSignals s;
  s.queue_fill = 0.3;
  s.cache_hit_rate = 0.7;
  s.device_contention = 0.4;
  const SchedulerDecision a = ChooseEngine(Spec(), BigScan(0.05), s);
  const SchedulerDecision b = ChooseEngine(Spec(), BigScan(0.05), s);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.device_bits, b.device_bits);
  EXPECT_EQ(a.est_ar_seconds, b.est_ar_seconds);
  EXPECT_EQ(a.est_classic_seconds, b.est_classic_seconds);
  EXPECT_EQ(a.est_streaming_seconds, b.est_streaming_seconds);
}

// --- scheduler class -------------------------------------------------------

/// Small star schema + decomposed mirror, served through a scheduler.
struct SchedulerFixture {
  cs::Database db;
  std::unique_ptr<device::Device> dev;
  std::unique_ptr<bwd::BwdTable> fact;

  explicit SchedulerFixture(uint64_t n = 8000, uint64_t seed = 11) {
    Xoshiro256 rng(seed);
    cs::Table t("fact");
    std::vector<int32_t> a(n), g(n), v(n);
    for (uint64_t i = 0; i < n; ++i) {
      a[i] = static_cast<int32_t>(rng.Below(1 << 12));
      g[i] = static_cast<int32_t>(rng.Below(5));
      v[i] = static_cast<int32_t>(rng.Below(500));
    }
    auto add = [&t](const char* name, std::vector<int32_t>& vals) {
      cs::Column col = cs::Column::FromI32(vals);
      col.ComputeStats();
      (void)t.AddColumn(name, std::move(col));
    };
    add("a", a);
    add("g", g);
    add("v", v);
    db.AddTable(std::move(t));
    device::DeviceSpec spec;
    spec.memory_capacity = 128 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    fact = std::make_unique<bwd::BwdTable>(
        std::move(bwd::BwdTable::Decompose(
                      db.table("fact"),
                      {{"a", 7, bwd::Compression::kBitPacked},
                       {"g", 3, bwd::Compression::kBitPacked},
                       {"v", 5, bwd::Compression::kBitPacked}},
                      dev.get()))
            .value());
  }

  QueryServer::Backend backend() {
    QueryServer::Backend b;
    b.db = &db;
    b.fact = &*fact;
    b.device = dev.get();
    return b;
  }

  core::QuerySpec Query(uint64_t variant) const {
    core::QuerySpec q;
    q.table = "fact";
    q.predicates = {{"a", cs::RangePred::Lt(static_cast<int64_t>(
                              256 + 128 * (variant % 13)))}};
    q.group_by = {"g"};
    q.aggregates = {core::Aggregate::SumOf("v", "sum_v"),
                    core::Aggregate::CountStar("n")};
    return q;
  }
};

TEST(AdaptiveSchedulerTest, ServesProgressivelyAndAdaptsWorkload) {
  SchedulerFixture f;
  SchedulerOptions opts;
  opts.server.num_workers = 2;
  AdaptiveScheduler scheduler(f.backend(), opts);

  // The 8000-row fixture prices in the launch-overhead regime: A&R's
  // Phase R refinement never wins; which of classic/streaming is cheapest
  // depends on live contention, so the test pins the evidence, not the
  // winner (the winners are pinned by the ChooseEngineTest battery above).
  const SchedulerDecision d = scheduler.Decide(f.Query(3));
  EXPECT_NE(d.engine, EngineKind::kAr);
  EXPECT_GT(d.est_ar_seconds, 0.0);
  EXPECT_GT(d.est_classic_seconds, 0.0);
  EXPECT_GT(d.est_streaming_seconds, 0.0);
  EXPECT_STRNE(d.reason, "");
  const device::ServingWorkload w = scheduler.EstimateWorkload(f.Query(3));
  EXPECT_EQ(w.rows, 8000u);
  EXPECT_EQ(w.num_predicates, 1u);
  EXPECT_EQ(w.num_aggregates, 2u);
  EXPECT_GT(w.selectivity, 0.0);
  EXPECT_LT(w.selectivity, 1.0);

  ProgressiveFutures p = scheduler.Submit("alice", f.Query(3));
  QueryResponse refined = p.refined.get();
  ASSERT_TRUE(refined.status.ok()) << refined.status.ToString();
  ApproximateResponse approx = p.approximate.get();
  ASSERT_TRUE(approx.status.ok());
  EXPECT_EQ(approx.id, refined.id);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.dispatched[0] + stats.dispatched[1] + stats.dispatched[2],
            1u);
  ASSERT_EQ(stats.tenants.count("alice"), 1u);
  EXPECT_EQ(stats.tenants.at("alice").completed, 1u);
  EXPECT_EQ(stats.tenants.at("alice").outstanding, 0u);
}

// A heavyweight flood from one tenant must not starve a light tenant:
// with WFQ tags, the light tenant's entries interleave ahead of the
// flood's tail instead of queueing behind all of it.
TEST(AdaptiveSchedulerTest, FairQueuingPreventsStarvation) {
  SchedulerFixture f;
  SchedulerOptions opts;
  opts.server.num_workers = 1;
  opts.server.queue_capacity = 1;  // dispatch rate = serve rate
  opts.capacity = 64;              // budgets never bind in this test
  AdaptiveScheduler scheduler(f.backend(), opts);
  scheduler.RegisterTenant("greedy", 1.0);
  scheduler.RegisterTenant("light", 4.0);

  constexpr int kFlood = 12;
  constexpr int kLight = 3;
  std::vector<ProgressiveFutures> flood;
  for (int i = 0; i < kFlood; ++i) {
    flood.push_back(scheduler.Submit("greedy", f.Query(i)));
  }
  std::vector<ProgressiveFutures> light;
  for (int i = 0; i < kLight; ++i) {
    light.push_back(scheduler.Submit("light", f.Query(i)));
  }

  uint64_t greedy_last = 0;
  for (auto& p : flood) {
    QueryResponse r = p.refined.get();
    ASSERT_TRUE(r.status.ok());
    greedy_last = std::max(greedy_last, r.sequence);
  }
  uint64_t light_last = 0;
  for (auto& p : light) {
    QueryResponse r = p.refined.get();
    ASSERT_TRUE(r.status.ok());
    light_last = std::max(light_last, r.sequence);
  }
  // The light tenant finished strictly before the flood's tail (with its
  // 4x weight its virtual finish tags slot just past the flood's head).
  EXPECT_LT(light_last, greedy_last)
      << "light tenant starved behind the flood";
}

// Deterministic backpressure: nothing completes (zero server workers), so
// tenant in-flight counts only grow; TrySubmit must reject exactly at the
// tenant budget and Shutdown must resolve every future pair.
TEST(AdaptiveSchedulerTest, TrySubmitRejectsAtTenantBudget) {
  SchedulerFixture f;
  SchedulerOptions opts;
  opts.server.num_workers = 0;
  opts.capacity = 4;  // single tenant: budget = 4
  AdaptiveScheduler scheduler(f.backend(), opts);

  std::vector<ProgressiveFutures> admitted;
  for (int i = 0; i < 4; ++i) {
    ProgressiveFutures p;
    ASSERT_TRUE(scheduler.TrySubmit("alice", f.Query(i), &p)) << "i=" << i;
    admitted.push_back(std::move(p));
  }
  ProgressiveFutures overflow;
  EXPECT_FALSE(scheduler.TrySubmit("alice", f.Query(9), &overflow));
  EXPECT_FALSE(scheduler.TrySubmit("alice", f.Query(10), &overflow));

  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.rejected, 2u);
  ASSERT_EQ(stats.tenants.count("alice"), 1u);
  EXPECT_EQ(stats.tenants.at("alice").budget, 4u);
  EXPECT_EQ(stats.tenants.at("alice").submitted, 4u);

  // Shutdown cancels everything; both futures of every pair resolve.
  scheduler.Shutdown();
  for (auto& p : admitted) {
    ApproximateResponse approx = p.approximate.get();
    QueryResponse refined = p.refined.get();
    EXPECT_FALSE(approx.status.ok());
    EXPECT_TRUE(approx.exact_fallback);
    EXPECT_FALSE(refined.status.ok());
  }
  EXPECT_FALSE(scheduler.TrySubmit("alice", f.Query(0), &overflow));
}

// Submit past the budget blocks — and unblocks as completions free the
// tenant's share. Several producers, small budget: every future resolves.
TEST(AdaptiveSchedulerTest, SubmitBlocksAtBudgetWithoutDeadlock) {
  SchedulerFixture f;
  SchedulerOptions opts;
  opts.server.num_workers = 1;
  opts.capacity = 2;  // single tenant: budget = 2
  AdaptiveScheduler scheduler(f.backend(), opts);

  constexpr int kProducers = 3;
  constexpr int kPerProducer = 4;
  std::atomic<int> wrong{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        ProgressiveFutures fut = scheduler.Submit("alice", f.Query(i));
        QueryResponse refined = fut.refined.get();
        ApproximateResponse approx = fut.approximate.get();
        if (!refined.status.ok() || !approx.status.ok()) wrong.fetch_add(1);
      }
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(wrong.load(), 0);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.tenants.at("alice").completed,
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(stats.tenants.at("alice").outstanding, 0u);
}

// A tenant consuming most of its share is degraded to the classic engine
// at dispatch. Deterministic with zero workers: every entry dispatches
// with the tenant's whole flood in flight, so every dispatch degrades.
// The tiny host bandwidth makes the policy otherwise prefer A&R, so the
// degrades are attributable to the tenant rule alone.
TEST(AdaptiveSchedulerTest, TenantOverShareDegradesToClassic) {
  SchedulerFixture f;
  SchedulerOptions opts;
  opts.server.num_workers = 0;
  opts.capacity = 8;  // single tenant: budget 8, degrade at in-flight >= 4
  opts.workload.host_bandwidth = 1e5;  // classic priced out on merit
  AdaptiveScheduler scheduler(f.backend(), opts);

  ASSERT_NE(scheduler.Decide(f.Query(0)).engine, EngineKind::kClassic)
      << "fixture must price a device engine cheapest for this test to "
         "mean anything";

  std::vector<ProgressiveFutures> admitted;
  for (int i = 0; i < 8; ++i) {
    ProgressiveFutures p;
    ASSERT_TRUE(scheduler.TrySubmit("alice", f.Query(i), &p));
    admitted.push_back(std::move(p));
  }
  // Dispatch happens asynchronously; wait for the dispatcher to forward
  // everything into the (zero-worker) server queue.
  while (scheduler.server().queue_depth() < 8) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.tenants.at("alice").dispatched, 8u);
  EXPECT_GE(stats.degraded, 5u)
      << "every dispatch at in-flight >= 4 must degrade";
  EXPECT_GE(stats.dispatched[static_cast<size_t>(EngineKind::kClassic)], 5u);
  scheduler.Shutdown();
  for (auto& p : admitted) {
    p.refined.get();
    p.approximate.get();
  }
}

TEST(AdaptiveSchedulerTest, ShutdownIsIdempotentAndSubmitAfterResolves) {
  SchedulerFixture f;
  SchedulerOptions opts;
  opts.server.num_workers = 1;
  AdaptiveScheduler scheduler(f.backend(), opts);
  QueryResponse ok = scheduler.Submit("alice", f.Query(0)).refined.get();
  EXPECT_TRUE(ok.status.ok());
  scheduler.Shutdown();
  scheduler.Shutdown();  // idempotent
  ProgressiveFutures late = scheduler.Submit("alice", f.Query(1));
  EXPECT_EQ(late.refined.get().status.code(), StatusCode::kInternal);
  EXPECT_FALSE(late.approximate.get().status.ok());
}

// Mixed-tenant stress under TSan: concurrent submissions from several
// tenants, concurrent stats()/SampleSignals() readers, and a shutdown
// racing the tail of the traffic. Every future must resolve.
TEST(AdaptiveSchedulerTest, MixedTenantStress) {
  SchedulerFixture f(4000);
  SchedulerOptions opts;
  opts.server.num_workers = 3;
  opts.server.queue_capacity = 8;
  opts.capacity = 16;
  AdaptiveScheduler scheduler(f.backend(), opts);
  scheduler.RegisterTenant("t0", 1.0);
  scheduler.RegisterTenant("t1", 2.0);
  scheduler.RegisterTenant("t2", 4.0);

  std::atomic<int> unresolved{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      const std::string tenant = "t" + std::to_string(c);
      for (int i = 0; i < 12; ++i) {
        if (i % 3 == 0) {
          ProgressiveFutures p;
          if (scheduler.TrySubmit(tenant, f.Query(i), &p)) {
            p.refined.get();
            p.approximate.get();
          }
        } else {
          ProgressiveFutures p = scheduler.Submit(tenant, f.Query(i));
          QueryResponse refined = p.refined.get();
          if (p.approximate.wait_for(std::chrono::seconds(5)) !=
              std::future_status::ready) {
            unresolved.fetch_add(1);
          } else {
            p.approximate.get();
          }
          (void)refined;
        }
      }
    });
  }
  std::thread observer([&] {
    while (!stop.load()) {
      (void)scheduler.stats();
      (void)scheduler.SampleSignals();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& c : clients) c.join();
  stop.store(true);
  observer.join();
  EXPECT_EQ(unresolved.load(), 0);
  scheduler.Shutdown();
}

}  // namespace
}  // namespace wastenot::server
