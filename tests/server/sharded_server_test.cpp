// QueryServer sharded dispatch and serving statistics: per-engine
// submitted/completed counts, sharded-backend routing through
// ExecuteArSharded / ExecuteStreamingSharded, and per-shard admission
// accounting (queue depth, qps).

#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/classic_engine.h"
#include "server/query_server.h"
#include "util/random.h"

namespace wastenot::server {
namespace {

/// A fact table range-sharded on "k" over a 3-device group, plus the
/// matching shard databases for the streaming path.
struct ShardedFixture {
  cs::Database db;
  std::unique_ptr<device::DeviceGroup> group;
  std::unique_ptr<bwd::ShardedBwdTable> fact;
  std::vector<cs::Database> shard_dbs;

  explicit ShardedFixture(uint64_t n = 5000, uint32_t shards = 3) {
    Xoshiro256 rng(21);
    cs::Table t("fact");
    std::vector<int32_t> k(n), g(n), v(n);
    for (uint64_t i = 0; i < n; ++i) {
      k[i] = static_cast<int32_t>(rng.Below(900));
      g[i] = static_cast<int32_t>(rng.Below(5));
      v[i] = static_cast<int32_t>(rng.Below(500));
    }
    auto add = [&t](const char* name, std::vector<int32_t>& vals) {
      cs::Column col = cs::Column::FromI32(vals);
      col.ComputeStats();
      (void)t.AddColumn(name, std::move(col));
    };
    add("k", k);
    add("g", g);
    add("v", v);
    db.AddTable(std::move(t));

    device::DeviceGroupOptions gopts;
    gopts.num_devices = shards;
    gopts.base.memory_capacity = 64 << 20;
    gopts.worker_threads = 1;
    group = std::make_unique<device::DeviceGroup>(gopts);
    fact = std::make_unique<bwd::ShardedBwdTable>(
        std::move(bwd::DecomposeSharded(
                      db.table("fact"),
                      {{"k", 10, bwd::Compression::kBitPacked},
                       {"g", 3, bwd::Compression::kBitPacked},
                       {"v", 9, bwd::Compression::kBitPacked}},
                      bwd::PartitionSpec{bwd::PartitionKind::kRange, "k",
                                         shards},
                      group.get()))
            .value());
    shard_dbs = bwd::BuildShardDatabases(fact->partition, {});
  }

  QueryServer::Backend backend() {
    QueryServer::Backend b;
    b.db = &db;  // classic fallback
    b.sharded_fact = &*fact;
    b.shard_dbs = &shard_dbs;
    b.group = group.get();
    return b;
  }

  core::QuerySpec Query(int64_t key_hi) const {
    core::QuerySpec q;
    q.table = "fact";
    q.predicates = {{"k", cs::RangePred::Lt(key_hi)}};
    q.group_by = {"g"};
    q.aggregates = {core::Aggregate::SumOf("v", "sum_v"),
                    core::Aggregate::CountStar("n")};
    return q;
  }
};

TEST(ShardedServerTest, AllEnginesServeIdenticalResults) {
  ShardedFixture f;
  ServerOptions opts;
  opts.num_workers = 2;
  QueryServer server(f.backend(), opts);

  auto reference = core::ExecuteClassic(f.Query(450), f.db);
  ASSERT_TRUE(reference.ok());

  for (EngineKind engine : {EngineKind::kAr, EngineKind::kClassic,
                            EngineKind::kStreaming}) {
    QueryRequest req;
    req.query = f.Query(450);
    req.engine = engine;
    QueryResponse resp = server.Submit(std::move(req)).get();
    ASSERT_TRUE(resp.status.ok())
        << static_cast<int>(engine) << ": " << resp.status.ToString();
    EXPECT_EQ(resp.result, *reference) << static_cast<int>(engine);
  }
  server.Shutdown();
}

TEST(ShardedServerTest, PerEngineCounts) {
  ShardedFixture f;
  ServerOptions opts;
  opts.num_workers = 2;
  QueryServer server(f.backend(), opts);

  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    QueryRequest req;
    req.query = f.Query(300 + 50 * i);
    req.engine = EngineKind::kAr;
    futures.push_back(server.Submit(std::move(req)));
  }
  for (int i = 0; i < 2; ++i) {
    QueryRequest req;
    req.query = f.Query(600);
    req.engine = EngineKind::kClassic;
    futures.push_back(server.Submit(std::move(req)));
  }
  {
    QueryRequest req;
    req.query = f.Query(700);
    req.engine = EngineKind::kStreaming;
    futures.push_back(server.Submit(std::move(req)));
  }
  for (auto& fu : futures) ASSERT_TRUE(fu.get().status.ok());
  server.Drain();

  const ServerStats stats = server.stats();
  const auto& ar = stats.engines[static_cast<size_t>(EngineKind::kAr)];
  const auto& classic =
      stats.engines[static_cast<size_t>(EngineKind::kClassic)];
  const auto& streaming =
      stats.engines[static_cast<size_t>(EngineKind::kStreaming)];
  EXPECT_EQ(ar.submitted, 4u);
  EXPECT_EQ(ar.completed, 4u);
  EXPECT_EQ(ar.failed, 0u);
  EXPECT_EQ(classic.submitted, 2u);
  EXPECT_EQ(classic.completed, 2u);
  EXPECT_EQ(streaming.submitted, 1u);
  EXPECT_EQ(streaming.completed, 1u);
  EXPECT_EQ(ar.completed + classic.completed + streaming.completed,
            stats.completed);
  server.Shutdown();
}

TEST(ShardedServerTest, FailedRequestsCountPerEngine) {
  ShardedFixture f;
  ServerOptions opts;
  opts.num_workers = 1;
  QueryServer server(f.backend(), opts);
  QueryRequest req;
  req.query = f.Query(450);
  req.query.table = "no_such_table";
  req.engine = EngineKind::kClassic;
  QueryResponse resp = server.Submit(std::move(req)).get();
  EXPECT_FALSE(resp.status.ok());
  const ServerStats stats = server.stats();
  const auto& classic =
      stats.engines[static_cast<size_t>(EngineKind::kClassic)];
  EXPECT_EQ(classic.submitted, 1u);
  EXPECT_EQ(classic.failed, 1u);
  EXPECT_EQ(classic.completed, 0u);
  server.Shutdown();
}

TEST(ShardedServerTest, PerShardAccountingFollowsPlacement) {
  ShardedFixture f;  // 3 shards, key hulls [0,299] [300,599] [600,899]
  ServerOptions opts;
  opts.num_workers = 1;
  QueryServer server(f.backend(), opts);

  // k < 200 targets only shard 0; k < 650 targets all three.
  ASSERT_TRUE(server.Submit({f.Query(200), EngineKind::kAr}).get().status.ok());
  ASSERT_TRUE(server.Submit({f.Query(650), EngineKind::kAr}).get().status.ok());
  // Classic requests carry no shard placement.
  ASSERT_TRUE(
      server.Submit({f.Query(650), EngineKind::kClassic}).get().status.ok());
  server.Drain();

  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.shards.size(), 3u);
  EXPECT_EQ(stats.shards[0].submitted, 2u);
  EXPECT_EQ(stats.shards[1].submitted, 1u);
  EXPECT_EQ(stats.shards[2].submitted, 1u);
  for (const ShardStats& s : stats.shards) {
    EXPECT_EQ(s.completed, s.submitted);
    EXPECT_EQ(s.queue_depth, 0u);
    EXPECT_GT(s.qps, 0.0);
  }
  server.Shutdown();
}

TEST(ShardedServerTest, SingleDeviceBackendHasNoShardStats) {
  ShardedFixture f;
  QueryServer::Backend single;
  single.db = &f.db;
  ServerOptions opts;
  opts.num_workers = 1;
  QueryServer server(single, opts);
  ASSERT_TRUE(
      server.Submit({f.Query(450), EngineKind::kClassic}).get().status.ok());
  EXPECT_TRUE(server.stats().shards.empty());
  server.Shutdown();
}

TEST(ShardedServerTest, CancelledRequestsReleaseShardQueueDepth) {
  ShardedFixture f;
  ServerOptions opts;
  opts.num_workers = 0;  // nothing drains the queue
  opts.queue_capacity = 8;
  QueryServer server(f.backend(), opts);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.Submit({f.Query(200), EngineKind::kAr}));
  }
  {
    const ServerStats stats = server.stats();
    ASSERT_EQ(stats.shards.size(), 3u);
    EXPECT_EQ(stats.shards[0].queue_depth, 3u);
    EXPECT_EQ(stats.shards[1].queue_depth, 0u);
  }
  server.Shutdown();  // cancels all three
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cancelled, 3u);
  EXPECT_EQ(stats.shards[0].queue_depth, 0u);
  for (auto& fu : futures) EXPECT_FALSE(fu.get().status.ok());
}

}  // namespace
}  // namespace wastenot::server
