// Multi-join plan serving, end to end: TPC-H Q3 and Q10 submitted as
// physical-plan requests through QueryServer (every engine, single-device
// and sharded backends) and through the AdaptiveScheduler, whose policy
// prices plans with core::EstimatePlanCost. All paths must produce the
// classic reference result exactly (canonical SortByKeys order).

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bwd/partition.h"
#include "server/scheduler.h"
#include "workloads/tpch.h"

namespace wastenot::server {
namespace {

std::vector<bwd::DecomposeRequest> LineitemResident() {
  std::vector<bwd::DecomposeRequest> reqs = workloads::TpchAllResident();
  for (auto& r : workloads::TpchMultiJoinResident()) reqs.push_back(r);
  return reqs;
}

/// A small TPC-H instance (lineitem + orders + customer), decomposed for
/// every serving mode: single device, and range-sharded on l_orderkey over
/// a 3-device group with per-device dimension replicas.
struct TpchServingFixture {
  cs::Database db;
  std::unique_ptr<device::Device> dev;
  std::unique_ptr<bwd::BwdTable> lineitem;
  std::unique_ptr<bwd::BwdTable> orders;
  std::unique_ptr<bwd::BwdTable> customer;
  core::BwdTableMap dim_tables;

  std::unique_ptr<device::DeviceGroup> group;
  std::unique_ptr<bwd::ShardedBwdTable> sharded_fact;
  std::vector<bwd::BwdTable> orders_replicas;
  std::vector<bwd::BwdTable> customer_replicas;
  std::vector<core::BwdTableMap> dim_maps;
  std::vector<cs::Database> shard_dbs;

  TpchServingFixture() {
    workloads::GenerateTpch(/*sf=*/0.001, /*seed=*/7, &db);

    device::DeviceSpec spec;
    spec.memory_capacity = 256 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    auto decompose = [this](const char* table,
                            const std::vector<bwd::DecomposeRequest>& reqs) {
      return std::make_unique<bwd::BwdTable>(std::move(
          bwd::BwdTable::Decompose(db.table(table), reqs, dev.get())
              .value()));
    };
    lineitem = decompose("lineitem", LineitemResident());
    orders = decompose("orders", workloads::TpchOrdersResident());
    customer = decompose("customer", workloads::TpchCustomerResident());
    dim_tables = {{"orders", orders.get()}, {"customer", customer.get()}};

    const uint32_t shards = 3;
    device::DeviceGroupOptions gopts;
    gopts.num_devices = shards;
    gopts.base.memory_capacity = 256 << 20;
    gopts.worker_threads = 1;
    group = std::make_unique<device::DeviceGroup>(gopts);
    sharded_fact = std::make_unique<bwd::ShardedBwdTable>(
        std::move(bwd::DecomposeSharded(
                      db.table("lineitem"), LineitemResident(),
                      bwd::PartitionSpec{bwd::PartitionKind::kRange,
                                         "l_orderkey", shards},
                      group.get())
                      .value()));
    orders_replicas = std::move(
        bwd::ReplicatePerDevice(db.table("orders"),
                                workloads::TpchOrdersResident(), group.get())
            .value());
    customer_replicas =
        std::move(bwd::ReplicatePerDevice(db.table("customer"),
                                          workloads::TpchCustomerResident(),
                                          group.get())
                      .value());
    for (uint32_t d = 0; d < shards; ++d) {
      dim_maps.push_back({{"orders", &orders_replicas[d]},
                          {"customer", &customer_replicas[d]}});
    }
    shard_dbs = bwd::BuildShardDatabases(
        sharded_fact->partition,
        {&db.table("orders"), &db.table("customer")});
  }

  QueryServer::Backend SingleDevice() {
    QueryServer::Backend b;
    b.db = &db;
    b.fact = lineitem.get();
    b.device = dev.get();
    b.dim_tables = &dim_tables;
    return b;
  }

  QueryServer::Backend Sharded() {
    QueryServer::Backend b;
    b.db = &db;
    b.sharded_fact = sharded_fact.get();
    b.shard_dbs = &shard_dbs;
    b.group = group.get();
    b.dim_maps = &dim_maps;
    return b;
  }
};

class PlanServerTest : public ::testing::Test {
 protected:
  static TpchServingFixture& fixture() {
    static TpchServingFixture* f = new TpchServingFixture();
    return *f;
  }
};

TEST_F(PlanServerTest, Q3AndQ10ThroughEveryEngineSingleDevice) {
  TpchServingFixture& f = fixture();
  ServerOptions opts;
  opts.num_workers = 2;
  QueryServer server(f.SingleDevice(), opts);

  for (core::PhysicalPlan plan :
       {workloads::TpchQ3(), workloads::TpchQ10()}) {
    auto reference = core::ExecutePlanClassic(plan, f.db);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ASSERT_GT(reference->num_groups(), 0u) << plan.name;
    for (EngineKind engine : {EngineKind::kAr, EngineKind::kClassic,
                              EngineKind::kStreaming}) {
      QueryRequest req;
      req.plan = plan;
      req.engine = engine;
      QueryResponse resp = server.Submit(std::move(req)).get();
      ASSERT_TRUE(resp.status.ok())
          << plan.name << " engine " << static_cast<int>(engine) << ": "
          << resp.status.ToString();
      EXPECT_EQ(resp.result, *reference)
          << plan.name << " engine " << static_cast<int>(engine);
    }
  }
  server.Shutdown();
}

TEST_F(PlanServerTest, Q3AndQ10ThroughEveryEngineSharded) {
  TpchServingFixture& f = fixture();
  ServerOptions opts;
  opts.num_workers = 2;
  QueryServer server(f.Sharded(), opts);

  for (core::PhysicalPlan plan :
       {workloads::TpchQ3(), workloads::TpchQ10()}) {
    auto reference = core::ExecutePlanClassic(plan, f.db);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (EngineKind engine : {EngineKind::kAr, EngineKind::kClassic,
                              EngineKind::kStreaming}) {
      QueryRequest req;
      req.plan = plan;
      req.engine = engine;
      QueryResponse resp = server.Submit(std::move(req)).get();
      ASSERT_TRUE(resp.status.ok())
          << plan.name << " engine " << static_cast<int>(engine) << ": "
          << resp.status.ToString();
      EXPECT_EQ(resp.result, *reference)
          << plan.name << " engine " << static_cast<int>(engine);
    }
  }
  server.Shutdown();
}

TEST_F(PlanServerTest, AdaptiveSchedulerServesPlans) {
  TpchServingFixture& f = fixture();
  SchedulerOptions opts;
  opts.server.num_workers = 2;
  AdaptiveScheduler scheduler(f.SingleDevice(), opts);

  for (core::PhysicalPlan plan :
       {workloads::TpchQ3(), workloads::TpchQ10()}) {
    auto reference = core::ExecutePlanClassic(plan, f.db);
    ASSERT_TRUE(reference.ok());

    // The policy prices the plan (EstimatePlanCost) and names a rule.
    const SchedulerDecision decision = scheduler.Decide(plan);
    EXPECT_GT(decision.est_ar_seconds, 0.0);
    EXPECT_GT(decision.est_classic_seconds, 0.0);
    EXPECT_GT(decision.est_streaming_seconds, 0.0);

    ProgressiveFutures futures = scheduler.Submit("analyst", plan);
    ApproximateResponse approx = futures.approximate.get();
    ASSERT_TRUE(approx.status.ok()) << approx.status.ToString();
    QueryResponse refined = futures.refined.get();
    ASSERT_TRUE(refined.status.ok()) << refined.status.ToString();
    EXPECT_EQ(refined.result, *reference) << plan.name;
  }
  const SchedulerStats stats = scheduler.stats();
  uint64_t dispatched = 0;
  for (uint64_t d : stats.dispatched) dispatched += d;
  EXPECT_EQ(dispatched, 2u);
  scheduler.Shutdown();
}

TEST_F(PlanServerTest, PlanWorkloadEstimateSeesHopZeroFilters) {
  TpchServingFixture& f = fixture();
  SchedulerOptions opts;
  opts.server.num_workers = 1;
  AdaptiveScheduler scheduler(f.SingleDevice(), opts);
  // Q3's only hop-0 filter is the shipdate cut; the derived workload must
  // reflect it (one predicate, selective) rather than the defaults.
  const device::ServingWorkload w =
      scheduler.EstimateWorkload(workloads::TpchQ3());
  EXPECT_EQ(w.num_predicates, 1u);
  EXPECT_EQ(w.rows, f.db.table("lineitem").num_rows());
  EXPECT_LT(w.selectivity, 1.0);
  scheduler.Shutdown();
}

TEST_F(PlanServerTest, MissingDimensionFailsRequestNotServer) {
  TpchServingFixture& f = fixture();
  QueryServer::Backend backend = f.SingleDevice();
  backend.dim_tables = nullptr;  // no decomposed side tables registered
  ServerOptions opts;
  opts.num_workers = 1;
  QueryServer server(backend, opts);
  QueryRequest req;
  req.plan = workloads::TpchQ3();
  req.engine = EngineKind::kAr;
  QueryResponse resp = server.Submit(std::move(req)).get();
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument);
  // The server survives and keeps serving.
  QueryRequest classic;
  classic.plan = workloads::TpchQ3();
  classic.engine = EngineKind::kClassic;
  EXPECT_TRUE(server.Submit(std::move(classic)).get().status.ok());
  server.Shutdown();
}

}  // namespace
}  // namespace wastenot::server
