#include "server/query_server.h"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/classic_engine.h"
#include "util/random.h"

namespace wastenot::server {
namespace {

/// A small star schema + decomposed mirror + shared device, served by a
/// QueryServer under test.
struct ServerFixture {
  cs::Database db;
  std::unique_ptr<device::Device> dev;
  std::unique_ptr<bwd::BwdTable> fact;
  std::unique_ptr<bwd::BwdTable> dim;

  explicit ServerFixture(uint64_t n = 8000, uint64_t seed = 11) {
    Xoshiro256 rng(seed);
    const uint64_t dim_rows = 32;
    {
      cs::Table fact_t("fact");
      std::vector<int32_t> a(n), g(n), v(n), fk(n);
      for (uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(rng.Below(1 << 12));
        g[i] = static_cast<int32_t>(rng.Below(5));
        v[i] = static_cast<int32_t>(rng.Below(500));
        fk[i] = static_cast<int32_t>(1 + rng.Below(dim_rows));
      }
      auto add = [&fact_t](const char* name, std::vector<int32_t>& vals) {
        cs::Column col = cs::Column::FromI32(vals);
        col.ComputeStats();
        (void)fact_t.AddColumn(name, std::move(col));
      };
      add("a", a);
      add("g", g);
      add("v", v);
      add("fk", fk);
      db.AddTable(std::move(fact_t));
    }
    {
      cs::Table dim_t("dim");
      std::vector<int32_t> w(dim_rows);
      for (uint64_t i = 0; i < dim_rows; ++i) {
        w[i] = static_cast<int32_t>(rng.Below(20));
      }
      cs::Column col = cs::Column::FromI32(w);
      col.ComputeStats();
      (void)dim_t.AddColumn("w", std::move(col));
      db.AddTable(std::move(dim_t));
    }
    device::DeviceSpec spec;
    spec.memory_capacity = 128 << 20;
    dev = std::make_unique<device::Device>(spec, 2);
    fact = std::make_unique<bwd::BwdTable>(
        std::move(bwd::BwdTable::Decompose(
                      db.table("fact"),
                      {{"a", 7, bwd::Compression::kBitPacked},
                       {"g", 3, bwd::Compression::kBitPacked},
                       {"v", 5, bwd::Compression::kBitPacked},
                       {"fk", 32, bwd::Compression::kBitPacked}},
                      dev.get()))
            .value());
    dim = std::make_unique<bwd::BwdTable>(
        std::move(bwd::BwdTable::Decompose(
                      db.table("dim"),
                      {{"w", 32, bwd::Compression::kBitPacked}},
                      dev.get()))
            .value());
  }

  QueryServer::Backend backend() {
    return QueryServer::Backend{&db, &*fact, &*dim, dev.get()};
  }

  core::QuerySpec Query(uint64_t variant) const {
    core::QuerySpec q;
    q.table = "fact";
    q.predicates = {{"a", cs::RangePred::Lt(static_cast<int64_t>(
                              256 + 128 * (variant % 13)))}};
    q.group_by = {"g"};
    q.aggregates = {core::Aggregate::SumOf("v", "sum_v"),
                    core::Aggregate::CountStar("n")};
    return q;
  }

  QueryRequest Request(uint64_t variant, EngineKind engine = EngineKind::kAr) {
    QueryRequest req;
    req.query = Query(variant);
    req.engine = engine;
    return req;
  }
};

TEST(QueryServerTest, ServesCorrectResultsOnAllEngines) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 2;
  QueryServer server(f.backend(), opts);

  auto reference = core::ExecuteClassic(f.Query(4), f.db);
  ASSERT_TRUE(reference.ok());
  for (EngineKind engine : {EngineKind::kAr, EngineKind::kClassic,
                            EngineKind::kStreaming}) {
    auto future = server.Submit(f.Request(4, engine));
    QueryResponse resp = future.get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.result, *reference)
        << "engine " << static_cast<int>(engine);
    EXPECT_GE(resp.latency_seconds, resp.queue_seconds);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(QueryServerTest, SingleWorkerCompletesInAdmissionOrder) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 32;
  QueryServer server(f.backend(), opts);

  std::vector<std::future<QueryResponse>> futures;
  for (uint64_t i = 0; i < 10; ++i) {
    futures.push_back(server.Submit(f.Request(i)));
  }
  uint64_t last_sequence = 0;
  for (uint64_t i = 0; i < futures.size(); ++i) {
    QueryResponse resp = futures[i].get();
    ASSERT_TRUE(resp.status.ok());
    EXPECT_EQ(resp.id, i + 1) << "ids are admission order, from 1";
    if (i > 0) {
      EXPECT_GT(resp.sequence, last_sequence)
          << "one worker serves FIFO: completion order == admission order";
    }
    last_sequence = resp.sequence;
  }
}

// Admission control, observed deterministically with zero workers:
// nothing drains the queue, so TrySubmit fills it to capacity and then
// rejects; Shutdown cancels the queued requests.
TEST(QueryServerTest, TrySubmitRejectsWhenQueueFull) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 0;
  opts.queue_capacity = 3;
  QueryServer server(f.backend(), opts);

  std::vector<std::future<QueryResponse>> admitted;
  for (int i = 0; i < 3; ++i) {
    std::future<QueryResponse> future;
    ASSERT_TRUE(server.TrySubmit(f.Request(i), &future)) << "i=" << i;
    admitted.push_back(std::move(future));
  }
  EXPECT_EQ(server.queue_depth(), 3u);

  std::future<QueryResponse> overflow;
  EXPECT_FALSE(server.TrySubmit(f.Request(9), &overflow));
  EXPECT_FALSE(server.TrySubmit(f.Request(10), &overflow));

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.max_queue_depth, 3u);

  server.Shutdown();
  for (auto& future : admitted) {
    QueryResponse resp = future.get();
    EXPECT_FALSE(resp.status.ok()) << "cancelled at shutdown";
  }
  stats = server.stats();
  EXPECT_EQ(stats.cancelled, 3u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(QueryServerTest, SubmitBlocksUntilSpaceThenServes) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 2;
  QueryServer server(f.backend(), opts);

  // More submissions than capacity from several producers: every Submit
  // must eventually admit (workers drain the queue) and every future must
  // resolve with a correct result.
  auto reference = core::ExecuteClassic(f.Query(1), f.db);
  ASSERT_TRUE(reference.ok());
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 6;
  std::atomic<int> wrong{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto future = server.Submit(f.Request(1));
        QueryResponse resp = future.get();
        if (!resp.status.ok() || !(resp.result == *reference)) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(wrong.load(), 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed,
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_LE(stats.max_queue_depth, 2u);
}

TEST(QueryServerTest, EngineErrorsFailTheQueryNotTheServer) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 1;
  QueryServer server(f.backend(), opts);

  QueryRequest bad;
  bad.query.table = "fact";
  bad.query.predicates = {{"no_such_column", cs::RangePred::Lt(1)}};
  bad.engine = EngineKind::kAr;
  QueryResponse resp = server.Submit(std::move(bad)).get();
  EXPECT_EQ(resp.status.code(), StatusCode::kNotFound);

  // The server keeps serving afterwards.
  QueryResponse good = server.Submit(f.Request(2)).get();
  EXPECT_TRUE(good.status.ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(QueryServerTest, MissingBackendFailsRequestWithInvalidArgument) {
  ServerFixture f;
  QueryServer::Backend backend = f.backend();
  backend.fact = nullptr;  // no A&R backend
  ServerOptions opts;
  opts.num_workers = 1;
  QueryServer server(backend, opts);
  QueryResponse resp = server.Submit(f.Request(0, EngineKind::kAr)).get();
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument);
  QueryResponse classic =
      server.Submit(f.Request(0, EngineKind::kClassic)).get();
  EXPECT_TRUE(classic.status.ok());
}

// The serving-layer version of the concurrency pin: many workers, many
// client streams, mixed engines, one shared device — every response
// bit-identical to the classic reference, stats consistent.
TEST(QueryServerTest, ConcurrentMixedWorkloadStaysExact) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 8;
  QueryServer server(f.backend(), opts);

  constexpr uint64_t kVariants = 6;
  std::vector<core::QueryResult> reference;
  for (uint64_t v = 0; v < kVariants; ++v) {
    auto r = core::ExecuteClassic(f.Query(v), f.db);
    ASSERT_TRUE(r.ok());
    reference.push_back(*r);
  }

  constexpr int kClients = 6;
  constexpr int kPerClient = 8;
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      static constexpr EngineKind kMix[] = {
          EngineKind::kAr, EngineKind::kClassic, EngineKind::kStreaming};
      for (int i = 0; i < kPerClient; ++i) {
        const uint64_t v = (c + i) % kVariants;
        auto future = server.Submit(f.Request(v, kMix[(c + i) % 3]));
        QueryResponse resp = future.get();
        if (!resp.status.ok() || !(resp.result == reference[v])) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(wrong.load(), 0);

  server.Drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_LE(stats.max_queue_depth, opts.queue_capacity);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GT(stats.p99_latency_seconds, 0.0);
  EXPECT_GE(stats.p99_latency_seconds, stats.p50_latency_seconds);
}

// A Submit blocked on a full queue while the server shuts down must be
// drained — resolved with an error — before Shutdown returns, so a
// destructor following Shutdown never frees members under the submitter.
TEST(QueryServerTest, ShutdownDrainsBlockedSubmitters) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 0;  // nothing drains the queue
  opts.queue_capacity = 1;
  auto server = std::make_unique<QueryServer>(f.backend(), opts);

  std::future<QueryResponse> admitted;
  ASSERT_TRUE(server->TrySubmit(f.Request(0), &admitted));

  std::thread blocked([&] {
    // Blocks on the full queue until Shutdown wakes it.
    QueryResponse resp = server->Submit(f.Request(1)).get();
    EXPECT_EQ(resp.status.code(), StatusCode::kInternal);
    EXPECT_EQ(resp.id, 0u) << "never admitted";
  });
  // Give the submitter a chance to reach the space_cv_ wait (either way —
  // blocked or not yet entered — it must resolve with Internal).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->Shutdown();
  blocked.join();
  EXPECT_FALSE(admitted.get().status.ok()) << "queued request cancelled";
  server.reset();  // destruction after Shutdown with no submitter in flight
}

TEST(QueryServerTest, ShutdownIsIdempotentAndDestructorSafe) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 2;
  QueryServer server(f.backend(), opts);
  QueryResponse resp = server.Submit(f.Request(0)).get();
  EXPECT_TRUE(resp.status.ok());
  server.Shutdown();
  server.Shutdown();  // idempotent
  // Submit after shutdown resolves with an error instead of blocking,
  // carries the never-admitted id 0, and is counted as rejected.
  QueryResponse late = server.Submit(f.Request(1)).get();
  EXPECT_EQ(late.status.code(), StatusCode::kInternal);
  EXPECT_EQ(late.id, 0u);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(QueryServerTest, LatencyPercentileUsesNearestRank) {
  // Empty sample set.
  EXPECT_EQ(LatencyPercentile({}, 0.99), 0.0);
  // Single sample: every percentile is that sample.
  EXPECT_EQ(LatencyPercentile({3.5}, 0.01), 3.5);
  EXPECT_EQ(LatencyPercentile({3.5}, 0.99), 3.5);

  // 1..100 (shuffled): rank ceil(f * 100), so p99 is the 99th smallest —
  // index 98, value 99 — NOT the maximum (the old fraction*size indexing
  // returned 100 here).
  std::vector<double> samples(100);
  for (int i = 0; i < 100; ++i) samples[i] = static_cast<double>(i + 1);
  Xoshiro256 rng(99);
  for (int i = 99; i > 0; --i) {
    std::swap(samples[i], samples[rng.Below(static_cast<uint64_t>(i + 1))]);
  }
  EXPECT_EQ(LatencyPercentile(samples, 0.99), 99.0);
  EXPECT_EQ(LatencyPercentile(samples, 0.50), 50.0);
  EXPECT_EQ(LatencyPercentile(samples, 1.0), 100.0);
  EXPECT_EQ(LatencyPercentile(samples, 0.01), 1.0);
  // Rank clamps to >= 1 even for fraction 0.
  EXPECT_EQ(LatencyPercentile(samples, 0.0), 1.0);

  // Nearest rank on a small set: p50 of 4 samples is the 2nd smallest.
  EXPECT_EQ(LatencyPercentile({4.0, 1.0, 3.0, 2.0}, 0.50), 2.0);
  EXPECT_EQ(LatencyPercentile({4.0, 1.0, 3.0, 2.0}, 0.75), 3.0);
}

TEST(QueryServerTest, StatsOnIdleServerAreZero) {
  ServerFixture f;
  QueryServer server(f.backend());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.qps, 0.0);
  EXPECT_EQ(stats.p50_latency_seconds, 0.0);
  EXPECT_EQ(stats.p99_latency_seconds, 0.0);
}

TEST(QueryServerTest, PercentilesOverPartialAndWrappedWindows) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 1;
  opts.latency_window = 4;
  QueryServer server(f.backend(), opts);

  // Partially-filled window (2 of 4 slots).
  for (uint64_t i = 0; i < 2; ++i) server.Submit(f.Request(i)).get();
  ServerStats partial = server.stats();
  EXPECT_EQ(partial.completed, 2u);
  EXPECT_GT(partial.p50_latency_seconds, 0.0);
  EXPECT_LE(partial.p50_latency_seconds, partial.p99_latency_seconds);

  // Wrap the 4-entry ring several times over.
  for (uint64_t i = 0; i < 10; ++i) server.Submit(f.Request(i)).get();
  ServerStats wrapped = server.stats();
  EXPECT_EQ(wrapped.completed, 12u);
  EXPECT_GT(wrapped.p50_latency_seconds, 0.0);
  EXPECT_LE(wrapped.p50_latency_seconds, wrapped.p99_latency_seconds);
}

TEST(QueryServerTest, SingleEntryWindowPinsBothPercentilesToLastLatency) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 1;
  opts.latency_window = 1;
  QueryServer server(f.backend(), opts);
  for (uint64_t i = 0; i < 3; ++i) server.Submit(f.Request(i)).get();
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.p50_latency_seconds, 0.0);
  EXPECT_EQ(stats.p50_latency_seconds, stats.p99_latency_seconds);
}

TEST(QueryServerTest, QpsDoesNotDecayWhileIdle) {
  ServerFixture f;
  ServerOptions opts;
  opts.num_workers = 2;
  QueryServer server(f.backend(), opts);
  for (uint64_t i = 0; i < 6; ++i) server.Submit(f.Request(i)).get();

  const ServerStats before = server.stats();
  EXPECT_GT(before.qps, 0.0);
  // Windowed qps is a pure function of the recorded completion
  // timestamps, so an idle wait between two stats() calls must not change
  // it (the old completed/uptime definition decayed here).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const ServerStats after = server.stats();
  EXPECT_EQ(after.qps, before.qps);
}

}  // namespace
}  // namespace wastenot::server
