// Serving-layer coverage for mutable ingest (DESIGN.md §9): rows arrive
// through QueryServer::Append/FlushIngest instead of a load-time
// Decompose, and every engine must serve the same bit-exact results from
// the MutableTable's view — before the first drain (empty base, delta
// only), after a drain (decomposed base), and with a fresh delta on top.

#include <unistd.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/classic_engine.h"
#include "server/query_server.h"
#include "server/scheduler.h"
#include "storage/mutable_table.h"
#include "util/random.h"

namespace wastenot::server {
namespace {

namespace fs = std::filesystem;

class IngestServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wn_ingest_srv_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    device::DeviceSpec spec;
    spec.memory_capacity = 64 << 20;
    dev_ = std::make_unique<device::Device>(spec, 2);
    // A dimension for the epochs to clone — unused by the join-free
    // queries here, present so the cloning path runs end-to-end.
    {
      cs::Table dim("dim");
      std::vector<int32_t> w(16);
      for (int i = 0; i < 16; ++i) w[i] = i;
      cs::Column col = cs::Column::FromI32(w);
      col.ComputeStats();
      (void)dim.AddColumn("w", std::move(col));
      (void)dims_.AddTable(std::move(dim));
    }
    storage::MutableTableOptions opts;
    opts.dir = dir_.string();
    opts.columns = {"a", "g", "v"};
    opts.device = dev_.get();
    opts.dims = &dims_;
    opts.background = false;  // drains are explicit in these tests
    auto table = storage::MutableTable::Open(opts);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    table_ = std::move(*table);
  }

  void TearDown() override {
    table_.reset();
    fs::remove_all(dir_);
  }

  QueryServer::Backend Backend() {
    QueryServer::Backend b;
    b.db = &dims_;
    b.device = dev_.get();
    b.mutable_table = table_.get();
    return b;
  }

  std::array<int64_t, 3> NextRow() {
    std::array<int64_t, 3> row = {static_cast<int64_t>(rng_.Below(1 << 10)),
                                  static_cast<int64_t>(rng_.Below(4)),
                                  static_cast<int64_t>(rng_.Below(100))};
    rows_.push_back(row);
    return row;
  }

  /// Appends `n` deterministic rows through `server` and flushes.
  void IngestThrough(QueryServer& server, uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(server.Append(NextRow()).ok());
    }
    auto durable = server.FlushIngest();
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    EXPECT_EQ(*durable, rows_.size());
  }

  core::QuerySpec Query() const {
    core::QuerySpec q;
    q.table = "fact";
    q.predicates = {{"a", cs::RangePred::Lt(600)}};
    q.group_by = {"g"};
    q.aggregates = {core::Aggregate::SumOf("v", "sum_v"),
                    core::Aggregate::CountStar("n")};
    return q;
  }

  /// Classic reference over a plain Database holding every ingested row.
  core::QueryResult Reference() {
    cs::Table fact("fact");
    for (size_t c = 0; c < 3; ++c) {
      std::vector<int64_t> vals;
      vals.reserve(rows_.size());
      for (const auto& row : rows_) vals.push_back(row[c]);
      cs::Column col = cs::Column::FromI64(vals);
      col.ComputeStats();
      (void)fact.AddColumn(std::array{"a", "g", "v"}[c], std::move(col));
    }
    cs::Database ref;
    (void)ref.AddTable(std::move(fact));
    auto result = core::ExecuteClassic(Query(), ref);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  QueryRequest Request(EngineKind engine) {
    QueryRequest req;
    req.query = Query();
    req.engine = engine;
    return req;
  }

  fs::path dir_;
  cs::Database dims_;
  std::unique_ptr<device::Device> dev_;
  std::unique_ptr<storage::MutableTable> table_;
  std::vector<std::array<int64_t, 3>> rows_;
  Xoshiro256 rng_{77};
};

TEST_F(IngestServerTest, IngestIsServedExactlyOnAllEnginesAcrossDrains) {
  ServerOptions opts;
  opts.num_workers = 2;
  QueryServer server(Backend(), opts);

  auto expect_all = [&](const char* when) {
    const core::QueryResult reference = Reference();
    for (EngineKind engine : {EngineKind::kAr, EngineKind::kClassic,
                              EngineKind::kStreaming}) {
      QueryResponse resp = server.Submit(Request(engine)).get();
      ASSERT_TRUE(resp.status.ok())
          << when << ": " << resp.status.ToString();
      EXPECT_EQ(resp.result, reference)
          << when << ", engine " << static_cast<int>(engine);
    }
  };

  IngestThrough(server, 300);
  expect_all("delta only, empty base");  // kAr = exact classic fallback
  ASSERT_TRUE(table_->Drain().ok());
  expect_all("absorbed base, empty delta");  // kAr = real Phase A + refine
  IngestThrough(server, 120);
  expect_all("base plus fresh delta");

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.ingest_appended, 420u);
  EXPECT_EQ(stats.ingest_commits, 2u);
  EXPECT_EQ(stats.ingest_backlog, 120u);
  EXPECT_EQ(stats.ingest_rejected, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(IngestServerTest, AppendIsInvisibleUntilFlush) {
  ServerOptions opts;
  opts.num_workers = 1;
  QueryServer server(Backend(), opts);

  ASSERT_TRUE(server.Append(std::array<int64_t, 3>{1, 0, 5}).ok());
  QueryResponse before = server.Submit(Request(EngineKind::kClassic)).get();
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.result.selected_rows, 0u)
      << "buffered rows are not durable yet, so queries must not see them";

  ASSERT_TRUE(server.FlushIngest().ok());
  QueryResponse after = server.Submit(Request(EngineKind::kClassic)).get();
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.result.selected_rows, 1u);
}

TEST_F(IngestServerTest, BacklogAtCapacityRefusesAppendsUntilDrain) {
  ServerOptions opts;
  opts.num_workers = 1;
  opts.max_delta_backlog = 4;
  QueryServer server(Backend(), opts);

  const std::array<int64_t, 3> row = {1, 0, 5};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(server.Append(row).ok());
  EXPECT_EQ(server.Append(row).code(), StatusCode::kOutOfMemory);
  ASSERT_TRUE(server.FlushIngest().ok());
  EXPECT_EQ(server.Append(row).code(), StatusCode::kOutOfMemory)
      << "flushed-but-unabsorbed rows still count against the backlog";
  ASSERT_TRUE(table_->Drain().ok());
  EXPECT_TRUE(server.Append(row).ok());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.ingest_appended, 5u);
  EXPECT_EQ(stats.ingest_rejected, 2u);
}

// The satellite regression for nullable table lookup: a request naming a
// table nobody registered fails with NotFound — a response, not an abort
// — and the server keeps serving afterwards.
TEST_F(IngestServerTest, UnknownTableIsNotFoundAndTheServerKeepsServing) {
  ServerOptions opts;
  opts.num_workers = 1;
  QueryServer server(Backend(), opts);
  IngestThrough(server, 50);

  QueryRequest bad = Request(EngineKind::kClassic);
  bad.query.table = "no_such_table";
  QueryResponse resp = server.Submit(std::move(bad)).get();
  EXPECT_EQ(resp.status.code(), StatusCode::kNotFound);

  QueryResponse good = server.Submit(Request(EngineKind::kClassic)).get();
  ASSERT_TRUE(good.status.ok());
  EXPECT_EQ(good.result, Reference());
  EXPECT_EQ(server.stats().failed, 1u);
}

TEST_F(IngestServerTest, SchedulerChargesIngestAgainstTenantBudget) {
  SchedulerOptions opts;
  opts.capacity = 1;  // tenant budget: one outstanding-work unit
  opts.server.num_workers = 1;
  AdaptiveScheduler scheduler(Backend(), opts);

  const std::array<int64_t, 3> row = {1, 0, 5};
  ASSERT_TRUE(scheduler.Append("loader", row).ok());
  // One pending row already rounds up to a full budget unit.
  EXPECT_EQ(scheduler.Append("loader", row).code(),
            StatusCode::kOutOfMemory);
  // The charge is the loader's alone: another tenant still ingests.
  EXPECT_TRUE(scheduler.Append("analyst", row).ok());

  TenantStats loader = scheduler.stats().tenants.at("loader");
  EXPECT_EQ(loader.ingest_rows, 1u);
  EXPECT_EQ(loader.ingest_rejected, 1u);
  EXPECT_EQ(loader.pending_ingest_rows, 1u);

  auto durable = scheduler.FlushIngest("loader");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, 2u) << "the group commit covers both tenants' rows";
  EXPECT_TRUE(scheduler.Append("loader", row).ok())
      << "FlushIngest released the pending-ingest charge";
  EXPECT_EQ(scheduler.stats().tenants.at("loader").pending_ingest_rows, 1u);
  EXPECT_EQ(scheduler.stats().tenants.at("analyst").pending_ingest_rows, 1u)
      << "the loader's flush does not release the analyst's charge";
}

TEST_F(IngestServerTest, SchedulerServesMutableScansProgressively) {
  SchedulerOptions opts;
  opts.server.num_workers = 1;
  AdaptiveScheduler scheduler(Backend(), opts);

  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(scheduler.Append("t", NextRow()).ok());
  }
  auto durable = scheduler.FlushIngest("t");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, 40u);

  ProgressiveFutures futures = scheduler.Submit("t", Query());
  ApproximateResponse approx = futures.approximate.get();
  EXPECT_TRUE(approx.status.ok()) << approx.status.ToString();
  QueryResponse refined = futures.refined.get();
  ASSERT_TRUE(refined.status.ok()) << refined.status.ToString();
  EXPECT_EQ(refined.result, Reference());
}

}  // namespace
}  // namespace wastenot::server
