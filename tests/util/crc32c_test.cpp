#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace wastenot::util {
namespace {

TEST(Crc32c, EmptyInputIsZero) { EXPECT_EQ(Crc32c(nullptr, 0), 0u); }

TEST(Crc32c, CheckVector) {
  // The classic CRC check string — every Castagnoli implementation must
  // produce 0xE3069283 on it.
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(s, std::strlen(s)), 0xE3069283u);
}

TEST(Crc32c, IscsiTestVectors) {
  // RFC 3720 §B.4 test patterns (32 bytes each).
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<uint8_t> incrementing(32);
  for (size_t i = 0; i < incrementing.size(); ++i) {
    incrementing[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(Crc32c(incrementing.data(), incrementing.size()), 0x46DD794Eu);

  std::vector<uint8_t> decrementing(32);
  for (size_t i = 0; i < decrementing.size(); ++i) {
    decrementing[i] = static_cast<uint8_t>(31 - i);
  }
  EXPECT_EQ(Crc32c(decrementing.data(), decrementing.size()), 0x113FDB5Cu);
}

TEST(Crc32c, ChainingEqualsWhole) {
  std::mt19937 rng(7);
  std::vector<uint8_t> data(257);
  for (auto& b : data) b = static_cast<uint8_t>(rng());
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                       size_t{255}, data.size()}) {
    const uint32_t head = Crc32c(data.data(), split);
    const uint32_t chained =
        Crc32c(data.data() + split, data.size() - split, head);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32c, DispatchMatchesScalar) {
  // Whatever implementation the dispatcher resolved, it must agree with
  // the table fallback bit for bit — including on unaligned spans.
  std::mt19937 rng(11);
  std::vector<uint8_t> data(1024 + 16);
  for (auto& b : data) b = static_cast<uint8_t>(rng());
  for (size_t offset : {size_t{0}, size_t{1}, size_t{3}, size_t{7}}) {
    for (size_t len : {size_t{0}, size_t{1}, size_t{8}, size_t{13},
                       size_t{512}, size_t{1024}}) {
      EXPECT_EQ(Crc32c(data.data() + offset, len),
                detail::Crc32cScalar(data.data() + offset, len, 0))
          << "offset " << offset << " len " << len;
    }
  }
}

TEST(Crc32c, ImplNameIsKnown) {
  const std::string impl = Crc32cImpl();
  EXPECT_TRUE(impl == "sse4.2" || impl == "scalar") << impl;
}

TEST(Crc32c, SensitiveToSingleBitFlips) {
  std::vector<uint8_t> data(64, 0xAB);
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t byte : {size_t{0}, size_t{31}, size_t{63}}) {
    data[byte] ^= 0x01;
    EXPECT_NE(Crc32c(data.data(), data.size()), base);
    data[byte] ^= 0x01;
  }
}

}  // namespace
}  // namespace wastenot::util
