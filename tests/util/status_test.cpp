#include "util/status.h"

#include <gtest/gtest.h>

namespace wastenot {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(b.code(), StatusCode::kInternal);
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::DeviceOutOfMemory("x").IsDeviceOutOfMemory());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::PreconditionFailed("x").IsPreconditionFailed());
  EXPECT_FALSE(Status::OK().IsDeviceOutOfMemory());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeviceOutOfMemory),
               "DeviceOutOfMemory");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kPreconditionFailed),
               "PreconditionFailed");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  WN_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  WN_RETURN_IF_ERROR(fail ? Status::IoError("io") : Status::OK());
  return Status::OK();
}

TEST(StatusOrTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace wastenot
