#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <string>

namespace wastenot::fault {
namespace {

// Every test leaves the registry clean: the storage tests in this binary
// share the process-global fault state.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(); }
  void TearDown() override { Reset(); }
};

TEST_F(FaultInjectionTest, UnarmedSitesAreOk) {
  EXPECT_TRUE(Check("some.site").ok());
  const WriteCheck wc = CheckWrite("some.write", 128);
  EXPECT_TRUE(wc.status.ok());
  EXPECT_FALSE(wc.torn_bytes.has_value());
}

TEST_F(FaultInjectionTest, ErrorKindInjectsIoErrorNamingTheSite) {
  Arm("wal.fsync", Kind::kError);
  const Status s = Check("wal.fsync");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("wal.fsync"), std::string::npos);
  // The trigger fired; later hits pass.
  EXPECT_TRUE(Check("wal.fsync").ok());
}

TEST_F(FaultInjectionTest, TriggerHitSelectsTheNthHit) {
  Arm("site.a", Kind::kError, 3);
  EXPECT_TRUE(Check("site.a").ok());
  EXPECT_TRUE(Check("site.a").ok());
  EXPECT_FALSE(Check("site.a").ok());
  EXPECT_TRUE(Check("site.a").ok());
  EXPECT_EQ(Hits("site.a"), 4u);
}

TEST_F(FaultInjectionTest, DisarmAndResetClear) {
  Arm("site.b", Kind::kError);
  EXPECT_TRUE(AnyArmed());
  Disarm("site.b");
  EXPECT_TRUE(Check("site.b").ok());
  Arm("site.c", Kind::kError);
  Reset();
  EXPECT_TRUE(Check("site.c").ok());
  EXPECT_EQ(Hits("site.c"), 0u);  // Reset before the Check zeroed counters;
                                  // unarmed hits are not recorded.
}

TEST_F(FaultInjectionTest, TornWriteReturnsHalfThePayload) {
  Arm("wal.write", Kind::kTornWrite);
  const WriteCheck wc = CheckWrite("wal.write", 100);
  EXPECT_TRUE(wc.status.ok());
  ASSERT_TRUE(wc.torn_bytes.has_value());
  EXPECT_EQ(*wc.torn_bytes, 50u);
  Reset();  // do NOT call Crash() — that would kill the test binary
}

TEST_F(FaultInjectionTest, WriteSiteErrorKind) {
  Arm("snapshot.write", Kind::kError, 2);
  EXPECT_TRUE(CheckWrite("snapshot.write", 8).status.ok());
  const WriteCheck wc = CheckWrite("snapshot.write", 8);
  EXPECT_EQ(wc.status.code(), StatusCode::kIoError);
  EXPECT_FALSE(wc.torn_bytes.has_value());
}

TEST_F(FaultInjectionTest, SpecParsing) {
  EXPECT_TRUE(ArmFromSpec("a.b=error@2;c.d=torn").ok());
  EXPECT_TRUE(Check("a.b").ok());
  EXPECT_FALSE(Check("a.b").ok());
  ASSERT_TRUE(CheckWrite("c.d", 10).torn_bytes.has_value());

  EXPECT_FALSE(ArmFromSpec("missing-equals").ok());
  EXPECT_FALSE(ArmFromSpec("x=unknownkind").ok());
  EXPECT_FALSE(ArmFromSpec("x=crash@zero").ok());
  EXPECT_FALSE(ArmFromSpec("x=crash@0").ok());
  EXPECT_TRUE(ArmFromSpec("").ok());
  EXPECT_TRUE(ArmFromSpec(";;").ok());
}

TEST_F(FaultInjectionTest, CrashKindKillsWithTheAgreedExitCode) {
  Arm("boom", Kind::kCrash);
  EXPECT_EXIT((void)Check("boom"), ::testing::ExitedWithCode(kCrashExitCode),
              "");
}

}  // namespace
}  // namespace wastenot::fault
