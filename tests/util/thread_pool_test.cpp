#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace wastenot {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ParallelForTest, CoversExactlyOnce) {
  ThreadPool pool(8);
  const uint64_t n = 100000;
  std::vector<std::atomic<uint8_t>> touched(n);
  ParallelFor(pool, n, [&](uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) touched[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool ran = false;
  ParallelFor(pool, 0, [&](uint64_t, uint64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, SingleElement) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  ParallelFor(pool, 1, [&](uint64_t b, uint64_t e) {
    sum.fetch_add(e - b);
  });
  EXPECT_EQ(sum.load(), 1u);
}

TEST(ParallelForTest, ChunksArePartition) {
  ThreadPool pool(7);
  const uint64_t n = 12345;
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  ParallelFor(pool, n, [&](uint64_t b, uint64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  uint64_t expect_begin = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_GT(e, b);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, n);
}

TEST(ParallelForTest, ConcurrentCallsDoNotInterfere) {
  ThreadPool pool(8);
  std::atomic<uint64_t> total{0};
  std::thread t1([&] {
    ParallelFor(pool, 50000,
                [&](uint64_t b, uint64_t e) { total.fetch_add(e - b); });
  });
  std::thread t2([&] {
    ParallelFor(pool, 70000,
                [&](uint64_t b, uint64_t e) { total.fetch_add(e - b); });
  });
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 120000u);
}

}  // namespace
}  // namespace wastenot
