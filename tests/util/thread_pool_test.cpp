#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace wastenot {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ParallelForTest, CoversExactlyOnce) {
  ThreadPool pool(8);
  const uint64_t n = 100000;
  std::vector<std::atomic<uint8_t>> touched(n);
  ParallelFor(pool, n, [&](uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) touched[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool ran = false;
  ParallelFor(pool, 0, [&](uint64_t, uint64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, SingleElement) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  ParallelFor(pool, 1, [&](uint64_t b, uint64_t e) {
    sum.fetch_add(e - b);
  });
  EXPECT_EQ(sum.load(), 1u);
}

TEST(ParallelForTest, ChunksArePartition) {
  ThreadPool pool(7);
  const uint64_t n = 12345;
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  ParallelFor(pool, n, [&](uint64_t b, uint64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  uint64_t expect_begin = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_GT(e, b);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, n);
}

// Regression for the Submit() contract ("never blocks waiting for
// capacity; safe from worker tasks"): a worker task submits follow-up
// tasks while the main thread is inside Wait(). Wait() must return only
// after the transitively-submitted chain has drained — the parent task
// increments in_flight for the child before it finishes, so the pool is
// never observed idle mid-chain.
TEST(ThreadPoolTest, SubmitFromWorkerConcurrentWithWait) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  constexpr int kChain = 500;
  std::function<void(int)> chained = [&](int remaining) {
    ran.fetch_add(1);
    if (remaining > 0) {
      pool.Submit([&chained, remaining] { chained(remaining - 1); });
    }
  };
  pool.Submit([&chained] { chained(kChain - 1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), kChain);
}

// Submit storm from several worker tasks racing one Wait(): every task
// runs exactly once and nothing deadlocks.
TEST(ThreadPoolTest, SubmitStormFromWorkersWhileWaiting) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&pool, &ran] {
      ran.fetch_add(1);
      for (int j = 0; j < 25; ++j) {
        pool.Submit([&ran] { ran.fetch_add(1); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 16 + 16 * 25);
}

TEST(ParallelForTest, ConcurrentCallsDoNotInterfere) {
  ThreadPool pool(8);
  std::atomic<uint64_t> total{0};
  std::thread t1([&] {
    ParallelFor(pool, 50000,
                [&](uint64_t b, uint64_t e) { total.fetch_add(e - b); });
  });
  std::thread t2([&] {
    ParallelFor(pool, 70000,
                [&](uint64_t b, uint64_t e) { total.fetch_add(e - b); });
  });
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 120000u);
}

// ----- morsel helpers ----------------------------------------------------

TEST(MorselTest, MorselElemsIsBlockAlignedAndPositive) {
  for (uint64_t bits : {0ull, 1ull, 9ull, 64ull, 100ull, 1ull << 40}) {
    const uint64_t m = MorselElems(bits);
    EXPECT_GE(m, kMorselAlignElems) << "bits=" << bits;
    EXPECT_EQ(m % kMorselAlignElems, 0u) << "bits=" << bits;
  }
  // ~256 KiB of payload: 8-bit elements -> 256K of them.
  EXPECT_EQ(MorselElems(8), 256 * 1024u);
}

TEST(MorselTest, AlignMorselRoundsUpToBlocks) {
  EXPECT_EQ(AlignMorsel(0), 64u);
  EXPECT_EQ(AlignMorsel(1), 64u);
  EXPECT_EQ(AlignMorsel(64), 64u);
  EXPECT_EQ(AlignMorsel(65), 128u);
  EXPECT_EQ(AlignMorsel(1000), 1024u);
}

TEST(MorselTest, ParallelForBlocksPartitionsWithAlignedBoundaries) {
  ThreadPool pool(5);
  for (uint64_t n : {0ull, 1ull, 63ull, 64ull, 65ull, 1000ull, 12345ull}) {
    MorselContext ctx;
    ctx.pool = &pool;
    std::mutex mu;
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    ParallelForBlocks(ctx, n, 100,  // rounds to 128
                      [&](uint64_t b, uint64_t e, unsigned) {
                        std::lock_guard<std::mutex> lock(mu);
                        ranges.emplace_back(b, e);
                      });
    std::sort(ranges.begin(), ranges.end());
    uint64_t expect_begin = 0;
    for (const auto& [b, e] : ranges) {
      EXPECT_EQ(b, expect_begin);
      EXPECT_GT(e, b);
      EXPECT_EQ(b % 64, 0u) << "morsel boundaries must be block-aligned";
      if (e != n) EXPECT_EQ(e % 64, 0u);
      expect_begin = e;
    }
    EXPECT_EQ(expect_begin, n);
  }
}

TEST(MorselTest, ParallelForItemsRunsEachItemOnceWorkerInRange) {
  ThreadPool pool(4);
  MorselContext ctx;
  ctx.pool = &pool;
  const uint64_t n = 1000;
  std::vector<std::atomic<uint32_t>> hits(n);
  std::atomic<bool> worker_ok{true};
  ParallelForItems(ctx, n, [&](uint64_t i, unsigned w) {
    hits[i].fetch_add(1);
    if (w >= ctx.workers()) worker_ok = false;
  });
  for (uint64_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1u) << i;
  EXPECT_TRUE(worker_ok.load());
}

TEST(MorselTest, SerialContextRunsInlineInOrder) {
  MorselContext ctx;  // no pool: serial
  EXPECT_EQ(ctx.workers(), 1u);
  EXPECT_FALSE(ctx.parallel());
  std::vector<uint64_t> order;
  ParallelForItems(ctx, 5, [&](uint64_t i, unsigned w) {
    EXPECT_EQ(w, 0u);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(MorselTest, AccountingAccumulatesWorkerAndWallTime) {
  ThreadPool pool(3);
  std::atomic<uint64_t> worker_nanos{0};
  std::atomic<uint64_t> wall_nanos{0};
  MorselContext ctx;
  ctx.pool = &pool;
  ctx.worker_nanos = &worker_nanos;
  ctx.loop_wall_nanos = &wall_nanos;
  std::atomic<uint64_t> sum{0};
  ParallelForBlocks(ctx, 1 << 16, 64, [&](uint64_t b, uint64_t e, unsigned) {
    uint64_t s = 0;
    for (uint64_t i = b; i < e; ++i) s += i;
    sum.fetch_add(s);
  });
  EXPECT_GT(worker_nanos.load(), 0u);
  EXPECT_GT(wall_nanos.load(), 0u);
  const uint64_t n = 1 << 16;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(MorselTest, MorselElemsOverrideForcesManyMorsels) {
  ThreadPool pool(2);
  MorselContext ctx;
  ctx.pool = &pool;
  ctx.morsel_elems = 64;
  std::atomic<uint64_t> morsels{0};
  ParallelForBlocks(ctx, 640, ctx.morsel_elems,
                    [&](uint64_t, uint64_t, unsigned) { morsels.fetch_add(1); });
  EXPECT_EQ(morsels.load(), 10u);
}

}  // namespace
}  // namespace wastenot
