#include "util/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace wastenot {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetVar(const char* name, const char* value) {
    setenv(name, value, 1);
    names_.push_back(name);
  }
  void TearDown() override {
    for (const char* n : names_) unsetenv(n);
  }
  std::vector<const char*> names_;
};

TEST_F(EnvTest, Int64Fallback) {
  EXPECT_EQ(EnvInt64("WN_TEST_UNSET_VAR", 17), 17);
}

TEST_F(EnvTest, Int64Plain) {
  SetVar("WN_TEST_INT", "12345");
  EXPECT_EQ(EnvInt64("WN_TEST_INT", 0), 12345);
}

TEST_F(EnvTest, Int64Suffixes) {
  SetVar("WN_TEST_K", "10k");
  SetVar("WN_TEST_M", "2m");
  SetVar("WN_TEST_G", "1g");
  SetVar("WN_TEST_MI", "2Mi");
  SetVar("WN_TEST_GI", "1Gi");
  EXPECT_EQ(EnvInt64("WN_TEST_K", 0), 10'000);
  EXPECT_EQ(EnvInt64("WN_TEST_M", 0), 2'000'000);
  EXPECT_EQ(EnvInt64("WN_TEST_G", 0), 1'000'000'000);
  EXPECT_EQ(EnvInt64("WN_TEST_MI", 0), 2ll * 1024 * 1024);
  EXPECT_EQ(EnvInt64("WN_TEST_GI", 0), 1ll << 30);
}

TEST_F(EnvTest, Int64Garbage) {
  SetVar("WN_TEST_BAD", "abc");
  EXPECT_EQ(EnvInt64("WN_TEST_BAD", 9), 9);
}

TEST_F(EnvTest, DoubleVar) {
  SetVar("WN_TEST_D", "0.25");
  EXPECT_DOUBLE_EQ(EnvDouble("WN_TEST_D", 1.0), 0.25);
  EXPECT_DOUBLE_EQ(EnvDouble("WN_TEST_D_UNSET", 1.5), 1.5);
}

TEST_F(EnvTest, StringVar) {
  SetVar("WN_TEST_S", "hello");
  EXPECT_EQ(EnvString("WN_TEST_S", "x"), "hello");
  EXPECT_EQ(EnvString("WN_TEST_S_UNSET", "x"), "x");
}

TEST_F(EnvTest, BoolVar) {
  SetVar("WN_TEST_B1", "true");
  SetVar("WN_TEST_B2", "0");
  SetVar("WN_TEST_B3", "ON");
  SetVar("WN_TEST_B4", "garbage");
  EXPECT_TRUE(EnvBool("WN_TEST_B1", false));
  EXPECT_FALSE(EnvBool("WN_TEST_B2", true));
  EXPECT_TRUE(EnvBool("WN_TEST_B3", false));
  EXPECT_TRUE(EnvBool("WN_TEST_B4", true));  // falls back
  EXPECT_FALSE(EnvBool("WN_TEST_B_UNSET", false));
}

}  // namespace
}  // namespace wastenot
