#include "util/bits.h"

#include <gtest/gtest.h>

namespace wastenot::bits {
namespace {

TEST(BitsTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(1), 1u);
  EXPECT_EQ(LowMask(8), 0xFFu);
  EXPECT_EQ(LowMask(32), 0xFFFFFFFFu);
  EXPECT_EQ(LowMask(63), 0x7FFFFFFFFFFFFFFFu);
  EXPECT_EQ(LowMask(64), ~uint64_t{0});
}

TEST(BitsTest, BitWidth) {
  EXPECT_EQ(BitWidth(0), 0u);
  EXPECT_EQ(BitWidth(1), 1u);
  EXPECT_EQ(BitWidth(2), 2u);
  EXPECT_EQ(BitWidth(255), 8u);
  EXPECT_EQ(BitWidth(256), 9u);
  EXPECT_EQ(BitWidth(100'000'000), 27u);
}

TEST(BitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 8), 0u);
  EXPECT_EQ(CeilDiv(1, 8), 1u);
  EXPECT_EQ(CeilDiv(8, 8), 1u);
  EXPECT_EQ(CeilDiv(9, 8), 2u);
}

TEST(BitsTest, ApproximationResidualReconstruct) {
  const uint64_t v = 747979;  // the paper's Fig 2 example value
  for (uint32_t res = 0; res <= 32; ++res) {
    const uint64_t a = Approximation(v, res);
    const uint64_t r = Residual(v, res);
    EXPECT_EQ(Reconstruct(a, r, res), v) << "res=" << res;
    EXPECT_EQ(a & LowMask(res), 0u) << "approximation keeps low bits zero";
    EXPECT_LE(r, ApproximationError(res));
  }
}

TEST(BitsTest, PaperFig2Example) {
  // 747979 split 13 major / 7 minor bits (of its 20 significant bits).
  const uint64_t v = 747979;
  const uint32_t res = 7;
  EXPECT_EQ(Approximation(v, res), v & ~uint64_t{0x7F});
  EXPECT_EQ(Residual(v, res), v & 0x7F);
  EXPECT_EQ(ApproximationError(res), 127u);
}

TEST(BitsTest, RoundUpPow2) {
  EXPECT_EQ(RoundUpPow2(0, 64), 0u);
  EXPECT_EQ(RoundUpPow2(1, 64), 64u);
  EXPECT_EQ(RoundUpPow2(64, 64), 64u);
  EXPECT_EQ(RoundUpPow2(65, 64), 128u);
}

TEST(BitsTest, IsPow2) {
  EXPECT_FALSE(IsPow2(0));
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(4096));
  EXPECT_FALSE(IsPow2(4097));
}

}  // namespace
}  // namespace wastenot::bits
