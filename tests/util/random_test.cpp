#include "util/random.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace wastenot {
namespace {

TEST(RandomTest, SplitMixDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(1), b(1), c(2);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    differs |= va != c.Next();
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    EXPECT_LT(rng.Below(1), 1u);
  }
}

TEST(RandomTest, BelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ShuffleIsPermutation) {
  std::vector<int> v(1000);
  std::iota(v.begin(), v.end(), 0);
  Shuffle(v, 123);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
  // And it actually moved things.
  std::vector<int> identity(1000);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(v, identity);
}

TEST(RandomTest, ShuffleDeterministic) {
  std::vector<int> a(100), b(100);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Shuffle(a, 5);
  Shuffle(b, 5);
  EXPECT_EQ(a, b);
}

TEST(RandomTest, Mix64Stateless) {
  EXPECT_EQ(Mix64(1234), Mix64(1234));
  EXPECT_NE(Mix64(1234), Mix64(1235));
}

}  // namespace
}  // namespace wastenot
