// Crash-point recovery fuzz (DESIGN.md §9): for every fault site on the
// ingest durability path × failure kind × 16 seeds, a forked child runs
// a deterministic append/flush/drain workload with the site armed, dies
// wherever the fault dictates (or swallows the injected error and keeps
// going), and the parent reopens the table and asserts the recovery
// invariant
//
//   acked  ≤  recovered  ≤  generated
//
// with rows [0, recovered) bit-identical to the generated sequence and
// the classic engine's answer over the recovered view bit-identical to a
// reference database built from the same prefix. "Acked" is the last
// durable count a successful Flush returned to the child, reported over
// a pipe before the fault fires — the rows a client was promised.
//
// Fork-based, so skipped under TSan (tests/storage/
// ingest_while_query_test.cpp is the TSan-facing concurrency pin).

#include "storage/mutable_table.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/classic_engine.h"
#include "storage/wal.h"
#include "util/fault_injection.h"

#if defined(__SANITIZE_THREAD__)
#define WN_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WN_TSAN 1
#endif
#endif

namespace wastenot::storage {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kBatches = 8;
constexpr uint64_t kBatchRows = 12;
constexpr uint64_t kTotalRows = kBatches * kBatchRows;
constexpr uint64_t kSeeds = 16;

/// Deterministic row content, identical in child and parent (splitmix).
int64_t Value(uint64_t seed, uint64_t row, uint64_t col) {
  uint64_t x = (seed + 1) * 0x9E3779B97F4A7C15ull +
               (row + 1) * 0xBF58476D1CE4E5B9ull + col;
  x ^= x >> 30;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 27;
  return static_cast<int64_t>(x % 100000);
}

MutableTableOptions Options(const fs::path& dir) {
  MutableTableOptions opts;
  opts.dir = dir.string();
  opts.name = "fact";
  opts.columns = {"a", "g", "v"};
  opts.background = false;  // the child drives drains explicitly
  return opts;
}

/// The child's life after fork: arm one fault, ingest batches (flush after
/// each, drain every other), report each acked durable count over `fd`,
/// exit 0 — unless the armed fault kills the process first. Exit 7 flags
/// a failed Open (a real bug: no fault fires before the first append).
[[noreturn]] void ChildWorkload(const fs::path& dir, const char* site,
                                fault::Kind kind, uint64_t hit,
                                uint64_t seed, int fd) {
  fault::Arm(site, kind, hit);
  auto table = MutableTable::Open(Options(dir));
  if (!table.ok()) _exit(7);
  for (uint64_t b = 0; b < kBatches; ++b) {
    for (uint64_t i = 0; i < kBatchRows; ++i) {
      const uint64_t r = b * kBatchRows + i;
      const int64_t row[3] = {Value(seed, r, 0), Value(seed, r, 1) % 4,
                              Value(seed, r, 2)};
      // Injected errors are swallowed: the workload keeps going, and
      // whatever was not made durable simply never gets acked.
      (void)(*table)->Append(row);
    }
    auto durable = (*table)->Flush();
    if (durable.ok()) {
      const uint64_t acked = *durable;
      (void)!write(fd, &acked, sizeof(acked));
    }
    if (b % 2 == 1) (void)(*table)->Drain();
  }
  table->reset();  // clean close: join nothing, drop buffers
  _exit(0);
}

struct ChildOutcome {
  int exit_code = -1;
  uint64_t acked = 0;  ///< last durable count reported before death
};

ChildOutcome RunChild(const fs::path& dir, const char* site,
                      fault::Kind kind, uint64_t hit, uint64_t seed) {
  int pipe_fds[2];
  EXPECT_EQ(pipe(pipe_fds), 0);
  const pid_t pid = fork();
  if (pid == 0) {
    close(pipe_fds[0]);
    ChildWorkload(dir, site, kind, hit, seed, pipe_fds[1]);
  }
  close(pipe_fds[1]);
  ChildOutcome out;
  uint64_t acked = 0;
  while (read(pipe_fds[0], &acked, sizeof(acked)) ==
         static_cast<ssize_t>(sizeof(acked))) {
    out.acked = acked;
  }
  close(pipe_fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

/// Reads logical row `r` of `name` through the view: base, then delta.
int64_t ViewValue(const TableView& view, const std::string& name,
                  uint64_t r) {
  const cs::Table& base = view.db->table("fact");
  if (r < base.num_rows()) return base.column(name).Get(r);
  return view.delta->Get(r - base.num_rows(), view.delta->ColumnIndex(name));
}

core::QuerySpec GroupQuery() {
  core::QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Lt(50000)}};
  q.group_by = {"g"};
  q.aggregates = {core::Aggregate::SumOf("v", "sum_v"),
                  core::Aggregate::CountStar("n")};
  return q;
}

TEST(RecoveryFuzzTest, EveryCrashPointRecoversExactlyTheAckedPrefix) {
#ifdef WN_TSAN
  GTEST_SKIP() << "fork-based fuzz is not TSan-compatible";
#endif
  const struct {
    const char* site;
    fault::Kind kind;
  } kCombos[] = {
      {kFaultWalWrite, fault::Kind::kError},
      {kFaultWalWrite, fault::Kind::kCrash},
      {kFaultWalWrite, fault::Kind::kTornWrite},
      {kFaultWalFsync, fault::Kind::kError},
      {kFaultWalFsync, fault::Kind::kCrash},
      {kFaultWalTruncate, fault::Kind::kError},
      {kFaultWalTruncate, fault::Kind::kCrash},
      {kFaultSnapshotWrite, fault::Kind::kError},
      {kFaultSnapshotWrite, fault::Kind::kCrash},
      {kFaultSnapshotWrite, fault::Kind::kTornWrite},
      {kFaultSnapshotRename, fault::Kind::kError},
      {kFaultSnapshotRename, fault::Kind::kCrash},
      {kFaultSwapReencode, fault::Kind::kError},
      {kFaultSwapReencode, fault::Kind::kCrash},
      {kFaultSwapPublish, fault::Kind::kError},
      {kFaultSwapPublish, fault::Kind::kCrash},
  };

  const fs::path root =
      fs::temp_directory_path() /
      ("wn_recovery_fuzz_" + std::to_string(::getpid()));
  fs::remove_all(root);
  uint64_t fired = 0;

  for (const auto& combo : kCombos) {
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      // Vary which hit of the site fires so the fault lands in different
      // batches/drains across seeds, not always the first boundary.
      const uint64_t hit = 1 + seed % 3;
      const fs::path dir = root / (std::string(combo.site) + "_" +
                                   std::to_string(static_cast<int>(
                                       combo.kind)) +
                                   "_" + std::to_string(seed));
      SCOPED_TRACE(std::string("site=") + combo.site +
                   " kind=" + std::to_string(static_cast<int>(combo.kind)) +
                   " hit=" + std::to_string(hit) +
                   " seed=" + std::to_string(seed));
      fs::create_directories(dir);

      const ChildOutcome child =
          RunChild(dir, combo.site, combo.kind, hit, seed);
      ASSERT_TRUE(child.exit_code == 0 ||
                  child.exit_code == fault::kCrashExitCode)
          << "child exit code " << child.exit_code;
      if (child.exit_code == fault::kCrashExitCode) ++fired;

      // Recovery: Open must succeed on whatever the child left behind.
      auto reopened = MutableTable::Open(Options(dir));
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      const TableView view = (*reopened)->View();
      const uint64_t recovered = view.durable;

      // The invariant: nothing acked is lost, nothing unwritten invented.
      ASSERT_GE(recovered, child.acked);
      ASSERT_LE(recovered, kTotalRows);

      // Bit-identical prefix, through the same view the engines serve.
      static const char* kCols[] = {"a", "g", "v"};
      for (uint64_t r = 0; r < recovered; ++r) {
        for (uint64_t c = 0; c < 3; ++c) {
          const int64_t expect = c == 1 ? Value(seed, r, 1) % 4
                                        : Value(seed, r, c);
          ASSERT_EQ(ViewValue(view, kCols[c], r), expect)
              << "row " << r << " col " << kCols[c];
        }
      }

      // Engine-level identity: classic over the recovered view (base +
      // delta) equals classic over a plain database built from the same
      // prefix.
      cs::Table ref_fact("fact");
      for (uint64_t c = 0; c < 3; ++c) {
        std::vector<int64_t> vals(recovered);
        for (uint64_t r = 0; r < recovered; ++r) {
          vals[r] = c == 1 ? Value(seed, r, 1) % 4 : Value(seed, r, c);
        }
        cs::Column col = cs::Column::FromI64(vals);
        col.ComputeStats();
        ASSERT_TRUE(ref_fact.AddColumn(kCols[c], std::move(col)).ok());
      }
      cs::Database ref_db;
      ASSERT_TRUE(ref_db.AddTable(std::move(ref_fact)).ok());
      auto reference = core::ExecuteClassic(GroupQuery(), ref_db);
      ASSERT_TRUE(reference.ok());
      core::ClassicOptions view_options;
      view_options.delta = view.delta_or_null();
      auto served = core::ExecuteClassic(GroupQuery(), *view.db,
                                         view_options);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      ASSERT_EQ(*served, *reference);

      reopened->reset();
      fs::remove_all(dir);
    }
  }
  // The sweep is only meaningful if the kill-kinds actually killed: every
  // (site, crash/torn, seed) combination reaches its site at least once
  // for hit <= 2 (hits 1+seed%3, so two thirds of the seeds).
  EXPECT_GT(fired, kSeeds * 4);
  fs::remove_all(root);
}

}  // namespace
}  // namespace wastenot::storage
