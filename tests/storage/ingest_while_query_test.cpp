// Concurrent ingest vs. queries under live background re-decomposition
// (DESIGN.md §9): one writer appends and flushes while reader threads
// take views and execute on them, across many epoch swaps. Pins
//
//   * every view is internally consistent: the classic count over the
//     view equals the view's own durable row count,
//   * A&R over the view's decomposed base (+ delta) is bit-identical to
//     classic over the same view,
//   * a view taken before a swap keeps serving during and after it.
//
// This is the TSan-facing half of the recovery story — the fork-based
// crash fuzz (recovery_fuzz_test.cpp) is skipped under TSan, this test
// is not.

#include "storage/mutable_table.h"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "device/device.h"

namespace wastenot::storage {
namespace {

namespace fs = std::filesystem;

int64_t Value(uint64_t row, uint64_t col) {
  uint64_t x = (row + 1) * 0x9E3779B97F4A7C15ull + col;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  return static_cast<int64_t>(x % 1000);
}

core::QuerySpec GroupQuery() {
  core::QuerySpec q;
  q.table = "fact";
  q.predicates = {{"a", cs::RangePred::Lt(1 << 20)}};  // matches all rows
  q.group_by = {"g"};
  q.aggregates = {core::Aggregate::SumOf("v", "sum_v"),
                  core::Aggregate::CountStar("n")};
  return q;
}

TEST(IngestWhileQueryTest, ReadersStayExactAcrossLiveSwaps) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("wn_ingest_query_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  device::DeviceSpec spec;
  spec.memory_capacity = 64 << 20;
  auto dev = std::make_unique<device::Device>(spec, 2);

  MutableTableOptions opts;
  opts.dir = dir.string();
  opts.name = "fact";
  opts.columns = {"a", "g", "v"};
  opts.device = dev.get();
  opts.background = true;  // swaps happen underneath the readers
  opts.drain_threshold = 64;
  opts.backoff_ms = 1;
  auto table = MutableTable::Open(opts);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  constexpr uint64_t kBatches = 40;
  constexpr uint64_t kBatchRows = 16;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (uint64_t b = 0; b < kBatches; ++b) {
      for (uint64_t i = 0; i < kBatchRows; ++i) {
        const uint64_t r = b * kBatchRows + i;
        const int64_t row[3] = {Value(r, 0), Value(r, 1) % 4, Value(r, 2)};
        if (!(*table)->Append(row).ok()) failures.fetch_add(1);
      }
      if (!(*table)->Flush().ok()) failures.fetch_add(1);
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      uint64_t last_durable = 0;
      while (!done.load()) {
        const TableView view = (*table)->View();
        // Durability never moves backwards across views.
        EXPECT_GE(view.durable, last_durable);
        last_durable = view.durable;

        core::ClassicOptions classic_options;
        classic_options.delta = view.delta_or_null();
        auto classic =
            core::ExecuteClassic(GroupQuery(), *view.db, classic_options);
        if (!classic.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // The view is one consistent cut: the engine sees exactly the
        // durable rows, however they are split between base and delta.
        if (classic->selected_rows != view.durable) failures.fetch_add(1);

        if (view.bwd != nullptr) {
          core::ArOptions ar_options;
          ar_options.delta = view.delta_or_null();
          auto ar = core::ExecuteAr(GroupQuery(), *view.bwd,
                                    /*dim=*/nullptr, view.bwd->device(),
                                    ar_options);
          if (!ar.ok() || !(ar->result == *classic)) failures.fetch_add(1);
        }
      }
    });
  }

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);

  // Everything acked is served once the dust settles.
  const TableView final_view = (*table)->View();
  EXPECT_EQ(final_view.durable, kBatches * kBatchRows);
  const MutableTableStats stats = (*table)->Stats();
  EXPECT_GE(stats.swaps, 1u) << "the background drain never swapped — the "
                                "test did not exercise concurrency";

  table->reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wastenot::storage
