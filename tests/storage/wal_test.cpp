#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/fault_injection.h"

namespace wastenot::storage {
namespace {

namespace fs = std::filesystem;

struct ReplayedRow {
  uint64_t index;
  std::string table;
  std::vector<int64_t> values;
};

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Reset();
    dir_ = fs::temp_directory_path() /
           ("wn_wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "wal.log").string();
  }
  void TearDown() override {
    fault::Reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::vector<ReplayedRow> Replay(WalReplayStats* stats = nullptr) {
    std::vector<ReplayedRow> rows;
    auto result = ReplayWal(
        path_, [&](uint64_t index, std::string_view table,
                   std::span<const int64_t> values) {
          rows.push_back(ReplayedRow{index, std::string(table),
                                     {values.begin(), values.end()}});
          return Status::OK();
        });
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (stats != nullptr && result.ok()) *stats = *result;
    return rows;
  }

  uint64_t FileSize() const {
    std::error_code ec;
    const auto size = fs::file_size(path_, ec);
    return ec ? 0 : size;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(WalTest, MissingFileReplaysEmpty) {
  WalReplayStats stats;
  EXPECT_TRUE(Replay(&stats).empty());
  EXPECT_EQ(stats.applied_rows, 0u);
  EXPECT_EQ(stats.commits, 0u);
}

TEST_F(WalTest, CommittedAppendsRoundTrip) {
  {
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("t", 0, std::vector<int64_t>{1, 2, 3}).ok());
    ASSERT_TRUE((*wal)->Append("t", 1, std::vector<int64_t>{4, 5, 6}).ok());
    ASSERT_TRUE((*wal)->Commit(2).ok());
    ASSERT_TRUE((*wal)->Append("t", 2, std::vector<int64_t>{7, 8, 9}).ok());
    ASSERT_TRUE((*wal)->Commit(3).ok());
    EXPECT_EQ((*wal)->commits(), 2u);
    EXPECT_EQ((*wal)->pending_bytes(), 0u);
  }
  WalReplayStats stats;
  const auto rows = Replay(&stats);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].index, 0u);
  EXPECT_EQ(rows[0].table, "t");
  EXPECT_EQ(rows[0].values, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(rows[2].index, 2u);
  EXPECT_EQ(rows[2].values, (std::vector<int64_t>{7, 8, 9}));
  EXPECT_EQ(stats.commits, 2u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST_F(WalTest, UncommittedBufferIsDroppedOnClose) {
  {
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("t", 0, std::vector<int64_t>{1}).ok());
    ASSERT_TRUE((*wal)->Commit(1).ok());
    ASSERT_TRUE((*wal)->Append("t", 1, std::vector<int64_t>{2}).ok());
    // no Commit — buffered only
  }
  EXPECT_EQ(Replay().size(), 1u);
}

TEST_F(WalTest, CommitWithEmptyBufferIsANoOp) {
  auto wal = WalWriter::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Commit(0).ok());
  EXPECT_EQ((*wal)->commits(), 0u);
  EXPECT_EQ(FileSize(), 0u);
}

TEST_F(WalTest, TornTailIsTruncatedNotFatal) {
  {
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("t", 0, std::vector<int64_t>{1}).ok());
    ASSERT_TRUE((*wal)->Commit(1).ok());
  }
  const uint64_t good_size = FileSize();
  {
    // A torn batch: half of a second commit's bytes, as a crash mid-write
    // would leave them.
    std::string garbage(13, '\x7f');
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  WalReplayStats stats;
  const auto rows = Replay(&stats);
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(stats.truncated_bytes, 13u);
  EXPECT_EQ(FileSize(), good_size);  // replay repaired the file

  // The repaired log accepts new appends cleanly.
  {
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("t", 1, std::vector<int64_t>{2}).ok());
    ASSERT_TRUE((*wal)->Commit(2).ok());
  }
  EXPECT_EQ(Replay().size(), 2u);
}

TEST_F(WalTest, CorruptRecordStopsReplayAtLastCommit) {
  {
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("t", 0, std::vector<int64_t>{1}).ok());
    ASSERT_TRUE((*wal)->Commit(1).ok());
    ASSERT_TRUE((*wal)->Append("t", 1, std::vector<int64_t>{2}).ok());
    ASSERT_TRUE((*wal)->Commit(2).ok());
  }
  // Flip one payload byte of the second batch: its append record's
  // checksum no longer matches, so replay must stop after batch one.
  const uint64_t size = FileSize();
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(size - 10));
    char b;
    f.seekg(static_cast<std::streamoff>(size - 10));
    f.get(b);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size - 10));
    f.put(b);
  }
  WalReplayStats stats;
  const auto rows = Replay(&stats);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].values, (std::vector<int64_t>{1}));
  EXPECT_GT(stats.truncated_bytes, 0u);
}

TEST_F(WalTest, AppendsWithoutFinalCommitAreDropped) {
  {
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("t", 0, std::vector<int64_t>{1}).ok());
    ASSERT_TRUE((*wal)->Commit(1).ok());
    // Write a second batch's append records *without* the commit record by
    // committing, then chopping the commit record off the file end.
    ASSERT_TRUE((*wal)->Append("t", 1, std::vector<int64_t>{2}).ok());
    ASSERT_TRUE((*wal)->Commit(2).ok());
  }
  // A commit record is 8 (frame header) + 9 (payload) = 17 bytes.
  fs::resize_file(path_, FileSize() - 17);
  WalReplayStats stats;
  const auto rows = Replay(&stats);
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(stats.dropped_rows, 1u);
}

TEST_F(WalTest, TruncateEmptiesTheLog) {
  auto wal = WalWriter::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("t", 0, std::vector<int64_t>{1}).ok());
  ASSERT_TRUE((*wal)->Commit(1).ok());
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_EQ(FileSize(), 0u);
  // Appends after the truncate land at the file start.
  ASSERT_TRUE((*wal)->Append("t", 5, std::vector<int64_t>{9}).ok());
  ASSERT_TRUE((*wal)->Commit(6).ok());
  const auto rows = Replay();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].index, 5u);
}

TEST_F(WalTest, InjectedFsyncErrorSurfacesAndKeepsBuffer) {
  auto wal = WalWriter::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("t", 0, std::vector<int64_t>{1}).ok());
  fault::Arm(kFaultWalFsync, fault::Kind::kError);
  const Status s = (*wal)->Commit(1);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  fault::Reset();
  // The batch was not acknowledged; the caller may retry the commit.
  ASSERT_TRUE((*wal)->Commit(1).ok());
  EXPECT_GE(Replay().size(), 1u);
}

TEST_F(WalTest, InjectedWriteErrorSurfaces) {
  auto wal = WalWriter::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("t", 0, std::vector<int64_t>{1}).ok());
  fault::Arm(kFaultWalWrite, fault::Kind::kError);
  EXPECT_EQ((*wal)->Commit(1).code(), StatusCode::kIoError);
  fault::Reset();
}

TEST_F(WalTest, ApplyErrorPropagates) {
  {
    auto wal = WalWriter::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("t", 0, std::vector<int64_t>{1}).ok());
    ASSERT_TRUE((*wal)->Commit(1).ok());
  }
  auto result = ReplayWal(path_, [](uint64_t, std::string_view,
                                    std::span<const int64_t>) {
    return Status::Internal("apply failed");
  });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace wastenot::storage
