#include "storage/delta_store.h"

#include <gtest/gtest.h>

#include <vector>

namespace wastenot::storage {
namespace {

TEST(DeltaStoreTest, AppendAndSnapshot) {
  DeltaStore store({"a", "b"});
  EXPECT_EQ(store.total_rows(), 0u);
  EXPECT_EQ(store.pending_rows(), 0u);
  ASSERT_TRUE(store.Append(std::vector<int64_t>{1, 2}).ok());
  ASSERT_TRUE(store.Append(std::vector<int64_t>{3, 4}).ok());
  EXPECT_EQ(store.total_rows(), 2u);
  EXPECT_EQ(store.pending_rows(), 2u);

  const auto batch = store.Snapshot(0);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->num_rows(), 2u);
  EXPECT_EQ(batch->first_row_index(), 0u);
  EXPECT_EQ(batch->ColumnIndex("a"), 0);
  EXPECT_EQ(batch->ColumnIndex("b"), 1);
  EXPECT_EQ(batch->ColumnIndex("missing"), -1);
  EXPECT_EQ(batch->Get(0, 0), 1);
  EXPECT_EQ(batch->Get(1, 1), 4);
}

TEST(DeltaStoreTest, WidthMismatchRejected) {
  DeltaStore store({"a", "b"});
  EXPECT_EQ(store.Append(std::vector<int64_t>{1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Append(std::vector<int64_t>{1, 2, 3}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.total_rows(), 0u);
}

TEST(DeltaStoreTest, SnapshotFromOffset) {
  DeltaStore store({"a"});
  for (int64_t v = 0; v < 5; ++v) {
    ASSERT_TRUE(store.Append(std::vector<int64_t>{v * 10}).ok());
  }
  const auto tail = store.Snapshot(3);
  ASSERT_EQ(tail->num_rows(), 2u);
  EXPECT_EQ(tail->first_row_index(), 3u);
  EXPECT_EQ(tail->Get(0, 0), 30);
  EXPECT_EQ(tail->Get(1, 0), 40);
}

TEST(DeltaStoreTest, SnapshotCacheSharedBetweenCalls) {
  DeltaStore store({"a"});
  ASSERT_TRUE(store.Append(std::vector<int64_t>{1}).ok());
  const auto s1 = store.Snapshot(0);
  const auto s2 = store.Snapshot(0);
  EXPECT_EQ(s1.get(), s2.get());  // no copy between mutations
  ASSERT_TRUE(store.Append(std::vector<int64_t>{2}).ok());
  const auto s3 = store.Snapshot(0);
  EXPECT_NE(s1.get(), s3.get());
  EXPECT_EQ(s1->num_rows(), 1u);  // old snapshot unaffected
  EXPECT_EQ(s3->num_rows(), 2u);
}

TEST(DeltaStoreTest, FoldDropsAbsorbedRows) {
  DeltaStore store({"a"});
  for (int64_t v = 0; v < 4; ++v) {
    ASSERT_TRUE(store.Append(std::vector<int64_t>{v}).ok());
  }
  const auto before = store.Snapshot(0);
  store.Fold(3);
  EXPECT_EQ(store.total_rows(), 4u);
  EXPECT_EQ(store.pending_rows(), 1u);
  // Snapshots from before the fold point clamp to it.
  const auto after = store.Snapshot(0);
  ASSERT_EQ(after->num_rows(), 1u);
  EXPECT_EQ(after->first_row_index(), 3u);
  EXPECT_EQ(after->Get(0, 0), 3);
  // The pre-fold snapshot still holds all four rows (queries in flight).
  EXPECT_EQ(before->num_rows(), 4u);
  // Folding behind the fold point is a no-op.
  store.Fold(1);
  EXPECT_EQ(store.pending_rows(), 1u);
}

TEST(DeltaStoreTest, RecoveryOffsetSetsAbsoluteIndices) {
  DeltaStore store({"a"}, /*first_row_index=*/100);
  EXPECT_EQ(store.total_rows(), 100u);
  ASSERT_TRUE(store.Append(std::vector<int64_t>{7}).ok());
  EXPECT_EQ(store.total_rows(), 101u);
  const auto batch = store.Snapshot(0);  // clamps to 100
  ASSERT_EQ(batch->num_rows(), 1u);
  EXPECT_EQ(batch->first_row_index(), 100u);
}

}  // namespace
}  // namespace wastenot::storage
