#include "storage/mutable_table.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "columnstore/column.h"
#include "columnstore/database.h"
#include "device/device.h"
#include "util/fault_injection.h"

namespace wastenot::storage {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<device::Device> MakeDevice(uint64_t capacity = 64 << 20) {
  device::DeviceSpec spec;
  spec.memory_capacity = capacity;
  return std::make_unique<device::Device>(spec, 2);
}

class MutableTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Reset();
    dir_ = fs::temp_directory_path() /
           ("wn_mutable_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::Reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  MutableTableOptions BaseOptions() {
    MutableTableOptions opts;
    opts.dir = dir_.string();
    opts.name = "fact";
    opts.columns = {"a", "v"};
    opts.background = false;
    return opts;
  }

  /// Appends and flushes rows {a = base + i, v = 10 * (base + i)}.
  void Ingest(MutableTable* table, uint64_t n, int64_t base = 0) {
    for (uint64_t i = 0; i < n; ++i) {
      const int64_t a = base + static_cast<int64_t>(i);
      const std::vector<int64_t> row = {a, 10 * a};
      ASSERT_TRUE(table->Append(row).ok());
    }
    auto flushed = table->Flush();
    ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  }

  /// Reads logical row `r` of column `name` through the view (base rows
  /// first, then delta rows) — the row image every engine serves.
  static int64_t ViewValue(const TableView& view, const std::string& table,
                           const std::string& name, uint64_t r) {
    const cs::Table& base = view.db->table(table);
    if (r < base.num_rows()) return base.column(name).Get(r);
    const uint64_t d = r - base.num_rows();
    return view.delta->Get(d, view.delta->ColumnIndex(name));
  }

  fs::path dir_;
};

TEST_F(MutableTableTest, OpenValidatesOptions) {
  MutableTableOptions opts = BaseOptions();
  opts.dir.clear();
  EXPECT_EQ(MutableTable::Open(opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = BaseOptions();
  opts.columns.clear();
  EXPECT_EQ(MutableTable::Open(opts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MutableTableTest, FlushPublishesRowsToTheView) {
  auto table = MutableTable::Open(BaseOptions());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  MutableTable* t = table->get();

  // Appended but unflushed rows are invisible.
  ASSERT_TRUE(t->Append(std::vector<int64_t>{1, 10}).ok());
  TableView view = t->View();
  EXPECT_EQ(view.durable, 0u);
  EXPECT_EQ(view.delta_or_null(), nullptr);

  auto flushed = t->Flush();
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(*flushed, 1u);
  view = t->View();
  EXPECT_EQ(view.durable, 1u);
  ASSERT_NE(view.delta_or_null(), nullptr);
  EXPECT_EQ(ViewValue(view, "fact", "v", 0), 10);

  const MutableTableStats stats = t->Stats();
  EXPECT_EQ(stats.appended_rows, 1u);
  EXPECT_EQ(stats.durable_rows, 1u);
  EXPECT_EQ(stats.buffered_rows, 0u);
  EXPECT_EQ(stats.pending_rows, 1u);
  EXPECT_EQ(stats.wal_commits, 1u);
}

TEST_F(MutableTableTest, AppendWidthMismatchIsInvalidArgument) {
  auto table = MutableTable::Open(BaseOptions());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->Append(std::vector<int64_t>{1}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MutableTableTest, FlushedRowsSurviveReopenUnflushedRowsDoNot) {
  {
    auto table = MutableTable::Open(BaseOptions());
    ASSERT_TRUE(table.ok());
    Ingest(table->get(), 5);
    // One extra appended row never flushed: a crash (or close) drops it.
    ASSERT_TRUE((*table)->Append(std::vector<int64_t>{99, 990}).ok());
  }
  auto reopened = MutableTable::Open(BaseOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const MutableTableStats stats = (*reopened)->Stats();
  EXPECT_EQ(stats.durable_rows, 5u);
  EXPECT_EQ(stats.replayed_rows, 5u);
  EXPECT_EQ(stats.absorbed_rows, 0u);
  const TableView view = (*reopened)->View();
  for (uint64_t r = 0; r < 5; ++r) {
    EXPECT_EQ(ViewValue(view, "fact", "a", r), static_cast<int64_t>(r));
    EXPECT_EQ(ViewValue(view, "fact", "v", r), static_cast<int64_t>(10 * r));
  }
}

TEST_F(MutableTableTest, DrainAbsorbsDeltaAndTruncatesTheWal) {
  auto dev = MakeDevice();
  MutableTableOptions opts = BaseOptions();
  opts.device = dev.get();
  auto table = MutableTable::Open(opts);
  ASSERT_TRUE(table.ok());
  MutableTable* t = table->get();
  Ingest(t, 64);

  // Before the drain: empty base, all rows in the delta, no device form.
  TableView view = t->View();
  EXPECT_EQ(view.db->table("fact").num_rows(), 0u);
  EXPECT_EQ(view.bwd, nullptr);
  EXPECT_EQ(view.delta->num_rows(), 64u);

  ASSERT_TRUE(t->Drain().ok());

  view = t->View();
  EXPECT_EQ(view.absorbed, 64u);
  EXPECT_EQ(view.db->table("fact").num_rows(), 64u);
  ASSERT_NE(view.bwd, nullptr);
  EXPECT_EQ(view.bwd->num_rows(), 64u);
  EXPECT_EQ(view.delta_or_null(), nullptr);
  for (uint64_t r = 0; r < 64; ++r) {
    EXPECT_EQ(ViewValue(view, "fact", "v", r), static_cast<int64_t>(10 * r));
  }
  const MutableTableStats stats = t->Stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.pending_rows, 0u);
  // Quiesced swap: the WAL restarted empty.
  EXPECT_EQ(fs::file_size(MutableTable::WalPath(dir_.string())), 0u);

  // An empty delta drains as a no-op.
  ASSERT_TRUE(t->Drain().ok());
  EXPECT_EQ(t->Stats().swaps, 1u);
}

TEST_F(MutableTableTest, InFlightViewOutlivesTheSwap) {
  auto dev = MakeDevice();
  MutableTableOptions opts = BaseOptions();
  opts.device = dev.get();
  auto table = MutableTable::Open(opts);
  ASSERT_TRUE(table.ok());
  MutableTable* t = table->get();
  Ingest(t, 16);

  const TableView old_view = t->View();  // held across the swap
  ASSERT_TRUE(t->Drain().ok());
  Ingest(t, 16, /*base=*/16);

  // The old view still reads the pre-swap image: empty base + 16 deltas.
  EXPECT_EQ(old_view.db->table("fact").num_rows(), 0u);
  EXPECT_EQ(old_view.delta->num_rows(), 16u);
  EXPECT_EQ(ViewValue(old_view, "fact", "v", 3), 30);

  const TableView new_view = t->View();
  EXPECT_EQ(new_view.db->table("fact").num_rows(), 16u);
  EXPECT_EQ(new_view.delta->num_rows(), 16u);
  EXPECT_EQ(ViewValue(new_view, "fact", "v", 20), 200);
}

TEST_F(MutableTableTest, ReopenAfterSwapLoadsSnapshotAndReplaysTheRace) {
  auto dev = MakeDevice();
  MutableTableOptions opts = BaseOptions();
  opts.device = dev.get();
  {
    auto table = MutableTable::Open(opts);
    ASSERT_TRUE(table.ok());
    Ingest(table->get(), 32);
    ASSERT_TRUE((*table)->Drain().ok());
    // Rows committed after the swap live only in the restarted WAL.
    Ingest(table->get(), 8, /*base=*/32);
  }
  auto reopened = MutableTable::Open(opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const MutableTableStats stats = (*reopened)->Stats();
  EXPECT_EQ(stats.absorbed_rows, 32u);
  EXPECT_EQ(stats.durable_rows, 40u);
  EXPECT_EQ(stats.replayed_rows, 8u);
  const TableView view = (*reopened)->View();
  EXPECT_EQ(view.db->table("fact").num_rows(), 32u);
  ASSERT_NE(view.bwd, nullptr);
  EXPECT_EQ(view.delta->num_rows(), 8u);
  for (uint64_t r = 0; r < 40; ++r) {
    EXPECT_EQ(ViewValue(view, "fact", "v", r), static_cast<int64_t>(10 * r));
  }
}

TEST_F(MutableTableTest, FailedReencodeKeepsServingAndRetrySucceeds) {
  auto dev = MakeDevice();
  MutableTableOptions opts = BaseOptions();
  opts.device = dev.get();
  auto table = MutableTable::Open(opts);
  ASSERT_TRUE(table.ok());
  MutableTable* t = table->get();
  Ingest(t, 16);

  fault::Arm(kFaultSwapReencode, fault::Kind::kError);
  EXPECT_EQ(t->Drain().code(), StatusCode::kIoError);
  fault::Disarm(kFaultSwapReencode);

  // Degraded, not broken: the delta still serves and nothing was lost.
  MutableTableStats stats = t->Stats();
  EXPECT_EQ(stats.failed_swaps, 1u);
  EXPECT_EQ(stats.swaps, 0u);
  TableView view = t->View();
  EXPECT_EQ(view.delta->num_rows(), 16u);

  ASSERT_TRUE(t->Drain().ok());
  stats = t->Stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(t->View().db->table("fact").num_rows(), 16u);
}

TEST_F(MutableTableTest, DeviceOomDegradesGracefully) {
  auto dev = MakeDevice(/*capacity=*/64);  // too small for any decomposition
  MutableTableOptions opts = BaseOptions();
  opts.device = dev.get();
  auto table = MutableTable::Open(opts);
  ASSERT_TRUE(table.ok());
  MutableTable* t = table->get();
  Ingest(t, 32);

  EXPECT_FALSE(t->Drain().ok());
  EXPECT_EQ(t->Stats().failed_swaps, 1u);
  const TableView view = t->View();
  EXPECT_EQ(view.delta->num_rows(), 32u);
  EXPECT_EQ(ViewValue(view, "fact", "v", 31), 310);
}

TEST_F(MutableTableTest, FailedRenameLeavesOldStateRecoverable) {
  auto table = MutableTable::Open(BaseOptions());
  ASSERT_TRUE(table.ok());
  Ingest(table->get(), 12);

  // The snapshot tmp file is fully written, but the commit point (rename)
  // fails: recovery must still see "no snapshot" + the full WAL.
  fault::Arm(kFaultSnapshotRename, fault::Kind::kError);
  EXPECT_EQ((*table)->Drain().code(), StatusCode::kIoError);
  fault::Reset();
  table->reset();

  EXPECT_FALSE(fs::exists(MutableTable::SnapshotPath(dir_.string())));
  auto reopened = MutableTable::Open(BaseOptions());
  ASSERT_TRUE(reopened.ok());
  const MutableTableStats stats = (*reopened)->Stats();
  EXPECT_EQ(stats.absorbed_rows, 0u);
  EXPECT_EQ(stats.durable_rows, 12u);
  EXPECT_EQ(stats.replayed_rows, 12u);
}

TEST_F(MutableTableTest, WideValuesGetAnI64PhysicalColumn) {
  auto table = MutableTable::Open(BaseOptions());
  ASSERT_TRUE(table.ok());
  MutableTable* t = table->get();
  const int64_t wide = (int64_t{1} << 40) + 7;
  ASSERT_TRUE(t->Append(std::vector<int64_t>{wide, -wide}).ok());
  ASSERT_TRUE(t->Append(std::vector<int64_t>{3, 30}).ok());
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->Drain().ok());

  const TableView view = t->View();
  const cs::Column& a = view.db->table("fact").column("a");
  EXPECT_EQ(a.type(), cs::ValueType::kInt64);
  EXPECT_EQ(a.Get(0), wide);
  EXPECT_EQ(view.db->table("fact").column("v").Get(0), -wide);

  // And the snapshot round-trips the full width.
  table->reset();
  auto reopened = MutableTable::Open(BaseOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->View().db->table("fact").column("a").Get(0), wide);
}

TEST_F(MutableTableTest, DimensionsAreClonedIntoEveryEpoch) {
  cs::Database dims;
  cs::Table dim("dim");
  cs::Column dc = cs::Column::FromI32({7, 8, 9});
  dc.ComputeStats();
  ASSERT_TRUE(dim.AddColumn("w", std::move(dc)).ok());
  dims.AddTable(std::move(dim));

  MutableTableOptions opts = BaseOptions();
  opts.dims = &dims;
  auto table = MutableTable::Open(opts);
  ASSERT_TRUE(table.ok());
  TableView view = (*table)->View();
  ASSERT_TRUE(view.db->HasTable("dim"));
  EXPECT_EQ(view.db->table("dim").column("w").Get(2), 9);

  Ingest(table->get(), 4);
  ASSERT_TRUE((*table)->Drain().ok());
  view = (*table)->View();
  ASSERT_TRUE(view.db->HasTable("dim"));
  EXPECT_EQ(view.db->table("dim").num_rows(), 3u);
}

TEST_F(MutableTableTest, BackgroundDrainFiresAtTheThreshold) {
  auto dev = MakeDevice();
  MutableTableOptions opts = BaseOptions();
  opts.device = dev.get();
  opts.background = true;
  opts.drain_threshold = 8;
  auto table = MutableTable::Open(opts);
  ASSERT_TRUE(table.ok());
  MutableTable* t = table->get();
  Ingest(t, 10);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (t->Stats().swaps == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const MutableTableStats stats = t->Stats();
  EXPECT_GE(stats.swaps, 1u);
  EXPECT_EQ(stats.absorbed_rows, 10u);
  EXPECT_EQ(t->View().db->table("fact").num_rows(), 10u);
}

}  // namespace
}  // namespace wastenot::storage
