#include "bwd/packed_vector.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/thread_pool.h"

namespace wastenot::bwd {
namespace {

class PackedWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PackedWidthTest, RoundTripRandomValues) {
  const uint32_t width = GetParam();
  const uint64_t n = 1000;
  PackedVector pv(width, n);
  Xoshiro256 rng(width * 7919 + 1);
  std::vector<uint64_t> expect(n);
  const uint64_t mask = bits::LowMask(width);
  for (uint64_t i = 0; i < n; ++i) {
    expect[i] = rng.Next() & mask;
    pv.Set(i, expect[i]);
  }
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(pv.Get(i), expect[i]) << "width=" << width << " i=" << i;
  }
  // The view decodes identically.
  PackedView view = pv.view();
  for (uint64_t i = 0; i < n; ++i) ASSERT_EQ(view.Get(i), expect[i]);
}

TEST_P(PackedWidthTest, OverwriteDoesNotLeakIntoNeighbors) {
  const uint32_t width = GetParam();
  if (width == 0) return;
  PackedVector pv(width, 3);
  const uint64_t mask = bits::LowMask(width);
  pv.Set(0, mask);
  pv.Set(1, 0);
  pv.Set(2, mask);
  pv.Set(1, mask);
  pv.Set(1, 0);  // rewrite must clear its own bits only
  EXPECT_EQ(pv.Get(0), mask);
  EXPECT_EQ(pv.Get(1), 0u);
  EXPECT_EQ(pv.Get(2), mask);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackedWidthTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 7u, 8u, 12u,
                                           13u, 16u, 24u, 27u, 31u, 32u, 33u,
                                           48u, 63u, 64u));

// Widths above 64 are a contract violation: the constructor asserts.
// (Asserts stay live — the build intentionally does not define NDEBUG.)
// "threadsafe" style re-execs instead of plain fork(): other tests in this
// binary start the persistent ThreadPool workers, and forking a
// multithreaded process can deadlock the death-test child.
TEST(PackedVectorDeathTest, WidthAbove64Asserts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH({ PackedVector pv(65, 8); (void)pv; }, "width <= 64");
  EXPECT_DEATH({ PackedVector pv(100, 1); (void)pv; }, "width <= 64");
}

TEST(PackedVectorDeathTest, OutOfRangeAccessAsserts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  PackedVector pv(8, 4);
  EXPECT_DEATH(pv.Get(4), "i < count_");
  EXPECT_DEATH(pv.Set(7, 1), "i < count_");
}

TEST(PackedVectorTest, WidthZeroReadsZero) {
  PackedVector pv(0, 10);
  pv.Set(3, 999);  // ignored
  EXPECT_EQ(pv.Get(3), 0u);
  EXPECT_EQ(pv.byte_size(), 0u);
}

TEST(PackedVectorTest, ByteSizeTight) {
  PackedVector pv(13, 100);
  EXPECT_EQ(pv.byte_size(), (100 * 13 + 7) / 8);
  // Allocation includes the padding word.
  EXPECT_GE(pv.allocated_bytes(), pv.byte_size() + 8);
}

TEST(PackedVectorTest, ParallelChunkedWritesAt64ElementBoundaries) {
  // Chunks starting at multiples of 64 elements never share words, for any
  // width — the contract the parallel encoder relies on.
  const uint32_t width = 27;
  const uint64_t n = 64 * 100;
  PackedVector pv(width, n);
  ParallelFor(100, [&](uint64_t cb, uint64_t ce) {
    for (uint64_t c = cb; c < ce; ++c) {
      for (uint64_t i = c * 64; i < (c + 1) * 64; ++i) {
        internal::PackedSet(pv.mutable_words(), width, i, i & bits::LowMask(width));
      }
    }
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(pv.Get(i), i & bits::LowMask(width)) << i;
  }
}

TEST(PackedVectorTest, WordBoundaryStraddling) {
  // Width 33 guarantees every other element straddles a word boundary.
  PackedVector pv(33, 64);
  for (uint64_t i = 0; i < 64; ++i) pv.Set(i, (1ull << 33) - 1 - i);
  for (uint64_t i = 0; i < 64; ++i) EXPECT_EQ(pv.Get(i), (1ull << 33) - 1 - i);
}

TEST(PackedViewTest, NonOwningOverExternalWords) {
  PackedVector pv(9, 50);
  for (uint64_t i = 0; i < 50; ++i) pv.Set(i, i * 3);
  PackedView view(pv.words(), 9, 50);
  EXPECT_EQ(view.Get(17), 51u);
  EXPECT_EQ(view.byte_size(), (50 * 9 + 7) / 8);
}

}  // namespace
}  // namespace wastenot::bwd
