// Bulk codec vs. the scalar Get/Set reference: the block kernels must be
// bit-identical to element-at-a-time access for every width, including
// word-straddling widths, unaligned starts and non-multiple-of-64 tails.

#include "bwd/packed_codec.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::bwd {
namespace {

/// A packed vector of `n` random `width`-bit values, filled via scalar Set,
/// plus the plain expected values.
struct Reference {
  PackedVector pv;
  std::vector<uint64_t> values;

  Reference(uint32_t width, uint64_t n, uint64_t seed)
      : pv(width, n), values(n) {
    Xoshiro256 rng(seed);
    const uint64_t mask = bits::LowMask(width);
    for (uint64_t i = 0; i < n; ++i) {
      values[i] = rng.Next() & mask;
      pv.Set(i, values[i]);
    }
  }
};

TEST(PackedCodecTest, UnpackBlockMatchesScalarGetAllWidths) {
  const uint64_t n = 192;  // three whole blocks
  for (uint32_t width = 0; width <= 64; ++width) {
    Reference ref(width, n, width * 7919 + 1);
    uint64_t out[kPackedBlockElems];
    for (uint64_t block = 0; block < n / kPackedBlockElems; ++block) {
      UnpackBlock(ref.pv.words(), width, block, out);
      for (uint64_t j = 0; j < kPackedBlockElems; ++j) {
        ASSERT_EQ(out[j], ref.values[block * kPackedBlockElems + j])
            << "width=" << width << " block=" << block << " j=" << j;
      }
    }
  }
}

TEST(PackedCodecTest, UnpackRangeExhaustiveWidthsTailsAndOffsets) {
  // 257 = 4 whole blocks + a 1-element tail; every width straddles words
  // somewhere in this range (unless it divides 64).
  const uint64_t n = 257;
  for (uint32_t width = 0; width <= 64; ++width) {
    Reference ref(width, n, width * 131 + 5);
    // Offset starts exercise the scalar head (unaligned), the block body
    // and the partial tail in all combinations.
    const uint64_t begins[] = {0, 1, 63, 64, 65, 100, 128, 255, 256, 257};
    for (uint64_t begin : begins) {
      const uint64_t count = n - begin;
      std::vector<uint64_t> out(count + 1, 0xdeadbeefULL);
      UnpackRange(ref.pv.words(), width, begin, count, out.data());
      for (uint64_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], ref.values[begin + i])
            << "width=" << width << " begin=" << begin << " i=" << i;
      }
      // No overwrite past the requested count.
      EXPECT_EQ(out[count], 0xdeadbeefULL) << "width=" << width;
    }
    // Short interior ranges (head-only, tail-only, head+tail same block).
    for (uint64_t begin : {uint64_t{3}, uint64_t{66}, uint64_t{127}}) {
      for (uint64_t count : {uint64_t{1}, uint64_t{7}, uint64_t{61}}) {
        std::vector<uint64_t> out(count);
        UnpackRange(ref.pv.view(), begin, count, out.data());
        for (uint64_t i = 0; i < count; ++i) {
          ASSERT_EQ(out[i], ref.values[begin + i])
              << "width=" << width << " begin=" << begin << " count=" << count;
        }
      }
    }
  }
}

TEST(PackedCodecTest, PackRangeRoundTripsAgainstScalarGet) {
  const uint64_t n = 257;
  for (uint32_t width = 0; width <= 64; ++width) {
    Xoshiro256 rng(width * 31 + 17);
    const uint64_t mask = bits::LowMask(width);
    std::vector<uint64_t> values(n);
    for (auto& v : values) v = rng.Next() & mask;

    PackedVector pv(width, n);
    PackRange(pv.mutable_words(), width, 0, n, values.data());
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(pv.Get(i), values[i]) << "width=" << width << " i=" << i;
    }
  }
}

TEST(PackedCodecTest, PackRangeAtOffsetLeavesNeighborsIntact) {
  const uint64_t n = 300;
  for (uint32_t width = 1; width <= 64; ++width) {
    Reference ref(width, n, width * 53 + 29);
    Xoshiro256 rng(width * 97 + 41);
    const uint64_t mask = bits::LowMask(width);

    // Overwrite an interior window (unaligned head, whole blocks, partial
    // tail); everything outside must keep its original bits.
    const uint64_t begin = 37;
    const uint64_t count = 200;  // spans blocks 0..3
    std::vector<uint64_t> fresh(count);
    for (auto& v : fresh) v = rng.Next() & mask;
    PackRange(ref.pv.mutable_words(), width, begin, count, fresh.data());

    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t expect = (i >= begin && i < begin + count)
                                  ? fresh[i - begin]
                                  : ref.values[i];
      ASSERT_EQ(ref.pv.Get(i), expect) << "width=" << width << " i=" << i;
    }
  }
}

TEST(PackedCodecTest, PackRangeUnpackRangeComposeToIdentity) {
  const uint64_t n = 1000;
  for (uint32_t width = 0; width <= 64; ++width) {
    Xoshiro256 rng(width * 211 + 3);
    const uint64_t mask = bits::LowMask(width);
    std::vector<uint64_t> values(n);
    for (auto& v : values) v = rng.Next() & mask;

    PackedVector pv(width, n);
    PackRange(pv.mutable_words(), width, 0, n, values.data());
    std::vector<uint64_t> back(n);
    UnpackRange(pv.view(), 0, n, back.data());
    ASSERT_EQ(back, values) << "width=" << width;
  }
}

TEST(PackedCodecTest, GatherMatchesScalarGet) {
  const uint64_t n = 500;
  const uint64_t num_ids = 137;
  for (uint32_t width = 0; width <= 64; ++width) {
    Reference ref(width, n, width * 61 + 13);
    Xoshiro256 rng(width * 71 + 23);
    std::vector<uint32_t> ids32(num_ids);
    std::vector<uint64_t> ids64(num_ids);
    for (uint64_t i = 0; i < num_ids; ++i) {
      ids32[i] = static_cast<uint32_t>(rng.Below(n));  // duplicates allowed
      ids64[i] = ids32[i];
    }
    // The last data element exercises the padding-word overread guard.
    ids32[0] = static_cast<uint32_t>(n - 1);
    ids64[0] = n - 1;

    std::vector<uint64_t> out32(num_ids), out64(num_ids);
    GatherPacked(ref.pv.view(), ids32.data(), num_ids, out32.data());
    GatherPacked(ref.pv.view(), ids64.data(), num_ids, out64.data());
    for (uint64_t i = 0; i < num_ids; ++i) {
      ASSERT_EQ(out32[i], ref.values[ids32[i]])
          << "width=" << width << " i=" << i;
      ASSERT_EQ(out64[i], out32[i]) << "width=" << width << " i=" << i;
    }
  }
}

// Regression: Codec<W>::Read2 used to read in[word + 1] unconditionally,
// which walked one word past the end of an exactly-sized buffer on every
// tail path (UnpackRange's partial tail, MatchBlockPartial, and a gather
// of the final element). These tests allocate exactly
// CeilDiv(n * width, 64) words — no slack — so under ASan the old codec
// faults here; the fixed codec must be value-identical *and* in-bounds.
TEST(PackedCodecTest, ExactSizedBufferTailPathsNoOverread) {
  for (uint32_t width = 1; width <= 64; ++width) {
    // 2 whole blocks + a 17-element tail: for most widths the last element
    // ends mid-word, the case whose unconditional two-word read overran.
    const uint64_t n = 2 * kPackedBlockElems + 17;
    std::vector<uint64_t> words(bits::CeilDiv(n * width, 64));
    std::vector<uint64_t> values(n);
    Xoshiro256 rng(width * 41 + 3);
    const uint64_t mask = bits::LowMask(width);
    for (uint64_t i = 0; i < n; ++i) {
      values[i] = rng.Next() & mask;
      internal::PackedSet(words.data(), width, i, values[i]);
    }

    // UnpackRange: partial-tail path.
    std::vector<uint64_t> out(n);
    UnpackRange(words.data(), width, 0, n, out.data());
    ASSERT_EQ(out, values) << "width=" << width;

    // MatchBlockPartial on the tail block (span = full domain: all match).
    const uint64_t tail_block = n / kPackedBlockElems;
    const uint32_t tail_n = static_cast<uint32_t>(n % kPackedBlockElems);
    EXPECT_EQ(MatchBlockPartial(words.data(), width, tail_block, tail_n,
                                /*lo=*/0, /*span=*/mask),
              bits::LowMask(tail_n))
        << "width=" << width;

    // Gather of the final element.
    const uint32_t last32 = static_cast<uint32_t>(n - 1);
    const uint64_t last64 = n - 1;
    uint64_t g32 = 0, g64 = 0;
    GatherPacked(words.data(), width, &last32, 1, &g32);
    GatherPacked(words.data(), width, &last64, 1, &g64);
    EXPECT_EQ(g32, values[n - 1]) << "width=" << width;
    EXPECT_EQ(g64, values[n - 1]) << "width=" << width;
  }
}

TEST(PackedCodecTest, ExactSizedSingleElementBuffer) {
  // The degenerate tail: one element, one (or a few) words, no slack.
  for (uint32_t width = 1; width <= 64; ++width) {
    std::vector<uint64_t> words(bits::CeilDiv(width, 64));
    const uint64_t value = bits::LowMask(width) & 0xA5A5A5A5A5A5A5A5ULL;
    internal::PackedSet(words.data(), width, 0, value);

    uint64_t out = 0;
    UnpackRange(words.data(), width, 0, 1, &out);
    EXPECT_EQ(out, value) << "width=" << width;

    const uint32_t id = 0;
    uint64_t g = 0;
    GatherPacked(words.data(), width, &id, 1, &g);
    EXPECT_EQ(g, value) << "width=" << width;

    EXPECT_EQ(MatchBlockPartial(words.data(), width, 0, 1, value, 0),
              uint64_t{1})
        << "width=" << width;
  }
}

TEST(PackedCodecTest, ZeroCountAndZeroWidthAreNoOps) {
  PackedVector pv(13, 64);
  uint64_t sentinel = 0x1234;
  UnpackRange(pv.words(), 13, 10, 0, &sentinel);
  EXPECT_EQ(sentinel, 0x1234u);
  PackRange(pv.mutable_words(), 13, 10, 0, &sentinel);

  // Width 0 decodes all-zero values regardless of input.
  uint64_t out[5] = {9, 9, 9, 9, 9};
  PackedVector zero(0, 100);
  UnpackRange(zero.view(), 17, 5, out);
  for (uint64_t v : out) EXPECT_EQ(v, 0u);
}

}  // namespace
}  // namespace wastenot::bwd
