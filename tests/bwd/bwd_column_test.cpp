#include "bwd/bwd_column.h"

#include <memory>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::bwd {
namespace {

std::unique_ptr<device::Device> MakeDevice(uint64_t capacity = 64 << 20) {
  device::DeviceSpec spec;
  spec.memory_capacity = capacity;
  return std::make_unique<device::Device>(spec, 2);
}

cs::Column RandomColumn(uint64_t n, int64_t lo, int64_t hi, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<int32_t> v(n);
  for (auto& x : v) {
    x = static_cast<int32_t>(lo + static_cast<int64_t>(
                                      rng.Below(static_cast<uint64_t>(hi - lo + 1))));
  }
  cs::Column col = cs::Column::FromI32(v);
  col.ComputeStats();
  return col;
}

class DecomposeBitsTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DecomposeBitsTest, ReconstructionIsExact) {
  const uint32_t device_bits = GetParam();
  auto dev = MakeDevice();
  cs::Column col = RandomColumn(5000, -500, 100000, device_bits);
  auto bwd = BwdColumn::Decompose(col, device_bits, dev.get());
  ASSERT_TRUE(bwd.ok()) << bwd.status().ToString();
  for (uint64_t i = 0; i < col.size(); ++i) {
    ASSERT_EQ(bwd->Reconstruct(i), col.Get(i))
        << "device_bits=" << device_bits << " row=" << i;
  }
}

TEST_P(DecomposeBitsTest, BoundsBracketTrueValues) {
  const uint32_t device_bits = GetParam();
  auto dev = MakeDevice();
  cs::Column col = RandomColumn(2000, 0, 1 << 20, device_bits + 100);
  auto bwd = BwdColumn::Decompose(col, device_bits, dev.get());
  ASSERT_TRUE(bwd.ok());
  for (uint64_t i = 0; i < col.size(); ++i) {
    ASSERT_LE(bwd->ApproxLowerBound(i), col.Get(i));
    ASSERT_GE(bwd->ApproxUpperBound(i), col.Get(i));
    ASSERT_EQ(bwd->ApproxUpperBound(i) - bwd->ApproxLowerBound(i),
              static_cast<int64_t>(bwd->spec().error()));
  }
}

INSTANTIATE_TEST_SUITE_P(DeviceBits, DecomposeBitsTest,
                         ::testing::Values(1u, 4u, 8u, 10u, 16u, 20u, 24u,
                                           28u, 30u, 31u, 32u));

TEST(BwdColumnTest, ReconstructAllMatches) {
  auto dev = MakeDevice();
  cs::Column col = RandomColumn(1000, -10, 10, 1);
  auto bwd = BwdColumn::Decompose(col, 28, dev.get());
  ASSERT_TRUE(bwd.ok());
  cs::Column all = bwd->ReconstructAll();
  for (uint64_t i = 0; i < col.size(); ++i) {
    ASSERT_EQ(all.Get(i), col.Get(i));
  }
}

TEST(BwdColumnTest, DeviceBytesReflectPacking) {
  auto dev = MakeDevice();
  // Domain 0..2525 (12 bits), fully resident: ~12 bits/value on device.
  cs::Column col = RandomColumn(10000, 0, 2525, 3);
  auto bwd = BwdColumn::Decompose(col, 32, dev.get());
  ASSERT_TRUE(bwd.ok());
  EXPECT_EQ(bwd->spec().approximation_bits(), 12u);
  EXPECT_LE(bwd->device_bytes(), 10000 * 2 + 1024);  // ~1.5 B/value
  EXPECT_EQ(bwd->residual_bytes(), 0u);
  EXPECT_EQ(dev->arena().used(), bwd->device_bytes());
}

TEST(BwdColumnTest, ResidualStaysOnHost) {
  auto dev = MakeDevice();
  cs::Column col = RandomColumn(10000, 0, (1 << 24) - 1, 4);
  auto bwd = BwdColumn::Decompose(col, 16, dev.get());  // 16 residual bits
  ASSERT_TRUE(bwd.ok());
  EXPECT_EQ(bwd->spec().residual_bits, 16u);
  EXPECT_GT(bwd->residual_bytes(), 10000u * 16 / 8 - 64);
}

TEST(BwdColumnTest, FailsWhenDeviceFull) {
  auto dev = MakeDevice(1024);  // 1 KB device
  cs::Column col = RandomColumn(100000, 0, 1 << 20, 5);
  auto bwd = BwdColumn::Decompose(col, 32, dev.get());
  EXPECT_FALSE(bwd.ok());
  EXPECT_TRUE(bwd.status().IsDeviceOutOfMemory());
  EXPECT_EQ(dev->arena().used(), 0u) << "failed decompose must not leak";
}

TEST(BwdColumnTest, FewerDeviceBitsFitSmallerDevices) {
  // The capacity-driven decomposition choice: 32 resident bits do not fit,
  // 8 do (the core premise of the paper's storage model).
  cs::Column col = RandomColumn(100000, 0, (1 << 27) - 1, 6);
  auto small = MakeDevice(200 * 1024);
  EXPECT_FALSE(BwdColumn::Decompose(col, 32, small.get()).ok());
  auto ok = BwdColumn::Decompose(col, 32 - 27 + 8, small.get());
  // 8 approximation bits -> 100k B + padding fits in 200 KiB.
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->spec().approximation_bits(), 8u);
}

TEST(BwdColumnTest, InvalidArguments) {
  auto dev = MakeDevice();
  cs::Column col = RandomColumn(10, 0, 5, 7);
  EXPECT_FALSE(BwdColumn::Decompose(col, 32, nullptr).ok());
  EXPECT_FALSE(BwdColumn::Decompose(col, 0, dev.get()).ok());
}

TEST(BwdColumnTest, PaperExampleValue) {
  // Fig 2: 747979 split 13 major / 7 minor bits. Build a column whose
  // domain makes value_bits=20, then request 7 residual bits.
  auto dev = MakeDevice();
  std::vector<int32_t> v = {747979, 0, (1 << 20) - 1};
  cs::Column col = cs::Column::FromI32(v);
  col.ComputeStats();
  auto bwd = BwdColumn::Decompose(col, 32 - 7, dev.get());
  ASSERT_TRUE(bwd.ok());
  EXPECT_EQ(bwd->spec().residual_bits, 7u);
  EXPECT_EQ(bwd->spec().approximation_bits(), 13u);
  EXPECT_EQ(bwd->Reconstruct(0), 747979);
  EXPECT_EQ(bwd->approximation().Get(0), 747979u >> 7);
  EXPECT_EQ(bwd->residual().Get(0), 747979u & 0x7F);
}

}  // namespace
}  // namespace wastenot::bwd
