// Status propagation through the Decompose failure paths: every fallible
// step (device arena exhaustion, argument validation, column lookup) must
// surface as the right StatusCode at the BwdColumn/BwdTable API boundary,
// never as a crash or a silently-empty result.

#include <vector>

#include <gtest/gtest.h>

#include "bwd/bwd_column.h"
#include "bwd/bwd_table.h"
#include "device/device.h"

namespace wastenot {
namespace {

cs::Column SmallColumn() {
  std::vector<int32_t> vals = {1, 2, 3, 4, 5, 6, 7, 8};
  cs::Column col = cs::Column::FromI32(vals);
  col.ComputeStats();
  return col;
}

TEST(StatusPropagationTest, DecomposeZeroCapacityDeviceIsDeviceOom) {
  device::DeviceSpec spec;
  spec.memory_capacity = 0;
  device::Device dev(spec, 1);
  auto col = bwd::BwdColumn::Decompose(SmallColumn(), 16, &dev);
  ASSERT_FALSE(col.ok());
  EXPECT_EQ(col.status().code(), StatusCode::kDeviceOutOfMemory);
  EXPECT_TRUE(col.status().IsDeviceOutOfMemory());
  EXPECT_FALSE(col.status().message().empty());
}

TEST(StatusPropagationTest, TableDecomposePropagatesDeviceOom) {
  device::DeviceSpec spec;
  spec.memory_capacity = 0;
  device::Device dev(spec, 1);
  cs::Table t("t");
  ASSERT_TRUE(t.AddColumn("a", SmallColumn()).ok());
  auto bwd_table = bwd::BwdTable::Decompose(
      t, {{"a", 16, bwd::Compression::kBitPacked}}, &dev);
  ASSERT_FALSE(bwd_table.ok());
  EXPECT_EQ(bwd_table.status().code(), StatusCode::kDeviceOutOfMemory);
}

TEST(StatusPropagationTest, DecomposeNullDeviceIsInvalidArgument) {
  auto col = bwd::BwdColumn::Decompose(SmallColumn(), 16, nullptr);
  ASSERT_FALSE(col.ok());
  EXPECT_EQ(col.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusPropagationTest, DecomposeZeroDeviceBitsIsInvalidArgument) {
  device::Device dev(device::DeviceSpec::Gtx680(), 1);
  auto col = bwd::BwdColumn::Decompose(SmallColumn(), 0, &dev);
  ASSERT_FALSE(col.ok());
  EXPECT_EQ(col.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(col.status().IsInvalidArgument());
}

// Widths past the physical type are not an error: Plan clamps them to a
// fully-resident decomposition with an empty residual.
TEST(StatusPropagationTest, DecomposeClampsWidthPastTypeBits) {
  device::Device dev(device::DeviceSpec::Gtx680(), 1);
  std::vector<int32_t> vals = {5, 6, 7, 1000, -3};
  cs::Column col = cs::Column::FromI32(vals);
  col.ComputeStats();
  auto out = bwd::BwdColumn::Decompose(col, 40, &dev);  // > 32-bit type
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->spec().residual_bits, 0u);
  for (uint64_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(out->Reconstruct(i), col.Get(i)) << "row " << i;
  }
}

TEST(StatusPropagationTest, TableDecomposeMissingColumnPropagates) {
  device::Device dev(device::DeviceSpec::Gtx680(), 1);
  cs::Table t("t");
  ASSERT_TRUE(t.AddColumn("a", SmallColumn()).ok());
  auto bwd_table = bwd::BwdTable::Decompose(
      t, {{"nope", 16, bwd::Compression::kBitPacked}}, &dev);
  ASSERT_FALSE(bwd_table.ok());
  EXPECT_FALSE(bwd_table.status().ok());
  EXPECT_FALSE(bwd_table.status().message().empty());
}

}  // namespace
}  // namespace wastenot
