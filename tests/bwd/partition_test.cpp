// Property tests for horizontal partitioning (partition.h invariants):
// round trip, spec identity across shards, hull soundness — plus the edge
// shapes the merge discipline leans on (empty shards, skew, n < shards)
// and the data-local TargetShards pruning rule.

#include "bwd/partition.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wastenot::bwd {
namespace {

cs::Table MakeTable(const std::vector<int32_t>& keys,
                    const std::vector<int32_t>& vals) {
  cs::Table t("f");
  cs::Column k = cs::Column::FromI32(keys);
  k.ComputeStats();
  cs::Column v = cs::Column::FromI32(vals);
  v.ComputeStats();
  (void)t.AddColumn("k", std::move(k));
  (void)t.AddColumn("v", std::move(v));
  return t;
}

/// Checks partition invariants 1-3 against the base table.
void VerifyInvariants(const cs::Table& base, const TablePartition& p) {
  ASSERT_EQ(p.shards.size(), p.spec.num_shards);
  ASSERT_EQ(p.global_rows.size(), p.spec.num_shards);
  ASSERT_EQ(p.key_ranges.size(), p.spec.num_shards);
  EXPECT_EQ(p.num_rows, base.num_rows());

  // Invariant 1 (round trip): every global row in exactly one shard, and
  // shard values reproduce the base values through global_rows.
  std::vector<int> seen(base.num_rows(), 0);
  uint64_t total = 0;
  for (uint32_t s = 0; s < p.num_shards(); ++s) {
    const cs::OidVec& rows = p.global_rows[s];
    ASSERT_EQ(p.shards[s].num_rows(), rows.size());
    total += rows.size();
    for (uint64_t i = 0; i < rows.size(); ++i) {
      ASSERT_LT(rows[i], base.num_rows());
      ++seen[rows[i]];
      for (const std::string& name : base.column_names()) {
        ASSERT_EQ(p.shards[s].column(name).Get(i),
                  base.column(name).Get(rows[i]))
            << "shard " << s << " row " << i << " column " << name;
      }
    }
  }
  EXPECT_EQ(total, base.num_rows());
  for (uint64_t g = 0; g < base.num_rows(); ++g) {
    EXPECT_EQ(seen[g], 1) << "global row " << g;
  }

  // Invariant 2 (spec identity): shard columns carry the parent stats.
  for (uint32_t s = 0; s < p.num_shards(); ++s) {
    for (const std::string& name : base.column_names()) {
      const cs::Column& col = p.shards[s].column(name);
      ASSERT_TRUE(col.has_stats());
      EXPECT_EQ(col.min_value(), base.column(name).min_value());
      EXPECT_EQ(col.max_value(), base.column(name).max_value());
    }
  }

  // Invariant 3 (hull soundness): every shard key lies in its hull, and a
  // structurally empty hull implies an empty shard.
  const cs::Column& key = base.column(p.spec.key_column);
  for (uint32_t s = 0; s < p.num_shards(); ++s) {
    const cs::RangePred& hull = p.key_ranges[s];
    if (hull.Empty()) {
      EXPECT_TRUE(p.global_rows[s].empty());
      continue;
    }
    for (cs::oid_t g : p.global_rows[s]) {
      EXPECT_GE(key.Get(g), hull.lo);
      EXPECT_LE(key.Get(g), hull.hi);
    }
  }
}

std::vector<int32_t> RandomInts(uint64_t n, int64_t lo, int64_t hi,
                                uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<int32_t> out(n);
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = static_cast<int32_t>(
        lo + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(hi - lo + 1))));
  }
  return out;
}

class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<PartitionKind, uint32_t>> {};

TEST_P(PartitionProperty, RoundTripUniformKeys) {
  const auto [kind, shards] = GetParam();
  const uint64_t n = 997;  // prime, so no shard count divides it evenly
  cs::Table base = MakeTable(RandomInts(n, -250, 750, 7),
                             RandomInts(n, 0, 1000, 8));
  auto p = PartitionTable(base, PartitionSpec{kind, "k", shards});
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  VerifyInvariants(base, *p);
}

TEST_P(PartitionProperty, SkewedKeysLeaveEmptyShardsInPlace) {
  const auto [kind, shards] = GetParam();
  // Every key identical: one shard takes all rows, the rest stay empty
  // (and keep their position, so shard->device routing is stable).
  std::vector<int32_t> keys(500, 42);
  cs::Table base = MakeTable(keys, RandomInts(500, 0, 9, 3));
  auto p = PartitionTable(base, PartitionSpec{kind, "k", shards});
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  VerifyInvariants(base, *p);
  uint32_t non_empty = 0;
  for (const auto& rows : p->global_rows) non_empty += !rows.empty();
  EXPECT_EQ(non_empty, 1u);
}

TEST_P(PartitionProperty, FewerRowsThanShards) {
  const auto [kind, shards] = GetParam();
  cs::Table base = MakeTable({5, -3, 11}, {1, 2, 3});
  auto p = PartitionTable(base, PartitionSpec{kind, "k", shards});
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  VerifyInvariants(base, *p);
}

TEST_P(PartitionProperty, EmptyTable) {
  const auto [kind, shards] = GetParam();
  cs::Table base = MakeTable({}, {});
  auto p = PartitionTable(base, PartitionSpec{kind, "k", shards});
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  VerifyInvariants(base, *p);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndCounts, PartitionProperty,
    ::testing::Combine(::testing::Values(PartitionKind::kRange,
                                         PartitionKind::kRadix),
                       ::testing::Values(1u, 2u, 3u, 8u)),
    [](const ::testing::TestParamInfo<std::tuple<PartitionKind, uint32_t>>&
           info) {
      return std::string(PartitionKindToString(std::get<0>(info.param))) +
             "x" + std::to_string(std::get<1>(info.param));
    });

TEST(PartitionTest, RejectsZeroShards) {
  cs::Table base = MakeTable({1, 2}, {3, 4});
  auto p = PartitionTable(base, PartitionSpec{PartitionKind::kRange, "k", 0});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionTest, RejectsUnknownKeyColumn) {
  cs::Table base = MakeTable({1, 2}, {3, 4});
  auto p = PartitionTable(base, PartitionSpec{PartitionKind::kRange, "zz", 2});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST(PartitionTest, RangeHullsAreDisjointIntervals) {
  std::vector<int32_t> keys(100);
  for (int i = 0; i < 100; ++i) keys[i] = i;  // domain exactly [0, 99]
  cs::Table base = MakeTable(keys, keys);
  auto p = PartitionTable(base, PartitionSpec{PartitionKind::kRange, "k", 4});
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->key_ranges.size(), 4u);
  EXPECT_EQ(p->key_ranges[0].lo, 0);
  EXPECT_EQ(p->key_ranges[3].hi, 99);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(p->key_ranges[s].hi + 1, p->key_ranges[s + 1].lo);
  }
}

TEST(PartitionTest, TargetShardsRangePruning) {
  std::vector<int32_t> keys(100);
  for (int i = 0; i < 100; ++i) keys[i] = i;
  cs::Table base = MakeTable(keys, keys);
  auto p = PartitionTable(base, PartitionSpec{PartitionKind::kRange, "k", 4});
  ASSERT_TRUE(p.ok());
  // Hulls are [0,24] [25,49] [50,74] [75,99].
  EXPECT_EQ(TargetShards(*p, cs::RangePred{30, 40}),
            (std::vector<uint32_t>{1}));
  EXPECT_EQ(TargetShards(*p, cs::RangePred{20, 60}),
            (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(TargetShards(*p, cs::RangePred{90, 500}),
            (std::vector<uint32_t>{3}));
  // Fully outside the domain, and contradictory: shard 0 stands in so the
  // merge still sees one (empty) shard run.
  EXPECT_EQ(TargetShards(*p, cs::RangePred{200, 300}),
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(TargetShards(*p, cs::RangePred{10, 5}),
            (std::vector<uint32_t>{0}));
}

TEST(PartitionTest, TargetShardsRadixPointPredicate) {
  std::vector<int32_t> keys(100);
  for (int i = 0; i < 100; ++i) keys[i] = i;
  cs::Table base = MakeTable(keys, keys);
  auto p = PartitionTable(base, PartitionSpec{PartitionKind::kRadix, "k", 4});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(TargetShards(*p, cs::RangePred{42, 42}),
            (std::vector<uint32_t>{2}));
  // Point outside the keyed domain: nothing can match; shard 0 stands in.
  EXPECT_EQ(TargetShards(*p, cs::RangePred{1000, 1000}),
            (std::vector<uint32_t>{0}));
  // Non-point radix predicates cannot prune (keys scatter mod S).
  EXPECT_EQ(TargetShards(*p, cs::RangePred{10, 12}),
            (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(PartitionTest, DecomposeShardedPlansIdenticalSpecs) {
  const uint64_t n = 600;
  cs::Table base = MakeTable(RandomInts(n, -100, 923, 11),
                             RandomInts(n, 0, 4095, 12));
  device::DeviceGroupOptions gopts;
  gopts.num_devices = 3;
  gopts.base.memory_capacity = 64 << 20;
  gopts.worker_threads = 1;
  device::DeviceGroup group(gopts);

  const std::vector<DecomposeRequest> reqs = {
      {"k", 16, Compression::kBitPacked}, {"v", 12, Compression::kBitPacked}};
  auto sharded = DecomposeSharded(
      base, reqs, PartitionSpec{PartitionKind::kRadix, "k", 5}, &group);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_EQ(sharded->num_shards(), 5u);

  // Reference: the unpartitioned decomposition's spec per column.
  auto whole = BwdTable::Decompose(base, reqs, &group.device(0));
  ASSERT_TRUE(whole.ok());
  for (const char* name : {"k", "v"}) {
    const DecompositionSpec& want = whole->column(name).spec();
    for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
      const DecompositionSpec& got = sharded->shards[s].column(name).spec();
      EXPECT_EQ(got.prefix_base, want.prefix_base) << name << " shard " << s;
      EXPECT_EQ(got.value_bits, want.value_bits) << name << " shard " << s;
      EXPECT_EQ(got.residual_bits, want.residual_bits)
          << name << " shard " << s;
    }
  }

  // Round trip through the decomposed shards: ReconstructAll per shard,
  // scattered through global_rows, equals the base column.
  for (const char* name : {"k", "v"}) {
    std::vector<int64_t> rebuilt(n);
    for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
      const cs::Column all = sharded->shards[s].column(name).ReconstructAll();
      const cs::OidVec& rows = sharded->global_rows()[s];
      ASSERT_EQ(all.size(), rows.size());
      for (uint64_t i = 0; i < rows.size(); ++i) rebuilt[rows[i]] = all.Get(i);
    }
    for (uint64_t g = 0; g < n; ++g) {
      ASSERT_EQ(rebuilt[g], base.column(name).Get(g)) << name << " row " << g;
    }
  }
}

TEST(PartitionTest, BuildShardDatabasesReplicatesExtras) {
  cs::Table base = MakeTable({1, 2, 3, 4}, {5, 6, 7, 8});
  auto p = PartitionTable(base, PartitionSpec{PartitionKind::kRange, "k", 2});
  ASSERT_TRUE(p.ok());
  cs::Table dim("d");
  cs::Column c = cs::Column::FromI32({9, 10});
  c.ComputeStats();
  (void)dim.AddColumn("x", std::move(c));
  const std::vector<cs::Database> dbs = BuildShardDatabases(*p, {&dim});
  ASSERT_EQ(dbs.size(), 2u);
  uint64_t fact_rows = 0;
  for (const cs::Database& db : dbs) {
    ASSERT_TRUE(db.HasTable("f"));
    ASSERT_TRUE(db.HasTable("d"));
    EXPECT_EQ(db.table("d").num_rows(), 2u);
    fact_rows += db.table("f").num_rows();
  }
  EXPECT_EQ(fact_rows, base.num_rows());
}

}  // namespace
}  // namespace wastenot::bwd
