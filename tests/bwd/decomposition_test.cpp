#include "bwd/decomposition.h"

#include <gtest/gtest.h>

namespace wastenot::bwd {
namespace {

TEST(DecompositionTest, PlanBitPacked) {
  // Domain 0..100M (27 bits), 32-bit type, 24 device bits -> 8 residual.
  auto spec = DecompositionSpec::Plan(0, 100'000'000, 32, 24,
                                      Compression::kBitPacked);
  EXPECT_EQ(spec.residual_bits, 8u);
  EXPECT_EQ(spec.value_bits, 27u);
  EXPECT_EQ(spec.approximation_bits(), 19u);
  EXPECT_EQ(spec.prefix_base, 0);
  EXPECT_FALSE(spec.fully_resident());
  EXPECT_EQ(spec.error(), 255u);
}

TEST(DecompositionTest, PlanFullyResident) {
  auto spec =
      DecompositionSpec::Plan(0, 2525, 32, 32, Compression::kBitPacked);
  EXPECT_EQ(spec.residual_bits, 0u);
  EXPECT_EQ(spec.value_bits, 12u);
  EXPECT_TRUE(spec.fully_resident());
  EXPECT_EQ(spec.error(), 0u);
}

TEST(DecompositionTest, ResidualClampedToValueBits) {
  // 6-bit values with 24 requested device bits: the 8-bit residual request
  // exceeds the value width; clamp so the residual never exceeds the value.
  auto spec = DecompositionSpec::Plan(1, 50, 32, 24, Compression::kBitPacked);
  EXPECT_EQ(spec.value_bits, 6u);  // 50-1=49 -> 6 bits
  EXPECT_EQ(spec.residual_bits, 6u);
  EXPECT_EQ(spec.approximation_bits(), 0u);
}

TEST(DecompositionTest, NegativeDomainUsesBase) {
  // The spatial lon domain: -12.62427..29.64975 scaled by 1e5.
  auto spec = DecompositionSpec::Plan(-1262427, 2964975, 32, 24,
                                      Compression::kBitPacked);
  EXPECT_EQ(spec.prefix_base, -1262427);
  EXPECT_EQ(spec.value_bits, 23u);  // span 4227402 -> 23 bits
  EXPECT_EQ(spec.residual_bits, 8u);
}

TEST(DecompositionTest, BytePrefixRoundsToBytes) {
  // 23 significant bits round to 24 (3 bytes): the 25% volume reduction of
  // the paper's spatial experiment (4-byte values -> 3 bytes).
  auto spec = DecompositionSpec::Plan(-1262427, 2964975, 32, 32,
                                      Compression::kBytePrefix);
  EXPECT_EQ(spec.value_bits, 24u);
  EXPECT_EQ(spec.approximation_bits(), 24u);
}

TEST(DecompositionTest, DigitsRoundTrip) {
  auto spec =
      DecompositionSpec::Plan(-100, 1000, 32, 26, Compression::kBitPacked);
  for (int64_t v = -100; v <= 1000; v += 7) {
    const uint64_t a = spec.ApproxDigit(v);
    const uint64_t r = spec.ResidualDigit(v);
    EXPECT_EQ(spec.Reassemble(a, r), v);
    EXPECT_LE(spec.LowerBound(a), v);
    EXPECT_GE(spec.UpperBound(a), v);
    EXPECT_EQ(spec.UpperBound(a) - spec.LowerBound(a),
              static_cast<int64_t>(spec.error()));
  }
}

TEST(DecompositionTest, SingleValueDomain) {
  auto spec = DecompositionSpec::Plan(42, 42, 32, 32, Compression::kBitPacked);
  EXPECT_GE(spec.value_bits, 1u);
  EXPECT_EQ(spec.Reassemble(spec.ApproxDigit(42), spec.ResidualDigit(42)), 42);
}

TEST(DecompositionTest, KNoneRequiresNonNegative) {
  auto spec = DecompositionSpec::Plan(5, 1000, 32, 32, Compression::kNone);
  EXPECT_EQ(spec.prefix_base, 0);
  EXPECT_EQ(spec.value_bits, 10u);  // BitWidth(1000)
}

TEST(DecompositionTest, KNoneNegativeDomainFallsBackToRebase) {
  // Raw packing cannot hold negatives; Plan falls back to a FOR base so
  // digits stay well-defined.
  auto spec = DecompositionSpec::Plan(-100, 1000, 32, 32, Compression::kNone);
  EXPECT_EQ(spec.compression, Compression::kBitPacked);
  EXPECT_EQ(spec.prefix_base, -100);
  EXPECT_EQ(spec.Reassemble(spec.ApproxDigit(-100), spec.ResidualDigit(-100)),
            -100);
}

TEST(DecompositionTest, ToStringMentionsParts) {
  auto spec = DecompositionSpec::Plan(0, 255, 32, 28, Compression::kBitPacked);
  const std::string s = spec.ToString();
  EXPECT_NE(s.find("residual=4"), std::string::npos);
  EXPECT_NE(s.find("bit-packed"), std::string::npos);
}

}  // namespace
}  // namespace wastenot::bwd
