// SIMD == scalar bit-identity fuzz over the codec kernel tiers.
//
// Every ISA tier compiled into this binary (and supported by the running
// CPU) must agree bit-for-bit with the scalar reference for every kernel,
// width 0..64, block offset, non-multiple-of-64 tail and selection-fill
// mask — on buffers with *no slack word*, so any one-past-the-end read
// trips ASan where loads are instrumented and validates the masked-load
// fault-suppression contract where they are not. The public API is also
// pinned under both dispatch modes via SetPackedCodecScalarOnly.

#include "bwd/packed_codec.h"

#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bwd/packed_codec_kernels.h"
#include "util/random.h"

namespace wastenot::bwd {
namespace {

using internal::CodecKernels;

std::vector<const CodecKernels*> AvailableTiers() {
  std::vector<const CodecKernels*> tiers = {&internal::ScalarKernels()};
  if (const CodecKernels* k = internal::Avx2Kernels()) tiers.push_back(k);
  if (const CodecKernels* k = internal::Avx512Kernels()) tiers.push_back(k);
  return tiers;
}

/// `n` random `width`-bit values packed into a buffer of *exactly*
/// CeilDiv(n * width, 64) words — no slack word, so any kernel overread
/// is an out-of-bounds heap access.
struct ExactPacked {
  std::vector<uint64_t> words;
  std::vector<uint64_t> values;

  ExactPacked(uint32_t width, uint64_t n, uint64_t seed)
      : words(bits::CeilDiv(n * width, 64)), values(n) {
    Xoshiro256 rng(seed);
    const uint64_t mask = bits::LowMask(width);
    for (uint64_t i = 0; i < n; ++i) {
      values[i] = rng.Next() & mask;
      if (width > 0) {
        internal::PackedSet(words.data(), width, i, values[i]);
      }
    }
  }
};

TEST(PackedCodecSimdTest, ScalarTierIsAlwaysFirst) {
  const auto tiers = AvailableTiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_STREQ(tiers[0]->name, "scalar");
  for (const CodecKernels* t : tiers) {
    SCOPED_TRACE(t->name);
    for (uint32_t w = 0; w <= 64; ++w) {
      ASSERT_NE(t->unpack_block[w], nullptr);
      ASSERT_NE(t->match_block[w], nullptr);
      ASSERT_NE(t->gather32[w], nullptr);
      ASSERT_NE(t->gather64[w], nullptr);
    }
  }
}

TEST(PackedCodecSimdTest, UnpackBlockBitIdenticalOnExactBuffers) {
  for (const CodecKernels* tier : AvailableTiers()) {
    SCOPED_TRACE(tier->name);
    for (uint32_t width = 0; width <= 64; ++width) {
      const uint64_t n = 4 * kPackedBlockElems;  // last block ends the buffer
      ExactPacked ref(width, n, width * 7919 + 11);
      uint64_t out[kPackedBlockElems];
      for (uint64_t b = 0; b < n / kPackedBlockElems; ++b) {
        std::memset(out, 0xAA, sizeof(out));
        tier->unpack_block[width](ref.words.data() + b * width, out);
        for (uint64_t j = 0; j < kPackedBlockElems; ++j) {
          ASSERT_EQ(out[j], ref.values[b * kPackedBlockElems + j])
              << "width=" << width << " block=" << b << " j=" << j;
        }
      }
    }
  }
}

TEST(PackedCodecSimdTest, MatchBlockBitIdenticalIncludingWraparound) {
  for (const CodecKernels* tier : AvailableTiers()) {
    SCOPED_TRACE(tier->name);
    for (uint32_t width = 0; width <= 64; ++width) {
      const uint64_t n = 3 * kPackedBlockElems;
      ExactPacked ref(width, n, width * 131 + 7);
      Xoshiro256 rng(width * 977 + 3);
      const uint64_t mask = bits::LowMask(width);
      for (int iter = 0; iter < 8; ++iter) {
        uint64_t lo, span;
        switch (iter) {
          case 0: lo = 0; span = mask; break;            // everything
          case 1: lo = 0; span = 0; break;               // only zero
          case 2: lo = mask; span = 5; break;            // wraps the domain
          case 3: lo = rng.Next(); span = rng.Next(); break;  // arbitrary
          default:
            lo = rng.Next() & mask;
            span = rng.Next() & (mask >> 1);
            break;
        }
        for (uint64_t b = 0; b < n / kPackedBlockElems; ++b) {
          uint64_t expect = 0;
          for (uint64_t j = 0; j < kPackedBlockElems; ++j) {
            expect |= static_cast<uint64_t>(
                          ref.values[b * kPackedBlockElems + j] - lo <= span)
                      << j;
          }
          ASSERT_EQ(tier->match_block[width](ref.words.data() + b * width, lo,
                                             span),
                    expect)
              << "width=" << width << " block=" << b << " lo=" << lo
              << " span=" << span;
        }
      }
    }
  }
}

TEST(PackedCodecSimdTest, MatchPartialBitIdenticalOnExactTails) {
  for (const CodecKernels* tier : AvailableTiers()) {
    SCOPED_TRACE(tier->name);
    for (uint32_t width = 0; width <= 64; ++width) {
      // Tail lengths that end mid-word for most widths.
      for (uint32_t tail : {1u, 7u, 17u, 33u, 63u}) {
        const uint64_t n = kPackedBlockElems + tail;
        ExactPacked ref(width, n, width * 271 + tail);
        const uint64_t mask = bits::LowMask(width);
        const uint64_t lo = mask / 3;
        const uint64_t span = mask / 2;
        uint64_t expect = 0;
        for (uint32_t j = 0; j < tail; ++j) {
          expect |= static_cast<uint64_t>(
                        ref.values[kPackedBlockElems + j] - lo <= span)
                    << j;
        }
        ASSERT_EQ(tier->match_partial[width](ref.words.data() + width, tail,
                                             lo, span),
                  expect)
            << "width=" << width << " tail=" << tail;
      }
    }
  }
}

TEST(PackedCodecSimdTest, GatherBitIdenticalIncludingFinalElement) {
  for (const CodecKernels* tier : AvailableTiers()) {
    SCOPED_TRACE(tier->name);
    for (uint32_t width = 0; width <= 64; ++width) {
      // 301: a partial tail; the final element's word is the buffer's last.
      const uint64_t n = 301;
      ExactPacked ref(width, n, width * 613 + 1);
      Xoshiro256 rng(width * 31 + 5);
      // 69 ids: vector iterations plus a sub-vector-width scalar remainder.
      const uint64_t num_ids = 69;
      std::vector<uint32_t> ids32(num_ids);
      std::vector<uint64_t> ids64(num_ids);
      for (uint64_t i = 0; i < num_ids; ++i) {
        ids32[i] = static_cast<uint32_t>(rng.Below(n));
        ids64[i] = ids32[i];
      }
      ids32[0] = static_cast<uint32_t>(n - 1);  // exact-buffer edge
      ids64[0] = n - 1;
      ids32[num_ids - 1] = static_cast<uint32_t>(n - 1);  // edge in the tail
      ids64[num_ids - 1] = n - 1;

      std::vector<uint64_t> out32(num_ids), out64(num_ids);
      tier->gather32[width](ref.words.data(), ids32.data(), num_ids,
                            out32.data());
      tier->gather64[width](ref.words.data(), ids64.data(), num_ids,
                            out64.data());
      for (uint64_t i = 0; i < num_ids; ++i) {
        ASSERT_EQ(out32[i], ref.values[ids32[i]])
            << "width=" << width << " i=" << i;
        ASSERT_EQ(out64[i], out32[i]) << "width=" << width << " i=" << i;
      }
    }
  }
}

TEST(PackedCodecSimdTest, SelectionFillsBitIdenticalOnExactBuffers) {
  Xoshiro256 rng(20260808);
  std::vector<uint64_t> masks = {0,
                                 ~uint64_t{0},
                                 uint64_t{1},
                                 uint64_t{1} << 63,
                                 0x8000000000000001ULL,
                                 0x00FF00FF00FF00FFULL};
  for (int i = 0; i < 24; ++i) {
    masks.push_back(rng.Next() & rng.Next() & rng.Next());  // sparse
    masks.push_back(rng.Next() | rng.Next());               // dense
  }
  for (const CodecKernels* tier : AvailableTiers()) {
    SCOPED_TRACE(tier->name);
    for (const uint64_t mask : masks) {
      SCOPED_TRACE(mask);
      const uint32_t cnt = static_cast<uint32_t>(std::popcount(mask));
      // src sized to the highest set lane + 1 — lanes past it must never
      // be read; out sized to exactly popcount — never overwritten.
      const uint32_t src_n =
          mask == 0 ? 0 : 64 - static_cast<uint32_t>(std::countl_zero(mask));
      std::vector<uint32_t> src32(src_n);
      std::vector<uint64_t> src64(src_n);
      for (uint32_t j = 0; j < src_n; ++j) {
        src32[j] = static_cast<uint32_t>(rng.Next());
        src64[j] = rng.Next();
      }
      const uint32_t base = static_cast<uint32_t>(rng.Next() & 0xFFFFFF);

      std::vector<uint32_t> expanded(cnt), packed32(cnt);
      std::vector<uint64_t> packed64(cnt);
      EXPECT_EQ(tier->expand_mask(mask, base, expanded.data()), cnt);
      EXPECT_EQ(tier->compress32(mask, src32.data(), packed32.data()), cnt);
      EXPECT_EQ(tier->compress64(mask, src64.data(), packed64.data()), cnt);

      uint64_t m = mask;
      for (uint32_t k = 0; k < cnt; ++k) {
        const uint32_t j = static_cast<uint32_t>(std::countr_zero(m));
        m &= m - 1;
        ASSERT_EQ(expanded[k], base + j) << "k=" << k;
        ASSERT_EQ(packed32[k], src32[j]) << "k=" << k;
        ASSERT_EQ(packed64[k], src64[j]) << "k=" << k;
      }
    }
  }
}

TEST(PackedCodecSimdTest, PublicApiBitIdenticalUnderBothDispatchModes) {
  EXPECT_STREQ(internal::ResolveKernels(/*force_scalar=*/true).name,
               "scalar");
  const std::string best = internal::ResolveKernels(false).name;

  for (uint32_t width : {0u, 1u, 7u, 9u, 16u, 22u, 33u, 57u, 58u, 63u, 64u}) {
    const uint64_t n = 300;
    ExactPacked ref(width, n, width * 19 + 77);
    std::vector<uint32_t> ids = {0, 63, 64, 65, 199, 299, 299};

    SetPackedCodecScalarOnly(true);
    ASSERT_STREQ(PackedCodecIsa(), "scalar");
    std::vector<uint64_t> scalar_range(n - 65), scalar_gather(ids.size());
    UnpackRange(ref.words.data(), width, 65, n - 65, scalar_range.data());
    GatherPacked(ref.words.data(), width, ids.data(), ids.size(),
                 scalar_gather.data());
    const uint64_t scalar_match =
        MatchBlockPartial(ref.words.data(), width, n / 64, n % 64,
                          bits::LowMask(width) / 4, bits::LowMask(width) / 2);

    SetPackedCodecScalarOnly(false);
    ASSERT_STREQ(PackedCodecIsa(), best.c_str());
    std::vector<uint64_t> simd_range(n - 65), simd_gather(ids.size());
    UnpackRange(ref.words.data(), width, 65, n - 65, simd_range.data());
    GatherPacked(ref.words.data(), width, ids.data(), ids.size(),
                 simd_gather.data());
    const uint64_t simd_match =
        MatchBlockPartial(ref.words.data(), width, n / 64, n % 64,
                          bits::LowMask(width) / 4, bits::LowMask(width) / 2);

    EXPECT_EQ(simd_range, scalar_range) << "width=" << width;
    EXPECT_EQ(simd_gather, scalar_gather) << "width=" << width;
    EXPECT_EQ(simd_match, scalar_match) << "width=" << width;
  }
  SetPackedCodecScalarOnly(false);  // leave the process in its default mode
}

}  // namespace
}  // namespace wastenot::bwd
