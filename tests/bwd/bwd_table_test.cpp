#include "bwd/bwd_table.h"

#include <memory>

#include <gtest/gtest.h>

namespace wastenot::bwd {
namespace {

std::unique_ptr<device::Device> MakeDevice() {
  device::DeviceSpec spec;
  spec.memory_capacity = 16 << 20;
  return std::make_unique<device::Device>(spec, 2);
}

cs::Table MakeBase() {
  cs::Table t("r");
  cs::Column a = cs::Column::FromI32({100, 200, 300, 400});
  a.ComputeStats();
  cs::Column b = cs::Column::FromI32({7, 8, 9, 10});
  b.ComputeStats();
  (void)t.AddColumn("a", std::move(a));
  (void)t.AddColumn("b", std::move(b));
  t.AttachDictionary("b", cs::Dictionary::Build({"p", "q", "r", "s"}));
  return t;
}

TEST(BwdTableTest, DecomposeSelectedColumns) {
  auto dev = MakeDevice();
  cs::Table base = MakeBase();
  auto table = BwdTable::Decompose(base, {{"a", 24, Compression::kBitPacked}},
                                   dev.get());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_TRUE(table->HasColumn("a"));
  EXPECT_FALSE(table->HasColumn("b"));
  EXPECT_EQ(table->num_rows(), 4u);
  EXPECT_EQ(table->column("a").Reconstruct(2), 300);
  EXPECT_GT(table->device_bytes(), 0u);
}

TEST(BwdTableTest, UnknownColumnFails) {
  auto dev = MakeDevice();
  cs::Table base = MakeBase();
  auto table =
      BwdTable::Decompose(base, {{"zz", 24, Compression::kBitPacked}},
                          dev.get());
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kNotFound);
}

TEST(BwdTableTest, DictionaryPassthrough) {
  auto dev = MakeDevice();
  cs::Table base = MakeBase();
  auto table = BwdTable::Decompose(base, {{"b", 32, Compression::kBitPacked}},
                                   dev.get());
  ASSERT_TRUE(table.ok());
  ASSERT_NE(table->dictionary("b"), nullptr);
  EXPECT_EQ(table->dictionary("b")->Decode(0), "p");
  EXPECT_EQ(table->dictionary("a"), nullptr);
}

TEST(BwdTableTest, ColumnNamesSorted) {
  auto dev = MakeDevice();
  cs::Table base = MakeBase();
  auto table = BwdTable::Decompose(base,
                                   {{"b", 32, Compression::kBitPacked},
                                    {"a", 32, Compression::kBitPacked}},
                                   dev.get());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column_names(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace wastenot::bwd
