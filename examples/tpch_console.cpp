// TPC-H console: runs the paper's relational workload (Q1, Q6, Q14) on a
// generated dataset with both engines and prints the result tables,
// fixed-point scales applied — a miniature of the §VI-D evaluation.
//
//   $ WN_SCALE_TPCH=0.1 ./build/examples/tpch_console

#include <cstdio>
#include <memory>
#include <thread>

#include "bwd/bwd_table.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "util/env.h"
#include "util/timer.h"
#include "workloads/tpch.h"

using namespace wastenot;

namespace {

int RunQuery(core::QuerySpec q, const cs::Database& db,
             const bwd::BwdTable& fact, const bwd::BwdTable& dim,
             device::Device* dev) {
  if (q.join.has_value()) {
    Status st = workloads::ResolvePromoFilter(db, &q);
    if (!st.ok()) return 1;
  }
  std::printf("--- %s ---\n", q.name.c_str());

  core::ClassicOptions copts;
  copts.threads = std::thread::hardware_concurrency();
  WallTimer cpu_timer;
  auto classic = core::ExecuteClassic(q, db, copts);
  const double cpu_ms = cpu_timer.Millis();
  auto ar = core::ExecuteAr(q, fact, &dim, dev);
  if (!classic.ok() || !ar.ok()) {
    std::fprintf(stderr, "failed: %s / %s\n",
                 classic.status().ToString().c_str(),
                 ar.status().ToString().c_str());
    return 1;
  }

  std::printf("%s", classic->ToString(q.aggregates).c_str());
  std::printf("engines agree: %s | CPU %.1f ms | A&R %.3f ms "
              "(device %.3f + bus %.3f + host %.3f)\n\n",
              ar->result == *classic ? "yes" : "NO",
              cpu_ms, ar->breakdown.total() * 1e3,
              ar->breakdown.device_seconds * 1e3,
              ar->breakdown.bus_seconds * 1e3,
              ar->breakdown.host_seconds * 1e3);
  if (q.name == "TPC-H Q14") {
    std::printf("promo_revenue = %.4f %%\n\n",
                workloads::PromoRevenuePercent(
                    classic->agg_values[0][0], classic->agg_values[0][1]));
  }
  return ar->result == *classic ? 0 : 1;
}

}  // namespace

int main() {
  const double sf = EnvDouble("WN_SCALE_TPCH", 0.1);
  std::printf("generating TPC-H subset at SF=%.3g...\n", sf);
  cs::Database db;
  workloads::GenerateTpch(sf, 7, &db);
  std::printf("lineitem: %llu rows, part: %llu rows\n\n",
              static_cast<unsigned long long>(db.table("lineitem").num_rows()),
              static_cast<unsigned long long>(db.table("part").num_rows()));

  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto fact = bwd::BwdTable::Decompose(db.table("lineitem"),
                                       workloads::TpchAllResident(),
                                       dev.get());
  auto dim = bwd::BwdTable::Decompose(db.table("part"),
                                      workloads::TpchPartResident(),
                                      dev.get());
  if (!fact.ok() || !dim.ok()) {
    std::fprintf(stderr, "decompose failed\n");
    return 1;
  }

  int rc = 0;
  rc |= RunQuery(workloads::TpchQ1(), db, *fact, *dim, dev.get());
  rc |= RunQuery(workloads::TpchQ6(), db, *fact, *dim, dev.get());
  rc |= RunQuery(workloads::TpchQ14(), db, *fact, *dim, dev.get());
  return rc;
}
