// Engine comparison: the same query on the three execution strategies —
//   classic   (CPU-only bulk processing; the MonetDB baseline),
//   streaming (ship raw columns to the device on demand, LRU-cached;
//              the state-of-the-art GPU DBMS model of §VI-A),
//   A&R       (bitwise-distributed approximate & refine; the paper),
// at two device sizes: one where the hot set fits and one where it does
// not. The small device makes the streaming engine thrash (the Fig 9
// worst case) while A&R only needs the approximation bits resident.

#include <cstdio>
#include <memory>

#include "bwd/bwd_table.h"
#include "columnstore/database.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "core/streaming_engine.h"
#include "util/env.h"
#include "util/timer.h"
#include "workloads/uniform.h"

using namespace wastenot;

namespace {

int RunAtCapacity(const cs::Database& db, const core::QuerySpec& q,
                  uint64_t device_capacity, const char* label) {
  const uint64_t hot_bytes = db.table("m").column("a").byte_size() +
                             db.table("m").column("v").byte_size();
  std::printf("--- %s: device %.1f MB, hot set %.1f MB ---\n", label,
              device_capacity / 1e6, hot_bytes / 1e6);

  device::DeviceSpec spec = device::DeviceSpec::Gtx680();
  spec.memory_capacity = device_capacity;

  // Classic (single-threaded, pre-heated).
  auto classic = core::ExecuteClassic(q, db);
  WallTimer cpu_timer;
  classic = core::ExecuteClassic(q, db);
  const double cpu_ms = cpu_timer.Millis();
  if (!classic.ok()) return 1;
  std::printf("%-11s %10.3f ms\n", "classic", cpu_ms);

  // Streaming: three repetitions show warm-cache vs thrash behaviour.
  {
    auto dev = std::make_unique<device::Device>(spec, 2);
    device::ResidencyCache cache(dev.get());
    for (int run = 1; run <= 3; ++run) {
      auto exec = core::ExecuteStreaming(q, db, dev.get(), &cache);
      if (!exec.ok()) {
        std::printf("%-11s %10s    (%s)\n", "streaming", "-",
                    exec.status().ToString().c_str());
        break;
      }
      std::printf("%-11s %10.3f ms   run %d: %llu MB transferred, "
                  "%llu hits/%llu misses%s\n",
                  "streaming", exec->breakdown.total() * 1e3, run,
                  static_cast<unsigned long long>(exec->bytes_transferred >>
                                                  20),
                  static_cast<unsigned long long>(exec->cache_hits),
                  static_cast<unsigned long long>(exec->cache_misses),
                  exec->result == *classic ? "" : "  RESULT MISMATCH");
    }
  }

  // A&R: only the approximation bits must fit.
  {
    auto dev = std::make_unique<device::Device>(spec, 2);
    // Pick the most device bits that fit the capacity (minus headroom).
    for (uint32_t device_bits : {32u, 28u, 24u, 20u, 16u, 12u}) {
      auto fact = bwd::BwdTable::Decompose(
          db.table("m"),
          {{"a", device_bits, bwd::Compression::kBitPacked},
           {"v", device_bits, bwd::Compression::kBitPacked}},
          dev.get());
      if (!fact.ok()) continue;
      (void)core::ExecuteAr(q, *fact, nullptr, dev.get());  // JIT warm
      auto ar = core::ExecuteAr(q, *fact, nullptr, dev.get());
      if (!ar.ok()) return 1;
      std::printf("%-11s %10.3f ms   (%u device bits, %.1f MB resident, "
                  "candidates %llu -> %llu)%s\n\n",
                  "A&R", ar->breakdown.total() * 1e3, device_bits,
                  fact->device_bytes() / 1e6,
                  static_cast<unsigned long long>(ar->num_candidates),
                  static_cast<unsigned long long>(ar->num_refined),
                  ar->result == *classic ? "" : "  RESULT MISMATCH");
      return 0;
    }
    std::printf("%-11s device too small for any decomposition\n\n", "A&R");
  }
  return 0;
}

}  // namespace

int main() {
  const uint64_t n =
      static_cast<uint64_t>(EnvInt64("WN_SCALE_MICRO", 4'000'000));
  cs::Database db;
  cs::Table t("m");
  (void)t.AddColumn("a", workloads::UniqueShuffledInts(n, 1));
  (void)t.AddColumn("v", workloads::UniqueShuffledInts(n, 2));
  db.AddTable(std::move(t));

  core::QuerySpec q;
  q.table = "m";
  q.predicates = {{"a", cs::RangePred::Lt(static_cast<int64_t>(n / 20))}};
  q.aggregates = {core::Aggregate::SumOf("v", "sum_v"),
                  core::Aggregate::CountStar("n")};

  // Plenty of device memory: streaming warms up, A&R keeps all bits.
  int rc = RunAtCapacity(db, q, 2ull << 30, "hot set fits the device");
  // One column fits but not both: LRU streaming thrashes (the Fig 9 worst
  // case — every run re-transfers); A&R drops a few bits and stays
  // resident.
  rc |= RunAtCapacity(db, q, n * 5, "hot set exceeds the device (thrash)");
  // Not even one raw column fits: streaming is impossible; A&R still
  // answers exactly from coarse approximations plus host residuals.
  rc |= RunAtCapacity(db, q, n * 3, "raw columns cannot be placed at all");
  return rc;
}
