// Spatial analytics: the paper's motivating GPS workload (§VI-C).
// Generates a synthetic trace, decomposes coordinates per Table I, and
// answers range-count queries over several European cities — comparing
// the CPU-only engine with A&R co-processing and showing how the device
// capacity constrains the decomposition.

#include <cstdio>
#include <memory>
#include <thread>

#include "bwd/bwd_table.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "util/env.h"
#include "util/timer.h"
#include "workloads/spatial.h"

using namespace wastenot;

namespace {

struct City {
  const char* name;
  double lon, lat;
};
constexpr City kCities[] = {
    {"Calais (Table I box)", 2.6925, 50.4350},
    {"Amsterdam", 4.8952, 52.3702},
    {"Berlin", 13.4050, 52.5200},
    {"Paris", 2.3522, 48.8566},
    {"Nowhere (North Sea)", 3.0, 55.5},
};

}  // namespace

int main() {
  const uint64_t n =
      static_cast<uint64_t>(EnvInt64("WN_SCALE_SPATIAL", 5'000'000));
  std::printf("generating %llu GPS fixes...\n",
              static_cast<unsigned long long>(n));
  cs::Database db;
  db.AddTable(workloads::GenerateTrips(n, 2024));

  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto trips = bwd::BwdTable::Decompose(
      db.table("trips"),
      {{"lon", 24, bwd::Compression::kBitPacked},
       {"lat", 24, bwd::Compression::kBitPacked}},
      dev.get());
  if (!trips.ok()) {
    std::fprintf(stderr, "decompose: %s\n", trips.status().ToString().c_str());
    return 1;
  }
  std::printf("coordinates: %.1f MB raw -> %.1f MB device + %.1f MB host "
              "residual\n\n",
              (db.table("trips").column("lon").byte_size() +
               db.table("trips").column("lat").byte_size()) /
                  1e6,
              trips->device_bytes() / 1e6, trips->residual_bytes() / 1e6);

  core::ClassicOptions copts;
  copts.threads = std::thread::hardware_concurrency();

  std::printf("%-24s %12s %14s %14s %10s\n", "query box (0.02 deg)", "count",
              "CPU engine", "A&R engine", "match");
  for (const City& city : kCities) {
    core::QuerySpec q =
        workloads::SpatialRangeQueryAt(city.lon, city.lat, 0.02, 0.02);

    WallTimer cpu_timer;
    auto classic = core::ExecuteClassic(q, db, copts);
    const double cpu_ms = cpu_timer.Millis();
    auto ar = core::ExecuteAr(q, *trips, nullptr, dev.get());
    if (!classic.ok() || !ar.ok()) return 1;

    std::printf("%-24s %12lld %11.2f ms %11.3f ms %10s\n", city.name,
                static_cast<long long>(classic->agg_values[0][0]), cpu_ms,
                ar->breakdown.total() * 1e3,
                ar->result == *classic ? "yes" : "NO");
  }

  // The exact Table I query, with its approximate answer.
  std::printf("\nTable I query: select count(lon) from trips where lon "
              "between 2.68288 and 2.70228 and lat between 50.4222 and "
              "50.4485\n");
  auto ar = core::ExecuteAr(workloads::SpatialRangeQuery(), *trips, nullptr,
                            dev.get());
  if (!ar.ok()) return 1;
  std::printf("approximate count (before refinement): %s\n",
              ar->approx.agg_bounds[0][0].ToString().c_str());
  std::printf("exact count (after refinement):        %lld\n",
              static_cast<long long>(ar->result.agg_values[0][0]));
  std::printf("candidates %llu -> refined %llu (false positives removed by "
              "Algorithm 2)\n",
              static_cast<unsigned long long>(ar->num_candidates),
              static_cast<unsigned long long>(ar->num_refined));
  return 0;
}
