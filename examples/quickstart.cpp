// Quickstart: decompose a column, run one query with both engines, and
// inspect the approximate answer and the A&R plan.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API surface in ~80 lines:
//   1. build a Table (the host-side column store),
//   2. bitwise-decompose columns onto a simulated GPU (BwdTable),
//   3. describe a query (QuerySpec),
//   4. execute with the classic CPU engine and the A&R engine,
//   5. read the error-bounded approximate answer and the device breakdown.

#include <cstdio>
#include <memory>

#include "bwd/bwd_table.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "workloads/uniform.h"

using namespace wastenot;

int main() {
  // 1. A host table with one million unique shuffled integers and a value
  //    column to aggregate.
  cs::Database db;
  cs::Table t("readings");
  (void)t.AddColumn("sensor", workloads::UniqueShuffledInts(1'000'000, 1));
  (void)t.AddColumn("value", workloads::UniqueShuffledInts(1'000'000, 2));
  db.AddTable(std::move(t));

  // 2. A simulated GTX 680 (2 GB, PCI-E at the paper's measured 3.95 GB/s)
  //    and a bitwise decomposition: keep the top 24 bits of each value on
  //    the device, the low 8 bits as a CPU residual.
  auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
  auto decomposed = bwd::BwdTable::Decompose(
      db.table("readings"),
      {{"sensor", 24, bwd::Compression::kBitPacked},
       {"value", 24, bwd::Compression::kBitPacked}},
      dev.get());
  if (!decomposed.ok()) {
    std::fprintf(stderr, "decompose: %s\n",
                 decomposed.status().ToString().c_str());
    return 1;
  }
  std::printf("device holds %.1f KB approximations; host holds %.1f KB "
              "residuals\n\n",
              decomposed->device_bytes() / 1e3,
              decomposed->residual_bytes() / 1e3);

  // 3. SELECT sum(value), count(*) FROM readings WHERE sensor < 50000.
  core::QuerySpec q;
  q.name = "quickstart";
  q.table = "readings";
  q.predicates = {{"sensor", cs::RangePred::Lt(50'000)}};
  q.aggregates = {core::Aggregate::SumOf("value", "sum_value"),
                  core::Aggregate::CountStar("n")};

  // 4. Both engines.
  auto classic = core::ExecuteClassic(q, db);
  auto ar = core::ExecuteAr(q, *decomposed, nullptr, dev.get());
  if (!classic.ok() || !ar.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }

  // 5. Results.
  std::printf("classic engine : sum=%lld count=%lld\n",
              static_cast<long long>(classic->agg_values[0][0]),
              static_cast<long long>(classic->agg_values[0][1]));
  std::printf("A&R engine     : sum=%lld count=%lld  (match: %s)\n\n",
              static_cast<long long>(ar->result.agg_values[0][0]),
              static_cast<long long>(ar->result.agg_values[0][1]),
              ar->result == *classic ? "yes" : "no");

  std::printf("approximate answer, available before refinement started:\n%s\n",
              ar->approx.ToString(q.group_by, q.aggregates).c_str());
  std::printf("phase breakdown: device %.3f ms, bus %.3f ms, host %.3f ms\n\n",
              ar->breakdown.device_seconds * 1e3,
              ar->breakdown.bus_seconds * 1e3,
              ar->breakdown.host_seconds * 1e3);
  std::printf("physical A&R plan:\n%s", ar->plan_text.c_str());
  return 0;
}
