// Approximate answers: the paper's "fast computation of an approximate
// query answer without wasting resources" (§III, advantage 4) plus the
// standalone A&R operators — min/max with error-bound propagation (Fig 6)
// and an approximate theta join.
//
// Shows how the error bounds narrow as more bits are kept on the device,
// while the exact refinement stays identical.

#include <cstdio>
#include <memory>

#include "bwd/bwd_table.h"
#include "columnstore/database.h"
#include "core/aggregate.h"
#include "core/ar_engine.h"
#include "core/select.h"
#include "core/theta_join.h"
#include "workloads/uniform.h"

using namespace wastenot;

int main() {
  const uint64_t n = 2'000'000;
  cs::Database db;
  cs::Table t("m");
  (void)t.AddColumn("x", workloads::UniqueShuffledInts(n, 3));
  (void)t.AddColumn("y", workloads::UniqueShuffledInts(n, 4));
  db.AddTable(std::move(t));

  core::QuerySpec q;
  q.name = "bounded sum";
  q.table = "m";
  q.predicates = {{"x", cs::RangePred::Lt(static_cast<int64_t>(n / 10))}};
  q.aggregates = {core::Aggregate::SumOf("y", "sum_y"),
                  core::Aggregate::CountStar("n")};

  std::printf("SELECT sum(y), count(*) FROM m WHERE x < %llu\n\n",
              static_cast<unsigned long long>(n / 10));
  std::printf("%-14s %28s %28s %10s\n", "device bits",
              "approximate sum [lo, hi]", "approximate count [lo, hi]",
              "exact sum");

  // Sweep the decomposition: more device bits -> tighter bounds.
  for (uint32_t device_bits : {12u, 16u, 20u, 24u, 28u, 32u}) {
    auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
    auto fact = bwd::BwdTable::Decompose(
        db.table("m"),
        {{"x", device_bits, bwd::Compression::kBitPacked},
         {"y", device_bits, bwd::Compression::kBitPacked}},
        dev.get());
    if (!fact.ok()) return 1;
    auto ar = core::ExecuteAr(q, *fact, nullptr, dev.get());
    if (!ar.ok()) return 1;
    std::printf("%-14u %28s %28s %10lld\n", device_bits,
                ar->approx.agg_bounds[0][0].ToString().c_str(),
                ar->approx.agg_bounds[0][1].ToString().c_str(),
                static_cast<long long>(ar->result.agg_values[0][0]));
  }

  // --- the Fig 6 min/max machinery, standalone ----------------------------
  std::printf("\nmin(y) where x in [100000, 140000], 8 residual bits:\n");
  {
    auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
    auto fact = bwd::BwdTable::Decompose(
        db.table("m"),
        {{"x", 24, bwd::Compression::kBitPacked},
         {"y", 24, bwd::Compression::kBitPacked}},
        dev.get());
    if (!fact.ok()) return 1;
    const cs::RangePred pred = cs::RangePred::Between(100'000, 140'000);
    core::ApproxSelection sel =
        core::SelectApproximate(fact->column("x"), pred, dev.get());
    core::ExtremumCandidates mn = core::MinApproximate(
        fact->column("y"), sel.cands, sel.certain, dev.get());
    std::printf("  candidates=%llu, extremum survivors=%llu, bounds=%s\n",
                static_cast<unsigned long long>(sel.cands.size()),
                static_cast<unsigned long long>(mn.survivors.size()),
                mn.bounds.ToString().c_str());
    core::PredicateRefinement conj{&fact->column("x"), pred, &sel.values};
    core::RefinedSelection refined =
        core::SelectRefine(sel.cands, std::span(&conj, 1));
    auto exact = core::MinRefine(fact->column("y"), mn, refined.ids);
    if (exact.ok() && exact->has_value()) {
      std::printf("  exact min after refinement: %lld\n",
                  static_cast<long long>(**exact));
    }
  }

  // --- approximate theta join ----------------------------------------------
  std::printf("\nband join |a - b| <= 2 on two 3000-row columns "
              "(device nested loop, §IV-D):\n");
  {
    auto dev = std::make_unique<device::Device>(device::DeviceSpec::Gtx680());
    cs::Column a = workloads::UniqueShuffledInts(3000, 7);
    cs::Column b = workloads::UniqueShuffledInts(3000, 8);
    auto da = bwd::BwdColumn::Decompose(a, 28, dev.get());
    auto db2 = bwd::BwdColumn::Decompose(b, 28, dev.get());
    if (!da.ok() || !db2.ok()) return 1;
    core::PairCandidates cands = core::ThetaJoinApproximate(
        *da, *db2, core::ThetaOp::kBandWithin, 2, dev.get());
    core::JoinedPairs exact = core::ThetaJoinRefine(
        *da, *db2, core::ThetaOp::kBandWithin, 2, cands);
    std::printf("  candidate pairs=%llu (certain=%llu) -> exact pairs=%llu\n",
                static_cast<unsigned long long>(cands.size()),
                static_cast<unsigned long long>(cands.num_certain),
                static_cast<unsigned long long>(exact.size()));
  }
  return 0;
}
