// The spatial range query benchmark (paper §VI-C, Table I).
//
// The paper's dataset — ~250 M GPS fixes from users' navigation devices,
// generated with the synthetic-trace generator of Bösche et al. [19] — is
// proprietary; this module substitutes a synthetic trip generator that
// preserves the properties the experiment depends on (see DESIGN.md §2):
//
//   * the coordinate bounding box (lat 27.09371..70.13643,
//     lon -12.62427..29.64975), which fixes the bit widths,
//   * decimal(8,5)/decimal(7,5) fixed-point encoding (scale 1e5),
//   * trip-correlated fixes (random-walk trips around hotspot cities),
//   * a city-scale query box with realistic (tiny) selectivity, with one
//     hotspot guaranteeing non-empty results.
//
// Schema (Table I): trips(tripid int, lon decimal(8,5), lat decimal(7,5),
// time int). Query: select count(lon) from trips where lon between
// 2.68288 and 2.70228 and lat between 50.4222 and 50.4485.

#ifndef WASTENOT_WORKLOADS_SPATIAL_H_
#define WASTENOT_WORKLOADS_SPATIAL_H_

#include <cstdint>

#include "columnstore/database.h"
#include "core/query.h"

namespace wastenot::workloads {

/// Fixed-point scale of lon/lat (decimal(_,5)).
inline constexpr int64_t kCoordScale = 100000;

/// Paper bounding box, scaled.
inline constexpr int64_t kLatMin = 2709371;   // 27.09371
inline constexpr int64_t kLatMax = 7013643;   // 70.13643
inline constexpr int64_t kLonMin = -1262427;  // -12.62427
inline constexpr int64_t kLonMax = 2964975;   // 29.64975

/// Generates the trips table with ~`num_fixes` rows.
cs::Table GenerateTrips(uint64_t num_fixes, uint64_t seed);

/// The Table I query (fixed-point bounds).
core::QuerySpec SpatialRangeQuery();

/// A query box around an arbitrary hotspot, for parameterized sweeps.
core::QuerySpec SpatialRangeQueryAt(double lon_center, double lat_center,
                                    double lon_width, double lat_width);

}  // namespace wastenot::workloads

#endif  // WASTENOT_WORKLOADS_SPATIAL_H_
