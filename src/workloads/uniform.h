// The microbenchmark dataset of paper §VI-B: unique, randomly shuffled
// integers with value range equal to the row count ("100 million unique,
// randomly shuffled integers (value range 0 to 100 million)"), scaled by
// an environment variable so the same binaries run as smoke tests or at
// paper scale.

#ifndef WASTENOT_WORKLOADS_UNIFORM_H_
#define WASTENOT_WORKLOADS_UNIFORM_H_

#include <cstdint>

#include "columnstore/column.h"

namespace wastenot::workloads {

/// `n` unique values 0..n-1, Fisher-Yates shuffled with `seed`.
cs::Column UniqueShuffledInts(uint64_t n, uint64_t seed);

/// A column with exactly `num_distinct` distinct values (0..num_distinct-1)
/// uniformly distributed over `n` rows — the grouping microbenchmark input
/// (Fig 8f sweeps the number of groups).
cs::Column UniformGroupKeys(uint64_t n, uint64_t num_distinct, uint64_t seed);

/// Selectivity helper: the predicate value <= x selecting ~`fraction` of a
/// UniqueShuffledInts(n) column.
int64_t ThresholdForSelectivity(uint64_t n, double fraction);

}  // namespace wastenot::workloads

#endif  // WASTENOT_WORKLOADS_UNIFORM_H_
