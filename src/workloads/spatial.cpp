#include "workloads/spatial.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"
#include "util/thread_pool.h"

namespace wastenot::workloads {

namespace {

/// Hotspot cities trips start from (lon, lat, weight). The first entry is
/// the Table I query region (around Calais, 2.69 E / 50.43 N) so the
/// benchmark query always has matches.
struct Hotspot {
  double lon;
  double lat;
  double weight;
  double spread;  ///< city extent in degrees (uniform box around center)
};
constexpr Hotspot kHotspots[] = {
    // The Table I query region (a small town): tight spread so the
    // city-scale query box is populated at every generation scale.
    {2.6925, 50.4350, 0.05, 0.08},
    {4.8952, 52.3702, 0.20, 0.4},   // Amsterdam
    {13.4050, 52.5200, 0.15, 0.4},  // Berlin
    {2.3522, 48.8566, 0.20, 0.4},   // Paris
    {-3.7038, 40.4168, 0.10, 0.4},  // Madrid
    {12.4964, 41.9028, 0.10, 0.4},  // Rome
    {18.0686, 59.3293, 0.05, 0.4},  // Stockholm
    {21.0122, 52.2297, 0.05, 0.4},  // Warsaw
    {-0.1278, 51.5074, 0.10, 0.4},  // London
};

int64_t ClampScaled(double degrees, int64_t lo, int64_t hi) {
  const int64_t scaled =
      static_cast<int64_t>(std::llround(degrees * kCoordScale));
  return std::clamp(scaled, lo, hi);
}

}  // namespace

cs::Table GenerateTrips(uint64_t num_fixes, uint64_t seed) {
  std::vector<int32_t> tripid(num_fixes), lon(num_fixes), lat(num_fixes),
      time(num_fixes);

  const uint64_t kFixesPerTrip = 64;  // one fix every few seconds
  const uint64_t num_trips = std::max<uint64_t>(1, num_fixes / kFixesPerTrip);

  ParallelFor(num_trips, [&](uint64_t tb, uint64_t te) {
    for (uint64_t t = tb; t < te; ++t) {
      Xoshiro256 rng(seed ^ Mix64(t));
      // Pick a hotspot by weight.
      double pick = rng.NextDouble();
      const Hotspot* spot = &kHotspots[0];
      for (const auto& h : kHotspots) {
        spot = &h;
        pick -= h.weight;
        if (pick <= 0) break;
      }
      // Start within the hotspot city's extent.
      double cur_lon = spot->lon + (rng.NextDouble() - 0.5) * spot->spread;
      double cur_lat = spot->lat + (rng.NextDouble() - 0.5) * spot->spread;
      int32_t cur_time = static_cast<int32_t>(rng.Below(86400 * 365));
      // Random-walk the trip: correlated fixes, ~30 m steps.
      const uint64_t begin = t * kFixesPerTrip;
      const uint64_t end = std::min(num_fixes, begin + kFixesPerTrip);
      double heading = rng.NextDouble() * 2 * M_PI;
      for (uint64_t i = begin; i < end; ++i) {
        tripid[i] = static_cast<int32_t>(t);
        lon[i] = static_cast<int32_t>(
            ClampScaled(cur_lon, kLonMin, kLonMax));
        lat[i] = static_cast<int32_t>(
            ClampScaled(cur_lat, kLatMin, kLatMax));
        time[i] = cur_time;
        heading += (rng.NextDouble() - 0.5) * 0.6;  // gentle turns
        cur_lon += std::cos(heading) * 0.0004;
        cur_lat += std::sin(heading) * 0.0003;
        cur_time += static_cast<int32_t>(3 + rng.Below(10));
      }
    }
  });
  // Tail rows beyond the last full trip (num_trips*kFixesPerTrip may be
  // short of num_fixes): fill from the first hotspot region.
  {
    Xoshiro256 rng(seed ^ 0xdeadbeefULL);
    int32_t tail_time = 0;
    for (uint64_t i = num_trips * kFixesPerTrip; i < num_fixes; ++i) {
      // Single-fix trips: distinct ids keep per-trip invariants (e.g. time
      // monotonicity) trivially true for the tail.
      tripid[i] = static_cast<int32_t>(num_trips + (i % kFixesPerTrip));
      lon[i] = static_cast<int32_t>(ClampScaled(
          kHotspots[1].lon + (rng.NextDouble() - 0.5) * 0.4, kLonMin, kLonMax));
      lat[i] = static_cast<int32_t>(ClampScaled(
          kHotspots[1].lat + (rng.NextDouble() - 0.5) * 0.4, kLatMin, kLatMax));
      tail_time += static_cast<int32_t>(1 + rng.Below(100));
      time[i] = tail_time;
    }
  }

  cs::Table table("trips");
  auto add = [&table](const char* name, std::vector<int32_t>& v) {
    cs::Column col = cs::Column::FromI32(v);
    col.ComputeStats();
    Status st = table.AddColumn(name, std::move(col));
    (void)st;
  };
  add("tripid", tripid);
  add("lon", lon);
  add("lat", lat);
  add("time", time);
  return table;
}

core::QuerySpec SpatialRangeQuery() {
  core::QuerySpec q;
  q.name = "spatial range count (Table I)";
  q.table = "trips";
  q.predicates = {
      {"lon", cs::RangePred::Between(268288, 270228)},   // 2.68288..2.70228
      {"lat", cs::RangePred::Between(5042220, 5044850)}, // 50.4222..50.4485
  };
  q.aggregates = {core::Aggregate::CountStar("count(lon)")};
  return q;
}

core::QuerySpec SpatialRangeQueryAt(double lon_center, double lat_center,
                                    double lon_width, double lat_width) {
  core::QuerySpec q;
  q.name = "spatial range count";
  q.table = "trips";
  auto scaled = [](double d) {
    return static_cast<int64_t>(std::llround(d * kCoordScale));
  };
  q.predicates = {
      {"lon", cs::RangePred::Between(scaled(lon_center - lon_width / 2),
                                     scaled(lon_center + lon_width / 2))},
      {"lat", cs::RangePred::Between(scaled(lat_center - lat_width / 2),
                                     scaled(lat_center + lat_width / 2))},
  };
  q.aggregates = {core::Aggregate::CountStar("count(lon)")};
  return q;
}

}  // namespace wastenot::workloads
