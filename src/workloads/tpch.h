// A from-scratch dbgen subset for the TPC-H experiments (paper §VI-D).
//
// Generates `lineitem` and `part` with the columns and value distributions
// Q1, Q6 and Q14 touch, following the TPC-H specification:
//   l_quantity      1..50                     (50 values / 6 bits — paper)
//   l_discount      0.00..0.10 step 0.01      (11 values / 4 bits)
//   l_tax           0.00..0.08 step 0.01      (9 values / 4 bits)
//   l_shipdate      orderdate + 1..121 days   (2526 values / 12 bits)
//   l_extendedprice quantity * retail price   (cents, fixed point)
//   l_returnflag    R/A before, N after the 1995-06-17 receipt cutoff
//   l_linestatus    F shipped before, O after the cutoff
//   l_partkey       uniform FK into part
//   p_type          6x5x5 syllable strings, ordered-dictionary coded; the
//                   Q14 'PROMO%' prefix predicate becomes a code range
//                   (paper §VI-D1)
//   p_retailprice   spec formula 4.2.3, cents
//
// All decimals are fixed-point integers (cents / hundredths); dates are
// day numbers since 1992-01-01. Both engines compute in this integer
// space, so their results are exactly comparable.

#ifndef WASTENOT_WORKLOADS_TPCH_H_
#define WASTENOT_WORKLOADS_TPCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bwd/bwd_table.h"
#include "columnstore/database.h"
#include "core/plan.h"
#include "core/query.h"

namespace wastenot::workloads {

/// Days since 1992-01-01 for a YYYY-MM-DD date (proleptic Gregorian).
int64_t DateToDays(int year, int month, int day);

/// Rows per scale factor (spec: SF * 6M lineitems, SF * 200k parts,
/// SF * 150k customers; orders = lineitems / 4).
inline constexpr uint64_t kLineitemPerSf = 6'000'000;
inline constexpr uint64_t kPartPerSf = 200'000;
inline constexpr uint64_t kCustomerPerSf = 150'000;

/// Generates `lineitem`, `part`, `orders` and `customer` into `db` at
/// scale factor `sf` (fractional SFs supported for smoke tests). Returns
/// the part count (fk domain). l_orderkey is a dense FK into orders
/// (4 lines per order, keys start at 1), o_custkey a uniform FK into
/// customer; the new tables draw from their own seed streams, so the
/// lineitem/part value sequences are unchanged from earlier versions.
uint64_t GenerateTpch(double sf, uint64_t seed, cs::Database* db);

/// Query builders (fixed-point constants per the spec).
core::QuerySpec TpchQ1();
core::QuerySpec TpchQ6();
core::QuerySpec TpchQ14();

/// Multi-join physical plans (no single-join QuerySpec lowering exists for
/// these — they exercise the general plan executors in every engine).
/// Q3: shipping-priority revenue — lineitem ⋈ orders ⋈ customer, filters on
/// all three hops, grouped by (l_orderkey, o_orderdate, o_shippriority).
core::PhysicalPlan TpchQ3();
/// Q10: returned-item revenue — same join spine, grouped by
/// (o_custkey, c_nationkey) with a revenue sum and a line count.
core::PhysicalPlan TpchQ10();

/// Q6 with the shipdate year rotated by `variant` (1993..1997) — the
/// selectivity-varied per-iteration query of the throughput experiments
/// (§VI-E), so concurrent streams do not trivially share branch patterns.
core::QuerySpec TpchQ6YearVariant(uint64_t variant);

/// Decomposition configurations of §VI-D1.
/// Everything bit-packed and fully device-resident (the "A & R" bars).
std::vector<bwd::DecomposeRequest> TpchAllResident();
/// The space-constrained variant: l_shipdate decomposed 24-bit-device /
/// 8-bit-CPU (the "A & R Space Constraint" bars).
std::vector<bwd::DecomposeRequest> TpchSpaceConstrained();
/// Part-side columns (always resident: p_type is 150 values / 8 bits).
std::vector<bwd::DecomposeRequest> TpchPartResident();
/// Fact-side addition for the multi-join plans: l_orderkey, fully resident
/// (the A&R join-key invariant). Separate from TpchAllResident so the
/// single-join experiments keep their device footprint.
std::vector<bwd::DecomposeRequest> TpchMultiJoinResident();
/// Orders-side columns for Q3/Q10 (all fully resident).
std::vector<bwd::DecomposeRequest> TpchOrdersResident();
/// Customer-side columns for Q3/Q10 (all fully resident).
std::vector<bwd::DecomposeRequest> TpchCustomerResident();

/// Resolves Q14's 'PROMO%' prefix predicate against the part table's
/// ordered p_type dictionary (must be called after GenerateTpch).
Status ResolvePromoFilter(const cs::Database& db, core::QuerySpec* q14);

/// Renders a Q14-style promo revenue percentage from the two Q14 sums.
double PromoRevenuePercent(int64_t promo_sum, int64_t total_sum);

}  // namespace wastenot::workloads

#endif  // WASTENOT_WORKLOADS_TPCH_H_
