#include "workloads/uniform.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/random.h"

namespace wastenot::workloads {

cs::Column UniqueShuffledInts(uint64_t n, uint64_t seed) {
  std::vector<int32_t> values(n);
  std::iota(values.begin(), values.end(), 0);
  Shuffle(values, seed);
  cs::Column col = cs::Column::FromI32(values);
  col.ComputeStats();
  return col;
}

cs::Column UniformGroupKeys(uint64_t n, uint64_t num_distinct, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<int32_t> values(n);
  for (auto& v : values) {
    v = static_cast<int32_t>(rng.Below(num_distinct));
  }
  cs::Column col = cs::Column::FromI32(values);
  col.ComputeStats();
  return col;
}

int64_t ThresholdForSelectivity(uint64_t n, double fraction) {
  return static_cast<int64_t>(static_cast<double>(n) * fraction);
}

}  // namespace wastenot::workloads
