#include "workloads/tpch.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "util/thread_pool.h"

namespace wastenot::workloads {

namespace {

/// Howard Hinnant's days-from-civil algorithm (proleptic Gregorian).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153 * (static_cast<unsigned>(m) + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int64_t>(doe) - 719468LL;
}

const int64_t kEpoch = DaysFromCivil(1992, 1, 1);

// p_type syllables (spec 4.2.2.13): 6 x 5 x 5 = 150 distinct strings.
const char* kTypes1[] = {"ECONOMY", "LARGE",    "MEDIUM",
                         "PROMO",   "SMALL",    "STANDARD"};
const char* kTypes2[] = {"ANODIZED", "BRUSHED", "BURNISHED", "PLATED",
                         "POLISHED"};
const char* kTypes3[] = {"BRASS", "COPPER", "NICKEL", "STEEL", "TIN"};

/// p_retailprice in cents (spec 4.2.3).
int64_t RetailPriceCents(uint64_t partkey) {
  return 90000 + (partkey / 10) % 20001 + 100 * (partkey % 1000);
}

const int64_t kReceiptCutoff = DateToDays(1995, 6, 17);

// c_mktsegment values (spec 4.2.2.13), pre-sorted so dictionary codes are
// positional: AUTOMOBILE=0, BUILDING=1, FURNITURE=2, HOUSEHOLD=3,
// MACHINERY=4 (TpchQ3 relies on BUILDING=1 the same way the generator
// relies on the A/N/R returnflag codes).
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};

/// Lines per order: dbgen draws 1..7, fixed at 4 here so l_orderkey is a
/// pure function of the row id (no draw — the lineitem RNG sequence
/// predates orders and must not move).
constexpr uint64_t kLinesPerOrder = 4;

}  // namespace

int64_t DateToDays(int year, int month, int day) {
  return DaysFromCivil(year, month, day) - kEpoch;
}

uint64_t GenerateTpch(double sf, uint64_t seed, cs::Database* db) {
  const uint64_t num_parts = std::max<uint64_t>(
      64, static_cast<uint64_t>(static_cast<double>(kPartPerSf) * sf));
  const uint64_t num_lines = std::max<uint64_t>(
      256, static_cast<uint64_t>(static_cast<double>(kLineitemPerSf) * sf));

  // ---- part ---------------------------------------------------------------
  {
    std::vector<std::string> type_strings;
    for (const char* t1 : kTypes1) {
      for (const char* t2 : kTypes2) {
        for (const char* t3 : kTypes3) {
          type_strings.push_back(std::string(t1) + " " + t2 + " " + t3);
        }
      }
    }
    cs::Dictionary dict = cs::Dictionary::Build(type_strings);

    std::vector<int32_t> type_code(num_parts);
    std::vector<int32_t> retail(num_parts);
    Xoshiro256 rng(seed ^ 0x7061727473ULL);  // "parts"
    for (uint64_t pk = 0; pk < num_parts; ++pk) {
      const std::string t =
          std::string(kTypes1[rng.Below(6)]) + " " + kTypes2[rng.Below(5)] +
          " " + kTypes3[rng.Below(5)];
      type_code[pk] = dict.CodeOf(t);
      retail[pk] = static_cast<int32_t>(RetailPriceCents(pk + 1));
    }

    cs::Table part("part");
    cs::Column type_col = cs::Column::FromI32(type_code);
    type_col.ComputeStats();
    cs::Column retail_col = cs::Column::FromI32(retail);
    retail_col.ComputeStats();
    (void)part.AddColumn("p_type", std::move(type_col));
    (void)part.AddColumn("p_retailprice", std::move(retail_col));
    part.AttachDictionary("p_type", std::move(dict));
    (void)db->AddTable(std::move(part));
  }

  const uint64_t num_orders = (num_lines + kLinesPerOrder - 1) / kLinesPerOrder;
  const uint64_t num_customers = std::max<uint64_t>(
      32, static_cast<uint64_t>(150'000.0 * sf));

  // ---- lineitem -------------------------------------------------------------
  {
    std::vector<int32_t> orderkey(num_lines), partkey(num_lines),
        quantity(num_lines), extendedprice(num_lines), discount(num_lines),
        tax(num_lines), shipdate(num_lines), returnflag(num_lines),
        linestatus(num_lines);

    const int64_t order_lo = DateToDays(1992, 1, 1);
    const int64_t order_hi = DateToDays(1998, 8, 2);  // ENDDATE - 151 days

    ParallelFor(num_lines, [&](uint64_t begin, uint64_t end) {
      Xoshiro256 rng(seed ^ Mix64(begin));
      for (uint64_t i = begin; i < end; ++i) {
        orderkey[i] = static_cast<int32_t>(i / kLinesPerOrder + 1);
        const uint64_t pk = 1 + rng.Below(num_parts);
        const int64_t qty = 1 + static_cast<int64_t>(rng.Below(50));
        partkey[i] = static_cast<int32_t>(pk);
        quantity[i] = static_cast<int32_t>(qty);
        // Cents; max 50 * 209,900 = 10,495,000 fits int32 comfortably.
        extendedprice[i] = static_cast<int32_t>(qty * RetailPriceCents(pk));
        discount[i] = static_cast<int32_t>(rng.Below(11));  // 0.00..0.10
        tax[i] = static_cast<int32_t>(rng.Below(9));        // 0.00..0.08
        const int64_t orderdate =
            order_lo + static_cast<int64_t>(
                           rng.Below(static_cast<uint64_t>(order_hi - order_lo)));
        const int64_t ship = orderdate + 1 + static_cast<int64_t>(rng.Below(121));
        shipdate[i] = static_cast<int32_t>(ship);
        const int64_t receipt = ship + 1 + static_cast<int64_t>(rng.Below(30));
        // dbgen: R/A for old receipts, N otherwise; O/F on the ship side.
        if (receipt <= kReceiptCutoff) {
          returnflag[i] = rng.Below(2) == 0 ? 0 /*A*/ : 2 /*R*/;
        } else {
          returnflag[i] = 1 /*N*/;
        }
        linestatus[i] = ship > kReceiptCutoff ? 1 /*O*/ : 0 /*F*/;
      }
    });

    cs::Table lineitem("lineitem");
    auto add = [&lineitem](const char* name, std::vector<int32_t>& v) {
      cs::Column col = cs::Column::FromI32(v);
      col.ComputeStats();
      (void)lineitem.AddColumn(name, std::move(col));
    };
    add("l_orderkey", orderkey);
    add("l_partkey", partkey);
    add("l_quantity", quantity);
    add("l_extendedprice", extendedprice);
    add("l_discount", discount);
    add("l_tax", tax);
    add("l_shipdate", shipdate);
    add("l_returnflag", returnflag);
    add("l_linestatus", linestatus);
    lineitem.AttachDictionary(
        "l_returnflag", cs::Dictionary::Build({"A", "N", "R"}));
    lineitem.AttachDictionary("l_linestatus", cs::Dictionary::Build({"F", "O"}));
    (void)db->AddTable(std::move(lineitem));
  }

  // ---- orders ---------------------------------------------------------------
  // A fresh seed stream: the lineitem and part draw sequences above are
  // pinned by tests and must not move when tables are added. o_orderdate is
  // drawn independently of the lineitem dates (the plans never correlate
  // the two, only join on the key).
  {
    std::vector<int32_t> orderdate(num_orders), custkey(num_orders),
        shippriority(num_orders);
    const int64_t order_lo = DateToDays(1992, 1, 1);
    const int64_t order_hi = DateToDays(1998, 8, 2);
    ParallelFor(num_orders, [&](uint64_t begin, uint64_t end) {
      Xoshiro256 rng(seed ^ 0x6f7264657273ULL ^ Mix64(begin));  // "orders"
      for (uint64_t i = begin; i < end; ++i) {
        orderdate[i] = static_cast<int32_t>(
            order_lo + static_cast<int64_t>(rng.Below(
                           static_cast<uint64_t>(order_hi - order_lo))));
        custkey[i] = static_cast<int32_t>(1 + rng.Below(num_customers));
        shippriority[i] = 0;  // spec 4.2.3: constant
      }
    });
    cs::Table orders("orders");
    auto add = [&orders](const char* name, std::vector<int32_t>& v) {
      cs::Column col = cs::Column::FromI32(v);
      col.ComputeStats();
      (void)orders.AddColumn(name, std::move(col));
    };
    add("o_orderdate", orderdate);
    add("o_custkey", custkey);
    add("o_shippriority", shippriority);
    (void)db->AddTable(std::move(orders));
  }

  // ---- customer -------------------------------------------------------------
  {
    std::vector<int32_t> mktsegment(num_customers), nationkey(num_customers),
        acctbal(num_customers);
    ParallelFor(num_customers, [&](uint64_t begin, uint64_t end) {
      Xoshiro256 rng(seed ^ 0x63757374ULL ^ Mix64(begin));  // "cust"
      for (uint64_t i = begin; i < end; ++i) {
        mktsegment[i] = static_cast<int32_t>(rng.Below(5));
        nationkey[i] = static_cast<int32_t>(rng.Below(25));
        // -999.99 .. 9999.99, cents.
        acctbal[i] = static_cast<int32_t>(
            -99'999 + static_cast<int64_t>(rng.Below(1'100'000)));
      }
    });
    cs::Table customer("customer");
    auto add = [&customer](const char* name, std::vector<int32_t>& v) {
      cs::Column col = cs::Column::FromI32(v);
      col.ComputeStats();
      (void)customer.AddColumn(name, std::move(col));
    };
    add("c_mktsegment", mktsegment);
    add("c_nationkey", nationkey);
    add("c_acctbal", acctbal);
    customer.AttachDictionary(
        "c_mktsegment",
        cs::Dictionary::Build(
            std::vector<std::string>(std::begin(kSegments), std::end(kSegments))));
    (void)db->AddTable(std::move(customer));
  }
  return num_parts;
}

core::QuerySpec TpchQ1() {
  core::QuerySpec q;
  q.name = "TPC-H Q1";
  q.table = "lineitem";
  q.predicates = {
      {"l_shipdate", cs::RangePred::Le(DateToDays(1998, 12, 1) - 90)}};
  q.group_by = {"l_returnflag", "l_linestatus"};
  using core::Aggregate;
  using core::AggFunc;
  using core::Term;
  q.aggregates.push_back(Aggregate::SumOf("l_quantity", "sum_qty"));
  q.aggregates.push_back(
      Aggregate::SumOf("l_extendedprice", "sum_base_price", 100.0));
  {
    Aggregate a;
    a.func = AggFunc::kSum;
    a.terms = {Term::Col("l_extendedprice"), Term::OneMinus("l_discount", 100)};
    a.label = "sum_disc_price";
    a.display_scale = 1e4;
    q.aggregates.push_back(a);
  }
  {
    Aggregate a;
    a.func = AggFunc::kSum;
    a.terms = {Term::Col("l_extendedprice"), Term::OneMinus("l_discount", 100),
               Term::OnePlus("l_tax", 100)};
    a.label = "sum_charge";
    a.display_scale = 1e6;
    q.aggregates.push_back(a);
  }
  {
    Aggregate a;
    a.func = AggFunc::kAvg;
    a.terms = {Term::Col("l_quantity")};
    a.label = "avg_qty";
    q.aggregates.push_back(a);
  }
  {
    Aggregate a;
    a.func = AggFunc::kAvg;
    a.terms = {Term::Col("l_extendedprice")};
    a.label = "avg_price";
    a.display_scale = 100.0;
    q.aggregates.push_back(a);
  }
  {
    Aggregate a;
    a.func = AggFunc::kAvg;
    a.terms = {Term::Col("l_discount")};
    a.label = "avg_disc";
    a.display_scale = 100.0;
    q.aggregates.push_back(a);
  }
  q.aggregates.push_back(Aggregate::CountStar("count_order"));
  return q;
}

core::QuerySpec TpchQ6() {
  core::QuerySpec q;
  q.name = "TPC-H Q6";
  q.table = "lineitem";
  q.predicates = {
      {"l_shipdate", cs::RangePred::Between(DateToDays(1994, 1, 1),
                                            DateToDays(1995, 1, 1) - 1)},
      {"l_discount", cs::RangePred::Between(5, 7)},  // 0.06 +- 0.01
      {"l_quantity", cs::RangePred::Lt(24)},
  };
  core::Aggregate revenue;
  revenue.func = core::AggFunc::kSum;
  revenue.terms = {core::Term::Col("l_extendedprice"),
                   core::Term::Col("l_discount")};
  revenue.label = "revenue";
  revenue.display_scale = 1e4;  // cents * hundredths
  q.aggregates.push_back(revenue);
  return q;
}

core::QuerySpec TpchQ6YearVariant(uint64_t variant) {
  core::QuerySpec q = TpchQ6();
  const int year = 1993 + static_cast<int>(variant % 5);
  q.predicates[0].range = cs::RangePred::Between(
      DateToDays(year, 1, 1), DateToDays(year + 1, 1, 1) - 1);
  return q;
}

core::QuerySpec TpchQ14() {
  core::QuerySpec q;
  q.name = "TPC-H Q14";
  q.table = "lineitem";
  q.predicates = {
      {"l_shipdate", cs::RangePred::Between(DateToDays(1995, 9, 1),
                                            DateToDays(1995, 10, 1) - 1)}};
  q.join = core::JoinSpec{"l_partkey", "part", /*fk_base=*/1};
  // The PROMO% prefix becomes a code range on the ordered dictionary; the
  // caller resolves it against the part dictionary (see Q14PromoRange).
  core::Aggregate promo;
  promo.func = core::AggFunc::kSum;
  promo.terms = {core::Term::Col("l_extendedprice"),
                 core::Term::OneMinus("l_discount", 100)};
  promo.filter = core::CaseFilter{"p_type", cs::RangePred::All()};
  promo.label = "promo_revenue";
  promo.display_scale = 1e4;
  q.aggregates.push_back(promo);

  core::Aggregate total = promo;
  total.filter.reset();
  total.label = "total_revenue";
  q.aggregates.push_back(total);
  return q;
}

core::PhysicalPlan TpchQ3() {
  using core::ColumnRef;
  core::PhysicalPlan plan;
  plan.name = "TPC-H Q3";
  plan.scan = core::ScanNode{"lineitem"};
  const int64_t date = DateToDays(1995, 3, 15);
  plan.ops.push_back(core::FilterNode{0, "l_shipdate", cs::RangePred::Gt(date)});
  plan.ops.push_back(core::FkJoinNode{0, "l_orderkey", "orders", 1});
  plan.ops.push_back(
      core::FilterNode{1, "o_orderdate", cs::RangePred::Lt(date)});
  plan.ops.push_back(core::FkJoinNode{1, "o_custkey", "customer", 1});
  plan.ops.push_back(core::FilterNode{
      2, "c_mktsegment", cs::RangePred::Eq(1)});  // BUILDING (see kSegments)
  plan.group_agg.group_by = {ColumnRef{"l_orderkey", 0},
                             ColumnRef{"o_orderdate", 1},
                             ColumnRef{"o_shippriority", 1}};
  core::PlanAggregate revenue;
  revenue.func = core::AggFunc::kSum;
  revenue.terms = {core::PlanTerm{ColumnRef{"l_extendedprice", 0}, 0, +1},
                   core::PlanTerm{ColumnRef{"l_discount", 0}, 100, -1}};
  revenue.label = "revenue";
  revenue.display_scale = 1e4;  // cents * hundredths
  plan.group_agg.aggregates.push_back(revenue);
  return plan;
}

core::PhysicalPlan TpchQ10() {
  using core::ColumnRef;
  core::PhysicalPlan plan;
  plan.name = "TPC-H Q10";
  plan.scan = core::ScanNode{"lineitem"};
  plan.ops.push_back(
      core::FilterNode{0, "l_returnflag", cs::RangePred::Eq(2)});  // "R"
  plan.ops.push_back(core::FkJoinNode{0, "l_orderkey", "orders", 1});
  plan.ops.push_back(core::FilterNode{
      1, "o_orderdate",
      cs::RangePred::Between(DateToDays(1993, 10, 1),
                             DateToDays(1994, 1, 1) - 1)});
  plan.ops.push_back(core::FkJoinNode{1, "o_custkey", "customer", 1});
  plan.group_agg.group_by = {ColumnRef{"o_custkey", 1},
                             ColumnRef{"c_nationkey", 2}};
  core::PlanAggregate revenue;
  revenue.func = core::AggFunc::kSum;
  revenue.terms = {core::PlanTerm{ColumnRef{"l_extendedprice", 0}, 0, +1},
                   core::PlanTerm{ColumnRef{"l_discount", 0}, 100, -1}};
  revenue.label = "revenue";
  revenue.display_scale = 1e4;
  plan.group_agg.aggregates.push_back(revenue);
  core::PlanAggregate lines;
  lines.func = core::AggFunc::kCount;
  lines.label = "line_count";
  plan.group_agg.aggregates.push_back(lines);
  return plan;
}

std::vector<bwd::DecomposeRequest> TpchAllResident() {
  using bwd::Compression;
  return {
      {"l_partkey", 32, Compression::kBitPacked},
      {"l_quantity", 32, Compression::kBitPacked},
      {"l_extendedprice", 32, Compression::kBitPacked},
      {"l_discount", 32, Compression::kBitPacked},
      {"l_tax", 32, Compression::kBitPacked},
      {"l_shipdate", 32, Compression::kBitPacked},
      {"l_returnflag", 32, Compression::kBitPacked},
      {"l_linestatus", 32, Compression::kBitPacked},
  };
}

std::vector<bwd::DecomposeRequest> TpchSpaceConstrained() {
  std::vector<bwd::DecomposeRequest> reqs = TpchAllResident();
  for (auto& r : reqs) {
    if (r.column == "l_shipdate") r.device_bits = 24;  // 8 residual bits
  }
  return reqs;
}

std::vector<bwd::DecomposeRequest> TpchPartResident() {
  using bwd::Compression;
  return {
      {"p_type", 32, Compression::kBitPacked},
      {"p_retailprice", 32, Compression::kBitPacked},
  };
}

std::vector<bwd::DecomposeRequest> TpchMultiJoinResident() {
  using bwd::Compression;
  // The l_orderkey FK must be fully device-resident (the A&R join-key
  // invariant); kept out of TpchAllResident so the single-join experiments'
  // device footprint is unchanged.
  return {{"l_orderkey", 32, Compression::kBitPacked}};
}

std::vector<bwd::DecomposeRequest> TpchOrdersResident() {
  using bwd::Compression;
  return {
      {"o_orderdate", 32, Compression::kBitPacked},
      {"o_custkey", 32, Compression::kBitPacked},
      {"o_shippriority", 32, Compression::kBitPacked},
  };
}

std::vector<bwd::DecomposeRequest> TpchCustomerResident() {
  using bwd::Compression;
  return {
      {"c_mktsegment", 32, Compression::kBitPacked},
      {"c_nationkey", 32, Compression::kBitPacked},
      {"c_acctbal", 32, Compression::kBitPacked},
  };
}

Status ResolvePromoFilter(const cs::Database& db, core::QuerySpec* q14) {
  if (!db.HasTable("part")) return Status::NotFound("part table missing");
  const cs::Dictionary* dict = db.table("part").dictionary("p_type");
  if (dict == nullptr) return Status::NotFound("p_type dictionary missing");
  for (auto& agg : q14->aggregates) {
    if (agg.filter.has_value() && agg.filter->dim_column == "p_type") {
      agg.filter->range = dict->PrefixRange("PROMO");
    }
  }
  return Status::OK();
}

double PromoRevenuePercent(int64_t promo_sum, int64_t total_sum) {
  if (total_sum == 0) return 0.0;
  return 100.0 * static_cast<double>(promo_sum) /
         static_cast<double>(total_sum);
}

}  // namespace wastenot::workloads
