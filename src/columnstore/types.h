// Fundamental types of the bulk-processing column store.
//
// The engine is integer-centric, like the paper's MonetDB substrate: dates,
// decimals and dictionary-encoded strings are all stored as (fixed-point)
// integers, which is also what bitwise decomposition requires. Physical
// tails are either 32- or 64-bit; operators are statically expanded per
// physical type (the C++ template analogue of MonetDB's C-preprocessor type
// expansion described in paper §V-C).

#ifndef WASTENOT_COLUMNSTORE_TYPES_H_
#define WASTENOT_COLUMNSTORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace wastenot::cs {

/// Tuple identifier (MonetDB "oid"). 32-bit: relations are limited to
/// 2^32-1 tuples, which comfortably covers the paper's largest dataset
/// (250 M rows) while halving candidate-list bandwidth.
using oid_t = uint32_t;

/// Sentinel for "no oid".
inline constexpr oid_t kInvalidOid = std::numeric_limits<oid_t>::max();

/// A materialized candidate list (ascending unless stated otherwise).
using OidVec = std::vector<oid_t>;

/// Physical tail type of a column.
enum class ValueType : uint8_t {
  kInt32,
  kInt64,
};

/// Size in bytes of one value of `type`.
constexpr size_t ValueSize(ValueType type) {
  return type == ValueType::kInt32 ? 4 : 8;
}

/// An inclusive value range [lo, hi]; the canonical form every comparison
/// predicate is normalized into (see core/logical.h). A full-domain range
/// selects everything.
struct RangePred {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();

  bool Contains(int64_t v) const { return v >= lo && v <= hi; }
  bool Empty() const { return lo > hi; }

  static RangePred All() { return RangePred{}; }
  static RangePred Eq(int64_t v) { return RangePred{v, v}; }
  static RangePred Lt(int64_t v) {
    return RangePred{std::numeric_limits<int64_t>::min(), v - 1};
  }
  static RangePred Le(int64_t v) {
    return RangePred{std::numeric_limits<int64_t>::min(), v};
  }
  static RangePred Gt(int64_t v) {
    return RangePred{v + 1, std::numeric_limits<int64_t>::max()};
  }
  static RangePred Ge(int64_t v) {
    return RangePred{v, std::numeric_limits<int64_t>::max()};
  }
  static RangePred Between(int64_t lo, int64_t hi) {
    return RangePred{lo, hi};
  }
};

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_TYPES_H_
