// A linear-probing hash index from values to oids, used for
//  (a) the pre-built foreign-key indexes of paper §IV-D ("we resort to
//      (pre-)building a hashtable on the CPU in the form of a foreign-key
//      index"), and
//  (b) the hash-join refinement path of non-order-preserving join sides.
//
// Keys are int64 values; payloads are the oids of the indexed column. The
// table is open-addressed with power-of-two capacity and a 50% max load
// factor; collisions chain by linear probing, duplicates chain through a
// next-array (classic bucket-chained MonetDB hash).

#ifndef WASTENOT_COLUMNSTORE_HASH_INDEX_H_
#define WASTENOT_COLUMNSTORE_HASH_INDEX_H_

#include <cstdint>
#include <vector>

#include "columnstore/column.h"
#include "columnstore/types.h"
#include "util/status.h"

namespace wastenot::cs {

/// Immutable hash index over a column's values.
class HashIndex {
 public:
  /// Builds an index over all rows of `col`.
  static HashIndex Build(const Column& col);

  /// Appends the oids of every row whose value equals `v` to `out`.
  /// Returns the number of matches.
  uint64_t Lookup(int64_t v, OidVec* out) const;

  /// Returns the first matching oid or kInvalidOid. For key columns this is
  /// the unique match.
  oid_t LookupFirst(int64_t v) const;

  uint64_t size() const { return n_; }
  /// Host bytes occupied (buckets + chain), charged by the cost model.
  uint64_t byte_size() const {
    return buckets_.size() * sizeof(oid_t) + next_.size() * sizeof(oid_t) +
           keys_.size() * sizeof(int64_t);
  }

 private:
  uint64_t BucketOf(int64_t v) const;

  uint64_t n_ = 0;
  uint64_t mask_ = 0;
  std::vector<oid_t> buckets_;   // head of chain per bucket, kInvalidOid=empty
  std::vector<oid_t> next_;      // next oid in chain, per row
  std::vector<int64_t> keys_;    // copy of the key values, per row
};

/// Hash join: for each probe value, finds all matching build-side oids.
/// Returns aligned (probe_idx, build_oid) pairs in probe order.
struct JoinResult {
  OidVec probe_oids;  ///< oid (position) on the probe side
  OidVec build_oids;  ///< matching oid on the build side
};
JoinResult HashJoin(const HashIndex& index, const Column& probe);

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_HASH_INDEX_H_
