// Database: a named collection of Tables — what the classic engine
// executes against and what BwdTable::Decompose consumes.

#ifndef WASTENOT_COLUMNSTORE_DATABASE_H_
#define WASTENOT_COLUMNSTORE_DATABASE_H_

#include <cassert>
#include <map>
#include <string>

#include "columnstore/table.h"

namespace wastenot::cs {

/// Owning map of tables by name.
class Database {
 public:
  Table* AddTable(Table table) {
    auto [it, inserted] = tables_.emplace(table.name(), std::move(table));
    assert(inserted && "duplicate table");
    (void)inserted;
    return &it->second;
  }

  bool HasTable(const std::string& name) const {
    return tables_.count(name) != 0;
  }
  const Table& table(const std::string& name) const {
    auto it = tables_.find(name);
    assert(it != tables_.end() && "unknown table");
    return it->second;
  }

  uint64_t byte_size() const {
    uint64_t total = 0;
    for (const auto& [_, t] : tables_) total += t.byte_size();
    return total;
  }

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_DATABASE_H_
