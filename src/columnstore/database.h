// Database: a named collection of Tables — what the classic engine
// executes against and what BwdTable::Decompose consumes.

#ifndef WASTENOT_COLUMNSTORE_DATABASE_H_
#define WASTENOT_COLUMNSTORE_DATABASE_H_

#include <cassert>
#include <map>
#include <string>
#include <vector>

#include "columnstore/table.h"
#include "util/status.h"

namespace wastenot::cs {

/// Owning map of tables by name.
class Database {
 public:
  /// Registers `table` under its name. AlreadyExists (and the database
  /// unchanged) when the name is taken — server-facing paths register
  /// tables from requests, so a collision must be a Status, not an
  /// assert. The returned pointer stays valid for the database's
  /// lifetime (node-based map).
  StatusOr<Table*> AddTable(Table table) {
    auto [it, inserted] = tables_.emplace(table.name(), std::move(table));
    if (!inserted) {
      return Status::AlreadyExists("table '" + it->first +
                                   "' already exists");
    }
    return &it->second;
  }

  bool HasTable(const std::string& name) const {
    return tables_.count(name) != 0;
  }

  /// Nullable lookup — the spelling for request-driven paths where the
  /// name may be wrong (map to NotFound, keep serving).
  const Table* FindTable(const std::string& name) const {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
  }
  Table* FindTable(const std::string& name) {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
  }

  /// Checked accessor for names the caller has already validated.
  const Table& table(const std::string& name) const {
    auto it = tables_.find(name);
    assert(it != tables_.end() && "unknown table");
    return it->second;
  }

  std::vector<std::string> table_names() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, _] : tables_) names.push_back(name);
    return names;
  }

  uint64_t byte_size() const {
    uint64_t total = 0;
    for (const auto& [_, t] : tables_) total += t.byte_size();
    return total;
  }

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_DATABASE_H_
