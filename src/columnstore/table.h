// Table: a named collection of equal-length columns plus their dictionaries.
// The workload generators build Tables; the query layer resolves column
// references against them.

#ifndef WASTENOT_COLUMNSTORE_TABLE_H_
#define WASTENOT_COLUMNSTORE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnstore/column.h"
#include "columnstore/dictionary.h"
#include "util/status.h"

namespace wastenot::cs {

/// A named, fully-decomposed relation (one Column per attribute).
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  uint64_t num_rows() const { return rows_; }

  /// Adds a column; all columns must have the same length.
  Status AddColumn(const std::string& column_name, Column column);

  /// Attaches the string dictionary backing a dictionary-encoded column.
  void AttachDictionary(const std::string& column_name, Dictionary dict);

  bool HasColumn(const std::string& column_name) const;
  const Column& column(const std::string& column_name) const;
  Column* mutable_column(const std::string& column_name);
  const Dictionary* dictionary(const std::string& column_name) const;

  std::vector<std::string> column_names() const;

  /// Total tail bytes across all columns.
  uint64_t byte_size() const;

  /// Deep copy (columns cloned, dictionaries copied), optionally renamed.
  /// Shard-database assembly replicates dimension tables with this.
  Table Clone(const std::string& new_name = "") const;

 private:
  std::string name_;
  uint64_t rows_ = 0;
  bool has_rows_ = false;
  std::map<std::string, Column> columns_;
  std::map<std::string, Dictionary> dictionaries_;
};

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_TABLE_H_
