// Positional lookups — MonetDB's leftfetchjoin, the "invisible join" of
// Abadi et al. cited in paper §IV-A. Projections in a late-materializing
// column store are implemented as these gathers.

#ifndef WASTENOT_COLUMNSTORE_FETCH_H_
#define WASTENOT_COLUMNSTORE_FETCH_H_

#include "columnstore/column.h"
#include "columnstore/types.h"

namespace wastenot::cs {

/// Gathers col[oid] for every oid in `oids`, preserving order.
/// The classic projective join: result[i] = col[oids[i]].
Column Fetch(const Column& col, const OidVec& oids);

/// Gathers into a caller-provided int64 buffer (avoids an allocation in
/// fused refinement loops). `out` must have oids.size() capacity.
void FetchTo(const Column& col, const OidVec& oids, int64_t* out);

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_FETCH_H_
