#include "columnstore/aggregate.h"

#include <algorithm>
#include <limits>

namespace wastenot::cs {

int64_t Sum(const Column& col) {
  int64_t sum = 0;
  if (col.type() == ValueType::kInt32) {
    for (int32_t v : col.I32()) sum += v;
  } else {
    for (int64_t v : col.I64()) sum += v;
  }
  return sum;
}

int64_t Min(const Column& col) {
  int64_t mn = std::numeric_limits<int64_t>::max();
  if (col.type() == ValueType::kInt32) {
    for (int32_t v : col.I32()) mn = std::min<int64_t>(mn, v);
  } else {
    for (int64_t v : col.I64()) mn = std::min(mn, v);
  }
  return mn;
}

int64_t Max(const Column& col) {
  int64_t mx = std::numeric_limits<int64_t>::min();
  if (col.type() == ValueType::kInt32) {
    for (int32_t v : col.I32()) mx = std::max<int64_t>(mx, v);
  } else {
    for (int64_t v : col.I64()) mx = std::max(mx, v);
  }
  return mx;
}

int64_t Sum(const Column& col, const OidVec& rows) {
  int64_t sum = 0;
  for (oid_t o : rows) sum += col.Get(o);
  return sum;
}

int64_t Min(const Column& col, const OidVec& rows) {
  int64_t mn = std::numeric_limits<int64_t>::max();
  for (oid_t o : rows) mn = std::min(mn, col.Get(o));
  return mn;
}

int64_t Max(const Column& col, const OidVec& rows) {
  int64_t mx = std::numeric_limits<int64_t>::min();
  for (oid_t o : rows) mx = std::max(mx, col.Get(o));
  return mx;
}

std::vector<int64_t> GroupedSum(const std::vector<int64_t>& values,
                                const std::vector<uint32_t>& group_ids,
                                uint64_t num_groups) {
  std::vector<int64_t> out(num_groups, 0);
  for (uint64_t i = 0; i < values.size(); ++i) out[group_ids[i]] += values[i];
  return out;
}

std::vector<int64_t> GroupedMin(const std::vector<int64_t>& values,
                                const std::vector<uint32_t>& group_ids,
                                uint64_t num_groups) {
  std::vector<int64_t> out(num_groups, std::numeric_limits<int64_t>::max());
  for (uint64_t i = 0; i < values.size(); ++i) {
    out[group_ids[i]] = std::min(out[group_ids[i]], values[i]);
  }
  return out;
}

std::vector<int64_t> GroupedMax(const std::vector<int64_t>& values,
                                const std::vector<uint32_t>& group_ids,
                                uint64_t num_groups) {
  std::vector<int64_t> out(num_groups, std::numeric_limits<int64_t>::min());
  for (uint64_t i = 0; i < values.size(); ++i) {
    out[group_ids[i]] = std::max(out[group_ids[i]], values[i]);
  }
  return out;
}

std::vector<int64_t> GroupedCount(const std::vector<uint32_t>& group_ids,
                                  uint64_t num_groups) {
  std::vector<int64_t> out(num_groups, 0);
  for (uint32_t g : group_ids) ++out[g];
  return out;
}

}  // namespace wastenot::cs
