#include "columnstore/fetch.h"

namespace wastenot::cs {

Column Fetch(const Column& col, const OidVec& oids) {
  Column out(col.type(), oids.size());
  if (col.type() == ValueType::kInt32) {
    auto src = col.I32();
    auto dst = out.MutableI32();
    for (uint64_t i = 0; i < oids.size(); ++i) dst[i] = src[oids[i]];
  } else {
    auto src = col.I64();
    auto dst = out.MutableI64();
    for (uint64_t i = 0; i < oids.size(); ++i) dst[i] = src[oids[i]];
  }
  return out;
}

void FetchTo(const Column& col, const OidVec& oids, int64_t* out) {
  if (col.type() == ValueType::kInt32) {
    auto src = col.I32();
    for (uint64_t i = 0; i < oids.size(); ++i) out[i] = src[oids[i]];
  } else {
    auto src = col.I64();
    for (uint64_t i = 0; i < oids.size(); ++i) out[i] = src[oids[i]];
  }
}

}  // namespace wastenot::cs
