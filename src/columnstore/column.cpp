#include "columnstore/column.h"

#include <algorithm>
#include <cstring>

namespace wastenot::cs {

Column Column::FromI32(const std::vector<int32_t>& values) {
  Column col(ValueType::kInt32, values.size());
  if (!values.empty()) {
    std::memcpy(col.buf_.data(), values.data(),
                values.size() * sizeof(int32_t));
  }
  return col;
}

Column Column::FromI64(const std::vector<int64_t>& values) {
  Column col(ValueType::kInt64, values.size());
  if (!values.empty()) {
    std::memcpy(col.buf_.data(), values.data(),
                values.size() * sizeof(int64_t));
  }
  return col;
}

Column Column::Clone() const {
  Column copy(type_, count_);
  if (buf_.size() > 0) std::memcpy(copy.buf_.data(), buf_.data(), buf_.size());
  copy.has_stats_ = has_stats_;
  copy.sorted_ = sorted_;
  copy.min_ = min_;
  copy.max_ = max_;
  return copy;
}

void Column::ComputeStats() {
  if (count_ == 0) {
    has_stats_ = true;
    min_ = 0;
    max_ = 0;
    return;
  }
  int64_t mn = Get(0), mx = Get(0);
  bool sorted = true;
  int64_t prev = mn;
  if (type_ == ValueType::kInt32) {
    for (int32_t v : I32()) {
      mn = std::min<int64_t>(mn, v);
      mx = std::max<int64_t>(mx, v);
      sorted = sorted && v >= prev;
      prev = v;
    }
  } else {
    for (int64_t v : I64()) {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      sorted = sorted && v >= prev;
      prev = v;
    }
  }
  min_ = mn;
  max_ = mx;
  sorted_ = sorted;
  has_stats_ = true;
}

}  // namespace wastenot::cs
