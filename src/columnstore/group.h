// Hash-based grouping (MonetDB's group.new / group.derive).
//
// Grouping assigns a dense group id to every input row; a grouping result
// is positionally aligned with its input (paper §IV-E: "groupings are
// physically represented by mappings of implicit tuple IDs to group IDs").
// Multi-attribute grouping is expressed by refining an existing grouping
// with another column (MonetDB's subgrouping), which is also exactly what
// the A&R grouping refinement does with residual bits.

#ifndef WASTENOT_COLUMNSTORE_GROUP_H_
#define WASTENOT_COLUMNSTORE_GROUP_H_

#include <cstdint>
#include <vector>

#include "columnstore/column.h"
#include "columnstore/types.h"

namespace wastenot::cs {

/// Result of a grouping: per-row group ids plus per-group metadata.
struct GroupResult {
  std::vector<uint32_t> group_ids;     ///< aligned with the grouped input
  uint64_t num_groups = 0;
  std::vector<int64_t> representatives; ///< first value seen per group
  /// Position (index into the grouped input, 0..n-1) of the first member
  /// of each group — uniform across GroupBy/SubGroup so callers can chain.
  OidVec first_row;
};

/// Groups `col` (all rows). Group ids are assigned in first-occurrence
/// order, so equal inputs yield identical groupings across engines.
GroupResult GroupBy(const Column& col);

/// Groups the subset of rows named by `rows` (aligned with `rows`).
GroupResult GroupBy(const Column& col, const OidVec& rows);

/// Refines `prior` by subdividing each group on `col`'s values
/// (the (prior_group, value) pair becomes the new key). `values[i]` must
/// correspond to the same row as `prior.group_ids[i]`.
GroupResult SubGroup(const GroupResult& prior,
                     const std::vector<int64_t>& values);

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_GROUP_H_
