#include "columnstore/select.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace wastenot::cs {

namespace {

// Static type expansion: one tight loop per physical type, selected once
// per call (the template analogue of MonetDB's macro expansion, §V-C).
template <typename T>
void SelectLoop(std::span<const T> vals, int64_t lo, int64_t hi, oid_t base,
                OidVec* out) {
  const uint64_t n = vals.size();
  for (uint64_t i = 0; i < n; ++i) {
    const int64_t v = vals[i];
    if (v >= lo && v <= hi) out->push_back(base + static_cast<oid_t>(i));
  }
}

template <typename T>
void SelectCandLoop(std::span<const T> vals, int64_t lo, int64_t hi,
                    const OidVec& cands, OidVec* out) {
  for (oid_t o : cands) {
    const int64_t v = vals[o];
    if (v >= lo && v <= hi) out->push_back(o);
  }
}

template <typename T>
uint64_t CountLoop(std::span<const T> vals, int64_t lo, int64_t hi) {
  uint64_t count = 0;
  for (const T v : vals) count += (v >= lo && v <= hi);
  return count;
}

}  // namespace

OidVec Select(const Column& col, const RangePred& pred) {
  OidVec out;
  if (pred.Empty()) return out;
  out.reserve(col.size() / 4 + 16);
  if (col.type() == ValueType::kInt32) {
    SelectLoop<int32_t>(col.I32(), pred.lo, pred.hi, 0, &out);
  } else {
    SelectLoop<int64_t>(col.I64(), pred.lo, pred.hi, 0, &out);
  }
  return out;
}

OidVec SelectCandidates(const Column& col, const RangePred& pred,
                        const OidVec& candidates) {
  OidVec out;
  if (pred.Empty()) return out;
  out.reserve(candidates.size() / 2 + 16);
  if (col.type() == ValueType::kInt32) {
    SelectCandLoop<int32_t>(col.I32(), pred.lo, pred.hi, candidates, &out);
  } else {
    SelectCandLoop<int64_t>(col.I64(), pred.lo, pred.hi, candidates, &out);
  }
  return out;
}

OidVec SelectParallel(const Column& col, const RangePred& pred,
                      unsigned threads) {
  if (threads <= 1 || col.size() < (1u << 16)) return Select(col, pred);
  if (pred.Empty()) return {};
  const uint64_t n = col.size();
  const uint64_t slices = std::min<uint64_t>(threads, n);
  std::vector<OidVec> partial(slices);
  ParallelFor(ThreadPool::Default(), slices, [&](uint64_t b, uint64_t e) {
    for (uint64_t s = b; s < e; ++s) {
      const uint64_t begin = n * s / slices;
      const uint64_t end = n * (s + 1) / slices;
      OidVec& out = partial[s];
      out.reserve((end - begin) / 4 + 16);
      if (col.type() == ValueType::kInt32) {
        auto vals = col.I32().subspan(begin, end - begin);
        SelectLoop<int32_t>(vals, pred.lo, pred.hi,
                            static_cast<oid_t>(begin), &out);
      } else {
        auto vals = col.I64().subspan(begin, end - begin);
        SelectLoop<int64_t>(vals, pred.lo, pred.hi,
                            static_cast<oid_t>(begin), &out);
      }
    }
  });
  uint64_t total = 0;
  for (const auto& p : partial) total += p.size();
  OidVec out;
  out.reserve(total);
  for (const auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  return out;
}

uint64_t CountSelect(const Column& col, const RangePred& pred) {
  if (pred.Empty()) return 0;
  return col.type() == ValueType::kInt32
             ? CountLoop<int32_t>(col.I32(), pred.lo, pred.hi)
             : CountLoop<int64_t>(col.I64(), pred.lo, pred.hi);
}

}  // namespace wastenot::cs
