#include "columnstore/table.h"

#include <cassert>

namespace wastenot::cs {

Status Table::AddColumn(const std::string& column_name, Column column) {
  if (has_rows_ && column.size() != rows_) {
    return Status::InvalidArgument("column '" + column_name + "' has " +
                                   std::to_string(column.size()) +
                                   " rows, table '" + name_ + "' has " +
                                   std::to_string(rows_));
  }
  if (columns_.count(column_name) != 0) {
    return Status::AlreadyExists("column '" + column_name + "' already in '" +
                                 name_ + "'");
  }
  rows_ = column.size();
  has_rows_ = true;
  columns_.emplace(column_name, std::move(column));
  return Status::OK();
}

void Table::AttachDictionary(const std::string& column_name, Dictionary dict) {
  dictionaries_.insert_or_assign(column_name, std::move(dict));
}

bool Table::HasColumn(const std::string& column_name) const {
  return columns_.count(column_name) != 0;
}

const Column& Table::column(const std::string& column_name) const {
  auto it = columns_.find(column_name);
  assert(it != columns_.end() && "unknown column");
  return it->second;
}

Column* Table::mutable_column(const std::string& column_name) {
  auto it = columns_.find(column_name);
  return it == columns_.end() ? nullptr : &it->second;
}

const Dictionary* Table::dictionary(const std::string& column_name) const {
  auto it = dictionaries_.find(column_name);
  return it == dictionaries_.end() ? nullptr : &it->second;
}

std::vector<std::string> Table::column_names() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& [name, _] : columns_) names.push_back(name);
  return names;
}

Table Table::Clone(const std::string& new_name) const {
  Table copy(new_name.empty() ? name_ : new_name);
  copy.rows_ = rows_;
  copy.has_rows_ = has_rows_;
  for (const auto& [name, col] : columns_) {
    copy.columns_.emplace(name, col.Clone());
  }
  copy.dictionaries_ = dictionaries_;
  return copy;
}

uint64_t Table::byte_size() const {
  uint64_t total = 0;
  for (const auto& [_, col] : columns_) total += col.byte_size();
  return total;
}

}  // namespace wastenot::cs
