// Bulk aggregation operators: global and grouped count/sum/min/max/avg.
// Sums are 64-bit (inputs are fixed-point integers; overflow headroom is
// the caller's responsibility and asserted in debug builds).

#ifndef WASTENOT_COLUMNSTORE_AGGREGATE_H_
#define WASTENOT_COLUMNSTORE_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "columnstore/column.h"
#include "columnstore/types.h"

namespace wastenot::cs {

/// Supported aggregate functions.
enum class AggOp : uint8_t { kCount, kSum, kMin, kMax, kAvg };

/// Global aggregates over a full column.
int64_t Sum(const Column& col);
int64_t Min(const Column& col);
int64_t Max(const Column& col);

/// Global aggregates over the rows named by `rows`.
int64_t Sum(const Column& col, const OidVec& rows);
int64_t Min(const Column& col, const OidVec& rows);
int64_t Max(const Column& col, const OidVec& rows);

/// Grouped aggregation: values[i] belongs to group group_ids[i].
/// Returns one slot per group (0..num_groups).
std::vector<int64_t> GroupedSum(const std::vector<int64_t>& values,
                                const std::vector<uint32_t>& group_ids,
                                uint64_t num_groups);
std::vector<int64_t> GroupedMin(const std::vector<int64_t>& values,
                                const std::vector<uint32_t>& group_ids,
                                uint64_t num_groups);
std::vector<int64_t> GroupedMax(const std::vector<int64_t>& values,
                                const std::vector<uint32_t>& group_ids,
                                uint64_t num_groups);
std::vector<int64_t> GroupedCount(const std::vector<uint32_t>& group_ids,
                                  uint64_t num_groups);

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_AGGREGATE_H_
