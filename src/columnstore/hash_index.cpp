#include "columnstore/hash_index.h"

#include <bit>

#include "util/random.h"

namespace wastenot::cs {

namespace {
uint64_t NextPow2(uint64_t v) {
  return std::bit_ceil(std::max<uint64_t>(v, 2));
}
}  // namespace

uint64_t HashIndex::BucketOf(int64_t v) const {
  return Mix64(static_cast<uint64_t>(v)) & mask_;
}

HashIndex HashIndex::Build(const Column& col) {
  HashIndex idx;
  idx.n_ = col.size();
  const uint64_t cap = NextPow2(idx.n_ * 2);  // <=50% load
  idx.mask_ = cap - 1;
  idx.buckets_.assign(cap, kInvalidOid);
  idx.next_.assign(idx.n_, kInvalidOid);
  idx.keys_.resize(idx.n_);
  for (uint64_t i = 0; i < idx.n_; ++i) {
    const int64_t v = col.Get(i);
    idx.keys_[i] = v;
    const uint64_t b = idx.BucketOf(v);
    // Push-front into the bucket chain.
    idx.next_[i] = idx.buckets_[b];
    idx.buckets_[b] = static_cast<oid_t>(i);
  }
  return idx;
}

uint64_t HashIndex::Lookup(int64_t v, OidVec* out) const {
  uint64_t matches = 0;
  for (oid_t o = buckets_[BucketOf(v)]; o != kInvalidOid; o = next_[o]) {
    if (keys_[o] == v) {
      out->push_back(o);
      ++matches;
    }
  }
  return matches;
}

oid_t HashIndex::LookupFirst(int64_t v) const {
  for (oid_t o = buckets_[BucketOf(v)]; o != kInvalidOid; o = next_[o]) {
    if (keys_[o] == v) return o;
  }
  return kInvalidOid;
}

JoinResult HashJoin(const HashIndex& index, const Column& probe) {
  JoinResult result;
  result.probe_oids.reserve(probe.size());
  result.build_oids.reserve(probe.size());
  const uint64_t n = probe.size();
  OidVec matches;
  for (uint64_t i = 0; i < n; ++i) {
    matches.clear();
    index.Lookup(probe.Get(i), &matches);
    for (oid_t m : matches) {
      result.probe_oids.push_back(static_cast<oid_t>(i));
      result.build_oids.push_back(m);
    }
  }
  return result;
}

}  // namespace wastenot::cs
