// Column: a dense-headed BAT (Binary Association Table).
//
// MonetDB represents all data as BATs — pairs of (head, tail) arrays that
// associate tuple ids with values. For persistent columns the head is
// "void" (virtual: dense, sorted, starting at 0), so a Column here is just
// a typed tail array; candidate lists (OidVec) play the role of BATs whose
// tail holds oids. Explicitly-headed intermediates are represented in the
// core library as (OidVec, Column) pairs kept positionally aligned
// (paper §V-C).

#ifndef WASTENOT_COLUMNSTORE_COLUMN_H_
#define WASTENOT_COLUMNSTORE_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "columnstore/types.h"
#include "util/aligned_buffer.h"
#include "util/status.h"

namespace wastenot::cs {

/// A typed, immutable-after-build value array with cache-aligned storage.
///
/// Properties (sortedness, key-ness, min/max) are tracked as in MonetDB BAT
/// descriptors; operators use them to pick fast paths and the BWD encoder
/// uses min/max to choose the prefix-compression base.
class Column {
 public:
  Column() = default;

  /// Creates an uninitialized column of `count` values of `type`.
  Column(ValueType type, uint64_t count)
      : type_(type), count_(count), buf_(count * ValueSize(type)) {}

  /// Builds an int32 column from a vector (values must fit in int32).
  static Column FromI32(const std::vector<int32_t>& values);
  /// Builds an int64 column from a vector.
  static Column FromI64(const std::vector<int64_t>& values);

  ValueType type() const { return type_; }
  uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Bytes of tail storage (the quantity the cost model charges for scans).
  uint64_t byte_size() const { return buf_.size(); }

  /// Typed access. The requested T must match type().
  std::span<const int32_t> I32() const {
    assert(type_ == ValueType::kInt32);
    return {buf_.as<int32_t>(), count_};
  }
  std::span<int32_t> MutableI32() {
    assert(type_ == ValueType::kInt32);
    return {buf_.as<int32_t>(), count_};
  }
  std::span<const int64_t> I64() const {
    assert(type_ == ValueType::kInt64);
    return {buf_.as<int64_t>(), count_};
  }
  std::span<int64_t> MutableI64() {
    assert(type_ == ValueType::kInt64);
    return {buf_.as<int64_t>(), count_};
  }

  /// Type-erased read of row `i`, widened to int64.
  int64_t Get(uint64_t i) const {
    assert(i < count_);
    return type_ == ValueType::kInt32 ? buf_.as<int32_t>()[i]
                                      : buf_.as<int64_t>()[i];
  }

  /// Type-erased write of row `i` (value must fit the physical type).
  void Set(uint64_t i, int64_t v) {
    assert(i < count_);
    if (type_ == ValueType::kInt32) {
      buf_.as<int32_t>()[i] = static_cast<int32_t>(v);
    } else {
      buf_.as<int64_t>()[i] = v;
    }
  }

  /// Scans for min/max and records them in the descriptor. O(n).
  void ComputeStats();

  /// Records externally-known min/max bounds in the descriptor without
  /// scanning. The bounds must contain every value but need not be tight:
  /// horizontal partitioning stamps each shard column with the *parent*
  /// column's stats so every shard plans the identical DecompositionSpec
  /// (prefix base and packed widths derive from these bounds).
  void SetStats(int64_t min, int64_t max) {
    min_ = min;
    max_ = max;
    has_stats_ = true;
  }

  /// Descriptor properties (valid after ComputeStats() or builder-set).
  bool has_stats() const { return has_stats_; }
  int64_t min_value() const { return min_; }
  int64_t max_value() const { return max_; }

  bool sorted() const { return sorted_; }
  void set_sorted(bool s) { sorted_ = s; }

  /// Deep copy, descriptor included. Column is move-only (its storage is);
  /// shard-database assembly replicates dimension columns explicitly.
  Column Clone() const;

 private:
  ValueType type_ = ValueType::kInt64;
  uint64_t count_ = 0;
  AlignedBuffer buf_;
  bool has_stats_ = false;
  bool sorted_ = false;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_COLUMN_H_
