// Ordered string dictionary.
//
// Paper §VI-D1: the string-prefix predicate of TPC-H Q14 (p_type like
// 'PROMO%') is replaced by "a range-selection on an ordered dictionary of
// the (125) string values of the column". This class provides exactly that:
// strings are stored sorted and deduplicated; a column stores the code
// (rank) of its string, and a prefix predicate becomes an inclusive code
// range.

#ifndef WASTENOT_COLUMNSTORE_DICTIONARY_H_
#define WASTENOT_COLUMNSTORE_DICTIONARY_H_

#include <string>
#include <vector>

#include "columnstore/types.h"

namespace wastenot::cs {

/// Sorted, deduplicated string domain; codes are ranks, so the code order
/// equals the lexicographic order and prefix predicates map to code ranges.
class Dictionary {
 public:
  /// Builds from arbitrary (possibly duplicated, unsorted) values.
  static Dictionary Build(std::vector<std::string> values);

  /// Code of `value`, or -1 if absent.
  int32_t CodeOf(const std::string& value) const;

  /// String for a code.
  const std::string& Decode(int32_t code) const { return values_[code]; }

  /// The inclusive code range [lo, hi] of all strings starting with
  /// `prefix`; an empty range (lo > hi) if none do.
  RangePred PrefixRange(const std::string& prefix) const;

  int32_t size() const { return static_cast<int32_t>(values_.size()); }

 private:
  std::vector<std::string> values_;
};

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_DICTIONARY_H_
