#include "columnstore/group.h"

#include <bit>

#include "util/random.h"

namespace wastenot::cs {

namespace {

/// Open-addressed map from 64-bit key to dense group id, specialized for
/// the grouping loops (no tombstones, linear probing, grows past 50% load).
class GroupTable {
 public:
  explicit GroupTable(uint64_t expected) {
    Rehash(std::bit_ceil(std::max<uint64_t>(expected * 2, 16)));
  }

  /// Returns the group id of `key`, inserting a fresh one if unseen.
  uint32_t IdOf(int64_t key, uint64_t* num_groups) {
    if ((entries_ + 1) * 2 > keys_.size()) Rehash(keys_.size() * 2);
    uint64_t slot = Mix64(static_cast<uint64_t>(key)) & mask_;
    for (;;) {
      if (keys_[slot] == kEmpty) {
        keys_[slot] = key;
        ids_[slot] = static_cast<uint32_t>((*num_groups)++);
        ++entries_;
        return ids_[slot];
      }
      if (keys_[slot] == key) return ids_[slot];
      slot = (slot + 1) & mask_;
    }
  }

 private:
  void Rehash(uint64_t cap) {
    std::vector<int64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_ids = std::move(ids_);
    mask_ = cap - 1;
    keys_.assign(cap, kEmpty);
    ids_.assign(cap, 0);
    for (uint64_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      uint64_t slot = Mix64(static_cast<uint64_t>(old_keys[i])) & mask_;
      while (keys_[slot] != kEmpty) slot = (slot + 1) & mask_;
      keys_[slot] = old_keys[i];
      ids_[slot] = old_ids[i];
    }
  }

  // An int64 sentinel outside any data domain we generate (keys are value
  // or (group,value) mixes; collisions with the sentinel are broken by the
  // mix below in SubGroup).
  static constexpr int64_t kEmpty = std::numeric_limits<int64_t>::min();
  uint64_t mask_ = 0;
  uint64_t entries_ = 0;
  std::vector<int64_t> keys_;
  std::vector<uint32_t> ids_;
};

}  // namespace

GroupResult GroupBy(const Column& col) {
  GroupResult result;
  const uint64_t n = col.size();
  result.group_ids.resize(n);
  GroupTable table(1024);
  for (uint64_t i = 0; i < n; ++i) {
    const int64_t v = col.Get(i);
    const uint64_t before = result.num_groups;
    const uint32_t g = table.IdOf(v, &result.num_groups);
    result.group_ids[i] = g;
    if (result.num_groups != before) {
      result.representatives.push_back(v);
      result.first_row.push_back(static_cast<oid_t>(i));
    }
  }
  return result;
}

GroupResult GroupBy(const Column& col, const OidVec& rows) {
  GroupResult result;
  result.group_ids.resize(rows.size());
  GroupTable table(1024);
  for (uint64_t i = 0; i < rows.size(); ++i) {
    const int64_t v = col.Get(rows[i]);
    const uint64_t before = result.num_groups;
    const uint32_t g = table.IdOf(v, &result.num_groups);
    result.group_ids[i] = g;
    if (result.num_groups != before) {
      result.representatives.push_back(v);
      result.first_row.push_back(static_cast<oid_t>(i));
    }
  }
  return result;
}

GroupResult SubGroup(const GroupResult& prior,
                     const std::vector<int64_t>& values) {
  GroupResult result;
  const uint64_t n = prior.group_ids.size();
  result.group_ids.resize(n);
  GroupTable table(prior.num_groups * 4 + 16);
  for (uint64_t i = 0; i < n; ++i) {
    // Combine (prior group, value) into one 64-bit key; the mix decorrelates
    // the halves so linear probing stays well distributed.
    const int64_t key = static_cast<int64_t>(
        Mix64(static_cast<uint64_t>(prior.group_ids[i]) * 0x9e3779b97f4a7c15ULL ^
              static_cast<uint64_t>(values[i])));
    const uint64_t before = result.num_groups;
    const uint32_t g = table.IdOf(key, &result.num_groups);
    result.group_ids[i] = g;
    if (result.num_groups != before) {
      result.representatives.push_back(values[i]);
      result.first_row.push_back(static_cast<oid_t>(i));
    }
  }
  return result;
}

}  // namespace wastenot::cs
