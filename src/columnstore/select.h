// Bulk selection operators (MonetDB's uselect / thetauselect family).
//
// Tight, call-free loops that materialize qualifying oids, optionally
// restricted to a prior candidate list — the bulk-processing model of
// paper §II-B. These are the "MonetDB" baseline bars of Figs 8-10 and the
// CPU-side workhorses of the refinement operators.

#ifndef WASTENOT_COLUMNSTORE_SELECT_H_
#define WASTENOT_COLUMNSTORE_SELECT_H_

#include "columnstore/column.h"
#include "columnstore/types.h"

namespace wastenot::cs {

/// Materializes the (ascending) oids of all rows whose value lies in `pred`.
OidVec Select(const Column& col, const RangePred& pred);

/// Like Select but only considers the rows named by `candidates`
/// (candidate-list refinement; preserves the candidate order).
OidVec SelectCandidates(const Column& col, const RangePred& pred,
                        const OidVec& candidates);

/// Multi-threaded Select over `threads` contiguous slices. The result is
/// ascending (slices are concatenated in order). Used by the CPU baseline
/// for the throughput experiment (Fig 11).
OidVec SelectParallel(const Column& col, const RangePred& pred,
                      unsigned threads);

/// Counts qualifying rows without materializing them.
uint64_t CountSelect(const Column& col, const RangePred& pred);

}  // namespace wastenot::cs

#endif  // WASTENOT_COLUMNSTORE_SELECT_H_
