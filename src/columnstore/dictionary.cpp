#include "columnstore/dictionary.h"

#include <algorithm>

namespace wastenot::cs {

Dictionary Dictionary::Build(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Dictionary dict;
  dict.values_ = std::move(values);
  return dict;
}

int32_t Dictionary::CodeOf(const std::string& value) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.end() || *it != value) return -1;
  return static_cast<int32_t>(it - values_.begin());
}

RangePred Dictionary::PrefixRange(const std::string& prefix) const {
  auto lo = std::lower_bound(values_.begin(), values_.end(), prefix);
  // The smallest string greater than every string with this prefix is the
  // prefix with its last character incremented.
  std::string upper = prefix;
  auto hi = values_.end();
  if (!upper.empty()) {
    upper.back() = static_cast<char>(upper.back() + 1);
    hi = std::lower_bound(values_.begin(), values_.end(), upper);
  }
  const int64_t lo_code = lo - values_.begin();
  const int64_t hi_code = static_cast<int64_t>(hi - values_.begin()) - 1;
  return RangePred{lo_code, hi_code};
}

}  // namespace wastenot::cs
