#include "storage/delta_store.h"

#include <algorithm>

namespace wastenot::storage {

Status DeltaStore::Append(std::span<const int64_t> row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "delta row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  std::lock_guard<std::mutex> lock(mu_);
  values_.insert(values_.end(), row.begin(), row.end());
  ++next_;
  cached_.reset();
  return Status::OK();
}

uint64_t DeltaStore::total_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

uint64_t DeltaStore::pending_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ - first_;
}

std::shared_ptr<const DeltaBatch> DeltaStore::Snapshot(uint64_t from) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t lo = std::max(from, first_);
  if (cached_ && cached_from_ == lo && cached_to_ == next_) return cached_;
  const size_t w = columns_.size();
  const size_t begin = static_cast<size_t>(lo - first_) * w;
  std::vector<int64_t> values(values_.begin() + begin, values_.end());
  cached_ = std::make_shared<DeltaBatch>(columns_, std::move(values), lo);
  cached_from_ = lo;
  cached_to_ = next_;
  return cached_;
}

void DeltaStore::Fold(uint64_t upto) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t to = std::min(upto, next_);
  if (to <= first_) return;
  const size_t w = columns_.size();
  values_.erase(values_.begin(),
                values_.begin() + static_cast<size_t>(to - first_) * w);
  first_ = to;
  cached_.reset();
}

}  // namespace wastenot::storage
