#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>

#include "storage/framing.h"
#include "util/fault_injection.h"

namespace wastenot::storage {

namespace {

enum RecordType : uint8_t { kAppend = 1, kCommit = 2 };

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IoError(op + " '" + path + "': " + std::strerror(errno));
}

/// write() until `len` bytes of `data` are down (short writes retried).
Status WriteAll(int fd, const char* data, size_t len,
                const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(std::string path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(path), fd));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(std::string_view table, uint64_t row_index,
                         std::span<const int64_t> values) {
  if (table.size() > std::numeric_limits<uint16_t>::max()) {
    return Status::InvalidArgument("table name too long for a WAL record");
  }
  if (values.size() > std::numeric_limits<uint16_t>::max()) {
    return Status::InvalidArgument("row too wide for a WAL record");
  }
  std::string payload;
  payload.reserve(1 + 8 + 2 + table.size() + 2 + values.size() * 8);
  PutU8(&payload, kAppend);
  PutU64(&payload, row_index);
  PutU16(&payload, static_cast<uint16_t>(table.size()));
  payload.append(table.data(), table.size());
  PutU16(&payload, static_cast<uint16_t>(values.size()));
  for (int64_t v : values) PutI64(&payload, v);
  AppendFrame(&buffer_, payload);
  return Status::OK();
}

Status WalWriter::Commit(uint64_t committed_rows) {
  if (buffer_.empty()) return Status::OK();
  std::string payload;
  PutU8(&payload, kCommit);
  PutU64(&payload, committed_rows);
  AppendFrame(&buffer_, payload);

  // One write, one fsync: the group-commit batch. A torn-write fault
  // leaves a prefix of the batch on disk — exactly what a power cut
  // between the write and the platter does — and replay drops it at the
  // checksum or the missing commit record.
  const fault::WriteCheck wc = fault::CheckWrite(kFaultWalWrite,
                                                 buffer_.size());
  if (!wc.status.ok()) return wc.status;
  if (wc.torn_bytes.has_value()) {
    (void)WriteAll(fd_, buffer_.data(), *wc.torn_bytes, path_);
    fault::Crash();
  }
  WN_RETURN_IF_ERROR(WriteAll(fd_, buffer_.data(), buffer_.size(), path_));

  WN_RETURN_IF_ERROR(fault::Check(kFaultWalFsync));
  if (::fsync(fd_) < 0) return ErrnoStatus("fsync", path_);

  synced_bytes_ += buffer_.size();
  ++commits_;
  buffer_.clear();
  return Status::OK();
}

Status WalWriter::Truncate() {
  WN_RETURN_IF_ERROR(fault::Check(kFaultWalTruncate));
  if (::ftruncate(fd_, 0) < 0) return ErrnoStatus("ftruncate", path_);
  if (::fsync(fd_) < 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

StatusOr<WalReplayStats> ReplayWal(const std::string& path,
                                   const WalApplyFn& apply) {
  WalReplayStats stats;

  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) return stats;  // no log = empty log
    return ErrnoStatus("open", path);
  }

  std::string data;
  {
    char chunk[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return ErrnoStatus("read", path);
      }
      if (n == 0) break;
      data.append(chunk, static_cast<size_t>(n));
    }
  }

  // One committed batch at a time: appends accumulate in `pending` and are
  // delivered only once their commit record checks out; whatever follows
  // the last valid commit (torn frame, corrupt frame, or valid appends
  // that never got their commit) is discarded and truncated away.
  struct PendingRow {
    uint64_t row_index;
    std::string table;
    std::vector<int64_t> values;
  };
  std::vector<PendingRow> pending;
  size_t offset = 0;
  size_t durable_end = 0;  // file offset after the last valid commit record

  while (offset < data.size()) {
    std::string_view payload;
    const FrameRead read = ReadFrame(data, &offset, &payload);
    if (read != FrameRead::kOk) break;  // torn or corrupt: stop, truncate

    PayloadReader r(payload);
    uint8_t type = 0;
    if (!r.ReadU8(&type)) break;
    if (type == kAppend) {
      PendingRow row;
      uint16_t table_len = 0, n_values = 0;
      std::string_view table;
      if (!r.ReadU64(&row.row_index) || !r.ReadU16(&table_len) ||
          !r.ReadString(table_len, &table) || !r.ReadU16(&n_values)) {
        break;
      }
      row.table.assign(table);
      row.values.resize(n_values);
      bool ok = true;
      for (uint16_t i = 0; i < n_values && ok; ++i) {
        ok = r.ReadI64(&row.values[i]);
      }
      if (!ok) break;
      pending.push_back(std::move(row));
    } else if (type == kCommit) {
      uint64_t committed_rows = 0;
      if (!r.ReadU64(&committed_rows)) break;
      for (PendingRow& row : pending) {
        const Status s = apply(row.row_index, row.table, row.values);
        if (!s.ok()) {
          ::close(fd);
          return s;
        }
        ++stats.applied_rows;
      }
      pending.clear();
      ++stats.commits;
      durable_end = offset;
    } else {
      break;  // unknown type: version skew or corruption — truncate here
    }
  }

  stats.dropped_rows = pending.size();
  if (durable_end < data.size()) {
    stats.truncated_bytes = data.size() - durable_end;
    if (::ftruncate(fd, static_cast<off_t>(durable_end)) < 0) {
      ::close(fd);
      return ErrnoStatus("ftruncate", path);
    }
    if (::fsync(fd) < 0) {
      ::close(fd);
      return ErrnoStatus("fsync", path);
    }
  }
  ::close(fd);
  return stats;
}

}  // namespace wastenot::storage
