#include "storage/mutable_table.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <utility>

#include "storage/framing.h"
#include "util/fault_injection.h"

namespace wastenot::storage {

namespace {

/// Snapshot record types (one CRC32C frame each, storage/framing.h):
///   kHeader  [u8][u64 absorbed][u16 name_len][name][u16 n_columns]
///   kColumn  [u8][u16 name_len][name][u64 n_rows][i64 value]*
/// The file is replaced atomically (tmp + fsync + rename + dir fsync), so
/// a parse failure is bit rot or version skew, not a crash artifact.
enum SnapshotRecord : uint8_t { kHeader = 1, kColumn = 2 };

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IoError(op + " '" + path + "': " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t len,
                const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads `path` into `out`; sets `*found = false` on ENOENT.
Status ReadFileIfExists(const std::string& path, std::string* out,
                        bool* found) {
  *found = false;
  out->clear();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::OK();
    return ErrnoStatus("open", path);
  }
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read", path);
    }
    if (n == 0) break;
    out->append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  *found = true;
  return Status::OK();
}

Status FsyncPath(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return ErrnoStatus("open", path);
  if (::fsync(fd) < 0) {
    ::close(fd);
    return ErrnoStatus("fsync", path);
  }
  ::close(fd);
  return Status::OK();
}

Status CorruptSnapshot(const std::string& what) {
  return Status::IoError("base snapshot corrupt: " + what);
}

}  // namespace

std::string MutableTable::WalPath(const std::string& dir) {
  return dir + "/wal.log";
}

std::string MutableTable::SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.tbl";
}

MutableTable::MutableTable(MutableTableOptions options)
    : options_(std::move(options)), requests_(options_.requests) {
  if (requests_.empty()) {
    for (const std::string& c : options_.columns) {
      requests_.push_back(bwd::DecomposeRequest{c});
    }
  }
}

StatusOr<std::unique_ptr<MutableTable>> MutableTable::Open(
    MutableTableOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("MutableTable needs a data directory");
  }
  if (options.name.empty()) {
    return Status::InvalidArgument("MutableTable needs a table name");
  }
  if (options.columns.empty()) {
    return Status::InvalidArgument("MutableTable needs at least one column");
  }
  std::unique_ptr<MutableTable> table(new MutableTable(std::move(options)));
  WN_RETURN_IF_ERROR(table->Recover());
  if (table->options_.background) {
    table->drain_thread_ = std::thread(&MutableTable::DrainLoop, table.get());
  }
  return table;
}

MutableTable::~MutableTable() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (drain_thread_.joinable()) drain_thread_.join();
}

Status MutableTable::Recover() {
  if (::mkdir(options_.dir.c_str(), 0755) < 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir", options_.dir);
  }

  std::vector<std::vector<int64_t>> base_columns;
  uint64_t absorbed = 0;
  WN_RETURN_IF_ERROR(LoadSnapshot(&base_columns, &absorbed));

  delta_store_ = std::make_unique<DeltaStore>(options_.columns, absorbed);

  // Redo the log. Rows the snapshot already absorbed — and duplicates a
  // retried commit re-wrote after a failed fsync — replay below the
  // store's next index and are skipped; a row index *above* it would mean
  // a hole in the ingest sequence, which no crash can produce.
  const WalApplyFn apply = [&](uint64_t row_index, std::string_view table,
                               std::span<const int64_t> values) -> Status {
    if (table != options_.name) {
      return Status::InvalidArgument(
          "WAL row for table '" + std::string(table) + "' in the log of '" +
          options_.name + "'");
    }
    if (values.size() != options_.columns.size()) {
      return Status::InvalidArgument("WAL row width mismatch for '" +
                                     options_.name + "'");
    }
    const uint64_t next = delta_store_->total_rows();
    if (row_index < next) return Status::OK();  // absorbed or duplicate
    if (row_index > next) {
      return Status::Internal("WAL gap: expected row " + std::to_string(next) +
                              ", found row " + std::to_string(row_index));
    }
    ++replayed_rows_;
    return delta_store_->Append(values);
  };
  StatusOr<WalReplayStats> replay = ReplayWal(WalPath(options_.dir), apply);
  WN_RETURN_IF_ERROR(replay.status());

  WN_ASSIGN_OR_RETURN(wal_, WalWriter::Open(WalPath(options_.dir)));
  WN_ASSIGN_OR_RETURN(epoch_, BuildEpoch(base_columns, absorbed));
  next_index_ = delta_store_->total_rows();
  return Status::OK();
}

Status MutableTable::Append(std::span<const int64_t> row) {
  std::lock_guard<std::mutex> lock(mu_);
  if (row.size() != options_.columns.size()) {
    return Status::InvalidArgument(
        "append width " + std::to_string(row.size()) + " != schema width " +
        std::to_string(options_.columns.size()) + " of '" + options_.name +
        "'");
  }
  WN_RETURN_IF_ERROR(wal_->Append(options_.name, next_index_, row));
  buffered_.insert(buffered_.end(), row.begin(), row.end());
  ++next_index_;
  return Status::OK();
}

StatusOr<uint64_t> MutableTable::Flush() {
  bool wake = false;
  uint64_t durable = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Commit is a no-op on an empty buffer; on error the WAL keeps its
    // buffer and we keep ours, so a retry re-commits the same rows (the
    // duplicate records a half-written batch may leave behind are skipped
    // by index at replay).
    WN_RETURN_IF_ERROR(wal_->Commit(next_index_));
    const size_t width = options_.columns.size();
    for (size_t off = 0; off < buffered_.size(); off += width) {
      WN_RETURN_IF_ERROR(delta_store_->Append(
          std::span<const int64_t>(buffered_.data() + off, width)));
    }
    buffered_.clear();
    durable = delta_store_->total_rows();
    wake = delta_store_->pending_rows() >= options_.drain_threshold;
  }
  if (wake) cv_.notify_one();
  return durable;
}

TableView MutableTable::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  TableView view;
  view.db = epoch_->db;
  view.bwd = epoch_->bwd;
  view.absorbed = epoch_->absorbed;
  view.delta = delta_store_->Snapshot(epoch_->absorbed);
  view.durable = view.absorbed + view.delta->num_rows();
  return view;
}

MutableTableStats MutableTable::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  MutableTableStats s;
  s.appended_rows = next_index_;
  s.durable_rows = delta_store_->total_rows();
  s.absorbed_rows = epoch_->absorbed;
  s.buffered_rows = s.appended_rows - s.durable_rows;
  s.pending_rows = s.durable_rows - s.absorbed_rows;
  s.swaps = swaps_;
  s.failed_swaps = failed_swaps_;
  s.wal_commits = wal_->commits();
  s.replayed_rows = replayed_rows_;
  return s;
}

Status MutableTable::Drain() {
  const Status drained = DrainOnce();
  if (!drained.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_swaps_;
  }
  return drained;
}

StatusOr<std::shared_ptr<const MutableTable::Epoch>> MutableTable::BuildEpoch(
    const std::vector<std::vector<int64_t>>& column_values,
    uint64_t absorbed) const {
  auto db = std::make_shared<cs::Database>();
  cs::Table fact(options_.name);
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    const std::vector<int64_t>& values = column_values[c];
    // Re-run the physical choice on the merged distribution: narrow to
    // int32 when every value fits (the width the decomposition planner
    // and the classic scans both prefer), and recompute the min/max the
    // planner derives digit widths from.
    bool fits_i32 = true;
    for (int64_t v : values) {
      if (v < std::numeric_limits<int32_t>::min() ||
          v > std::numeric_limits<int32_t>::max()) {
        fits_i32 = false;
        break;
      }
    }
    cs::Column col;
    if (fits_i32) {
      std::vector<int32_t> narrow(values.begin(), values.end());
      col = cs::Column::FromI32(narrow);
    } else {
      col = cs::Column::FromI64(values);
    }
    if (!values.empty()) col.ComputeStats();
    WN_RETURN_IF_ERROR(fact.AddColumn(options_.columns[c], std::move(col)));
  }
  cs::Table* fact_ptr = nullptr;
  WN_ASSIGN_OR_RETURN(fact_ptr, db->AddTable(std::move(fact)));
  if (options_.dims != nullptr) {
    for (const std::string& n : options_.dims->table_names()) {
      if (n == options_.name) continue;
      WN_RETURN_IF_ERROR(db->AddTable(options_.dims->table(n).Clone())
                             .status());
    }
  }

  auto epoch = std::make_shared<Epoch>();
  epoch->db = std::move(db);
  epoch->absorbed = absorbed;
  if (options_.device != nullptr && fact_ptr->num_rows() > 0) {
    // The failure path here is real device OOM: the previous epoch's
    // allocations are still live (in-flight queries hold them), so a
    // swap transiently needs room for both generations. The caller keeps
    // serving base+delta and retries after backoff.
    WN_ASSIGN_OR_RETURN(
        bwd::BwdTable bwd,
        bwd::BwdTable::Decompose(*fact_ptr, requests_, options_.device));
    epoch->bwd = std::make_shared<bwd::BwdTable>(std::move(bwd));
  }
  return std::shared_ptr<const Epoch>(std::move(epoch));
}

Status MutableTable::WriteSnapshot(
    const std::vector<std::vector<int64_t>>& column_values,
    uint64_t absorbed) const {
  std::string blob;
  {
    std::string payload;
    PutU8(&payload, kHeader);
    PutU64(&payload, absorbed);
    PutU16(&payload, static_cast<uint16_t>(options_.name.size()));
    payload.append(options_.name);
    PutU16(&payload, static_cast<uint16_t>(options_.columns.size()));
    AppendFrame(&blob, payload);
  }
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    std::string payload;
    payload.reserve(1 + 2 + options_.columns[c].size() + 8 +
                    column_values[c].size() * 8);
    PutU8(&payload, kColumn);
    PutU16(&payload, static_cast<uint16_t>(options_.columns[c].size()));
    payload.append(options_.columns[c]);
    PutU64(&payload, column_values[c].size());
    for (int64_t v : column_values[c]) PutI64(&payload, v);
    AppendFrame(&blob, payload);
  }

  const std::string tmp = options_.dir + "/snapshot.tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  const fault::WriteCheck wc = fault::CheckWrite(kFaultSnapshotWrite,
                                                 blob.size());
  if (!wc.status.ok()) {
    ::close(fd);
    return wc.status;
  }
  if (wc.torn_bytes.has_value()) {
    (void)WriteAll(fd, blob.data(), *wc.torn_bytes, tmp);
    fault::Crash();  // torn tmp file: invisible to recovery until renamed
  }
  {
    const Status s = WriteAll(fd, blob.data(), blob.size(), tmp);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  if (::fsync(fd) < 0) {
    ::close(fd);
    return ErrnoStatus("fsync", tmp);
  }
  ::close(fd);

  // The rename is the commit point: before it recovery sees the old
  // snapshot (WAL still covers the delta), after it the new one (replay
  // skips the absorbed prefix by index). The directory fsync makes the
  // rename itself power-cut durable.
  WN_RETURN_IF_ERROR(fault::Check(kFaultSnapshotRename));
  if (::rename(tmp.c_str(), SnapshotPath(options_.dir).c_str()) < 0) {
    return ErrnoStatus("rename", tmp);
  }
  return FsyncPath(options_.dir, O_RDONLY | O_DIRECTORY);
}

Status MutableTable::LoadSnapshot(
    std::vector<std::vector<int64_t>>* column_values,
    uint64_t* absorbed) const {
  column_values->assign(options_.columns.size(), {});
  *absorbed = 0;

  const std::string path = SnapshotPath(options_.dir);
  std::string data;
  bool found = false;
  WN_RETURN_IF_ERROR(ReadFileIfExists(path, &data, &found));
  if (!found) return Status::OK();  // fresh table

  size_t offset = 0;
  std::string_view payload;
  if (ReadFrame(data, &offset, &payload) != FrameRead::kOk) {
    return CorruptSnapshot("unreadable header frame in '" + path + "'");
  }
  PayloadReader header(payload);
  uint8_t type = 0;
  uint16_t name_len = 0, n_columns = 0;
  std::string_view name;
  if (!header.ReadU8(&type) || type != kHeader ||
      !header.ReadU64(absorbed) || !header.ReadU16(&name_len) ||
      !header.ReadString(name_len, &name) || !header.ReadU16(&n_columns)) {
    return CorruptSnapshot("malformed header in '" + path + "'");
  }
  if (name != options_.name) {
    return Status::InvalidArgument("snapshot holds table '" +
                                   std::string(name) + "', expected '" +
                                   options_.name + "'");
  }
  if (n_columns != options_.columns.size()) {
    return Status::InvalidArgument(
        "snapshot has " + std::to_string(n_columns) + " columns, schema has " +
        std::to_string(options_.columns.size()));
  }

  uint64_t rows = 0;
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    if (ReadFrame(data, &offset, &payload) != FrameRead::kOk) {
      return CorruptSnapshot("unreadable column frame in '" + path + "'");
    }
    PayloadReader col(payload);
    uint16_t col_name_len = 0;
    std::string_view col_name;
    uint64_t n_rows = 0;
    if (!col.ReadU8(&type) || type != kColumn || !col.ReadU16(&col_name_len) ||
        !col.ReadString(col_name_len, &col_name) || !col.ReadU64(&n_rows)) {
      return CorruptSnapshot("malformed column frame in '" + path + "'");
    }
    if (col_name != options_.columns[c]) {
      return Status::InvalidArgument("snapshot column '" +
                                     std::string(col_name) +
                                     "' does not match schema column '" +
                                     options_.columns[c] + "'");
    }
    if (c == 0) {
      rows = n_rows;
    } else if (n_rows != rows) {
      return CorruptSnapshot("ragged columns in '" + path + "'");
    }
    std::vector<int64_t>& out = (*column_values)[c];
    out.resize(n_rows);
    for (uint64_t r = 0; r < n_rows; ++r) {
      if (!col.ReadI64(&out[r])) {
        return CorruptSnapshot("short column frame in '" + path + "'");
      }
    }
  }
  return Status::OK();
}

Status MutableTable::DrainOnce() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);

  std::shared_ptr<const Epoch> old_epoch;
  std::shared_ptr<const DeltaBatch> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_epoch = epoch_;
    batch = delta_store_->Snapshot(old_epoch->absorbed);
  }
  if (batch->empty()) return Status::OK();
  const uint64_t target = batch->first_row_index() + batch->num_rows();

  // Merge base + delta into plain value vectors. Both inputs are
  // immutable (the epoch is published, the batch snapshotted), so this
  // runs lock-free while ingest and queries proceed.
  const cs::Table& base = old_epoch->db->table(options_.name);
  const uint64_t base_rows = base.num_rows();
  std::vector<std::vector<int64_t>> merged(options_.columns.size());
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    merged[c].reserve(base_rows + batch->num_rows());
    if (base_rows > 0) {
      const cs::Column& col = base.column(options_.columns[c]);
      for (uint64_t r = 0; r < base_rows; ++r) merged[c].push_back(col.Get(r));
    }
    for (uint64_t r = 0; r < batch->num_rows(); ++r) {
      merged[c].push_back(batch->Get(r, c));
    }
  }

  WN_RETURN_IF_ERROR(fault::Check(kFaultSwapReencode));
  WN_ASSIGN_OR_RETURN(std::shared_ptr<const Epoch> next,
                      BuildEpoch(merged, target));
  WN_RETURN_IF_ERROR(WriteSnapshot(merged, target));

  {
    std::lock_guard<std::mutex> lock(mu_);
    WN_RETURN_IF_ERROR(fault::Check(kFaultSwapPublish));
    epoch_ = std::move(next);
    delta_store_->Fold(target);
    ++swaps_;
    if (delta_store_->total_rows() == target) {
      // Quiesced: the durable snapshot covers every logged row, so the
      // log can restart empty. (Buffered, uncommitted appends survive in
      // the writer and re-commit with indices >= target.) When ingest
      // raced past `target` the log keeps both halves and replay filters
      // by index; a truncate failure degrades the same way — the log
      // just stays longer than it needs to be.
      (void)wal_->Truncate();
    }
  }
  return Status::OK();
}

void MutableTable::DrainLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait(lock, [&] {
      return stop_ ||
             delta_store_->pending_rows() >= options_.drain_threshold;
    });
    if (stop_) break;
    lock.unlock();
    const Status drained = Drain();
    lock.lock();
    if (!drained.ok()) {
      cv_.wait_for(lock, std::chrono::milliseconds(options_.backoff_ms),
                   [&] { return stop_; });
    }
  }
}

}  // namespace wastenot::storage
