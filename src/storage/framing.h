// Length+checksum record framing shared by the WAL and the base-snapshot
// file (DESIGN.md §9.1): [u32 payload_len][u32 crc32c(payload)][payload].
//
// Every durable byte the storage layer writes goes through this frame, so
// a reader can always tell "valid record", "torn tail" (fewer bytes than
// the header promises) and "corrupt record" (checksum mismatch) apart —
// the three cases WAL replay must distinguish to truncate instead of
// aborting. Integers are host-endian (the files are node-local state, not
// an interchange format).

#ifndef WASTENOT_STORAGE_FRAMING_H_
#define WASTENOT_STORAGE_FRAMING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/crc32c.h"

namespace wastenot::storage {

/// Bytes the frame header adds in front of a payload.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Payloads above this are rejected as corrupt on read (no legitimate
/// record comes close; a garbage length would otherwise make the reader
/// wait for gigabytes of "torn tail").
inline constexpr uint32_t kMaxFramePayload = 1u << 28;

/// Appends [len][crc][payload] to `out`.
inline void AppendFrame(std::string* out, std::string_view payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = util::Crc32c(payload.data(), payload.size());
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out->append(payload.data(), payload.size());
}

/// Outcome of reading one frame at an offset of a byte buffer.
enum class FrameRead : uint8_t {
  kOk,       ///< `payload` set, frame occupies header + payload bytes
  kTorn,     ///< buffer ends before the frame does (crash mid-write)
  kCorrupt,  ///< checksum mismatch or implausible length (bit rot / torn
             ///< write that happened to leave enough bytes behind)
};

/// Reads the frame starting at `data[offset]`; on kOk sets `payload` (a
/// view into `data`) and advances `offset` past the frame.
inline FrameRead ReadFrame(std::string_view data, size_t* offset,
                           std::string_view* payload) {
  if (data.size() - *offset < kFrameHeaderBytes) return FrameRead::kTorn;
  uint32_t len = 0, crc = 0;
  std::memcpy(&len, data.data() + *offset, sizeof(len));
  std::memcpy(&crc, data.data() + *offset + sizeof(len), sizeof(crc));
  if (len > kMaxFramePayload) return FrameRead::kCorrupt;
  if (data.size() - *offset - kFrameHeaderBytes < len) return FrameRead::kTorn;
  const char* p = data.data() + *offset + kFrameHeaderBytes;
  if (util::Crc32c(p, len) != crc) return FrameRead::kCorrupt;
  *payload = std::string_view(p, len);
  *offset += kFrameHeaderBytes + len;
  return FrameRead::kOk;
}

/// Little serialization helpers for frame payloads (host-endian).
inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
inline void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked reads; return false when the payload is too short (a
/// corrupt-but-checksummed record — only reachable through version skew,
/// so callers surface IoError rather than asserting).
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU16(uint16_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadString(size_t len, std::string_view* v) {
    if (data_.size() - pos_ < len) return false;
    *v = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool ReadRaw(void* v, size_t n) {
    if (data_.size() - pos_ < n) return false;
    std::memcpy(v, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace wastenot::storage

#endif  // WASTENOT_STORAGE_FRAMING_H_
