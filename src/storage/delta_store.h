// DeltaStore: the row-major append buffer between ingest and the packed
// BWD representation (DESIGN.md §9.2).
//
// Appended rows land here (host-resident, exact, row-major) and become
// queryable immediately: every engine unions a DeltaBatch snapshot into
// its result — delta rows are always "candidates" in the paper's A&R
// sense, and their values are exact, so the residual check is a direct
// evaluation (no decomposition, no device round trip). The background
// re-decomposition thread drains rows past a threshold into a new base
// table + BwdTable and Fold()s them out of the store.
//
// Rows carry absolute ingest indices (rows since table creation) so a
// store rebuilt by WAL replay and an epoch published by a swap agree on
// which rows the base already absorbed.

#ifndef WASTENOT_STORAGE_DELTA_STORE_H_
#define WASTENOT_STORAGE_DELTA_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace wastenot::storage {

/// An immutable snapshot of delta rows, shared by queries: the engines
/// hold the shared_ptr for the whole execution, so a concurrent Fold can
/// never pull rows out from under a running query.
class DeltaBatch {
 public:
  DeltaBatch(std::vector<std::string> columns, std::vector<int64_t> values,
             uint64_t first_row_index)
      : columns_(std::move(columns)),
        values_(std::move(values)),
        first_row_index_(first_row_index) {}

  const std::vector<std::string>& columns() const { return columns_; }
  uint64_t num_columns() const { return columns_.size(); }
  uint64_t num_rows() const {
    return columns_.empty() ? 0 : values_.size() / columns_.size();
  }
  bool empty() const { return values_.empty(); }

  /// Absolute ingest index of row 0 of this batch.
  uint64_t first_row_index() const { return first_row_index_; }

  /// Position of `name` in columns(), or -1.
  int ColumnIndex(std::string_view name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  int64_t Get(uint64_t row, uint64_t col) const {
    return values_[row * columns_.size() + col];
  }

 private:
  std::vector<std::string> columns_;
  std::vector<int64_t> values_;  ///< row-major, num_rows × num_columns
  uint64_t first_row_index_ = 0;
};

/// Thread-safe append buffer of rows not yet folded into the base table.
class DeltaStore {
 public:
  /// `columns` fixes the append schema (one value per column, in order);
  /// `first_row_index` is the absolute ingest index of the first appended
  /// row (the snapshot's absorbed count during recovery, 0 for a fresh
  /// table).
  DeltaStore(std::vector<std::string> columns, uint64_t first_row_index = 0)
      : columns_(std::move(columns)),
        first_(first_row_index),
        next_(first_row_index) {}

  const std::vector<std::string>& columns() const { return columns_; }

  /// Appends one row; its absolute index is total_rows() before the call.
  Status Append(std::span<const int64_t> row);

  /// Absolute ingest index of the next row ( = rows ever appended, plus
  /// the recovery offset).
  uint64_t total_rows() const;

  /// Rows currently buffered ( = total_rows() - folded rows).
  uint64_t pending_rows() const;

  /// Immutable snapshot of the rows with absolute index in
  /// [from, total_rows()). `from` below the fold point clamps to it (those
  /// rows are gone — the base absorbed them). Cached: repeated snapshots
  /// between appends/folds share one batch.
  std::shared_ptr<const DeltaBatch> Snapshot(uint64_t from) const;

  /// Drops rows with absolute index < upto (they are durable in the base
  /// now). No-op when upto is behind the fold point.
  void Fold(uint64_t upto);

 private:
  const std::vector<std::string> columns_;

  mutable std::mutex mu_;
  std::vector<int64_t> values_;  ///< row-major, rows [first_, next_)
  uint64_t first_;               ///< absolute index of values_' row 0
  uint64_t next_;                ///< absolute index of the next append
  mutable std::shared_ptr<const DeltaBatch> cached_;
  mutable uint64_t cached_from_ = 0;
  mutable uint64_t cached_to_ = 0;
};

}  // namespace wastenot::storage

#endif  // WASTENOT_STORAGE_DELTA_STORE_H_
