// MutableTable: a crash-consistent, queryable, append-only fact table
// (DESIGN.md §9). It ties the storage layer together:
//
//   Append/Flush  rows go to the WAL (group commit, one fsync per Flush)
//                 and, once durable, into the DeltaStore — a Flush that
//                 returned OK survives any crash.
//   View()        a consistent {base Database, BwdTable, DeltaBatch}
//                 triple. Every engine executes against it: the base part
//                 runs the normal classic/A&R/streaming paths, the delta
//                 part is unioned in exactly (core/plan_exec.cpp), so
//                 results are bit-identical to a table that had already
//                 absorbed the delta rows.
//   drain thread  once the delta passes a threshold, a background pass
//                 rebuilds base+delta into a new cs::Table, re-runs the
//                 decomposition width choice on the *merged* value
//                 distribution (ComputeStats → DecompositionSpec::Plan),
//                 writes a durable base snapshot (tmp + fsync + rename),
//                 and publishes the new epoch while in-flight queries keep
//                 serving the old one (shared_ptr epochs). The WAL is
//                 truncated only when the snapshot covers every logged
//                 row; otherwise replay filters by absolute row index.
//
// Failure model: a failed re-decomposition (device OOM, injected fault)
// degrades service, never correctness — the table keeps answering from
// base+delta and the drain retries with backoff. Crash points threaded
// through every durability boundary (util/fault_injection.h) let the
// recovery fuzz kill the process anywhere and assert that Open() restores
// exactly the acknowledged rows.

#ifndef WASTENOT_STORAGE_MUTABLE_TABLE_H_
#define WASTENOT_STORAGE_MUTABLE_TABLE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bwd/bwd_table.h"
#include "columnstore/database.h"
#include "storage/delta_store.h"
#include "storage/wal.h"
#include "util/status.h"

namespace wastenot::storage {

/// Fault-injection sites on the re-decomposition swap path (the WAL has
/// its own, storage/wal.h).
inline constexpr char kFaultSnapshotWrite[] = "snapshot.write";
inline constexpr char kFaultSnapshotRename[] = "snapshot.rename";
inline constexpr char kFaultSwapReencode[] = "swap.reencode";
inline constexpr char kFaultSwapPublish[] = "swap.publish";

struct MutableTableOptions {
  /// Directory holding the table's durable state (wal.log, snapshot.tbl).
  /// Created if absent.
  std::string dir;
  /// Table name (what queries scan).
  std::string name = "fact";
  /// Append schema: one int64 value per column, in this order.
  std::vector<std::string> columns;
  /// Decomposition requests for the device representation. Empty = every
  /// schema column at the defaults (32 device bits, bit-packed).
  std::vector<bwd::DecomposeRequest> requests;
  /// Device for the decomposed representation; null = host-only (views
  /// carry no BwdTable, classic/streaming still work).
  device::Device* device = nullptr;
  /// Dimension tables cloned into every epoch's Database so classic plans
  /// can join against them; the entry matching `name` (if any) is skipped.
  const cs::Database* dims = nullptr;
  /// Committed-but-unabsorbed rows that trigger a background drain.
  uint64_t drain_threshold = 4096;
  /// Spawn the background drain thread. Off = drain only via Drain().
  bool background = true;
  /// Backoff before retrying a failed drain (device OOM degradation).
  uint64_t backoff_ms = 50;
};

/// A consistent point-in-time view of the table. Queries hold it for the
/// whole execution: the shared_ptrs keep the epoch's columns, device
/// allocations and delta rows alive across concurrent swaps and folds.
struct TableView {
  /// Base rows as a Database: the fact table plus cloned dimensions.
  std::shared_ptr<const cs::Database> db;
  /// Decomposed base representation; null when the table was opened
  /// without a device or the base is still empty (query classically).
  std::shared_ptr<const bwd::BwdTable> bwd;
  /// Durable rows the base has not absorbed (maybe empty).
  std::shared_ptr<const DeltaBatch> delta;
  uint64_t absorbed = 0;  ///< base rows ( = delta->first_row_index())
  uint64_t durable = 0;   ///< absorbed + delta rows

  /// What the engines take as ClassicOptions/ArOptions::delta.
  const DeltaBatch* delta_or_null() const {
    return (delta != nullptr && !delta->empty()) ? delta.get() : nullptr;
  }
};

/// Ingest/recovery counters (one consistent sample).
struct MutableTableStats {
  uint64_t appended_rows = 0;   ///< rows ever Append()ed (incl. buffered)
  uint64_t durable_rows = 0;    ///< rows covered by an OK Flush()
  uint64_t absorbed_rows = 0;   ///< rows in the published base epoch
  uint64_t buffered_rows = 0;   ///< appended - durable (lost on crash)
  uint64_t pending_rows = 0;    ///< durable - absorbed (served from delta)
  uint64_t swaps = 0;           ///< successful re-decomposition swaps
  uint64_t failed_swaps = 0;    ///< drains that errored (OOM/fault), retried
  uint64_t wal_commits = 0;     ///< group commits since Open
  uint64_t replayed_rows = 0;   ///< rows recovered from the WAL at Open
};

class MutableTable {
 public:
  /// Opens (or creates) the table at options.dir: loads the base snapshot
  /// if one exists, replays the WAL for rows the snapshot had not
  /// absorbed, and starts the drain thread. Crash-safe against any
  /// interleaving of its own writes: the snapshot is replaced atomically
  /// and WAL replay filters by absolute row index, so double-covered rows
  /// are skipped and torn tails truncated.
  static StatusOr<std::unique_ptr<MutableTable>> Open(
      MutableTableOptions options);

  /// Stops the drain thread. Buffered, unflushed appends are dropped —
  /// exactly what a crash would do to them; Flush() first to keep them.
  ~MutableTable();

  MutableTable(const MutableTable&) = delete;
  MutableTable& operator=(const MutableTable&) = delete;

  /// Buffers one row (schema order). Not durable or visible until
  /// Flush() returns OK.
  Status Append(std::span<const int64_t> row);

  /// Group-commits every buffered row (one WAL write + fsync) and
  /// publishes them to queries. Returns the durable row count. On error
  /// (injected fault, I/O) the rows stay buffered and a retry is safe —
  /// replay skips any duplicate records a failed fsync left behind.
  StatusOr<uint64_t> Flush();

  /// A consistent snapshot for query execution.
  TableView View() const;

  /// Synchronously drains every committed delta row into a new base
  /// epoch (the background thread runs this same pass). No-op when the
  /// delta is empty. On error the old epoch keeps serving.
  Status Drain();

  MutableTableStats Stats() const;

  const std::string& name() const { return options_.name; }
  const std::vector<std::string>& columns() const { return options_.columns; }

  /// Durable file names within options.dir.
  static std::string WalPath(const std::string& dir);
  static std::string SnapshotPath(const std::string& dir);

 private:
  /// One published generation of the base table. Immutable once built;
  /// `bwd` borrows dictionaries/columns from `db`'s fact table, so the
  /// two travel together.
  struct Epoch {
    std::shared_ptr<cs::Database> db;
    std::shared_ptr<bwd::BwdTable> bwd;
    uint64_t absorbed = 0;
  };

  explicit MutableTable(MutableTableOptions options);

  Status Recover();
  /// Builds a fresh epoch from full column value vectors (row-major base
  /// content). Chooses i32/i64 physical columns, recomputes stats, and
  /// re-decomposes onto the device.
  StatusOr<std::shared_ptr<const Epoch>> BuildEpoch(
      const std::vector<std::vector<int64_t>>& column_values,
      uint64_t absorbed) const;
  /// Writes the base snapshot durably (tmp + fsync + rename + dir fsync).
  Status WriteSnapshot(const std::vector<std::vector<int64_t>>& column_values,
                       uint64_t absorbed) const;
  /// Loads the snapshot into `column_values`/`absorbed`; absent file
  /// leaves them empty/zero.
  Status LoadSnapshot(std::vector<std::vector<int64_t>>* column_values,
                      uint64_t* absorbed) const;
  Status DrainOnce();
  void DrainLoop();

  const MutableTableOptions options_;
  std::vector<bwd::DecomposeRequest> requests_;  ///< resolved (never empty)

  std::unique_ptr<DeltaStore> delta_store_;  ///< built by Recover (its
                                             ///< first_row_index is the
                                             ///< snapshot's absorbed count)
  std::unique_ptr<WalWriter> wal_;

  mutable std::mutex mu_;  ///< ingest + epoch publication + counters
  std::condition_variable cv_;
  std::shared_ptr<const Epoch> epoch_;
  std::vector<int64_t> buffered_;  ///< appended, not yet committed (row-major)
  uint64_t next_index_ = 0;        ///< absolute index of the next Append
  uint64_t swaps_ = 0;
  uint64_t failed_swaps_ = 0;
  uint64_t replayed_rows_ = 0;
  bool stop_ = false;

  std::mutex drain_mu_;  ///< serializes whole drain passes
  std::thread drain_thread_;
};

}  // namespace wastenot::storage

#endif  // WASTENOT_STORAGE_MUTABLE_TABLE_H_
