// Minimal redo log for crash-consistent ingest (DESIGN.md §9.1).
//
// The log is a sequence of CRC32C-framed records (src/storage/framing.h),
// two kinds:
//
//   kAppend  [u8 type][u64 row_index][u16 table_len][table]
//            [u16 n_values][i64 value]*        — one appended row, stamped
//            with its absolute ingest index (rows since table creation),
//   kCommit  [u8 type][u64 row_count]          — every preceding append is
//            durable; row_count is the ingest index after them.
//
// Appends buffer in memory; Commit() flushes the buffered appends plus
// one commit record with a single write() and a single fsync — group
// commit: N appends share one disk round trip. Replay applies *committed*
// appends only (a redo log: uncommitted tail records were never
// acknowledged) and stops at the first torn or corrupt record, truncating
// the file there instead of aborting — the crash model is "any prefix of
// the written bytes is on disk".
//
// Append records carry absolute row indices so recovery can skip rows the
// base snapshot already absorbed: after a background re-decomposition
// swap, the WAL is truncated only when every logged row is covered by the
// durable snapshot; when ingest raced the swap, the log keeps both halves
// and replay filters by index (see MutableTable::Open).

#ifndef WASTENOT_STORAGE_WAL_H_
#define WASTENOT_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace wastenot::storage {

/// Fault-injection sites the WAL threads through its durability
/// boundaries (util/fault_injection.h).
inline constexpr char kFaultWalWrite[] = "wal.write";
inline constexpr char kFaultWalFsync[] = "wal.fsync";
inline constexpr char kFaultWalTruncate[] = "wal.truncate";

/// Appends redo records to one log file. Not thread-safe (MutableTable
/// serializes ingest); reads never go through this class.
class WalWriter {
 public:
  /// Opens (creating if absent) `path` for appending. Recovery must run
  /// ReplayWal first so a torn tail has been truncated away.
  static StatusOr<std::unique_ptr<WalWriter>> Open(std::string path);

  /// Closes the fd. Buffered, uncommitted appends are dropped — exactly
  /// what a crash would do to them; call Commit() first to keep them.
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Buffers one append record (no I/O).
  Status Append(std::string_view table, uint64_t row_index,
                std::span<const int64_t> values);

  /// Writes the buffered appends plus a commit record covering them, then
  /// fsyncs: after OK, every appended row with index < committed_rows is
  /// durable. No-op when nothing is buffered.
  Status Commit(uint64_t committed_rows);

  /// Empties the log (ftruncate + fsync) — called after a re-decomposition
  /// swap is durable and covers every logged row. Buffered appends survive
  /// (they describe rows the snapshot does not cover).
  Status Truncate();

  /// Buffered-but-unwritten record bytes.
  uint64_t pending_bytes() const { return buffer_.size(); }
  /// Bytes durably written since Open.
  uint64_t synced_bytes() const { return synced_bytes_; }
  /// Commit (group-fsync) count since Open.
  uint64_t commits() const { return commits_; }

 private:
  WalWriter(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  std::string buffer_;  ///< framed append records awaiting Commit
  uint64_t synced_bytes_ = 0;
  uint64_t commits_ = 0;
};

/// Replay statistics (what recovery observed in the log).
struct WalReplayStats {
  uint64_t applied_rows = 0;    ///< committed appends delivered to `apply`
  uint64_t commits = 0;         ///< valid commit records
  uint64_t dropped_rows = 0;    ///< appends after the last valid commit
  uint64_t truncated_bytes = 0; ///< torn/corrupt tail bytes removed
};

/// One committed append during replay.
using WalApplyFn = std::function<Status(
    uint64_t row_index, std::string_view table, std::span<const int64_t>)>;

/// Replays the log at `path` (absent file = empty log), invoking `apply`
/// for every committed append in log order. Stops at the first torn or
/// corrupt record — never an error — and truncates the file back to the
/// last valid commit boundary so the writer appends onto a clean tail.
StatusOr<WalReplayStats> ReplayWal(const std::string& path,
                                   const WalApplyFn& apply);

}  // namespace wastenot::storage

#endif  // WASTENOT_STORAGE_WAL_H_
