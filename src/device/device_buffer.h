// DeviceBuffer: a handle to a region of (simulated) device memory.
//
// The bytes live in host RAM (there is no physical device), but ownership
// and capacity are tracked by the DeviceArena, so exceeding the simulated
// 2 GB fails exactly like a real cudaMalloc/clCreateBuffer would.

#ifndef WASTENOT_DEVICE_DEVICE_BUFFER_H_
#define WASTENOT_DEVICE_DEVICE_BUFFER_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "util/aligned_buffer.h"

namespace wastenot::device {

class DeviceArena;

/// Owning handle to device memory; releases its reservation on destruction.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { MoveFrom(std::move(other)); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~DeviceBuffer() { Release(); }

  uint8_t* data() { return storage_.data(); }
  const uint8_t* data() const { return storage_.data(); }
  uint64_t size() const { return size_; }
  bool valid() const { return arena_ != nullptr; }

  template <typename T>
  T* as() {
    return storage_.as<T>();
  }
  template <typename T>
  const T* as() const {
    return storage_.as<T>();
  }

 private:
  friend class DeviceArena;
  DeviceBuffer(DeviceArena* arena, uint64_t size)
      : arena_(arena), size_(size), storage_(size) {}

  void MoveFrom(DeviceBuffer&& other) {
    arena_ = std::exchange(other.arena_, nullptr);
    size_ = std::exchange(other.size_, 0);
    storage_ = std::move(other.storage_);
  }

  void Release();

  DeviceArena* arena_ = nullptr;
  uint64_t size_ = 0;
  AlignedBuffer storage_;
};

}  // namespace wastenot::device

#endif  // WASTENOT_DEVICE_DEVICE_BUFFER_H_
