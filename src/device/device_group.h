// DeviceGroup: N simulated co-processors behind per-device bus links.
//
// Each member is a full, independent `Device` — its own DeviceArena,
// SimClock, KernelCache, and worker pool — so shards execute with zero
// cross-device contention in either the real (host-thread) or simulated
// (cost-model) dimension. The group also owns one ResidencyCache per
// member for the streaming engine's sharded path.
//
// Link budgets: every member's DeviceSpec is stamped with a LinkSpec
// derived from the base spec (dedicated links by default; a shared-switch
// policy splits the aggregate bus bandwidth across members). Because all
// transfer charges flow through the member spec's pcie_* fields, per-link
// accounting needs no changes in Upload/Download/ChargeTransfer.
//
// Worker-thread sizing: member pools default to hardware_concurrency / N
// (at least 1) so an N-shard fan-out oversubscribes the host no more than
// a single device would. Pass worker_threads explicitly to override.

#ifndef WASTENOT_DEVICE_DEVICE_GROUP_H_
#define WASTENOT_DEVICE_DEVICE_GROUP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "device/cost_model.h"
#include "device/device.h"
#include "device/residency_cache.h"
#include "device/sim_clock.h"

namespace wastenot::device {

/// Configuration for a DeviceGroup.
struct DeviceGroupOptions {
  /// Number of member devices (>= 1; 0 is clamped to 1).
  uint32_t num_devices = 2;

  /// Spec every member derives from (memory capacity, kernel model, and
  /// the *base* bus budget the link policy divides or replicates).
  DeviceSpec base = DeviceSpec::Gtx680();

  /// false: one dedicated link per member, each with the base bus budget.
  /// true: members share a switch — per-link bandwidth is base / N and
  /// latency doubles (see MemberLink in cost_model.h).
  bool shared_switch = false;

  /// Worker threads per member device pool. 0 = hardware concurrency / N
  /// (at least 1), so the whole group saturates but does not oversubscribe
  /// the host.
  unsigned worker_threads = 0;
};

/// A fixed-size group of independent simulated devices plus one residency
/// cache per member. Thread-safe to *use* concurrently (each member Device
/// and ResidencyCache is itself thread-safe); construction and destruction
/// are single-threaded.
class DeviceGroup {
 public:
  explicit DeviceGroup(DeviceGroupOptions options = {});

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(devices_.size()); }
  const DeviceGroupOptions& options() const { return options_; }

  Device& device(uint32_t i) { return *devices_[i]; }
  const Device& device(uint32_t i) const { return *devices_[i]; }
  ResidencyCache& cache(uint32_t i) { return *caches_[i]; }

  /// The bus budget member `i` was built with.
  const LinkSpec& link(uint32_t i) const { return links_[i]; }

  /// Aggregate simulated-time view across all members. Parallel devices
  /// overlap, so the group-level elapsed time of a fan-out is the *max*
  /// member clock, while `sum` preserves total work for utilization math.
  struct ClockAggregate {
    double max_device_seconds = 0;
    double max_bus_seconds = 0;
    double sum_device_seconds = 0;
    double sum_bus_seconds = 0;
  };
  ClockAggregate AggregateClocks() const;

  /// Resets every member clock (benchmark epochs).
  void ResetClocks();

 private:
  DeviceGroupOptions options_;
  std::vector<LinkSpec> links_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<ResidencyCache>> caches_;
};

}  // namespace wastenot::device

#endif  // WASTENOT_DEVICE_DEVICE_GROUP_H_
