// SimClock: thread-safe accumulator of simulated time, split by phase.
// Every device kernel and bus transfer charges it; benchmarks read it to
// print the GPU/CPU/PCI breakdowns of Figs 9 and 10.
//
// Concurrent query serving (DESIGN.md §3.3) needs *per-query* attribution
// on top of the global totals: when N interleaved queries share one
// device, "snapshot the clock before and after" charges every concurrent
// query's kernels to whoever happened to be measuring. QueryScope is the
// fix — a scoped accounting channel that captures exactly the charges made
// by its own thread while it is alive, while the global counters keep
// accumulating everything.

#ifndef WASTENOT_DEVICE_SIM_CLOCK_H_
#define WASTENOT_DEVICE_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace wastenot::device {

/// Categories of simulated (and measured) time in an execution breakdown.
enum class Phase : uint8_t { kDeviceCompute = 0, kBusTransfer = 1, kHostCompute = 2 };

/// Accumulates seconds per phase. Add() is lock-free and thread-safe.
class SimClock {
 public:
  void Add(Phase phase, double seconds) {
    // Accumulate in nanoseconds to use fetch_add on integers. QueryScopes
    // receive the *same* integer quantum, so per-query attributions sum
    // exactly (in nanoseconds) to the global delta they were charged under.
    const uint64_t nanos = static_cast<uint64_t>(seconds * 1e9);
    counters_[static_cast<int>(phase)].fetch_add(nanos,
                                                 std::memory_order_relaxed);
    for (QueryScope* s = tls_top(); s != nullptr; s = s->parent_) {
      if (s->clock_ == this) s->nanos_[static_cast<int>(phase)] += nanos;
    }
  }

  double Seconds(Phase phase) const {
    return static_cast<double>(Nanos(phase)) * 1e-9;
  }

  /// Raw accumulated nanoseconds of one phase (exact-integer bookkeeping;
  /// concurrency tests pin per-query sums against this).
  uint64_t Nanos(Phase phase) const {
    return counters_[static_cast<int>(phase)].load(std::memory_order_relaxed);
  }

  double device_seconds() const { return Seconds(Phase::kDeviceCompute); }
  double bus_seconds() const { return Seconds(Phase::kBusTransfer); }
  double host_seconds() const { return Seconds(Phase::kHostCompute); }
  double total_seconds() const {
    return device_seconds() + bus_seconds() + host_seconds();
  }

  void Reset() {
    for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  }

  /// Snapshot of the three phase totals.
  struct Breakdown {
    double device = 0;
    double bus = 0;
    double host = 0;
    double total() const { return device + bus + host; }
  };
  Breakdown snapshot() const {
    return Breakdown{device_seconds(), bus_seconds(), host_seconds()};
  }

  /// Per-query accounting channel: while alive, captures every charge the
  /// *constructing thread* makes against `clock` (the global counters are
  /// unaffected — they still see everything). RAII-scoped and stackable:
  /// nested scopes on the same clock each receive the charge, so a serving
  /// layer can wrap an engine that opens its own scope. Charges made by
  /// other threads — including concurrent queries on the same device — are
  /// never attributed here, which is exactly what makes interleaved
  /// executions' breakdowns independent. Must be destroyed on the
  /// constructing thread, in LIFO order with any other live scopes there.
  class QueryScope {
   public:
    explicit QueryScope(SimClock* clock)
        : clock_(clock), parent_(tls_top()) {
      tls_top() = this;
    }
    ~QueryScope() { tls_top() = parent_; }

    QueryScope(const QueryScope&) = delete;
    QueryScope& operator=(const QueryScope&) = delete;

    /// Nanoseconds this scope's thread charged `clock` in `phase`.
    uint64_t Nanos(Phase phase) const {
      return nanos_[static_cast<int>(phase)];
    }
    double Seconds(Phase phase) const {
      return static_cast<double>(Nanos(phase)) * 1e-9;
    }
    double device_seconds() const { return Seconds(Phase::kDeviceCompute); }
    double bus_seconds() const { return Seconds(Phase::kBusTransfer); }

   private:
    friend class SimClock;
    SimClock* clock_;
    QueryScope* parent_;  ///< next-outer scope on this thread (any clock)
    uint64_t nanos_[3] = {0, 0, 0};
  };

 private:
  /// Top of the constructing thread's scope stack (across all clocks).
  static QueryScope*& tls_top() {
    static thread_local QueryScope* top = nullptr;
    return top;
  }

  std::atomic<uint64_t> counters_[3] = {0, 0, 0};
};

}  // namespace wastenot::device

#endif  // WASTENOT_DEVICE_SIM_CLOCK_H_
