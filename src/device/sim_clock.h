// SimClock: thread-safe accumulator of simulated time, split by phase.
// Every device kernel and bus transfer charges it; benchmarks read it to
// print the GPU/CPU/PCI breakdowns of Figs 9 and 10.

#ifndef WASTENOT_DEVICE_SIM_CLOCK_H_
#define WASTENOT_DEVICE_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace wastenot::device {

/// Categories of simulated (and measured) time in an execution breakdown.
enum class Phase : uint8_t { kDeviceCompute = 0, kBusTransfer = 1, kHostCompute = 2 };

/// Accumulates seconds per phase. Add() is lock-free and thread-safe.
class SimClock {
 public:
  void Add(Phase phase, double seconds) {
    // Accumulate in nanoseconds to use fetch_add on integers.
    counters_[static_cast<int>(phase)].fetch_add(
        static_cast<uint64_t>(seconds * 1e9), std::memory_order_relaxed);
  }

  double Seconds(Phase phase) const {
    return static_cast<double>(
               counters_[static_cast<int>(phase)].load(
                   std::memory_order_relaxed)) *
           1e-9;
  }

  double device_seconds() const { return Seconds(Phase::kDeviceCompute); }
  double bus_seconds() const { return Seconds(Phase::kBusTransfer); }
  double host_seconds() const { return Seconds(Phase::kHostCompute); }
  double total_seconds() const {
    return device_seconds() + bus_seconds() + host_seconds();
  }

  void Reset() {
    for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  }

  /// Snapshot of the three phase totals.
  struct Breakdown {
    double device = 0;
    double bus = 0;
    double host = 0;
    double total() const { return device + bus + host; }
  };
  Breakdown snapshot() const {
    return Breakdown{device_seconds(), bus_seconds(), host_seconds()};
  }

 private:
  std::atomic<uint64_t> counters_[3] = {0, 0, 0};
};

}  // namespace wastenot::device

#endif  // WASTENOT_DEVICE_SIM_CLOCK_H_
