#include "device/cost_model.h"

#include <algorithm>

#include "util/env.h"

namespace wastenot::device {

DeviceSpec DeviceSpec::Gtx680() {
  DeviceSpec spec;
  spec.memory_capacity = static_cast<uint64_t>(
      EnvInt64("WN_DEVICE_MEM", static_cast<int64_t>(spec.memory_capacity)));
  return spec;
}

double KernelSeconds(const DeviceSpec& spec, uint64_t bytes_read,
                     uint64_t bytes_written, uint64_t ops) {
  const double mem_time = static_cast<double>(bytes_read + bytes_written) /
                          (spec.memory_bandwidth * spec.kernel_efficiency);
  const double compute_time =
      static_cast<double>(ops) / spec.compute_throughput;
  // Memory and compute overlap on a GPU; the kernel is bound by the slower.
  return spec.launch_overhead + std::max(mem_time, compute_time);
}

double HashKernelSeconds(const DeviceSpec& spec, uint64_t bytes_read,
                         uint64_t bytes_written, uint64_t ops,
                         uint64_t distinct_keys) {
  const double base = KernelSeconds(spec, bytes_read, bytes_written, ops);
  // Expected number of intra-warp colliding writes per atomic update:
  // with W lanes hitting K buckets uniformly, a lane serializes behind
  // (W-1)/K others on average. K >= W means nearly conflict-free.
  const double k = static_cast<double>(std::max<uint64_t>(distinct_keys, 1));
  const double serialization =
      1.0 + static_cast<double>(spec.warp_width - 1) / k;
  return spec.launch_overhead + (base - spec.launch_overhead) * serialization;
}

double TransferSeconds(const DeviceSpec& spec, uint64_t bytes) {
  if (bytes == 0) return 0.0;
  return spec.pcie_latency + static_cast<double>(bytes) / spec.pcie_bandwidth;
}

LinkSpec MemberLink(const DeviceSpec& base, uint32_t num_devices,
                    bool shared_switch) {
  LinkSpec link{base.pcie_bandwidth, base.pcie_latency};
  if (shared_switch && num_devices > 1) {
    link.bandwidth = base.pcie_bandwidth / static_cast<double>(num_devices);
    link.latency = base.pcie_latency * 2.0;  // one extra switch hop
  }
  return link;
}

DeviceSpec WithLink(DeviceSpec spec, const LinkSpec& link) {
  spec.pcie_bandwidth = link.bandwidth;
  spec.pcie_latency = link.latency;
  return spec;
}

double LinkTransferSeconds(const LinkSpec& link, uint64_t bytes) {
  if (bytes == 0) return 0.0;
  return link.latency + static_cast<double>(bytes) / link.bandwidth;
}

}  // namespace wastenot::device
