#include "device/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/env.h"

namespace wastenot::device {

DeviceSpec DeviceSpec::Gtx680() {
  DeviceSpec spec;
  spec.memory_capacity = static_cast<uint64_t>(
      EnvInt64("WN_DEVICE_MEM", static_cast<int64_t>(spec.memory_capacity)));
  return spec;
}

double KernelSeconds(const DeviceSpec& spec, uint64_t bytes_read,
                     uint64_t bytes_written, uint64_t ops) {
  const double mem_time = static_cast<double>(bytes_read + bytes_written) /
                          (spec.memory_bandwidth * spec.kernel_efficiency);
  const double compute_time =
      static_cast<double>(ops) / spec.compute_throughput;
  // Memory and compute overlap on a GPU; the kernel is bound by the slower.
  return spec.launch_overhead + std::max(mem_time, compute_time);
}

double HashKernelSeconds(const DeviceSpec& spec, uint64_t bytes_read,
                         uint64_t bytes_written, uint64_t ops,
                         uint64_t distinct_keys) {
  const double base = KernelSeconds(spec, bytes_read, bytes_written, ops);
  // Expected number of intra-warp colliding writes per atomic update:
  // with W lanes hitting K buckets uniformly, a lane serializes behind
  // (W-1)/K others on average. K >= W means nearly conflict-free.
  const double k = static_cast<double>(std::max<uint64_t>(distinct_keys, 1));
  const double serialization =
      1.0 + static_cast<double>(spec.warp_width - 1) / k;
  return spec.launch_overhead + (base - spec.launch_overhead) * serialization;
}

double TransferSeconds(const DeviceSpec& spec, uint64_t bytes) {
  if (bytes == 0) return 0.0;
  return spec.pcie_latency + static_cast<double>(bytes) / spec.pcie_bandwidth;
}

LinkSpec MemberLink(const DeviceSpec& base, uint32_t num_devices,
                    bool shared_switch) {
  LinkSpec link{base.pcie_bandwidth, base.pcie_latency};
  if (shared_switch && num_devices > 1) {
    link.bandwidth = base.pcie_bandwidth / static_cast<double>(num_devices);
    link.latency = base.pcie_latency * 2.0;  // one extra switch hop
  }
  return link;
}

DeviceSpec WithLink(DeviceSpec spec, const LinkSpec& link) {
  spec.pcie_bandwidth = link.bandwidth;
  spec.pcie_latency = link.latency;
  return spec;
}

double LinkTransferSeconds(const LinkSpec& link, uint64_t bytes) {
  if (bytes == 0) return 0.0;
  return link.latency + static_cast<double>(bytes) / link.bandwidth;
}

ServingEstimate EstimateServingCost(const DeviceSpec& spec,
                                    const ServingWorkload& w) {
  ServingEstimate est;
  const double rows = static_cast<double>(w.rows);
  const uint32_t value_bits = std::max<uint32_t>(w.value_bits, 1);
  const uint32_t d = std::min(std::max<uint32_t>(w.device_bits, 1), value_bits);
  const uint32_t preds = std::max<uint32_t>(w.num_predicates, 1);
  const uint32_t aggs = std::max<uint32_t>(w.num_aggregates, 1);
  const double sel = std::clamp(w.selectivity, 0.0, 1.0);
  const double hit = std::clamp(w.cache_hit_rate, 0.0, 1.0);
  // Column footprint on the host side: 4-byte values (every workload in the
  // repo stores i32 columns), one column per predicate and aggregate term.
  const uint64_t host_bytes =
      w.rows * 4ull * (static_cast<uint64_t>(preds) + aggs);

  // --- A&R -----------------------------------------------------------------
  // A range predicate over 2^d digits misclassifies only rows whose digit
  // sits on one of the two interval boundaries: a 2^(1-d) fraction of a
  // uniform domain per predicate. Fully resident (d == value_bits) means no
  // ambiguity at all.
  const double fp_band =
      d >= value_bits ? 0.0
                      : std::min(1.0, static_cast<double>(preds) *
                                          std::ldexp(1.0, 1 - static_cast<int>(d)));
  const double cand = std::min(1.0, sel + fp_band) * rows;
  est.expected_candidates = static_cast<uint64_t>(cand);
  // Phase A: every predicate streams the packed column; every aggregate
  // gathers its candidates' digits (byte-clamped, like PackedReadBytes).
  const uint64_t scan_bytes =
      static_cast<uint64_t>(preds) * PackedReadBytes(d, w.rows, false) +
      static_cast<uint64_t>(aggs) *
          PackedReadBytes(d, static_cast<uint64_t>(cand), true);
  const double phase_a = KernelSeconds(
      spec, scan_bytes, static_cast<uint64_t>(cand) * 5,
      w.rows * (preds + aggs));
  // Phase boundary: candidate ids + per-column approximate values.
  const uint64_t boundary_bytes = static_cast<uint64_t>(
      cand * (4.0 + static_cast<double>(aggs) * ((d + 7) / 8)));
  const double bus = TransferSeconds(spec, boundary_bytes);
  // Phase R: per-candidate reconstruction and re-test on the host.
  const double phase_r =
      cand * (preds + aggs) * w.host_refine_ns * 1e-9;
  est.ar_seconds = phase_a + bus + phase_r;

  // --- classic -------------------------------------------------------------
  est.classic_seconds =
      static_cast<double>(host_bytes) / std::max(w.host_bandwidth, 1.0);

  // --- streaming -----------------------------------------------------------
  // On-demand inputs: misses re-cross the bus; the kernel then runs over
  // the full-width columns on the device.
  const double stream_transfer = TransferSeconds(
      spec, static_cast<uint64_t>(static_cast<double>(host_bytes) * (1.0 - hit)));
  const double stream_kernel = KernelSeconds(
      spec, host_bytes, static_cast<uint64_t>(sel * rows) * 8,
      w.rows * (preds + aggs));
  est.streaming_seconds = stream_transfer + stream_kernel;
  return est;
}

uint32_t ChooseDeviceBits(const DeviceSpec& spec, ServingWorkload w) {
  const uint32_t value_bits = std::max<uint32_t>(w.value_bits, 1);
  uint32_t best_bits = 1;
  double best_cost = 0;
  for (uint32_t d = 1; d <= value_bits; ++d) {
    w.device_bits = d;
    const double cost = EstimateServingCost(spec, w).ar_seconds;
    if (d == 1 || cost < best_cost) {
      best_bits = d;
      best_cost = cost;
    }
  }
  return best_bits;
}

}  // namespace wastenot::device
