// Device specification and simulated-time cost model.
//
// The paper evaluates on GeForce GTX 680 cards (2 GB device memory) behind
// a PCI-E bus with a measured DMA bandwidth of 3.95 GB/s (paper §VI-A).
// This repository has no GPU, so `device::Device` executes kernels on host
// threads over the real bit-packed data and *additionally* charges a
// simulated clock according to this model. The model captures exactly the
// three effects every result in the paper depends on:
//
//   1. device memory bandwidth >> PCI-E bandwidth (192.2 vs 3.95 GB/s),
//   2. a hard device-memory capacity (2 GB) that the hot set may exceed,
//   3. serialization of conflicting atomic writes in massively parallel
//      hash builds (paper §IV-D/§IV-E and the Fig 8f group-count effect).
//
// All parameters are configurable so ablations can explore other devices.

#ifndef WASTENOT_DEVICE_COST_MODEL_H_
#define WASTENOT_DEVICE_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace wastenot::device {

/// Physical characteristics of the (simulated) co-processor and its bus.
struct DeviceSpec {
  std::string name = "SimGTX680";

  /// Device-internal memory bandwidth in bytes/second (GTX 680: 192.2 GB/s).
  double memory_bandwidth = 192.2e9;

  /// Fraction of peak bandwidth the JIT-generated, bit-unpacking kernels
  /// actually sustain. Calibrated against the paper's measured GTX 680
  /// numbers (Fig 8a: ~10-15 ms approximate selections over 100 M packed
  /// ints ≈ 15 % of peak) — the paper explicitly skips hardware-specific
  /// tuning (§V-C), so its kernels run far below peak.
  double kernel_efficiency = 0.15;

  /// Host<->device bus bandwidth in bytes/second. The paper measured
  /// 3.95 GB/s DMA transfers with AMD's TransferOverlap tool (§VI-A).
  double pcie_bandwidth = 3.95e9;

  /// Fixed per-transfer latency (DMA setup), seconds.
  double pcie_latency = 15e-6;

  /// Fixed kernel launch overhead, seconds.
  double launch_overhead = 8e-6;

  /// One-time JIT compilation cost per distinct kernel (§V-C: OpenCL
  /// operator code is generated and compiled just-in-time), seconds.
  double jit_compile_seconds = 40e-3;

  /// Arithmetic throughput in simple integer ops/second (all SMs).
  double compute_throughput = 1.5e12;

  /// SIMT width; drives the atomic-conflict serialization model.
  uint32_t warp_width = 32;

  /// Device memory capacity in bytes (GTX 680: 2 GB).
  uint64_t memory_capacity = 2ull << 30;

  /// The paper's server: 2x GTX 680. Multi-GPU is used only for the
  /// throughput experiment (Fig 11) via dataset replication.
  uint32_t num_devices = 2;

  /// Returns the GTX 680 / paper-calibrated default spec, with the memory
  /// capacity optionally overridden via WN_DEVICE_MEM (bytes).
  static DeviceSpec Gtx680();
};

/// Host<->device bus budget of one DeviceGroup member's link. A group
/// either gives every member a dedicated link (each carrying the base
/// spec's full budget — the paper's 2x GTX 680 server has one PCI-E slot
/// per card) or hangs all members off a shared switch whose aggregate
/// bandwidth is split across them, with one extra hop of latency.
struct LinkSpec {
  double bandwidth = 3.95e9;  ///< bytes/second this link sustains
  double latency = 15e-6;     ///< fixed per-transfer setup time, seconds
};

/// Derives member-device link budgets from a base spec: dedicated links
/// replicate the base bus budget; a shared switch divides the bandwidth
/// evenly over `num_devices` members and adds a hop of latency.
LinkSpec MemberLink(const DeviceSpec& base, uint32_t num_devices,
                    bool shared_switch);

/// Returns `spec` with its bus budget replaced by `link`. Every transfer
/// charge flows through spec.pcie_*, so stamping a member's spec with its
/// link realizes per-link accounting with no call-site changes.
DeviceSpec WithLink(DeviceSpec spec, const LinkSpec& link);

/// Simulated cost of moving `bytes` over one link (same formula as
/// TransferSeconds, parameterized by the link budget).
double LinkTransferSeconds(const LinkSpec& link, uint64_t bytes);

/// Device-memory bytes read to fetch `count` packed digits of `width_bits`
/// bits each. A sequential scan streams exactly the packed payload; a
/// random-access gather (`gather` = true) touches at least one whole byte
/// per element, so sub-byte widths are clamped up. Every kernel that
/// charges for packed-digit reads must come through here so the sub-byte
/// accounting stays consistent across operators.
constexpr uint64_t PackedReadBytes(uint32_t width_bits, uint64_t count,
                                   bool gather) {
  if (gather) {
    const uint64_t bytes_per_elem =
        width_bits == 0 ? 1 : (width_bits + 7) / 8;
    return count * bytes_per_elem;
  }
  return (count * width_bits + 7) / 8;
}

/// Simulated cost of a streaming kernel over `bytes_read` + `bytes_written`
/// device-memory traffic and `ops` arithmetic operations.
double KernelSeconds(const DeviceSpec& spec, uint64_t bytes_read,
                     uint64_t bytes_written, uint64_t ops);

/// Simulated cost of a hash-building kernel (grouping, hash join build):
/// the streaming cost inflated by the expected atomic-write serialization
/// for `distinct_keys` destinations (paper: performance improves with the
/// number of groups due to fewer write conflicts, §VI-B).
double HashKernelSeconds(const DeviceSpec& spec, uint64_t bytes_read,
                         uint64_t bytes_written, uint64_t ops,
                         uint64_t distinct_keys);

/// Simulated cost of moving `bytes` across the PCI-E bus.
double TransferSeconds(const DeviceSpec& spec, uint64_t bytes);

// ---------------------------------------------------------------------------
// Serving-time estimates (the scheduler's cost-model query API).
//
// The adaptive serving layer (src/server/scheduler.h) prices every engine
// against the device spec *before* dispatch, from the little it can know at
// admission time: the scanned row count, the column widths, a selectivity
// estimate and the live residency-cache hit rate. These are deliberately
// coarse closed forms of the same model the simulated device charges —
// their job is to rank engines and widths, not to predict wall time.
// ---------------------------------------------------------------------------

/// One query's workload shape as the serving layer can estimate it.
struct ServingWorkload {
  uint64_t rows = 0;            ///< fact rows the query scans
  uint32_t value_bits = 32;     ///< significant bits of the scanned domain
  uint32_t device_bits = 16;    ///< device-resident approximation width
  uint32_t num_predicates = 1;  ///< approximate selections chained
  uint32_t num_aggregates = 1;  ///< value columns gathered per candidate
  double selectivity = 0.1;     ///< expected selected fraction, [0, 1]
  /// Residency-cache hit rate the streaming engine would see, [0, 1]
  /// (live signal; 1 = inputs resident, 0 = every byte re-transferred).
  double cache_hit_rate = 1.0;
  /// Host memory scan bandwidth for the classic engine, bytes/second.
  double host_bandwidth = 8e9;
  /// Per-candidate Phase-R cost (reconstruct + re-test), nanoseconds.
  double host_refine_ns = 4.0;
};

/// Estimated serving time per engine for one query (seconds).
struct ServingEstimate {
  double ar_seconds = 0;         ///< A&R: Phase A + candidate bus + Phase R
  double classic_seconds = 0;    ///< host-only column scan
  double streaming_seconds = 0;  ///< on-demand transfer (miss-weighted) + kernel
  /// Expected candidate-set size behind ar_seconds: selected rows plus the
  /// boundary-digit false-positive band, which shrinks as device_bits grow.
  uint64_t expected_candidates = 0;
};

/// Prices each engine for `w` on `spec`. Pure and deterministic — the
/// scheduler's policy tests pin its rankings.
ServingEstimate EstimateServingCost(const DeviceSpec& spec,
                                    const ServingWorkload& w);

/// Cost-optimal approximation width for `w` on `spec`: argmin over widths
/// 1..value_bits of the estimated A&R time (the Phase-A scan grows with the
/// width while candidate shipping and refinement shrink — the paper's
/// device-bits lever, Fig 8c). Ties break to the narrower width;
/// deterministic. `w.device_bits` is ignored.
uint32_t ChooseDeviceBits(const DeviceSpec& spec, ServingWorkload w);

}  // namespace wastenot::device

#endif  // WASTENOT_DEVICE_COST_MODEL_H_
