// Device: the simulated GPU co-processor.
//
// Executes data-parallel kernels over its own worker pool (SIMT stand-in)
// against buffers held in a capacity-enforced arena, charging a SimClock
// according to the calibrated cost model. Host<->device transfers go
// through Upload/Download, which charge PCI-E time.
//
// Substitution note (see DESIGN.md §2): results produced by kernels are
// real — they execute genuine C++ over the genuine packed data — while the
// *timing* attributed to the device comes from the cost model, reproducing
// the paper's hardware ratios on GPU-less machines.

#ifndef WASTENOT_DEVICE_DEVICE_H_
#define WASTENOT_DEVICE_DEVICE_H_

#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "device/cost_model.h"
#include "device/device_arena.h"
#include "device/kernel_cache.h"
#include "device/sim_clock.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace wastenot::device {

/// Resource footprint of one kernel launch, fed to the cost model.
struct LaunchCost {
  uint64_t elements = 0;       ///< grid size (one work item per tuple)
  uint64_t bytes_read = 0;     ///< device-memory bytes read
  uint64_t bytes_written = 0;  ///< device-memory bytes written
  uint64_t ops = 0;            ///< arithmetic ops (defaults to elements)
  /// >0 marks a conflicting-atomic-write kernel with this many distinct
  /// destinations (hash build / grouping); 0 = conflict-free streaming.
  uint64_t distinct_write_targets = 0;
};

/// A simulated co-processor: arena + worker pool + JIT cache + sim clock.
class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::Gtx680(),
                  unsigned worker_threads = 0);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  DeviceArena& arena() { return arena_; }
  SimClock& clock() { return clock_; }
  KernelCache& kernel_cache() { return kernel_cache_; }

  /// Allocates device memory.
  StatusOr<DeviceBuffer> Allocate(uint64_t bytes) {
    return arena_.Allocate(bytes);
  }

  /// Copies host memory into a fresh device buffer, charging PCI-E time.
  StatusOr<DeviceBuffer> Upload(const void* host_data, uint64_t bytes);

  /// Copies a device buffer back to host memory, charging PCI-E time.
  void Download(const DeviceBuffer& buffer, void* host_out, uint64_t bytes);

  /// Charges transfer time without moving data (used by the hypothetical
  /// streaming baseline, §VI-A: the minimal work any streaming system does).
  void ChargeTransfer(uint64_t bytes) {
    clock_.Add(Phase::kBusTransfer, TransferSeconds(spec_, bytes));
  }

  /// JIT-compiles (once) and launches a kernel: `body(begin, end)` is run
  /// grid-parallel over [0, cost.elements). Charges compile cost on the
  /// first use of a signature plus the modeled kernel time. Blocking.
  void Launch(const KernelSignature& signature, const LaunchCost& cost,
              const std::function<void(uint64_t, uint64_t)>& body);

  /// Sequential-launch variant for kernels whose stand-in host
  /// implementation is not parallel-safe; simulated cost is identical
  /// (the simulated device is always massively parallel).
  void LaunchSerial(const KernelSignature& signature, const LaunchCost& cost,
                    const std::function<void()>& body);

  /// Executes a grid without charging (for kernels whose output size is
  /// data-dependent: run first, then ChargeKernel with exact counts).
  void Run(uint64_t elements,
           const std::function<void(uint64_t, uint64_t)>& body);

  /// Charges JIT-compile (first use) + modeled kernel time only.
  void ChargeKernel(const KernelSignature& signature, const LaunchCost& cost) {
    Charge(signature, cost);
  }

 private:
  void Charge(const KernelSignature& signature, const LaunchCost& cost);

  DeviceSpec spec_;
  DeviceArena arena_;
  SimClock clock_;
  KernelCache kernel_cache_;
  ThreadPool pool_;
};

}  // namespace wastenot::device

#endif  // WASTENOT_DEVICE_DEVICE_H_
