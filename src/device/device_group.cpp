#include "device/device_group.h"

#include <algorithm>
#include <thread>

namespace wastenot::device {

DeviceGroup::DeviceGroup(DeviceGroupOptions options)
    : options_(std::move(options)) {
  const uint32_t n = std::max<uint32_t>(options_.num_devices, 1);
  unsigned per_device_threads = options_.worker_threads;
  if (per_device_threads == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    per_device_threads = std::max(1u, hw / n);
  }
  links_.reserve(n);
  devices_.reserve(n);
  caches_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    links_.push_back(MemberLink(options_.base, n, options_.shared_switch));
    devices_.push_back(std::make_unique<Device>(
        WithLink(options_.base, links_.back()), per_device_threads));
    caches_.push_back(std::make_unique<ResidencyCache>(devices_.back().get()));
  }
}

DeviceGroup::ClockAggregate DeviceGroup::AggregateClocks() const {
  ClockAggregate agg;
  for (const auto& dev : devices_) {
    const double d = dev->clock().device_seconds();
    const double b = dev->clock().bus_seconds();
    agg.max_device_seconds = std::max(agg.max_device_seconds, d);
    agg.max_bus_seconds = std::max(agg.max_bus_seconds, b);
    agg.sum_device_seconds += d;
    agg.sum_bus_seconds += b;
  }
  return agg;
}

void DeviceGroup::ResetClocks() {
  for (auto& dev : devices_) dev->clock().Reset();
}

}  // namespace wastenot::device
