#include "device/device_arena.h"

namespace wastenot::device {

StatusOr<DeviceBuffer> DeviceArena::Allocate(uint64_t bytes) {
  // Optimistic reservation with rollback keeps the fast path lock-free.
  const uint64_t prev = used_.fetch_add(bytes, std::memory_order_relaxed);
  if (prev + bytes > capacity_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::DeviceOutOfMemory(
        "device arena exhausted: requested " + std::to_string(bytes) +
        " bytes, " + std::to_string(capacity_ - prev > capacity_ ? 0
                                                                 : capacity_ - prev) +
        " available of " + std::to_string(capacity_));
  }
  DeviceBuffer buffer(this, bytes);
  if (bytes > 0 && buffer.data() == nullptr) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::OutOfMemory("host allocation backing device buffer failed");
  }
  return buffer;
}

void DeviceBuffer::Release() {
  if (arena_ != nullptr) {
    arena_->Free(size_);
    arena_ = nullptr;
  }
  size_ = 0;
}

}  // namespace wastenot::device
