#include "device/kernel_cache.h"

#include <atomic>
#include <sstream>

namespace wastenot::device {

std::string KernelSignature::CacheKey() const {
  std::ostringstream key;
  key << op << "/v" << value_bits << "/p" << packed_bits << "/b" << prefix_base
      << "/" << extra;
  return key.str();
}

double KernelCache::EnsureCompiled(const KernelSignature& sig,
                                   double compile_seconds) {
  const std::string key = sig.CacheKey();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(key);
  if (it != sources_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  sources_.emplace(key, GenerateKernelSource(sig));
  return compile_seconds;
}

std::string KernelCache::SourceOf(const KernelSignature& sig) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(sig.CacheKey());
  return it == sources_.end() ? std::string() : it->second;
}

uint64_t KernelCache::compiled_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sources_.size();
}

std::string GenerateKernelSource(const KernelSignature& sig) {
  // The shape of the generated code mirrors the paper's description: one
  // work item per tuple, unpacking `packed_bits`-wide values, adding the
  // prefix-compression base, and evaluating the specialized operation.
  std::ostringstream src;
  src << "// generated kernel: " << sig.CacheKey() << "\n"
      << "__kernel void " << sig.op << "(__global const uint* packed,\n"
      << "                              const ulong n,\n"
      << "                              __global uint* out) {\n"
      << "  const size_t gid = get_global_id(0);\n"
      << "  if (gid >= n) return;\n"
      << "  const ulong bitpos = gid * " << sig.packed_bits << "UL;\n"
      << "  ulong word = *(__global const ulong*)((__global const char*)packed"
      << " + (bitpos >> 3));\n"
      << "  uint value = (uint)((word >> (bitpos & 7)) & "
      << ((sig.packed_bits >= 64) ? ~0ull : ((1ull << sig.packed_bits) - 1))
      << "UL);\n"
      << "  // prefix decompression (base " << sig.prefix_base << ")\n"
      << "  const ulong v = (ulong)value + " << sig.prefix_base << "UL;\n"
      << "  // operator body: " << (sig.extra.empty() ? "<id>" : sig.extra)
      << "\n"
      << "}\n";
  return src.str();
}

}  // namespace wastenot::device
