#include "device/residency_cache.h"

namespace wastenot::device {

StatusOr<ResidencyCache::Access> ResidencyCache::Pin(const std::string& key,
                                                     const void* host_data,
                                                     uint64_t bytes) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    return Access{true, 0, &it->second.buffer};
  }

  ++misses_;
  if (bytes > device_->arena().capacity()) {
    return Status::DeviceOutOfMemory("buffer '" + key +
                                     "' exceeds device capacity outright");
  }
  // Evict least-recently-used entries until the upload fits.
  while (device_->arena().available() < bytes) {
    if (lru_.empty()) {
      return Status::DeviceOutOfMemory(
          "cannot make room for '" + key +
          "': arena holds non-cache allocations");
    }
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto vit = entries_.find(victim);
    resident_bytes_ -= vit->second.buffer.size();
    entries_.erase(vit);  // DeviceBuffer destructor returns the reservation
    ++evictions_;
  }

  WN_ASSIGN_OR_RETURN(DeviceBuffer buffer, device_->Upload(host_data, bytes));
  lru_.push_front(key);
  Entry entry{std::move(buffer), lru_.begin()};
  auto [pos, inserted] = entries_.emplace(key, std::move(entry));
  (void)inserted;
  resident_bytes_ += bytes;
  return Access{false, bytes, &pos->second.buffer};
}

void ResidencyCache::Clear() {
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

}  // namespace wastenot::device
