#include "device/residency_cache.h"

namespace wastenot::device {

StatusOr<ResidencyCache::Access> ResidencyCache::Pin(const std::string& key,
                                                     const void* host_data,
                                                     uint64_t bytes) {
  // One lock spans lookup, eviction and upload: racing streams pinning the
  // same key serialize, so the second sees the first's entry and hits
  // instead of uploading a duplicate. Holding the lock across the upload
  // also serializes concurrent misses (and stalls hits behind them) —
  // accepted deliberately: a real device has one DMA engine per direction,
  // so concurrent host→device transfers serialize on the bus anyway, and
  // the simulated upload is memcpy-speed. If hit latency under large
  // concurrent uploads ever matters, per-entry upload states (placeholder
  // + shared_future) can narrow the critical section.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.buffer->size() == bytes) {
      ++hits_;
      lru_.erase(it->second.lru_pos);
      lru_.push_front(key);
      it->second.lru_pos = lru_.begin();
      return Access{true, 0, it->second.buffer};
    }
    // Stale entry: the host data under this key changed size, so the
    // cached buffer is the wrong shape. Invalidate and fall through to the
    // miss path to re-upload at the new size.
    lru_.erase(it->second.lru_pos);
    resident_bytes_ -= it->second.buffer->size();
    entries_.erase(it);
  }

  ++misses_;
  if (bytes > device_->arena().capacity()) {
    return Status::DeviceOutOfMemory("buffer '" + key +
                                     "' exceeds device capacity outright");
  }
  // Evict least-recently-used entries until the upload fits, then retry
  // the upload if it still fails: the arena is shared with users outside
  // this cache's mutex (direct allocations, another cache on the same
  // device), so headroom observed by the availability check can be gone by
  // allocation time. An evicted buffer still pinned by another stream
  // keeps its arena reservation, so the loop keeps evicting (and may
  // report DeviceOutOfMemory) until enough unreferenced bytes free up.
  DeviceBuffer buffer;
  for (;;) {
    while (device_->arena().available() < bytes) {
      if (lru_.empty()) {
        return Status::DeviceOutOfMemory(
            "cannot make room for '" + key +
            "': remaining arena bytes are held by non-cache allocations "
            "or by evicted entries still referenced by other streams");
      }
      const std::string victim = lru_.back();
      lru_.pop_back();
      auto vit = entries_.find(victim);
      resident_bytes_ -= vit->second.buffer->size();
      entries_.erase(vit);  // last reference releases the reservation
      ++evictions_;
    }
    StatusOr<DeviceBuffer> uploaded = device_->Upload(host_data, bytes);
    if (uploaded.ok()) {
      buffer = std::move(uploaded).value();
      break;
    }
    if (!uploaded.status().IsDeviceOutOfMemory() || lru_.empty()) {
      return uploaded.status();
    }
  }
  lru_.push_front(key);
  Entry entry{std::make_shared<DeviceBuffer>(std::move(buffer)), lru_.begin()};
  auto [pos, inserted] = entries_.emplace(key, std::move(entry));
  (void)inserted;
  resident_bytes_ += pos->second.buffer->size();
  return Access{false, bytes, pos->second.buffer};
}

void ResidencyCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

}  // namespace wastenot::device
