// ResidencyCache: LRU cache of device-resident copies of host data, the
// model behind the "GPU streaming" comparison point (paper §VI-A/§VI-C):
// a streaming system transfers inputs on demand and caches them for reuse;
// once the hot set exceeds device memory, an LRU policy thrashes — every
// run of the same query re-transfers its inputs because they were just
// evicted (the Fig 9 worst case).

#ifndef WASTENOT_DEVICE_RESIDENCY_CACHE_H_
#define WASTENOT_DEVICE_RESIDENCY_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "device/device.h"
#include "util/status.h"

namespace wastenot::device {

/// LRU-managed set of named device buffers backed by a Device's arena.
///
/// Thread-safe: concurrent Pin/Clear calls from multiple query streams
/// serialize on an internal mutex (DESIGN.md §3.3), so a key is uploaded
/// at most once however many streams race to pin it, and the hit/miss/
/// eviction counters stay consistent. Returned buffers are shared_ptrs:
/// an entry another stream evicts (or Clear drops) stays alive — and keeps
/// its arena reservation — until the last holder releases it.
class ResidencyCache {
 public:
  explicit ResidencyCache(Device* device) : device_(device) {}

  /// Ensures a device copy of `host_data` named `key` exists, uploading it
  /// (and evicting LRU entries if needed) on a miss. A key match whose
  /// cached buffer size differs from `bytes` is stale (the host data was
  /// re-encoded or grew): it is invalidated and re-uploaded, counting as a
  /// miss. Returns whether the call was a hit and how many bytes were
  /// transferred.
  struct Access {
    bool hit = false;
    uint64_t bytes_transferred = 0;
    std::shared_ptr<const DeviceBuffer> buffer;
  };
  StatusOr<Access> Pin(const std::string& key, const void* host_data,
                       uint64_t bytes);

  /// Drops every cached buffer.
  void Clear();

  uint64_t hits() const { return Stat(hits_); }
  uint64_t misses() const { return Stat(misses_); }
  uint64_t evictions() const { return Stat(evictions_); }
  /// Bytes of buffers currently owned by the cache (outstanding shared_ptr
  /// references to evicted buffers are not counted, though they still hold
  /// their arena reservation until released).
  uint64_t resident_bytes() const { return Stat(resident_bytes_); }

 private:
  struct Entry {
    std::shared_ptr<DeviceBuffer> buffer;
    std::list<std::string>::iterator lru_pos;
  };

  uint64_t Stat(const uint64_t& counter) const {
    std::lock_guard<std::mutex> lock(mu_);
    return counter;
  }

  Device* device_;
  mutable std::mutex mu_;  ///< guards everything below
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t resident_bytes_ = 0;
};

}  // namespace wastenot::device

#endif  // WASTENOT_DEVICE_RESIDENCY_CACHE_H_
