// ResidencyCache: LRU cache of device-resident copies of host data, the
// model behind the "GPU streaming" comparison point (paper §VI-A/§VI-C):
// a streaming system transfers inputs on demand and caches them for reuse;
// once the hot set exceeds device memory, an LRU policy thrashes — every
// run of the same query re-transfers its inputs because they were just
// evicted (the Fig 9 worst case).

#ifndef WASTENOT_DEVICE_RESIDENCY_CACHE_H_
#define WASTENOT_DEVICE_RESIDENCY_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "device/device.h"
#include "util/status.h"

namespace wastenot::device {

/// LRU-managed set of named device buffers backed by a Device's arena.
class ResidencyCache {
 public:
  explicit ResidencyCache(Device* device) : device_(device) {}

  /// Ensures a device copy of `host_data` named `key` exists, uploading it
  /// (and evicting LRU entries if needed) on a miss. Returns whether the
  /// call was a hit and how many bytes were transferred.
  struct Access {
    bool hit = false;
    uint64_t bytes_transferred = 0;
    const DeviceBuffer* buffer = nullptr;
  };
  StatusOr<Access> Pin(const std::string& key, const void* host_data,
                       uint64_t bytes);

  /// Drops every cached buffer.
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t resident_bytes() const { return resident_bytes_; }

 private:
  struct Entry {
    DeviceBuffer buffer;
    std::list<std::string>::iterator lru_pos;
  };

  Device* device_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t resident_bytes_ = 0;
};

}  // namespace wastenot::device

#endif  // WASTENOT_DEVICE_RESIDENCY_CACHE_H_
