// DeviceArena: capacity-enforced allocator for simulated device memory.
// Allocations beyond the configured capacity fail with
// Status::DeviceOutOfMemory — the condition that forces bitwise
// decomposition (store fewer bits) or streaming (re-transfer per query).

#ifndef WASTENOT_DEVICE_DEVICE_ARENA_H_
#define WASTENOT_DEVICE_DEVICE_ARENA_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "device/device_buffer.h"
#include "util/status.h"

namespace wastenot::device {

/// Tracks simulated device-memory usage against a hard capacity.
/// Thread-safe.
class DeviceArena {
 public:
  explicit DeviceArena(uint64_t capacity) : capacity_(capacity) {}

  DeviceArena(const DeviceArena&) = delete;
  DeviceArena& operator=(const DeviceArena&) = delete;

  /// Reserves and zero-fills `bytes` of device memory.
  StatusOr<DeviceBuffer> Allocate(uint64_t bytes);

  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t available() const { return capacity_ - used(); }

 private:
  friend class DeviceBuffer;
  void Free(uint64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  const uint64_t capacity_;
  std::atomic<uint64_t> used_{0};
};

}  // namespace wastenot::device

#endif  // WASTENOT_DEVICE_DEVICE_ARENA_H_
