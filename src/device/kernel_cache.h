// KernelCache: the JIT-compilation model of paper §V-C.
//
// "To yield efficient code, the OpenCL operator code is generated and
//  compiled just-in-time. The code is generated using the data type, the
//  decomposition as well as compression-strategy as parameters."
//
// The simulated device executes C++ functors, but the cache faithfully
// models the JIT pipeline: each distinct (operator, type, decomposition,
// compression) signature generates a kernel source string, pays a one-time
// simulated compile cost, and is reused afterwards. The generated source is
// retained for introspection/tests (and mirrors what the real system would
// hand to the OpenCL compiler).

#ifndef WASTENOT_DEVICE_KERNEL_CACHE_H_
#define WASTENOT_DEVICE_KERNEL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace wastenot::device {

/// Parameters a kernel is specialized on (paper §V-C).
struct KernelSignature {
  std::string op;            ///< e.g. "uselect_approximate"
  uint32_t value_bits = 32;  ///< logical value width
  uint32_t packed_bits = 32; ///< physical packed width on the device
  int64_t prefix_base = 0;   ///< prefix-compression base
  std::string extra;         ///< operator-specific variant (predicate kind…)

  std::string CacheKey() const;
};

/// Thread-safe compile-once cache of generated kernels.
class KernelCache {
 public:
  /// Ensures the kernel for `sig` is compiled. Returns the simulated
  /// compile cost incurred by *this* call (the JIT compile time on a miss,
  /// 0.0 on a hit) so the caller can charge its SimClock.
  double EnsureCompiled(const KernelSignature& sig, double compile_seconds);

  /// The generated source of a compiled kernel ("" if not compiled).
  std::string SourceOf(const KernelSignature& sig) const;

  uint64_t compiled_count() const;
  uint64_t hit_count() const { return hits_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> sources_;
  std::atomic<uint64_t> hits_{0};
};

/// Renders a plausible OpenCL-ish kernel source for a signature. Pure
/// function; used by the cache and directly testable.
std::string GenerateKernelSource(const KernelSignature& sig);

}  // namespace wastenot::device

#endif  // WASTENOT_DEVICE_KERNEL_CACHE_H_
