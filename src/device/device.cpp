#include "device/device.h"

#include <algorithm>

#include "util/env.h"
#include "util/logging.h"

namespace wastenot::device {

Device::Device(DeviceSpec spec, unsigned worker_threads)
    : spec_(std::move(spec)),
      arena_(spec_.memory_capacity),
      pool_(worker_threads != 0
                ? worker_threads
                : static_cast<unsigned>(EnvInt64("WN_DEVICE_THREADS", 0))) {}

StatusOr<DeviceBuffer> Device::Upload(const void* host_data, uint64_t bytes) {
  WN_ASSIGN_OR_RETURN(DeviceBuffer buffer, arena_.Allocate(bytes));
  if (bytes > 0) std::memcpy(buffer.data(), host_data, bytes);
  clock_.Add(Phase::kBusTransfer, TransferSeconds(spec_, bytes));
  return buffer;
}

void Device::Download(const DeviceBuffer& buffer, void* host_out,
                      uint64_t bytes) {
  if (bytes > 0) std::memcpy(host_out, buffer.data(), bytes);
  clock_.Add(Phase::kBusTransfer, TransferSeconds(spec_, bytes));
}

void Device::Charge(const KernelSignature& signature, const LaunchCost& cost) {
  const double compile =
      kernel_cache_.EnsureCompiled(signature, spec_.jit_compile_seconds);
  const uint64_t ops = cost.ops != 0 ? cost.ops : cost.elements;
  const double kernel_time =
      cost.distinct_write_targets > 0
          ? HashKernelSeconds(spec_, cost.bytes_read, cost.bytes_written, ops,
                              cost.distinct_write_targets)
          : KernelSeconds(spec_, cost.bytes_read, cost.bytes_written, ops);
  WN_LOG_DEBUG << "kernel " << signature.CacheKey() << ": elements="
               << cost.elements << " read=" << cost.bytes_read
               << " written=" << cost.bytes_written
               << " time=" << (compile + kernel_time) * 1e3 << "ms";
  clock_.Add(Phase::kDeviceCompute, compile + kernel_time);
}

void Device::Launch(const KernelSignature& signature, const LaunchCost& cost,
                    const std::function<void(uint64_t, uint64_t)>& body) {
  Charge(signature, cost);
  ParallelFor(pool_, cost.elements, body);
}

void Device::LaunchSerial(const KernelSignature& signature,
                          const LaunchCost& cost,
                          const std::function<void()>& body) {
  Charge(signature, cost);
  body();
}

void Device::Run(uint64_t elements,
                 const std::function<void(uint64_t, uint64_t)>& body) {
  ParallelFor(pool_, elements, body);
}

}  // namespace wastenot::device
