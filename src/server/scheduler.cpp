#include "server/scheduler.h"

#include <algorithm>
#include <cmath>

namespace wastenot::server {

namespace {

/// The decision rules shared by ChooseEngine and ChoosePlanEngine: take a
/// priced estimate, apply the contention penalty, pick the cheapest engine,
/// then the queue-pressure degrade rule. Keeping the rules in one place is
/// what makes spec and plan decisions agree whenever their estimates do.
SchedulerDecision DecideFromEstimate(const device::ServingEstimate& est,
                                     uint32_t device_bits,
                                     const ServingSignals& signals,
                                     const PolicyOptions& policy) {
  SchedulerDecision decision;
  decision.device_bits = device_bits;
  // A busy device serves this query later and slower; the host does not.
  const double penalty =
      1.0 + policy.contention_penalty *
                std::clamp(signals.device_contention, 0.0, 1.0);
  decision.est_ar_seconds = est.ar_seconds * penalty;
  decision.est_classic_seconds = est.classic_seconds;
  decision.est_streaming_seconds = est.streaming_seconds * penalty;

  decision.engine = EngineKind::kAr;
  decision.reason = "ar cheapest";
  double best = decision.est_ar_seconds;
  if (decision.est_classic_seconds < best) {
    decision.engine = EngineKind::kClassic;
    decision.reason = "classic cheapest";
    best = decision.est_classic_seconds;
  }
  if (decision.est_streaming_seconds < best) {
    decision.engine = EngineKind::kStreaming;
    decision.reason = "streaming cheapest";
    best = decision.est_streaming_seconds;
  }
  // Queue pressure: shed device work whenever the host answer is within
  // degrade_ratio of the best estimate — the queue drains on host time
  // the device-bound engines would only lengthen.
  if (signals.queue_fill >= policy.degrade_queue_fill &&
      decision.engine != EngineKind::kClassic &&
      decision.est_classic_seconds <= policy.degrade_ratio * best) {
    decision.engine = EngineKind::kClassic;
    decision.degraded = true;
    decision.reason = "queue pressure: degraded to classic";
  }
  return decision;
}

}  // namespace

SchedulerDecision ChooseEngine(const device::DeviceSpec& spec,
                               device::ServingWorkload workload,
                               const ServingSignals& signals,
                               const PolicyOptions& policy) {
  workload.cache_hit_rate = signals.cache_hit_rate;
  return DecideFromEstimate(device::EstimateServingCost(spec, workload),
                            device::ChooseDeviceBits(spec, workload), signals,
                            policy);
}

SchedulerDecision ChoosePlanEngine(const device::DeviceSpec& spec,
                                   const core::PhysicalPlan& plan,
                                   device::ServingWorkload workload,
                                   const ServingSignals& signals,
                                   const PolicyOptions& policy) {
  workload.cache_hit_rate = signals.cache_hit_rate;
  return DecideFromEstimate(core::EstimatePlanCost(spec, plan, workload),
                            device::ChooseDeviceBits(spec, workload), signals,
                            policy);
}

AdaptiveScheduler::AdaptiveScheduler(QueryServer::Backend backend,
                                     SchedulerOptions options)
    : backend_(backend),
      options_([&options] {
        if (options.capacity == 0) {
          options.capacity =
              std::max<uint64_t>(1, options.server.queue_capacity);
        }
        return options;
      }()),
      server_(backend, options_.server) {
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

AdaptiveScheduler::~AdaptiveScheduler() { Shutdown(); }

AdaptiveScheduler::Tenant& AdaptiveScheduler::TenantLocked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, Tenant{}).first;
    it->second.weight = std::max(options_.default_tenant_weight, 1e-6);
    total_weight_ += it->second.weight;
  }
  return it->second;
}

uint64_t AdaptiveScheduler::BudgetLocked(const Tenant& tenant) const {
  const double share =
      total_weight_ > 0 ? tenant.weight / total_weight_ : 1.0;
  return std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(options_.capacity) * share));
}

void AdaptiveScheduler::RegisterTenant(const std::string& tenant,
                                       double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  weight = std::max(weight, 1e-6);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    Tenant t;
    t.weight = weight;
    total_weight_ += weight;
    tenants_.emplace(tenant, std::move(t));
  } else {
    total_weight_ += weight - it->second.weight;
    it->second.weight = weight;
  }
  // Every budget just moved; submitters blocked on the old shares rewait.
  budget_cv_.notify_all();
}

void AdaptiveScheduler::ResolveCancelled(Entry&& entry, Status status) {
  ApproximateResponse approx;
  approx.status = status;
  approx.exact_fallback = true;
  entry.progressive->Resolve(std::move(approx));
  QueryResponse response;
  response.status = std::move(status);
  entry.refined.set_value(std::move(response));
}

bool AdaptiveScheduler::EnqueueTenant(const std::string& name, Entry&& entry,
                                      bool blocking, ProgressiveFutures* out) {
  entry.progressive = std::make_shared<ProgressiveState>();
  ProgressiveFutures futures;
  futures.approximate = entry.progressive->promise.get_future();
  futures.refined = entry.refined.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    Tenant& tenant = TenantLocked(name);
    if (blocking) {
      // Backpressure lands on this tenant's own submitter: it waits for
      // its *own* budget, never for another tenant's traffic.
      budget_cv_.wait(lock, [this, &tenant] {
        return shutdown_ || tenant.in_flight() < BudgetLocked(tenant);
      });
    }
    if (shutdown_) {
      if (!blocking) return false;
      // Submit after/through Shutdown: resolve rather than block forever.
      lock.unlock();
      ResolveCancelled(std::move(entry),
                       Status::Internal("scheduler is shut down"));
      *out = std::move(futures);
      return true;
    }
    if (tenant.in_flight() >= BudgetLocked(tenant)) {  // !blocking only
      ++tenant.stats.rejected;
      return false;
    }
    // WFQ virtual finish tag: a tenant's entries finish 1/weight apart in
    // virtual time, so a flood from one tenant interleaves with — never
    // displaces — the others' occasional entries.
    entry.vtag = std::max(virtual_time_, tenant.last_vtag) +
                 1.0 / std::max(tenant.weight, 1e-9);
    tenant.last_vtag = entry.vtag;
    ++tenant.stats.submitted;
    tenant.entries.push_back(std::move(entry));
    dispatch_cv_.notify_one();
  }
  *out = std::move(futures);
  return true;
}

ProgressiveFutures AdaptiveScheduler::Submit(const std::string& tenant,
                                             core::QuerySpec query) {
  Entry entry;
  entry.query = std::move(query);
  ProgressiveFutures futures;
  EnqueueTenant(tenant, std::move(entry), /*blocking=*/true, &futures);
  return futures;
}

ProgressiveFutures AdaptiveScheduler::Submit(const std::string& tenant,
                                             core::PhysicalPlan plan) {
  Entry entry;
  entry.plan = std::move(plan);
  ProgressiveFutures futures;
  EnqueueTenant(tenant, std::move(entry), /*blocking=*/true, &futures);
  return futures;
}

bool AdaptiveScheduler::TrySubmit(const std::string& tenant,
                                  core::QuerySpec query,
                                  ProgressiveFutures* out) {
  Entry entry;
  entry.query = std::move(query);
  return EnqueueTenant(tenant, std::move(entry), /*blocking=*/false, out);
}

bool AdaptiveScheduler::TrySubmit(const std::string& tenant,
                                  core::PhysicalPlan plan,
                                  ProgressiveFutures* out) {
  Entry entry;
  entry.plan = std::move(plan);
  return EnqueueTenant(tenant, std::move(entry), /*blocking=*/false, out);
}

Status AdaptiveScheduler::Append(const std::string& tenant_name,
                                 std::span<const int64_t> row) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return Status::Internal("scheduler is shut down");
  Tenant& tenant = TenantLocked(tenant_name);
  if (tenant.in_flight() >= BudgetLocked(tenant)) {
    ++tenant.stats.ingest_rejected;
    return Status::OutOfMemory("tenant '" + tenant_name +
                               "' is at its outstanding-work budget; "
                               "FlushIngest releases the pending charge");
  }
  // Under mu_ so the charge is atomic with the admission check; the inner
  // append is a buffered write (the fsync is FlushIngest's), so this holds
  // the scheduler lock for a memcpy, not an I/O stall.
  Status appended = server_.Append(row);
  if (!appended.ok()) {
    ++tenant.stats.ingest_rejected;  // server delta backlog at capacity
    return appended;
  }
  ++tenant.stats.ingest_rows;
  ++tenant.pending_ingest_rows;
  return Status::OK();
}

StatusOr<uint64_t> AdaptiveScheduler::FlushIngest(
    const std::string& tenant_name) {
  // The fsync happens outside mu_ — dispatch keeps running while the
  // commit is in flight; the charge is only released once it stuck.
  StatusOr<uint64_t> durable = server_.FlushIngest();
  if (!durable.ok()) return durable;
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& tenant = TenantLocked(tenant_name);
  tenant.pending_ingest_rows = 0;
  budget_cv_.notify_all();
  return durable;
}

device::ServingWorkload AdaptiveScheduler::EstimateWorkload(
    const core::QuerySpec& query) const {
  std::vector<std::pair<std::string, cs::RangePred>> preds;
  preds.reserve(query.predicates.size());
  for (const core::Predicate& pred : query.predicates) {
    preds.emplace_back(pred.column, pred.range);
  }
  return EstimateWorkloadFromShape(preds, query.aggregates.size());
}

device::ServingWorkload AdaptiveScheduler::EstimateWorkload(
    const core::PhysicalPlan& plan) const {
  // Hop-0 filters stand in for the predicates — they are what the Phase-A
  // scan over the fact table prices; deeper filters and extra joins are
  // EstimatePlanCost's per-node increments, not part of the base shape.
  std::vector<std::pair<std::string, cs::RangePred>> preds;
  for (const auto& op : plan.ops) {
    if (const auto* f = std::get_if<core::FilterNode>(&op)) {
      if (f->hop == 0) preds.emplace_back(f->column, f->range);
    }
  }
  return EstimateWorkloadFromShape(preds, plan.group_agg.aggregates.size());
}

device::ServingWorkload AdaptiveScheduler::EstimateWorkloadFromShape(
    const std::vector<std::pair<std::string, cs::RangePred>>& preds,
    size_t num_aggregates) const {
  device::ServingWorkload w = options_.workload;
  const bwd::BwdTable* fact = backend_.fact;
  if (backend_.sharded_fact != nullptr &&
      !backend_.sharded_fact->shards.empty()) {
    // All shards share one DecompositionSpec per column (partition
    // invariant 2), so shard 0 speaks for the table.
    fact = &backend_.sharded_fact->shards.front();
    w.rows = backend_.sharded_fact->num_rows();
  } else if (fact != nullptr) {
    w.rows = fact->num_rows();
  }
  w.num_predicates = static_cast<uint32_t>(std::max<size_t>(1, preds.size()));
  w.num_aggregates =
      static_cast<uint32_t>(std::max<size_t>(1, num_aggregates));
  if (fact == nullptr) return w;  // ServingWorkload defaults stand in

  double selectivity = 1.0;
  uint32_t value_bits = 0;
  uint32_t device_bits = 64;
  bool any = false;
  for (const auto& [column, range] : preds) {
    if (!fact->HasColumn(column)) continue;
    const bwd::DecompositionSpec& spec = fact->column(column).spec();
    any = true;
    value_bits = std::max(value_bits, spec.value_bits);
    device_bits = std::min(device_bits, spec.approximation_bits());
    // Uniform-domain selectivity: intersect the predicate range with the
    // column's rebased domain [prefix_base, prefix_base + 2^value_bits)
    // first — half-open predicates (Lt/Gt) carry an INT64 sentinel on the
    // unbounded side that would otherwise swamp the width.
    const double domain =
        std::ldexp(1.0, static_cast<int>(std::min<uint32_t>(
                        std::max<uint32_t>(spec.value_bits, 1), 62)));
    const double base = static_cast<double>(spec.prefix_base);
    const double lo = std::max(static_cast<double>(range.lo), base);
    const double hi =
        std::min(static_cast<double>(range.hi), base + domain - 1.0);
    const double width = std::clamp(hi - lo + 1.0, 0.0, domain);
    selectivity *= width / domain;
  }
  if (any) {
    w.value_bits = std::max<uint32_t>(value_bits, 1);
    w.device_bits = std::max<uint32_t>(std::min(device_bits, value_bits), 1);
    w.selectivity = selectivity;
  }
  return w;
}

namespace {

const device::DeviceSpec& SpecOf(const QueryServer::Backend& backend) {
  if (backend.device != nullptr) return backend.device->spec();
  if (backend.group != nullptr && backend.group->size() > 0) {
    return backend.group->device(0).spec();
  }
  static const device::DeviceSpec kDefault = device::DeviceSpec::Gtx680();
  return kDefault;
}

}  // namespace

ServingSignals AdaptiveScheduler::SampleSignals() {
  ServingSignals signals;
  const uint64_t capacity =
      std::max<uint64_t>(1, options_.server.queue_capacity);
  signals.queue_fill = std::min(
      1.0, static_cast<double>(server_.queue_depth()) /
               static_cast<double>(capacity));

  uint64_t hits = 0;
  uint64_t misses = 0;
  if (backend_.group != nullptr) {
    for (uint32_t i = 0; i < backend_.group->size(); ++i) {
      hits += backend_.group->cache(i).hits();
      misses += backend_.group->cache(i).misses();
    }
  } else {
    hits = server_.streaming_cache().hits();
    misses = server_.streaming_cache().misses();
  }
  signals.cache_hit_rate =
      hits + misses == 0
          ? 1.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);

  // Contention: simulated busy-seconds accrued per wall-second per device
  // since the previous sample, clamped to [0, 1]. The clocks aggregate
  // per-query attribution across the group, so this reads as "how much of
  // the device fleet the currently-running queries are consuming".
  double busy = 0;
  double num_devices = 1;
  if (backend_.group != nullptr && backend_.group->size() > 0) {
    const device::DeviceGroup::ClockAggregate agg =
        backend_.group->AggregateClocks();
    busy = agg.sum_device_seconds + agg.sum_bus_seconds;
    num_devices = static_cast<double>(backend_.group->size());
  } else if (backend_.device != nullptr) {
    busy = backend_.device->clock().device_seconds() +
           backend_.device->clock().bus_seconds();
  }
  {
    std::lock_guard<std::mutex> lock(signals_mu_);
    const double wall = signals_uptime_.Seconds();
    const double wall_delta = wall - prev_wall_seconds_;
    if (wall_delta > 1e-6) {
      last_contention_ = std::clamp(
          (busy - prev_busy_seconds_) / (num_devices * wall_delta), 0.0, 1.0);
      prev_wall_seconds_ = wall;
      prev_busy_seconds_ = busy;
    }
    signals.device_contention = last_contention_;
  }
  return signals;
}

SchedulerDecision AdaptiveScheduler::Decide(const core::QuerySpec& query) {
  return ChooseEngine(SpecOf(backend_), EstimateWorkload(query),
                      SampleSignals(), options_.policy);
}

SchedulerDecision AdaptiveScheduler::Decide(const core::PhysicalPlan& plan) {
  return ChoosePlanEngine(SpecOf(backend_), plan, EstimateWorkload(plan),
                          SampleSignals(), options_.policy);
}

void AdaptiveScheduler::DispatchLoop() {
  for (;;) {
    Entry entry;
    std::string name;
    bool tenant_degrade = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      dispatch_cv_.wait(lock, [this] {
        if (shutdown_) return true;
        for (const auto& [tenant_name, tenant] : tenants_) {
          (void)tenant_name;
          if (!tenant.entries.empty()) return true;
        }
        return false;
      });
      if (shutdown_) return;
      // Weighted fair pick: the nonempty tenant whose head entry has the
      // smallest virtual finish tag.
      Tenant* best = nullptr;
      for (auto& [tenant_name, tenant] : tenants_) {
        if (tenant.entries.empty()) continue;
        if (best == nullptr ||
            tenant.entries.front().vtag < best->entries.front().vtag) {
          best = &tenant;
          name = tenant_name;
        }
      }
      entry = std::move(best->entries.front());
      best->entries.pop_front();
      virtual_time_ = std::max(virtual_time_, entry.vtag);
      ++best->outstanding;
      // Tenant-budget pressure rule: a tenant consuming at least
      // tenant_degrade_fill of its share is degraded to the classic
      // engine — exact answers still flow, device time goes to the rest.
      tenant_degrade =
          static_cast<double>(best->in_flight()) >=
          options_.policy.tenant_degrade_fill *
              static_cast<double>(BudgetLocked(*best));
    }

    SchedulerDecision decision =
        entry.plan.has_value()
            ? ChoosePlanEngine(SpecOf(backend_), *entry.plan,
                               EstimateWorkload(*entry.plan), SampleSignals(),
                               options_.policy)
            : ChooseEngine(SpecOf(backend_), EstimateWorkload(entry.query),
                           SampleSignals(), options_.policy);
    if (tenant_degrade && decision.engine != EngineKind::kClassic) {
      decision.engine = EngineKind::kClassic;
      decision.degraded = true;
      decision.reason = "tenant over budget share: degraded to classic";
    }

    QueryRequest request;
    request.query = std::move(entry.query);
    request.plan = std::move(entry.plan);
    request.engine = decision.engine;
    request.on_complete = [this, name](const QueryResponse&) {
      std::lock_guard<std::mutex> lock(mu_);
      Tenant& tenant = tenants_[name];
      if (tenant.outstanding > 0) --tenant.outstanding;
      ++tenant.stats.completed;
      budget_cv_.notify_all();
    };
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++dispatched_[static_cast<size_t>(decision.engine)];
      Tenant& tenant = tenants_[name];
      ++tenant.stats.dispatched;
      if (decision.degraded) {
        ++degraded_;
        ++tenant.stats.degraded;
      }
    }
    // Blocking hand-off: a full server queue stalls dispatch (and through
    // WFQ, every tenant's drain rate) rather than dropping work. During
    // shutdown the server resolves the promises with the refusal itself.
    server_.SubmitAdopted(std::move(request), std::move(entry.refined),
                          std::move(entry.progressive));
  }
}

void AdaptiveScheduler::Shutdown() {
  // Serializes concurrent Shutdown callers (e.g. an explicit Shutdown
  // racing the destructor), like QueryServer::Shutdown.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::deque<std::pair<std::string, Entry>> cancelled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      for (auto& [tenant_name, tenant] : tenants_) {
        while (!tenant.entries.empty()) {
          cancelled.emplace_back(tenant_name,
                                 std::move(tenant.entries.front()));
          tenant.entries.pop_front();
          ++tenant.stats.cancelled;
        }
      }
      cancelled_ += cancelled.size();
    }
  }
  dispatch_cv_.notify_all();
  budget_cv_.notify_all();
  // Scheduler-queued entries resolve both futures of their progressive
  // pair — no waiter is left hanging across a shutdown.
  for (auto& [tenant_name, entry] : cancelled) {
    (void)tenant_name;
    ResolveCancelled(std::move(entry),
                     Status::Internal("scheduler shut down before dispatch"));
  }
  // Unblocks a dispatcher stalled in SubmitAdopted (the server resolves
  // that entry's promises with the refusal) and cancels server-queued
  // requests (their on_complete hooks fire back into this scheduler,
  // which is why no lock is held here).
  server_.Shutdown();
  if (dispatcher_.joinable()) dispatcher_.join();
}

SchedulerStats AdaptiveScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats out;
  out.dispatched = dispatched_;
  out.degraded = degraded_;
  out.cancelled = cancelled_;
  for (const auto& [tenant_name, tenant] : tenants_) {
    TenantStats s = tenant.stats;
    s.weight = tenant.weight;
    s.queued = tenant.entries.size();
    s.outstanding = tenant.outstanding;
    s.budget = BudgetLocked(tenant);
    s.pending_ingest_rows = tenant.pending_ingest_rows;
    out.rejected += s.rejected;
    out.tenants.emplace(tenant_name, std::move(s));
  }
  return out;
}

}  // namespace wastenot::server
