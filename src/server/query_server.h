// QueryServer: the concurrent serving layer over one shared simulated
// device (DESIGN.md §3.3).
//
// The paper's throughput argument (§VI-E, Fig 11: "A Gap in the Memory
// Wall") is about *concurrent streams* — CPU query streams and A&R streams
// running at once and adding up. This layer makes that regime executable:
// a fixed pool of session workers pulls QueryRequests from a bounded
// admission queue and dispatches them to the A&R, classic or streaming
// engine, all against one Device whose shared structures (arena, kernel
// cache, clock, residency cache) are individually thread-safe and whose
// time attribution is per query (SimClock::QueryScope). Each request
// resolves a future with its result + ExecutionBreakdown; the server
// aggregates qps, latency percentiles and queue depth.

#ifndef WASTENOT_SERVER_QUERY_SERVER_H_
#define WASTENOT_SERVER_QUERY_SERVER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "bwd/bwd_table.h"
#include "bwd/partition.h"
#include "columnstore/database.h"
#include "core/ar_engine.h"
#include "core/query.h"
#include "core/sharded_engine.h"
#include "device/device.h"
#include "device/device_group.h"
#include "device/residency_cache.h"
#include "storage/mutable_table.h"
#include "util/status.h"
#include "util/timer.h"

namespace wastenot::server {

/// Which engine a request is served by.
enum class EngineKind : uint8_t { kAr, kClassic, kStreaming };

struct QueryResponse;

/// One query admitted to the server.
struct QueryRequest {
  core::QuerySpec query;
  EngineKind engine = EngineKind::kAr;
  /// When set, the request is a physical plan and `query` is ignored:
  /// multi-join shapes (TPC-H Q3/Q10) that no QuerySpec expresses. Served
  /// by the same engines through the plan executors; A&R plan requests
  /// resolve dimension tables against Backend::dim_tables / dim_maps.
  std::optional<core::PhysicalPlan> plan;
  /// Optional completion hook (the adaptive scheduler's per-tenant
  /// accounting, src/server/scheduler.h): invoked exactly once, immediately
  /// *before* the refined promise resolves — on the serving worker for
  /// completions, on the Shutdown caller for cancelled queued requests, on
  /// the submitter for a Submit refused during shutdown. Not invoked when
  /// TrySubmit returns false (the request was never taken). Runs outside
  /// the server lock; must not call back into the server.
  std::function<void(const QueryResponse&)> on_complete;
};

/// What a request's future resolves to.
struct QueryResponse {
  /// Admission order, monotonic per server starting at 1; 0 marks a
  /// request refused before admission (Submit during/after Shutdown).
  uint64_t id = 0;
  Status status;    ///< engine status; result/breakdown valid only if ok
  core::QueryResult result;
  core::ExecutionBreakdown breakdown;
  double queue_seconds = 0;    ///< admission → dequeue
  double latency_seconds = 0;  ///< admission → completion
  uint64_t sequence = 0;       ///< completion order (monotonic per server)
  unsigned worker = 0;         ///< which session worker served it
};

/// Phase-A slice of a progressive submission: what the `approximate`
/// future resolves to. For A&R requests this is the paper's first-class
/// approximate answer — strict error intervals derived from the dropped-bit
/// (residual) width — available before any refinement work has run.
struct ApproximateResponse {
  uint64_t id = 0;  ///< same admission id the refined response carries
  Status status;    ///< `approx` valid only if ok
  core::ApproximateAnswer approx;
  /// True when the serving engine has no Phase A (classic/streaming): the
  /// answer is the exact result as point intervals, resolved together with
  /// the refined future instead of ahead of it. Also set on the error and
  /// cancellation paths (where `approx` is empty).
  bool exact_fallback = false;
  double latency_seconds = 0;  ///< admission → this answer available
};

/// Producer-side state shared by every path that may resolve a progressive
/// request's approximate future (Phase-A hook, exact fallback, error,
/// shutdown cancellation): whichever gets there first wins, exactly once.
struct ProgressiveState {
  std::promise<ApproximateResponse> promise;
  std::atomic<bool> resolved{false};
  uint64_t id = 0;  ///< stamped at admission; 0 = never admitted

  /// Idempotent resolve: the first caller publishes, later callers no-op.
  void Resolve(ApproximateResponse&& response) {
    if (resolved.exchange(true)) return;
    response.id = id;
    promise.set_value(std::move(response));
  }
};

/// The future pair a progressive submission returns: the approximate
/// answer first, the refined exact answer following. Both always resolve —
/// on success, error and shutdown alike.
struct ProgressiveFutures {
  std::future<ApproximateResponse> approximate;
  std::future<QueryResponse> refined;
};

/// Server construction knobs.
struct ServerOptions {
  /// Session workers. Each runs one query at a time against the shared
  /// device. 0 is allowed (nothing drains the queue — admission-control
  /// tests use it) but a real server wants >= 1.
  unsigned num_workers = 4;
  /// Bounded admission queue: Submit blocks when full, TrySubmit rejects.
  uint64_t queue_capacity = 64;
  /// Applied to every kAr request. Streams are independent queries, so the
  /// default keeps Phase R serial per stream (one stream = one thread,
  /// paper §VI-E); raise num_threads for intra-query parallelism instead.
  core::ArOptions ar_options = [] {
    core::ArOptions o;
    o.num_threads = 1;
    return o;
  }();
  /// Completions kept for the stats() latency percentiles and windowed
  /// qps (clamped to >= 1). Small values make window-wraparound cheap to
  /// exercise in tests; the default bounds a long-lived server's memory
  /// while still averaging over enough samples to be stable.
  uint64_t latency_window = 4096;
  /// Applied to every kAr request served by a *sharded* backend. The
  /// default keeps the shard loop serial per session worker (ar.num_threads
  /// = 1 — streams are the concurrency, paper §VI-E) with data-local
  /// pruning on; raise ar.num_threads for intra-query shard fan-out.
  core::ShardedArOptions sharded_ar_options = [] {
    core::ShardedArOptions o;
    o.ar.num_threads = 1;
    return o;
  }();
  /// Ingest admission control: Append is refused (OutOfMemory) while the
  /// mutable backend's unabsorbed rows — durable delta plus uncommitted
  /// buffer — are at or past this. Bounds delta memory and query-time
  /// delta work when the background re-decomposition falls behind
  /// (device OOM backoff); the backlog drains, appends succeed again.
  uint64_t max_delta_backlog = 1 << 20;
};

/// Nearest-rank percentile: the smallest sample such that at least
/// `fraction` of the samples are <= it — rank ceil(fraction * N), i.e.
/// sorted[ceil(fraction * N) - 1] (clamped to the sample range). With 100
/// samples p99 is the 99th smallest (index 98), not the maximum; an empty
/// sample set yields 0.
double LatencyPercentile(std::vector<double> samples, double fraction);

/// Per-engine slice of the serving counters (ServerStats::engines).
struct EngineStats {
  uint64_t submitted = 0;  ///< admitted requests naming this engine
  uint64_t completed = 0;  ///< finished with OK status
  uint64_t failed = 0;     ///< finished with error status
};

/// Per-shard slice of the serving counters (ServerStats::shards). Only
/// populated when the server has a sharded backend; a request charges every
/// shard its partition-key range targets (so sums across shards can exceed
/// the request count — fan-out is the point).
struct ShardStats {
  uint64_t submitted = 0;    ///< admitted requests targeting this shard
  uint64_t completed = 0;    ///< completions (either status) touching it
  uint64_t queue_depth = 0;  ///< queued-but-undispatched requests targeting it
  /// Lifetime completions touching this shard / server uptime. A lifetime
  /// rate (not windowed like the global qps): per-shard windows would need
  /// per-shard completion rings for little test value.
  double qps = 0;
};

/// Aggregate serving statistics (since construction).
struct ServerStats {
  uint64_t admitted = 0;   ///< accepted into the queue
  uint64_t rejected = 0;   ///< refused admissions (queue full or shut down)
  uint64_t completed = 0;  ///< finished with OK status
  uint64_t failed = 0;     ///< finished with error status
  uint64_t cancelled = 0;  ///< still queued at Shutdown
  uint64_t queue_depth = 0;
  uint64_t max_queue_depth = 0;
  /// Indexed by EngineKind (kAr, kClassic, kStreaming).
  std::array<EngineStats, 3> engines{};
  /// One entry per backend shard; empty for single-device backends.
  std::vector<ShardStats> shards;
  /// Serving rate over the same bounded completion window as the latency
  /// percentiles: (window size - 1) / (timestamp span of the window),
  /// counting completions of either status. Measures the rate *while
  /// serving*, so it does not decay while the server sits idle — two
  /// stats() calls with no traffic in between report the same qps. With
  /// fewer than two windowed completions (or a zero span) it falls back to
  /// lifetime completions / uptime.
  double qps = 0;
  /// Nearest-rank percentiles (see LatencyPercentile) over the most recent
  /// completions (a bounded window, so a long-lived server neither grows
  /// without bound nor averages away the current latency regime).
  double p50_latency_seconds = 0;
  double p99_latency_seconds = 0;
  /// Ingest counters (all zero without a mutable backend).
  uint64_t ingest_appended = 0;  ///< rows accepted by Append
  uint64_t ingest_rejected = 0;  ///< Append refusals (backlog full)
  uint64_t ingest_commits = 0;   ///< OK FlushIngest group commits
  uint64_t ingest_backlog = 0;   ///< current unabsorbed rows (sampled)
};

/// A fixed pool of session workers serving queries from a bounded queue
/// against one shared device. All public methods are thread-safe.
class QueryServer {
 public:
  /// Data each engine executes against. `db` backs kClassic/kStreaming,
  /// `fact`/`dim` back kAr (dim may be null for join-free workloads);
  /// `device` is shared by every worker. All pointers must outlive the
  /// server; a backend a request needs but which is null fails that
  /// request with InvalidArgument rather than the server.
  struct Backend {
    const cs::Database* db = nullptr;
    const bwd::BwdTable* fact = nullptr;
    const bwd::BwdTable* dim = nullptr;
    device::Device* device = nullptr;

    /// Sharded backend (DESIGN.md §6). When `sharded_fact` and `group` are
    /// both set, kAr requests dispatch shard-parallel via ExecuteArSharded
    /// with data-local placement; when `shard_dbs` and `group` are set,
    /// kStreaming requests dispatch via ExecuteStreamingSharded. Single-
    /// device pointers above remain the fallback for whichever engines the
    /// sharded fields don't cover. `dim_replicas` holds one dimension
    /// replica per group device (bwd::ReplicatePerDevice); may be null for
    /// join-free workloads.
    const bwd::ShardedBwdTable* sharded_fact = nullptr;
    const std::vector<bwd::BwdTable>* dim_replicas = nullptr;
    const std::vector<cs::Database>* shard_dbs = nullptr;
    device::DeviceGroup* group = nullptr;

    /// Plan-request backends: every decomposed side table a multi-join
    /// plan may reference, by table name (single-device kAr), and the
    /// per-device replica maps (sharded kAr). May be null when no plan
    /// requests join — a plan that needs a missing table fails that
    /// request with InvalidArgument rather than the server.
    const core::BwdTableMap* dim_tables = nullptr;
    const std::vector<core::BwdTableMap>* dim_maps = nullptr;

    /// Mutable ingest backend (DESIGN.md §9). When set, Append/FlushIngest
    /// write into it and every request scanning its table name is served
    /// from its current View — base epoch + exact delta union — on all
    /// three engines, concurrently with background re-decomposition
    /// swaps. Requests scanning other tables use the static backends
    /// above. While the base is empty (nothing decomposed yet), kAr
    /// requests on it are served exactly from the delta instead of
    /// failing; their approximate future resolves as an exact fallback.
    storage::MutableTable* mutable_table = nullptr;
  };

  QueryServer(Backend backend, ServerOptions options = {});
  /// Implies Shutdown(). Shutdown drains submitters already blocked inside
  /// Submit, but — as with any object — a thread must not *enter* a method
  /// concurrently with destruction.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Admits `request`, blocking while the queue is full. The future
  /// resolves when a worker completes the query (or with an Internal
  /// status if the server shuts down first).
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Non-blocking admission: returns false (and leaves `out` untouched)
  /// when the queue is full or the server is shutting down.
  bool TrySubmit(QueryRequest request, std::future<QueryResponse>* out);

  /// Progressive admission (paper §III advantage 4: the approximate answer
  /// is a first-class result). Like Submit, but returns *two* futures: the
  /// approximate answer — resolved at the Phase-A/Phase-R boundary for A&R
  /// requests, with strict error intervals from the dropped-bit width —
  /// and the refined exact answer. Engines without a Phase A (classic,
  /// streaming) resolve the approximate future together with the refined
  /// one, carrying the exact result as point intervals (exact_fallback).
  /// Both futures always resolve, including on error and shutdown.
  ProgressiveFutures SubmitProgressive(QueryRequest request);

  /// Non-blocking progressive admission: returns false (and leaves `out`
  /// untouched) when the queue is full or the server is shutting down.
  bool TrySubmitProgressive(QueryRequest request, ProgressiveFutures* out);

  /// Scheduler plumbing: blocking admission that adopts caller-created
  /// promises — the refined promise, plus (optionally) progressive state
  /// whose approximate promise the server resolves per SubmitProgressive's
  /// contract. Returns false if the server refused the request (shutdown);
  /// the promises are then already resolved with the refusal. Used by
  /// AdaptiveScheduler (src/server/scheduler.h), which hands futures to its
  /// clients *before* the request reaches the server queue.
  bool SubmitAdopted(QueryRequest request,
                     std::promise<QueryResponse> refined,
                     std::shared_ptr<ProgressiveState> progressive);

  /// Ingest: buffers one row into the mutable backend (schema order).
  /// Not durable or visible until FlushIngest. OutOfMemory while the
  /// unabsorbed backlog is at max_delta_backlog (admission control —
  /// retry after the drain catches up); InvalidArgument without a
  /// mutable backend. Thread-safe, like every other public method.
  Status Append(std::span<const int64_t> row);

  /// Group-commits every buffered row (one WAL fsync) and publishes them
  /// to queries. Returns the durable row count. Safe to retry on error.
  StatusOr<uint64_t> FlushIngest();

  /// Blocks until every admitted request has completed — or until the
  /// server shuts down, in which case it returns without waiting for
  /// in-flight work (Shutdown itself joins the workers; queued requests
  /// are cancelled, so "every admitted request completed" is moot).
  void Drain();

  /// Stops admission, cancels queued-but-unstarted requests (their futures
  /// resolve with an Internal status), joins the workers. Idempotent.
  void Shutdown();

  ServerStats stats() const;
  uint64_t queue_depth() const;

  /// Live residency-cache signal for the adaptive scheduler: the cache
  /// kStreaming requests share on a single-device backend. (On a sharded
  /// backend the per-device caches live in Backend::group.)
  const device::ResidencyCache& streaming_cache() const {
    return streaming_cache_;
  }

 private:
  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    /// Non-null for progressive submissions: the approximate-answer side.
    std::shared_ptr<ProgressiveState> progressive;
    uint64_t id = 0;
    WallTimer admitted;  ///< started at admission
    /// Shards this request targets (per-shard admission accounting and
    /// queue depth). Empty for engines the sharded backend doesn't serve.
    std::vector<uint32_t> target_shards;
  };

  /// Admission core shared by every Submit flavor. `pending` carries the
  /// request plus whichever promises the caller created; on refusal
  /// (shutdown, or full queue when !blocking) every promise in it is
  /// resolved with the refusal before returning false.
  bool Enqueue(Pending&& pending, bool blocking);
  /// Resolves all of `pending`'s promises with `status` (refusal and
  /// cancellation paths), firing on_complete per its contract.
  static void ResolveRefused(Pending&& pending, Status status);
  /// Shards `request` would execute on — data-local placement resolved at
  /// admission time (empty when the backend isn't sharded for its engine).
  std::vector<uint32_t> TargetShardsFor(const QueryRequest& request) const;
  /// Decrements active_submitters_ (mu_ held) and, during shutdown,
  /// signals the drain wait in Shutdown().
  void LeaveSubmitter();
  void WorkerLoop(unsigned worker);
  QueryResponse Execute(const Pending& pending, unsigned worker);
  void RecordCompletion(EngineKind engine,
                        const std::vector<uint32_t>& target_shards,
                        QueryResponse* response);

  /// One completed request in the bounded stats window.
  struct LatencySample {
    double latency_seconds = 0;
    double completed_at = 0;  ///< uptime at completion (for windowed qps)
  };

  const Backend backend_;
  const ServerOptions options_;
  device::ResidencyCache streaming_cache_;  ///< shared by kStreaming requests
  WallTimer uptime_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< queue non-empty or shutdown
  std::condition_variable space_cv_;  ///< queue has room
  std::condition_variable idle_cv_;   ///< queue empty and workers idle
  std::condition_variable submitters_cv_;  ///< Enqueue critical path drained
  std::deque<Pending> queue_;
  uint64_t next_id_ = 1;        ///< 0 is reserved for never-admitted
  uint64_t next_sequence_ = 1;
  unsigned busy_workers_ = 0;
  unsigned active_submitters_ = 0;  ///< threads inside Enqueue's lock scope
  bool shutdown_ = false;
  ServerStats stats_;
  /// Ring of the most recent completions (options_.latency_window entries).
  std::vector<LatencySample> latencies_;
  size_t latency_next_ = 0;  ///< ring cursor once the window is full

  std::mutex shutdown_mu_;  ///< serializes Shutdown end-to-end (see .cpp)

  std::vector<std::thread> workers_;  ///< constructed last, joined first
};

}  // namespace wastenot::server

#endif  // WASTENOT_SERVER_QUERY_SERVER_H_
