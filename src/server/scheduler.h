// AdaptiveScheduler: policy layer over the QueryServer (DESIGN.md §7).
//
// The paper fixes the engine per experiment; a served system has to pick.
// This layer chooses, per query, which engine serves it (A&R, classic or
// streaming) and which approximation width the cost model would want, from
// the device::CostModel serving estimates plus three live signals: queue
// depth (admission pressure), the residency-cache hit rate (what streaming
// would actually pay per byte) and device clock contention (how busy the
// shared simulated device already is). The pure decision function
// (ChooseEngine) is deterministic and pinned by tests/server/
// scheduler_test.cpp; the class around it adds per-tenant weighted fair
// queuing with backpressure:
//
//   * every tenant has a weight; dispatch order follows WFQ virtual
//     finish tags, so a tenant flooding the scheduler cannot starve a
//     light one (it only consumes its own share),
//   * every tenant has an outstanding-work budget proportional to its
//     weight; TrySubmit rejects past it, Submit blocks (backpressure
//     propagates to the submitter, never to other tenants),
//   * a tenant near its budget is degraded to the classic engine — it
//     keeps getting exact answers, just without consuming device time
//     the other tenants are entitled to.
//
// Submissions are progressive (ProgressiveFutures): the approximate
// answer resolves at the Phase-A boundary when the A&R engine serves the
// query, and with the exact answer (as point intervals) otherwise.

#ifndef WASTENOT_SERVER_SCHEDULER_H_
#define WASTENOT_SERVER_SCHEDULER_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/plan.h"
#include "core/query.h"
#include "device/cost_model.h"
#include "server/query_server.h"
#include "util/status.h"
#include "util/timer.h"

namespace wastenot::server {

/// Live signals the policy folds into its engine choice.
struct ServingSignals {
  /// Admission-queue fill of the serving layer, [0, 1].
  double queue_fill = 0;
  /// Residency-cache hit rate the streaming engine would see, [0, 1].
  double cache_hit_rate = 1.0;
  /// Fraction of recent wall time the shared device(s) were busy, [0, 1]
  /// (per-shard clock contention aggregated over the group).
  double device_contention = 0;
};

/// Policy knobs. The defaults are what the policy tests pin.
struct PolicyOptions {
  /// Device-bound engine estimates are inflated by
  /// (1 + contention_penalty * device_contention): a busy device serves
  /// this query later and slower, the host does not.
  double contention_penalty = 4.0;
  /// Queue fill at or above which the policy prefers to shed device work:
  /// it degrades to classic when classic is within degrade_ratio of the
  /// best device-bound estimate.
  double degrade_queue_fill = 0.75;
  double degrade_ratio = 4.0;
  /// Fraction of a tenant's outstanding budget at or above which its
  /// dispatches degrade to classic (scheduler-level, not part of
  /// ChooseEngine).
  double tenant_degrade_fill = 0.5;
};

/// What the policy decided for one query, with the evidence.
struct SchedulerDecision {
  EngineKind engine = EngineKind::kAr;
  /// Cost-optimal approximation width for this workload
  /// (device::ChooseDeviceBits) — advisory, since the resident tables were
  /// decomposed at load time; reported so operators can see when the
  /// loaded width drifts from what the workload wants.
  uint32_t device_bits = 0;
  /// True when the engine was not the cheapest estimate but a pressure
  /// rule (queue fill, tenant budget) forced classic.
  bool degraded = false;
  double est_ar_seconds = 0;         ///< contention-adjusted
  double est_classic_seconds = 0;
  double est_streaming_seconds = 0;  ///< contention-adjusted
  const char* reason = "";           ///< static string naming the rule
};

/// The pure policy: prices every engine for `workload` on `spec` (the
/// cache-hit signal feeding the streaming estimate, the contention signal
/// inflating both device-bound estimates), then picks the cheapest —
/// unless queue pressure triggers the degrade rule. Deterministic: ties
/// break in engine order (A&R, classic, streaming). `workload.device_bits`
/// should hold the width the resident tables actually use;
/// `workload.cache_hit_rate` is overwritten from `signals`.
SchedulerDecision ChooseEngine(const device::DeviceSpec& spec,
                               device::ServingWorkload workload,
                               const ServingSignals& signals,
                               const PolicyOptions& policy = {});

/// ChooseEngine for a physical plan: identical decision rules, but priced
/// by core::EstimatePlanCost (the per-node plan estimate) instead of the
/// single-join closed form. On lowered single-join plans the two estimates
/// are equal, so the decisions agree; multi-join plans pay their extra
/// join/filter passes in every engine's estimate.
SchedulerDecision ChoosePlanEngine(const device::DeviceSpec& spec,
                                   const core::PhysicalPlan& plan,
                                   device::ServingWorkload workload,
                                   const ServingSignals& signals,
                                   const PolicyOptions& policy = {});

/// Scheduler construction knobs.
struct SchedulerOptions {
  ServerOptions server;  ///< inner QueryServer knobs
  PolicyOptions policy;
  /// Outstanding-work capacity the tenant budgets divide: tenant budget =
  /// max(1, floor(capacity * weight / total weight)), counting queued +
  /// dispatched-but-unfinished work. 0 = the server queue capacity.
  uint64_t capacity = 0;
  /// Weight given to tenants first seen by Submit/TrySubmit (tenants can
  /// be registered explicitly with other weights).
  double default_tenant_weight = 1.0;
  /// Starting point for EstimateWorkload: rows, widths and selectivity are
  /// overridden from the backend's tables and the query where derivable,
  /// the rest (host_bandwidth, host_refine_ns — calibration knobs) pass
  /// through to the cost model.
  device::ServingWorkload workload;
};

/// Pending ingest rows per unit of a tenant's outstanding-work budget:
/// a tenant's unflushed appends charge ceil(rows / 256) budget units, so
/// a bulk loader draws on the same WFQ share as its queries.
inline constexpr uint64_t kIngestRowsPerUnit = 256;

/// Per-tenant slice of the scheduler counters.
struct TenantStats {
  double weight = 1.0;
  uint64_t submitted = 0;   ///< accepted submissions
  uint64_t rejected = 0;    ///< TrySubmit refusals at budget
  uint64_t dispatched = 0;  ///< forwarded to the server
  uint64_t degraded = 0;    ///< dispatches forced to classic
  uint64_t completed = 0;   ///< refined responses delivered (either status)
  uint64_t cancelled = 0;   ///< still queued here at Shutdown
  uint64_t queued = 0;      ///< waiting in this tenant's scheduler queue
  uint64_t outstanding = 0; ///< dispatched, refined answer not yet delivered
  uint64_t budget = 0;      ///< current outstanding-work budget
  uint64_t ingest_rows = 0;      ///< rows appended on this tenant's behalf
  uint64_t ingest_rejected = 0;  ///< appends refused (budget or backlog)
  uint64_t pending_ingest_rows = 0;  ///< appended, not yet flushed
};

/// Aggregate scheduler statistics (since construction).
struct SchedulerStats {
  /// Dispatches by chosen engine, indexed by EngineKind.
  std::array<uint64_t, 3> dispatched{};
  uint64_t degraded = 0;   ///< dispatches the pressure rules forced
  uint64_t rejected = 0;   ///< TrySubmit refusals at tenant budget
  uint64_t cancelled = 0;  ///< queued entries cancelled by Shutdown
  std::map<std::string, TenantStats> tenants;
};

/// The adaptive serving layer: owns a QueryServer and forwards tenant
/// submissions to it in weighted-fair order, choosing the engine per
/// query. All public methods are thread-safe.
class AdaptiveScheduler {
 public:
  AdaptiveScheduler(QueryServer::Backend backend, SchedulerOptions options = {});
  /// Implies Shutdown().
  ~AdaptiveScheduler();

  AdaptiveScheduler(const AdaptiveScheduler&) = delete;
  AdaptiveScheduler& operator=(const AdaptiveScheduler&) = delete;

  /// Creates (or re-weights, while idle) a tenant. Tenants unknown at
  /// Submit time are auto-registered with the default weight.
  void RegisterTenant(const std::string& tenant, double weight);

  /// Admits `query` on behalf of `tenant`, blocking while the tenant is
  /// at its outstanding-work budget (backpressure). Both returned futures
  /// always resolve — on success, error and shutdown alike.
  ProgressiveFutures Submit(const std::string& tenant, core::QuerySpec query);
  /// Physical-plan admission: the dispatcher prices the plan with
  /// ChoosePlanEngine and forwards it as a plan request (QueryRequest::plan).
  ProgressiveFutures Submit(const std::string& tenant,
                            core::PhysicalPlan plan);

  /// Non-blocking admission: returns false (leaving `out` untouched) when
  /// the tenant is at its budget or the scheduler is shut down.
  bool TrySubmit(const std::string& tenant, core::QuerySpec query,
                 ProgressiveFutures* out);
  bool TrySubmit(const std::string& tenant, core::PhysicalPlan plan,
                 ProgressiveFutures* out);

  /// Appends one row to the backend's mutable table on behalf of
  /// `tenant`. Unflushed appends charge the tenant's outstanding-work
  /// budget at one unit per kIngestRowsPerUnit rows, so a bulk loader
  /// competes with its own queries — not other tenants' — and, through
  /// the tenant-degrade rule, a tenant ingesting heavily serves its
  /// queries from the classic engine until it flushes. OutOfMemory at
  /// budget, or when the server's delta backlog is full; retry after
  /// FlushIngest (or once the background drain catches up).
  Status Append(const std::string& tenant, std::span<const int64_t> row);
  /// Commits every buffered append (one fsync) and releases `tenant`'s
  /// pending-ingest budget charge. Returns the durable row count.
  StatusOr<uint64_t> FlushIngest(const std::string& tenant);

  /// The workload shape the policy would price for `query`, derived from
  /// the backend's resident tables (rows, decomposed widths, predicate
  /// selectivity). Exposed for tests and benchmarks.
  device::ServingWorkload EstimateWorkload(const core::QuerySpec& query) const;
  /// Same derivation for a plan: hop-0 filters stand in for the predicates
  /// (deeper filters are priced by EstimatePlanCost's node increments).
  device::ServingWorkload EstimateWorkload(
      const core::PhysicalPlan& plan) const;

  /// Samples the live signals (queue fill, cache hit rate, device
  /// contention since the previous sample).
  ServingSignals SampleSignals();

  /// The decision the policy would make for `query` right now — the same
  /// function dispatch applies, minus the tenant-budget degrade rule.
  SchedulerDecision Decide(const core::QuerySpec& query);
  SchedulerDecision Decide(const core::PhysicalPlan& plan);

  /// Stops admission, cancels queued entries (both futures of each
  /// resolve), shuts the server down, joins the dispatcher. Idempotent.
  void Shutdown();

  SchedulerStats stats() const;
  QueryServer& server() { return server_; }

 private:
  /// One accepted submission waiting for dispatch.
  struct Entry {
    core::QuerySpec query;
    std::optional<core::PhysicalPlan> plan;  ///< plan submissions only
    std::promise<QueryResponse> refined;
    std::shared_ptr<ProgressiveState> progressive;
    double vtag = 0;  ///< WFQ virtual finish tag (stamped at admission)
  };

  struct Tenant {
    double weight = 1.0;
    double last_vtag = 0;
    std::deque<Entry> entries;
    uint64_t outstanding = 0;
    uint64_t pending_ingest_rows = 0;  ///< appended, not yet flushed
    TenantStats stats;

    uint64_t in_flight() const {
      return entries.size() + outstanding +
             (pending_ingest_rows + kIngestRowsPerUnit - 1) /
                 kIngestRowsPerUnit;
    }
  };

  /// Shared derivation behind both EstimateWorkload overloads: prices the
  /// given fact-table predicate shape against the backend's resident tables.
  device::ServingWorkload EstimateWorkloadFromShape(
      const std::vector<std::pair<std::string, cs::RangePred>>& preds,
      size_t num_aggregates) const;

  Tenant& TenantLocked(const std::string& name);
  uint64_t BudgetLocked(const Tenant& tenant) const;
  bool EnqueueTenant(const std::string& name, Entry&& entry, bool blocking,
                     ProgressiveFutures* out);
  void DispatchLoop();
  /// Resolves both of `entry`'s futures with `status` (shutdown paths).
  static void ResolveCancelled(Entry&& entry, Status status);

  const QueryServer::Backend backend_;
  SchedulerOptions options_;  ///< capacity resolved in the constructor
  QueryServer server_;

  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;  ///< work queued or shutdown
  std::condition_variable budget_cv_;    ///< tenant budget freed or shutdown
  std::map<std::string, Tenant> tenants_;
  double total_weight_ = 0;
  double virtual_time_ = 0;  ///< WFQ global virtual time
  bool shutdown_ = false;
  std::array<uint64_t, 3> dispatched_{};
  uint64_t degraded_ = 0;
  uint64_t cancelled_ = 0;

  /// Contention sampling state: busy-seconds and wall-seconds at the
  /// previous SampleSignals call (guarded by signals_mu_, not mu_, so
  /// sampling never contends with dispatch).
  std::mutex signals_mu_;
  WallTimer signals_uptime_;
  double prev_busy_seconds_ = 0;
  double prev_wall_seconds_ = 0;
  double last_contention_ = 0;

  std::mutex shutdown_mu_;  ///< serializes Shutdown end-to-end

  std::thread dispatcher_;  ///< constructed last, joined first
};

}  // namespace wastenot::server

#endif  // WASTENOT_SERVER_SCHEDULER_H_
