#include "server/query_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/aggregate.h"
#include "core/classic_engine.h"
#include "core/streaming_engine.h"

namespace wastenot::server {

namespace {

/// The request's aggregate functions, whichever form it carries — what
/// ExactAnswerBounds needs to know to treat kAvg sums correctly.
std::vector<core::AggFunc> AggFuncsOf(const QueryRequest& request) {
  std::vector<core::AggFunc> funcs;
  if (request.plan.has_value()) {
    for (const auto& a : request.plan->group_agg.aggregates) {
      funcs.push_back(a.func);
    }
  } else {
    for (const auto& a : request.query.aggregates) funcs.push_back(a.func);
  }
  return funcs;
}

/// The exact result as a (trivially sound) approximate answer: every
/// interval is a point. Used to resolve the approximate future of a
/// progressive request served by an engine with no Phase A. kAvg values
/// store the group *sum* (see QueryResult), so their intervals come from
/// AvgBounds over the exact sum and count — the same rounding the A&R
/// Phase A applies, keeping progressive consumers engine-agnostic.
core::ApproximateAnswer ExactAnswerBounds(
    const std::vector<core::AggFunc>& funcs,
    const core::QueryResult& result) {
  core::ApproximateAnswer answer;
  const uint64_t groups = result.num_groups();
  answer.key_bounds.resize(groups);
  answer.agg_bounds.resize(groups);
  for (uint64_t g = 0; g < groups; ++g) {
    answer.key_bounds[g].reserve(result.group_keys[g].size());
    for (int64_t key : result.group_keys[g]) {
      answer.key_bounds[g].push_back(core::ValueBounds::Exact(key));
    }
    answer.agg_bounds[g].reserve(result.agg_values[g].size());
    for (size_t a = 0; a < result.agg_values[g].size(); ++a) {
      const int64_t value = result.agg_values[g][a];
      if (a < funcs.size() && funcs[a] == core::AggFunc::kAvg) {
        const int64_t count = g < result.group_counts.size()
                                  ? result.group_counts[g]
                                  : 0;
        answer.agg_bounds[g].push_back(core::AvgBounds(
            core::ValueBounds::Exact(value), core::ValueBounds::Exact(count)));
      } else {
        answer.agg_bounds[g].push_back(core::ValueBounds::Exact(value));
      }
    }
  }
  answer.row_count =
      core::ValueBounds::Exact(static_cast<int64_t>(result.selected_rows));
  return answer;
}

/// How many shards the backend serves (0 = single-device).
uint32_t BackendNumShards(const QueryServer::Backend& backend) {
  if (backend.group == nullptr) return 0;
  if (backend.sharded_fact != nullptr) return backend.sharded_fact->num_shards();
  if (backend.shard_dbs != nullptr) {
    return static_cast<uint32_t>(backend.shard_dbs->size());
  }
  return 0;
}

std::vector<uint32_t> AllShards(uint32_t n) {
  std::vector<uint32_t> all(n);
  for (uint32_t s = 0; s < n; ++s) all[s] = s;
  return all;
}

/// Partition-key range for shard pruning, from whichever form the request
/// carries (plan requests prune on hop-0 filters only).
cs::RangePred RequestKeyRange(const QueryRequest& request,
                                const std::string& key_column) {
  if (request.plan.has_value()) {
    return core::PartitionKeyRange(*request.plan, key_column);
  }
  return core::PartitionKeyRange(request.query, key_column);
}

}  // namespace

QueryServer::QueryServer(Backend backend, ServerOptions options)
    : backend_(backend),
      options_(options),
      streaming_cache_(backend.device) {
  stats_.shards.resize(BackendNumShards(backend_));
  workers_.reserve(options_.num_workers);
  for (unsigned w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

std::vector<uint32_t> QueryServer::TargetShardsFor(
    const QueryRequest& request) const {
  const uint32_t n = BackendNumShards(backend_);
  if (n == 0) return {};
  switch (request.engine) {
    case EngineKind::kAr:
      if (backend_.sharded_fact == nullptr) return {};
      if (!options_.sharded_ar_options.data_local_pruning) {
        return AllShards(n);
      }
      return bwd::TargetShards(
          *backend_.sharded_fact,
          RequestKeyRange(request, backend_.sharded_fact->spec().key_column));
    case EngineKind::kStreaming:
      if (backend_.shard_dbs == nullptr) return {};
      if (backend_.sharded_fact != nullptr &&
          backend_.sharded_fact->num_shards() == n) {
        return bwd::TargetShards(
            backend_.sharded_fact->partition,
            RequestKeyRange(request, backend_.sharded_fact->spec().key_column));
      }
      return AllShards(n);
    case EngineKind::kClassic:
      return {};  // host-only: no shard placement
  }
  return {};
}

void QueryServer::ResolveRefused(Pending&& pending, Status status) {
  QueryResponse response;
  response.id = pending.id;
  response.status = status;
  if (pending.progressive != nullptr) {
    ApproximateResponse approx;
    approx.status = status;
    approx.exact_fallback = true;
    pending.progressive->Resolve(std::move(approx));
  }
  // on_complete fires before the refined promise resolves, so a scheduler
  // waiting on the future observes its accounting already updated.
  if (pending.request.on_complete) pending.request.on_complete(response);
  pending.promise.set_value(std::move(response));
}

bool QueryServer::Enqueue(Pending&& pending, bool blocking) {
  pending.target_shards = TargetShardsFor(pending.request);
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Submitter accounting: Shutdown blocks until every submitter already
    // inside this critical path has left, so a destructor racing a
    // Submit blocked on the full queue never frees members under it.
    ++active_submitters_;
    if (blocking) {
      space_cv_.wait(lock, [this] {
        return queue_.size() < options_.queue_capacity || shutdown_;
      });
    }
    if (shutdown_ || queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;  // refused admission, full queue or shut down
      LeaveSubmitter();
      if (!blocking) return false;
      // Submit after/through Shutdown: resolve rather than block forever.
      lock.unlock();
      ResolveRefused(std::move(pending),
                     Status::Internal("query server is shut down"));
      return false;
    }
    pending.id = next_id_++;
    if (pending.progressive != nullptr) pending.progressive->id = pending.id;
    pending.admitted.Restart();
    ++stats_.engines[static_cast<size_t>(pending.request.engine)].submitted;
    for (uint32_t s : pending.target_shards) {
      if (s < stats_.shards.size()) {
        ++stats_.shards[s].submitted;
        ++stats_.shards[s].queue_depth;
      }
    }
    queue_.push_back(std::move(pending));
    ++stats_.admitted;
    stats_.max_queue_depth = std::max<uint64_t>(stats_.max_queue_depth,
                                                queue_.size());
    LeaveSubmitter();
    // Notify under the lock: once a submitter has left the critical path,
    // a racing Shutdown may let destruction proceed, so no member may be
    // touched after the lock is released.
    work_cv_.notify_one();
  }
  return true;
}

void QueryServer::LeaveSubmitter() {
  --active_submitters_;
  if (shutdown_ && active_submitters_ == 0) submitters_cv_.notify_all();
}

std::future<QueryResponse> QueryServer::Submit(QueryRequest request) {
  Pending pending;
  pending.request = std::move(request);
  std::future<QueryResponse> future = pending.promise.get_future();
  Enqueue(std::move(pending), /*blocking=*/true);
  return future;
}

bool QueryServer::TrySubmit(QueryRequest request,
                            std::future<QueryResponse>* out) {
  Pending pending;
  pending.request = std::move(request);
  std::future<QueryResponse> future = pending.promise.get_future();
  if (!Enqueue(std::move(pending), /*blocking=*/false)) return false;
  *out = std::move(future);
  return true;
}

ProgressiveFutures QueryServer::SubmitProgressive(QueryRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.progressive = std::make_shared<ProgressiveState>();
  ProgressiveFutures futures;
  futures.approximate = pending.progressive->promise.get_future();
  futures.refined = pending.promise.get_future();
  Enqueue(std::move(pending), /*blocking=*/true);
  return futures;
}

bool QueryServer::TrySubmitProgressive(QueryRequest request,
                                       ProgressiveFutures* out) {
  Pending pending;
  pending.request = std::move(request);
  pending.progressive = std::make_shared<ProgressiveState>();
  ProgressiveFutures futures;
  futures.approximate = pending.progressive->promise.get_future();
  futures.refined = pending.promise.get_future();
  if (!Enqueue(std::move(pending), /*blocking=*/false)) return false;
  *out = std::move(futures);
  return true;
}

bool QueryServer::SubmitAdopted(QueryRequest request,
                                std::promise<QueryResponse> refined,
                                std::shared_ptr<ProgressiveState> progressive) {
  Pending pending;
  pending.request = std::move(request);
  pending.promise = std::move(refined);
  pending.progressive = std::move(progressive);
  // Blocking Enqueue only "fails" by resolving the promises with the
  // shutdown refusal; the return value lets the scheduler stop dispatching.
  return Enqueue(std::move(pending), /*blocking=*/true);
}

void QueryServer::WorkerLoop(unsigned worker) {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || shutdown_; });
      if (shutdown_) return;  // Shutdown cancels whatever is still queued
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++busy_workers_;
      for (uint32_t s : pending.target_shards) {
        if (s < stats_.shards.size()) --stats_.shards[s].queue_depth;
      }
    }
    space_cv_.notify_one();

    const double queue_seconds = pending.admitted.Seconds();
    QueryResponse response = Execute(pending, worker);
    response.id = pending.id;
    response.queue_seconds = queue_seconds;
    response.latency_seconds = pending.admitted.Seconds();
    RecordCompletion(pending.request.engine, pending.target_shards, &response);
    // Progressive fallback: an engine with no Phase A (or an execution that
    // failed before its hook fired) resolves the approximate future here,
    // together with the refined one — exact point intervals on success,
    // the error otherwise. The A&R hook runs on this same worker thread
    // inside Execute, so "still unresolved" cannot race a late hook.
    if (pending.progressive != nullptr && !pending.progressive->resolved) {
      ApproximateResponse approx;
      approx.status = response.status;
      approx.exact_fallback = true;
      approx.latency_seconds = response.latency_seconds;
      if (response.status.ok()) {
        approx.approx = ExactAnswerBounds(AggFuncsOf(pending.request),
                                          response.result);
      }
      pending.progressive->Resolve(std::move(approx));
    }
    // on_complete fires before the refined promise resolves, so a scheduler
    // waiting on the future observes its accounting already updated.
    if (pending.request.on_complete) pending.request.on_complete(response);
    pending.promise.set_value(std::move(response));

    // The worker counts as busy until after the promise resolves, so a
    // Drain() returning on the idle signal never races an unready future.
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_workers_;
      idle = queue_.empty() && busy_workers_ == 0;
    }
    if (idle) idle_cv_.notify_all();
  }
}

Status QueryServer::Append(std::span<const int64_t> row) {
  if (backend_.mutable_table == nullptr) {
    return Status::InvalidArgument("server has no mutable ingest backend");
  }
  // Admission control on the unabsorbed backlog: durable delta rows plus
  // the uncommitted buffer. Checked against a snapshot (a concurrent
  // append may overshoot by the number of racing ingesters — admission
  // control, not a hard memory bound).
  const storage::MutableTableStats table_stats =
      backend_.mutable_table->Stats();
  if (table_stats.pending_rows + table_stats.buffered_rows >=
      options_.max_delta_backlog) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.ingest_rejected;
    return Status::OutOfMemory(
        "ingest backlog at capacity (" +
        std::to_string(options_.max_delta_backlog) +
        " unabsorbed rows): re-decomposition is behind, retry later");
  }
  WN_RETURN_IF_ERROR(backend_.mutable_table->Append(row));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.ingest_appended;
  return Status::OK();
}

StatusOr<uint64_t> QueryServer::FlushIngest() {
  if (backend_.mutable_table == nullptr) {
    return Status::InvalidArgument("server has no mutable ingest backend");
  }
  StatusOr<uint64_t> durable = backend_.mutable_table->Flush();
  if (durable.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.ingest_commits;
  }
  return durable;
}

QueryResponse QueryServer::Execute(const Pending& pending, unsigned worker) {
  const QueryRequest& request = pending.request;
  QueryResponse response;
  response.worker = worker;
  // Requests scanning the mutable backend's table are served from its
  // current view: base epoch + exact delta union, consistent for the
  // whole execution however many swaps land meanwhile.
  const std::string& scan_table = request.plan.has_value()
                                      ? request.plan->scan.table
                                      : request.query.table;
  const bool mutable_scan = backend_.mutable_table != nullptr &&
                            scan_table == backend_.mutable_table->name();
  storage::TableView mutable_view;
  if (mutable_scan) mutable_view = backend_.mutable_table->View();
  // Progressive A&R: resolve the approximate future at the Phase-A/Phase-R
  // boundary, on this worker thread, before any refinement runs. The
  // WallTimer is read concurrently-safely (it only stores a start point).
  std::function<void(const core::ApproximateAnswer&)> on_approximate;
  if (pending.progressive != nullptr && request.engine == EngineKind::kAr) {
    std::shared_ptr<ProgressiveState> progressive = pending.progressive;
    const WallTimer* admitted = &pending.admitted;
    on_approximate = [progressive,
                      admitted](const core::ApproximateAnswer& answer) {
      ApproximateResponse approx;
      approx.approx = answer;
      approx.latency_seconds = admitted->Seconds();
      progressive->Resolve(std::move(approx));
    };
  }
  switch (request.engine) {
    case EngineKind::kAr: {
      if (mutable_scan) {
        if (mutable_view.bwd == nullptr) {
          // Nothing decomposed yet (empty base, or a host-only table):
          // Phase A has nowhere to run, so serve the exact answer from
          // base+delta instead of failing the request. The progressive
          // approximate future resolves as an exact fallback.
          WallTimer timer;
          core::ClassicOptions classic_options;
          classic_options.delta = mutable_view.delta_or_null();
          auto result = request.plan.has_value()
                            ? core::ExecutePlanClassic(
                                  *request.plan, *mutable_view.db,
                                  classic_options)
                            : core::ExecuteClassic(request.query,
                                                   *mutable_view.db,
                                                   classic_options);
          response.status = result.status();
          if (result.ok()) {
            response.result = std::move(*result);
            response.breakdown.host_seconds = timer.Seconds();
            response.breakdown.host_cpu_seconds =
                response.breakdown.host_seconds;
          }
          return response;
        }
        core::ArOptions ar_options = options_.ar_options;
        ar_options.on_approximate = std::move(on_approximate);
        ar_options.delta = mutable_view.delta_or_null();
        // The epoch's BwdTable lives on the device it was re-decomposed
        // onto — not necessarily Backend::device.
        device::Device* dev = mutable_view.bwd->device();
        static const core::BwdTableMap kNoDims;
        const core::BwdTableMap& dims =
            backend_.dim_tables != nullptr ? *backend_.dim_tables : kNoDims;
        auto exec =
            request.plan.has_value()
                ? core::ExecutePlanAr(*request.plan, *mutable_view.bwd, dims,
                                      dev, ar_options)
                : core::ExecuteAr(request.query, *mutable_view.bwd,
                                  backend_.dim, dev, ar_options);
        response.status = exec.status();
        if (exec.ok()) {
          response.result = std::move(exec->result);
          response.breakdown = exec->breakdown;
        }
        return response;
      }
      if (backend_.sharded_fact != nullptr && backend_.group != nullptr) {
        core::ShardedArOptions sharded_options = options_.sharded_ar_options;
        sharded_options.on_approximate = std::move(on_approximate);
        auto exec =
            request.plan.has_value()
                ? core::ExecutePlanArSharded(
                      *request.plan, *backend_.sharded_fact, backend_.dim_maps,
                      backend_.group, sharded_options)
                : core::ExecuteArSharded(
                      request.query, *backend_.sharded_fact,
                      backend_.dim_replicas, backend_.group, sharded_options);
        response.status = exec.status();
        if (exec.ok()) {
          response.result = std::move(exec->merged.result);
          response.breakdown = exec->merged.breakdown;
        }
        return response;
      }
      if (backend_.fact == nullptr || backend_.device == nullptr) {
        response.status =
            Status::InvalidArgument("server has no A&R backend (fact/device)");
        return response;
      }
      core::ArOptions ar_options = options_.ar_options;
      ar_options.on_approximate = std::move(on_approximate);
      if (request.plan.has_value()) {
        static const core::BwdTableMap kNoDims;
        const core::BwdTableMap& dims =
            backend_.dim_tables != nullptr ? *backend_.dim_tables : kNoDims;
        auto exec = core::ExecutePlanAr(*request.plan, *backend_.fact, dims,
                                        backend_.device, ar_options);
        response.status = exec.status();
        if (exec.ok()) {
          response.result = std::move(exec->result);
          response.breakdown = exec->breakdown;
        }
        return response;
      }
      auto exec = core::ExecuteAr(request.query, *backend_.fact, backend_.dim,
                                  backend_.device, ar_options);
      response.status = exec.status();
      if (exec.ok()) {
        response.result = std::move(exec->result);
        response.breakdown = exec->breakdown;
      }
      return response;
    }
    case EngineKind::kClassic: {
      if (mutable_scan) {
        WallTimer timer;
        core::ClassicOptions classic_options;
        classic_options.delta = mutable_view.delta_or_null();
        auto result =
            request.plan.has_value()
                ? core::ExecutePlanClassic(*request.plan, *mutable_view.db,
                                           classic_options)
                : core::ExecuteClassic(request.query, *mutable_view.db,
                                       classic_options);
        response.status = result.status();
        if (result.ok()) {
          response.result = std::move(*result);
          response.breakdown.host_seconds = timer.Seconds();
          response.breakdown.host_cpu_seconds =
              response.breakdown.host_seconds;
        }
        return response;
      }
      if (backend_.db == nullptr) {
        response.status =
            Status::InvalidArgument("server has no classic backend (db)");
        return response;
      }
      WallTimer timer;
      auto result = request.plan.has_value()
                        ? core::ExecutePlanClassic(*request.plan, *backend_.db)
                        : core::ExecuteClassic(request.query, *backend_.db);
      response.status = result.status();
      if (result.ok()) {
        response.result = std::move(*result);
        response.breakdown.host_seconds = timer.Seconds();
        response.breakdown.host_cpu_seconds = response.breakdown.host_seconds;
      }
      return response;
    }
    case EngineKind::kStreaming: {
      if (mutable_scan) {
        if (backend_.device == nullptr) {
          response.status = Status::InvalidArgument(
              "server has no streaming backend (device)");
          return response;
        }
        auto exec =
            request.plan.has_value()
                ? core::ExecutePlanStreaming(*request.plan, *mutable_view.db,
                                             backend_.device,
                                             &streaming_cache_,
                                             mutable_view.delta_or_null())
                : core::ExecuteStreaming(request.query, *mutable_view.db,
                                         backend_.device, &streaming_cache_,
                                         mutable_view.delta_or_null());
        response.status = exec.status();
        if (exec.ok()) {
          response.result = std::move(exec->result);
          response.breakdown = exec->breakdown;
        }
        return response;
      }
      if (backend_.shard_dbs != nullptr && backend_.group != nullptr) {
        const bwd::TablePartition* partition =
            (backend_.sharded_fact != nullptr &&
             backend_.sharded_fact->num_shards() == backend_.shard_dbs->size())
                ? &backend_.sharded_fact->partition
                : nullptr;
        auto exec =
            request.plan.has_value()
                ? core::ExecutePlanStreamingSharded(
                      *request.plan, *backend_.shard_dbs, backend_.group,
                      partition, /*fan_out_threads=*/1)
                : core::ExecuteStreamingSharded(
                      request.query, *backend_.shard_dbs, backend_.group,
                      partition, /*fan_out_threads=*/1);
        response.status = exec.status();
        if (exec.ok()) {
          response.result = std::move(exec->merged.result);
          response.breakdown = exec->merged.breakdown;
        }
        return response;
      }
      if (backend_.db == nullptr || backend_.device == nullptr) {
        response.status = Status::InvalidArgument(
            "server has no streaming backend (db/device)");
        return response;
      }
      auto exec =
          request.plan.has_value()
              ? core::ExecutePlanStreaming(*request.plan, *backend_.db,
                                           backend_.device, &streaming_cache_)
              : core::ExecuteStreaming(request.query, *backend_.db,
                                       backend_.device, &streaming_cache_);
      response.status = exec.status();
      if (exec.ok()) {
        response.result = std::move(exec->result);
        response.breakdown = exec->breakdown;
      }
      return response;
    }
  }
  response.status = Status::Internal("unknown engine kind");
  return response;
}

void QueryServer::RecordCompletion(EngineKind engine,
                                   const std::vector<uint32_t>& target_shards,
                                   QueryResponse* response) {
  std::lock_guard<std::mutex> lock(mu_);
  response->sequence = next_sequence_++;
  EngineStats& engine_stats = stats_.engines[static_cast<size_t>(engine)];
  if (response->status.ok()) {
    ++stats_.completed;
    ++engine_stats.completed;
  } else {
    ++stats_.failed;
    ++engine_stats.failed;
  }
  for (uint32_t s : target_shards) {
    if (s < stats_.shards.size()) ++stats_.shards[s].completed;
  }
  const size_t window = std::max<uint64_t>(1, options_.latency_window);
  const LatencySample sample{response->latency_seconds, uptime_.Seconds()};
  if (latencies_.size() < window) {
    latencies_.push_back(sample);
  } else {
    latencies_[latency_next_ % window] = sample;
  }
  ++latency_next_;
}

void QueryServer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && busy_workers_ == 0) || shutdown_;
  });
}

void QueryServer::Shutdown() {
  // Serializes concurrent Shutdown callers (e.g. an explicit Shutdown
  // racing the destructor): the second blocks here until the first has
  // joined every worker, so no caller returns while members are in use.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::deque<Pending> cancelled;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;  // a prior holder of shutdown_mu_ finished it
    shutdown_ = true;
    cancelled.swap(queue_);
    stats_.cancelled += cancelled.size();
    for (const Pending& pending : cancelled) {
      for (uint32_t s : pending.target_shards) {
        if (s < stats_.shards.size()) --stats_.shards[s].queue_depth;
      }
    }
    // Wake submitters blocked on queue space and wait for every submitter
    // currently inside Enqueue's critical path to leave, so members are
    // not destroyed under a Submit that raced this shutdown.
    space_cv_.notify_all();
    submitters_cv_.wait(lock, [this] { return active_submitters_ == 0; });
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  idle_cv_.notify_all();
  // Cancelled requests resolve *both* futures of a progressive submission
  // (approximate with the same status, exact_fallback set) and fire
  // on_complete — no waiter is left hanging across a shutdown.
  for (auto& pending : cancelled) {
    ResolveRefused(std::move(pending),
                   Status::Internal("query server shut down before serving"));
  }
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

double LatencyPercentile(std::vector<double> samples, double fraction) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  size_t rank = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(n)));
  rank = std::clamp<size_t>(rank, 1, n);
  return samples[rank - 1];
}

ServerStats QueryServer::stats() const {
  std::vector<LatencySample> window;
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
    out.queue_depth = queue_.size();
    window = latencies_;
  }
  if (backend_.mutable_table != nullptr) {
    const storage::MutableTableStats table_stats =
        backend_.mutable_table->Stats();
    out.ingest_backlog = table_stats.pending_rows + table_stats.buffered_rows;
  }

  // Windowed qps (see the ServerStats::qps contract): rate across the
  // completion timestamps in the window, independent of how long ago they
  // happened — idle time after the window does not decay it. The fallback
  // (under two samples, or all completions at one timestamp) is lifetime
  // completions over uptime.
  out.qps = 0;
  if (window.size() >= 2) {
    double first = window[0].completed_at;
    double last = window[0].completed_at;
    for (const LatencySample& s : window) {
      first = std::min(first, s.completed_at);
      last = std::max(last, s.completed_at);
    }
    if (last > first) {
      out.qps = static_cast<double>(window.size() - 1) / (last - first);
    }
  }
  if (out.qps == 0) {
    const double elapsed = uptime_.Seconds();
    const uint64_t served = out.completed + out.failed;
    out.qps = elapsed > 0 ? static_cast<double>(served) / elapsed : 0;
  }

  const double elapsed_for_shards = uptime_.Seconds();
  for (ShardStats& shard : out.shards) {
    shard.qps = elapsed_for_shards > 0
                    ? static_cast<double>(shard.completed) / elapsed_for_shards
                    : 0;
  }

  std::vector<double> latencies;
  latencies.reserve(window.size());
  for (const LatencySample& s : window) latencies.push_back(s.latency_seconds);
  out.p50_latency_seconds = LatencyPercentile(latencies, 0.50);
  out.p99_latency_seconds = LatencyPercentile(std::move(latencies), 0.99);
  return out;
}

uint64_t QueryServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace wastenot::server
