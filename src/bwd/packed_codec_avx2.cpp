// AVX2 tier of the packed codec (see packed_codec_kernels.h for the table
// contract and DESIGN.md "Kernel dispatch" for the architecture).
//
// Decode scheme (widths 2..57): each group of four elements is decoded
// from two 16-byte loads whose base offsets are clamped inside the block's
// 8*W bytes, an in-lane pshufb aligning each element's 8-byte window into
// its 64-bit lane, a per-lane variable right shift and one mask — about
// seven instructions per four elements, every shuffle control and shift a
// compile-time constant. Widths outside the scheme (0, 1, 58..64) keep the
// scalar entries, which the table copy provides.
//
// Exact-allocation contract: all loads are provably inside the block
// (static asserts below), gathers touch the word one past an element only
// when the element actually straddles (masked gathers fault-suppress the
// rest), and the selection fills use maskload/maskstore so no lane outside
// the mask/popcount is ever touched. This keeps every kernel legal — and
// ASan-clean where instrumented — on buffers with no slack word.
//
// This TU is compiled with -mavx2 (CMake adds it only when the compiler
// supports the flag and WASTENOT_FORCE_SCALAR is off); runtime CPUID
// gating happens in Avx2Kernels().

#include "bwd/packed_codec.h"
#include "bwd/packed_codec_kernels.h"

#if defined(WASTENOT_HAVE_AVX2)
#ifndef __AVX2__
#error "packed_codec_avx2.cpp must be compiled with -mavx2"
#endif

#include <immintrin.h>

#include <array>
#include <bit>
#include <cstring>
#include <utility>

namespace wastenot::bwd::internal {
namespace {

// ---------------------------------------------------------------------------
// Byte-window layout for the pair loads.

/// Base byte of the 16-byte load covering elements {j, j+1} (j even),
/// clamped in-block. Requires W >= 2 so the block has at least 16 bytes.
template <uint32_t W>
constexpr uint32_t PairBase(uint32_t j) {
  const uint32_t natural = (j * W) / 8;
  const uint32_t clamp = 8 * W - 16;
  return natural < clamp ? natural : clamp;
}

/// Every element's 8-byte window must sit within the 16-byte load of its
/// pair (pshufb indices 0..15) and every load within the block.
template <uint32_t W>
constexpr bool PairsValid() {
  for (uint32_t j = 0; j < 64; ++j) {
    const uint32_t base = PairBase<W>(j & ~1u);
    const uint32_t start = ByteWindow<W>::StartByte(j);
    if (start < base) return false;
    if (start - base > 8) return false;
    if (base + 16 > 8 * W) return false;
  }
  return true;
}

/// pshufb control aligning the four elements j0..j0+3 into 64-bit lanes.
/// Lanes 0,1 shuffle within the low 128 half (loaded at PairBase(j0)),
/// lanes 2,3 within the high half (loaded at PairBase(j0+2)); in-lane
/// indices are 0..15 by PairsValid().
template <uint32_t W, uint32_t G>
constexpr std::array<uint8_t, 32> MakeShuffle4() {
  std::array<uint8_t, 32> s{};
  for (uint32_t lane = 0; lane < 4; ++lane) {
    const uint32_t j = 4 * G + lane;
    const uint32_t base = PairBase<W>(j & ~1u);
    const uint32_t off = ByteWindow<W>::StartByte(j) - base;
    for (uint32_t t = 0; t < 8; ++t) {
      s[lane * 8 + t] = static_cast<uint8_t>(off + t);
    }
  }
  return s;
}

template <uint32_t W, uint32_t G>
struct Group4 {
  static_assert(W >= 2 && W <= 57);
  static_assert(ByteWindow<W>::Valid());
  static_assert(PairsValid<W>());
  static constexpr uint32_t kJ0 = 4 * G;
  static constexpr uint32_t kLo = PairBase<W>(kJ0);
  static constexpr uint32_t kHi = PairBase<W>(kJ0 + 2);
  static constexpr std::array<uint8_t, 32> kShuffle = MakeShuffle4<W, G>();
};

/// Zero-extended elements j0..j0+3 of the block at `bytes`, one per
/// 64-bit lane.
template <uint32_t W, uint32_t G>
inline __m256i DecodeGroup4(const uint8_t* bytes) {
  using Gr = Group4<W, G>;
  const __m128i lo = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(bytes + Gr::kLo));
  const __m128i hi = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(bytes + Gr::kHi));
  __m256i v = _mm256_set_m128i(hi, lo);
  v = _mm256_shuffle_epi8(
      v, _mm256_loadu_si256(
             reinterpret_cast<const __m256i*>(Gr::kShuffle.data())));
  v = _mm256_srlv_epi64(
      v, _mm256_setr_epi64x(ByteWindow<W>::Shift(Gr::kJ0),
                            ByteWindow<W>::Shift(Gr::kJ0 + 1),
                            ByteWindow<W>::Shift(Gr::kJ0 + 2),
                            ByteWindow<W>::Shift(Gr::kJ0 + 3)));
  return _mm256_and_si256(
      v, _mm256_set1_epi64x(static_cast<long long>(bits::LowMask(W))));
}

// ---------------------------------------------------------------------------
// Block kernels.

template <uint32_t W>
void UnpackBlockAvx2(const uint64_t* in, uint64_t* out) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(in);
  [&]<size_t... G>(std::index_sequence<G...>) {
    ((_mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4 * G),
                          DecodeGroup4<W, G>(bytes))),
     ...);
  }(std::make_index_sequence<16>{});
}

template <uint32_t W>
uint64_t MatchBlockAvx2(const uint64_t* in, uint64_t lo, uint64_t span) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(in);
  // Unsigned (v - lo) <= span via the sign-flip trick: x <=u y iff
  // (x ^ SIGN) <=s (y ^ SIGN); AVX2 only has signed 64-bit compares.
  constexpr long long kSign = static_cast<long long>(0x8000000000000000ULL);
  const __m256i vlo = _mm256_set1_epi64x(static_cast<long long>(lo));
  const __m256i vsign = _mm256_set1_epi64x(kSign);
  const __m256i vspan =
      _mm256_set1_epi64x(static_cast<long long>(span) ^ kSign);
  uint64_t m = 0;
  [&]<size_t... G>(std::index_sequence<G...>) {
    ((m |= static_cast<uint64_t>(
          ~_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(
              _mm256_xor_si256(
                  _mm256_sub_epi64(DecodeGroup4<W, G>(bytes), vlo), vsign),
              vspan))) &
          0xF)
          << (4 * G)),
     ...);
  }(std::make_index_sequence<16>{});
  return m;
}

// Byte-aligned widths (8/16/32/64) need no shuffle or shift at all: each
// group of four elements is a contiguous run of packed lanes, so a plain
// zero-extending load (vpmovzx) — or a straight copy at width 64 — beats
// the generic two-load pshufb path. Every load is exactly the group's
// bytes, so exact-allocation safety is trivial.
template <uint32_t W>
inline __m256i LoadGroup4Aligned(const uint8_t* bytes, uint32_t g) {
  static_assert(W == 8 || W == 16 || W == 32 || W == 64);
  if constexpr (W == 8) {
    uint32_t chunk;  // 4-byte load: a wider one would overrun group 15
    std::memcpy(&chunk, bytes + 4 * g, sizeof(chunk));
    return _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(chunk)));
  } else if constexpr (W == 16) {
    return _mm256_cvtepu16_epi64(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bytes + 8 * g)));
  } else if constexpr (W == 32) {
    return _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 16 * g)));
  } else {
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bytes + 32 * g));
  }
}

template <uint32_t W>
void UnpackBlockAlignedAvx2(const uint64_t* in, uint64_t* out) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(in);
  for (uint32_t g = 0; g < 16; ++g) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4 * g),
                        LoadGroup4Aligned<W>(bytes, g));
  }
}

template <uint32_t W>
uint64_t MatchBlockAlignedAvx2(const uint64_t* in, uint64_t lo,
                               uint64_t span) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(in);
  constexpr long long kSign = static_cast<long long>(0x8000000000000000ULL);
  const __m256i vlo = _mm256_set1_epi64x(static_cast<long long>(lo));
  const __m256i vsign = _mm256_set1_epi64x(kSign);
  const __m256i vspan =
      _mm256_set1_epi64x(static_cast<long long>(span) ^ kSign);
  uint64_t m = 0;
  for (uint32_t g = 0; g < 16; ++g) {
    const __m256i v = LoadGroup4Aligned<W>(bytes, g);
    m |= static_cast<uint64_t>(
             ~_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(
                 _mm256_xor_si256(_mm256_sub_epi64(v, vlo), vsign), vspan))) &
             0xF)
         << (4 * g);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Gather (all widths 1..64): four ids per iteration via i64gather. The
// high word of a straddling element comes from a *masked* gather — lanes
// that do not straddle never issue the word+1 load, so the final element
// of an exactly-sized buffer is safe in hardware.

template <uint32_t W, typename Id>
inline void GatherAvx2(const uint64_t* words, const Id* ids, uint64_t n,
                       uint64_t* out) {
  static_assert(W >= 1 && W <= 64);
  const __m256i v_w = _mm256_set1_epi64x(W);
  const __m256i v_mask =
      _mm256_set1_epi64x(static_cast<long long>(bits::LowMask(W)));
  const __m256i v_63 = _mm256_set1_epi64x(63);
  const __m256i v_64 = _mm256_set1_epi64x(64);
  const __m256i v_one = _mm256_set1_epi64x(1);
  // Straddle iff shift > 64 - W (both sides in [0, 63]: signed-safe).
  const __m256i v_nostrad = _mm256_set1_epi64x(64 - static_cast<int>(W));
  const long long* base = reinterpret_cast<const long long*>(words);

  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i id;
    if constexpr (sizeof(Id) == 4) {
      id = _mm256_cvtepu32_epi64(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i)));
    } else {
      id = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    }
    // bitpos = id * W, full 64-bit product from 32x32 partial products.
    __m256i bitpos = _mm256_mul_epu32(id, v_w);
    if constexpr (sizeof(Id) == 8) {
      const __m256i hi32 = _mm256_mul_epu32(_mm256_srli_epi64(id, 32), v_w);
      bitpos = _mm256_add_epi64(bitpos, _mm256_slli_epi64(hi32, 32));
    }
    const __m256i word = _mm256_srli_epi64(bitpos, 6);
    const __m256i shift = _mm256_and_si256(bitpos, v_63);
    const __m256i lo = _mm256_i64gather_epi64(base, word, 8);
    const __m256i strad = _mm256_cmpgt_epi64(shift, v_nostrad);
    const __m256i hi = _mm256_mask_i64gather_epi64(
        _mm256_setzero_si256(), base, _mm256_add_epi64(word, v_one), strad,
        8);
    // sllv with count 64 (shift == 0 lanes) yields 0, and those lanes'
    // hi is 0 anyway.
    __m256i v = _mm256_or_si256(
        _mm256_srlv_epi64(lo, shift),
        _mm256_sllv_epi64(hi, _mm256_sub_epi64(v_64, shift)));
    v = _mm256_and_si256(v, v_mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  if (i < n) {
    if constexpr (sizeof(Id) == 4) {
      ScalarKernels().gather32[W](words, ids + i, n - i, out + i);
    } else {
      ScalarKernels().gather64[W](words, ids + i, n - i, out + i);
    }
  }
}

template <uint32_t W>
void Gather32Avx2(const uint64_t* words, const uint32_t* ids, uint64_t n,
                  uint64_t* out) {
  GatherAvx2<W>(words, ids, n, out);
}
template <uint32_t W>
void Gather64Avx2(const uint64_t* words, const uint64_t* ids, uint64_t n,
                  uint64_t* out) {
  GatherAvx2<W>(words, ids, n, out);
}

// ---------------------------------------------------------------------------
// Selection fills: byte-at-a-time LUT expand/compress. maskload reads only
// set lanes, maskstore writes only the first popcount lanes — both sides
// honor the exact-allocation contract.

/// Per byte value, the bit positions of its set bits (ascending, zero
/// padded).
constexpr std::array<std::array<uint8_t, 8>, 256> MakeByteLut() {
  std::array<std::array<uint8_t, 8>, 256> lut{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t n = 0;
    for (uint32_t j = 0; j < 8; ++j) {
      if (b & (1u << j)) lut[b][n++] = static_cast<uint8_t>(j);
    }
  }
  return lut;
}
constexpr auto kByteLut = MakeByteLut();

/// Per nibble value, permutevar8x32 indices packing the set 64-bit lanes'
/// u32 pairs to the front.
constexpr std::array<std::array<int, 8>, 16> MakeNibbleLut() {
  std::array<std::array<int, 8>, 16> lut{};
  for (int nib = 0; nib < 16; ++nib) {
    int n = 0;
    for (int p = 0; p < 4; ++p) {
      if (nib & (1 << p)) {
        lut[nib][2 * n] = 2 * p;
        lut[nib][2 * n + 1] = 2 * p + 1;
        ++n;
      }
    }
  }
  return lut;
}
constexpr auto kNibbleLut = MakeNibbleLut();

/// 8x u32 lane mask with lanes whose bit is set in `byte` all-ones.
inline __m256i LaneMask8(uint32_t byte) {
  const __m256i bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i v = _mm256_set1_epi32(static_cast<int>(byte));
  return _mm256_cmpeq_epi32(_mm256_and_si256(v, bits), bits);
}

/// 4x u64 lane mask from a nibble.
inline __m256i LaneMask4(uint32_t nib) {
  const __m256i bits = _mm256_setr_epi64x(1, 2, 4, 8);
  const __m256i v = _mm256_set1_epi64x(static_cast<int>(nib));
  return _mm256_cmpeq_epi64(_mm256_and_si256(v, bits), bits);
}

/// 8x u32 mask covering lanes [0, cnt).
inline __m256i FrontMask8(int cnt) {
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(cnt), iota);
}

/// 4x u64 mask covering lanes [0, cnt).
inline __m256i FrontMask4(int cnt) {
  const __m256i iota = _mm256_setr_epi64x(0, 1, 2, 3);
  return _mm256_cmpgt_epi64(_mm256_set1_epi64x(cnt), iota);
}

uint32_t ExpandMaskAvx2(uint64_t mask, uint32_t base, uint32_t* out) {
  uint32_t n = 0;
  for (uint32_t g = 0; mask != 0; ++g, mask >>= 8) {
    const uint32_t byte = static_cast<uint32_t>(mask & 0xFF);
    if (byte == 0) continue;
    const __m256i idx = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(kByteLut[byte].data())));
    const __m256i v = _mm256_add_epi32(
        idx, _mm256_set1_epi32(static_cast<int>(base + 8 * g)));
    const int cnt = std::popcount(byte);
    _mm256_maskstore_epi32(reinterpret_cast<int*>(out + n), FrontMask8(cnt),
                           v);
    n += static_cast<uint32_t>(cnt);
  }
  return n;
}

uint32_t Compress32Avx2(uint64_t mask, const uint32_t* src, uint32_t* out) {
  uint32_t n = 0;
  for (uint32_t g = 0; mask != 0; ++g, mask >>= 8) {
    const uint32_t byte = static_cast<uint32_t>(mask & 0xFF);
    if (byte == 0) continue;
    const __m256i v = _mm256_maskload_epi32(
        reinterpret_cast<const int*>(src + 8 * g), LaneMask8(byte));
    const __m256i idx = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(kByteLut[byte].data())));
    const __m256i packed = _mm256_permutevar8x32_epi32(v, idx);
    const int cnt = std::popcount(byte);
    _mm256_maskstore_epi32(reinterpret_cast<int*>(out + n), FrontMask8(cnt),
                           packed);
    n += static_cast<uint32_t>(cnt);
  }
  return n;
}

uint32_t Compress64Avx2(uint64_t mask, const uint64_t* src, uint64_t* out) {
  uint32_t n = 0;
  for (uint32_t g = 0; mask != 0; ++g, mask >>= 4) {
    const uint32_t nib = static_cast<uint32_t>(mask & 0xF);
    if (nib == 0) continue;
    const __m256i v = _mm256_maskload_epi64(
        reinterpret_cast<const long long*>(src + 4 * g), LaneMask4(nib));
    // Treat the 4x u64 as 8x u32 and pull the set lanes' pairs forward.
    const __m256i packed = _mm256_permutevar8x32_epi32(
        v, _mm256_loadu_si256(
               reinterpret_cast<const __m256i*>(kNibbleLut[nib].data())));
    const int cnt = std::popcount(nib);
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(out + n),
                           FrontMask4(cnt), packed);
    n += static_cast<uint32_t>(cnt);
  }
  return n;
}

// ---------------------------------------------------------------------------
// Table assembly.

const CodecKernels& Avx2Table() {
  static const CodecKernels kTable = [] {
    CodecKernels t = ScalarKernels();
    t.name = "avx2";
    // Byte-window decode covers widths 2..57; 0, 1 and 58..63 keep scalar
    // (58..63 straddle past an 8-byte window) and 64 gets the aligned copy
    // below.
    [&]<size_t... I>(std::index_sequence<I...>) {
      ((t.unpack_block[I + 2] = &UnpackBlockAvx2<I + 2>,
        t.match_block[I + 2] = &MatchBlockAvx2<I + 2>),
       ...);
    }(std::make_index_sequence<56>{});
    // Byte-aligned widths take the zero-extend fast path (width 64's copy
    // included — the generic scheme does not reach it at all).
    t.unpack_block[8] = &UnpackBlockAlignedAvx2<8>;
    t.unpack_block[16] = &UnpackBlockAlignedAvx2<16>;
    t.unpack_block[32] = &UnpackBlockAlignedAvx2<32>;
    t.unpack_block[64] = &UnpackBlockAlignedAvx2<64>;
    t.match_block[8] = &MatchBlockAlignedAvx2<8>;
    t.match_block[16] = &MatchBlockAlignedAvx2<16>;
    t.match_block[32] = &MatchBlockAlignedAvx2<32>;
    t.match_block[64] = &MatchBlockAlignedAvx2<64>;
    // MatchBlockPartial / UnpackPartial stay scalar: they run once per
    // range on < 64 elements and a vector tail pass cannot beat that.
    [&]<size_t... I>(std::index_sequence<I...>) {
      ((t.gather32[I + 1] = &Gather32Avx2<I + 1>,
        t.gather64[I + 1] = &Gather64Avx2<I + 1>),
       ...);
    }(std::make_index_sequence<64>{});
    t.expand_mask = &ExpandMaskAvx2;
    t.compress32 = &Compress32Avx2;
    t.compress64 = &Compress64Avx2;
    return t;
  }();
  return kTable;
}

}  // namespace

const CodecKernels* Avx2Kernels() {
  if (!(__builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi") &&
        __builtin_cpu_supports("bmi2") && __builtin_cpu_supports("popcnt"))) {
    return nullptr;
  }
  return &Avx2Table();
}

}  // namespace wastenot::bwd::internal

#endif  // WASTENOT_HAVE_AVX2
