// BwdColumn: a bitwise-decomposed, bitwise-distributed column.
//
// The device-resident part is the bit-packed approximation (major bits,
// prefix-compressed); the host-resident part is the bit-packed residual
// (minor bits). Joining the two on tuple id reconstructs exact values
// (paper Fig. 2). The approximation is an *index-like* auxiliary structure:
// it is created explicitly, like an index, by Decompose (the paper's
// `select bwdecompose(A, 24) from R`, §V-A).

#ifndef WASTENOT_BWD_BWD_COLUMN_H_
#define WASTENOT_BWD_BWD_COLUMN_H_

#include <memory>

#include "bwd/decomposition.h"
#include "bwd/packed_vector.h"
#include "columnstore/column.h"
#include "device/device.h"
#include "util/status.h"

namespace wastenot::bwd {

/// A column split into a device-resident approximation and a host residual.
class BwdColumn {
 public:
  BwdColumn() = default;

  /// Decomposes `column`, keeping the top `device_bits` of its type on the
  /// device (the rest becomes the CPU residual), and uploads the packed
  /// approximation into `device`'s arena. Fails with DeviceOutOfMemory when
  /// the approximation does not fit the remaining device capacity.
  static StatusOr<BwdColumn> Decompose(
      const cs::Column& column, uint32_t device_bits, device::Device* device,
      Compression compression = Compression::kBitPacked);

  const DecompositionSpec& spec() const { return spec_; }
  uint64_t size() const { return count_; }
  device::Device* device() const { return device_; }

  /// The device-resident packed approximation digits.
  PackedView approximation() const {
    return PackedView(approx_device_.as<uint64_t>(),
                      spec_.approximation_bits(), count_);
  }
  /// The host-resident packed residual digits.
  const PackedVector& residual() const { return residual_; }

  /// Device bytes occupied by the approximation.
  uint64_t device_bytes() const { return approx_device_.size(); }
  /// Host bytes occupied by the residual.
  uint64_t residual_bytes() const { return residual_.byte_size(); }

  /// Exact value of row `i` (joins approximation and residual on the id).
  int64_t Reconstruct(uint64_t i) const {
    return spec_.Reassemble(approximation().Get(i), residual_.Get(i));
  }

  /// Smallest/largest true value compatible with row i's approximation.
  int64_t ApproxLowerBound(uint64_t i) const {
    return spec_.LowerBound(approximation().Get(i));
  }
  int64_t ApproxUpperBound(uint64_t i) const {
    return spec_.UpperBound(approximation().Get(i));
  }

  /// Materializes all exact values (verification / tooling path).
  cs::Column ReconstructAll() const;

 private:
  DecompositionSpec spec_;
  uint64_t count_ = 0;
  device::Device* device_ = nullptr;
  device::DeviceBuffer approx_device_;
  PackedVector residual_;
};

}  // namespace wastenot::bwd

#endif  // WASTENOT_BWD_BWD_COLUMN_H_
