#include "bwd/decomposition.h"

#include <algorithm>
#include <sstream>

namespace wastenot::bwd {

const char* CompressionToString(Compression c) {
  switch (c) {
    case Compression::kNone:
      return "none";
    case Compression::kBitPacked:
      return "bit-packed";
    case Compression::kBytePrefix:
      return "byte-prefix";
  }
  return "?";
}

DecompositionSpec DecompositionSpec::Plan(int64_t min_value, int64_t max_value,
                                          uint32_t type_bits,
                                          uint32_t device_bits,
                                          Compression compression) {
  DecompositionSpec spec;
  spec.type_bits = type_bits;
  spec.compression = compression;

  switch (compression) {
    case Compression::kNone:
      if (min_value < 0) {
        // Raw packing cannot represent negative values; fall back to a
        // frame-of-reference base (documented behaviour).
        spec.compression = Compression::kBitPacked;
        spec.prefix_base = min_value;
        spec.value_bits =
            bits::BitWidth(static_cast<uint64_t>(max_value - min_value));
        break;
      }
      spec.prefix_base = 0;
      spec.value_bits = bits::BitWidth(static_cast<uint64_t>(max_value));
      break;
    case Compression::kBitPacked:
      spec.prefix_base = min_value;
      spec.value_bits =
          bits::BitWidth(static_cast<uint64_t>(max_value - min_value));
      break;
    case Compression::kBytePrefix: {
      spec.prefix_base = min_value;
      const uint32_t tight =
          bits::BitWidth(static_cast<uint64_t>(max_value - min_value));
      spec.value_bits = static_cast<uint32_t>(bits::CeilDiv(tight, 8) * 8);
      break;
    }
  }
  // Degenerate single-value domains still need one bit of representation.
  spec.value_bits = std::max(spec.value_bits, 1u);

  // bwdecompose(A, k) keeps the top k of the type's bits on the device;
  // the residual is the bottom (type_bits - k) bits — but never more than
  // the significant value bits (a residual cannot exceed the value).
  const uint32_t requested_residual =
      device_bits >= type_bits ? 0 : type_bits - device_bits;
  spec.residual_bits = std::min(requested_residual, spec.value_bits);
  return spec;
}

std::string DecompositionSpec::ToString() const {
  std::ostringstream os;
  os << "Decomposition{type=" << type_bits << "b, device="
     << approximation_bits() << "b packed, residual=" << residual_bits
     << "b, base=" << prefix_base << ", " << CompressionToString(compression)
     << "}";
  return os.str();
}

}  // namespace wastenot::bwd
