// DecompositionSpec: how a column's bits are split between devices and how
// the approximation is compressed (paper §II-A and §V-A).
//
// A 32-bit value decomposed with `bwdecompose(A, 24)` keeps the 24 major
// bits on the device and the 8 minor bits (the residual) on the CPU. On the
// device, leading zeros are removed by prefix compression: values are
// stored relative to a base, packed at the width of the remaining
// significant bits.

#ifndef WASTENOT_BWD_DECOMPOSITION_H_
#define WASTENOT_BWD_DECOMPOSITION_H_

#include <cstdint>
#include <string>

#include "util/bits.h"

namespace wastenot::bwd {

/// Prefix-compression strategy for the device-resident approximation.
enum class Compression : uint8_t {
  /// No rebase; values must be non-negative. Width = BitWidth(max).
  kNone,
  /// Frame-of-reference at bit granularity: base = min, width =
  /// BitWidth(max - min). The tightest packing (the default).
  kBitPacked,
  /// Frame-of-reference rounded up to whole bytes — the byte-granular
  /// "factor out the highest value bytes" scheme of the original BWD work
  /// (paper §VI-C2, the 25% volume reduction on the spatial data).
  kBytePrefix,
};

const char* CompressionToString(Compression c);

/// Complete description of one column's bitwise decomposition.
struct DecompositionSpec {
  /// Bits of the column's physical type (32 or 64).
  uint32_t type_bits = 32;
  /// Minor bits kept CPU-resident (= type_bits - requested device bits,
  /// clamped so that residual_bits <= value_bits).
  uint32_t residual_bits = 0;
  /// Significant bits of the rebased domain (after prefix compression).
  uint32_t value_bits = 0;
  /// Prefix-compression base subtracted before packing.
  int64_t prefix_base = 0;
  Compression compression = Compression::kBitPacked;

  /// Width of the device-resident approximation in bits per value.
  uint32_t approximation_bits() const {
    return value_bits > residual_bits ? value_bits - residual_bits : 0;
  }

  /// True when no residual exists (the column is fully device-resident).
  bool fully_resident() const { return residual_bits == 0; }

  /// Largest positive deviation of a reconstructed-from-approximation
  /// value from the true value: the true value lies in
  /// [approx_value, approx_value + error()].
  uint64_t error() const { return bits::ApproximationError(residual_bits); }

  /// Rebased (unsigned) image of a true value.
  uint64_t Rebase(int64_t v) const {
    return static_cast<uint64_t>(v - prefix_base);
  }
  /// Inverse of Rebase.
  int64_t Unbase(uint64_t u) const {
    return static_cast<int64_t>(u) + prefix_base;
  }

  /// The packed approximation digit of a true value (major bits).
  uint64_t ApproxDigit(int64_t v) const {
    return Rebase(v) >> residual_bits;
  }
  /// The residual digit of a true value (minor bits).
  uint64_t ResidualDigit(int64_t v) const {
    return bits::Residual(Rebase(v), residual_bits);
  }
  /// Reassembles a true value from its two digits (the paper's bitwise
  /// concatenation +bw, then prefix decompression).
  int64_t Reassemble(uint64_t approx_digit, uint64_t residual_digit) const {
    return Unbase((approx_digit << residual_bits) | residual_digit);
  }
  /// The smallest true value compatible with an approximation digit.
  int64_t LowerBound(uint64_t approx_digit) const {
    return Unbase(approx_digit << residual_bits);
  }
  /// The largest true value compatible with an approximation digit.
  int64_t UpperBound(uint64_t approx_digit) const {
    return Unbase((approx_digit << residual_bits) | error());
  }

  /// Plans a decomposition for a domain [min_value, max_value] of a
  /// `type_bits`-wide column with `device_bits` requested major bits.
  static DecompositionSpec Plan(int64_t min_value, int64_t max_value,
                                uint32_t type_bits, uint32_t device_bits,
                                Compression compression);

  std::string ToString() const;
};

}  // namespace wastenot::bwd

#endif  // WASTENOT_BWD_DECOMPOSITION_H_
