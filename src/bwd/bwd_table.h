// BwdTable: a relation whose columns are bitwise-distributed between the
// device and the host. Construction mirrors the paper's explicit,
// index-like decomposition step (§V-A): the caller states, per column, how
// many major bits stay on the device (`bwdecompose(col, k)`).
//
// Distribution is non-redundant: after decomposition the A&R engine reads
// only approximations (device) and residuals (host); the base table is not
// consulted (it remains available to the *classic* engine, which plays the
// CPU-only MonetDB baseline).

#ifndef WASTENOT_BWD_BWD_TABLE_H_
#define WASTENOT_BWD_BWD_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "bwd/bwd_column.h"
#include "columnstore/table.h"
#include "device/device.h"
#include "util/status.h"

namespace wastenot::bwd {

/// Per-column decomposition request.
struct DecomposeRequest {
  std::string column;
  /// Major bits kept on the device, counted from the top of the physical
  /// type (32 = an int32 column is fully device-resident).
  uint32_t device_bits = 32;
  Compression compression = Compression::kBitPacked;
};

/// A bitwise-distributed relation.
class BwdTable {
 public:
  /// Decomposes the requested columns of `base` onto `dev`.
  static StatusOr<BwdTable> Decompose(const cs::Table& base,
                                      const std::vector<DecomposeRequest>& reqs,
                                      device::Device* dev);

  const std::string& name() const { return name_; }
  uint64_t num_rows() const { return rows_; }
  device::Device* device() const { return device_; }

  bool HasColumn(const std::string& column) const {
    return columns_.count(column) != 0;
  }
  const BwdColumn& column(const std::string& column) const {
    return columns_.at(column);
  }

  /// Dictionary passthrough from the base table (dictionary-encoded
  /// columns keep their code books host-side; codes are what is
  /// decomposed).
  const cs::Dictionary* dictionary(const std::string& column) const {
    return base_dictionaries_ != nullptr ? base_dictionaries_->dictionary(column)
                                         : nullptr;
  }

  /// Device bytes across all approximations.
  uint64_t device_bytes() const;
  /// Host bytes across all residuals.
  uint64_t residual_bytes() const;

  std::vector<std::string> column_names() const;

 private:
  std::string name_;
  uint64_t rows_ = 0;
  device::Device* device_ = nullptr;
  std::map<std::string, BwdColumn> columns_;
  const cs::Table* base_dictionaries_ = nullptr;  // dictionaries only
};

}  // namespace wastenot::bwd

#endif  // WASTENOT_BWD_BWD_TABLE_H_
