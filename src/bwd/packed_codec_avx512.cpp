// AVX-512 tier of the packed codec (see packed_codec_kernels.h for the
// table contract and DESIGN.md "Kernel dispatch" for the architecture).
//
// Decode scheme (widths 1..57): each group of eight elements is decoded
// from one 64-byte load clamped inside the block's 8*W bytes (for W < 8
// the whole block fits one register, fetched once with a fault-suppressing
// masked byte load), a cross-lane vpermb (AVX512-VBMI) aligning each
// element's 8-byte window into its 64-bit lane, a variable right shift and
// one mask — about five instructions per eight elements. Widths 58..64
// keep the scalar entries.
//
// Exact-allocation contract: clamped loads are provably in-block (static
// asserts below), masked loads and gathers fault-suppress disabled lanes,
// and the selection fills only ever store through compressstoreu (exactly
// popcount lanes). Masked 512-bit ops are not ASan-instrumented, which is
// fine: the guarantee is hardware-level fault suppression, and the scalar
// tier covers the instrumented-bounds testing.
//
// This TU is compiled with -mavx512{f,bw,dq,vl,vbmi} (CMake adds the flags
// only when the compiler supports them and WASTENOT_FORCE_SCALAR is off);
// runtime CPUID gating happens in Avx512Kernels().

#include "bwd/packed_codec.h"
#include "bwd/packed_codec_kernels.h"

#if defined(WASTENOT_HAVE_AVX512)
#ifndef __AVX512F__
#error "packed_codec_avx512.cpp must be compiled with -mavx512f (and friends)"
#endif

#include <immintrin.h>

#include <array>
#include <bit>
#include <cstring>
#include <utility>

namespace wastenot::bwd::internal {
namespace {

// ---------------------------------------------------------------------------
// Byte-window layout for the group loads.

/// Base byte of the 64-byte load covering elements 8g..8g+7, clamped
/// in-block (0 when the whole block fits one register).
template <uint32_t W>
constexpr uint32_t GroupBase(uint32_t g) {
  if (8 * W <= 64) return 0;
  const uint32_t natural = g * W;  // 8 elements * W bits = W bytes
  const uint32_t clamp = 8 * W - 64;
  return natural < clamp ? natural : clamp;
}

/// Every element's 8-byte window must sit within its group's 64-byte load
/// (vpermb indices 0..63) and every full load within the block.
template <uint32_t W>
constexpr bool GroupsValid() {
  for (uint32_t g = 0; g < 8; ++g) {
    const uint32_t base = GroupBase<W>(g);
    if (8 * W > 64 && base + 64 > 8 * W) return false;
    for (uint32_t lane = 0; lane < 8; ++lane) {
      const uint32_t start = ByteWindow<W>::StartByte(8 * g + lane);
      if (start < base) return false;
      if (start - base + 8 > 64) return false;
    }
  }
  return true;
}

/// vpermb control aligning the eight elements 8G..8G+7 into 64-bit lanes.
template <uint32_t W, uint32_t G>
constexpr std::array<uint8_t, 64> MakePerm8() {
  std::array<uint8_t, 64> p{};
  for (uint32_t lane = 0; lane < 8; ++lane) {
    const uint32_t off =
        ByteWindow<W>::StartByte(8 * G + lane) - GroupBase<W>(G);
    for (uint32_t t = 0; t < 8; ++t) {
      p[lane * 8 + t] = static_cast<uint8_t>(off + t);
    }
  }
  return p;
}

/// Aligns group G's eight elements out of `data` (the group's 64-byte
/// window) into zero-extended 64-bit lanes.
template <uint32_t W, uint32_t G>
inline __m512i PermShiftMask(__m512i data) {
  static_assert(W >= 1 && W <= 57);
  static_assert(ByteWindow<W>::Valid());
  static_assert(GroupsValid<W>());
  static constexpr std::array<uint8_t, 64> kPerm = MakePerm8<W, G>();
  constexpr uint32_t kJ0 = 8 * G;
  __m512i v = _mm512_permutexvar_epi8(
      _mm512_loadu_si512(kPerm.data()), data);
  v = _mm512_srlv_epi64(
      v, _mm512_setr_epi64(ByteWindow<W>::Shift(kJ0),
                           ByteWindow<W>::Shift(kJ0 + 1),
                           ByteWindow<W>::Shift(kJ0 + 2),
                           ByteWindow<W>::Shift(kJ0 + 3),
                           ByteWindow<W>::Shift(kJ0 + 4),
                           ByteWindow<W>::Shift(kJ0 + 5),
                           ByteWindow<W>::Shift(kJ0 + 6),
                           ByteWindow<W>::Shift(kJ0 + 7)));
  return _mm512_and_si512(
      v, _mm512_set1_epi64(static_cast<long long>(bits::LowMask(W))));
}

/// Whole block (8*W <= 64 bytes) in one register, missing bytes zeroed by
/// a fault-suppressing masked load.
template <uint32_t W>
inline __m512i LoadWholeBlock(const uint8_t* bytes) {
  constexpr __mmask64 kMask =
      8 * W == 64 ? ~__mmask64{0} : ((__mmask64{1} << (8 * W)) - 1);
  return _mm512_maskz_loadu_epi8(kMask, bytes);
}

// ---------------------------------------------------------------------------
// Block kernels.

template <uint32_t W>
void UnpackBlockAvx512(const uint64_t* in, uint64_t* out) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(in);
  if constexpr (8 * W <= 64) {
    const __m512i whole = LoadWholeBlock<W>(bytes);
    [&]<size_t... G>(std::index_sequence<G...>) {
      ((_mm512_storeu_si512(out + 8 * G, PermShiftMask<W, G>(whole))), ...);
    }(std::make_index_sequence<8>{});
  } else {
    [&]<size_t... G>(std::index_sequence<G...>) {
      ((_mm512_storeu_si512(
           out + 8 * G,
           PermShiftMask<W, G>(
               _mm512_loadu_si512(bytes + GroupBase<W>(G))))),
       ...);
    }(std::make_index_sequence<8>{});
  }
}

template <uint32_t W>
uint64_t MatchBlockAvx512(const uint64_t* in, uint64_t lo, uint64_t span) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(in);
  const __m512i vlo = _mm512_set1_epi64(static_cast<long long>(lo));
  const __m512i vspan = _mm512_set1_epi64(static_cast<long long>(span));
  uint64_t m = 0;
  const auto lane8 = [&](auto group, __m512i data) {
    constexpr uint32_t G = decltype(group)::value;
    const __mmask8 k = _mm512_cmple_epu64_mask(
        _mm512_sub_epi64(PermShiftMask<W, G>(data), vlo), vspan);
    m |= static_cast<uint64_t>(k) << (8 * G);
  };
  if constexpr (8 * W <= 64) {
    const __m512i whole = LoadWholeBlock<W>(bytes);
    [&]<size_t... G>(std::index_sequence<G...>) {
      ((lane8(std::integral_constant<uint32_t, G>{}, whole)), ...);
    }(std::make_index_sequence<8>{});
  } else {
    [&]<size_t... G>(std::index_sequence<G...>) {
      ((lane8(std::integral_constant<uint32_t, G>{},
              _mm512_loadu_si512(bytes + GroupBase<W>(G)))),
       ...);
    }(std::make_index_sequence<8>{});
  }
  return m;
}

// Byte-aligned widths (8/16/32/64) need no permute or shift at all: each
// group of eight elements is a contiguous run of packed lanes, so a plain
// zero-extending load (vpmovzx) — or a straight copy at width 64 — beats
// the generic vpermb path. Every load is exactly the group's bytes, so
// exact-allocation safety is trivial.
template <uint32_t W>
inline __m512i LoadGroup8Aligned(const uint8_t* bytes, uint32_t g) {
  static_assert(W == 8 || W == 16 || W == 32 || W == 64);
  if constexpr (W == 8) {
    return _mm512_cvtepu8_epi64(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bytes + 8 * g)));
  } else if constexpr (W == 16) {
    return _mm512_cvtepu16_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 16 * g)));
  } else if constexpr (W == 32) {
    return _mm512_cvtepu32_epi64(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bytes + 32 * g)));
  } else {
    return _mm512_loadu_si512(bytes + 64 * g);
  }
}

template <uint32_t W>
void UnpackBlockAlignedAvx512(const uint64_t* in, uint64_t* out) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(in);
  for (uint32_t g = 0; g < 8; ++g) {
    _mm512_storeu_si512(out + 8 * g, LoadGroup8Aligned<W>(bytes, g));
  }
}

template <uint32_t W>
uint64_t MatchBlockAlignedAvx512(const uint64_t* in, uint64_t lo,
                                 uint64_t span) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(in);
  const __m512i vlo = _mm512_set1_epi64(static_cast<long long>(lo));
  const __m512i vspan = _mm512_set1_epi64(static_cast<long long>(span));
  uint64_t m = 0;
  for (uint32_t g = 0; g < 8; ++g) {
    const __mmask8 k = _mm512_cmple_epu64_mask(
        _mm512_sub_epi64(LoadGroup8Aligned<W>(bytes, g), vlo), vspan);
    m |= static_cast<uint64_t>(k) << (8 * g);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Gather (all widths 1..64): eight ids per iteration. The high word of a
// straddling element comes from a masked gather, so non-straddling lanes
// (in particular the final element of an exactly-sized buffer) never
// touch word + 1.

template <uint32_t W, typename Id>
inline void GatherAvx512(const uint64_t* words, const Id* ids, uint64_t n,
                         uint64_t* out) {
  static_assert(W >= 1 && W <= 64);
  const __m512i v_w = _mm512_set1_epi64(W);
  const __m512i v_mask =
      _mm512_set1_epi64(static_cast<long long>(bits::LowMask(W)));
  const __m512i v_63 = _mm512_set1_epi64(63);
  const __m512i v_64 = _mm512_set1_epi64(64);
  const __m512i v_one = _mm512_set1_epi64(1);
  const __m512i v_nostrad = _mm512_set1_epi64(64 - static_cast<int>(W));

  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i id;
    if constexpr (sizeof(Id) == 4) {
      id = _mm512_cvtepu32_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i)));
    } else {
      id = _mm512_loadu_si512(ids + i);
    }
    const __m512i bitpos = _mm512_mullo_epi64(id, v_w);
    const __m512i word = _mm512_srli_epi64(bitpos, 6);
    const __m512i shift = _mm512_and_si512(bitpos, v_63);
    const __m512i lo = _mm512_i64gather_epi64(word, words, 8);
    const __mmask8 strad = _mm512_cmpgt_epi64_mask(shift, v_nostrad);
    const __m512i hi = _mm512_mask_i64gather_epi64(
        _mm512_setzero_si512(), strad, _mm512_add_epi64(word, v_one), words,
        8);
    __m512i v = _mm512_or_si512(
        _mm512_srlv_epi64(lo, shift),
        _mm512_sllv_epi64(hi, _mm512_sub_epi64(v_64, shift)));
    v = _mm512_and_si512(v, v_mask);
    _mm512_storeu_si512(out + i, v);
  }
  if (i < n) {
    if constexpr (sizeof(Id) == 4) {
      ScalarKernels().gather32[W](words, ids + i, n - i, out + i);
    } else {
      ScalarKernels().gather64[W](words, ids + i, n - i, out + i);
    }
  }
}

template <uint32_t W>
void Gather32Avx512(const uint64_t* words, const uint32_t* ids, uint64_t n,
                    uint64_t* out) {
  GatherAvx512<W>(words, ids, n, out);
}
template <uint32_t W>
void Gather64Avx512(const uint64_t* words, const uint64_t* ids, uint64_t n,
                    uint64_t* out) {
  GatherAvx512<W>(words, ids, n, out);
}

// ---------------------------------------------------------------------------
// Selection fills: native compress. maskz loads fault-suppress disabled
// lanes; compressstoreu writes exactly popcount lanes.

uint32_t ExpandMaskAvx512(uint64_t mask, uint32_t base, uint32_t* out) {
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                         11, 12, 13, 14, 15);
  uint32_t n = 0;
  for (uint32_t g = 0; mask != 0; ++g, mask >>= 16) {
    const uint32_t bits16 = static_cast<uint32_t>(mask & 0xFFFF);
    if (bits16 == 0) continue;
    const __m512i v = _mm512_add_epi32(
        iota, _mm512_set1_epi32(static_cast<int>(base + 16 * g)));
    _mm512_mask_compressstoreu_epi32(out + n,
                                     static_cast<__mmask16>(bits16), v);
    n += static_cast<uint32_t>(std::popcount(bits16));
  }
  return n;
}

uint32_t Compress32Avx512(uint64_t mask, const uint32_t* src, uint32_t* out) {
  uint32_t n = 0;
  for (uint32_t g = 0; mask != 0; ++g, mask >>= 16) {
    const uint32_t bits16 = static_cast<uint32_t>(mask & 0xFFFF);
    if (bits16 == 0) continue;
    const __m512i v = _mm512_maskz_loadu_epi32(
        static_cast<__mmask16>(bits16), src + 16 * g);
    _mm512_mask_compressstoreu_epi32(out + n,
                                     static_cast<__mmask16>(bits16), v);
    n += static_cast<uint32_t>(std::popcount(bits16));
  }
  return n;
}

uint32_t Compress64Avx512(uint64_t mask, const uint64_t* src, uint64_t* out) {
  uint32_t n = 0;
  for (uint32_t g = 0; mask != 0; ++g, mask >>= 8) {
    const uint32_t bits8 = static_cast<uint32_t>(mask & 0xFF);
    if (bits8 == 0) continue;
    const __m512i v =
        _mm512_maskz_loadu_epi64(static_cast<__mmask8>(bits8), src + 8 * g);
    _mm512_mask_compressstoreu_epi64(out + n, static_cast<__mmask8>(bits8),
                                     v);
    n += static_cast<uint32_t>(std::popcount(bits8));
  }
  return n;
}

// ---------------------------------------------------------------------------
// Table assembly.

const CodecKernels& Avx512Table() {
  static const CodecKernels kTable = [] {
    CodecKernels t = ScalarKernels();
    t.name = "avx512";
    // vpermb decode covers widths 1..57; 58..63 keep scalar (they straddle
    // past an 8-byte window) and 64 gets the aligned copy below.
    [&]<size_t... I>(std::index_sequence<I...>) {
      ((t.unpack_block[I + 1] = &UnpackBlockAvx512<I + 1>,
        t.match_block[I + 1] = &MatchBlockAvx512<I + 1>),
       ...);
    }(std::make_index_sequence<57>{});
    // Byte-aligned widths take the zero-extend fast path (width 64's copy
    // included — the generic scheme does not reach it at all).
    t.unpack_block[8] = &UnpackBlockAlignedAvx512<8>;
    t.unpack_block[16] = &UnpackBlockAlignedAvx512<16>;
    t.unpack_block[32] = &UnpackBlockAlignedAvx512<32>;
    t.unpack_block[64] = &UnpackBlockAlignedAvx512<64>;
    t.match_block[8] = &MatchBlockAlignedAvx512<8>;
    t.match_block[16] = &MatchBlockAlignedAvx512<16>;
    t.match_block[32] = &MatchBlockAlignedAvx512<32>;
    t.match_block[64] = &MatchBlockAlignedAvx512<64>;
    // MatchBlockPartial / UnpackPartial stay scalar (tail-only work).
    [&]<size_t... I>(std::index_sequence<I...>) {
      ((t.gather32[I + 1] = &Gather32Avx512<I + 1>,
        t.gather64[I + 1] = &Gather64Avx512<I + 1>),
       ...);
    }(std::make_index_sequence<64>{});
    t.expand_mask = &ExpandMaskAvx512;
    t.compress32 = &Compress32Avx512;
    t.compress64 = &Compress64Avx512;
    return t;
  }();
  return kTable;
}

}  // namespace

const CodecKernels* Avx512Kernels() {
  if (!(__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512vbmi"))) {
    return nullptr;
  }
  return &Avx512Table();
}

}  // namespace wastenot::bwd::internal

#endif  // WASTENOT_HAVE_AVX512
