#include "bwd/bwd_table.h"

namespace wastenot::bwd {

StatusOr<BwdTable> BwdTable::Decompose(
    const cs::Table& base, const std::vector<DecomposeRequest>& reqs,
    device::Device* dev) {
  BwdTable out;
  out.name_ = base.name();
  out.rows_ = base.num_rows();
  out.device_ = dev;
  out.base_dictionaries_ = &base;
  for (const DecomposeRequest& req : reqs) {
    if (!base.HasColumn(req.column)) {
      return Status::NotFound("table '" + base.name() + "' has no column '" +
                              req.column + "'");
    }
    WN_ASSIGN_OR_RETURN(BwdColumn col,
                        BwdColumn::Decompose(base.column(req.column),
                                             req.device_bits, dev,
                                             req.compression));
    out.columns_.emplace(req.column, std::move(col));
  }
  return out;
}

uint64_t BwdTable::device_bytes() const {
  uint64_t total = 0;
  for (const auto& [_, col] : columns_) total += col.device_bytes();
  return total;
}

uint64_t BwdTable::residual_bytes() const {
  uint64_t total = 0;
  for (const auto& [_, col] : columns_) total += col.residual_bytes();
  return total;
}

std::vector<std::string> BwdTable::column_names() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& [name, _] : columns_) names.push_back(name);
  return names;
}

}  // namespace wastenot::bwd
