#include "bwd/partition.h"

#include <algorithm>
#include <utility>

namespace wastenot::bwd {

namespace {

/// Min/max of `col` without mutating its descriptor: uses builder-set
/// stats when present, scans otherwise.
std::pair<int64_t, int64_t> ColumnBounds(const cs::Column& col) {
  if (col.has_stats()) return {col.min_value(), col.max_value()};
  if (col.empty()) return {0, 0};
  int64_t mn = col.Get(0), mx = mn;
  for (uint64_t i = 1; i < col.size(); ++i) {
    const int64_t v = col.Get(i);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  return {mn, mx};
}

/// Width of one range-partition stripe: ceil(span / S) over the rebased
/// domain, computed in 128 bits so a full-int64 domain cannot overflow.
uint64_t StripeWidth(int64_t key_min, int64_t key_max, uint32_t num_shards) {
  const unsigned __int128 span =
      static_cast<unsigned __int128>(static_cast<uint64_t>(key_max) -
                                     static_cast<uint64_t>(key_min)) +
      1;
  const unsigned __int128 w = (span + num_shards - 1) / num_shards;
  return static_cast<uint64_t>(std::max<unsigned __int128>(w, 1));
}

uint32_t RouteRow(const PartitionSpec& spec, int64_t key, int64_t key_min,
                  uint64_t stripe_width) {
  const uint64_t rebased =
      static_cast<uint64_t>(key) - static_cast<uint64_t>(key_min);
  if (spec.kind == PartitionKind::kRadix) {
    return static_cast<uint32_t>(rebased % spec.num_shards);
  }
  return static_cast<uint32_t>(
      std::min<uint64_t>(rebased / stripe_width, spec.num_shards - 1));
}

}  // namespace

const char* PartitionKindToString(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kRange:
      return "range";
    case PartitionKind::kRadix:
      return "radix";
  }
  return "?";
}

StatusOr<TablePartition> PartitionTable(const cs::Table& base,
                                        const PartitionSpec& spec) {
  if (spec.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (!base.HasColumn(spec.key_column)) {
    return Status::NotFound("table '" + base.name() + "' has no column '" +
                            spec.key_column + "' to partition on");
  }
  const uint32_t num_shards = spec.num_shards;
  const cs::Column& key = base.column(spec.key_column);
  const auto [key_min, key_max] = ColumnBounds(key);
  const uint64_t stripe = StripeWidth(key_min, key_max, num_shards);

  TablePartition out;
  out.spec = spec;
  out.key_min = key_min;
  out.key_max = key_max;
  out.num_rows = base.num_rows();

  // Route every row once.
  out.global_rows.resize(num_shards);
  for (uint64_t i = 0; i < base.num_rows(); ++i) {
    const uint32_t s = RouteRow(spec, key.Get(i), key_min, stripe);
    out.global_rows[s].push_back(static_cast<cs::oid_t>(i));
  }

  // Shard key hulls (invariant 3). Range stripes are exact intervals; radix
  // scatters keys, so every non-prunable shard hull is the full domain.
  out.key_ranges.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (spec.kind == PartitionKind::kRange) {
      const unsigned __int128 lo128 =
          static_cast<unsigned __int128>(stripe) * s;
      const unsigned __int128 hi128 = lo128 + stripe - 1;
      const unsigned __int128 span =
          static_cast<uint64_t>(key_max) - static_cast<uint64_t>(key_min);
      if (lo128 > span) {
        // Stripe past the domain: structurally empty shard.
        out.key_ranges.push_back(cs::RangePred{1, 0});
      } else {
        const int64_t lo = key_min + static_cast<int64_t>(
                                         static_cast<uint64_t>(lo128));
        const int64_t hi =
            hi128 > span ? key_max
                         : key_min + static_cast<int64_t>(
                                         static_cast<uint64_t>(hi128));
        out.key_ranges.push_back(cs::RangePred{lo, hi});
      }
    } else {
      out.key_ranges.push_back(cs::RangePred{key_min, key_max});
    }
  }

  // Materialize shard tables. Every shard column inherits the parent
  // column's min/max (invariant 2: identical DecompositionSpec per shard).
  const std::vector<std::string> columns = base.column_names();
  out.shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    const cs::OidVec& rows = out.global_rows[s];
    cs::Table shard(base.name());
    for (const std::string& name : columns) {
      const cs::Column& src = base.column(name);
      cs::Column dst(src.type(), rows.size());
      for (uint64_t i = 0; i < rows.size(); ++i) dst.Set(i, src.Get(rows[i]));
      const auto [mn, mx] = ColumnBounds(src);
      dst.SetStats(mn, mx);
      WN_RETURN_IF_ERROR(shard.AddColumn(name, std::move(dst)));
      if (const cs::Dictionary* dict = base.dictionary(name)) {
        shard.AttachDictionary(name, *dict);
      }
    }
    out.shards.push_back(std::move(shard));
  }
  return out;
}

StatusOr<ShardedBwdTable> DecomposeSharded(
    const cs::Table& base, const std::vector<DecomposeRequest>& reqs,
    const PartitionSpec& pspec, device::DeviceGroup* group) {
  if (group == nullptr || group->size() == 0) {
    return Status::InvalidArgument("DecomposeSharded requires a DeviceGroup");
  }
  WN_ASSIGN_OR_RETURN(TablePartition partition, PartitionTable(base, pspec));
  ShardedBwdTable out;
  out.partition = std::move(partition);
  out.shards.reserve(out.partition.num_shards());
  for (uint32_t s = 0; s < out.partition.num_shards(); ++s) {
    device::Device* dev = &group->device(s % group->size());
    // Decompose against the *owned* shard table: the BwdTable keeps a
    // dictionary-passthrough pointer into it.
    WN_ASSIGN_OR_RETURN(
        BwdTable shard,
        BwdTable::Decompose(out.partition.shards[s], reqs, dev));
    out.shards.push_back(std::move(shard));
  }
  return out;
}

std::vector<uint32_t> TargetShards(const TablePartition& partition,
                                   const cs::RangePred& key_range) {
  std::vector<uint32_t> targets;
  const uint32_t n = partition.num_shards();
  if (key_range.Empty()) {
    // A contradictory key predicate selects nothing; any one shard's empty
    // run reproduces the single-device zero skeleton.
    targets.push_back(0);
    return targets;
  }
  if (partition.spec.kind == PartitionKind::kRadix &&
      key_range.lo == key_range.hi) {
    // Point predicate on a radix key routes to exactly one shard (when the
    // point lies inside the keyed domain at all).
    const int64_t v = key_range.lo;
    if (v >= partition.key_min && v <= partition.key_max) {
      const uint64_t rebased =
          static_cast<uint64_t>(v) - static_cast<uint64_t>(partition.key_min);
      targets.push_back(static_cast<uint32_t>(rebased % n));
    }
  } else {
    for (uint32_t s = 0; s < n; ++s) {
      const cs::RangePred& hull = partition.key_ranges[s];
      if (hull.Empty()) continue;
      if (key_range.hi >= hull.lo && key_range.lo <= hull.hi) {
        targets.push_back(s);
      }
    }
  }
  // Never prune everything: shard 0 stands in so ungrouped merges still
  // produce the one-group zero skeleton a single-device run emits.
  if (targets.empty()) targets.push_back(0);
  return targets;
}

StatusOr<std::vector<BwdTable>> ReplicatePerDevice(
    const cs::Table& base, const std::vector<DecomposeRequest>& reqs,
    device::DeviceGroup* group) {
  if (group == nullptr || group->size() == 0) {
    return Status::InvalidArgument("ReplicatePerDevice requires a DeviceGroup");
  }
  std::vector<BwdTable> replicas;
  replicas.reserve(group->size());
  for (uint32_t d = 0; d < group->size(); ++d) {
    WN_ASSIGN_OR_RETURN(BwdTable replica,
                        BwdTable::Decompose(base, reqs, &group->device(d)));
    replicas.push_back(std::move(replica));
  }
  return replicas;
}

std::vector<cs::Database> BuildShardDatabases(
    const TablePartition& partition,
    const std::vector<const cs::Table*>& extra_tables) {
  std::vector<cs::Database> dbs;
  dbs.reserve(partition.num_shards());
  for (uint32_t s = 0; s < partition.num_shards(); ++s) {
    cs::Database db;
    (void)db.AddTable(partition.shards[s].Clone());
    for (const cs::Table* extra : extra_tables) {
      if (extra != nullptr) (void)db.AddTable(extra->Clone());
    }
    dbs.push_back(std::move(db));
  }
  return dbs;
}

}  // namespace wastenot::bwd
