// Horizontal partitioning of relations for multi-device sharded execution.
//
// A table is split into S shards on one key column — equal-width *range*
// partitioning (shard hulls are disjoint key intervals, enabling data-local
// shard pruning for range predicates) or *radix* partitioning (rebased key
// modulo S: balanced under skewed-but-diverse keys, point-prunable).
//
// Invariants every partitioning upholds (property-tested):
//   1. Round trip: concatenating the shards' rows in (shard, local-row)
//      order, routed through `global_rows`, reproduces the base table
//      exactly — every global row appears in exactly one shard.
//   2. Spec identity: every shard column is stamped with the *parent*
//      column's min/max stats, so BwdColumn::Decompose plans the identical
//      DecompositionSpec (prefix base, packed widths, error bound) on every
//      shard. Approximate digits are therefore shard-invariant, which is
//      what makes sharded Phase-A bounds and merges exact mirrors of the
//      single-device ones.
//   3. Hull soundness: every key of shard s lies in `key_ranges[s]`, so a
//      predicate range that misses the hull proves the shard contributes
//      zero result rows (the data-local pruning rule).
//
// The global→shard row-id mapping (`global_rows`) is positional and
// immutable, so it survives projection and fkjoin: those operators permute
// *candidate lists* of local row ids, and a local id can be mapped back to
// its global id at any point downstream.

#ifndef WASTENOT_BWD_PARTITION_H_
#define WASTENOT_BWD_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bwd/bwd_table.h"
#include "columnstore/database.h"
#include "columnstore/table.h"
#include "columnstore/types.h"
#include "device/device_group.h"
#include "util/status.h"

namespace wastenot::bwd {

/// How rows are routed to shards.
enum class PartitionKind : uint8_t {
  kRange,  ///< equal-width key intervals over [min, max]
  kRadix,  ///< rebased key modulo num_shards (low bits when S = 2^k)
};

const char* PartitionKindToString(PartitionKind kind);

/// A horizontal-partitioning request.
struct PartitionSpec {
  PartitionKind kind = PartitionKind::kRange;
  std::string key_column;
  uint32_t num_shards = 2;
};

/// A base table split into per-shard cs::Tables plus the row-id mapping.
struct TablePartition {
  PartitionSpec spec;
  std::vector<cs::Table> shards;         ///< shard tables (all columns)
  std::vector<cs::OidVec> global_rows;   ///< [shard][local row] -> global row
  std::vector<cs::RangePred> key_ranges; ///< per-shard key hull (invariant 3)
  int64_t key_min = 0;                   ///< key domain the router used
  int64_t key_max = 0;
  uint64_t num_rows = 0;                 ///< base-table rows (= sum of shards)

  uint32_t num_shards() const { return static_cast<uint32_t>(shards.size()); }
};

/// Partitions `base` by `spec`. Shard columns inherit the parent column's
/// stats (invariant 2) and dictionaries are replicated per shard. Empty
/// shards (skew, or num_rows < num_shards) are legal and stay in place so
/// shard index == device index routing is stable.
StatusOr<TablePartition> PartitionTable(const cs::Table& base,
                                        const PartitionSpec& spec);

/// A partitioned relation decomposed shard-by-shard onto a DeviceGroup:
/// shard i lives on group device i % group->size(). Owns the partitioned
/// cs::Tables too — each BwdTable's dictionary passthrough points into its
/// shard table, so the two move together.
struct ShardedBwdTable {
  TablePartition partition;
  std::vector<BwdTable> shards;

  uint32_t num_shards() const { return partition.num_shards(); }
  uint64_t num_rows() const { return partition.num_rows; }
  const PartitionSpec& spec() const { return partition.spec; }
  const std::vector<cs::OidVec>& global_rows() const {
    return partition.global_rows;
  }
  const std::vector<cs::RangePred>& key_ranges() const {
    return partition.key_ranges;
  }
};

/// Partitions `base` by `pspec`, then decomposes every shard with the same
/// per-column requests onto `group` (shard i -> device i % group size).
/// Because of stat inheritance, all shards share one DecompositionSpec per
/// column and their merged results are bit-identical to an unpartitioned
/// decomposition's.
StatusOr<ShardedBwdTable> DecomposeSharded(
    const cs::Table& base, const std::vector<DecomposeRequest>& reqs,
    const PartitionSpec& pspec, device::DeviceGroup* group);

/// Shards whose key hull intersects `key_range` — the data-local pruning
/// rule: a shard whose hull misses the predicate range on the partition key
/// provably contributes zero result rows (range kind; radix prunes point
/// predicates only). Never returns an empty set: shard 0 is kept as the
/// degenerate representative so ungrouped merges still see one shard's
/// zero-row skeleton.
std::vector<uint32_t> TargetShards(const TablePartition& partition,
                                   const cs::RangePred& key_range);
inline std::vector<uint32_t> TargetShards(const ShardedBwdTable& table,
                                          const cs::RangePred& key_range) {
  return TargetShards(table.partition, key_range);
}

/// Decomposes `base` once per group device (the paper's Fig 11 dimension
/// replication: every device holds a full dimension copy so fkjoins stay
/// shard-local). Entry i is the replica on group device i; `base` must
/// outlive the replicas (dictionary passthrough).
StatusOr<std::vector<BwdTable>> ReplicatePerDevice(
    const cs::Table& base, const std::vector<DecomposeRequest>& reqs,
    device::DeviceGroup* group);

/// Builds one cs::Database per shard, each holding that shard's fact table
/// (named after the base table so QuerySpec::table resolves unchanged) plus
/// a full replica of every table in `extra_tables` (dimension tables — the
/// paper's Fig 11 replication strategy). For the streaming engine's sharded
/// path.
std::vector<cs::Database> BuildShardDatabases(
    const TablePartition& partition,
    const std::vector<const cs::Table*>& extra_tables);

}  // namespace wastenot::bwd

#endif  // WASTENOT_BWD_PARTITION_H_
