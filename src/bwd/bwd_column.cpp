#include "bwd/bwd_column.h"

#include <cstring>

#include "bwd/packed_codec.h"
#include "util/thread_pool.h"

namespace wastenot::bwd {

StatusOr<BwdColumn> BwdColumn::Decompose(const cs::Column& column,
                                         uint32_t device_bits,
                                         device::Device* device,
                                         Compression compression) {
  if (device == nullptr) {
    return Status::InvalidArgument("Decompose requires a device");
  }
  if (device_bits == 0) {
    return Status::InvalidArgument("device_bits must be >= 1");
  }
  const cs::Column* col = &column;
  int64_t min_value, max_value;
  if (column.has_stats()) {
    min_value = column.min_value();
    max_value = column.max_value();
  } else {
    // Stats are required to plan the prefix compression; compute locally.
    int64_t mn = column.size() ? column.Get(0) : 0;
    int64_t mx = mn;
    for (uint64_t i = 1; i < column.size(); ++i) {
      const int64_t v = column.Get(i);
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    min_value = mn;
    max_value = mx;
  }

  const uint32_t type_bits =
      column.type() == cs::ValueType::kInt32 ? 32u : 64u;
  BwdColumn out;
  out.spec_ = DecompositionSpec::Plan(min_value, max_value, type_bits,
                                      device_bits, compression);
  out.count_ = column.size();
  out.device_ = device;

  const DecompositionSpec& spec = out.spec_;
  const uint32_t approx_width = spec.approximation_bits();

  // Pack approximation digits on the host, then move them to the device.
  PackedVector approx_host(approx_width, out.count_);
  out.residual_ = PackedVector(spec.residual_bits, out.count_);
  {
    uint64_t* approx_words = approx_host.mutable_words();
    uint64_t* res_words = out.residual_.mutable_words();
    // Chunk at multiples of 64 elements: element index 64k starts on a
    // word boundary for every width, so chunks never share words.
    const uint64_t n = out.count_;
    const uint64_t chunk_elems = 1u << 16;  // multiple of 64
    const uint64_t chunks = bits::CeilDiv(n, chunk_elems);
    ParallelFor(chunks, [&](uint64_t cb, uint64_t ce) {
      // Digitize a block at a time into scratch, then bulk-encode both
      // digit streams whole-word via PackRange (no read-modify-write on
      // full blocks; chunk boundaries are word boundaries for every width).
      uint64_t approx_digits[kPackedBlockElems];
      uint64_t res_digits[kPackedBlockElems];
      for (uint64_t c = cb; c < ce; ++c) {
        const uint64_t begin = c * chunk_elems;
        const uint64_t end = std::min(n, begin + chunk_elems);
        for (uint64_t b0 = begin; b0 < end; b0 += kPackedBlockElems) {
          const uint32_t lanes =
              static_cast<uint32_t>(std::min(end - b0, kPackedBlockElems));
          for (uint32_t j = 0; j < lanes; ++j) {
            const int64_t v = col->Get(b0 + j);
            approx_digits[j] = spec.ApproxDigit(v);
            res_digits[j] = spec.ResidualDigit(v);
          }
          PackRange(approx_words, approx_width, b0, lanes, approx_digits);
          PackRange(res_words, spec.residual_bits, b0, lanes, res_digits);
        }
      }
    });
  }

  WN_ASSIGN_OR_RETURN(
      out.approx_device_,
      device->Upload(approx_host.words(),
                     approx_host.word_count() * sizeof(uint64_t)));
  return out;
}

cs::Column BwdColumn::ReconstructAll() const {
  cs::Column out(cs::ValueType::kInt64, count_);
  auto dst = out.MutableI64();
  const PackedView approx = approximation();
  const PackedView res = residual_.view();
  uint64_t approx_digits[kPackedBlockElems];
  uint64_t res_digits[kPackedBlockElems];
  for (uint64_t b0 = 0; b0 < count_; b0 += kPackedBlockElems) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(count_ - b0, kPackedBlockElems));
    UnpackRange(approx, b0, lanes, approx_digits);
    UnpackRange(res, b0, lanes, res_digits);
    for (uint32_t j = 0; j < lanes; ++j) {
      dst[b0 + j] = spec_.Reassemble(approx_digits[j], res_digits[j]);
    }
  }
  return out;
}

}  // namespace wastenot::bwd
