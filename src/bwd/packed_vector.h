// Fixed-width bit-packed arrays — the physical representation of
// approximations and residuals (paper §II-A: approximations are stored
// bit-packed after removing leading zeros; §VI-D1: "these attributes only
// occupy little space on the GPU if stored bit-packed").
//
// PackedVector owns its words; PackedView is a non-owning codec over words
// living elsewhere (e.g. in a DeviceBuffer). Widths 0..64 are supported;
// width 0 is a valid degenerate vector of all-zero values occupying no
// space (it arises when every bit of a column is residual, or none is).
//
// Two layout guarantees every consumer may rely on:
//   1. Block alignment: 64 * width bits is a whole number of words, so any
//      element index that is a multiple of 64 starts on a word boundary
//      for every width. Parallel encoders chunk at multiples of 64, and
//      the bulk codec (packed_codec.h) decodes 64-element blocks
//      word-at-a-time off this invariant.
//   2. Padding word: allocations always include one word past the last
//      data word (PackedWordCount), so two-word reads at the final
//      element stay in bounds. BwdColumn uploads the padding word with
//      the data; anyone materializing packed words elsewhere must too.

#ifndef WASTENOT_BWD_PACKED_VECTOR_H_
#define WASTENOT_BWD_PACKED_VECTOR_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bits.h"

namespace wastenot::bwd {

namespace internal {

/// Reads the `width`-bit value at element index `i` from `words`.
/// `words` must have one padding word past the last data word.
inline uint64_t PackedGet(const uint64_t* words, uint32_t width, uint64_t i) {
  if (width == 0) return 0;
  const uint64_t bitpos = i * width;
  const uint64_t word = bitpos >> 6;
  const uint32_t shift = static_cast<uint32_t>(bitpos & 63);
  // Two-word read handles straddling; the padding word keeps it in bounds.
  uint64_t v = words[word] >> shift;
  if (shift + width > 64) {
    v |= words[word + 1] << (64 - shift);
  }
  return v & bits::LowMask(width);
}

/// Writes the `width`-bit value at element index `i`. Not safe for
/// concurrent writes to adjacent elements that share a word; parallel
/// encoders must chunk at multiples of 64 elements (any element index that
/// is a multiple of 64 starts on a word boundary for every width).
inline void PackedSet(uint64_t* words, uint32_t width, uint64_t i,
                      uint64_t value) {
  if (width == 0) return;
  const uint64_t bitpos = i * width;
  const uint64_t word = bitpos >> 6;
  const uint32_t shift = static_cast<uint32_t>(bitpos & 63);
  const uint64_t mask = bits::LowMask(width);
  value &= mask;
  words[word] = (words[word] & ~(mask << shift)) | (value << shift);
  if (shift + width > 64) {
    const uint32_t spill = shift + width - 64;
    const uint64_t high_mask = bits::LowMask(spill);
    words[word + 1] =
        (words[word + 1] & ~high_mask) | (value >> (64 - shift));
  }
}

/// Number of 64-bit words (incl. one padding word) for `count` elements.
inline uint64_t PackedWordCount(uint32_t width, uint64_t count) {
  return bits::CeilDiv(count * width, 64) + 1;
}

}  // namespace internal

/// Non-owning read view over packed words.
class PackedView {
 public:
  PackedView() = default;
  PackedView(const uint64_t* words, uint32_t width, uint64_t count)
      : words_(words), width_(width), count_(count) {}

  uint64_t Get(uint64_t i) const {
    assert(i < count_);
    return internal::PackedGet(words_, width_, i);
  }

  uint32_t width() const { return width_; }
  uint64_t size() const { return count_; }
  /// Payload bytes (excluding padding); what a scan reads.
  uint64_t byte_size() const {
    return bits::CeilDiv(count_ * width_, 8);
  }
  const uint64_t* words() const { return words_; }

 private:
  const uint64_t* words_ = nullptr;
  uint32_t width_ = 0;
  uint64_t count_ = 0;
};

/// Owning packed array.
class PackedVector {
 public:
  PackedVector() = default;

  /// Creates a zero-filled packed vector of `count` `width`-bit elements.
  PackedVector(uint32_t width, uint64_t count)
      : width_(width),
        count_(count),
        words_(internal::PackedWordCount(width, count), 0) {
    assert(width <= 64);
  }

  uint64_t Get(uint64_t i) const {
    assert(i < count_);
    return internal::PackedGet(words_.data(), width_, i);
  }
  void Set(uint64_t i, uint64_t value) {
    assert(i < count_);
    internal::PackedSet(words_.data(), width_, i, value);
  }

  uint32_t width() const { return width_; }
  uint64_t size() const { return count_; }
  uint64_t byte_size() const { return bits::CeilDiv(count_ * width_, 8); }
  /// Total allocation, including the padding word.
  uint64_t allocated_bytes() const { return words_.size() * sizeof(uint64_t); }

  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }
  uint64_t word_count() const { return words_.size(); }

  PackedView view() const { return PackedView(words_.data(), width_, count_); }

 private:
  uint32_t width_ = 0;
  uint64_t count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace wastenot::bwd

#endif  // WASTENOT_BWD_PACKED_VECTOR_H_
