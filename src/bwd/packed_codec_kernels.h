// Internal kernel-table layer of the packed codec (public API:
// packed_codec.h; architecture: DESIGN.md "Kernel dispatch").
//
// Each ISA tier (scalar, AVX2, AVX-512) provides one CodecKernels table:
// width-indexed function pointers for the block kernels plus the
// mask-driven selection-fill primitives. packed_codec.cpp resolves the
// highest tier the running CPU supports once (overridable with the
// WASTENOT_FORCE_SCALAR environment variable or SetPackedCodecScalarOnly)
// and routes every public call through the active table.
//
// Exact-allocation contract (every tier, every entry): a kernel may read
// only the words its elements occupy — never one past the last data word.
// Buffers of exactly CeilDiv(count * width, 64) words are legal inputs;
// SIMD tiers honor this with in-block clamped load windows and masked
// (fault-suppressing) loads, never with trailing padding.
//
// This header is internal: only packed_codec*.cpp, the bit-identity fuzz
// tests and micro_packed include it.

#ifndef WASTENOT_BWD_PACKED_CODEC_KERNELS_H_
#define WASTENOT_BWD_PACKED_CODEC_KERNELS_H_

#include <array>
#include <cstdint>

namespace wastenot::bwd::internal {

using UnpackBlockFn = void (*)(const uint64_t*, uint64_t*);
using UnpackPartialFn = void (*)(const uint64_t*, uint64_t*, uint32_t);
using MatchBlockFn = uint64_t (*)(const uint64_t*, uint64_t, uint64_t);
using MatchPartialFn = uint64_t (*)(const uint64_t*, uint32_t, uint64_t,
                                    uint64_t);
using Gather32Fn = void (*)(const uint64_t*, const uint32_t*, uint64_t,
                            uint64_t*);
using Gather64Fn = void (*)(const uint64_t*, const uint64_t*, uint64_t,
                            uint64_t*);
using ExpandMaskFn = uint32_t (*)(uint64_t, uint32_t, uint32_t*);
using Compress32Fn = uint32_t (*)(uint64_t, const uint32_t*, uint32_t*);
using Compress64Fn = uint32_t (*)(uint64_t, const uint64_t*, uint64_t*);

/// One ISA tier's complete kernel set. Width-indexed tables have 65
/// entries (widths 0..64); tiers copy the scalar table and override only
/// the widths their vector scheme covers, so every entry is always
/// callable and bit-identical to the scalar reference.
struct CodecKernels {
  const char* name;  ///< "scalar", "avx2", "avx512"
  std::array<UnpackBlockFn, 65> unpack_block;
  std::array<UnpackPartialFn, 65> unpack_partial;
  std::array<MatchBlockFn, 65> match_block;
  std::array<MatchPartialFn, 65> match_partial;
  std::array<Gather32Fn, 65> gather32;
  std::array<Gather64Fn, 65> gather64;
  ExpandMaskFn expand_mask;
  Compress32Fn compress32;
  Compress64Fn compress64;
};

/// The always-available force-unrolled scalar tier (the correctness
/// reference every other tier is property-tested against).
const CodecKernels& ScalarKernels();

/// Vector tiers: null when the binary was built without the tier
/// (non-x86, compiler too old, or -DWASTENOT_FORCE_SCALAR=ON) or the
/// running CPU lacks the ISA. When non-null, every entry is safe to call
/// on this machine.
const CodecKernels* Avx2Kernels();
const CodecKernels* Avx512Kernels();

/// Pure dispatch decision (no caching): the highest available tier, or
/// the scalar tier when `force_scalar`.
const CodecKernels& ResolveKernels(bool force_scalar);

/// Byte-window layout shared by the SIMD decoders. Element j of a
/// 64-element block (W bits each, packed little-endian in 8*W bytes) is
/// decoded from an unaligned 8-byte load: `(load64(bytes + StartByte(j))
/// >> Shift(j)) & LowMask(W)`. The start byte is clamped so the window
/// never extends past the block's last byte — for clamped elements the
/// shift grows instead, and Shift(j) + W <= 64 still holds for every
/// j when W <= 57 (statically checked in the SIMD TUs), so no kernel
/// reads beyond the words its block occupies.
template <uint32_t W>
struct ByteWindow {
  static constexpr uint32_t kBlockBytes = 8 * W;

  static constexpr uint32_t StartByte(uint32_t j) {
    const uint32_t natural = (j * W) / 8;
    const uint32_t clamp = kBlockBytes - 8;
    return natural < clamp ? natural : clamp;
  }
  static constexpr uint32_t Shift(uint32_t j) {
    return j * W - 8 * StartByte(j);
  }
  /// True iff every element's window stays within 8 bytes — the SIMD
  /// decoders require this (holds for all W <= 57).
  static constexpr bool Valid() {
    for (uint32_t j = 0; j < 64; ++j) {
      if (Shift(j) + W > 64) return false;
      if (StartByte(j) + 8 > kBlockBytes) return false;
    }
    return true;
  }
};

}  // namespace wastenot::bwd::internal

#endif  // WASTENOT_BWD_PACKED_CODEC_KERNELS_H_
