// Bulk codec over the bit-packed representation (the block-decode layer
// under every packed scan).
//
// The element-at-a-time `internal::PackedGet` pays two shifts, a straddle
// branch and a mask per value. This layer decodes 64-element *blocks*
// instead: because 64 * width bits is always a whole number of words, every
// element index that is a multiple of 64 starts on a word boundary for
// every width (the same invariant `PackedSet` relies on for parallel
// encoding), so block `b` of a `width`-bit vector occupies exactly the
// `width` words starting at `words[b * width]`.
//
// Every entry point dispatches once per call (not per element) through a
// per-width kernel table for the best ISA tier the running CPU supports:
// AVX-512, AVX2, or the force-unrolled scalar reference (see
// packed_codec_kernels.h and DESIGN.md "Kernel dispatch"). All tiers are
// bit-identical; setting the WASTENOT_FORCE_SCALAR environment variable
// (or building with -DWASTENOT_FORCE_SCALAR=ON) pins the scalar tier.
//
// Buffer contract: no routine reads or writes past the words its elements
// occupy — a buffer of exactly CeilDiv(count * width, 64) words is a legal
// input, with no slack word. (`PackedVector` still allocates one trailing
// padding word so whole-word device uploads round up safely, but the codec
// no longer relies on it.)

#ifndef WASTENOT_BWD_PACKED_CODEC_H_
#define WASTENOT_BWD_PACKED_CODEC_H_

#include <cstdint>

#include "bwd/packed_vector.h"

namespace wastenot::bwd {

/// Elements per codec block. A block always starts on a word boundary and
/// spans exactly `width` words.
inline constexpr uint64_t kPackedBlockElems = 64;

/// Name of the active codec tier: "scalar", "avx2" or "avx512". Resolved
/// on first use from CPUID and the WASTENOT_FORCE_SCALAR environment
/// variable.
const char* PackedCodecIsa();

/// Pins the codec to the scalar tier (true) or re-resolves the best
/// available tier regardless of the environment knob (false). A test and
/// bench hook — lets one process compare tiers; not intended for
/// concurrent use with in-flight codec calls.
void SetPackedCodecScalarOnly(bool scalar_only);

/// Decodes the 64 elements of block `block` (elements [64*block, 64*block
/// + 64)) into `out[0..63]`. All 64 elements must exist.
void UnpackBlock(const uint64_t* words, uint32_t width, uint64_t block,
                 uint64_t* out);

/// Decodes elements [begin, begin + count) into `out[0..count)`. Handles
/// unaligned starts and non-multiple-of-64 tails; interior full blocks go
/// through the block kernels.
void UnpackRange(const uint64_t* words, uint32_t width, uint64_t begin,
                 uint64_t count, uint64_t* out);

inline void UnpackRange(const PackedView& view, uint64_t begin, uint64_t count,
                        uint64_t* out) {
  UnpackRange(view.words(), view.width(), begin, count, out);
}

/// Encodes `values[0..count)` into elements [begin, begin + count).
/// Full aligned blocks are written whole-word (no read-modify-write);
/// unaligned heads and partial tails fall back to scalar `PackedSet`, so
/// elements outside the range keep their bits. Parallel encoders must chunk
/// at multiples of 64 elements, same as with `PackedSet`.
void PackRange(uint64_t* words, uint32_t width, uint64_t begin, uint64_t count,
               const uint64_t* values);

/// Fused decode-and-compare over one 64-element block: bit j of the result
/// is set iff element 64*block + j lies in [lo, lo + span] (unsigned-wrap
/// containment; span = hi - lo of an inclusive range with lo <= hi). The
/// block is never materialized — each lane's flag is computed straight off
/// the packed words (pass 1 of the two-pass selection kernels).
uint64_t MatchBlock(const uint64_t* words, uint32_t width, uint64_t block,
                    uint64_t lo, uint64_t span);

/// MatchBlock over only the first `n` (<= 64) elements of `block` (the
/// non-multiple-of-64 tail); lanes >= n are zero.
uint64_t MatchBlockPartial(const uint64_t* words, uint32_t width,
                           uint64_t block, uint32_t n, uint64_t lo,
                           uint64_t span);

/// Gathers `out[i] = packed[ids[i]]` for i in [0, count) through the
/// width-specialized branch-free decoder (random-access counterpart of
/// UnpackRange; the residual "invisible join" access path).
void GatherPacked(const uint64_t* words, uint32_t width, const uint32_t* ids,
                  uint64_t count, uint64_t* out);
void GatherPacked(const uint64_t* words, uint32_t width, const uint64_t* ids,
                  uint64_t count, uint64_t* out);

inline void GatherPacked(const PackedView& view, const uint32_t* ids,
                         uint64_t count, uint64_t* out) {
  GatherPacked(view.words(), view.width(), ids, count, out);
}
inline void GatherPacked(const PackedView& view, const uint64_t* ids,
                         uint64_t count, uint64_t* out) {
  GatherPacked(view.words(), view.width(), ids, count, out);
}

// Mask-driven selection fills (pass 2 of the two-pass selection kernels):
// turn a 64-lane match bitmask into dense outputs without the per-hit
// countr_zero loop. SIMD tiers implement these with compress-store /
// permute; the contract is exact on both sides so callers may hand in
// buffers with no slack:
//  - `src` is read only at set-bit lanes (a tail block's missing lanes are
//    never touched as long as their mask bits are clear);
//  - `out` is written only at [0, popcount(mask)).
// Both return popcount(mask).

/// out[k] = base + (bit position of the k-th set bit of mask), ascending.
uint32_t ExpandMask(uint64_t mask, uint32_t base, uint32_t* out);

/// out[k] = src[bit position of the k-th set bit of mask], ascending.
uint32_t CompressLanes(uint64_t mask, const uint32_t* src, uint32_t* out);
uint32_t CompressLanes(uint64_t mask, const uint64_t* src, uint64_t* out);

}  // namespace wastenot::bwd

#endif  // WASTENOT_BWD_PACKED_CODEC_H_
