// Bulk codec over the bit-packed representation (the block-decode layer
// under every packed scan).
//
// The element-at-a-time `internal::PackedGet` pays two shifts, a straddle
// branch and a mask per value. This layer decodes 64-element *blocks*
// word-at-a-time instead: because 64 * width bits is always a whole number
// of words, every element index that is a multiple of 64 starts on a word
// boundary for every width (the same invariant `PackedSet` relies on for
// parallel encoding), so block `b` of a `width`-bit vector occupies exactly
// the `width` words starting at `words[b * width]`. Each width gets its own
// compiled kernel (dispatched once per call, not per element): byte- and
// word-dividing widths unpack by shifting a single register down, arbitrary
// widths use a branch-free rotate-free two-word combine.
//
// Padding contract: all routines here may read one word past the last data
// word they decode. `PackedVector` always allocates that padding word
// (`internal::PackedWordCount`), and `BwdColumn` uploads it with the data;
// callers handing in raw words must do the same.

#ifndef WASTENOT_BWD_PACKED_CODEC_H_
#define WASTENOT_BWD_PACKED_CODEC_H_

#include <cstdint>

#include "bwd/packed_vector.h"

namespace wastenot::bwd {

/// Elements per codec block. A block always starts on a word boundary and
/// spans exactly `width` words.
inline constexpr uint64_t kPackedBlockElems = 64;

/// Decodes the 64 elements of block `block` (elements [64*block, 64*block
/// + 64)) into `out[0..63]`. All 64 elements must exist.
void UnpackBlock(const uint64_t* words, uint32_t width, uint64_t block,
                 uint64_t* out);

/// Decodes elements [begin, begin + count) into `out[0..count)`. Handles
/// unaligned starts and non-multiple-of-64 tails; interior full blocks go
/// through the word-at-a-time block kernels.
void UnpackRange(const uint64_t* words, uint32_t width, uint64_t begin,
                 uint64_t count, uint64_t* out);

inline void UnpackRange(const PackedView& view, uint64_t begin, uint64_t count,
                        uint64_t* out) {
  UnpackRange(view.words(), view.width(), begin, count, out);
}

/// Encodes `values[0..count)` into elements [begin, begin + count).
/// Full aligned blocks are written whole-word (no read-modify-write);
/// unaligned heads and partial tails fall back to scalar `PackedSet`, so
/// elements outside the range keep their bits. Parallel encoders must chunk
/// at multiples of 64 elements, same as with `PackedSet`.
void PackRange(uint64_t* words, uint32_t width, uint64_t begin, uint64_t count,
               const uint64_t* values);

/// Fused decode-and-compare over one 64-element block: bit j of the result
/// is set iff element 64*block + j lies in [lo, lo + span] (unsigned-wrap
/// containment; span = hi - lo of an inclusive range with lo <= hi). The
/// block is never materialized — each lane's flag is computed straight off
/// the packed words with compile-time shifts (pass 1 of the two-pass
/// selection kernels).
uint64_t MatchBlock(const uint64_t* words, uint32_t width, uint64_t block,
                    uint64_t lo, uint64_t span);

/// MatchBlock over only the first `n` (<= 64) elements of `block` (the
/// non-multiple-of-64 tail); lanes >= n are zero.
uint64_t MatchBlockPartial(const uint64_t* words, uint32_t width,
                           uint64_t block, uint32_t n, uint64_t lo,
                           uint64_t span);

/// Gathers `out[i] = packed[ids[i]]` for i in [0, count) through the
/// width-specialized branch-free decoder (random-access counterpart of
/// UnpackRange; the residual "invisible join" access path).
void GatherPacked(const uint64_t* words, uint32_t width, const uint32_t* ids,
                  uint64_t count, uint64_t* out);
void GatherPacked(const uint64_t* words, uint32_t width, const uint64_t* ids,
                  uint64_t count, uint64_t* out);

inline void GatherPacked(const PackedView& view, const uint32_t* ids,
                         uint64_t count, uint64_t* out) {
  GatherPacked(view.words(), view.width(), ids, count, out);
}
inline void GatherPacked(const PackedView& view, const uint64_t* ids,
                         uint64_t count, uint64_t* out) {
  GatherPacked(view.words(), view.width(), ids, count, out);
}

}  // namespace wastenot::bwd

#endif  // WASTENOT_BWD_PACKED_CODEC_H_
