#include "bwd/packed_codec.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstring>
#include <utility>

#include "bwd/packed_codec_kernels.h"
#include "util/env.h"

namespace wastenot::bwd {

namespace {

/// Width-specialized scalar kernels. `W` being a template parameter turns
/// every shift distance and mask into a compile-time constant, so the inner
/// loops unroll and vectorize; the straddle branch of the generic path
/// disappears entirely. This tier is the correctness reference the SIMD
/// tiers are property-tested against, and the only tier that exists on
/// non-x86 or forced-scalar builds.
template <uint32_t W>
struct Codec {
  static constexpr uint64_t kMask = bits::LowMask(W);

  /// Two-word read of element `j` relative to `in`. The second word is
  /// touched only when the element actually straddles a word boundary
  /// (shift + W > 64 implies shift >= 1, so both shift distances are
  /// defined), which keeps every tail path legal on buffers sized exactly
  /// CeilDiv(count * W, 64) words — no slack word required.
  static uint64_t Read2(const uint64_t* in, uint64_t j) {
    const uint64_t bitpos = j * W;
    const uint64_t word = bitpos >> 6;
    const uint32_t shift = static_cast<uint32_t>(bitpos & 63);
    uint64_t v = in[word] >> shift;
    if (shift + W > 64) {
      v |= in[word + 1] << (64 - shift);
    }
    return v & kMask;
  }

  /// Read of element `J` relative to `in` with every shift distance and
  /// word index a compile-time constant; non-straddling elements compile
  /// to a single load + shift + mask.
  template <uint64_t J>
  static uint64_t ReadAt(const uint64_t* in) {
    constexpr uint64_t kBitpos = J * W;
    constexpr uint64_t kWord = kBitpos >> 6;
    constexpr uint32_t kShift = static_cast<uint32_t>(kBitpos & 63);
    if constexpr (kShift + W <= 64) {
      return (in[kWord] >> kShift) & kMask;
    } else {
      return ((in[kWord] >> kShift) | (in[kWord + 1] << (64 - kShift))) &
             kMask;
    }
  }

  static void UnpackBlock(const uint64_t* in, uint64_t* out) {
    if constexpr (W == 0) {
      for (uint32_t j = 0; j < 64; ++j) out[j] = 0;
    } else if constexpr (W == 64) {
      std::memcpy(out, in, 64 * sizeof(uint64_t));
    } else {
      // Force-unrolled via pack expansion: 64 independent straight-line
      // reads, all offsets immediate. (A plain loop keeps the shifts in
      // registers at -O2 and runs no faster than scalar PackedGet.)
      [&]<size_t... J>(std::index_sequence<J...>) {
        ((out[J] = ReadAt<J>(in)), ...);
      }(std::make_index_sequence<64>{});
    }
  }

  static uint64_t MatchBlock(const uint64_t* in, uint64_t lo, uint64_t span) {
    if constexpr (W == 0) {
      return (uint64_t{0} - lo) <= span ? ~uint64_t{0} : 0;
    } else {
      // Fused decode + compare, force-unrolled: 64 independent flag bits
      // OR-folded with constant lane shifts (the compiler is free to
      // tree-reduce the fold).
      return [&]<size_t... J>(std::index_sequence<J...>) {
        return ((static_cast<uint64_t>(ReadAt<J>(in) - lo <= span) << J) |
                ...);
      }(std::make_index_sequence<64>{});
    }
  }

  static uint64_t MatchPartial(const uint64_t* in, uint32_t n, uint64_t lo,
                               uint64_t span) {
    const uint64_t lanes = bits::LowMask(n);
    if constexpr (W == 0) {
      return (uint64_t{0} - lo) <= span ? lanes : 0;
    } else {
      uint64_t m = 0;
      for (uint64_t j = 0; j < n; ++j) {
        m |= static_cast<uint64_t>(Read2(in, j) - lo <= span) << j;
      }
      return m & lanes;
    }
  }

  /// Tail variant: first `n` (< 64) elements of a block. Reads only the
  /// words those n elements occupy.
  static void UnpackPartial(const uint64_t* in, uint64_t* out, uint32_t n) {
    if constexpr (W == 0) {
      for (uint32_t j = 0; j < n; ++j) out[j] = 0;
    } else {
      for (uint64_t j = 0; j < n; ++j) out[j] = Read2(in, j);
    }
  }

  static void PackBlock(const uint64_t* values, uint64_t* out) {
    if constexpr (W == 0) {
      return;
    } else if constexpr (W == 64) {
      std::memcpy(out, values, 64 * sizeof(uint64_t));
    } else if constexpr (64 % W == 0) {
      constexpr uint32_t kPerWord = 64 / W;
      for (uint32_t w = 0; w < W; ++w) {
        uint64_t acc = 0;
        for (uint32_t k = 0; k < kPerWord; ++k) {
          acc |= (values[w * kPerWord + k] & kMask) << (k * W);
        }
        out[w] = acc;
      }
    } else {
      // Accumulate into one register, spilling a finished word at a time;
      // a block is exactly W words, so the final spill drains the carry.
      uint64_t acc = 0;
      uint32_t used = 0;
      uint32_t word = 0;
      for (uint32_t j = 0; j < 64; ++j) {
        const uint64_t v = values[j] & kMask;
        acc |= v << used;
        used += W;
        if (used >= 64) {
          out[word++] = acc;
          used -= 64;
          acc = v >> (W - used);  // W - used in [1, W]; W < 64 here
        }
      }
    }
  }

  template <typename Id>
  static void Gather(const uint64_t* words, const Id* ids, uint64_t n,
                     uint64_t* out) {
    if constexpr (W == 0) {
      for (uint64_t i = 0; i < n; ++i) out[i] = 0;
    } else {
      for (uint64_t i = 0; i < n; ++i) {
        out[i] = Read2(words, static_cast<uint64_t>(ids[i]));
      }
    }
  }

  static void Gather32(const uint64_t* words, const uint32_t* ids, uint64_t n,
                       uint64_t* out) {
    Gather(words, ids, n, out);
  }
  static void Gather64(const uint64_t* words, const uint64_t* ids, uint64_t n,
                       uint64_t* out) {
    Gather(words, ids, n, out);
  }
};

using PackBlockFn = void (*)(const uint64_t*, uint64_t*);

template <size_t... Ws>
constexpr std::array<internal::UnpackBlockFn, 65> MakeUnpackBlockTable(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::UnpackBlock...}};
}
template <size_t... Ws>
constexpr std::array<internal::UnpackPartialFn, 65> MakeUnpackPartialTable(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::UnpackPartial...}};
}
template <size_t... Ws>
constexpr std::array<PackBlockFn, 65> MakePackBlockTable(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::PackBlock...}};
}
template <size_t... Ws>
constexpr std::array<internal::MatchBlockFn, 65> MakeMatchBlockTable(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::MatchBlock...}};
}
template <size_t... Ws>
constexpr std::array<internal::MatchPartialFn, 65> MakeMatchPartialTable(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::MatchPartial...}};
}
template <size_t... Ws>
constexpr std::array<internal::Gather32Fn, 65> MakeGather32Table(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::Gather32...}};
}
template <size_t... Ws>
constexpr std::array<internal::Gather64Fn, 65> MakeGather64Table(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::Gather64...}};
}

constexpr auto kWidths = std::make_index_sequence<65>{};
constexpr auto kPackBlock = MakePackBlockTable(kWidths);

uint32_t ExpandMaskScalar(uint64_t mask, uint32_t base, uint32_t* out) {
  uint32_t n = 0;
  while (mask != 0) {
    out[n++] = base + static_cast<uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
  }
  return n;
}

uint32_t Compress32Scalar(uint64_t mask, const uint32_t* src, uint32_t* out) {
  uint32_t n = 0;
  while (mask != 0) {
    out[n++] = src[std::countr_zero(mask)];
    mask &= mask - 1;
  }
  return n;
}

uint32_t Compress64Scalar(uint64_t mask, const uint64_t* src, uint64_t* out) {
  uint32_t n = 0;
  while (mask != 0) {
    out[n++] = src[std::countr_zero(mask)];
    mask &= mask - 1;
  }
  return n;
}

/// The active tier, resolved lazily on first use (so the environment knob
/// is read after main() starts) and swappable by SetPackedCodecScalarOnly.
std::atomic<const internal::CodecKernels*> g_kernels{nullptr};

const internal::CodecKernels& Active() {
  const internal::CodecKernels* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = &internal::ResolveKernels(EnvBool("WASTENOT_FORCE_SCALAR", false));
    g_kernels.store(k, std::memory_order_release);
  }
  return *k;
}

}  // namespace

namespace internal {

const CodecKernels& ScalarKernels() {
  static constexpr CodecKernels kScalar = {
      "scalar",
      MakeUnpackBlockTable(kWidths),
      MakeUnpackPartialTable(kWidths),
      MakeMatchBlockTable(kWidths),
      MakeMatchPartialTable(kWidths),
      MakeGather32Table(kWidths),
      MakeGather64Table(kWidths),
      &ExpandMaskScalar,
      &Compress32Scalar,
      &Compress64Scalar,
  };
  return kScalar;
}

#if !defined(WASTENOT_HAVE_AVX2)
const CodecKernels* Avx2Kernels() { return nullptr; }
#endif
#if !defined(WASTENOT_HAVE_AVX512)
const CodecKernels* Avx512Kernels() { return nullptr; }
#endif

const CodecKernels& ResolveKernels(bool force_scalar) {
  if (!force_scalar) {
    if (const CodecKernels* k = Avx512Kernels()) return *k;
    if (const CodecKernels* k = Avx2Kernels()) return *k;
  }
  return ScalarKernels();
}

}  // namespace internal

const char* PackedCodecIsa() { return Active().name; }

void SetPackedCodecScalarOnly(bool scalar_only) {
  g_kernels.store(scalar_only
                      ? &internal::ScalarKernels()
                      : &internal::ResolveKernels(/*force_scalar=*/false),
                  std::memory_order_release);
}

void UnpackBlock(const uint64_t* words, uint32_t width, uint64_t block,
                 uint64_t* out) {
  assert(width <= 64);
  Active().unpack_block[width](words + block * width, out);
}

void UnpackRange(const uint64_t* words, uint32_t width, uint64_t begin,
                 uint64_t count, uint64_t* out) {
  assert(width <= 64);
  if (count == 0) return;
  if (width == 0) {
    for (uint64_t i = 0; i < count; ++i) out[i] = 0;
    return;
  }
  const internal::CodecKernels& k = Active();
  uint64_t i = begin;
  const uint64_t end = begin + count;
  // Unaligned head up to the next block boundary (< 64 scalar reads).
  while (i < end && (i & 63) != 0) {
    *out++ = internal::PackedGet(words, width, i++);
  }
  // Whole blocks.
  const internal::UnpackBlockFn block_fn = k.unpack_block[width];
  while (end - i >= kPackedBlockElems) {
    block_fn(words + (i >> 6) * width, out);
    i += kPackedBlockElems;
    out += kPackedBlockElems;
  }
  // Partial tail block.
  if (i < end) {
    k.unpack_partial[width](words + (i >> 6) * width, out,
                            static_cast<uint32_t>(end - i));
  }
}

void PackRange(uint64_t* words, uint32_t width, uint64_t begin, uint64_t count,
               const uint64_t* values) {
  assert(width <= 64);
  if (width == 0 || count == 0) return;
  uint64_t i = begin;
  const uint64_t end = begin + count;
  while (i < end && (i & 63) != 0) {
    internal::PackedSet(words, width, i++, *values++);
  }
  const PackBlockFn block_fn = kPackBlock[width];
  while (end - i >= kPackedBlockElems) {
    block_fn(values, words + (i >> 6) * width);
    i += kPackedBlockElems;
    values += kPackedBlockElems;
  }
  while (i < end) {
    internal::PackedSet(words, width, i++, *values++);
  }
}

uint64_t MatchBlock(const uint64_t* words, uint32_t width, uint64_t block,
                    uint64_t lo, uint64_t span) {
  assert(width <= 64);
  return Active().match_block[width](words + block * width, lo, span);
}

uint64_t MatchBlockPartial(const uint64_t* words, uint32_t width,
                           uint64_t block, uint32_t n, uint64_t lo,
                           uint64_t span) {
  assert(width <= 64);
  return Active().match_partial[width](words + block * width, n, lo, span);
}

void GatherPacked(const uint64_t* words, uint32_t width, const uint32_t* ids,
                  uint64_t count, uint64_t* out) {
  assert(width <= 64);
  Active().gather32[width](words, ids, count, out);
}

void GatherPacked(const uint64_t* words, uint32_t width, const uint64_t* ids,
                  uint64_t count, uint64_t* out) {
  assert(width <= 64);
  Active().gather64[width](words, ids, count, out);
}

uint32_t ExpandMask(uint64_t mask, uint32_t base, uint32_t* out) {
  return Active().expand_mask(mask, base, out);
}

uint32_t CompressLanes(uint64_t mask, const uint32_t* src, uint32_t* out) {
  return Active().compress32(mask, src, out);
}

uint32_t CompressLanes(uint64_t mask, const uint64_t* src, uint64_t* out) {
  return Active().compress64(mask, src, out);
}

}  // namespace wastenot::bwd
