#include "bwd/packed_codec.h"

#include <array>
#include <cstring>
#include <utility>

namespace wastenot::bwd {

namespace {

/// Width-specialized kernels. `W` being a template parameter turns every
/// shift distance and mask into a compile-time constant, so the inner loops
/// unroll and vectorize; the straddle branch of the scalar path disappears
/// entirely.
template <uint32_t W>
struct Codec {
  static constexpr uint64_t kMask = bits::LowMask(W);

  /// Branch-free two-word read of element `j` relative to `in`. The
  /// `<< 1 <<` split realizes `in[word + 1] << (64 - shift)` without the
  /// undefined 64-bit shift at shift == 0 (the high word contributes
  /// nothing there, and the expression yields 0). Rotate-free: only plain
  /// shifts, an OR and a constant mask.
  static uint64_t Read2(const uint64_t* in, uint64_t j) {
    const uint64_t bitpos = j * W;
    const uint64_t word = bitpos >> 6;
    const uint32_t shift = static_cast<uint32_t>(bitpos & 63);
    return ((in[word] >> shift) | (in[word + 1] << 1 << (63 - shift))) & kMask;
  }

  /// Read of element `J` relative to `in` with every shift distance and
  /// word index a compile-time constant; non-straddling elements compile
  /// to a single load + shift + mask.
  template <uint64_t J>
  static uint64_t ReadAt(const uint64_t* in) {
    constexpr uint64_t kBitpos = J * W;
    constexpr uint64_t kWord = kBitpos >> 6;
    constexpr uint32_t kShift = static_cast<uint32_t>(kBitpos & 63);
    if constexpr (kShift + W <= 64) {
      return (in[kWord] >> kShift) & kMask;
    } else {
      return ((in[kWord] >> kShift) | (in[kWord + 1] << (64 - kShift))) &
             kMask;
    }
  }

  static void UnpackBlock(const uint64_t* in, uint64_t* out) {
    if constexpr (W == 0) {
      for (uint32_t j = 0; j < 64; ++j) out[j] = 0;
    } else if constexpr (W == 64) {
      std::memcpy(out, in, 64 * sizeof(uint64_t));
    } else {
      // Force-unrolled via pack expansion: 64 independent straight-line
      // reads, all offsets immediate. (A plain loop keeps the shifts in
      // registers at -O2 and runs no faster than scalar PackedGet.)
      [&]<size_t... J>(std::index_sequence<J...>) {
        ((out[J] = ReadAt<J>(in)), ...);
      }(std::make_index_sequence<64>{});
    }
  }

  static uint64_t MatchBlock(const uint64_t* in, uint64_t lo, uint64_t span) {
    if constexpr (W == 0) {
      return (uint64_t{0} - lo) <= span ? ~uint64_t{0} : 0;
    } else {
      // Fused decode + compare, force-unrolled: 64 independent flag bits
      // OR-folded with constant lane shifts (the compiler is free to
      // tree-reduce the fold).
      return [&]<size_t... J>(std::index_sequence<J...>) {
        return ((static_cast<uint64_t>(ReadAt<J>(in) - lo <= span) << J) |
                ...);
      }(std::make_index_sequence<64>{});
    }
  }

  static uint64_t MatchPartial(const uint64_t* in, uint32_t n, uint64_t lo,
                               uint64_t span) {
    const uint64_t lanes = bits::LowMask(n);
    if constexpr (W == 0) {
      return (uint64_t{0} - lo) <= span ? lanes : 0;
    } else {
      uint64_t m = 0;
      for (uint64_t j = 0; j < n; ++j) {
        m |= static_cast<uint64_t>(Read2(in, j) - lo <= span) << j;
      }
      return m & lanes;
    }
  }

  /// Tail variant: first `n` (< 64) elements of a block. Never reads past
  /// the words those n elements plus the padding word occupy.
  static void UnpackPartial(const uint64_t* in, uint64_t* out, uint32_t n) {
    if constexpr (W == 0) {
      for (uint32_t j = 0; j < n; ++j) out[j] = 0;
    } else {
      for (uint64_t j = 0; j < n; ++j) out[j] = Read2(in, j);
    }
  }

  static void PackBlock(const uint64_t* values, uint64_t* out) {
    if constexpr (W == 0) {
      return;
    } else if constexpr (W == 64) {
      std::memcpy(out, values, 64 * sizeof(uint64_t));
    } else if constexpr (64 % W == 0) {
      constexpr uint32_t kPerWord = 64 / W;
      for (uint32_t w = 0; w < W; ++w) {
        uint64_t acc = 0;
        for (uint32_t k = 0; k < kPerWord; ++k) {
          acc |= (values[w * kPerWord + k] & kMask) << (k * W);
        }
        out[w] = acc;
      }
    } else {
      // Accumulate into one register, spilling a finished word at a time;
      // a block is exactly W words, so the final spill drains the carry.
      uint64_t acc = 0;
      uint32_t used = 0;
      uint32_t word = 0;
      for (uint32_t j = 0; j < 64; ++j) {
        const uint64_t v = values[j] & kMask;
        acc |= v << used;
        used += W;
        if (used >= 64) {
          out[word++] = acc;
          used -= 64;
          acc = v >> (W - used);  // W - used in [1, W]; W < 64 here
        }
      }
    }
  }

  template <typename Id>
  static void Gather(const uint64_t* words, const Id* ids, uint64_t n,
                     uint64_t* out) {
    if constexpr (W == 0) {
      for (uint64_t i = 0; i < n; ++i) out[i] = 0;
    } else {
      for (uint64_t i = 0; i < n; ++i) {
        out[i] = Read2(words, static_cast<uint64_t>(ids[i]));
      }
    }
  }

  static void Gather32(const uint64_t* words, const uint32_t* ids, uint64_t n,
                       uint64_t* out) {
    Gather(words, ids, n, out);
  }
  static void Gather64(const uint64_t* words, const uint64_t* ids, uint64_t n,
                       uint64_t* out) {
    Gather(words, ids, n, out);
  }
};

using UnpackBlockFn = void (*)(const uint64_t*, uint64_t*);
using UnpackPartialFn = void (*)(const uint64_t*, uint64_t*, uint32_t);
using MatchBlockFn = uint64_t (*)(const uint64_t*, uint64_t, uint64_t);
using MatchPartialFn = uint64_t (*)(const uint64_t*, uint32_t, uint64_t,
                                    uint64_t);
using PackBlockFn = void (*)(const uint64_t*, uint64_t*);
using Gather32Fn = void (*)(const uint64_t*, const uint32_t*, uint64_t,
                            uint64_t*);
using Gather64Fn = void (*)(const uint64_t*, const uint64_t*, uint64_t,
                            uint64_t*);

template <size_t... Ws>
constexpr std::array<UnpackBlockFn, 65> MakeUnpackBlockTable(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::UnpackBlock...}};
}
template <size_t... Ws>
constexpr std::array<UnpackPartialFn, 65> MakeUnpackPartialTable(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::UnpackPartial...}};
}
template <size_t... Ws>
constexpr std::array<PackBlockFn, 65> MakePackBlockTable(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::PackBlock...}};
}
template <size_t... Ws>
constexpr std::array<MatchBlockFn, 65> MakeMatchBlockTable(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::MatchBlock...}};
}
template <size_t... Ws>
constexpr std::array<MatchPartialFn, 65> MakeMatchPartialTable(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::MatchPartial...}};
}
template <size_t... Ws>
constexpr std::array<Gather32Fn, 65> MakeGather32Table(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::Gather32...}};
}
template <size_t... Ws>
constexpr std::array<Gather64Fn, 65> MakeGather64Table(
    std::index_sequence<Ws...>) {
  return {{&Codec<Ws>::Gather64...}};
}

constexpr auto kWidths = std::make_index_sequence<65>{};
constexpr auto kUnpackBlock = MakeUnpackBlockTable(kWidths);
constexpr auto kUnpackPartial = MakeUnpackPartialTable(kWidths);
constexpr auto kPackBlock = MakePackBlockTable(kWidths);
constexpr auto kMatchBlock = MakeMatchBlockTable(kWidths);
constexpr auto kMatchPartial = MakeMatchPartialTable(kWidths);
constexpr auto kGather32 = MakeGather32Table(kWidths);
constexpr auto kGather64 = MakeGather64Table(kWidths);

}  // namespace

void UnpackBlock(const uint64_t* words, uint32_t width, uint64_t block,
                 uint64_t* out) {
  assert(width <= 64);
  kUnpackBlock[width](words + block * width, out);
}

void UnpackRange(const uint64_t* words, uint32_t width, uint64_t begin,
                 uint64_t count, uint64_t* out) {
  assert(width <= 64);
  if (count == 0) return;
  if (width == 0) {
    for (uint64_t i = 0; i < count; ++i) out[i] = 0;
    return;
  }
  uint64_t i = begin;
  const uint64_t end = begin + count;
  // Unaligned head up to the next block boundary (< 64 scalar reads).
  while (i < end && (i & 63) != 0) {
    *out++ = internal::PackedGet(words, width, i++);
  }
  // Whole blocks, word-at-a-time.
  const UnpackBlockFn block_fn = kUnpackBlock[width];
  while (end - i >= kPackedBlockElems) {
    block_fn(words + (i >> 6) * width, out);
    i += kPackedBlockElems;
    out += kPackedBlockElems;
  }
  // Partial tail block.
  if (i < end) {
    kUnpackPartial[width](words + (i >> 6) * width, out,
                          static_cast<uint32_t>(end - i));
  }
}

void PackRange(uint64_t* words, uint32_t width, uint64_t begin, uint64_t count,
               const uint64_t* values) {
  assert(width <= 64);
  if (width == 0 || count == 0) return;
  uint64_t i = begin;
  const uint64_t end = begin + count;
  while (i < end && (i & 63) != 0) {
    internal::PackedSet(words, width, i++, *values++);
  }
  const PackBlockFn block_fn = kPackBlock[width];
  while (end - i >= kPackedBlockElems) {
    block_fn(values, words + (i >> 6) * width);
    i += kPackedBlockElems;
    values += kPackedBlockElems;
  }
  while (i < end) {
    internal::PackedSet(words, width, i++, *values++);
  }
}

uint64_t MatchBlock(const uint64_t* words, uint32_t width, uint64_t block,
                    uint64_t lo, uint64_t span) {
  assert(width <= 64);
  return kMatchBlock[width](words + block * width, lo, span);
}

uint64_t MatchBlockPartial(const uint64_t* words, uint32_t width,
                           uint64_t block, uint32_t n, uint64_t lo,
                           uint64_t span) {
  assert(width <= 64);
  return kMatchPartial[width](words + block * width, n, lo, span);
}

void GatherPacked(const uint64_t* words, uint32_t width, const uint32_t* ids,
                  uint64_t count, uint64_t* out) {
  assert(width <= 64);
  kGather32[width](words, ids, count, out);
}

void GatherPacked(const uint64_t* words, uint32_t width, const uint64_t* ids,
                  uint64_t count, uint64_t* out) {
  assert(width <= 64);
  kGather64[width](words, ids, count, out);
}

}  // namespace wastenot::bwd
