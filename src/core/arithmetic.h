// Approximate arithmetic map operators (paper §IV-B "complex selections"
// and §IV-G "destructive distributivity").
//
// Bulk primitives over per-row bounds: every operator consumes aligned
// BoundedValues and produces sound per-row intervals. Multiplication is
// the canonical destructively-distributive case — the exact product of two
// decomposed values contains approximation×residual cross terms that no
// device holds in isolation, so the *refinement* of a product must
// recompute from exact operand values (which is why the A&R executor
// routes product aggregations to the CPU unless operands are fully
// resident). The approximations computed here are still useful: they bound
// later selections and the final answer (paper: "If, e.g., a query contains
// a condition on the product of two attributes, the approximation of the
// product can be used to approximate the result of the selection").

#ifndef WASTENOT_CORE_ARITHMETIC_H_
#define WASTENOT_CORE_ARITHMETIC_H_

#include "core/candidates.h"
#include "device/device.h"

namespace wastenot::core {

/// out[i] = a[i] + b[i] (interval add).
BoundedValues AddApproximate(const BoundedValues& a, const BoundedValues& b,
                             device::Device* dev);
/// out[i] = a[i] - b[i] (interval subtract).
BoundedValues SubApproximate(const BoundedValues& a, const BoundedValues& b,
                             device::Device* dev);
/// out[i] = a[i] * b[i] (interval product; destructively distributive).
BoundedValues MulApproximate(const BoundedValues& a, const BoundedValues& b,
                             device::Device* dev);
/// out[i] = (k + sign*a[i]) — the affine terms (c - x) / (c + x) of
/// TPC-H-style expressions.
BoundedValues AffineApproximate(const BoundedValues& a, int64_t k, int sign,
                                device::Device* dev);
/// out[i] = a[i] / k for a non-zero constant k, rounded outward.
BoundedValues DivConstApproximate(const BoundedValues& a, int64_t k,
                                  device::Device* dev);
/// out[i] = sqrt(a[i]) with outward rounding (clamped at 0).
BoundedValues SqrtApproximate(const BoundedValues& a, device::Device* dev);

/// out[i] = a[i] * flag_bounds[i] where flags are 0/1 intervals (used for
/// conditional aggregates such as Q14's CASE WHEN indicator).
BoundedValues MulIndicatorApproximate(const BoundedValues& a,
                                      const BoundedValues& indicator,
                                      device::Device* dev);

/// Exact CPU counterparts used by refinement.
std::vector<int64_t> MulExact(const std::vector<int64_t>& a,
                              const std::vector<int64_t>& b);
std::vector<int64_t> AffineExact(const std::vector<int64_t>& a, int64_t k,
                                 int sign);

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_ARITHMETIC_H_
