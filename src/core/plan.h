// Physical plans: composable batch operators over candidate sets.
//
// QuerySpec covers exactly the paper's evaluation shapes — one fact table,
// at most one FK join. A PhysicalPlan generalizes that to an operator
// *sequence*: a ScanNode opens the fact table, each FkJoinNode extends the
// row with a dimension "hop", FilterNodes predicate any hop, ThetaJoinNodes
// semi-join against a second table, and a final GroupAggNode groups and
// aggregates over columns of any hop. Operators stay batch-oriented (the
// paper's bulk-processing model, §II-B): every node consumes and produces
// Candidates-style batches with per-row approximate bounds, so the same
// plan runs under A&R (Phase-A approximate plan first, Phase-R refinement
// after), classic, and streaming execution, single-device or sharded (see
// plan_exec.h).
//
// Column references are (column, hop) pairs: hop 0 is the scanned fact
// table, hop k (k >= 1) is the dimension introduced by the k-th FkJoinNode.
// Because join keys are always fully device-resident (the A&R invariant),
// dimension oids are *exact* during Phase A even across multi-hop chains —
// approximation error never compounds through joins, only through values.
//
// `LowerToPlan` embeds every QuerySpec into this algebra; `PlanToSpec` is
// its exact inverse on single-join shapes, which is how the engines keep
// their legacy (bit-identically pinned) single-join paths while plans add
// the multi-join generality.

#ifndef WASTENOT_CORE_PLAN_H_
#define WASTENOT_CORE_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "columnstore/database.h"
#include "columnstore/types.h"
#include "core/query.h"
#include "core/theta_join.h"
#include "device/cost_model.h"
#include "util/status.h"

namespace wastenot::core {

/// A column of one hop of the plan's row shape: hop 0 is the scanned fact
/// table, hop k the dimension table introduced by the k-th FkJoinNode.
struct ColumnRef {
  std::string column;
  uint32_t hop = 0;

  static ColumnRef Fact(std::string column) {
    return ColumnRef{std::move(column), 0};
  }
  static ColumnRef Dim(std::string column, uint32_t hop) {
    return ColumnRef{std::move(column), hop};
  }
  bool operator==(const ColumnRef&) const = default;
};

/// Opens the fact table: the batch starts as all of its rows.
struct ScanNode {
  std::string table;
};

/// Keeps rows whose `column` value (at `hop`) lies in `range`. Under A&R
/// the predicate is relaxed to digit space (hop 0) or evaluated on gathered
/// digit bounds (hop >= 1), producing possible/certain flags.
struct FilterNode {
  uint32_t hop = 0;
  std::string column;
  cs::RangePred range;
};

/// Extends the row with a dimension hop: `fk_column` (a column of hop
/// `fk_hop`) holds `fk_base`-offset dimension oids. FK columns must be
/// fully device-resident, so the hop's oids are exact in both phases.
struct FkJoinNode {
  uint32_t fk_hop = 0;
  std::string fk_column;
  std::string dim_table;
  int64_t fk_base = 0;
};

/// Semi-join filter: keeps rows whose `left_column` value (at `left_hop`)
/// matches *some* row of `right_table.right_column` under `op` —
/// EXISTS(SELECT 1 FROM right WHERE left <op> right). Phase A evaluates the
/// relaxed condition against the right side's value hull; Phase R against
/// the exact (sorted) right values.
struct ThetaJoinNode {
  uint32_t left_hop = 0;
  std::string left_column;
  std::string right_table;
  std::string right_column;
  ThetaOp op = ThetaOp::kLess;
  int64_t band = 0;  ///< kBandWithin only
};

/// Declares the column manifest downstream nodes may touch (an optimizer
/// marker; execution derives its own manifest and ignores extra entries).
struct ProjectNode {
  std::vector<ColumnRef> columns;
};

/// One multiplicative term of a plan aggregate: (offset + sign·col).
struct PlanTerm {
  ColumnRef col;
  int64_t offset = 0;
  int sign = +1;
};

/// CASE WHEN <col in range> THEN <expr> ELSE 0 gate of a plan aggregate.
struct PlanFilter {
  ColumnRef col;
  cs::RangePred range;
};

/// One aggregate: func(constant · Π terms) [ FILTER (gate) ].
struct PlanAggregate {
  AggFunc func = AggFunc::kSum;
  int64_t constant = 1;
  std::vector<PlanTerm> terms;  ///< empty for count(*)
  std::optional<PlanFilter> filter;
  std::string label;
  double display_scale = 1.0;
};

/// Terminal node: group by `group_by` (columns of any hop) and aggregate.
struct GroupAggNode {
  std::vector<ColumnRef> group_by;
  std::vector<PlanAggregate> aggregates;
};

/// Pipeline operators between the scan and the terminal group/aggregate.
using PlanOp = std::variant<FilterNode, FkJoinNode, ThetaJoinNode, ProjectNode>;

/// A physical plan: scan -> ops (in order) -> group/aggregate.
struct PhysicalPlan {
  ScanNode scan;
  std::vector<PlanOp> ops;
  GroupAggNode group_agg;
  std::string name;  ///< for reports ("TPC-H Q3", ...)

  /// Number of hops the plan's row shape ends with (1 + #FkJoinNodes).
  uint32_t num_hops() const;

  /// One line per node, for plan_text / debugging.
  std::string ToString() const;
};

/// Table name of each hop: [scan.table, join1.dim_table, ...].
std::vector<std::string> HopTables(const PhysicalPlan& plan);

/// Embeds a QuerySpec into the plan algebra: predicates become hop-0
/// FilterNodes (spec order preserved — engine-side pushdown reorders, not
/// the lowering), the optional join one FkJoinNode, group-by/aggregates the
/// terminal GroupAggNode. Total: never fails, and `PlanToSpec` inverts it
/// exactly (field for field), so executing a lowered plan is bit-identical
/// to executing the spec.
PhysicalPlan LowerToPlan(const QuerySpec& spec);

/// Exact inverse of LowerToPlan on single-join plan shapes. Returns
/// Unsupported for genuinely multi-join plans (second FkJoinNode, any
/// ThetaJoinNode/ProjectNode, filters or group keys beyond hop 0, filters
/// after the join) — those run the general plan executors instead.
StatusOr<QuerySpec> PlanToSpec(const PhysicalPlan& plan);

/// Checks every table/column reference of `spec` against `db` up front,
/// returning InvalidArgument instead of letting an engine assert deep
/// inside a column lookup. Aggregate *term* columns are left to the
/// engines (they surface NotFound with the offending term named).
Status ValidateQuerySpec(const QuerySpec& spec, const cs::Database& db);

/// Checks `plan`'s structure (hop references in range and join-ordered)
/// and every table/column reference against `db`; InvalidArgument on the
/// first violation.
Status ValidatePlan(const PhysicalPlan& plan, const cs::Database& db);

/// Per-plan serving estimate: the single-join closed form priced over the
/// plan's hop-0 shape, plus one cost increment per extra node (each extra
/// FkJoin gathers oids + digits per candidate, each dim filter/theta node
/// one gather-and-test pass). A sum of node costs — coarse by design, like
/// EstimateServingCost, and equal to it on lowered single-join plans.
device::ServingEstimate EstimatePlanCost(const device::DeviceSpec& spec,
                                         const PhysicalPlan& plan,
                                         device::ServingWorkload w);

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_PLAN_H_
