#include "core/aggregate.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <unordered_set>

#include "bwd/packed_codec.h"
#include "core/translucent_join.h"
#include "util/bits.h"

namespace wastenot::core {

ValueBounds CountApproximate(const Candidates& cands, uint64_t num_certain) {
  return ValueBounds{static_cast<int64_t>(num_certain),
                     static_cast<int64_t>(cands.size())};
}

ValueBounds SumApproximate(const BoundedValues& values, device::Device* dev) {
  const uint64_t n = values.size();
  // Per-worker partial sums; a real device would tree-reduce in shared
  // memory. Conflict-free (each lane owns its partials).
  std::vector<int64_t> lo_part, hi_part;
  std::mutex mu;
  dev->Run(n, [&](uint64_t begin, uint64_t end) {
    int64_t lo = 0, hi = 0;
    for (uint64_t i = begin; i < end; ++i) {
      lo += values.lo[i];
      hi += values.hi[i];
    }
    std::lock_guard<std::mutex> lock(mu);
    lo_part.push_back(lo);
    hi_part.push_back(hi);
  });
  ValueBounds out{0, 0};
  for (int64_t v : lo_part) out.lo += v;
  for (int64_t v : hi_part) out.hi += v;

  device::KernelSignature sig;
  sig.op = "sum_approximate";
  sig.extra = "global";
  dev->ChargeKernel(sig, {.elements = n,
                          .bytes_read = n * 2 * sizeof(int64_t),
                          .bytes_written = sizeof(int64_t) * 2,
                          .ops = 2 * n});
  return out;
}

std::vector<ValueBounds> GroupedSumApproximate(
    const BoundedValues& values, const std::vector<uint32_t>& group_ids,
    uint64_t num_groups, device::Device* dev) {
  std::vector<ValueBounds> out(num_groups, ValueBounds{0, 0});
  const uint64_t n = values.size();
  // Host stand-in accumulates serially; the simulated device pays the
  // atomic-conflict cost for num_groups destinations instead.
  for (uint64_t i = 0; i < n; ++i) {
    out[group_ids[i]].lo += values.lo[i];
    out[group_ids[i]].hi += values.hi[i];
  }
  device::KernelSignature sig;
  sig.op = "sum_approximate";
  sig.extra = "grouped";
  dev->ChargeKernel(sig,
                    {.elements = n,
                     .bytes_read = n * (2 * sizeof(int64_t) + sizeof(uint32_t)),
                     .bytes_written = n * 2 * sizeof(int64_t),
                     .ops = 2 * n,
                     .distinct_write_targets = std::max<uint64_t>(num_groups, 1)});
  return out;
}

int64_t SumRefine(const std::vector<int64_t>& exact_values,
                  const MorselContext& ctx) {
  const uint64_t morsel =
      ctx.morsel_elems != 0 ? ctx.morsel_elems : MorselElems(64);
  std::vector<int64_t> partials(ctx.workers(), 0);
  ParallelForBlocks(ctx, exact_values.size(), morsel,
                    [&](uint64_t b, uint64_t e, unsigned w) {
                      int64_t s = 0;
                      for (uint64_t i = b; i < e; ++i) s += exact_values[i];
                      partials[w] += s;
                    });
  int64_t sum = 0;
  for (int64_t v : partials) sum += v;
  return sum;
}

std::vector<int64_t> ParallelGroupedAccumulate(
    const MorselContext& ctx, uint64_t n, uint64_t num_groups,
    uint64_t bits_per_elem,
    const std::function<void(uint64_t, uint64_t, std::vector<int64_t>&)>&
        body) {
  // Per-worker partial group vectors, merged at the barrier: no atomics in
  // the hot loop, and integer addition makes the merge order irrelevant.
  const unsigned workers = ctx.workers();
  std::vector<std::vector<int64_t>> partials(workers);
  for (auto& p : partials) p.assign(num_groups, 0);
  const uint64_t morsel =
      ctx.morsel_elems != 0 ? ctx.morsel_elems : MorselElems(bits_per_elem);
  ParallelForBlocks(ctx, n, morsel, [&](uint64_t b, uint64_t e, unsigned w) {
    body(b, e, partials[w]);
  });
  std::vector<int64_t> out = std::move(partials[0]);
  for (unsigned w = 1; w < workers; ++w) {
    for (uint64_t g = 0; g < num_groups; ++g) out[g] += partials[w][g];
  }
  return out;
}

std::vector<int64_t> GroupedSumRefine(const std::vector<int64_t>& exact_values,
                                      const std::vector<uint32_t>& group_ids,
                                      uint64_t num_groups,
                                      const MorselContext& ctx) {
  return ParallelGroupedAccumulate(
      ctx, exact_values.size(), num_groups, 64 + 32,
      [&](uint64_t b, uint64_t e, std::vector<int64_t>& p) {
        for (uint64_t i = b; i < e; ++i) {
          p[group_ids[i]] += exact_values[i];
        }
      });
}

namespace {

/// Shared min/max approximation. `invert` = false: minimum; true: maximum
/// (implemented by mirroring the comparisons).
ExtremumCandidates ExtremumApproximate(const bwd::BwdColumn& target,
                                       const Candidates& cands,
                                       std::span<const uint8_t> certain,
                                       bool is_max, device::Device* dev) {
  const bwd::DecompositionSpec& spec = target.spec();
  const bwd::PackedView view = target.approximation();
  const uint64_t n = cands.size();

  ExtremumCandidates out;

  // Pass 1: the pruning threshold over *certain* candidates only — a
  // false positive must never tighten the bound (Fig 6).
  //   min: threshold = min over certain of UpperBound(digit)
  //   max: threshold = max over certain of LowerBound(digit)
  int64_t threshold = is_max ? std::numeric_limits<int64_t>::min()
                             : std::numeric_limits<int64_t>::max();
  bool any_certain = false;
  uint64_t digits[bwd::kPackedBlockElems];
  for (uint64_t b0 = 0; b0 < n; b0 += bwd::kPackedBlockElems) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(n - b0, bwd::kPackedBlockElems));
    bwd::GatherPacked(view, cands.ids.data() + b0, lanes, digits);
    for (uint32_t j = 0; j < lanes; ++j) {
      if (!certain.empty() && !certain[b0 + j]) continue;
      any_certain = true;
      if (is_max) {
        threshold = std::max(threshold, spec.LowerBound(digits[j]));
      } else {
        threshold = std::min(threshold, spec.UpperBound(digits[j]));
      }
    }
  }
  // Without a certain candidate the threshold cannot prune anything.
  out.threshold = threshold;

  // Pass 2: survivors = candidates whose interval can beat the threshold.
  int64_t best_lo = std::numeric_limits<int64_t>::max();
  int64_t best_hi = std::numeric_limits<int64_t>::min();
  for (uint64_t b0 = 0; b0 < n; b0 += bwd::kPackedBlockElems) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(n - b0, bwd::kPackedBlockElems));
    bwd::GatherPacked(view, cands.ids.data() + b0, lanes, digits);
    for (uint32_t j = 0; j < lanes; ++j) {
      const int64_t lo = spec.LowerBound(digits[j]);
      const int64_t hi = spec.UpperBound(digits[j]);
      const bool survives = !any_certain || (is_max ? hi >= threshold
                                                    : lo <= threshold);
      if (survives) {
        out.survivors.ids.push_back(cands.ids[b0 + j]);
        out.positions.push_back(static_cast<cs::oid_t>(b0 + j));
        best_lo = std::min(best_lo, lo);
        best_hi = std::max(best_hi, hi);
      }
    }
  }
  out.survivors.sorted = cands.sorted;
  if (!out.survivors.empty()) {
    // The true extremum lies within the hull of the surviving intervals,
    // clipped by the threshold on the certain side.
    if (is_max) {
      out.bounds = ValueBounds{any_certain ? threshold : best_lo, best_hi};
    } else {
      out.bounds = ValueBounds{best_lo, any_certain ? threshold : best_hi};
    }
  }

  device::KernelSignature sig;
  sig.op = is_max ? "max_approximate" : "min_approximate";
  sig.value_bits = spec.value_bits;
  sig.packed_bits = spec.approximation_bits();
  sig.prefix_base = spec.prefix_base;
  const uint64_t digit_bytes =
      device::PackedReadBytes(spec.approximation_bits(), 1, /*gather=*/true);
  dev->ChargeKernel(sig,
                    {.elements = n,
                     .bytes_read = 2 * n * (digit_bytes + sizeof(cs::oid_t)),
                     .bytes_written =
                         out.survivors.size() * sizeof(cs::oid_t),
                     .ops = 2 * n});
  return out;
}

StatusOr<std::optional<int64_t>> ExtremumRefine(
    const bwd::BwdColumn& target, const ExtremumCandidates& approx,
    const cs::OidVec& refined_ids, bool is_max, const MorselContext& ctx) {
  // Neither input is generally a subset of the other (a refined row may
  // have been pruned by the threshold; a survivor may be a selection false
  // positive), so this is a plain set intersection; reduction order is
  // irrelevant for an extremum, so per-worker bests merged at the barrier
  // give the same answer as the serial scan.
  std::unordered_set<cs::oid_t> survivor_set(approx.survivors.ids.begin(),
                                             approx.survivors.ids.end());
  std::vector<std::optional<int64_t>> bests(ctx.workers());
  const uint64_t morsel = ctx.morsel_elems != 0
                              ? ctx.morsel_elems
                              : MorselElems(target.spec().value_bits + 32);
  ParallelForBlocks(
      ctx, refined_ids.size(), morsel,
      [&](uint64_t b, uint64_t e, unsigned w) {
        std::optional<int64_t>& best = bests[w];
        for (uint64_t i = b; i < e; ++i) {
          const cs::oid_t id = refined_ids[i];
          if (survivor_set.count(id) == 0) continue;
          const int64_t exact = target.Reconstruct(id);
          if (!best.has_value() || (is_max ? exact > *best : exact < *best)) {
            best = exact;
          }
        }
      });
  std::optional<int64_t> best;
  for (const std::optional<int64_t>& b : bests) {
    if (!b.has_value()) continue;
    if (!best.has_value() || (is_max ? *b > *best : *b < *best)) best = b;
  }
  return best;
}

}  // namespace

ExtremumCandidates MinApproximate(const bwd::BwdColumn& target,
                                  const Candidates& cands,
                                  std::span<const uint8_t> certain,
                                  device::Device* dev) {
  return ExtremumApproximate(target, cands, certain, /*is_max=*/false, dev);
}

ExtremumCandidates MaxApproximate(const bwd::BwdColumn& target,
                                  const Candidates& cands,
                                  std::span<const uint8_t> certain,
                                  device::Device* dev) {
  return ExtremumApproximate(target, cands, certain, /*is_max=*/true, dev);
}

StatusOr<std::optional<int64_t>> MinRefine(const bwd::BwdColumn& target,
                                           const ExtremumCandidates& approx,
                                           const cs::OidVec& refined_ids,
                                           const MorselContext& ctx) {
  return ExtremumRefine(target, approx, refined_ids, /*is_max=*/false, ctx);
}

StatusOr<std::optional<int64_t>> MaxRefine(const bwd::BwdColumn& target,
                                           const ExtremumCandidates& approx,
                                           const cs::OidVec& refined_ids,
                                           const MorselContext& ctx) {
  return ExtremumRefine(target, approx, refined_ids, /*is_max=*/true, ctx);
}

ValueBounds AvgBounds(const ValueBounds& sum, const ValueBounds& count) {
  if (count.hi <= 0) return ValueBounds{0, 0};
  const int64_t count_lo = std::max<int64_t>(count.lo, 1);
  // avg in [sum.lo / n_big-or-small, sum.hi / n_small-or-big] depending on
  // sign; take the widest sound combination.
  const int64_t candidates_lo[] = {FloorDiv(sum.lo, count_lo),
                                   FloorDiv(sum.lo, count.hi)};
  const int64_t candidates_hi[] = {CeilDivSigned(sum.hi, count_lo),
                                   CeilDivSigned(sum.hi, count.hi)};
  return ValueBounds{std::min(candidates_lo[0], candidates_lo[1]),
                     std::max(candidates_hi[0], candidates_hi[1])};
}

}  // namespace wastenot::core
